// Ablation: baseline batch sizes. Reproduces the paper's remark that "more
// aggressive batching can further increase HotStuff's throughput to a level
// comparable to NeoBFT; however, its latency also increases to more than
// 10ms" (§6.2) — here visible as the throughput/latency trade as batch_max
// grows.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

void sweep(const std::string& name,
           const std::function<std::unique_ptr<Deployment>(std::size_t)>& factory,
           ObsSession& obs, const std::string& label) {
    std::printf("\n--- %s ---\n", name.c_str());
    TablePrinter table({"batch_max", "tput_ops", "p50_us", "p99_us"});
    for (std::size_t batch : {1u, 4u, 16u, 64u, 256u}) {
        auto d = factory(batch);
        ObsRun run(obs, *d, label + ".b" + std::to_string(batch));
        Measured m = run_closed_loop(*d, echo_ops(64), 40 * sim::kMillisecond,
                                     160 * sim::kMillisecond);
        table.row({std::to_string(batch), fmt_double(m.throughput_ops, 0),
                   fmt_double(m.p50_us, 1), fmt_double(m.p99_us, 1)});
    }
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Ablation: baseline request batching (256 clients) ===\n");

    sweep("PBFT", [](std::size_t batch) {
        CommonParams p;
        p.n_clients = 256;
        p.batch_max = batch;
        p.batch_delay = 2 * sim::kMillisecond;  // large batches need patience
        return make_pbft(p);
    }, obs, "pbft");

    sweep("HotStuff", [](std::size_t batch) {
        CommonParams p;
        p.n_clients = 256;
        p.batch_max = batch;
        p.batch_delay = 2 * sim::kMillisecond;
        return make_hotstuff(p);
    }, obs, "hotstuff");

    std::printf("\nreference: Neo-HM needs NO protocol-level batching for its peak.\n");
    return 0;
}
