// Ablation: baseline batch sizes. Reproduces the paper's remark that "more
// aggressive batching can further increase HotStuff's throughput to a level
// comparable to NeoBFT; however, its latency also increases to more than
// 10ms" (§6.2) — here visible as the throughput/latency trade as batch_max
// grows. Since the leader batchers went adaptive (DESIGN.md §4.3),
// batch_max is the controller's *cap*, not a fixed threshold — the sweep
// still measures the same trade because the cap is what load-proportional
// growth saturates against.
#include <cstdio>
#include <memory>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

struct Family {
    std::string name;   // table heading
    std::string label;  // point-name prefix
    std::function<std::unique_ptr<Deployment>(std::size_t batch, const RunCtx& ctx)> make;
};

std::vector<Family> families() {
    return {
        {"PBFT", "pbft",
         [](std::size_t batch, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = 256;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_max = batch;
             p.batch_delay = 2 * sim::kMillisecond;  // large batches need patience
             return make_pbft(p);
         }},
        {"HotStuff", "hotstuff",
         [](std::size_t batch, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = 256;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_max = batch;
             p.batch_delay = 2 * sim::kMillisecond;
             return make_hotstuff(p);
         }},
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "ablation_batching");
    std::printf("=== Ablation: baseline request batching (256 clients) ===\n");

    const std::vector<std::size_t> batches =
        bm.quick() ? std::vector<std::size_t>{1, 64} : std::vector<std::size_t>{1, 4, 16, 64, 256};
    const sim::Time warmup = bm.quick() ? 10 * sim::kMillisecond : 40 * sim::kMillisecond;
    const sim::Time measure = bm.quick() ? 40 * sim::kMillisecond : 160 * sim::kMillisecond;

    const std::vector<Family> fams = families();
    std::vector<BenchPointSpec> points;
    for (const Family& fam : fams) {
        for (std::size_t batch : batches) {
            points.push_back({
                fam.label + ".b" + std::to_string(batch),
                {{"batch_max", static_cast<double>(batch)}},
                [&fam, batch, warmup, measure](RunCtx& ctx) {
                    auto d = fam.make(batch, ctx);
                    auto obs = ctx.attach(*d);
                    Measured m = run_closed_loop(*d, echo_ops(64), warmup, measure);
                    return std::map<std::string, double>{{"tput_ops", m.throughput_ops},
                                                         {"p50_us", m.p50_us},
                                                         {"p99_us", m.p99_us}};
                },
            });
        }
    }
    std::vector<PointResult> results = bm.run(points);

    std::size_t i = 0;
    for (const Family& fam : fams) {
        std::printf("\n--- %s ---\n", fam.name.c_str());
        TablePrinter table({"batch_max", "tput_ops", "p50_us", "p99_us"});
        for (std::size_t batch : batches) {
            const PointResult& r = results[i++];
            table.row({std::to_string(batch), fmt_double(r.mean("tput_ops"), 0),
                       fmt_double(r.mean("p50_us"), 1), fmt_double(r.mean("p99_us"), 1)});
        }
    }

    std::printf("\nreference: Neo-HM needs NO protocol-level batching for its peak.\n");
    return 0;
}
