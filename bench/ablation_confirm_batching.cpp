// Ablation: Neo-BN's confirm-batching window (§6.2 "batch processing
// confirm messages"). Small windows cost messages and CPU; large windows
// cost latency. The paper's claim — high throughput at the expense of
// latency — is the right-hand side of this sweep. The confirm batcher is
// adaptive now (DESIGN.md §4.3): confirm_flush_interval is the
// controller's latency budget and confirm_batch_max its size cap, so the
// swept knob remains the latency end of the trade.
#include <cstdio>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "ablation_confirm_batching");
    std::printf("=== Ablation: Neo-BN confirm flush interval ===\n\n");

    const std::vector<sim::Time> flushes =
        bm.quick() ? std::vector<sim::Time>{5 * sim::kMicrosecond, 100 * sim::kMicrosecond}
                   : std::vector<sim::Time>{5 * sim::kMicrosecond, 20 * sim::kMicrosecond,
                                            50 * sim::kMicrosecond, 100 * sim::kMicrosecond,
                                            200 * sim::kMicrosecond};
    const sim::Time warmup = bm.quick() ? 10 * sim::kMillisecond : 40 * sim::kMillisecond;
    const sim::Time measure = bm.quick() ? 40 * sim::kMillisecond : 160 * sim::kMillisecond;

    std::vector<BenchPointSpec> points;
    for (sim::Time flush : flushes) {
        points.push_back({
            "neo_bn.flush" + fmt_double(sim::to_us(flush), 0),
            {{"flush_us", sim::to_us(flush)}},
            [flush, warmup, measure](RunCtx& ctx) {
                NeoParams p;
                p.n_clients = 32;
                p.seed = ctx.seed();
                p.sim_threads = ctx.sim_threads();
                p.variant = NeoVariant::kBn;
                p.receiver.confirm_flush_interval = flush;
                p.receiver.gap_timeout = 5 * sim::kMillisecond;  // stay out of gap agreement
                auto d = make_neobft(p);
                auto obs = ctx.attach(*d);
                Measured m = run_closed_loop(*d, echo_ops(64), warmup, measure);
                return std::map<std::string, double>{{"tput_ops", m.throughput_ops},
                                                     {"p50_us", m.p50_us},
                                                     {"p99_us", m.p99_us}};
            },
        });
    }
    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"flush_us", "tput_ops", "p50_us", "p99_us"});
    for (std::size_t i = 0; i < flushes.size(); ++i) {
        const PointResult& r = results[i];
        table.row({fmt_double(sim::to_us(flushes[i]), 0), fmt_double(r.mean("tput_ops"), 0),
                   fmt_double(r.mean("p50_us"), 1), fmt_double(r.mean("p99_us"), 1)});
    }
    std::printf("\nreports the §6.2 trade-off: the flush window sets confirm batch sizes\n");
    std::printf("(messages + verify-batch latency vs per-packet overhead); near saturation\n");
    std::printf("the verification pipeline dominates and the sensitivity shrinks\n");
    return 0;
}
