// Ablation: Neo-BN's confirm-batching window (§6.2 "batch processing
// confirm messages"). Small windows cost messages and CPU; large windows
// cost latency. The paper's claim — high throughput at the expense of
// latency — is the right-hand side of this sweep.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Ablation: Neo-BN confirm flush interval ===\n\n");
    TablePrinter table({"flush_us", "tput_ops", "p50_us", "p99_us"});
    for (sim::Time flush : {5 * sim::kMicrosecond, 20 * sim::kMicrosecond,
                            50 * sim::kMicrosecond, 100 * sim::kMicrosecond,
                            200 * sim::kMicrosecond}) {
        NeoParams p;
        p.n_clients = 32;
        p.variant = NeoVariant::kBn;
        p.receiver.confirm_flush_interval = flush;
        p.receiver.gap_timeout = 5 * sim::kMillisecond;  // stay out of gap agreement
        auto d = make_neobft(p);
        ObsRun run(obs, *d, "neo_bn.flush" + fmt_double(sim::to_us(flush), 0));
        Measured m = run_closed_loop(*d, echo_ops(64), 40 * sim::kMillisecond,
                                     160 * sim::kMillisecond);
        table.row({fmt_double(sim::to_us(flush), 0), fmt_double(m.throughput_ops, 0),
                   fmt_double(m.p50_us, 1), fmt_double(m.p99_us, 1)});
    }
    std::printf("\nreports the §6.2 trade-off: the flush window sets confirm batch sizes\n");
    std::printf("(messages + verify-batch latency vs per-packet overhead); near saturation\n");
    std::printf("the verification pipeline dominates and the sensitivity shrinks\n");
    return 0;
}
