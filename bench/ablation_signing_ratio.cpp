// Ablation: the aom-pk signing-ratio controller (§4.4). Sweeping the
// pre-compute refill rate shows the design's central trade: when the stock
// cannot keep up, the controller rides the hash chain — receivers still
// authenticate everything, but batch latency grows.
#include <cstdio>
#include <memory>

#include "harness/aom_bench.hpp"
#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "ablation_signing_ratio");
    std::printf("=== Ablation: aom-pk precompute refill rate (offered load 0.8 Mpps) ===\n\n");

    const std::vector<double> refills =
        bm.quick() ? std::vector<double>{150'000.0, 800'000.0}
                   : std::vector<double>{50'000.0, 150'000.0, 400'000.0, 800'000.0, 1'200'000.0};
    const std::size_t packets = bm.quick() ? 20'000 : 200'000;

    std::vector<BenchPointSpec> points;
    for (double refill : refills) {
        points.push_back({
            "aom_pk.refill" + fmt_double(refill, 0),
            {{"refill_per_s", refill}},
            [refill, packets](RunCtx& ctx) {
                aom::SequencerConfig cfg;
                cfg.precompute.refill_per_sec = refill;
                cfg.precompute.table_capacity = 2'048;
                cfg.precompute.low_water_mark = 256;
                auto bench = std::make_unique<AomBench>(aom::AuthVariant::kPublicKey, 4,
                                                        ctx.seed(), cfg, ctx.sim_threads());
                std::string label = ctx.label();
                auto obs = ctx.attach(bench->simulator(),
                                      [&bench, label](obs::Registry& reg, obs::TraceSink* tr) {
                                          bench->register_obs(reg, label, tr);
                                      });
                AomBenchResult r = bench->run(packets, 1'250);  // 0.8 Mpps offered
                double signed_pct =
                    100.0 * static_cast<double>(bench->sequencer().signatures_generated()) /
                    static_cast<double>(bench->sequencer().packets_sequenced());
                return std::map<std::string, double>{
                    {"signed_pct", signed_pct},
                    {"p50_us", r.latency->percentile(50)},
                    {"p99_us", r.latency->percentile(99)},
                    {"p999_us", r.latency->percentile(99.9)},
                };
            },
        });
    }
    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"refill_per_s", "signed_pct", "p50_us", "p99_us", "p99.9_us"});
    for (std::size_t i = 0; i < refills.size(); ++i) {
        const PointResult& r = results[i];
        table.row({fmt_double(refills[i], 0), fmt_double(r.mean("signed_pct"), 1),
                   fmt_double(r.mean("p50_us"), 2), fmt_double(r.mean("p99_us"), 2),
                   fmt_double(r.mean("p999_us"), 2)});
    }
    std::printf("\nexpected: below the offered load, signed%% ~ refill/load and the\n");
    std::printf("latency tail stretches to the next signature (chain-batch wait)\n");
    return 0;
}
