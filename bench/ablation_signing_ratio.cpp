// Ablation: the aom-pk signing-ratio controller (§4.4). Sweeping the
// pre-compute refill rate shows the design's central trade: when the stock
// cannot keep up, the controller rides the hash chain — receivers still
// authenticate everything, but batch latency grows.
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Ablation: aom-pk precompute refill rate (offered load 0.8 Mpps) ===\n\n");
    TablePrinter table({"refill_per_s", "signed_pct", "p50_us", "p99_us", "p99.9_us"});
    for (double refill : {50'000.0, 150'000.0, 400'000.0, 800'000.0, 1'200'000.0}) {
        aom::SequencerConfig cfg;
        cfg.precompute.refill_per_sec = refill;
        cfg.precompute.table_capacity = 2'048;
        cfg.precompute.low_water_mark = 256;
        AomBench bench(aom::AuthVariant::kPublicKey, 4, 17, cfg);
        std::string label = "aom_pk.refill" + fmt_double(refill, 0);
        obs.begin_run(bench.simulator(), label, true,
                      [&bench, &label](obs::Registry& reg, obs::TraceSink* tr) {
                          bench.register_obs(reg, label, tr);
                      });
        AomBenchResult r = bench.run(200'000, 1'250);  // 0.8 Mpps offered
        obs.end_run();
        double signed_pct = 100.0 *
                            static_cast<double>(bench.sequencer().signatures_generated()) /
                            static_cast<double>(bench.sequencer().packets_sequenced());
        table.row({fmt_double(refill, 0), fmt_double(signed_pct, 1),
                   fmt_double(r.latency->percentile(50), 2),
                   fmt_double(r.latency->percentile(99), 2),
                   fmt_double(r.latency->percentile(99.9), 2)});
    }
    std::printf("\nexpected: below the offered load, signed%% ~ refill/load and the\n");
    std::printf("latency tail stretches to the next signature (chain-batch wait)\n");
    return 0;
}
