// Ablation: NeoBFT's state-sync period N (§B.2). Frequent syncs bound
// speculative state and shrink view-change payloads, but cost 2(N-1)
// messages per interval; rare syncs are nearly free but leave large
// uncommitted suffixes.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Ablation: NeoBFT sync interval (echo-RPC, 64 clients) ===\n\n");
    TablePrinter table({"sync_interval", "tput_ops", "p50_us", "p99_us"});
    for (std::uint64_t interval : {8ull, 32ull, 128ull, 512ull, 4096ull}) {
        NeoParams p;
        p.n_clients = 64;
        p.sync_interval = interval;
        auto d = make_neobft(p);
        ObsRun run(obs, *d, "neo_hm.sync" + std::to_string(interval));
        Measured m = run_closed_loop(*d, echo_ops(64), 40 * sim::kMillisecond,
                                     160 * sim::kMillisecond);
        table.row({std::to_string(interval), fmt_double(m.throughput_ops, 0),
                   fmt_double(m.p50_us, 1), fmt_double(m.p99_us, 1)});
    }
    std::printf("\nexpected: small intervals tax throughput (sync round each N entries);\n");
    std::printf("beyond ~128 the cost vanishes into the noise\n");
    return 0;
}
