// Ablation: NeoBFT's state-sync period N (§B.2). Frequent syncs bound
// speculative state and shrink view-change payloads, but cost 2(N-1)
// messages per interval; rare syncs are nearly free but leave large
// uncommitted suffixes.
#include <cstdio>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "ablation_sync_interval");
    std::printf("=== Ablation: NeoBFT sync interval (echo-RPC, 64 clients) ===\n\n");

    const std::vector<std::uint64_t> intervals =
        bm.quick() ? std::vector<std::uint64_t>{8, 512}
                   : std::vector<std::uint64_t>{8, 32, 128, 512, 4096};
    const sim::Time warmup = bm.quick() ? 10 * sim::kMillisecond : 40 * sim::kMillisecond;
    const sim::Time measure = bm.quick() ? 40 * sim::kMillisecond : 160 * sim::kMillisecond;

    std::vector<BenchPointSpec> points;
    for (std::uint64_t interval : intervals) {
        points.push_back({
            "neo_hm.sync" + std::to_string(interval),
            {{"sync_interval", static_cast<double>(interval)}},
            [interval, warmup, measure](RunCtx& ctx) {
                NeoParams p;
                p.n_clients = 64;
                p.seed = ctx.seed();
                p.sim_threads = ctx.sim_threads();
                p.sync_interval = interval;
                auto d = make_neobft(p);
                auto obs = ctx.attach(*d);
                Measured m = run_closed_loop(*d, echo_ops(64), warmup, measure);
                return std::map<std::string, double>{{"tput_ops", m.throughput_ops},
                                                     {"p50_us", m.p50_us},
                                                     {"p99_us", m.p99_us}};
            },
        });
    }
    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"sync_interval", "tput_ops", "p50_us", "p99_us"});
    for (std::size_t i = 0; i < intervals.size(); ++i) {
        const PointResult& r = results[i];
        table.row({std::to_string(intervals[i]), fmt_double(r.mean("tput_ops"), 0),
                   fmt_double(r.mean("p50_us"), 1), fmt_double(r.mean("p99_us"), 1)});
    }
    std::printf("\nexpected: small intervals tax throughput (sync round each N entries);\n");
    std::printf("beyond ~128 the cost vanishes into the noise\n");
    return 0;
}
