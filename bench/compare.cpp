// bench_compare: diff two neo-bench-suite@1 JSON files and exit non-zero
// on perf regression — the CI gate over the BENCH_*.json trajectory.
//
//   bench_compare <baseline.json> <candidate.json>
//       [--tolerance <frac>]           default ±0.15 on every metric mean
//       [--tol <metric>=<frac>]...     per-metric override; <metric> may be
//                                      "name" or "point:name"
//       [--micro]                      inputs are google-benchmark JSON
//                                      (micro_crypto/micro_sim --json output);
//                                      gates each benchmark's cpu_time,
//                                      default tolerance widens to ±0.20
//                                      (micro benches measure wall clock)
//       [--verbose]                    print in-tolerance deltas too
//       [--host-report]                print wall-clock (host_*) deltas;
//                                      informational, never gates
//
// Exit codes: 0 = no regression; 1 = at least one metric regressed beyond
// tolerance; 2 = structural error (unreadable file, schema drift, missing
// point/metric in the candidate). host_* metrics never affect the exit
// code: wall-clock time is machine-dependent.
#include <cstdio>
#include <cstring>
#include <string>

#include "harness/bench_json.hpp"
#include "harness/compare.hpp"

using namespace neo::bench;

namespace {

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <baseline.json> <candidate.json> [--tolerance <frac>]\n"
                 "       [--tol <metric>=<frac>]... [--micro] [--verbose] [--host-report]\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string base_path, cand_path;
    CompareConfig cfg;
    bool verbose = false;
    bool host_report = false;
    bool micro = false;
    bool tolerance_set = false;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--tolerance" && i + 1 < argc) {
            cfg.tolerance = std::strtod(argv[++i], nullptr);
            tolerance_set = true;
        } else if (a == "--micro") {
            micro = true;
        } else if (a == "--tol" && i + 1 < argc) {
            std::string kv = argv[++i];
            std::size_t eq = kv.rfind('=');
            if (eq == std::string::npos || eq == 0) {
                std::fprintf(stderr, "bench_compare: bad --tol '%s' (want metric=frac)\n",
                             kv.c_str());
                return 2;
            }
            cfg.metric_tolerance[kv.substr(0, eq)] = std::strtod(kv.c_str() + eq + 1, nullptr);
        } else if (a == "--verbose" || a == "-v") {
            verbose = true;
        } else if (a == "--host-report") {
            host_report = true;
        } else if (a == "--help" || a == "-h") {
            usage(argv[0]);
            return 0;
        } else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "bench_compare: unknown flag '%s'\n", a.c_str());
            return usage(argv[0]);
        } else if (base_path.empty()) {
            base_path = a;
        } else if (cand_path.empty()) {
            cand_path = a;
        } else {
            return usage(argv[0]);
        }
    }
    if (base_path.empty() || cand_path.empty()) return usage(argv[0]);

    Json base, cand;
    try {
        base = Json::parse_file(base_path);
    } catch (const JsonError& e) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", base_path.c_str(), e.what());
        return 2;
    }
    try {
        cand = Json::parse_file(cand_path);
    } catch (const JsonError& e) {
        std::fprintf(stderr, "bench_compare: %s: %s\n", cand_path.c_str(), e.what());
        return 2;
    }

    if (micro && !tolerance_set) cfg.tolerance = 0.20;  // micro = wall clock
    CompareReport rep = micro ? compare_micro(base, cand, cfg) : compare_suites(base, cand, cfg);

    for (const auto& err : rep.errors) {
        std::fprintf(stderr, "ERROR: %s\n", err.c_str());
    }
    std::size_t shown = 0;
    for (const auto& d : rep.deltas) {
        bool noteworthy = d.status == DeltaStatus::kRegressed ||
                          d.status == DeltaStatus::kImproved;
        if (!verbose && !noteworthy) continue;
        std::printf("%-13s %s:%s  base=%s cand=%s  delta=%+.1f%% (tol ±%.0f%%, %s better)\n",
                    delta_status_name(d.status), d.point.c_str(), d.metric.c_str(),
                    Json::format_number(d.base_mean).c_str(),
                    Json::format_number(d.cand_mean).c_str(), d.rel_delta * 100,
                    d.tolerance * 100, d.lower_is_better ? "lower" : "higher");
        ++shown;
    }

    if (host_report && !rep.host_deltas.empty()) {
        std::printf("%shost time (wall clock, informational — does not gate):\n",
                    shown ? "\n" : "");
        std::printf("  %-28s %12s %12s %9s\n", "point:metric", "base_ms", "cand_ms", "delta");
        for (const auto& d : rep.host_deltas) {
            std::string label = d.point + ":" + d.metric;
            std::printf("  %-28s %12.2f %12.2f %+8.1f%%\n", label.c_str(), d.base_mean / 1e6,
                        d.cand_mean / 1e6, d.rel_delta * 100);
        }
    }

    std::size_t regressed = rep.regressions();
    std::printf("%scompared %zu metric means: %zu regressed, %zu structural error%s\n",
                shown ? "\n" : "", rep.deltas.size(), regressed, rep.errors.size(),
                rep.errors.size() == 1 ? "" : "s");
    if (!rep.errors.empty()) return 2;
    return regressed ? 1 : 0;
}
