// Figure 10: maximum throughput of the replicated B-Tree key-value store
// under YCSB workload A (100K records, 128-byte fields) for every protocol.
#include <cstdio>
#include <memory>

#include "apps/kvstore.hpp"
#include "apps/ycsb.hpp"
#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

constexpr int kClients = 64;

app::YcsbConfig ycsb_config(bool quick) {
    app::YcsbConfig cfg;
    cfg.record_count = quick ? 10'000 : 100'000;
    cfg.field_length = 128;
    return cfg;
}

// Per-replica state machine for NeoBFT (shared preloaded template would
// break undo independence, so each replica loads its own copy).
std::function<std::unique_ptr<app::StateMachine>()> neo_app_factory(
    const std::shared_ptr<app::YcsbWorkload>& workload) {
    return [workload] {
        auto sm = std::make_unique<app::KvStateMachine>();
        workload->load_into(*sm);
        return sm;
    };
}

// Baseline replicas execute through a plain closure over a KvStateMachine.
std::function<std::function<Bytes(BytesView)>()> baseline_app_factory(
    const std::shared_ptr<app::YcsbWorkload>& workload) {
    return [workload]() -> std::function<Bytes(BytesView)> {
        auto sm = std::make_shared<app::KvStateMachine>();
        workload->load_into(*sm);
        return [sm](BytesView op) { return sm->execute(op); };
    };
}

OpGen ycsb_ops(const std::shared_ptr<app::YcsbWorkload>& base_cfg) {
    // One generator stream per client, deterministic. Generators are built
    // eagerly so the callback only ever touches its own client's entry —
    // clients on different simulator partitions run concurrently, and a
    // lazily-populated shared map would race.
    auto gens = std::make_shared<std::vector<std::shared_ptr<app::YcsbWorkload>>>();
    auto cfg = base_cfg->config();
    gens->reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
        gens->push_back(std::make_shared<app::YcsbWorkload>(
            cfg, 1000 + static_cast<std::uint64_t>(c)));
    }
    return [gens](int client, std::uint64_t) {
        return (*gens)[static_cast<std::size_t>(client)]->next_op().serialize();
    };
}

struct Protocol {
    std::string name;
    std::string label;
    // Built inside the job: the workload template is per-run (load_into is
    // called from the deployment's constructor on the worker thread).
    std::function<std::unique_ptr<Deployment>(const std::shared_ptr<app::YcsbWorkload>& workload,
                                              const RunCtx& ctx)>
        make;
    bool trace_candidate = false;
};

std::vector<Protocol> protocols() {
    auto neo = [](NeoVariant variant) {
        return [variant](const std::shared_ptr<app::YcsbWorkload>& workload, const RunCtx& ctx) {
            NeoParams p;
            p.n_clients = kClients;
            p.seed = ctx.seed();
            p.sim_threads = ctx.sim_threads();
            p.variant = variant;
            p.app_factory = neo_app_factory(workload);
            return make_neobft(p);
        };
    };
    return {
        {"Unreplicated", "unreplicated",
         [](const std::shared_ptr<app::YcsbWorkload>&, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             // The unreplicated server echoes; attaching KV semantics via
             // the baseline hook is not supported there -> report echo
             // service rate as the upper bound (documented in EXPERIMENTS.md).
             return make_unreplicated(p);
         }},
        {"Neo-HM", "neo_hm", neo(NeoVariant::kHm), true},
        {"Neo-PK", "neo_pk", neo(NeoVariant::kPk)},
        {"Neo-BN", "neo_bn", neo(NeoVariant::kBn)},
        {"Zyzzyva", "zyzzyva",
         [](const std::shared_ptr<app::YcsbWorkload>& workload, const RunCtx& ctx) {
             ZyzzyvaParams p;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.baseline_app_factory = baseline_app_factory(workload);
             return make_zyzzyva(p);
         }},
        {"Zyzzyva-F", "zyzzyva_f",
         [](const std::shared_ptr<app::YcsbWorkload>& workload, const RunCtx& ctx) {
             ZyzzyvaParams p;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.faulty_replica = true;
             p.baseline_app_factory = baseline_app_factory(workload);
             return make_zyzzyva(p);
         }},
        {"PBFT", "pbft",
         [](const std::shared_ptr<app::YcsbWorkload>& workload, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.baseline_app_factory = baseline_app_factory(workload);
             return make_pbft(p);
         }},
        {"HotStuff", "hotstuff",
         [](const std::shared_ptr<app::YcsbWorkload>& workload, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_max = 32;
             p.baseline_app_factory = baseline_app_factory(workload);
             return make_hotstuff(p);
         }},
        {"MinBFT", "minbft",
         [](const std::shared_ptr<app::YcsbWorkload>& workload, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.baseline_app_factory = baseline_app_factory(workload);
             return make_minbft(p);
         }},
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig10_ycsb");
    std::printf("=== Figure 10: YCSB-A over the replicated B-Tree KV store ===\n");
    std::printf("%dK records, 128-byte fields, 50/50 read-update, zipfian\n\n",
                bm.quick() ? 10 : 100);

    const sim::Time warmup = bm.quick() ? 10 * sim::kMillisecond : 30 * sim::kMillisecond;
    const sim::Time measure = bm.quick() ? 40 * sim::kMillisecond : 120 * sim::kMillisecond;

    const std::vector<Protocol> protos = protocols();
    std::vector<BenchPointSpec> points;
    for (const Protocol& proto : protos) {
        points.push_back({
            proto.label,
            {{"clients", static_cast<double>(kClients)}},
            [&proto, &bm, warmup, measure](RunCtx& ctx) {
                auto workload =
                    std::make_shared<app::YcsbWorkload>(ycsb_config(bm.quick()), 17);
                auto d = proto.make(workload, ctx);
                auto obs = ctx.attach(*d);
                Measured m = run_closed_loop(*d, ycsb_ops(workload), warmup, measure);
                return std::map<std::string, double>{{"tput_ops", m.throughput_ops},
                                                     {"p50_us", m.p50_us},
                                                     {"p99_us", m.p99_us}};
            },
            proto.trace_candidate,
        });
    }
    std::vector<PointResult> results = bm.run(points);

    for (std::size_t i = 0; i < protos.size(); ++i) {
        std::printf("  %-28s %10.0f txns/s   (p50 %.1fus)\n", protos[i].name.c_str(),
                    results[i].mean("tput_ops"), results[i].mean("p50_us"));
    }

    std::printf("\npaper anchor: NeoBFT above all baselines; batching efficiency drops\n");
    std::printf("for the baselines with the larger KV requests\n");
    return 0;
}
