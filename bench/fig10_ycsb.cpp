// Figure 10: maximum throughput of the replicated B-Tree key-value store
// under YCSB workload A (100K records, 128-byte fields) for every protocol.
#include <cstdio>
#include <memory>

#include "apps/kvstore.hpp"
#include "apps/ycsb.hpp"
#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

app::YcsbConfig ycsb_config() {
    app::YcsbConfig cfg;
    cfg.record_count = 100'000;
    cfg.field_length = 128;
    return cfg;
}

// Per-replica state machine for NeoBFT (shared preloaded template would
// break undo independence, so each replica loads its own copy).
std::function<std::unique_ptr<app::StateMachine>()> neo_app_factory(
    const std::shared_ptr<app::YcsbWorkload>& workload) {
    return [workload] {
        auto sm = std::make_unique<app::KvStateMachine>();
        workload->load_into(*sm);
        return sm;
    };
}

// Baseline replicas execute through a plain closure over a KvStateMachine.
std::function<std::function<Bytes(BytesView)>()> baseline_app_factory(
    const std::shared_ptr<app::YcsbWorkload>& workload) {
    return [workload]() -> std::function<Bytes(BytesView)> {
        auto sm = std::make_shared<app::KvStateMachine>();
        workload->load_into(*sm);
        return [sm](BytesView op) { return sm->execute(op); };
    };
}

OpGen ycsb_ops(const std::shared_ptr<app::YcsbWorkload>& base_cfg) {
    // One generator stream per client, deterministic.
    auto gens = std::make_shared<std::map<int, std::shared_ptr<app::YcsbWorkload>>>();
    auto cfg = base_cfg->config();
    return [gens, cfg](int client, std::uint64_t) {
        auto it = gens->find(client);
        if (it == gens->end()) {
            it = gens->emplace(client, std::make_shared<app::YcsbWorkload>(
                                           cfg, 1000 + static_cast<std::uint64_t>(client)))
                     .first;
        }
        return it->second->next_op().serialize();
    };
}

double max_tput(const std::string& name,
                const std::function<std::unique_ptr<Deployment>()>& factory,
                const std::shared_ptr<app::YcsbWorkload>& workload, ObsSession& obs,
                const std::string& label, bool trace_this_run = false) {
    auto d = factory();
    ObsRun run(obs, *d, label, trace_this_run);
    Measured m = run_closed_loop(*d, ycsb_ops(workload), 30 * sim::kMillisecond,
                                 120 * sim::kMillisecond);
    std::printf("  %-28s %10.0f txns/s   (p50 %.1fus)\n", name.c_str(), m.throughput_ops,
                m.p50_us);
    std::fflush(stdout);
    return m.throughput_ops;
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 10: YCSB-A over the replicated B-Tree KV store ===\n");
    std::printf("100K records, 128-byte fields, 50/50 read-update, zipfian\n\n");

    auto workload = std::make_shared<app::YcsbWorkload>(ycsb_config(), 17);
    const int kClients = 64;

    max_tput("Unreplicated", [&] {
        CommonParams p;
        p.n_clients = kClients;
        // The unreplicated server echoes; attach KV semantics via the
        // baseline hook is not supported there -> report echo service rate
        // as the upper bound (documented in EXPERIMENTS.md).
        return make_unreplicated(p);
    }, workload, obs, "unreplicated");

    max_tput("Neo-HM", [&] {
        NeoParams p;
        p.n_clients = kClients;
        p.variant = NeoVariant::kHm;
        p.app_factory = neo_app_factory(workload);
        return make_neobft(p);
    }, workload, obs, "neo_hm", true);

    max_tput("Neo-PK", [&] {
        NeoParams p;
        p.n_clients = kClients;
        p.variant = NeoVariant::kPk;
        p.app_factory = neo_app_factory(workload);
        return make_neobft(p);
    }, workload, obs, "neo_pk");

    max_tput("Neo-BN", [&] {
        NeoParams p;
        p.n_clients = kClients;
        p.variant = NeoVariant::kBn;
        p.app_factory = neo_app_factory(workload);
        return make_neobft(p);
    }, workload, obs, "neo_bn");

    max_tput("Zyzzyva", [&] {
        ZyzzyvaParams p;
        p.n_clients = kClients;
        p.baseline_app_factory = baseline_app_factory(workload);
        return make_zyzzyva(p);
    }, workload, obs, "zyzzyva");

    max_tput("Zyzzyva-F", [&] {
        ZyzzyvaParams p;
        p.n_clients = kClients;
        p.faulty_replica = true;
        p.baseline_app_factory = baseline_app_factory(workload);
        return make_zyzzyva(p);
    }, workload, obs, "zyzzyva_f");

    max_tput("PBFT", [&] {
        CommonParams p;
        p.n_clients = kClients;
        p.baseline_app_factory = baseline_app_factory(workload);
        return make_pbft(p);
    }, workload, obs, "pbft");

    max_tput("HotStuff", [&] {
        CommonParams p;
        p.n_clients = kClients;
        p.batch_max = 32;
        p.baseline_app_factory = baseline_app_factory(workload);
        return make_hotstuff(p);
    }, workload, obs, "hotstuff");

    max_tput("MinBFT", [&] {
        CommonParams p;
        p.n_clients = kClients;
        p.baseline_app_factory = baseline_app_factory(workload);
        return make_minbft(p);
    }, workload, obs, "minbft");

    std::printf("\npaper anchor: NeoBFT above all baselines; batching efficiency drops\n");
    std::printf("for the baselines with the larger KV requests\n");
    return 0;
}
