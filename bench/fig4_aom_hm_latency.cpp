// Figure 4: latency distribution of the HMAC variant of aom at 25/50/99%
// load (group size 4, 64-byte packets, switch-isolated latency).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 4: aom-hm latency distribution (group size 4) ===\n");
    std::printf("paper: median ~9us, 99.9%% within 0.7%% of median below saturation;\n");
    std::printf("       long queuing tail at 99%% load\n\n");

    const int kReceivers = 4;
    const std::uint64_t kPackets = 200'000;

    TablePrinter table({"load", "p25_us", "p50_us", "p75_us", "p99_us", "p99.9_us"});
    for (double load : {0.25, 0.50, 0.99}) {
        AomBench bench(aom::AuthVariant::kHmacVector, kReceivers);
        sim::Time service = bench.service_ns(aom::AuthVariant::kHmacVector, kReceivers) +
                            0;  // queueing dominated by the auth pipeline
        // Offered load as a fraction of the pipeline's saturation rate.
        auto gap = static_cast<sim::Time>(static_cast<double>(service) / load);
        std::string label = "aom_hm.load" + fmt_double(load * 100, 0);
        obs.begin_run(bench.simulator(), label, true,
                      [&bench, &label](obs::Registry& reg, obs::TraceSink* tr) {
                          bench.register_obs(reg, label, tr);
                      });
        AomBenchResult r = bench.run(kPackets, gap);
        obs.end_run();
        table.row({fmt_double(load * 100, 0) + "%",
                   fmt_double(r.latency->percentile(25), 2),
                   fmt_double(r.latency->percentile(50), 2),
                   fmt_double(r.latency->percentile(75), 2),
                   fmt_double(r.latency->percentile(99), 2),
                   fmt_double(r.latency->percentile(99.9), 2)});
    }

    std::printf("\nCDF at 50%% load (value_us, cumulative):\n");
    AomBench bench(aom::AuthVariant::kHmacVector, kReceivers);
    sim::Time service = bench.service_ns(aom::AuthVariant::kHmacVector, kReceivers);
    AomBenchResult r = bench.run(kPackets, service * 2);
    for (auto [v, f] : r.latency->cdf(11)) {
        std::printf("  %8.2f  %5.2f\n", v, f);
    }
    return 0;
}
