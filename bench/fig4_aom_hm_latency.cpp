// Figure 4: latency distribution of the HMAC variant of aom at 25/50/99%
// load (group size 4, 64-byte packets, switch-isolated latency).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

constexpr int kReceivers = 4;

BenchPointSpec load_point(double load, bool quick) {
    return {
        "aom_hm.load" + fmt_double(load * 100, 0),
        {{"load_pct", load * 100}},
        [load, quick](RunCtx& ctx) {
            AomBench bench(aom::AuthVariant::kHmacVector, kReceivers, ctx.seed(), {},
                           ctx.sim_threads());
            sim::Time service = bench.service_ns(aom::AuthVariant::kHmacVector, kReceivers);
            // Offered load as a fraction of the pipeline's saturation rate.
            auto gap = static_cast<sim::Time>(static_cast<double>(service) / load);
            auto obs = ctx.attach(bench.simulator(),
                                  [&bench, &ctx](obs::Registry& reg, obs::TraceSink* tr) {
                                      bench.register_obs(reg, ctx.label(), tr);
                                  });
            AomBenchResult r = bench.run(quick ? 20'000 : 200'000, gap);
            return std::map<std::string, double>{
                {"p25_us", r.latency->percentile(25)},
                {"p50_us", r.latency->percentile(50)},
                {"p75_us", r.latency->percentile(75)},
                {"p99_us", r.latency->percentile(99)},
                {"p999_us", r.latency->percentile(99.9)},
            };
        },
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig4_aom_hm_latency");
    std::printf("=== Figure 4: aom-hm latency distribution (group size 4) ===\n");
    std::printf("paper: median ~9us, 99.9%% within 0.7%% of median below saturation;\n");
    std::printf("       long queuing tail at 99%% load\n\n");

    const std::vector<double> loads = {0.25, 0.50, 0.99};
    std::vector<BenchPointSpec> points;
    for (double load : loads) points.push_back(load_point(load, bm.quick()));
    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"load", "p25_us", "p50_us", "p75_us", "p99_us", "p99.9_us"});
    for (std::size_t i = 0; i < loads.size(); ++i) {
        table.row({fmt_double(loads[i] * 100, 0) + "%", fmt_double(results[i].mean("p25_us"), 2),
                   fmt_double(results[i].mean("p50_us"), 2),
                   fmt_double(results[i].mean("p75_us"), 2),
                   fmt_double(results[i].mean("p99_us"), 2),
                   fmt_double(results[i].mean("p999_us"), 2)});
    }

    if (!bm.quick()) {
        std::printf("\nCDF at 50%% load (value_us, cumulative):\n");
        AomBench bench(aom::AuthVariant::kHmacVector, kReceivers, bm.base_seed());
        sim::Time service = bench.service_ns(aom::AuthVariant::kHmacVector, kReceivers);
        AomBenchResult r = bench.run(200'000, service * 2);
        for (auto [v, f] : r.latency->cdf(11)) {
            std::printf("  %8.2f  %5.2f\n", v, f);
        }
    }
    return 0;
}
