// Figure 5: latency distribution of the public-key variant of aom at
// 25/50/99% load (group size 4; load relative to the 1.1 Mpps signer).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 5: aom-pk latency distribution (group size 4) ===\n");
    std::printf("paper: median ~3us, highly consistent below saturation\n\n");

    const int kReceivers = 4;
    const std::uint64_t kPackets = 200'000;

    TablePrinter table({"load", "p25_us", "p50_us", "p75_us", "p99_us", "p99.9_us", "signed%"});
    for (double load : {0.25, 0.50, 0.99}) {
        AomBench bench(aom::AuthVariant::kPublicKey, kReceivers);
        // The signer (1/kPkSignServiceNs pps) is the bottleneck resource.
        auto gap = static_cast<sim::Time>(static_cast<double>(sim::kPkSignServiceNs) / load);
        std::string label = "aom_pk.load" + fmt_double(load * 100, 0);
        obs.begin_run(bench.simulator(), label, true,
                      [&bench, &label](obs::Registry& reg, obs::TraceSink* tr) {
                          bench.register_obs(reg, label, tr);
                      });
        AomBenchResult r = bench.run(kPackets, gap);
        obs.end_run();
        double signed_pct = 100.0 *
                            static_cast<double>(bench.sequencer().signatures_generated()) /
                            static_cast<double>(bench.sequencer().packets_sequenced());
        table.row({fmt_double(load * 100, 0) + "%",
                   fmt_double(r.latency->percentile(25), 2),
                   fmt_double(r.latency->percentile(50), 2),
                   fmt_double(r.latency->percentile(75), 2),
                   fmt_double(r.latency->percentile(99), 2),
                   fmt_double(r.latency->percentile(99.9), 2),
                   fmt_double(signed_pct, 1)});
    }

    std::printf("\nCDF at 50%% load (value_us, cumulative):\n");
    AomBench bench(aom::AuthVariant::kPublicKey, kReceivers);
    AomBenchResult r = bench.run(kPackets, sim::kPkSignServiceNs * 2);
    for (auto [v, f] : r.latency->cdf(11)) {
        std::printf("  %8.2f  %5.2f\n", v, f);
    }
    return 0;
}
