// Figure 6: maximum throughput of aom-hm and aom-pk as the group size grows
// from 4 to 64 receivers.
//
// paper: aom-hm 76.24 Mpps at 4 receivers decaying to ~5.7 Mpps at 64
//        (one pipeline pass per 4-receiver subgroup); aom-pk flat at
//        1.11 Mpps (signing throughput is group-size agnostic).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

BenchPointSpec hm_point(int receivers, bool quick) {
    return {
        "aom_hm.r" + std::to_string(receivers),
        {{"receivers", static_cast<double>(receivers)}},
        [receivers, quick](RunCtx& ctx) {
            AomBench bench(aom::AuthVariant::kHmacVector, receivers, ctx.seed(), {},
                           ctx.sim_threads(), ctx.crypto_mode());
            sim::Time service = bench.service_ns(aom::AuthVariant::kHmacVector, receivers);
            // Drive slightly above capacity so the pipeline saturates;
            // tail-drop absorbs the excess.
            auto gap = static_cast<sim::Time>(static_cast<double>(service) * 0.9);
            std::uint64_t packets = receivers > 16 ? 20'000 : 100'000;
            if (quick) packets /= 10;
            auto obs = ctx.attach(bench.simulator(),
                                  [&bench, &ctx](obs::Registry& reg, obs::TraceSink* tr) {
                                      bench.register_obs(reg, ctx.label(), tr);
                                  });
            AomBenchResult r = bench.run(packets, std::max<sim::Time>(1, gap));
            return std::map<std::string, double>{{"delivered_mpps", r.delivered_mpps}};
        },
    };
}

BenchPointSpec pk_point(int receivers, bool quick) {
    return {
        "aom_pk.r" + std::to_string(receivers),
        {{"receivers", static_cast<double>(receivers)}},
        [receivers, quick](RunCtx& ctx) {
            AomBench bench(aom::AuthVariant::kPublicKey, receivers, ctx.seed(), {},
                           ctx.sim_threads(), ctx.crypto_mode());
            // Signing throughput: drive the signer at saturation and count
            // signatures per second (the paper reports signing throughput).
            auto gap = static_cast<sim::Time>(static_cast<double>(sim::kPkSignServiceNs) * 0.9);
            std::uint64_t packets = quick ? 10'000 : 100'000;
            auto obs = ctx.attach(bench.simulator(),
                                  [&bench, &ctx](obs::Registry& reg, obs::TraceSink* tr) {
                                      bench.register_obs(reg, ctx.label(), tr);
                                  });
            AomBenchResult r = bench.run(packets, gap);
            return std::map<std::string, double>{{"signed_mpps", r.signed_mpps}};
        },
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig6_aom_throughput");
    std::printf("=== Figure 6: aom max throughput vs group size ===\n\n");

    const std::vector<int> sizes =
        bm.quick() ? std::vector<int>{4, 16, 64} : std::vector<int>{4, 8, 16, 24, 32, 48, 64};
    std::vector<BenchPointSpec> points;
    for (int r : sizes) points.push_back(hm_point(r, bm.quick()));
    for (int r : sizes) points.push_back(pk_point(r, bm.quick()));

    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"receivers", "aom-hm_Mpps", "aom-pk_Mpps"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        table.row({std::to_string(sizes[i]),
                   fmt_double(results[i].mean("delivered_mpps"), 2),
                   fmt_double(results[sizes.size() + i].mean("signed_mpps"), 2)});
    }
    std::printf("\npaper anchors: hm 76.24 Mpps @4 -> 5.7 Mpps @64; pk 1.11 Mpps flat\n");
    return 0;
}
