// Figure 6: maximum throughput of aom-hm and aom-pk as the group size grows
// from 4 to 64 receivers.
//
// paper: aom-hm 76.24 Mpps at 4 receivers decaying to ~5.7 Mpps at 64
//        (one pipeline pass per 4-receiver subgroup); aom-pk flat at
//        1.11 Mpps (signing throughput is group-size agnostic).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

AomBenchResult run_attached(AomBench& bench, ObsSession& obs, const std::string& label,
                            std::uint64_t packets, sim::Time gap) {
    obs.begin_run(bench.simulator(), label, true,
                  [&bench, &label](obs::Registry& reg, obs::TraceSink* tr) {
                      bench.register_obs(reg, label, tr);
                  });
    AomBenchResult r = bench.run(packets, gap);
    obs.end_run();
    return r;
}

double max_throughput_hm(int receivers, ObsSession& obs) {
    AomBench bench(aom::AuthVariant::kHmacVector, receivers);
    sim::Time service = bench.service_ns(aom::AuthVariant::kHmacVector, receivers);
    // Drive slightly above capacity so the pipeline saturates; tail-drop
    // absorbs the excess.
    auto gap = static_cast<sim::Time>(static_cast<double>(service) * 0.9);
    std::uint64_t packets = receivers > 16 ? 20'000 : 100'000;
    AomBenchResult r = run_attached(bench, obs, "aom_hm.r" + std::to_string(receivers), packets,
                                    std::max<sim::Time>(1, gap));
    return r.delivered_mpps;
}

double max_throughput_pk(int receivers, ObsSession& obs) {
    AomBench bench(aom::AuthVariant::kPublicKey, receivers);
    // Signing throughput: drive the signer at saturation and count
    // signatures per second (the paper reports signing throughput).
    auto gap = static_cast<sim::Time>(static_cast<double>(sim::kPkSignServiceNs) * 0.9);
    AomBenchResult r =
        run_attached(bench, obs, "aom_pk.r" + std::to_string(receivers), 100'000, gap);
    return r.signed_mpps;
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 6: aom max throughput vs group size ===\n\n");
    TablePrinter table({"receivers", "aom-hm_Mpps", "aom-pk_Mpps"});
    for (int receivers : {4, 8, 16, 24, 32, 48, 64}) {
        table.row({std::to_string(receivers), fmt_double(max_throughput_hm(receivers, obs), 2),
                   fmt_double(max_throughput_pk(receivers, obs), 2)});
    }
    std::printf("\npaper anchors: hm 76.24 Mpps @4 -> 5.7 Mpps @64; pk 1.11 Mpps flat\n");
    return 0;
}
