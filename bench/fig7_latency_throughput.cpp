// Figure 7: latency vs throughput for NeoBFT (HM / PK / Byzantine-network)
// against Unreplicated, PBFT, Zyzzyva (+faulty), HotStuff, and MinBFT.
// Echo-RPC workload, 4 replicas (f=1), increasing closed-loop clients.
#include <cstdio>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

struct Protocol {
    std::string name;   // table heading
    std::string label;  // point-name prefix
    std::function<std::unique_ptr<Deployment>(int clients, const RunCtx& ctx)> make;
    bool trace_candidate = false;
};

std::vector<Protocol> protocols() {
    return {
        {"Unreplicated", "unreplicated",
         [](int clients, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             return make_unreplicated(p);
         }},
        {"Neo-HM", "neo_hm",
         [](int clients, const RunCtx& ctx) {
             NeoParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             p.variant = NeoVariant::kHm;
             return make_neobft(p);
         },
         true},
        {"Neo-PK", "neo_pk",
         [](int clients, const RunCtx& ctx) {
             NeoParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             p.variant = NeoVariant::kPk;
             return make_neobft(p);
         }},
        {"Neo-BN (Byzantine network)", "neo_bn",
         [](int clients, const RunCtx& ctx) {
             NeoParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             p.variant = NeoVariant::kBn;
             return make_neobft(p);
         }},
        {"Zyzzyva", "zyzzyva",
         [](int clients, const RunCtx& ctx) {
             ZyzzyvaParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             return make_zyzzyva(p);
         }},
        {"Zyzzyva-F (one faulty replica)", "zyzzyva_f",
         [](int clients, const RunCtx& ctx) {
             ZyzzyvaParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             p.faulty_replica = true;
             return make_zyzzyva(p);
         }},
        {"PBFT", "pbft",
         [](int clients, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             return make_pbft(p);
         }},
        {"HotStuff", "hotstuff",
         [](int clients, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             p.batch_max = 8;  // modest batching (the paper notes aggressive
             // batching lifts HotStuff's throughput but pushes latency >10ms)
             return make_hotstuff(p);
         }},
        {"MinBFT", "minbft",
         [](int clients, const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = clients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.crypto_mode = ctx.crypto_mode();
             return make_minbft(p);
         }},
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig7_latency_throughput");
    std::printf("=== Figure 7: latency vs throughput, echo-RPC, N=4 (f=1) ===\n");
    std::printf("paper: Neo-HM tput = 2.5x PBFT, 3.4x HotStuff, 4.1x MinBFT, 1.8x Zyzzyva;\n");
    std::printf("       Zyzzyva-F tput drop >54%%; Neo-PK ~60K below Neo-HM;\n");
    std::printf("       Neo-HM latency 14.7x better than PBFT, 42x HotStuff, 8.6x Zyzzyva,\n");
    std::printf("       6.1x MinBFT\n");

    const std::vector<int> client_counts =
        bm.quick() ? std::vector<int>{4, 32}
                   : std::vector<int>{1, 2, 4, 8, 16, 32, 64, 128, 256};
    const sim::Time warmup = bm.quick() ? 10 * sim::kMillisecond : 40 * sim::kMillisecond;
    const sim::Time measure = bm.quick() ? 40 * sim::kMillisecond : 160 * sim::kMillisecond;

    const std::vector<Protocol> protos = protocols();
    std::vector<BenchPointSpec> points;
    for (const Protocol& proto : protos) {
        for (int clients : client_counts) {
            points.push_back({
                proto.label + ".c" + std::to_string(clients),
                {{"clients", static_cast<double>(clients)}},
                [&proto, clients, warmup, measure](RunCtx& ctx) {
                    auto d = proto.make(clients, ctx);
                    auto obs = ctx.attach(*d);
                    Measured m = run_closed_loop(*d, echo_ops(64), warmup, measure);
                    return measured_metrics(m);
                },
                proto.trace_candidate,
            });
        }
    }
    std::vector<PointResult> results = bm.run(points);

    std::size_t i = 0;
    for (const Protocol& proto : protos) {
        std::printf("\n--- %s ---\n", proto.name.c_str());
        TablePrinter table(
            {"clients", "tput_ops", "p50_us", "mean_us", "p99_us", "net_us", "cpu_us", "queue_us"});
        for (int clients : client_counts) {
            const PointResult& r = results[i++];
            table.row({std::to_string(clients), fmt_double(r.mean("tput_ops"), 0),
                       fmt_double(r.mean("p50_us"), 1), fmt_double(r.mean("mean_us"), 1),
                       fmt_double(r.mean("p99_us"), 1), fmt_double(r.mean("net_us_per_op"), 1),
                       fmt_double(r.mean("cpu_us_per_op"), 1),
                       fmt_double(r.mean("queue_us_per_op"), 1)});
        }
    }
    return 0;
}
