// Figure 7: latency vs throughput for NeoBFT (HM / PK / Byzantine-network)
// against Unreplicated, PBFT, Zyzzyva (+faulty), HotStuff, and MinBFT.
// Echo-RPC workload, 4 replicas (f=1), increasing closed-loop clients.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

constexpr sim::Time kWarmup = 40 * sim::kMillisecond;
constexpr sim::Time kMeasure = 160 * sim::kMillisecond;
const std::vector<int> kClientCounts = {1, 2, 4, 8, 16, 32, 64, 128, 256};

void run_protocol(const std::string& name,
                  const std::function<std::unique_ptr<Deployment>(int)>& factory,
                  ObsSession& obs, const std::string& label, int trace_clients = 0) {
    std::printf("\n--- %s ---\n", name.c_str());
    TablePrinter table(
        {"clients", "tput_ops", "p50_us", "mean_us", "p99_us", "net_us", "cpu_us", "queue_us"});
    auto points = latency_throughput_sweep(factory, kClientCounts, echo_ops(64), kWarmup, kMeasure,
                                           &obs, label, trace_clients);
    for (const auto& pt : points) {
        table.row({std::to_string(pt.clients), fmt_double(pt.m.throughput_ops, 0),
                   fmt_double(pt.m.p50_us, 1), fmt_double(pt.m.mean_us, 1),
                   fmt_double(pt.m.p99_us, 1), fmt_double(pt.m.net_us_per_op, 1),
                   fmt_double(pt.m.cpu_us_per_op, 1), fmt_double(pt.m.queue_us_per_op, 1)});
    }
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 7: latency vs throughput, echo-RPC, N=4 (f=1) ===\n");
    std::printf("paper: Neo-HM tput = 2.5x PBFT, 3.4x HotStuff, 4.1x MinBFT, 1.8x Zyzzyva;\n");
    std::printf("       Zyzzyva-F tput drop >54%%; Neo-PK ~60K below Neo-HM;\n");
    std::printf("       Neo-HM latency 14.7x better than PBFT, 42x HotStuff, 8.6x Zyzzyva,\n");
    std::printf("       6.1x MinBFT\n");

    run_protocol("Unreplicated", [](int clients) {
        CommonParams p;
        p.n_clients = clients;
        return make_unreplicated(p);
    }, obs, "unreplicated");

    run_protocol("Neo-HM", [](int clients) {
        NeoParams p;
        p.n_clients = clients;
        p.variant = NeoVariant::kHm;
        return make_neobft(p);
    }, obs, "neo_hm", -1);

    run_protocol("Neo-PK", [](int clients) {
        NeoParams p;
        p.n_clients = clients;
        p.variant = NeoVariant::kPk;
        return make_neobft(p);
    }, obs, "neo_pk");

    run_protocol("Neo-BN (Byzantine network)", [](int clients) {
        NeoParams p;
        p.n_clients = clients;
        p.variant = NeoVariant::kBn;
        return make_neobft(p);
    }, obs, "neo_bn");

    run_protocol("Zyzzyva", [](int clients) {
        ZyzzyvaParams p;
        p.n_clients = clients;
        return make_zyzzyva(p);
    }, obs, "zyzzyva");

    run_protocol("Zyzzyva-F (one faulty replica)", [](int clients) {
        ZyzzyvaParams p;
        p.n_clients = clients;
        p.faulty_replica = true;
        return make_zyzzyva(p);
    }, obs, "zyzzyva_f");

    run_protocol("PBFT", [](int clients) {
        CommonParams p;
        p.n_clients = clients;
        return make_pbft(p);
    }, obs, "pbft");

    run_protocol("HotStuff", [](int clients) {
        CommonParams p;
        p.n_clients = clients;
        p.batch_max = 8;  // modest batching (the paper notes aggressive
        // batching lifts HotStuff's throughput but pushes latency >10ms)
        return make_hotstuff(p);
    }, obs, "hotstuff");

    run_protocol("MinBFT", [](int clients) {
        CommonParams p;
        p.n_clients = clients;
        return make_minbft(p);
    }, obs, "minbft");

    return 0;
}
