// Figure 8 at 10x scale: NeoBFT with replica groups up to 1000+ on the
// software-sequencer profile — the sweep the single-core engine could not
// touch. Every point runs TWICE: once on the serial engine and once with
// --sim-threads N partitions, asserts the simulated results are identical
// (same committed ops, same latency percentiles, same packet counts), and
// reports the host wall-clock speedup.
//
// The simulated numbers extend the paper's Fig 8 claim (Neo-PK per-replica
// work is constant; Neo-HM decays with ceil(n/4) subgroup packets); the
// host_ns columns are this engine's own scaling story. Speedup is bounded
// by the host's core count — on a single-core host both engines serialise
// and the ratio is ~1 minus barrier overhead.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

struct RunOut {
    Measured m;
    std::uint64_t packets = 0;
    std::uint64_t executed = 0;
    double host_ns = 0;
};

RunOut run_once(NeoVariant variant, int replicas, unsigned sim_threads, std::uint64_t seed,
                bool quick, crypto::CryptoMode crypto_mode) {
    NeoParams p;
    p.n_replicas = replicas;
    p.n_clients = 16;
    p.variant = variant;
    p.software_sequencer = true;
    p.seed = seed;
    p.sim_threads = sim_threads;
    p.crypto_mode = crypto_mode;
    auto t0 = std::chrono::steady_clock::now();
    auto d = make_neobft(p);
    Measured m = run_closed_loop(*d, echo_ops(64), 2 * sim::kMillisecond,
                                 quick ? 4 * sim::kMillisecond : 10 * sim::kMillisecond);
    auto t1 = std::chrono::steady_clock::now();
    RunOut out;
    out.m = m;
    out.packets = d->network().packets_delivered();
    out.executed = d->simulator().executed_events();
    out.host_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return out;
}

/// Exact equality — the PDES contract is byte-identical simulated results,
/// not "close enough".
bool same_results(const RunOut& a, const RunOut& b) {
    return a.m.completed == b.m.completed && a.m.throughput_ops == b.m.throughput_ops &&
           a.m.p50_us == b.m.p50_us && a.m.p99_us == b.m.p99_us && a.m.p999_us == b.m.p999_us &&
           a.m.mean_us == b.m.mean_us && a.packets == b.packets && a.executed == b.executed;
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig8_10x");
    const unsigned par = bm.opt().sim_threads > 1 ? bm.opt().sim_threads : 8;
    std::printf("=== Figure 8 x10: NeoBFT at 100..1000+ replicas, serial vs %u-way PDES ===\n\n",
                par);

    const std::vector<int> replica_counts =
        bm.quick() ? std::vector<int>{64, 256} : std::vector<int>{100, 250, 500, 1000};

    std::vector<BenchPointSpec> points;
    for (NeoVariant variant : {NeoVariant::kHm, NeoVariant::kPk}) {
        const char* prefix = variant == NeoVariant::kHm ? "neo_hm" : "neo_pk";
        for (int n : replica_counts) {
            points.push_back({
                std::string(prefix) + ".n" + std::to_string(n),
                {{"replicas", static_cast<double>(n)}},
                [variant, n, par, quick = bm.quick()](RunCtx& ctx) {
                    std::uint64_t seed = ctx.seed() + static_cast<std::uint64_t>(n);
                    RunOut serial = run_once(variant, n, 1, seed, quick, ctx.crypto_mode());
                    RunOut parallel = run_once(variant, n, par, seed, quick, ctx.crypto_mode());
                    if (!same_results(serial, parallel)) {
                        std::fprintf(stderr,
                                     "fig8_10x: serial / %u-thread results DIVERGED at n=%d\n",
                                     par, n);
                        std::abort();  // determinism is the contract; fail loudly
                    }
                    return std::map<std::string, double>{
                        {"tput_ops", serial.m.throughput_ops},
                        {"p50_us", serial.m.p50_us},
                        {"executed_events", static_cast<double>(serial.executed)},
                        {"host_serial_ns", serial.host_ns},
                        {"host_parallel_ns", parallel.host_ns},
                        {"speedup", serial.host_ns / std::max(1.0, parallel.host_ns)},
                    };
                },
                false,
            });
        }
    }
    std::vector<PointResult> results = bm.run(points);

    std::size_t i = 0;
    for (const char* name : {"Neo-HM", "Neo-PK"}) {
        std::printf("--- %s ---\n", name);
        TablePrinter table(
            {"replicas", "tput_ops", "p50_us", "events", "serial_ms", "par_ms", "speedup"});
        for (int n : replica_counts) {
            const PointResult& r = results[i++];
            table.row({std::to_string(n), fmt_double(r.mean("tput_ops"), 0),
                       fmt_double(r.mean("p50_us"), 1), fmt_double(r.mean("executed_events"), 0),
                       fmt_double(r.mean("host_serial_ns") / 1e6, 0),
                       fmt_double(r.mean("host_parallel_ns") / 1e6, 0),
                       fmt_double(r.mean("speedup"), 2)});
        }
        std::printf("\n");
    }
    std::printf("serial and %u-thread runs produced identical simulated results at every point\n",
                par);
    return 0;
}
