// Figure 8: NeoBFT throughput as the replica count grows to 100 (software
// sequencer profile, matching the paper's EC2 methodology).
//
// paper: Neo-PK loses only ~13% from 4 to 100 replicas (constant per-replica
//        work); Neo-HM decays with group size (ceil(n/4) packets/request).
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

double max_tput(NeoVariant variant, int replicas, ObsSession& obs) {
    NeoParams p;
    p.n_replicas = replicas;
    p.n_clients = replicas > 50 ? 32 : 48;  // enough closed-loop clients to saturate
    p.variant = variant;
    p.software_sequencer = true;
    p.seed = 42 + static_cast<std::uint64_t>(replicas);
    auto d = make_neobft(p);
    std::string label = std::string(variant == NeoVariant::kHm ? "neo_hm" : "neo_pk") + ".n" +
                        std::to_string(replicas);
    ObsRun run(obs, *d, label);
    Measured m = run_closed_loop(*d, echo_ops(64), 10 * sim::kMillisecond,
                                 replicas > 30 ? 30 * sim::kMillisecond : 80 * sim::kMillisecond);
    return m.throughput_ops;
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 8: NeoBFT throughput vs number of replicas ===\n");
    std::printf("(software sequencer profile; paper ran this on EC2 with a software switch)\n\n");
    TablePrinter table({"replicas", "Neo-HM_ops", "Neo-PK_ops"});
    for (int n : {4, 10, 22, 40, 100}) {
        double hm = max_tput(NeoVariant::kHm, n, obs);
        double pk = max_tput(NeoVariant::kPk, n, obs);
        table.row({std::to_string(n), fmt_double(hm, 0), fmt_double(pk, 0)});
    }
    std::printf("\npaper anchors: Neo-PK -13%% from 4 to 100 replicas; Neo-HM decays faster\n");
    return 0;
}
