// Figure 8: NeoBFT throughput as the replica count grows to 100 (software
// sequencer profile, matching the paper's EC2 methodology).
//
// paper: Neo-PK loses only ~13% from 4 to 100 replicas (constant per-replica
//        work); Neo-HM decays with group size (ceil(n/4) packets/request).
#include <cstdio>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

BenchPointSpec scale_point(NeoVariant variant, int replicas) {
    std::string prefix = variant == NeoVariant::kHm ? "neo_hm" : "neo_pk";
    return {
        prefix + ".n" + std::to_string(replicas),
        {{"replicas", static_cast<double>(replicas)}},
        [variant, replicas](RunCtx& ctx) {
            NeoParams p;
            p.n_replicas = replicas;
            p.n_clients = replicas > 50 ? 32 : 48;  // enough closed-loop clients to saturate
            p.variant = variant;
            p.software_sequencer = true;
            // Decorrelate the sweep points (as the fixed-seed version did).
            p.seed = ctx.seed() + static_cast<std::uint64_t>(replicas);
            p.sim_threads = ctx.sim_threads();
            auto d = make_neobft(p);
            auto obs = ctx.attach(*d);
            Measured m = run_closed_loop(
                *d, echo_ops(64), 10 * sim::kMillisecond,
                replicas > 30 ? 30 * sim::kMillisecond : 80 * sim::kMillisecond);
            return std::map<std::string, double>{{"tput_ops", m.throughput_ops}};
        },
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig8_scalability");
    std::printf("=== Figure 8: NeoBFT throughput vs number of replicas ===\n");
    std::printf("(software sequencer profile; paper ran this on EC2 with a software switch)\n\n");

    const std::vector<int> replica_counts =
        bm.quick() ? std::vector<int>{4, 22} : std::vector<int>{4, 10, 22, 40, 100};
    std::vector<BenchPointSpec> points;
    for (int n : replica_counts) points.push_back(scale_point(NeoVariant::kHm, n));
    for (int n : replica_counts) points.push_back(scale_point(NeoVariant::kPk, n));
    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"replicas", "Neo-HM_ops", "Neo-PK_ops"});
    for (std::size_t i = 0; i < replica_counts.size(); ++i) {
        table.row({std::to_string(replica_counts[i]), fmt_double(results[i].mean("tput_ops"), 0),
                   fmt_double(results[replica_counts.size() + i].mean("tput_ops"), 0)});
    }
    std::printf("\npaper anchors: Neo-PK -13%% from 4 to 100 replicas; Neo-HM decays faster\n");
    return 0;
}
