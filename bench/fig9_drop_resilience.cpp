// Figure 9: NeoBFT maximum throughput under simulated network packet drops
// (0.001% .. 1%).
//
// paper: largely unaffected at moderate drop rates (drop-notifications and
//        QUERY recovery are cheap); visible decline at 1%.
#include <cstdio>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

BenchPointSpec drop_point(NeoVariant variant, double drop_rate, bool quick) {
    std::string prefix = variant == NeoVariant::kHm ? "neo_hm" : "neo_pk";
    return {
        prefix + ".drop" + fmt_double(drop_rate * 100, 4),
        {{"drop_rate_pct", drop_rate * 100}},
        [variant, drop_rate, quick](RunCtx& ctx) {
            NeoParams p;
            p.n_clients = 64;
            p.variant = variant;
            p.drop_rate = drop_rate;
            // Reorder window: the simulated fabric jitters by <1us, so a
            // missing sequence number is a real loss after ~100us; a long
            // timeout would stall the in-order pipeline for the whole wait
            // (drop-notifications gate delivery of everything behind them).
            p.receiver.gap_timeout = 100 * sim::kMicrosecond;
            p.seed = ctx.seed() + static_cast<std::uint64_t>(drop_rate * 1e7);
            p.sim_threads = ctx.sim_threads();
            auto d = make_neobft(p);
            auto obs = ctx.attach(*d);
            Measured m = run_closed_loop(*d, echo_ops(64),
                                         quick ? 10 * sim::kMillisecond : 40 * sim::kMillisecond,
                                         quick ? 50 * sim::kMillisecond : 200 * sim::kMillisecond);
            return std::map<std::string, double>{{"tput_ops", m.throughput_ops}};
        },
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig9_drop_resilience");
    std::printf("=== Figure 9: NeoBFT throughput vs simulated drop rate ===\n\n");

    const std::vector<double> rates = bm.quick()
                                          ? std::vector<double>{0.0, 0.001}
                                          : std::vector<double>{0.0, 0.00001, 0.0001, 0.001, 0.01};
    std::vector<BenchPointSpec> points;
    for (double rate : rates) points.push_back(drop_point(NeoVariant::kHm, rate, bm.quick()));
    for (double rate : rates) points.push_back(drop_point(NeoVariant::kPk, rate, bm.quick()));
    std::vector<PointResult> results = bm.run(points);

    TablePrinter table({"drop_rate", "Neo-HM_ops", "Neo-PK_ops"});
    for (std::size_t i = 0; i < rates.size(); ++i) {
        table.row({fmt_double(rates[i] * 100, 4) + "%", fmt_double(results[i].mean("tput_ops"), 0),
                   fmt_double(results[rates.size() + i].mean("tput_ops"), 0)});
    }
    std::printf("\npaper anchors: flat through 0.1%%, visible drop at 1%%\n");
    return 0;
}
