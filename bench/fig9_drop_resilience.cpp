// Figure 9: NeoBFT maximum throughput under simulated network packet drops
// (0.001% .. 1%).
//
// paper: largely unaffected at moderate drop rates (drop-notifications and
//        QUERY recovery are cheap); visible decline at 1%.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

double max_tput(NeoVariant variant, double drop_rate, ObsSession& obs) {
    NeoParams p;
    p.n_clients = 64;
    p.variant = variant;
    p.drop_rate = drop_rate;
    // Reorder window: the simulated fabric jitters by <1us, so a missing
    // sequence number is a real loss after ~100us; a long timeout would
    // stall the in-order pipeline for the whole wait (drop-notifications
    // gate delivery of everything behind them).
    p.receiver.gap_timeout = 100 * sim::kMicrosecond;
    p.seed = 42 + static_cast<std::uint64_t>(drop_rate * 1e7);
    auto d = make_neobft(p);
    std::string label = std::string(variant == NeoVariant::kHm ? "neo_hm" : "neo_pk") + ".drop" +
                        fmt_double(drop_rate * 100, 4);
    ObsRun run(obs, *d, label);
    Measured m =
        run_closed_loop(*d, echo_ops(64), 40 * sim::kMillisecond, 200 * sim::kMillisecond);
    return m.throughput_ops;
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Figure 9: NeoBFT throughput vs simulated drop rate ===\n\n");
    TablePrinter table({"drop_rate", "Neo-HM_ops", "Neo-PK_ops"});
    for (double rate : {0.0, 0.00001, 0.0001, 0.001, 0.01}) {
        table.row({fmt_double(rate * 100, 4) + "%",
                   fmt_double(max_tput(NeoVariant::kHm, rate, obs), 0),
                   fmt_double(max_tput(NeoVariant::kPk, rate, obs), 0)});
    }
    std::printf("\npaper anchors: flat through 0.1%%, visible drop at 1%%\n");
    return 0;
}
