// §6.4 "Sequencer switch failover": throughput timeline around a sequencer
// failure.
//
// paper: throughput drops to zero on failure; the view change completes in
//        <200us; total failover <100ms, dominated by network reconfiguration;
//        throughput then returns to its previous peak.
#include <cstdio>
#include <memory>
#include <vector>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

constexpr sim::Time kBucket = 10 * sim::kMillisecond;
constexpr sim::Time kFailAt = 200 * sim::kMillisecond;
constexpr sim::Time kEnd = 600 * sim::kMillisecond;

std::string bucket_metric(std::size_t i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "tput_t%03zu", i * 10);  // bucket start in ms
    return buf;
}

std::map<std::string, double> run_failover(RunCtx& ctx) {
    NeoParams p;
    p.n_clients = 32;
    p.variant = NeoVariant::kHm;
    p.seed = ctx.seed();
    p.sim_threads = ctx.sim_threads();
    auto d = make_neobft(p);
    auto obs = ctx.attach(*d);
    sim::Simulator& sim = d->simulator();

    // Throughput sampled in 10ms buckets. Client completions fire on the
    // client's partition, so each client accumulates into its own row (and
    // draws from its own RNG stream); rows are summed after the run.
    const auto nbuckets = static_cast<std::size_t>(kEnd / kBucket);
    auto per_client =
        std::make_shared<std::vector<std::vector<std::uint64_t>>>(
            static_cast<std::size_t>(p.n_clients), std::vector<std::uint64_t>(nbuckets, 0));
    auto rngs = std::make_shared<std::vector<StreamRng>>();
    for (int c = 0; c < p.n_clients; ++c) {
        rngs->emplace_back(ctx.seed() + 1'000'003, static_cast<std::uint64_t>(c));
    }

    auto issue = std::make_shared<std::function<void(int)>>();
    *issue = [&d, issue, per_client, rngs](int c) {
        if (d->simulator().now() >= kEnd) return;
        d->invoke(c, (*rngs)[static_cast<std::size_t>(c)].bytes(64),
                  [&d, issue, per_client, c](Bytes) {
                      auto& row = (*per_client)[static_cast<std::size_t>(c)];
                      auto idx = static_cast<std::size_t>(d->simulator().now() / kBucket);
                      if (idx < row.size()) ++row[idx];
                      (*issue)(c);
                  });
    };
    for (int c = 0; c < p.n_clients; ++c) (*issue)(c);

    sim.run_until(kFailAt);
    d->inject_sequencer_failure();
    sim.run_until(kEnd);

    std::vector<std::uint64_t> buckets(nbuckets, 0);
    for (const auto& row : *per_client) {
        for (std::size_t i = 0; i < nbuckets; ++i) buckets[i] += row[i];
    }

    // Recovery analysis: first bucket at >=80% of the pre-failure rate.
    std::size_t fail_bucket = static_cast<std::size_t>(kFailAt / kBucket);
    double before = 0;
    for (std::size_t i = fail_bucket - 5; i < fail_bucket; ++i) {
        before += static_cast<double>(buckets[i]);
    }
    before /= 5;
    std::size_t recovered_at = buckets.size();
    for (std::size_t i = fail_bucket; i < buckets.size(); ++i) {
        if (static_cast<double>(buckets[i]) >= 0.8 * before) {
            recovered_at = i;
            break;
        }
    }
    // Not recovering within the window reports the full window — a real
    // regression, not a silent sentinel.
    double recovered_ms = sim::to_ms(static_cast<sim::Time>(
        (recovered_at < buckets.size() ? recovered_at - fail_bucket : buckets.size()) *
        kBucket));

    std::map<std::string, double> metrics{
        {"failovers", static_cast<double>(d->failovers())},
        {"recovered_ms", recovered_ms},
        {"pre_failure_tput_ops", before / sim::to_sec(kBucket)},
    };
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        metrics[bucket_metric(i)] = static_cast<double>(buckets[i]) / sim::to_sec(kBucket);
    }
    return metrics;
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig9b_failover");
    std::printf("=== §6.4: NeoBFT throughput during sequencer failover ===\n\n");
    std::printf("sequencer killed at t=%.0fms\n\n", sim::to_ms(kFailAt));

    std::vector<PointResult> results =
        bm.run({{"failover", {}, [](RunCtx& ctx) { return run_failover(ctx); }}});
    const PointResult& r = results[0];

    TablePrinter table({"t_ms", "tput_ops"});
    for (std::size_t i = 0; i < static_cast<std::size_t>(kEnd / kBucket); ++i) {
        table.row({fmt_double(sim::to_ms(static_cast<sim::Time>(i) * kBucket), 0),
                   fmt_double(r.mean(bucket_metric(i)), 0)});
    }

    std::printf("\nfailovers performed: %.0f\n", r.mean("failovers"));
    double recovered_ms = r.mean("recovered_ms");
    if (recovered_ms < sim::to_ms(kEnd - kFailAt)) {
        std::printf("throughput recovered to >=80%% of pre-failure rate after ~%.0f ms\n",
                    recovered_ms);
    } else {
        std::printf("throughput did NOT recover within the window\n");
    }
    std::printf("paper anchor: total failover <100ms, view change <200us of it\n");
    return 0;
}
