// §6.4 "Sequencer switch failover": throughput timeline around a sequencer
// failure.
//
// paper: throughput drops to zero on failure; the view change completes in
//        <200us; total failover <100ms, dominated by network reconfiguration;
//        throughput then returns to its previous peak.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== §6.4: NeoBFT throughput during sequencer failover ===\n\n");

    NeoParams p;
    p.n_clients = 32;
    p.variant = NeoVariant::kHm;
    auto d = make_neobft(p);
    ObsRun obs_run(obs, *d, "failover");
    sim::Simulator& sim = d->simulator();

    // Throughput sampled in 10ms buckets.
    constexpr sim::Time kBucket = 10 * sim::kMillisecond;
    constexpr sim::Time kFailAt = 200 * sim::kMillisecond;
    constexpr sim::Time kEnd = 600 * sim::kMillisecond;
    std::vector<std::uint64_t> buckets(static_cast<std::size_t>(kEnd / kBucket), 0);

    auto issue = std::make_shared<std::function<void(int)>>();
    auto rng = std::make_shared<Rng>(7);
    *issue = [&d, issue, &buckets, rng](int c) {
        if (d->simulator().now() >= kEnd) return;
        d->invoke(c, rng->bytes(64), [&d, issue, &buckets, c](Bytes) {
            auto idx = static_cast<std::size_t>(d->simulator().now() / kBucket);
            if (idx < buckets.size()) ++buckets[idx];
            (*issue)(c);
        });
    };
    for (int c = 0; c < p.n_clients; ++c) (*issue)(c);

    sim.run_until(kFailAt);
    d->inject_sequencer_failure();
    std::printf("sequencer killed at t=%.0fms\n\n", sim::to_ms(kFailAt));
    sim.run_until(kEnd);

    TablePrinter table({"t_ms", "tput_ops"});
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        double t = sim::to_ms(static_cast<sim::Time>(i) * kBucket);
        double tput = static_cast<double>(buckets[i]) / sim::to_sec(kBucket);
        table.row({fmt_double(t, 0), fmt_double(tput, 0)});
    }

    // Recovery analysis.
    std::size_t fail_bucket = static_cast<std::size_t>(kFailAt / kBucket);
    double before = 0;
    for (std::size_t i = fail_bucket - 5; i < fail_bucket; ++i) before += static_cast<double>(buckets[i]);
    before /= 5;
    std::size_t recovered_at = buckets.size();
    for (std::size_t i = fail_bucket; i < buckets.size(); ++i) {
        if (static_cast<double>(buckets[i]) >= 0.8 * before) {
            recovered_at = i;
            break;
        }
    }
    std::printf("\nfailovers performed: %llu\n",
                static_cast<unsigned long long>(d->failovers()));
    if (recovered_at < buckets.size()) {
        std::printf("throughput recovered to >=80%% of pre-failure rate after ~%.0f ms\n",
                    sim::to_ms(static_cast<sim::Time>(recovered_at - fail_bucket) * kBucket));
    } else {
        std::printf("throughput did NOT recover within the window\n");
    }
    std::printf("paper anchor: total failover <100ms, view change <200us of it\n");
    return 0;
}
