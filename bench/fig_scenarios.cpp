// Byzantine scenario matrix: every canonical fault scenario from
// src/scenario's library, run over every protocol in the evaluation
// (NeoBFT-HM, NeoBFT-PK, PBFT, Zyzzyva, HotStuff, MinBFT), with the
// obs::Auditor checking safety (expected violations MUST fire, anything
// else fails) and the liveness floor (every client commits) on each run.
//
// NeoBFT rows run with the Byzantine sequencer switch installed and
// checkpointing enabled, so the sequencer-fault scenarios (skipped
// seqnums, unsigned packets, wire equivocation) and the full
// crash-recover-state-transfer lifecycle are exercised; on the
// sequencer-less baselines those faults are no-ops and the scenario
// degrades to a clean liveness run (matrix uniformity).
//
// Modes:
//   default / --quick   fixed matrix; exit 1 unless EVERY cell passes
//   --fuzz <N>          N seed-randomised scenarios (scenario::fuzz) per
//                       NeoBFT variant; every seed is printed so a failing
//                       composition is reproducible from the log
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/scenario_run.hpp"
#include "scenario/scenario.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

const std::vector<std::string> kProtocols = {"neo_hm", "neo_pk", "pbft",
                                             "zyzzyva", "hotstuff", "minbft"};

std::unique_ptr<Deployment> make_proto(const std::string& proto, std::uint64_t seed,
                                       unsigned sim_threads, crypto::CryptoMode mode) {
    if (proto == "neo_hm" || proto == "neo_pk") {
        NeoParams p;
        p.variant = proto == "neo_pk" ? NeoVariant::kPk : NeoVariant::kHm;
        p.n_clients = 4;
        p.seed = seed;
        p.sim_threads = sim_threads;
        p.crypto_mode = mode;
        p.byz_sequencer = true;
        p.checkpoint_interval = 128;  // must be a multiple of sync_interval
        return make_neobft(p);
    }
    if (proto == "zyzzyva") {
        ZyzzyvaParams p;
        p.n_clients = 4;
        p.seed = seed;
        p.sim_threads = sim_threads;
        p.crypto_mode = mode;
        return make_zyzzyva(p);
    }
    CommonParams p;
    p.n_clients = 4;
    p.seed = seed;
    p.sim_threads = sim_threads;
    p.crypto_mode = mode;
    if (proto == "pbft") return make_pbft(p);
    if (proto == "hotstuff") return make_hotstuff(p);
    if (proto == "minbft") return make_minbft(p);
    std::fprintf(stderr, "unknown protocol %s\n", proto.c_str());
    std::abort();
}

/// Scenario names are protocol-independent; the replica-parameterised
/// schedule is rebuilt per deployment at run time.
std::vector<std::string> scenario_names(bool quick) {
    if (quick) {
        return {"crash_recover", "equivocating_replica", "minority_partition", "seq_skips"};
    }
    std::vector<std::string> names;
    for (const auto& sc : scenario::standard_suite({1, 2, 3, 4}, 1'000'000)) {
        names.push_back(sc.name);
    }
    return names;
}

scenario::Scenario scenario_by_name(const std::string& name, const std::vector<NodeId>& replicas,
                                    sim::Time horizon) {
    for (auto& sc : scenario::standard_suite(replicas, horizon)) {
        if (sc.name == name) return sc;
    }
    std::fprintf(stderr, "unknown scenario %s\n", name.c_str());
    std::abort();
}

std::map<std::string, double> outcome_metrics(const ScenarioOutcome& out) {
    return {
        {"ok", out.ok ? 1.0 : 0.0},
        {"completed", static_cast<double>(out.total_completed)},
        {"min_client_completed", static_cast<double>(out.min_client_completed)},
        {"violations", static_cast<double>(out.violations.size())},
        {"unexpected", static_cast<double>(out.unexpected.size())},
        {"missing", static_cast<double>(out.missing.size())},
    };
}

}  // namespace

int main(int argc, char** argv) {
    // --fuzz <N> is specific to this binary; the uniform flags (--seed,
    // --quick, --sim-threads, --json, ...) are parsed by BenchMain.
    int fuzz_n = 0;
    std::string only;  // --only <substr>: run matching matrix cells only
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--fuzz") == 0 && i + 1 < argc) {
            fuzz_n = std::atoi(argv[i + 1]);
        }
        if (std::strcmp(argv[i], "--only") == 0 && i + 1 < argc) {
            only = argv[i + 1];
        }
    }

    BenchMain bm(argc, argv, "fig_scenarios");
    const sim::Time horizon = bm.quick() ? 20 * sim::kMillisecond : 60 * sim::kMillisecond;
    const OpGen ops = echo_ops(64);

    if (fuzz_n > 0) {
        // Fuzzer mode: randomised fault compositions over both NeoBFT
        // variants (the richest fault surface: sequencer + recovery).
        std::printf("=== Scenario fuzzer: %d seeds from base %" PRIu64 " ===\n", fuzz_n,
                    bm.base_seed());
        int failures = 0;
        for (int i = 0; i < fuzz_n; ++i) {
            std::uint64_t fuzz_seed = bm.base_seed() + static_cast<std::uint64_t>(i);
            for (const std::string& proto : {std::string("neo_hm"), std::string("neo_pk")}) {
                auto d = make_proto(proto, fuzz_seed, bm.opt().sim_threads,
                                    bm.opt().real_crypto ? crypto::CryptoMode::kReal
                                                         : crypto::CryptoMode::kModeled);
                scenario::Scenario sc = scenario::fuzz(fuzz_seed, d->replica_ids(), horizon);
                ScenarioOutcome out = run_scenario(*d, sc, ops, horizon);
                std::printf("fuzz seed=%" PRIu64 " proto=%s %s\n", fuzz_seed, proto.c_str(),
                            out.to_string().c_str());
                if (!out.ok) ++failures;
            }
        }
        if (failures > 0) {
            std::fprintf(stderr, "fig_scenarios: %d fuzz runs FAILED (seeds above)\n", failures);
            return 1;
        }
        std::printf("all %d fuzz compositions passed safety + liveness\n", fuzz_n * 2);
        return 0;
    }

    const std::vector<std::string> names = scenario_names(bm.quick());
    std::printf("=== Scenario matrix: %zu scenarios x %zu protocols, auditor-checked ===\n\n",
                names.size(), kProtocols.size());

    std::vector<BenchPointSpec> points;
    for (const std::string& proto : kProtocols) {
        for (const std::string& name : names) {
            if (!only.empty() && (proto + "." + name).find(only) == std::string::npos) continue;
            points.push_back({
                proto + "." + name,
                {},
                [proto, name, horizon, &ops](RunCtx& ctx) {
                    auto d = make_proto(proto, ctx.seed(), ctx.sim_threads(), ctx.crypto_mode());
                    auto obs = ctx.attach(*d);
                    scenario::Scenario sc = scenario_by_name(name, d->replica_ids(), horizon);
                    ScenarioOutcome out = run_scenario(*d, sc, ops, horizon);
                    if (!out.ok) {
                        std::fprintf(stderr, "fig_scenarios: %s %s\n", proto.c_str(),
                                     out.to_string().c_str());
                    }
                    return outcome_metrics(out);
                },
                // Every cell is a trace candidate; the first to run claims
                // the --trace export (a faulty run's span stream is the
                // interesting one to look at).
                true,
            });
        }
    }
    std::vector<PointResult> results = bm.run(points);

    bool all_ok = true;
    if (!only.empty()) {
        for (const PointResult& r : results) {
            bool ok = r.mean("ok") >= 1.0;
            all_ok = all_ok && ok;
            std::printf("%s: %s\n", r.name.c_str(), ok ? "ok" : "FAIL");
        }
        return all_ok ? 0 : 1;
    }
    std::size_t i = 0;
    for (const std::string& proto : kProtocols) {
        std::printf("--- %s ---\n", proto.c_str());
        TablePrinter table({"scenario", "ok", "completed", "min_client", "violations"});
        for (const std::string& name : names) {
            const PointResult& r = results[i++];
            bool ok = r.mean("ok") >= 1.0;  // every seed must pass
            all_ok = all_ok && ok;
            table.row({name, ok ? "yes" : "NO", fmt_double(r.mean("completed"), 0),
                       fmt_double(r.mean("min_client_completed"), 0),
                       fmt_double(r.mean("violations"), 1)});
        }
        std::printf("\n");
    }

    if (!all_ok) {
        std::fprintf(stderr, "fig_scenarios: matrix has failing cells\n");
        return 1;
    }
    std::printf("all %zu matrix cells passed safety + liveness\n", results.size());
    return 0;
}
