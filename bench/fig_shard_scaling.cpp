// Shard-scaling sweep: aggregate committed transaction throughput of the
// multi-group sharded deployment as the shard count grows, at several
// cross-shard transaction ratios. The 0% column is the headline scaling
// claim (disjoint groups sequence independently, so aggregate Mops/s grows
// with the shard count until clients stop saturating); the nonzero columns
// price cross-shard 2PC — every cross-shard transaction pays two ordered
// ops per participant plus a coordinator round.
//
// Every point runs TWICE — serial engine and --sim-threads N — with full
// JSONL traces attached, and aborts unless the two runs are byte-identical
// (metrics AND trace): the determinism contract, enforced per point.
//
// The binary fails (exit 1) if the 8-shard/0% point does not reach 3x the
// 1-shard/0% aggregate committed throughput — the scaling acceptance gate.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

struct RunOut {
    Measured m;
    Deployment::TxnTotals window;  // committed in the measure window
    std::uint64_t packets = 0;
    std::uint64_t executed = 0;
    std::string trace;
    double host_ns = 0;
};

RunOut run_once(int shards, double cross_ratio, int n_clients, unsigned sim_threads,
                std::uint64_t seed, bool quick, crypto::CryptoMode crypto_mode) {
    ShardParams p;
    p.n_shards = shards;
    p.n_replicas = 4;
    p.n_clients = n_clients;
    p.seed = seed;
    p.sim_threads = sim_threads;
    p.crypto_mode = crypto_mode;

    ShardTxnWorkload w;
    w.n_shards = shards;
    w.cross_shard_ratio = cross_ratio;
    w.seed = seed;

    const sim::Time warmup = 2 * sim::kMillisecond;
    const sim::Time measure = quick ? 5 * sim::kMillisecond : 20 * sim::kMillisecond;

    auto t0 = std::chrono::steady_clock::now();
    auto d = make_sharded_neobft(p);
    OpGen gen = sharded_txn_ops(w, d->n_clients());

    obs::TraceSink sink;
    d->simulator().set_trace(&sink);
    Deployment::TxnTotals at_start;
    Measured m = run_closed_loop(*d, gen, warmup, measure,
                                 [&] { at_start = d->txn_totals(); });
    d->simulator().set_trace(nullptr);
    auto t1 = std::chrono::steady_clock::now();

    RunOut out;
    out.m = m;
    Deployment::TxnTotals end = d->txn_totals();
    out.window.txns_started = end.txns_started - at_start.txns_started;
    out.window.committed_txns = end.committed_txns - at_start.committed_txns;
    out.window.aborted_txns = end.aborted_txns - at_start.aborted_txns;
    out.window.committed_ops = end.committed_ops - at_start.committed_ops;
    out.window.cross_shard_txns = end.cross_shard_txns - at_start.cross_shard_txns;
    out.packets = d->network().packets_delivered();
    out.executed = d->simulator().executed_events();
    std::ostringstream os;
    sink.write_jsonl(os);
    out.trace = os.str();
    out.host_ns =
        static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    return out;
}

bool same_results(const RunOut& a, const RunOut& b) {
    return a.m.completed == b.m.completed && a.m.p50_us == b.m.p50_us &&
           a.m.p99_us == b.m.p99_us && a.m.p999_us == b.m.p999_us && a.m.mean_us == b.m.mean_us &&
           a.window.committed_txns == b.window.committed_txns &&
           a.window.committed_ops == b.window.committed_ops &&
           a.window.aborted_txns == b.window.aborted_txns && a.packets == b.packets &&
           a.executed == b.executed && a.trace == b.trace;
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "fig_shard_scaling");
    const unsigned par = bm.opt().sim_threads > 1 ? bm.opt().sim_threads : 8;
    // Fixed client count across every shard count, sized so the 1-shard
    // point saturates its single group: added shards then raise AGGREGATE
    // throughput rather than just spreading an unsaturated load.
    const int n_clients = bm.quick() ? 32 : 96;
    const sim::Time measure = bm.quick() ? 5 * sim::kMillisecond : 20 * sim::kMillisecond;
    std::printf("=== Shard scaling: aggregate committed Mops/s, %d closed-loop clients, "
                "serial vs %u-way PDES per point ===\n\n",
                n_clients, par);

    const std::vector<int> shard_counts =
        bm.quick() ? std::vector<int>{1, 2, 8} : std::vector<int>{1, 2, 4, 8, 16};
    const std::vector<double> cross_ratios =
        bm.quick() ? std::vector<double>{0.0, 0.20} : std::vector<double>{0.0, 0.01, 0.05, 0.20};

    std::vector<BenchPointSpec> points;
    for (double cross : cross_ratios) {
        for (int s : shard_counts) {
            const int pct = static_cast<int>(std::lround(cross * 100));
            points.push_back({
                "s" + std::to_string(s) + ".x" + std::to_string(pct),
                {{"shards", static_cast<double>(s)}, {"cross_pct", static_cast<double>(pct)}},
                [s, cross, n_clients, par, measure, quick = bm.quick()](RunCtx& ctx) {
                    std::uint64_t seed = ctx.seed() + static_cast<std::uint64_t>(s) * 131;
                    RunOut serial =
                        run_once(s, cross, n_clients, 1, seed, quick, ctx.crypto_mode());
                    RunOut parallel =
                        run_once(s, cross, n_clients, par, seed, quick, ctx.crypto_mode());
                    if (!same_results(serial, parallel)) {
                        std::fprintf(stderr,
                                     "fig_shard_scaling: serial / %u-thread runs DIVERGED at "
                                     "shards=%d cross=%.2f\n",
                                     par, s, cross);
                        std::abort();  // determinism is the contract; fail loudly
                    }
                    const double secs =
                        static_cast<double>(measure) / static_cast<double>(sim::kSecond);
                    const auto& w = serial.window;
                    const double decided =
                        static_cast<double>(w.committed_txns + w.aborted_txns);
                    return std::map<std::string, double>{
                        {"committed_mops", static_cast<double>(w.committed_ops) / secs / 1e6},
                        {"committed_txns", static_cast<double>(w.committed_txns)},
                        {"abort_rate", decided > 0
                                           ? static_cast<double>(w.aborted_txns) / decided
                                           : 0.0},
                        {"cross_txns", static_cast<double>(w.cross_shard_txns)},
                        {"p50_us", serial.m.p50_us},
                        {"p99_us", serial.m.p99_us},
                        {"executed_events", static_cast<double>(serial.executed)},
                        {"host_serial_ns", serial.host_ns},
                        {"host_parallel_ns", parallel.host_ns},
                        // host_ prefix: wall-clock-derived, so the baseline
                        // gate reports it without ever gating on it.
                        {"host_speedup", serial.host_ns / std::max(1.0, parallel.host_ns)},
                    };
                },
                false,
            });
        }
    }
    std::vector<PointResult> results = bm.run(points);

    std::size_t i = 0;
    for (double cross : cross_ratios) {
        std::printf("--- cross-shard ratio %.0f%% ---\n", cross * 100);
        TablePrinter table({"shards", "committed_mops", "committed_txns", "abort_rate", "p50_us",
                            "p99_us", "speedup"});
        for (int s : shard_counts) {
            (void)s;
            const PointResult& r = results[i++];
            table.row({fmt_double(r.params.at("shards"), 0), fmt_double(r.mean("committed_mops"), 3),
                       fmt_double(r.mean("committed_txns"), 0), fmt_double(r.mean("abort_rate"), 3),
                       fmt_double(r.mean("p50_us"), 1), fmt_double(r.mean("p99_us"), 1),
                       fmt_double(r.mean("host_speedup"), 2)});
        }
        std::printf("\n");
    }
    std::printf("serial and %u-thread runs produced byte-identical traces at every point\n", par);

    // Scaling acceptance gate: 8 shards at 0%% cross-shard must deliver at
    // least 3x the 1-shard aggregate committed throughput.
    const PointResult* one = bm.suite().point("s1.x0");
    const PointResult* eight = bm.suite().point("s8.x0");
    if (one && eight) {
        const double ratio = eight->mean("committed_mops") / std::max(1e-12, one->mean("committed_mops"));
        std::printf("scaling: 8 shards / 1 shard at 0%% cross = %.2fx (gate: >= 3.0x)\n", ratio);
        if (ratio < 3.0) {
            std::fprintf(stderr, "fig_shard_scaling: scaling gate FAILED (%.2fx < 3.0x)\n", ratio);
            return 1;
        }
    }
    return 0;
}
