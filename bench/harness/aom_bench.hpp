// aom micro-benchmark fixture (Figs 4-6): an open-loop packet source, the
// sequencer switch, and timestamp-recording sink receivers.
//
// Links are configured with zero latency so the measured source->receiver
// delay isolates the switch data plane (the paper uses ingress/egress
// switch timestamps; see EXPERIMENTS.md).
#pragma once

#include <cmath>
#include <memory>
#include <optional>
#include <string>

#include "aom/config_service.hpp"
#include "aom/sequencer.hpp"
#include "aom/wire.hpp"
#include "common/histogram.hpp"
#include "common/rng.hpp"
#include "crypto/identity.hpp"
#include "crypto/sha256.hpp"
#include "obs/metrics.hpp"
#include "sim/costs.hpp"
#include "sim/network.hpp"

namespace neo::bench {

/// Records per-packet latency using a timestamp the source embeds in the
/// payload. Counts only the first copy of each sequence number (the HM
/// variant delivers one packet per subgroup).
class AomSink : public sim::Node {
  public:
    void on_packet(NodeId, const sim::Packet& pkt) override {
        BytesView data = pkt.view();
        auto kind = aom::peek_kind(data);
        if (!kind) return;
        try {
            Reader r(data.subspan(1));
            if (*kind == static_cast<std::uint8_t>(aom::Wire::kSeqHm)) {
                aom::HmPacket p = aom::HmPacket::parse(r);
                record(p.seq, p.payload);
            } else if (*kind == static_cast<std::uint8_t>(aom::Wire::kSeqPk)) {
                aom::PkPacket p = aom::PkPacket::parse(r);
                record(p.seq, p.payload);
            }
        } catch (const CodecError&) {
        }
    }

    Histogram latency_us;
    std::uint64_t delivered = 0;
    std::optional<sim::Time> first_arrival;
    sim::Time last_arrival = 0;

  private:
    void record(SeqNum seq, const Bytes& payload) {
        if (seq <= last_seq_) return;  // subsequent subgroup copies
        last_seq_ = seq;
        ++delivered;
        if (payload.size() >= 8) {
            Reader r(payload);
            sim::Time sent = r.i64();
            latency_us.add(sim::to_us(sim().now() - sent));
        }
        if (!first_arrival) first_arrival = sim().now();
        last_arrival = sim().now();
    }

    SeqNum last_seq_ = 0;
};

struct AomBenchResult {
    Histogram* latency = nullptr;  // points into the fixture's sink 0
    std::uint64_t delivered = 0;
    double delivered_mpps = 0;     // receiver-observed throughput
    double signed_mpps = 0;        // signature generation rate (PK)
    std::uint64_t tail_drops = 0;
};

class AomBench {
  public:
    /// `sim_threads` is accepted for CLI uniformity; the zero-latency links
    /// give the engine no lookahead, so these fixtures always run serially.
    AomBench(aom::AuthVariant variant, int receivers, std::uint64_t seed = 17,
             aom::SequencerConfig seq_cfg = {}, unsigned sim_threads = 1,
             crypto::CryptoMode crypto_mode = crypto::CryptoMode::kModeled)
        : sim_(sim_threads), net_(sim_, seed), root_(crypto_mode, seed + 1),
          keys_(seed + 2) {
        sim::LinkConfig link;
        link.latency = 0;
        link.jitter = 0;
        link.ns_per_byte = 0;
        net_.set_default_link(link);

        aom::GroupConfig group;
        group.group = 7;
        group.variant = variant;
        group.trust = aom::NetworkTrust::kCrashOnly;
        for (int i = 0; i < receivers; ++i) group.receivers.push_back(1 + static_cast<NodeId>(i));

        switch_ = std::make_unique<aom::SequencerSwitch>(seq_cfg, root_.provision(200), &keys_);
        net_.add_node(*switch_, 200);
        switch_->install_group(group, 1);

        for (int i = 0; i < receivers; ++i) {
            sinks_.push_back(std::make_unique<AomSink>());
            net_.add_node(*sinks_.back(), 1 + static_cast<NodeId>(i));
        }
    }

    /// Service time of one packet at the switch under this configuration
    /// (used to express load as a fraction of capacity).
    sim::Time service_ns(aom::AuthVariant variant, int receivers) const {
        if (variant == aom::AuthVariant::kHmacVector) return sim::hm_service_ns(receivers);
        return sim::kPkChainServiceNs;
    }

    /// Sends `packets` 64-byte aom packets with Poisson arrivals at the
    /// given mean inter-arrival gap (real packet generators are not
    /// perfectly paced; queuing at high load requires arrival variance).
    AomBenchResult run(std::uint64_t packets, sim::Time mean_gap_ns) {
        Rng arrivals(4242);
        sim::Time t = 0;
        for (std::uint64_t i = 0; i < packets; ++i) {
            double u = arrivals.real();
            t += std::max<sim::Time>(
                1, static_cast<sim::Time>(-std::log(1.0 - u) * static_cast<double>(mean_gap_ns)));
            sim_.at(t, [this] {
                Writer payload(64);
                payload.i64(sim_.now());
                payload.raw(Bytes(56, 0xab));  // pad to the paper's 64B packets
                aom::DataPacket pkt;
                pkt.group = 7;
                pkt.payload = payload.bytes();
                pkt.digest = crypto::sha256(pkt.payload);
                net_.send(999, 200, pkt.serialize());
            });
        }
        sim_.run();

        AomBenchResult r;
        r.latency = &sinks_[0]->latency_us;
        r.delivered = sinks_[0]->delivered;
        double duration_s = sim::to_sec(std::max<sim::Time>(
            1, sinks_[0]->last_arrival - sinks_[0]->first_arrival.value_or(0)));
        r.delivered_mpps = static_cast<double>(r.delivered - 1) / duration_s / 1e6;
        r.signed_mpps = static_cast<double>(switch_->signatures_generated()) / duration_s / 1e6;
        r.tail_drops = switch_->tail_drops();
        return r;
    }

    aom::SequencerSwitch& sequencer() { return *switch_; }
    sim::Simulator& simulator() { return sim_; }
    sim::Network& network() { return net_; }

    /// Observability attachment for ObsSession::begin_run's generic form:
    /// registers the switch's and the network's counters under `prefix`
    /// and names the trace tracks.
    void register_obs(obs::Registry& reg, const std::string& prefix, obs::TraceSink* trace) {
        net_.register_metrics(reg, prefix + ".net");
        switch_->register_metrics(reg, prefix + ".sequencer");
        if (trace) {
            trace->set_node_name(200, "sequencer");
            for (std::size_t i = 0; i < sinks_.size(); ++i) {
                trace->set_node_name(static_cast<NodeId>(1 + i),
                                     "receiver " + std::to_string(1 + i));
            }
        }
    }

  private:
    sim::Simulator sim_;
    sim::Network net_;
    crypto::TrustRoot root_;
    aom::AomKeyService keys_;
    std::unique_ptr<aom::SequencerSwitch> switch_;
    std::vector<std::unique_ptr<AomSink>> sinks_;
};

}  // namespace neo::bench
