#include "harness/bench_json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/metrics.hpp"  // json_escape

namespace neo::bench {

namespace {

class Parser {
  public:
    explicit Parser(const std::string& text) : s_(text) {}

    Json parse_document() {
        Json v = parse_value();
        skip_ws();
        if (pos_ != s_.size()) fail("trailing characters after JSON value");
        return v;
    }

  private:
    [[noreturn]] void fail(const std::string& what) {
        throw JsonError("json parse error at offset " + std::to_string(pos_) + ": " + what);
    }

    void skip_ws() {
        while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
                                    s_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        if (pos_ >= s_.size()) fail("unexpected end of input");
        return s_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(const char* lit) {
        std::size_t n = std::char_traits<char>::length(lit);
        if (s_.compare(pos_, n, lit) != 0) return false;
        pos_ += n;
        return true;
    }

    Json parse_value() {
        skip_ws();
        char c = peek();
        switch (c) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return Json(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return Json(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return Json(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return Json();
            default: return parse_number();
        }
    }

    Json parse_object() {
        expect('{');
        Json out = Json::object();
        skip_ws();
        if (peek() == '}') {
            ++pos_;
            return out;
        }
        for (;;) {
            skip_ws();
            std::string key = parse_string();
            skip_ws();
            expect(':');
            out.set(key, parse_value());
            skip_ws();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == '}') {
                ++pos_;
                return out;
            }
            fail("expected ',' or '}' in object");
        }
    }

    Json parse_array() {
        expect('[');
        Json out = Json::array();
        skip_ws();
        if (peek() == ']') {
            ++pos_;
            return out;
        }
        for (;;) {
            out.push_back(parse_value());
            skip_ws();
            char c = peek();
            if (c == ',') {
                ++pos_;
                continue;
            }
            if (c == ']') {
                ++pos_;
                return out;
            }
            fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string() {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= s_.size()) fail("unterminated string");
            char c = s_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) fail("unterminated escape");
            char e = s_[pos_++];
            switch (e) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
                    unsigned cp = 0;
                    for (int i = 0; i < 4; ++i) {
                        char h = s_[pos_++];
                        cp <<= 4;
                        if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad hex digit in \\u escape");
                    }
                    // UTF-8 encode (surrogate pairs are not needed for the
                    // metric names this parser exists to read).
                    if (cp < 0x80) {
                        out += static_cast<char>(cp);
                    } else if (cp < 0x800) {
                        out += static_cast<char>(0xC0 | (cp >> 6));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (cp >> 12));
                        out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (cp & 0x3F));
                    }
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    Json parse_number() {
        std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
                s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
            ++pos_;
        }
        if (pos_ == start) fail("expected a value");
        std::string tok = s_.substr(start, pos_ - start);
        char* end = nullptr;
        double v = std::strtod(tok.c_str(), &end);
        if (end != tok.c_str() + tok.size()) {
            pos_ = start;
            fail("malformed number '" + tok + "'");
        }
        return Json(v);
    }

    const std::string& s_;
    std::size_t pos_ = 0;
};

}  // namespace

Json Json::array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
}

Json Json::object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

Json Json::parse_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw JsonError("cannot open " + path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse(buf.str());
}

double Json::number() const {
    if (type_ != Type::kNumber) throw JsonError("not a number");
    return num_;
}

bool Json::boolean() const {
    if (type_ != Type::kBool) throw JsonError("not a boolean");
    return bool_;
}

const std::string& Json::string() const {
    if (type_ != Type::kString) throw JsonError("not a string");
    return str_;
}

const std::vector<Json>& Json::items() const {
    if (type_ != Type::kArray) throw JsonError("not an array");
    return arr_;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
    if (type_ != Type::kObject) throw JsonError("not an object");
    return obj_;
}

const Json* Json::find(const std::string& key) const {
    if (type_ != Type::kObject) return nullptr;
    for (const auto& [k, v] : obj_) {
        if (k == key) return &v;
    }
    return nullptr;
}

const Json& Json::at(const std::string& key) const {
    const Json* v = find(key);
    if (!v) throw JsonError("missing key \"" + key + "\"");
    return *v;
}

void Json::push_back(Json v) {
    if (type_ != Type::kArray) throw JsonError("push_back on non-array");
    arr_.push_back(std::move(v));
}

void Json::set(const std::string& key, Json v) {
    if (type_ != Type::kObject) throw JsonError("set on non-object");
    for (auto& [k, old] : obj_) {
        if (k == key) {
            old = std::move(v);
            return;
        }
    }
    obj_.emplace_back(key, std::move(v));
}

std::string Json::format_number(double v) {
    if (std::isnan(v)) return "null";  // JSON has no NaN; null marks it
    if (std::isinf(v)) return v > 0 ? "1e308" : "-1e308";
    char buf[64];
    if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15) {
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

void Json::dump_to(std::string& out) const {
    switch (type_) {
        case Type::kNull: out += "null"; break;
        case Type::kBool: out += bool_ ? "true" : "false"; break;
        case Type::kNumber: out += format_number(num_); break;
        case Type::kString:
            out += '"';
            out += obs::json_escape(str_);
            out += '"';
            break;
        case Type::kArray: {
            out += '[';
            for (std::size_t i = 0; i < arr_.size(); ++i) {
                if (i) out += ',';
                arr_[i].dump_to(out);
            }
            out += ']';
            break;
        }
        case Type::kObject: {
            out += '{';
            for (std::size_t i = 0; i < obj_.size(); ++i) {
                if (i) out += ',';
                out += '"';
                out += obs::json_escape(obj_[i].first);
                out += "\":";
                obj_[i].second.dump_to(out);
            }
            out += '}';
            break;
        }
    }
}

std::string Json::dump() const {
    std::string out;
    dump_to(out);
    return out;
}

}  // namespace neo::bench
