// Minimal JSON value, parser and writer for the benchmark suite schema.
//
// The repo's observability layer writes JSON by hand; the compare tool is
// the first thing that must *read* it back, hence this small recursive-
// descent parser. It covers the full JSON grammar (objects, arrays,
// strings with escapes, numbers, booleans, null) but is tuned for the
// BENCH_*.json files: numbers parse to double, object key order is
// preserved so a parse/serialise round-trip of our own output is
// byte-identical.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace neo::bench {

class JsonError : public std::runtime_error {
  public:
    using std::runtime_error::runtime_error;
};

class Json {
  public:
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

    Json() : type_(Type::kNull) {}
    explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
    explicit Json(double v) : type_(Type::kNumber), num_(v) {}
    explicit Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}

    static Json array();
    static Json object();

    /// Parses a complete JSON document; throws JsonError with a byte
    /// offset on malformed input or trailing garbage.
    static Json parse(const std::string& text);
    /// parse() on the contents of `path`; throws JsonError when the file
    /// cannot be read.
    static Json parse_file(const std::string& path);

    Type type() const { return type_; }
    bool is_null() const { return type_ == Type::kNull; }
    bool is_object() const { return type_ == Type::kObject; }
    bool is_array() const { return type_ == Type::kArray; }
    bool is_number() const { return type_ == Type::kNumber; }
    bool is_string() const { return type_ == Type::kString; }
    bool is_bool() const { return type_ == Type::kBool; }

    /// Typed accessors; throw JsonError on a type mismatch.
    double number() const;
    bool boolean() const;
    const std::string& string() const;
    const std::vector<Json>& items() const;          // array elements
    const std::vector<std::pair<std::string, Json>>& members() const;  // object

    /// Object lookup; returns nullptr when absent (or not an object).
    const Json* find(const std::string& key) const;
    /// Object lookup; throws JsonError when absent.
    const Json& at(const std::string& key) const;

    // ---- building (arrays and objects only) ----
    void push_back(Json v);
    void set(const std::string& key, Json v);

    /// Serialises compactly (no whitespace). Doubles print via the same
    /// formatter as the suite writer, so round-trips are byte-stable.
    std::string dump() const;

    /// Canonical number formatting shared with the suite writer: integers
    /// print without a fraction, everything else shortest-round-trip.
    static std::string format_number(double v);

  private:
    void dump_to(std::string& out) const;

    Type type_;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<Json> arr_;
    std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace neo::bench
