#include "harness/compare.hpp"

#include <cmath>

#include "harness/bench_json.hpp"

namespace neo::bench {

const char* delta_status_name(DeltaStatus s) {
    switch (s) {
        case DeltaStatus::kOk: return "ok";
        case DeltaStatus::kImproved: return "improved";
        case DeltaStatus::kRegressed: return "REGRESSED";
        case DeltaStatus::kZeroBaseline: return "zero-baseline";
    }
    return "?";
}

std::size_t CompareReport::regressions() const {
    std::size_t n = 0;
    for (const auto& d : deltas) {
        if (d.status == DeltaStatus::kRegressed) ++n;
    }
    return n;
}

bool is_host_metric(const std::string& name) { return name.rfind("host_", 0) == 0; }

bool is_phase_metric(const std::string& name) { return name.rfind("phase_", 0) == 0; }

Json strip_host_metrics(const Json& suite) {
    if (!suite.is_object()) return suite;
    Json out = Json::object();
    for (const auto& [key, value] : suite.members()) {
        if (key != "points" || !value.is_array()) {
            out.set(key, value);
            continue;
        }
        Json points = Json::array();
        for (const auto& p : value.items()) {
            if (!p.is_object()) {
                points.push_back(p);
                continue;
            }
            Json np = Json::object();
            for (const auto& [pk, pv] : p.members()) {
                if (pk != "metrics" || !pv.is_object()) {
                    np.set(pk, pv);
                    continue;
                }
                Json metrics = Json::object();
                for (const auto& [mk, mv] : pv.members()) {
                    if (!is_host_metric(mk)) metrics.set(mk, mv);
                }
                np.set(pk, std::move(metrics));
            }
            points.push_back(std::move(np));
        }
        out.set(key, std::move(points));
    }
    return out;
}

bool metric_lower_is_better(const std::string& name) {
    auto ends_with = [&name](const char* suffix) {
        std::string s(suffix);
        return name.size() >= s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0;
    };
    if (ends_with("_us") || ends_with("_ns") || ends_with("_ms") || ends_with("_per_op")) {
        return true;
    }
    return name.find("drop") != std::string::npos || name.find("latency") != std::string::npos;
}

double tolerance_for(const CompareConfig& cfg, const std::string& point,
                     const std::string& metric) {
    auto it = cfg.metric_tolerance.find(point + ":" + metric);
    if (it != cfg.metric_tolerance.end()) return it->second;
    it = cfg.metric_tolerance.find(metric);
    if (it != cfg.metric_tolerance.end()) return it->second;
    return cfg.tolerance;
}

namespace {

constexpr double kZeroEps = 1e-12;

const Json* checked_suite(const Json& doc, const char* which,
                          std::vector<std::string>& errors) {
    const Json* schema = doc.find("schema");
    if (!schema || !schema->is_string() || schema->string() != "neo-bench-suite@1") {
        errors.push_back(std::string(which) + ": not a neo-bench-suite@1 document");
        return nullptr;
    }
    const Json* points = doc.find("points");
    if (!points || !points->is_array()) {
        errors.push_back(std::string(which) + ": missing points array");
        return nullptr;
    }
    return points;
}

const Json* find_point(const Json& points, const std::string& name) {
    for (const auto& p : points.items()) {
        const Json* n = p.find("name");
        if (n && n->is_string() && n->string() == name) return &p;
    }
    return nullptr;
}

}  // namespace

CompareReport compare_suites(const Json& baseline, const Json& candidate,
                             const CompareConfig& cfg) {
    CompareReport rep;
    const Json* base_points = checked_suite(baseline, "baseline", rep.errors);
    const Json* cand_points = checked_suite(candidate, "candidate", rep.errors);
    if (!base_points || !cand_points) return rep;

    for (const auto& bp : base_points->items()) {
        const Json* name = bp.find("name");
        if (!name || !name->is_string()) {
            rep.errors.push_back("baseline: point without a name");
            continue;
        }
        const Json* cp = find_point(*cand_points, name->string());
        if (!cp) {
            rep.errors.push_back("candidate is missing point \"" + name->string() + "\"");
            continue;
        }
        const Json* base_metrics = bp.find("metrics");
        const Json* cand_metrics = cp->find("metrics");
        if (!base_metrics || !base_metrics->is_object()) continue;
        for (const auto& [metric, bstats] : base_metrics->members()) {
            const Json* cstats = cand_metrics ? cand_metrics->find(metric) : nullptr;
            // Informational metrics: reported alongside the gated deltas but
            // never regressions, and free to come and go between suites.
            bool host = is_host_metric(metric) || is_phase_metric(metric);
            if (!cstats) {
                if (host) continue;  // informational fields may come and go
                rep.errors.push_back("candidate point \"" + name->string() +
                                     "\" is missing metric \"" + metric + "\"");
                continue;
            }
            if (host) {
                MetricDelta d;
                d.point = name->string();
                d.metric = metric;
                d.lower_is_better = true;
                try {
                    d.base_mean = bstats.at("mean").number();
                    d.cand_mean = cstats->at("mean").number();
                } catch (const JsonError&) {
                    continue;
                }
                if (std::fabs(d.base_mean) < kZeroEps) {
                    d.status = DeltaStatus::kZeroBaseline;
                } else {
                    d.rel_delta = (d.cand_mean - d.base_mean) / std::fabs(d.base_mean);
                }
                rep.host_deltas.push_back(d);
                continue;
            }
            MetricDelta d;
            d.point = name->string();
            d.metric = metric;
            try {
                d.base_mean = bstats.at("mean").number();
                d.cand_mean = cstats->at("mean").number();
            } catch (const JsonError& e) {
                rep.errors.push_back("point \"" + name->string() + "\" metric \"" + metric +
                                     "\": " + e.what());
                continue;
            }
            d.lower_is_better = metric_lower_is_better(metric);
            d.tolerance = tolerance_for(cfg, d.point, d.metric);
            if (std::fabs(d.base_mean) < kZeroEps) {
                d.status = DeltaStatus::kZeroBaseline;
                rep.deltas.push_back(d);
                continue;
            }
            d.rel_delta = (d.cand_mean - d.base_mean) / std::fabs(d.base_mean);
            double bad = d.lower_is_better ? d.rel_delta : -d.rel_delta;
            if (bad > d.tolerance) {
                d.status = DeltaStatus::kRegressed;
            } else if (-bad > d.tolerance) {
                d.status = DeltaStatus::kImproved;
            } else {
                d.status = DeltaStatus::kOk;
            }
            rep.deltas.push_back(d);
        }
    }
    return rep;
}

namespace {

const Json* checked_micro(const Json& doc, const char* which,
                          std::vector<std::string>& errors) {
    const Json* benchmarks = doc.find("benchmarks");
    if (!benchmarks || !benchmarks->is_array()) {
        errors.push_back(std::string(which) +
                         ": not a google-benchmark JSON document (no benchmarks array)");
        return nullptr;
    }
    return benchmarks;
}

/// Per-iteration rows only: with --benchmark_repetitions google-benchmark
/// adds mean/median/stddev aggregate rows tagged by run_type.
bool is_iteration_row(const Json& row) {
    const Json* rt = row.find("run_type");
    return !rt || !rt->is_string() || rt->string() == "iteration";
}

const Json* find_micro(const Json& benchmarks, const std::string& name) {
    for (const auto& b : benchmarks.items()) {
        const Json* n = b.find("name");
        if (n && n->is_string() && n->string() == name && is_iteration_row(b)) return &b;
    }
    return nullptr;
}

}  // namespace

CompareReport compare_micro(const Json& baseline, const Json& candidate,
                            const CompareConfig& cfg) {
    CompareReport rep;
    const Json* base = checked_micro(baseline, "baseline", rep.errors);
    const Json* cand = checked_micro(candidate, "candidate", rep.errors);
    if (!base || !cand) return rep;

    for (const auto& bb : base->items()) {
        const Json* name = bb.find("name");
        if (!name || !name->is_string() || !is_iteration_row(bb)) continue;
        const Json* cb = find_micro(*cand, name->string());
        if (!cb) {
            rep.errors.push_back("candidate is missing benchmark \"" + name->string() + "\"");
            continue;
        }
        MetricDelta d;
        d.point = "micro";
        d.metric = name->string();
        d.lower_is_better = true;  // cpu_time per iteration
        d.tolerance = tolerance_for(cfg, d.point, d.metric);
        try {
            d.base_mean = bb.at("cpu_time").number();
            d.cand_mean = cb->at("cpu_time").number();
        } catch (const JsonError& e) {
            rep.errors.push_back("benchmark \"" + name->string() + "\": " + e.what());
            continue;
        }
        if (std::fabs(d.base_mean) < kZeroEps) {
            d.status = DeltaStatus::kZeroBaseline;
            rep.deltas.push_back(d);
            continue;
        }
        d.rel_delta = (d.cand_mean - d.base_mean) / std::fabs(d.base_mean);
        if (d.rel_delta > d.tolerance) {
            d.status = DeltaStatus::kRegressed;
        } else if (-d.rel_delta > d.tolerance) {
            d.status = DeltaStatus::kImproved;
        } else {
            d.status = DeltaStatus::kOk;
        }
        rep.deltas.push_back(d);
    }
    return rep;
}

}  // namespace neo::bench
