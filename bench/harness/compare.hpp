// Suite-diff logic behind the bench_compare CLI: compares two
// neo-bench-suite@1 JSON documents metric-by-metric against relative
// tolerances, classifying each delta so CI can gate on regressions while
// improvements and in-tolerance noise pass.
//
// Direction is inferred from the metric name (see metric_lower_is_better):
// latency/cost-shaped metrics regress upward, throughput-shaped metrics
// regress downward. A missing point or metric in the candidate is an error
// (schema drift is a regression of the trajectory itself); extra points in
// the candidate are ignored so suites can grow without breaking the gate.
// host_* metrics (wall-clock measurements like host_ns) are inherently
// nondeterministic: compare_suites reports them separately and never gates
// on them, and determinism tests strip them before byte comparisons.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace neo::bench {

class Json;

struct CompareConfig {
    /// Default relative tolerance on the mean (0.15 = ±15%).
    double tolerance = 0.15;
    /// Per-metric overrides; keys are a metric name ("p99_us") or a
    /// point-qualified "point:metric" ("aom_hm.r4:p99_us", which wins).
    std::map<std::string, double> metric_tolerance;
};

enum class DeltaStatus {
    kOk,            // within tolerance
    kImproved,      // beyond tolerance in the good direction
    kRegressed,     // beyond tolerance in the bad direction
    kZeroBaseline,  // baseline mean ~ 0: relative compare undefined, skipped
};
const char* delta_status_name(DeltaStatus s);

struct MetricDelta {
    std::string point;
    std::string metric;
    double base_mean = 0;
    double cand_mean = 0;
    double rel_delta = 0;  // (cand - base) / |base|
    double tolerance = 0;
    bool lower_is_better = false;
    DeltaStatus status = DeltaStatus::kOk;
};

struct CompareReport {
    std::vector<MetricDelta> deltas;
    /// Informational deltas (host_* wall-clock and phase_* attribution):
    /// never counted as regressions, and missing on either side is not an
    /// error (old baselines predate these fields).
    std::vector<MetricDelta> host_deltas;
    std::vector<std::string> errors;  // missing points/metrics, schema drift

    std::size_t regressions() const;
    bool ok() const { return errors.empty() && regressions() == 0; }
};

/// Direction heuristic: metric names shaped like a time, a cost-per-op or
/// a drop count regress when they grow; everything else (throughput,
/// completion counts, percentages of useful work) regresses when it
/// shrinks.
bool metric_lower_is_better(const std::string& name);

/// True for wall-clock ("host_"-prefixed) metrics, which vary run to run
/// even on identical simulated results.
bool is_host_metric(const std::string& name);

/// True for critical-path attribution ("phase_"-prefixed) metrics. They are
/// deterministic — determinism tests keep them in byte comparisons — but
/// attribution shares shift with any pipeline change, so the gate reports
/// their deltas without ever counting them as regressions, and a phase
/// metric missing on either side is not an error (old baselines predate
/// them).
bool is_phase_metric(const std::string& name);

/// Copy of a neo-bench-suite@1 document with every host_* metric removed
/// from every point — what determinism tests byte-compare.
Json strip_host_metrics(const Json& suite);

/// Effective tolerance for (point, metric) under `cfg`.
double tolerance_for(const CompareConfig& cfg, const std::string& point,
                     const std::string& metric);

/// Diffs every baseline point/metric against the candidate suite. Both
/// documents must be neo-bench-suite@1 (anything else is reported in
/// `errors`).
CompareReport compare_suites(const Json& baseline, const Json& candidate,
                             const CompareConfig& cfg);

/// Diffs two google-benchmark JSON documents (the micro_crypto / micro_sim
/// `--benchmark_out` format): every baseline `benchmarks[].name` must exist
/// in the candidate, and its `cpu_time` is gated like a lower-is-better
/// metric under `cfg` tolerances (point name "micro"). Aggregate rows
/// (run_type != "iteration") are skipped. Micro benchmarks measure real
/// wall-clock, so callers use a wider tolerance than the suite gate (CI
/// passes ±20%).
CompareReport compare_micro(const Json& baseline, const Json& candidate,
                            const CompareConfig& cfg);

}  // namespace neo::bench
