#include "harness.hpp"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include "aom/config_service.hpp"
#include "baselines/hotstuff.hpp"
#include "baselines/minbft.hpp"
#include "baselines/pbft.hpp"
#include "baselines/zyzzyva.hpp"
#include "common/assert.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "harness/bench_json.hpp"
#include "harness/runner.hpp"
#include "neobft/client.hpp"
#include "neobft/replica.hpp"
#include "obs/critical_path.hpp"
#include "scenario/byz_sequencer.hpp"

namespace neo::bench {

namespace {
constexpr NodeId kConfigId = 900;
constexpr NodeId kSwitchBase = 910;
constexpr NodeId kServerId = 950;
constexpr NodeId kClientBase = 1'000;
constexpr NodeId kReplicaBase = 1;
constexpr GroupId kGroup = 7;
}  // namespace

OpGen echo_ops(std::size_t size) {
    // Stateless: op (client, k) is generated from its own counter-based
    // stream, so concurrent clients on different simulator partitions can
    // generate ops without sharing generator state — and the bytes a client
    // sends cannot depend on how other clients' requests interleave.
    return [size](int client, std::uint64_t k) {
        StreamRng rng(0x99u + static_cast<std::uint64_t>(client),
                      0xec5e0000u ^ k);
        return rng.bytes(size);
    };
}

Measured run_closed_loop(Deployment& d, const OpGen& ops, sim::Time warmup, sim::Time measure,
                         const std::function<void()>& at_measure_start) {
    sim::Simulator& sim = d.simulator();
    const sim::Time start = sim.now();
    const sim::Time measure_from = start + warmup;
    const sim::Time deadline = measure_from + measure;

    // Span capture for the critical-path metrics: when the run is not
    // already traced, attach a spans-only sink for the duration of this
    // run, so phase attribution is computed on every run, traced or not.
    // The sink hangs off the simulator exactly like a full trace (PDES
    // partitions buffer locally and merge in event-key order), keeping the
    // span stream — and the phase_* metrics derived from it —
    // byte-identical across --sim-threads values.
    obs::TraceSink* master = sim.trace();
    obs::TraceSink local_spans;
    if (master == nullptr) {
        local_spans.set_kind_mask(obs::kSpanKindMask);
        sim.set_trace(&local_spans);
    }

    // Baseline for the latency breakdown: snapshot the network / CPU-model /
    // queueing accumulators when the measurement window opens, so the deltas
    // cover exactly the measured interval. The user's at_measure_start runs
    // at the same event position it always did.
    struct BreakdownBase {
        sim::Time net = 0, cpu = 0, queue = 0;
    };
    auto base = std::make_shared<BreakdownBase>();
    sim.at(measure_from, [&d, base, at_measure_start] {
        base->net = d.network().transit_time();
        base->cpu = d.network().total_cpu_busy();
        base->queue = d.network().total_queue_wait();
        if (at_measure_start) at_measure_start();
    });

    // Per-client accumulators: a client's done-callback runs inside that
    // client node's event (possibly on a worker partition), so clients must
    // never share a histogram or counter. Disjoint vector slots are safe;
    // they are merged client-major after the run — an order independent of
    // thread count, keeping metrics byte-identical across --sim-threads.
    const std::size_t nclients = static_cast<std::size_t>(d.n_clients());
    auto hists = std::make_shared<std::vector<Histogram>>(nclients);
    auto completed = std::make_shared<std::vector<std::uint64_t>>(nclients, 0);
    auto per_client_k = std::make_shared<std::vector<std::uint64_t>>(nclients, 0);

    // One self-rescheduling closed loop per client.
    auto issue = std::make_shared<std::function<void(int)>>();
    *issue = [&d, &ops, issue, hists, completed, per_client_k, measure_from, deadline](int c) {
        sim::Simulator& s = d.simulator();
        if (s.now() >= deadline) return;
        std::uint64_t k = (*per_client_k)[static_cast<std::size_t>(c)]++;
        sim::Time begin = s.now();
        d.invoke(c, ops(c, k), [&d, issue, hists, completed, measure_from, deadline, begin, c](Bytes) {
            sim::Time end = d.simulator().now();
            if (begin >= measure_from && end < deadline) {
                (*hists)[static_cast<std::size_t>(c)].add(sim::to_us(end - begin));
                ++(*completed)[static_cast<std::size_t>(c)];
            }
            (*issue)(c);
        });
    };
    for (int c = 0; c < d.n_clients(); ++c) (*issue)(c);

    sim.run_until(deadline);
    if (master == nullptr) sim.set_trace(nullptr);

    Histogram hist;
    std::uint64_t total = 0;
    for (std::size_t c = 0; c < nclients; ++c) {
        hist.merge((*hists)[c]);
        total += (*completed)[c];
    }

    Measured m;
    m.completed = total;
    m.throughput_ops = static_cast<double>(total) / sim::to_sec(measure);
    if (!hist.empty()) {
        m.p50_us = hist.percentile(50);
        m.mean_us = hist.mean();
        m.p99_us = hist.percentile(99);
        m.p999_us = hist.percentile(99.9);
    }
    if (total > 0) {
        double ops = static_cast<double>(total);
        m.net_us_per_op = sim::to_us(d.network().transit_time() - base->net) / ops;
        m.cpu_us_per_op = sim::to_us(d.network().total_cpu_busy() - base->cpu) / ops;
        m.queue_us_per_op = sim::to_us(d.network().total_queue_wait() - base->queue) / ops;
    }

    // Critical-path attribution over the measurement window. The window
    // filter mirrors the histogram's rule (begin >= measure_from): a
    // request span whose begin fell before the window loses its begin
    // event here, so the analyzer skips it as uncommitted.
    {
        const obs::TraceSink& spans_src = master ? *master : local_spans;
        std::vector<obs::SpanRecord> spans;
        for (const obs::TraceEvent& e : spans_src.events()) {
            if (e.kind != obs::EventKind::kSpanBegin && e.kind != obs::EventKind::kSpanEnd) {
                continue;
            }
            if (e.t < measure_from) continue;
            spans.push_back(
                {e.t, e.node, e.kind == obs::EventKind::kSpanBegin, e.label, e.a, e.b});
        }
        obs::CriticalPathReport rep = obs::analyze_spans(spans);
        if (rep.requests > 0) {
            m.phase["phase_requests"] = static_cast<double>(rep.requests);
            m.phase["phase_e2e_mean_us"] = rep.e2e_mean_us;
            m.phase["phase_e2e_p50_us"] = rep.e2e_p50_us;
            m.phase["phase_e2e_p99_us"] = rep.e2e_p99_us;
            m.phase["phase_residual_us"] = rep.residual_us;
            for (const obs::PhaseStat& ph : rep.phases) {
                m.phase["phase_" + ph.phase + "_mean_us"] = ph.mean_us;
                m.phase["phase_" + ph.phase + "_p50_us"] = ph.p50_us;
                m.phase["phase_" + ph.phase + "_p99_us"] = ph.p99_us;
                m.phase["phase_" + ph.phase + "_share_pct"] = ph.share_pct;
            }
        }
    }

    // Safety audit: every closed-loop run checks the deployment's
    // invariants. A violation is a safety bug, so fail fast rather than
    // report numbers measured on a divergent execution.
    obs::Auditor& aud = d.auditor();
    if (aud.configured()) {
        aud.finalize();
        aud.report(master);
        if (!aud.ok()) {
            for (const auto& v : aud.violations()) {
                std::fprintf(stderr, "auditor: %s\n", v.to_string().c_str());
            }
            NEO_ASSERT_MSG(false, "safety invariant violated (obs::Auditor)");
        }
    }
    return m;
}

// ----------------------------------------------------------- observability

namespace {

/// `--flag <value>` or `--flag=<value>` from argv, else `env`, else "".
std::string arg_or_env(int argc, char* const* argv, const char* flag, const char* env) {
    const std::size_t flen = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[i + 1];
        if (std::strncmp(argv[i], flag, flen) == 0 && argv[i][flen] == '=') {
            return argv[i] + flen + 1;
        }
    }
    const char* e = std::getenv(env);
    return e ? e : "";
}

}  // namespace

ObsSession::ObsSession(int argc, char* const* argv)
    : trace_path_(arg_or_env(argc, argv, "--trace", "NEO_TRACE")),
      metrics_path_(arg_or_env(argc, argv, "--metrics", "NEO_METRICS")) {
    // Reuse the runner's uniform CLI parsing so the metrics file's "meta"
    // header records the same seed / sim-threads values the runs used.
    BenchOptions o = BenchOptions::parse(argc, argv);
    meta_seed_ = o.base_seed;
    meta_seeds_ = o.seeds;
    meta_sim_threads_ = o.sim_threads;
}

ObsSession::~ObsSession() { flush(); }

ObsSession::Attachment& ObsSession::Attachment::operator=(Attachment&& o) noexcept {
    if (this != &o) {
        detach();
        s_ = o.s_;
        reg_ = std::move(o.reg_);
        sim_ = o.sim_;
        traced_ = o.traced_;
        o.s_ = nullptr;
        o.sim_ = nullptr;
        o.traced_ = false;
    }
    return *this;
}

void ObsSession::Attachment::detach() {
    if (!s_) return;
    if (reg_) {
        std::lock_guard<std::mutex> lk(s_->merge_m_);
        for (const auto& [k, v] : reg_->snapshot()) s_->merged_[k] = v;
    }
    if (traced_) {
        // The sink keeps the recorded events for flush(); just stop the
        // simulator writing into it and restore this thread's log clock.
        if (sim_) sim_->set_trace(nullptr);
        clear_log_time_source();
    }
    s_ = nullptr;
    reg_.reset();
    sim_ = nullptr;
    traced_ = false;
}

ObsSession::Attachment ObsSession::attach(
    sim::Simulator& sim, const std::string& label, bool want_trace,
    const std::function<void(obs::Registry&, obs::TraceSink*)>& reg) {
    (void)label;
    if (!enabled()) return {};
    Attachment a;
    a.s_ = this;
    a.reg_ = std::make_unique<obs::Registry>();
    obs::TraceSink* tr = nullptr;
    if (tracing() && want_trace && !trace_claimed_.exchange(true)) {
        a.traced_ = true;
        a.sim_ = &sim;
        tr = &sink_;
        sim.set_trace(&sink_);
        // Log lines emitted by this run's thread carry its virtual clock
        // (the source is thread-local, so concurrent runs don't clash).
        set_log_time_source([&sim] { return sim.now(); });
    }
    reg(*a.reg_, tr);
    return a;
}

ObsSession::Attachment ObsSession::attach(Deployment& d, const std::string& label,
                                          bool want_trace) {
    return attach(d.simulator(), label, want_trace,
                  [&d, &label](obs::Registry& r, obs::TraceSink* tr) {
                      d.register_obs(r, label, tr);
                  });
}

void ObsSession::flush() {
    if (flushed_) return;
    flushed_ = true;
    if (metrics()) {
        // Same {"counters":{},"values":{...}} shape Registry::write_json
        // produces, plus a "meta" header so archived files are
        // self-describing (docs/OBSERVABILITY.md).
        Json root = Json::object();
        root.set("meta", run_meta_json(meta_seed_, meta_seeds_, meta_sim_threads_));
        root.set("counters", Json::object());
        Json values = Json::object();
        for (const auto& [k, v] : merged_) values.set(k, Json(v));
        root.set("values", std::move(values));
        std::ofstream out(metrics_path_, std::ios::binary | std::ios::trunc);
        if (out) out << root.dump() << "\n";
        if (!out) {
            std::fprintf(stderr, "obs: cannot write metrics file %s\n", metrics_path_.c_str());
        }
    }
    if (tracing()) {
        bool jsonl = trace_path_.size() >= 6 &&
                     trace_path_.compare(trace_path_.size() - 6, 6, ".jsonl") == 0;
        bool ok = jsonl ? sink_.write_jsonl_file(trace_path_)
                        : sink_.write_chrome_trace_file(trace_path_);
        if (!ok) {
            std::fprintf(stderr, "obs: cannot write trace file %s\n", trace_path_.c_str());
        }
    }
}

// ----------------------------------------------------------- unreplicated

namespace {

class UnreplicatedDeployment : public Deployment {
  public:
    explicit UnreplicatedDeployment(const CommonParams& p)
        : sim_(p.sim_threads), net_(sim_, p.seed), root_(p.crypto_mode, p.seed + 1) {
        net_.set_default_link(sim::datacenter_link());
        net_.set_global_drop_rate(p.drop_rate);
        auditor_.configure(sim_.partitions() + 1);
        server_ = std::make_unique<baselines::UnreplicatedServer>(root_.provision(kServerId));
        server_->set_auditor(&auditor_);
        net_.add_node(*server_, kServerId);
        for (int i = 0; i < p.n_clients; ++i) {
            NodeId cid = kClientBase + static_cast<NodeId>(i);
            clients_.push_back(std::make_unique<baselines::UnreplicatedClient>(
                kServerId, root_.provision(cid)));
            net_.add_node(*clients_.back(), cid);
        }
    }

    sim::Simulator& simulator() override { return sim_; }
    sim::Network& network() override { return net_; }
    int n_clients() const override { return static_cast<int>(clients_.size()); }
    void invoke(int client, Bytes op, std::function<void(Bytes)> done) override {
        clients_[static_cast<std::size_t>(client)]->invoke(std::move(op), std::move(done));
    }

    void register_obs(obs::Registry& reg, const std::string& prefix,
                      obs::TraceSink* trace) override {
        net_.register_metrics(reg, prefix + ".net");
        server_->register_rx_metrics(reg, prefix + ".server", &baselines::kind_name);
        if (trace) {
            trace->set_node_name(kServerId, "server");
            for (const auto& c : clients_) {
                trace->set_node_name(c->id(), "client " + std::to_string(c->id()));
            }
        }
    }

  private:
    sim::Simulator sim_;
    sim::Network net_;
    crypto::TrustRoot root_;
    std::unique_ptr<baselines::UnreplicatedServer> server_;
    std::vector<std::unique_ptr<baselines::UnreplicatedClient>> clients_;
};

// ----------------------------------------------------------------- NeoBFT

class NeoDeployment : public Deployment {
  public:
    explicit NeoDeployment(const NeoParams& p)
        : sim_(p.sim_threads), net_(sim_, p.seed), root_(p.crypto_mode, p.seed + 1), keys_(p.seed + 2) {
        if (p.placement) sim_.set_placement(p.placement);
        net_.set_default_link(sim::datacenter_link());
        net_.set_global_drop_rate(p.drop_rate);

        neobft::Config cfg;
        cfg.f = (p.n_replicas - 1) / 3;
        cfg.group = kGroup;
        cfg.config_service = kConfigId;
        cfg.sync_interval = p.sync_interval;
        cfg.checkpoint_interval = p.checkpoint_interval;
        for (int i = 0; i < p.n_replicas; ++i) {
            cfg.replicas.push_back(kReplicaBase + static_cast<NodeId>(i));
        }

        aom::GroupConfig group;
        group.group = kGroup;
        group.variant =
            p.variant == NeoVariant::kPk ? aom::AuthVariant::kPublicKey : aom::AuthVariant::kHmacVector;
        group.trust = p.variant == NeoVariant::kBn ? aom::NetworkTrust::kByzantine
                                                   : aom::NetworkTrust::kCrashOnly;
        group.f = cfg.f;
        group.receivers = cfg.replicas;

        aom::SequencerConfig seq_cfg =
            p.software_sequencer ? aom::SequencerConfig::software_profile() : aom::SequencerConfig{};
        for (int s = 0; s < 2; ++s) {
            NodeId sid = kSwitchBase + static_cast<NodeId>(s);
            if (p.byz_sequencer) {
                auto sw = std::make_unique<scenario::ByzSequencer>(seq_cfg, root_.provision(sid),
                                                                   &keys_);
                byz_switches_.push_back(sw.get());
                switches_.push_back(std::move(sw));
            } else {
                switches_.push_back(
                    std::make_unique<aom::SequencerSwitch>(seq_cfg, root_.provision(sid), &keys_));
            }
            net_.add_node(*switches_.back(), sid);
        }
        std::vector<aom::SequencerSwitch*> pool;
        for (auto& sw : switches_) pool.push_back(sw.get());
        config_ = std::make_unique<aom::ConfigService>(&keys_, pool);
        net_.add_node(*config_, kConfigId);
        config_->register_group(group);

        auto app_factory = p.app_factory
                               ? p.app_factory
                               : [] { return std::make_unique<app::EchoApp>(); };
        auditor_.configure(sim_.partitions() + 1);
        for (NodeId rid : cfg.replicas) {
            auto rep = std::make_unique<neobft::Replica>(cfg, root_.provision(rid), &keys_,
                                                         app_factory(), p.receiver);
            rep->set_auditor(&auditor_);
            net_.add_node(*rep, rid);
            rep->bootstrap(group, config_->current_sequencer(kGroup));
            replicas_.push_back(std::move(rep));
        }
        for (int i = 0; i < p.n_clients; ++i) {
            NodeId cid = kClientBase + static_cast<NodeId>(i);
            clients_.push_back(
                std::make_unique<neobft::Client>(cfg, root_.provision(cid), config_.get()));
            net_.add_node(*clients_.back(), cid);
        }
    }

    sim::Simulator& simulator() override { return sim_; }
    sim::Network& network() override { return net_; }
    int n_clients() const override { return static_cast<int>(clients_.size()); }
    void invoke(int client, Bytes op, std::function<void(Bytes)> done) override {
        clients_[static_cast<std::size_t>(client)]->invoke(std::move(op), std::move(done));
    }

    std::vector<NodeId> replica_ids() const override {
        std::vector<NodeId> out;
        for (const auto& r : replicas_) out.push_back(r->id());
        return out;
    }
    crypto::CostMeter* replica_meter(NodeId id) override {
        for (auto& r : replicas_) {
            if (r->id() == id) return &r->node_crypto().meter();
        }
        return nullptr;
    }

    void inject_sequencer_failure() override { switches_[0]->set_stall(true); }
    std::uint64_t failovers() const override { return config_->failovers_performed(); }

    bool crash_replica(NodeId id) override {
        for (auto& r : replicas_) {
            if (r->id() == id) {
                r->crash();
                return true;
            }
        }
        return false;
    }
    bool recover_replica(NodeId id) override {
        for (auto& r : replicas_) {
            if (r->id() == id) {
                r->recover();
                return true;
            }
        }
        return false;
    }
    bool set_replica_equivocate(NodeId id, bool on) override {
        for (auto& r : replicas_) {
            if (r->id() == id) {
                r->set_equivocate(on);
                return true;
            }
        }
        return false;
    }
    bool sequencer_fault(const scenario::Adapter::SeqFault& f) override {
        using scenario::FaultKind;
        if (f.kind == FaultKind::kSeqStall) {
            // Stall is supported by the stock switch too.
            for (auto& sw : switches_) sw->set_stall(f.on);
            return true;
        }
        if (byz_switches_.empty()) return false;
        // Apply to every switch so the fault survives failover to the
        // standby (the adversary compromised the sequencing layer, not one
        // box).
        for (scenario::ByzSequencer* sw : byz_switches_) {
            scenario::ByzSequencer::Faults faults = sw->faults();
            std::uint32_t mod = f.on ? f.mod : 0;
            switch (f.kind) {
                case FaultKind::kSeqDrop: faults.drop_mod = mod; break;
                case FaultKind::kSeqDuplicate: faults.dup_mod = mod; break;
                case FaultKind::kSeqCorrupt: faults.corrupt_mod = mod; break;
                case FaultKind::kSeqStripSig: faults.strip_sig_mod = mod; break;
                case FaultKind::kSeqEquivocate: faults.equivocate_mod = mod; break;
                default: return false;
            }
            sw->set_faults(faults);
        }
        return true;
    }
    std::uint64_t client_completed(int c) const override {
        return clients_[static_cast<std::size_t>(c)]->completed();
    }

    void register_obs(obs::Registry& reg, const std::string& prefix,
                      obs::TraceSink* trace) override {
        net_.register_metrics(reg, prefix + ".net");
        for (auto& r : replicas_) {
            r->register_metrics(reg, prefix + ".replica." + std::to_string(r->id()));
        }
        for (std::size_t s = 0; s < switches_.size(); ++s) {
            switches_[s]->register_metrics(reg, prefix + ".sequencer." + std::to_string(s));
        }
        if (trace) {
            for (const auto& r : replicas_) {
                trace->set_node_name(r->id(), "replica " + std::to_string(r->id()));
            }
            for (std::size_t s = 0; s < switches_.size(); ++s) {
                trace->set_node_name(switches_[s]->id(), "sequencer " + std::to_string(s));
            }
            trace->set_node_name(kConfigId, "config service");
            for (const auto& c : clients_) {
                trace->set_node_name(c->id(), "client " + std::to_string(c->id()));
            }
        }
    }

    const std::vector<std::unique_ptr<neobft::Replica>>& replicas() const { return replicas_; }

  private:
    sim::Simulator sim_;
    sim::Network net_;
    crypto::TrustRoot root_;
    aom::AomKeyService keys_;
    std::vector<std::unique_ptr<aom::SequencerSwitch>> switches_;
    std::vector<scenario::ByzSequencer*> byz_switches_;
    std::unique_ptr<aom::ConfigService> config_;
    std::vector<std::unique_ptr<neobft::Replica>> replicas_;
    std::vector<std::unique_ptr<neobft::Client>> clients_;
};

// -------------------------------------------------------------- baselines

template <typename ReplicaT, typename CfgT>
class BaselineDeployment : public Deployment {
  public:
    BaselineDeployment(const CommonParams& p, int n_replicas, std::size_t client_quorum,
                       const std::function<std::unique_ptr<ReplicaT>(
                           const CfgT&, std::unique_ptr<crypto::NodeCrypto>)>& make_replica)
        : sim_(p.sim_threads), net_(sim_, p.seed), root_(p.crypto_mode, p.seed + 1) {
        net_.set_default_link(sim::datacenter_link());
        net_.set_global_drop_rate(p.drop_rate);

        cfg_.f = (p.n_replicas - 1) / 3;
        cfg_.batch_max = p.batch_max;
        cfg_.batch_delay = p.batch_delay;
        for (int i = 0; i < n_replicas; ++i) {
            cfg_.replicas.push_back(kReplicaBase + static_cast<NodeId>(i));
        }
        auditor_.configure(sim_.partitions() + 1);
        for (NodeId rid : cfg_.replicas) {
            auto rep = make_replica(cfg_, root_.provision(rid));
            if (p.baseline_app_factory) rep->set_app(p.baseline_app_factory());
            rep->set_auditor(&auditor_);
            net_.add_node(*rep, rid);
            replicas_.push_back(std::move(rep));
        }
        for (int i = 0; i < p.n_clients; ++i) {
            NodeId cid = kClientBase + static_cast<NodeId>(i);
            clients_.push_back(std::make_unique<baselines::QuorumClient>(
                cfg_, root_.provision(cid), client_quorum));
            net_.add_node(*clients_.back(), cid);
        }
    }

    sim::Simulator& simulator() override { return sim_; }
    sim::Network& network() override { return net_; }
    int n_clients() const override { return static_cast<int>(clients_.size()); }
    void invoke(int client, Bytes op, std::function<void(Bytes)> done) override {
        clients_[static_cast<std::size_t>(client)]->invoke(std::move(op), std::move(done));
    }
    std::vector<NodeId> replica_ids() const override { return cfg_.replicas; }
    crypto::CostMeter* replica_meter(NodeId id) override {
        for (auto& r : replicas_) {
            if (r->id() == id) return &r->node_crypto().meter();
        }
        return nullptr;
    }
    bool set_replica_equivocate(NodeId id, bool on) override {
        for (auto& r : replicas_) {
            if (r->id() == id) {
                r->set_equivocate(on);
                return true;
            }
        }
        return false;
    }
    std::uint64_t client_completed(int c) const override {
        return clients_[static_cast<std::size_t>(c)]->completed();
    }

    void register_obs(obs::Registry& reg, const std::string& prefix,
                      obs::TraceSink* trace) override {
        net_.register_metrics(reg, prefix + ".net");
        for (auto& r : replicas_) {
            r->register_metrics(reg, prefix + ".replica." + std::to_string(r->id()));
        }
        if (trace) {
            for (const auto& r : replicas_) {
                trace->set_node_name(r->id(), "replica " + std::to_string(r->id()));
            }
            for (const auto& c : clients_) {
                trace->set_node_name(c->id(), "client " + std::to_string(c->id()));
            }
        }
    }

    CfgT cfg_;
    sim::Simulator sim_;
    sim::Network net_;
    crypto::TrustRoot root_;
    std::vector<std::unique_ptr<ReplicaT>> replicas_;
    std::vector<std::unique_ptr<baselines::QuorumClient>> clients_;
};

class ZyzzyvaDeployment : public Deployment {
  public:
    explicit ZyzzyvaDeployment(const ZyzzyvaParams& p)
        : sim_(p.sim_threads), net_(sim_, p.seed), root_(p.crypto_mode, p.seed + 1) {
        net_.set_default_link(sim::datacenter_link());
        net_.set_global_drop_rate(p.drop_rate);
        cfg_.f = (p.n_replicas - 1) / 3;
        cfg_.batch_max = p.batch_max;
        cfg_.batch_delay = p.batch_delay;
        for (int i = 0; i < p.n_replicas; ++i) {
            cfg_.replicas.push_back(kReplicaBase + static_cast<NodeId>(i));
        }
        auditor_.configure(sim_.partitions() + 1);
        for (NodeId rid : cfg_.replicas) {
            auto rep = std::make_unique<baselines::ZyzzyvaReplica>(cfg_, root_.provision(rid));
            if (p.baseline_app_factory) rep->set_app(p.baseline_app_factory());
            rep->set_auditor(&auditor_);
            net_.add_node(*rep, rid);
            replicas_.push_back(std::move(rep));
        }
        if (p.faulty_replica) replicas_.back()->set_silent(true);
        for (int i = 0; i < p.n_clients; ++i) {
            NodeId cid = kClientBase + static_cast<NodeId>(i);
            clients_.push_back(
                std::make_unique<baselines::ZyzzyvaClient>(cfg_, root_.provision(cid)));
            net_.add_node(*clients_.back(), cid);
        }
    }

    sim::Simulator& simulator() override { return sim_; }
    sim::Network& network() override { return net_; }
    int n_clients() const override { return static_cast<int>(clients_.size()); }
    void invoke(int client, Bytes op, std::function<void(Bytes)> done) override {
        clients_[static_cast<std::size_t>(client)]->invoke(std::move(op), std::move(done));
    }
    std::vector<NodeId> replica_ids() const override { return cfg_.replicas; }
    crypto::CostMeter* replica_meter(NodeId id) override {
        for (auto& r : replicas_) {
            if (r->id() == id) return &r->node_crypto().meter();
        }
        return nullptr;
    }
    bool set_replica_equivocate(NodeId id, bool on) override {
        for (auto& r : replicas_) {
            if (r->id() == id) {
                r->set_equivocate(on);
                return true;
            }
        }
        return false;
    }
    std::uint64_t client_completed(int c) const override {
        return clients_[static_cast<std::size_t>(c)]->completed();
    }

    void register_obs(obs::Registry& reg, const std::string& prefix,
                      obs::TraceSink* trace) override {
        net_.register_metrics(reg, prefix + ".net");
        for (auto& r : replicas_) {
            r->register_metrics(reg, prefix + ".replica." + std::to_string(r->id()));
        }
        if (trace) {
            for (const auto& r : replicas_) {
                trace->set_node_name(r->id(), "replica " + std::to_string(r->id()));
            }
            for (const auto& c : clients_) {
                trace->set_node_name(c->id(), "client " + std::to_string(c->id()));
            }
        }
    }

  private:
    baselines::ZyzzyvaConfig cfg_;
    sim::Simulator sim_;
    sim::Network net_;
    crypto::TrustRoot root_;
    std::vector<std::unique_ptr<baselines::ZyzzyvaReplica>> replicas_;
    std::vector<std::unique_ptr<baselines::ZyzzyvaClient>> clients_;
};

}  // namespace

std::unique_ptr<Deployment> make_unreplicated(const CommonParams& p) {
    return std::make_unique<UnreplicatedDeployment>(p);
}

std::unique_ptr<Deployment> make_neobft(const NeoParams& p) {
    return std::make_unique<NeoDeployment>(p);
}

std::unique_ptr<Deployment> make_pbft(const CommonParams& p) {
    int f = (p.n_replicas - 1) / 3;
    return std::make_unique<BaselineDeployment<baselines::PbftReplica, baselines::PbftConfig>>(
        p, p.n_replicas, static_cast<std::size_t>(f + 1),
        [](const baselines::PbftConfig& cfg, std::unique_ptr<crypto::NodeCrypto> c) {
            return std::make_unique<baselines::PbftReplica>(cfg, std::move(c));
        });
}

std::unique_ptr<Deployment> make_zyzzyva(const ZyzzyvaParams& p) {
    return std::make_unique<ZyzzyvaDeployment>(p);
}

std::unique_ptr<Deployment> make_hotstuff(const CommonParams& p) {
    int f = (p.n_replicas - 1) / 3;
    return std::make_unique<
        BaselineDeployment<baselines::HotStuffReplica, baselines::HotStuffConfig>>(
        p, p.n_replicas, static_cast<std::size_t>(f + 1),
        [](const baselines::HotStuffConfig& cfg, std::unique_ptr<crypto::NodeCrypto> c) {
            return std::make_unique<baselines::HotStuffReplica>(cfg, std::move(c));
        });
}

std::unique_ptr<Deployment> make_minbft(const CommonParams& p) {
    int f = (p.n_replicas - 1) / 3;
    int n = 2 * f + 1;
    std::uint64_t usig_seed = p.seed + 7;
    auto d = std::make_unique<
        BaselineDeployment<baselines::MinbftReplica, baselines::MinbftConfig>>(
        p, n, static_cast<std::size_t>(f + 1),
        [usig_seed](const baselines::MinbftConfig& cfg, std::unique_ptr<crypto::NodeCrypto> c) {
            return std::make_unique<baselines::MinbftReplica>(cfg, std::move(c), usig_seed);
        });
    // BaselineDeployment computed f from n_replicas (3f+1 convention); MinBFT
    // keeps the same f but with 2f+1 replicas.
    d->cfg_.f = f;
    return d;
}

// ------------------------------------------------------------------ output

TablePrinter::TablePrinter(std::vector<std::string> columns) {
    for (const auto& c : columns) widths_.push_back(std::max<std::size_t>(c.size() + 2, 12));
    row(columns);
    std::string sep;
    for (std::size_t w : widths_) sep += std::string(w, '-') + "  ";
    std::printf("%s\n", sep.c_str());
}

void TablePrinter::row(const std::vector<std::string>& cells) {
    std::string line;
    for (std::size_t i = 0; i < cells.size(); ++i) {
        std::size_t w = i < widths_.size() ? widths_[i] : 12;
        std::string cell = cells[i];
        if (cell.size() < w) cell += std::string(w - cell.size(), ' ');
        line += cell + "  ";
    }
    std::printf("%s\n", line.c_str());
    std::fflush(stdout);
}

std::string fmt_double(double v, int precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::map<std::string, double> measured_metrics(const Measured& m) {
    std::map<std::string, double> out = {
        {"tput_ops", m.throughput_ops},
        {"p50_us", m.p50_us},
        {"mean_us", m.mean_us},
        {"p99_us", m.p99_us},
        {"p999_us", m.p999_us},
        {"completed", static_cast<double>(m.completed)},
        {"net_us_per_op", m.net_us_per_op},
        {"cpu_us_per_op", m.cpu_us_per_op},
        {"queue_us_per_op", m.queue_us_per_op},
    };
    out.insert(m.phase.begin(), m.phase.end());
    return out;
}

const char* build_git_describe() {
#ifdef NEO_GIT_DESCRIBE
    return NEO_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

const char* build_type_name() {
#ifdef NEO_BUILD_TYPE
    if (NEO_BUILD_TYPE[0] != '\0') return NEO_BUILD_TYPE;
#endif
    return "unspecified";
}

Json run_meta_json(std::uint64_t base_seed, int seeds, unsigned sim_threads) {
    Json meta = Json::object();
    meta.set("base_seed", Json(static_cast<double>(base_seed)));
    meta.set("build_type", Json(std::string(build_type_name())));
    meta.set("git_describe", Json(std::string(build_git_describe())));
    Json seed_list = Json::array();
    for (int s = 0; s < seeds; ++s) {
        seed_list.push_back(Json(static_cast<double>(base_seed + static_cast<std::uint64_t>(s))));
    }
    meta.set("seeds", std::move(seed_list));
    meta.set("sim_threads", Json(static_cast<double>(sim_threads)));
    return meta;
}

}  // namespace neo::bench
