// Benchmark harness: deployment factories for every protocol in the paper's
// evaluation and a closed-loop measurement driver (§6.2's methodology: "an
// increasing number of closed-loop clients", end-to-end latency and
// throughput observed by the clients).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/state_machine.hpp"
#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "aom/receiver.hpp"
#include "crypto/identity.hpp"
#include "sim/network.hpp"

namespace neo::bench {

struct Measured {
    double throughput_ops = 0;  // committed ops per second of virtual time
    double p50_us = 0;
    double mean_us = 0;
    double p99_us = 0;
    double p999_us = 0;
    std::uint64_t completed = 0;
};

/// Type-erased running system: owns all nodes; the driver only needs
/// per-client invoke().
class Deployment {
  public:
    virtual ~Deployment() = default;
    virtual sim::Simulator& simulator() = 0;
    virtual sim::Network& network() = 0;
    virtual int n_clients() const = 0;
    virtual void invoke(int client, Bytes op, std::function<void(Bytes)> done) = 0;

    /// Replica instrumentation for the Table 1 reproduction.
    virtual std::vector<NodeId> replica_ids() const { return {}; }
    virtual crypto::CostMeter* replica_meter(NodeId) { return nullptr; }

    /// Fault-injection hooks (used by the failover benchmark; no-ops for
    /// protocols without a sequencer).
    virtual void inject_sequencer_failure() {}
    virtual std::uint64_t failovers() const { return 0; }
};

/// Generates the operation a client issues next (k = per-client op index).
using OpGen = std::function<Bytes(int client, std::uint64_t k)>;

/// Fixed-size random-string echo ops (the §6.2 workload).
OpGen echo_ops(std::size_t size);

/// Runs every client closed-loop; latency/throughput measured over
/// [warmup, warmup+measure) of virtual time. `at_measure_start` (optional)
/// fires exactly when the measurement window opens — counter resets etc.
Measured run_closed_loop(Deployment& d, const OpGen& ops, sim::Time warmup, sim::Time measure,
                         const std::function<void()>& at_measure_start = nullptr);

// --------------------------------------------------------------- factories

struct CommonParams {
    int n_replicas = 4;
    int n_clients = 8;
    crypto::CryptoMode crypto_mode = crypto::CryptoMode::kModeled;
    std::uint64_t seed = 42;
    double drop_rate = 0.0;
    std::size_t batch_max = 16;
    sim::Time batch_delay = 100 * sim::kMicrosecond;
    /// Replica application for NeoBFT (stateful, undo-capable).
    std::function<std::unique_ptr<app::StateMachine>()> app_factory;
    /// Replica application for the baselines (one closure per replica).
    std::function<std::function<Bytes(BytesView)>()> baseline_app_factory;
};

enum class NeoVariant { kHm, kPk, kBn };

struct NeoParams : CommonParams {
    NeoVariant variant = NeoVariant::kHm;
    /// Fig 8's EC2-style software sequencer profile.
    bool software_sequencer = false;
    /// aom receiver knobs (gap timeout, confirm batching) — ablations.
    aom::ReceiverOptions receiver{};
    /// State-sync period (§B.2) — ablations.
    std::uint64_t sync_interval = 128;
};

std::unique_ptr<Deployment> make_unreplicated(const CommonParams& p);
std::unique_ptr<Deployment> make_neobft(const NeoParams& p);
std::unique_ptr<Deployment> make_pbft(const CommonParams& p);

struct ZyzzyvaParams : CommonParams {
    bool faulty_replica = false;  // Zyzzyva-F
};
std::unique_ptr<Deployment> make_zyzzyva(const ZyzzyvaParams& p);
std::unique_ptr<Deployment> make_hotstuff(const CommonParams& p);
/// MinBFT uses 2f+1 replicas; `n_replicas` is interpreted as f's 3f+1
/// equivalent (n=4 -> f=1 -> 3 replicas) so sweeps stay uniform.
std::unique_ptr<Deployment> make_minbft(const CommonParams& p);

// ------------------------------------------------------------------ output

/// Aligned table printer for figure-style output.
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> columns);
    void row(const std::vector<std::string>& cells);

  private:
    std::vector<std::size_t> widths_;
};

std::string fmt_double(double v, int precision = 1);

/// Sweeps client counts and reports one (throughput, latency) point each —
/// the raw material of Fig 7-style curves.
struct SweepPoint {
    int clients;
    Measured m;
};
std::vector<SweepPoint> latency_throughput_sweep(
    const std::function<std::unique_ptr<Deployment>(int clients)>& factory,
    const std::vector<int>& client_counts, const OpGen& ops, sim::Time warmup,
    sim::Time measure);

}  // namespace neo::bench
