// Benchmark harness: deployment factories for every protocol in the paper's
// evaluation and a closed-loop measurement driver (§6.2's methodology: "an
// increasing number of closed-loop clients", end-to-end latency and
// throughput observed by the clients).
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "apps/state_machine.hpp"
#include "apps/ycsb.hpp"
#include "common/bytes.hpp"
#include "common/histogram.hpp"
#include "aom/receiver.hpp"
#include "crypto/identity.hpp"
#include "obs/auditor.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "scenario/scenario.hpp"
#include "sim/network.hpp"

namespace neo::bench {

struct Measured {
    double throughput_ops = 0;  // committed ops per second of virtual time
    double p50_us = 0;
    double mean_us = 0;
    double p99_us = 0;
    double p999_us = 0;
    std::uint64_t completed = 0;
    /// Latency breakdown over the measurement window, expressed as
    /// aggregate simulator time per completed op: packet in-flight time
    /// (latency + jitter + serialisation), modelled CPU execution, and
    /// arrival-queue wait. These are system-wide shares (all nodes, all
    /// packets), so they need not sum to the end-to-end client latency.
    double net_us_per_op = 0;
    double cpu_us_per_op = 0;
    double queue_us_per_op = 0;
    /// Commit critical-path attribution over the measurement window's
    /// request spans (keys are the final "phase_*" metric names; empty
    /// when no request span completed inside the window). Deterministic:
    /// derived from the span stream, which is byte-identical across
    /// --sim-threads values.
    std::map<std::string, double> phase;
};

/// Type-erased running system: owns all nodes; the driver only needs
/// per-client invoke().
class Deployment {
  public:
    virtual ~Deployment() = default;
    virtual sim::Simulator& simulator() = 0;
    virtual sim::Network& network() = 0;
    virtual int n_clients() const = 0;
    virtual void invoke(int client, Bytes op, std::function<void(Bytes)> done) = 0;

    /// Replica instrumentation for the Table 1 reproduction.
    virtual std::vector<NodeId> replica_ids() const { return {}; }
    virtual crypto::CostMeter* replica_meter(NodeId) { return nullptr; }

    /// Fault-injection hooks (used by the failover benchmark; no-ops for
    /// protocols without a sequencer).
    virtual void inject_sequencer_failure() {}
    virtual std::uint64_t failovers() const { return 0; }

    /// Scenario-engine hooks (src/scenario). Defaults say "unsupported";
    /// the engine degrades (crash -> fail-silent network window, sequencer
    /// faults -> no-op). Only call from setup code or a global event.
    virtual bool crash_replica(NodeId) { return false; }
    virtual bool recover_replica(NodeId) { return false; }
    virtual bool set_replica_equivocate(NodeId, bool) { return false; }
    virtual bool sequencer_fault(const scenario::Adapter::SeqFault&) { return false; }
    /// Requests this client has completed since construction (liveness
    /// floor accounting; 0 when the deployment has no per-client counter).
    virtual std::uint64_t client_completed(int) const { return 0; }
    /// Drops client's in-flight cross-shard transaction without a decision
    /// (coordinator crash between prepare and commit). Sharded only.
    virtual bool abandon_coordinator(int) { return false; }

    /// Client-observed transaction outcome totals (sharded deployments;
    /// zero elsewhere). `committed_ops` counts single-key ops inside
    /// committed transactions — the aggregate-throughput numerator.
    struct TxnTotals {
        std::uint64_t txns_started = 0;
        std::uint64_t committed_txns = 0;
        std::uint64_t aborted_txns = 0;
        std::uint64_t committed_ops = 0;
        std::uint64_t cross_shard_txns = 0;
    };
    virtual TxnTotals txn_totals() const { return {}; }

    /// Observability hook: publishes this deployment's counters under
    /// `prefix` and, when `trace` is non-null, names every node's track.
    /// The base version covers the shared network counters; deployments
    /// override to add per-replica / per-sequencer protocol metrics.
    virtual void register_obs(obs::Registry& reg, const std::string& prefix,
                              obs::TraceSink* trace) {
        (void)trace;
        network().register_metrics(reg, prefix + ".net");
    }

    /// Online safety-invariant monitor. Every deployment constructor sizes
    /// it (partitions + 1 shards) and wires its replicas' reporting hooks,
    /// so commit/execute ordering is audited on EVERY bench and test run;
    /// run_closed_loop() finalizes it and aborts on any violation.
    obs::Auditor& auditor() { return auditor_; }

  protected:
    obs::Auditor auditor_;
};

/// Bridges a Deployment to the scenario engine's Adapter interface.
class ScenarioAdapter : public scenario::Adapter {
  public:
    explicit ScenarioAdapter(Deployment& d) : d_(d) {}
    sim::Simulator& simulator() override { return d_.simulator(); }
    sim::Network& network() override { return d_.network(); }
    std::vector<NodeId> replica_ids() const override { return d_.replica_ids(); }
    bool crash(NodeId n) override { return d_.crash_replica(n); }
    bool recover(NodeId n) override { return d_.recover_replica(n); }
    bool set_equivocate(NodeId n, bool on) override { return d_.set_replica_equivocate(n, on); }
    bool sequencer_fault(const SeqFault& f) override { return d_.sequencer_fault(f); }

  private:
    Deployment& d_;
};

/// Generates the operation a client issues next (k = per-client op index).
using OpGen = std::function<Bytes(int client, std::uint64_t k)>;

/// Fixed-size random-string echo ops (the §6.2 workload).
OpGen echo_ops(std::size_t size);

/// Runs every client closed-loop; latency/throughput measured over
/// [warmup, warmup+measure) of virtual time. `at_measure_start` (optional)
/// fires exactly when the measurement window opens — counter resets etc.
Measured run_closed_loop(Deployment& d, const OpGen& ops, sim::Time warmup, sim::Time measure,
                         const std::function<void()>& at_measure_start = nullptr);

// ----------------------------------------------------------- observability

/// Per-process observability session for bench binaries.
///
/// Parses `--trace <path>` and `--metrics <path>` from argv (with
/// NEO_TRACE / NEO_METRICS environment fallback) and owns the trace sink
/// and the merged metrics snapshot. A bench binary attaches each run with
/// attach() (runs on worker threads attach concurrently; the session is
/// thread-safe); on destruction the session writes the requested files:
///  - metrics: one JSON object merging every attached run's counters,
///    namespaced by the run label ("neo_hm.c8.s42.replica.1.rx.request");
///  - trace: the FIRST run attached with want_trace=true (a process-wide
///    atomic claim), written as Chrome trace_event JSON — or JSONL when
///    the path ends in ".jsonl".
///
/// The metrics file carries a "meta" header (base seed, seed list,
/// sim_threads, git describe, build type) so archived artifacts are
/// self-describing.
class ObsSession {
  public:
    ObsSession(int argc, char* const* argv);
    ~ObsSession();

    ObsSession(const ObsSession&) = delete;
    ObsSession& operator=(const ObsSession&) = delete;

    bool tracing() const { return !trace_path_.empty(); }
    bool metrics() const { return !metrics_path_.empty(); }
    bool enabled() const { return tracing() || metrics(); }

    /// Scoped run attachment. Holds the run's private registry; the
    /// destructor snapshots it into the session's merged metrics, so it
    /// must run while the run's nodes are still alive (declare the
    /// deployment/fixture FIRST, the attachment second). Movable so
    /// attach() can return it by value; default-constructed = no-op.
    class Attachment {
      public:
        Attachment() = default;
        Attachment(Attachment&& o) noexcept { *this = std::move(o); }
        Attachment& operator=(Attachment&& o) noexcept;
        ~Attachment() { detach(); }
        Attachment(const Attachment&) = delete;
        Attachment& operator=(const Attachment&) = delete;

        /// Snapshots the run's metrics now (idempotent).
        void detach();

      private:
        friend class ObsSession;
        ObsSession* s_ = nullptr;
        std::unique_ptr<obs::Registry> reg_;
        sim::Simulator* sim_ = nullptr;
        bool traced_ = false;
    };

    /// Attaches a run built on `sim`. `reg` is invoked immediately (on the
    /// calling thread) to register the run's collectors; when this run wins
    /// the trace claim, the sink is passed through non-null so `reg` can
    /// name the trace tracks. Thread-safe; returns an inert attachment when
    /// neither --trace nor --metrics was requested.
    Attachment attach(sim::Simulator& sim, const std::string& label, bool want_trace,
                      const std::function<void(obs::Registry&, obs::TraceSink*)>& reg);
    /// Deployment convenience: forwards to Deployment::register_obs with
    /// `label` as the metrics prefix.
    Attachment attach(Deployment& d, const std::string& label, bool want_trace = true);

    obs::TraceSink* sink() { return tracing() ? &sink_ : nullptr; }

    /// Writes the metrics / trace files now (also done by the destructor).
    /// Call only after every attachment is detached and worker threads
    /// joined.
    void flush();

  private:
    std::string trace_path_;
    std::string metrics_path_;
    obs::TraceSink sink_;
    std::mutex merge_m_;
    std::map<std::string, double> merged_;
    std::atomic<bool> trace_claimed_{false};
    bool flushed_ = false;
    // Run parameters echoed into the metrics file's "meta" header.
    std::uint64_t meta_seed_ = 42;
    int meta_seeds_ = 1;
    unsigned meta_sim_threads_ = 1;
};

// --------------------------------------------------------------- factories

struct CommonParams {
    int n_replicas = 4;
    int n_clients = 8;
    crypto::CryptoMode crypto_mode = crypto::CryptoMode::kModeled;
    std::uint64_t seed = 42;
    /// Simulator worker partitions (PDES). 1 = serial engine. Simulated
    /// results are byte-identical for every value; only host time changes.
    unsigned sim_threads = 1;
    double drop_rate = 0.0;
    /// Adaptive-batching bounds for the baselines' leader batcher: cap on
    /// the load-tracked seal threshold, and the latency budget bounding the
    /// oldest request's wait (see sim::AdaptiveBatchController).
    std::size_t batch_max = 16;
    sim::Time batch_delay = 100 * sim::kMicrosecond;
    /// PDES placement-policy override (node id -> host partition). Empty =
    /// the deployment's default (id % nparts; group-affine for sharded
    /// deployments). Placement is host-locality only — simulated results
    /// are byte-identical for every policy (test_placement).
    sim::Simulator::PlacementFn placement;
    /// Replica application for NeoBFT (stateful, undo-capable).
    std::function<std::unique_ptr<app::StateMachine>()> app_factory;
    /// Replica application for the baselines (one closure per replica).
    std::function<std::function<Bytes(BytesView)>()> baseline_app_factory;
};

enum class NeoVariant { kHm, kPk, kBn };

struct NeoParams : CommonParams {
    NeoVariant variant = NeoVariant::kHm;
    /// Fig 8's EC2-style software sequencer profile.
    bool software_sequencer = false;
    /// aom receiver knobs (gap timeout, confirm batching) — ablations.
    aom::ReceiverOptions receiver{};
    /// State-sync period (§B.2) — ablations.
    std::uint64_t sync_interval = 128;
    /// Replica checkpoint cadence (slots); 0 disables checkpointing and
    /// log GC (the perf-figure default). Scenario runs set it so the
    /// crash-recover lifecycle exercises checkpoint fetch.
    std::uint64_t checkpoint_interval = 0;
    /// Build the sequencer switches as scenario::ByzSequencer so the
    /// scenario engine can inject drop/duplicate/corrupt/strip-sig faults.
    bool byz_sequencer = false;
};

std::unique_ptr<Deployment> make_unreplicated(const CommonParams& p);
std::unique_ptr<Deployment> make_neobft(const NeoParams& p);
std::unique_ptr<Deployment> make_pbft(const CommonParams& p);

/// Multi-group sharded NeoBFT: `n_shards` independent sequencer groups, each
/// a full NeoBFT replica group serving a contiguous slice of the key-hash
/// space, fronted by per-client cross-shard 2PC coordinators
/// (neobft::ShardClient). PDES placement is group-affine: a shard's
/// replicas and home switch share a partition, as do all child clients of
/// one logical client.
struct ShardParams : CommonParams {
    int n_shards = 2;
    NeoVariant variant = NeoVariant::kHm;
    aom::ReceiverOptions receiver{};
    std::uint64_t sync_interval = 128;
    /// Every replica's kv store is pre-loaded with this dataset (shared key
    /// space; routing decides which keys each shard actually serves).
    /// record_count = 0 skips the preload.
    app::YcsbConfig dataset{10'000, 32, 0.5, 0.99};
    /// Test hook: every replica of this shard runs the forged-prepare
    /// equivocation double (claims PREPARED, stages nothing); -1 = honest.
    int byzantine_prepare_shard = -1;
    /// 2PC liveness knobs, plumbed into every replica's KvStateMachine.
    /// Defaults match the fixed protocol; regression tests flip them to
    /// reproduce the pre-fix livelock / lock-leak behaviour.
    bool wait_die = true;
    std::uint64_t presumed_abort_after = 50'000;
};
std::unique_ptr<Deployment> make_sharded_neobft(const ShardParams& p);

/// Multi-key YCSB transaction workload for sharded deployments: each op is
/// a serialized kTxnLocal KvTxnOp whose keys are drawn zipfian and redrawn
/// so `cross_shard_ratio` of transactions span >= 2 shards. Per-client
/// generator state is touched only from that client's partition, so the
/// stream stays byte-identical across --sim-threads values.
struct ShardTxnWorkload {
    int n_shards = 2;
    double cross_shard_ratio = 0.0;
    std::size_t ops_per_txn = 4;
    std::uint64_t seed = 42;
    app::YcsbConfig dataset{10'000, 32, 0.5, 0.99};
};
OpGen sharded_txn_ops(const ShardTxnWorkload& w, int n_clients);

struct ZyzzyvaParams : CommonParams {
    bool faulty_replica = false;  // Zyzzyva-F
};
std::unique_ptr<Deployment> make_zyzzyva(const ZyzzyvaParams& p);
std::unique_ptr<Deployment> make_hotstuff(const CommonParams& p);
/// MinBFT uses 2f+1 replicas; `n_replicas` is interpreted as f's 3f+1
/// equivalent (n=4 -> f=1 -> 3 replicas) so sweeps stay uniform.
std::unique_ptr<Deployment> make_minbft(const CommonParams& p);

// ------------------------------------------------------------------ output

/// Aligned table printer for figure-style output.
class TablePrinter {
  public:
    explicit TablePrinter(std::vector<std::string> columns);
    void row(const std::vector<std::string>& cells);

  private:
    std::vector<std::size_t> widths_;
};

std::string fmt_double(double v, int precision = 1);

/// Measured -> metric map for the runner's BENCH_*.json points (the Fig 7
/// column set: throughput, latency percentiles, net/cpu/queue breakdown,
/// plus the non-gating phase_* critical-path attribution).
std::map<std::string, double> measured_metrics(const Measured& m);

/// Build provenance baked in at configure time (NEO_GIT_DESCRIBE /
/// NEO_BUILD_TYPE compile definitions); recorded in every suite/metrics
/// JSON meta header so archived BENCH_*.json artifacts are self-describing.
const char* build_git_describe();
const char* build_type_name();

class Json;
/// The shared "meta" header object (base_seed, build_type, git_describe,
/// seeds list, sim_threads) written into both the suite JSON and the
/// --metrics JSON. Deliberately excludes --jobs: scheduling must never
/// change output bytes (test_parallel_determinism).
Json run_meta_json(std::uint64_t base_seed, int seeds, unsigned sim_threads);

}  // namespace neo::bench
