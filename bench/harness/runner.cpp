#include "harness/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>

#include "common/assert.hpp"
#include "harness/bench_json.hpp"
#include "harness/thread_pool.hpp"

namespace neo::bench {

// ------------------------------------------------------------------ options

namespace {

/// `--flag <value>` / `--flag=<value>` from argv, else `env`, else "".
std::string flag_value(int argc, char* const* argv, const char* flag, const char* env) {
    const std::size_t flen = std::strlen(flag);
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return argv[i + 1];
        if (std::strncmp(argv[i], flag, flen) == 0 && argv[i][flen] == '=') {
            return argv[i] + flen + 1;
        }
    }
    const char* e = std::getenv(env);
    return e ? e : "";
}

bool flag_present(int argc, char* const* argv, const char* flag) {
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0) return true;
    }
    return false;
}

}  // namespace

BenchOptions BenchOptions::parse(int argc, char* const* argv) {
    BenchOptions o;
    o.json_path = flag_value(argc, argv, "--json", "NEO_BENCH_JSON");
    std::string s;
    if (!(s = flag_value(argc, argv, "--seed", "NEO_BENCH_SEED")).empty()) {
        o.base_seed = std::strtoull(s.c_str(), nullptr, 10);
    }
    if (!(s = flag_value(argc, argv, "--seeds", "NEO_BENCH_SEEDS")).empty()) {
        o.seeds = std::max(1, std::atoi(s.c_str()));
    }
    if (!(s = flag_value(argc, argv, "--jobs", "NEO_BENCH_JOBS")).empty()) {
        int j = std::atoi(s.c_str());
        o.jobs = j <= 0 ? ThreadPool::default_jobs() : static_cast<unsigned>(j);
    }
    if (!(s = flag_value(argc, argv, "--sim-threads", "NEO_BENCH_SIM_THREADS")).empty()) {
        int j = std::atoi(s.c_str());
        o.sim_threads = j <= 0 ? ThreadPool::default_jobs() : static_cast<unsigned>(j);
    }
    o.quick = flag_present(argc, argv, "--quick") || std::getenv("NEO_BENCH_QUICK") != nullptr;
    o.real_crypto = flag_present(argc, argv, "--real-crypto") ||
                    std::getenv("NEO_BENCH_REAL_CRYPTO") != nullptr;
    return o;
}

// ------------------------------------------------------------------ context

ObsSession::Attachment RunCtx::attach(
    sim::Simulator& sim,
    const std::function<void(obs::Registry&, obs::TraceSink*)>& reg) const {
    return obs_->attach(sim, label_, want_trace_, reg);
}

ObsSession::Attachment RunCtx::attach(Deployment& d) const {
    return obs_->attach(d, label_, want_trace_);
}

// -------------------------------------------------------------- aggregation

double MetricStats::mean() const {
    if (values.empty()) return 0;
    double sum = 0;
    for (double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

double MetricStats::stddev() const {
    if (values.size() < 2) return 0;
    double m = mean();
    double ss = 0;
    for (double v : values) ss += (v - m) * (v - m);
    return std::sqrt(ss / static_cast<double>(values.size() - 1));
}

double MetricStats::min() const {
    if (values.empty()) return 0;
    return *std::min_element(values.begin(), values.end());
}

double MetricStats::max() const {
    if (values.empty()) return 0;
    return *std::max_element(values.begin(), values.end());
}

double PointResult::mean(const std::string& metric) const {
    auto it = metrics.find(metric);
    return it == metrics.end() ? 0 : it->second.mean();
}

const PointResult* BenchSuite::point(const std::string& name_) const {
    for (const auto& p : points) {
        if (p.name == name_) return &p;
    }
    return nullptr;
}

std::string BenchSuite::to_json() const {
    Json root = Json::object();
    root.set("schema", Json(std::string("neo-bench-suite@1")));
    root.set("suite", Json(name));
    root.set("base_seed", Json(static_cast<double>(base_seed)));
    root.set("seeds", Json(static_cast<double>(seeds)));
    root.set("quick", Json(quick));
    root.set("real_crypto", Json(real_crypto));
    root.set("meta", run_meta_json(base_seed, seeds, sim_threads));
    Json pts = Json::array();
    for (const auto& p : points) {
        Json jp = Json::object();
        jp.set("name", Json(p.name));
        Json params = Json::object();
        for (const auto& [k, v] : p.params) params.set(k, Json(v));
        jp.set("params", std::move(params));
        Json metrics = Json::object();
        for (const auto& [k, st] : p.metrics) {
            Json jm = Json::object();
            jm.set("mean", Json(st.mean()));
            jm.set("stddev", Json(st.stddev()));
            jm.set("min", Json(st.min()));
            jm.set("max", Json(st.max()));
            Json values = Json::array();
            for (double v : st.values) values.push_back(Json(v));
            jm.set("values", std::move(values));
            metrics.set(k, std::move(jm));
        }
        jp.set("metrics", std::move(metrics));
        pts.push_back(std::move(jp));
    }
    root.set("points", std::move(pts));
    return root.dump() + "\n";
}

bool BenchSuite::write_json_file(const std::string& path) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << to_json();
    return static_cast<bool>(out);
}

// ------------------------------------------------------------------- runner

BenchMain::BenchMain(int argc, char** argv, std::string suite_name)
    : opt_(BenchOptions::parse(argc, argv)), obs_(argc, argv) {
    suite_.name = std::move(suite_name);
    suite_.base_seed = opt_.base_seed;
    suite_.seeds = opt_.seeds;
    suite_.quick = opt_.quick;
    suite_.sim_threads = opt_.sim_threads;
    suite_.real_crypto = opt_.real_crypto;
    if (flag_present(argc, argv, "--help") || flag_present(argc, argv, "-h")) {
        std::printf(
            "usage: %s [--json <path>] [--seed <S>] [--seeds <N>] [--jobs <N>]\n"
            "          [--sim-threads <N>] [--quick] [--trace <path>] [--metrics <path>]\n"
            "  --json     write machine-readable results (neo-bench-suite@1)\n"
            "  --seed     base seed (default 42)\n"
            "  --seeds    seeds per point: S, S+1, ... (default 1)\n"
            "  --jobs     parallel runs; 0 = all cores (default 1)\n"
            "  --sim-threads  partitions per simulation (PDES); 0 = all cores\n"
            "             (default 1). Simulated results are identical for any N.\n"
            "  --quick    reduced-size sweep for CI smoke runs\n"
            "  --real-crypto  run with CryptoMode::kReal (actual secp256k1 /\n"
            "             SipHash on the host). Simulated metrics are unchanged;\n"
            "             only host_ns and trace signature bytes differ.\n"
            "  --trace    Chrome-trace/JSONL timeline of one run (see docs/OBSERVABILITY.md)\n"
            "  --metrics  per-run counter JSON, labels namespaced '<point>.s<seed>'\n",
            argv[0]);
        std::exit(0);
    }
}

BenchMain::~BenchMain() { flush(); }

std::vector<PointResult> BenchMain::run(const std::vector<BenchPointSpec>& points) {
    // The trace slot (process-wide, first claim wins) must land on a
    // deterministic run regardless of scheduling: the first candidate
    // point's first seed, once per process.
    std::ptrdiff_t trace_point = -1;
    if (!trace_offered_) {
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (points[i].trace_candidate) {
                trace_point = static_cast<std::ptrdiff_t>(i);
                trace_offered_ = true;
                break;
            }
        }
    }

    using Metrics = std::map<std::string, double>;
    std::vector<std::vector<std::future<Metrics>>> futs(points.size());
    {
        ThreadPool pool(opt_.jobs);
        for (std::size_t i = 0; i < points.size(); ++i) {
            const BenchPointSpec& spec = points[i];
            NEO_ASSERT_MSG(spec.run, "BenchPointSpec without a run function");
            futs[i].reserve(static_cast<std::size_t>(opt_.seeds));
            for (int s = 0; s < opt_.seeds; ++s) {
                std::uint64_t seed = opt_.base_seed + static_cast<std::uint64_t>(s);
                bool want_trace = static_cast<std::ptrdiff_t>(i) == trace_point && s == 0;
                std::string label = spec.name + ".s" + std::to_string(seed);
                auto fn = spec.run;
                bool quick = opt_.quick;
                unsigned sim_threads = opt_.sim_threads;
                bool real_crypto = opt_.real_crypto;
                ObsSession* obs = &obs_;
                futs[i].push_back(pool.async(
                    [fn, obs, label = std::move(label), seed, want_trace, quick,
                     sim_threads, real_crypto]() -> Metrics {
                        RunCtx ctx(obs, label, seed, want_trace, quick, sim_threads,
                                   real_crypto);
                        // Wall-clock per (point, seed). host_* metrics are
                        // nondeterministic by nature; bench_compare and the
                        // determinism tests ignore them (docs/BENCHMARKING.md).
                        auto t0 = std::chrono::steady_clock::now();
                        Metrics m = fn(ctx);
                        auto t1 = std::chrono::steady_clock::now();
                        m["host_ns"] = static_cast<double>(
                            std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                                .count());
                        return m;
                    }));
            }
        }
        // Pool destructor drains every run (even when a get() below would
        // throw) before any future is inspected.
    }

    std::vector<PointResult> out;
    out.reserve(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        PointResult r;
        r.name = points[i].name;
        r.params = points[i].params;
        for (auto& fut : futs[i]) {
            Metrics m = fut.get();  // rethrows a run's exception
            for (const auto& [k, v] : m) r.metrics[k].values.push_back(v);
        }
        out.push_back(std::move(r));
    }
    for (const auto& r : out) suite_.points.push_back(r);
    return out;
}

void BenchMain::flush() {
    if (flushed_) return;
    flushed_ = true;
    if (opt_.json_path.empty()) return;
    if (suite_.write_json_file(opt_.json_path)) {
        std::printf("\nwrote %s (%zu points, %d seed%s)\n", opt_.json_path.c_str(),
                    suite_.points.size(), opt_.seeds, opt_.seeds == 1 ? "" : "s");
    } else {
        std::fprintf(stderr, "bench: cannot write suite JSON %s\n", opt_.json_path.c_str());
    }
}

}  // namespace neo::bench
