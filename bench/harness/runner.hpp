// Parallel multi-seed benchmark runner.
//
// Every figure/table binary describes its sweep as a list of named points;
// the runner fans (point, seed) pairs across a work-stealing thread pool —
// each run owns a private Simulator/Network/Deployment, so per-seed
// determinism is untouched by scheduling — aggregates each metric across
// seeds (mean, stddev, min, max, raw values) and writes the whole suite as
// machine-readable JSON ("neo-bench-suite@1", see docs/BENCHMARKING.md).
//
// Uniform CLI (shared by all bench binaries, on top of PR 1's
// --trace/--metrics):
//   --json <path>   write the suite as JSON (env NEO_BENCH_JSON)
//   --seed <S>      base seed, default 42 (env NEO_BENCH_SEED)
//   --seeds <N>     run every point under N seeds S, S+1, ... (default 1)
//   --jobs <N>      worker threads, default 1; 0 = hardware concurrency
//   --sim-threads <N>  partitions per simulation (PDES), default 1; 0 = all
//                   cores (env NEO_BENCH_SIM_THREADS). Simulated results are
//                   byte-identical for every N; only host_ns changes.
//   --quick         reduced-size sweep for CI smoke runs (env NEO_BENCH_QUICK)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace neo::bench {

struct BenchOptions {
    std::string json_path;        // empty = no JSON output
    std::uint64_t base_seed = 42;
    int seeds = 1;
    unsigned jobs = 1;
    /// Worker partitions inside each simulation (Simulator's thread count).
    unsigned sim_threads = 1;
    bool quick = false;
    /// --real-crypto (env NEO_BENCH_REAL_CRYPTO): run every protocol point
    /// with CryptoMode::kReal — actual secp256k1/SipHash on the host instead
    /// of the modeled HMAC oracle. Virtual costs (and therefore simulated
    /// metrics) are mode-independent; only host_ns and the signature bytes
    /// in traces change. Used by the nightly workflow and the host-side
    /// crypto wall-clock gate (docs/BENCHMARKING.md).
    bool real_crypto = false;

    /// Parses the uniform flags from argv (unrecognised flags are left for
    /// other consumers, e.g. --trace/--metrics). `--jobs 0` resolves to
    /// hardware concurrency here.
    static BenchOptions parse(int argc, char* const* argv);
};

/// Per-run context handed to a point's run function on a worker thread.
class RunCtx {
  public:
    std::uint64_t seed() const { return seed_; }
    bool quick() const { return quick_; }
    /// --sim-threads: forward into CommonParams::sim_threads (or a
    /// Simulator constructor) so the simulation itself runs partitioned.
    unsigned sim_threads() const { return sim_threads_; }
    /// --real-crypto: forward into CommonParams::crypto_mode so factories
    /// build real-crypto deployments.
    crypto::CryptoMode crypto_mode() const {
        return real_crypto_ ? crypto::CryptoMode::kReal : crypto::CryptoMode::kModeled;
    }
    /// Label for metrics namespacing: "<point>.s<seed>" — the seed is part
    /// of the label so multi-seed metric dumps never collide.
    const std::string& label() const { return label_; }

    /// Attaches this run's observability. Hold the returned handle in a
    /// scope *inside* the deployment/bench fixture's lifetime (declare the
    /// fixture first): its destructor snapshots the metrics, which reads
    /// the fixture's counters.
    ObsSession::Attachment attach(
        sim::Simulator& sim,
        const std::function<void(obs::Registry&, obs::TraceSink*)>& reg) const;
    /// Deployment convenience: forwards to Deployment::register_obs with
    /// label() as the metrics prefix.
    ObsSession::Attachment attach(Deployment& d) const;

  private:
    friend class BenchMain;
    RunCtx(ObsSession* obs, std::string label, std::uint64_t seed, bool want_trace, bool quick,
           unsigned sim_threads, bool real_crypto)
        : obs_(obs), label_(std::move(label)), seed_(seed), want_trace_(want_trace),
          quick_(quick), sim_threads_(sim_threads), real_crypto_(real_crypto) {}

    ObsSession* obs_;
    std::string label_;
    std::uint64_t seed_;
    bool want_trace_;
    bool quick_;
    unsigned sim_threads_ = 1;
    bool real_crypto_ = false;
};

/// One sweep point: a stable name ("aom_hm.r4"), its machine-readable sweep
/// coordinates, and a function that runs ONE simulation for one seed and
/// returns its metrics. The function must build all state (fixture,
/// deployment, RNGs) locally — it runs concurrently with other points.
struct BenchPointSpec {
    std::string name;
    std::map<std::string, double> params;
    std::function<std::map<std::string, double>(RunCtx&)> run;
    /// Whether this point may be offered the process-wide trace slot
    /// (the first candidate's first seed gets it).
    bool trace_candidate = true;
};

/// A metric's per-seed samples (in seed order) plus the derived stats.
struct MetricStats {
    std::vector<double> values;

    double mean() const;
    double stddev() const;  // sample stddev; 0 when fewer than 2 samples
    double min() const;
    double max() const;
};

struct PointResult {
    std::string name;
    std::map<std::string, double> params;
    std::map<std::string, MetricStats> metrics;

    /// Mean of `metric` across seeds; 0 when the metric is absent.
    double mean(const std::string& metric) const;
};

struct BenchSuite {
    std::string name;
    std::uint64_t base_seed = 42;
    int seeds = 1;
    bool quick = false;
    /// Simulation partition count, echoed into the "meta" header (see
    /// run_meta_json — which adds the build's git describe / build type)
    /// so archived BENCH_*.json files are self-describing.
    unsigned sim_threads = 1;
    /// Whether the suite ran with --real-crypto (echoed as a root field so
    /// archived real-crypto suites are distinguishable from modeled ones).
    bool real_crypto = false;
    std::vector<PointResult> points;

    const PointResult* point(const std::string& name) const;

    /// Serialises to the "neo-bench-suite@1" schema. Output depends only
    /// on the results (not on scheduling), so a --jobs N run and a
    /// --jobs 1 run of the same sweep produce byte-identical files —
    /// which is also why the meta header has no "jobs" field.
    std::string to_json() const;
    bool write_json_file(const std::string& path) const;
};

/// Per-binary entry point: owns the parsed options, the ObsSession and the
/// accumulated suite. Destruction writes the JSON file when --json was
/// given (after printing, so a crash mid-print loses nothing silently).
class BenchMain {
  public:
    BenchMain(int argc, char** argv, std::string suite_name);
    ~BenchMain();

    BenchMain(const BenchMain&) = delete;
    BenchMain& operator=(const BenchMain&) = delete;

    const BenchOptions& opt() const { return opt_; }
    bool quick() const { return opt_.quick; }
    std::uint64_t base_seed() const { return opt_.base_seed; }
    ObsSession& obs() { return obs_; }

    /// Runs every (point, seed) pair on the pool and appends the
    /// aggregated results to the suite. Returns the results for THIS call
    /// (same order as `points`). Exceptions from run functions propagate
    /// after all in-flight runs drain.
    std::vector<PointResult> run(const std::vector<BenchPointSpec>& points);

    const BenchSuite& suite() const { return suite_; }

    /// Writes the suite JSON now (idempotent; also done by the destructor).
    void flush();

  private:
    BenchOptions opt_;
    ObsSession obs_;
    BenchSuite suite_;
    bool trace_offered_ = false;
    bool flushed_ = false;
};

}  // namespace neo::bench
