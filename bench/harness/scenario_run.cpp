#include "harness/scenario_run.hpp"

#include <algorithm>
#include <cstdio>

namespace neo::bench {

std::string ScenarioOutcome::to_string() const {
    std::string s = scenario + ": " + (ok ? "ok" : "FAIL");
    s += " violations=[";
    for (std::size_t i = 0; i < violations.size(); ++i) {
        if (i) s += ",";
        s += violations[i];
    }
    s += "] unexpected=[";
    for (std::size_t i = 0; i < unexpected.size(); ++i) {
        if (i) s += ",";
        s += unexpected[i];
    }
    s += "] missing=[";
    for (std::size_t i = 0; i < missing.size(); ++i) {
        if (i) s += ",";
        s += missing[i];
    }
    s += "] completed=" + std::to_string(total_completed);
    s += " min_client=" + std::to_string(min_client_completed);
    s += " per_client=[";
    for (std::size_t i = 0; i < client_completed.size(); ++i) {
        if (i) s += ",";
        s += std::to_string(client_completed[i]);
    }
    s += "]";
    return s;
}

ScenarioOutcome run_scenario(Deployment& d, const scenario::Scenario& sc, const OpGen& ops,
                             sim::Time duration) {
    sim::Simulator& sim = d.simulator();
    const sim::Time deadline = sim.now() + duration;

    // The adapter only needs to live until the last scheduled fault fires,
    // which is inside run_until below.
    ScenarioAdapter adapter(d);
    scenario::apply(sc, adapter);

    // Closed loop, one chain per client. Per-client slots only (a done
    // callback runs on that client's partition); merged after the run.
    const std::size_t nclients = static_cast<std::size_t>(d.n_clients());
    auto completed = std::make_shared<std::vector<std::uint64_t>>(nclients, 0);
    auto per_client_k = std::make_shared<std::vector<std::uint64_t>>(nclients, 0);
    auto issue = std::make_shared<std::function<void(int)>>();
    *issue = [&d, &ops, issue, completed, per_client_k, deadline](int c) {
        if (d.simulator().now() >= deadline) return;
        std::uint64_t k = (*per_client_k)[static_cast<std::size_t>(c)]++;
        d.invoke(c, ops(c, k), [&d, issue, completed, deadline, c](Bytes) {
            if (d.simulator().now() < deadline) ++(*completed)[static_cast<std::size_t>(c)];
            (*issue)(c);
        });
    };
    for (int c = 0; c < d.n_clients(); ++c) (*issue)(c);

    sim.run_until(deadline);

    ScenarioOutcome out;
    out.scenario = sc.name;
    out.client_completed = *completed;
    out.min_client_completed = nclients ? ~0ull : 0;
    for (std::uint64_t n : out.client_completed) {
        out.total_completed += n;
        out.min_client_completed = std::min(out.min_client_completed, n);
    }

    obs::Auditor& aud = d.auditor();
    aud.finalize();
    // Liveness floor rides on the auditor AFTER finalize (finalize clears
    // the violation list): every client must have reached the scenario's
    // commit floor by the deadline.
    for (std::size_t c = 0; c < nclients; ++c) {
        aud.expect_client_commits(static_cast<NodeId>(c), out.client_completed[c],
                                  sc.min_commits_per_client, deadline);
    }

    // Names in first-appearance order, duplicates collapsed.
    for (const auto& v : aud.violations()) {
        std::string name = v.invariant;
        if (std::find(out.violations.begin(), out.violations.end(), name) ==
            out.violations.end()) {
            out.violations.push_back(name);
        }
    }
    for (const std::string& name : out.violations) {
        bool expected = name == "liveness" ||
                        std::find(sc.expect_violations.begin(), sc.expect_violations.end(),
                                  name) != sc.expect_violations.end();
        if (!expected) out.unexpected.push_back(name);
    }
    if (sc.violations_required) {
        for (const std::string& name : sc.expect_violations) {
            if (std::find(out.violations.begin(), out.violations.end(), name) ==
                out.violations.end()) {
                out.missing.push_back(name);
            }
        }
    }

    bool live = std::find(out.violations.begin(), out.violations.end(), "liveness") ==
                out.violations.end();
    out.ok = out.unexpected.empty() && out.missing.empty() && live;
    if (!out.ok) {
        for (const auto& v : aud.violations()) {
            std::fprintf(stderr, "scenario %s: %s\n", sc.name.c_str(), v.to_string().c_str());
        }
    }
    return out;
}

}  // namespace neo::bench
