// Scenario driver: runs a declarative fault schedule (src/scenario) over a
// live deployment and checks BOTH safety and liveness at the end.
//
// run_closed_loop() aborts on any auditor violation — correct for perf
// figures, where a violation means the numbers are garbage. Scenario runs
// are different: a Byzantine scenario EXPECTS specific violations (an
// equivocation run that trips no divergent_commit is a detector bug), so
// the driver compares the auditor's findings against the scenario's
// expectation set instead of asserting emptiness, and adds the liveness
// floor (every client commits >= min_commits_per_client) that perf runs
// never needed.
#pragma once

#include <string>
#include <vector>

#include "harness/harness.hpp"
#include "scenario/scenario.hpp"

namespace neo::bench {

/// Deterministic result of one scenario run: every field derives from the
/// simulation's event stream, so to_string() is byte-identical across
/// --sim-threads values for the same (deployment params, scenario).
struct ScenarioOutcome {
    std::string scenario;
    bool ok = false;
    /// Violation names the auditor flagged, in finalize order (duplicates
    /// collapsed), and how they compare against the expectation set.
    std::vector<std::string> violations;
    std::vector<std::string> unexpected;
    std::vector<std::string> missing;
    /// Per-client committed-request counts over the run.
    std::vector<std::uint64_t> client_completed;
    std::uint64_t total_completed = 0;
    std::uint64_t min_client_completed = 0;

    /// One-line summary (stable field order) for logs and the determinism
    /// test's byte comparison.
    std::string to_string() const;
};

/// Applies `sc` to `d`, drives every client closed-loop for `duration` of
/// virtual time, finalizes the auditor and evaluates the scenario's
/// expectations. The deployment must be freshly built (the auditor and
/// client counters start at zero).
ScenarioOutcome run_scenario(Deployment& d, const scenario::Scenario& sc, const OpGen& ops,
                             sim::Time duration);

}  // namespace neo::bench
