// Multi-group sharded NeoBFT deployment: N independent sequencer groups,
// each a full NeoBFT replica group owning a contiguous slice of the key-hash
// space, fronted by per-client cross-shard 2PC coordinators.
#include <memory>

#include "aom/config_service.hpp"
#include "apps/kvstore.hpp"
#include "apps/ycsb.hpp"
#include "common/assert.hpp"
#include "harness/harness.hpp"
#include "neobft/replica.hpp"
#include "neobft/shard_client.hpp"
#include "neobft/shard_router.hpp"
#include "sim/costs.hpp"

namespace neo::bench {

namespace {

constexpr NodeId kConfigId = 900;
constexpr NodeId kSwitchBase = 910;
constexpr NodeId kClientBase = 1'000;
constexpr NodeId kReplicaBase = 1;
constexpr GroupId kShardGroupBase = 7;

/// Replica ids: shard s, index i -> 1 + 8s + i (max 8 replicas per shard).
constexpr NodeId kShardReplicaStride = 8;
/// Client child ids: logical client c, shard s -> 1000 + 32c + s.
constexpr NodeId kShardClientStride = 32;

class ShardedNeoDeployment : public Deployment {
  public:
    explicit ShardedNeoDeployment(const ShardParams& p)
        : sim_(p.sim_threads), net_(sim_, p.seed), root_(p.crypto_mode, p.seed + 1),
          keys_(p.seed + 2) {
        const int S = p.n_shards;
        NEO_ASSERT(S >= 1 && S <= static_cast<int>(kShardClientStride));
        NEO_ASSERT(p.n_replicas >= 1 && p.n_replicas <= static_cast<int>(kShardReplicaStride));
        net_.set_default_link(sim::datacenter_link());
        net_.set_global_drop_rate(p.drop_rate);

        // Group-affine placement (installed before the first add_node): a
        // shard's replicas and its home switch share a partition, and every
        // child client of one logical client shares one — the ShardClient
        // concurrency contract (its phase callbacks mutate shared
        // coordinator state without locks).
        sim_.set_placement(p.placement ? p.placement
                                       : [](NodeId id, unsigned nparts) -> unsigned {
            if (id >= kClientBase) {
                return static_cast<unsigned>((id - kClientBase) / kShardClientStride) % nparts;
            }
            if (id >= kSwitchBase) return static_cast<unsigned>(id - kSwitchBase) % nparts;
            if (id == kConfigId) return 0;
            return static_cast<unsigned>((id - kReplicaBase) / kShardReplicaStride) % nparts;
        });

        // One group per shard over an even tiling of the 64-bit hash space.
        std::vector<aom::GroupConfig> groups;
        for (int s = 0; s < S; ++s) {
            aom::GroupConfig g;
            g.group = kShardGroupBase + static_cast<GroupId>(s);
            g.variant = p.variant == NeoVariant::kPk ? aom::AuthVariant::kPublicKey
                                                     : aom::AuthVariant::kHmacVector;
            g.trust = p.variant == NeoVariant::kBn ? aom::NetworkTrust::kByzantine
                                                   : aom::NetworkTrust::kCrashOnly;
            g.f = (p.n_replicas - 1) / 3;
            for (int i = 0; i < p.n_replicas; ++i) {
                g.receivers.push_back(kReplicaBase + kShardReplicaStride * static_cast<NodeId>(s) +
                                      static_cast<NodeId>(i));
            }
            groups.push_back(std::move(g));
        }
        groups = neobft::ShardRouter::assign_ranges(std::move(groups));
        router_ = std::make_unique<neobft::ShardRouter>(groups);

        // One home switch per shard plus a shared spare the failover
        // round-robin can move any group onto.
        for (int s = 0; s < S + 1; ++s) {
            NodeId sid = kSwitchBase + static_cast<NodeId>(s);
            switches_.push_back(std::make_unique<aom::SequencerSwitch>(
                aom::SequencerConfig{}, root_.provision(sid), &keys_));
            net_.add_node(*switches_.back(), sid);
        }
        std::vector<aom::SequencerSwitch*> pool;
        for (auto& sw : switches_) pool.push_back(sw.get());
        config_ = std::make_unique<aom::ConfigService>(&keys_, pool);
        net_.add_node(*config_, kConfigId);
        for (int s = 0; s < S; ++s) {
            config_->register_group(groups[static_cast<std::size_t>(s)],
                                    static_cast<std::size_t>(s));
        }

        auditor_.configure(sim_.partitions() + 1);
        app::YcsbWorkload preload(p.dataset, p.seed);
        for (int s = 0; s < S; ++s) {
            const aom::GroupConfig& g = groups[static_cast<std::size_t>(s)];
            neobft::Config cfg;
            cfg.f = g.f;
            cfg.group = g.group;
            cfg.config_service = kConfigId;
            cfg.sync_interval = p.sync_interval;
            cfg.replicas = g.receivers;
            shard_cfgs_.push_back(cfg);

            for (NodeId rid : cfg.replicas) {
                auto app = std::make_unique<app::KvStateMachine>();
                if (s == p.byzantine_prepare_shard) {
                    app->set_byzantine_prepare_equivocation(true);
                }
                app->set_wait_die(p.wait_die);
                app->set_presumed_abort_after(p.presumed_abort_after);
                if (p.dataset.record_count > 0) preload.load_into(*app);
                auto rep = std::make_unique<neobft::Replica>(cfg, root_.provision(rid), &keys_,
                                                             std::move(app), p.receiver);
                rep->set_auditor(&auditor_);
                net_.add_node(*rep, rid);
                rep->bootstrap(g, config_->current_sequencer(g.group));
                replicas_.push_back(std::move(rep));
            }
        }

        for (int c = 0; c < p.n_clients; ++c) {
            std::vector<neobft::Client*> children;
            for (int s = 0; s < S; ++s) {
                NodeId cid = kClientBase + kShardClientStride * static_cast<NodeId>(c) +
                             static_cast<NodeId>(s);
                auto child = std::make_unique<neobft::Client>(
                    shard_cfgs_[static_cast<std::size_t>(s)], root_.provision(cid),
                    config_.get());
                net_.add_node(*child, cid);
                children.push_back(child.get());
                child_clients_.push_back(std::move(child));
            }
            shard_clients_.push_back(std::make_unique<neobft::ShardClient>(
                router_.get(), std::move(children), static_cast<std::uint32_t>(c) + 1));
        }
    }

    sim::Simulator& simulator() override { return sim_; }
    sim::Network& network() override { return net_; }
    int n_clients() const override { return static_cast<int>(shard_clients_.size()); }
    void invoke(int client, Bytes op, std::function<void(Bytes)> done) override {
        shard_clients_[static_cast<std::size_t>(client)]->invoke(std::move(op),
                                                                 std::move(done));
    }
    bool abandon_coordinator(int client) override {
        shard_clients_[static_cast<std::size_t>(client)]->abandon();
        return true;
    }

    std::vector<NodeId> replica_ids() const override {
        std::vector<NodeId> out;
        for (const auto& r : replicas_) out.push_back(r->id());
        return out;
    }
    crypto::CostMeter* replica_meter(NodeId id) override {
        for (auto& r : replicas_) {
            if (r->id() == id) return &r->node_crypto().meter();
        }
        return nullptr;
    }

    /// Stalls shard 0's home switch; the config service fails the group
    /// over to the next pool switch.
    void inject_sequencer_failure() override { switches_[0]->set_stall(true); }
    std::uint64_t failovers() const override { return config_->failovers_performed(); }

    TxnTotals txn_totals() const override {
        TxnTotals t;
        for (const auto& sc : shard_clients_) {
            const neobft::ShardClient::Stats& s = sc->stats();
            t.txns_started += s.txns_started;
            t.committed_txns += s.committed_txns;
            t.aborted_txns += s.aborted_txns;
            t.committed_ops += s.committed_ops;
            t.cross_shard_txns += s.cross_shard_txns;
        }
        return t;
    }

    void register_obs(obs::Registry& reg, const std::string& prefix,
                      obs::TraceSink* trace) override {
        net_.register_metrics(reg, prefix + ".net");
        for (auto& r : replicas_) {
            r->register_metrics(reg, prefix + ".replica." + std::to_string(r->id()));
        }
        for (std::size_t s = 0; s < switches_.size(); ++s) {
            switches_[s]->register_metrics(reg, prefix + ".sequencer." + std::to_string(s));
        }
        if (trace) {
            for (const auto& r : replicas_) {
                trace->set_node_name(r->id(), "replica " + std::to_string(r->id()));
            }
            for (std::size_t s = 0; s < switches_.size(); ++s) {
                trace->set_node_name(switches_[s]->id(), "sequencer " + std::to_string(s));
            }
            trace->set_node_name(kConfigId, "config service");
            for (const auto& c : child_clients_) {
                trace->set_node_name(c->id(), "client " + std::to_string(c->id()));
            }
        }
    }

  private:
    sim::Simulator sim_;
    sim::Network net_;
    crypto::TrustRoot root_;
    aom::AomKeyService keys_;
    std::unique_ptr<neobft::ShardRouter> router_;
    std::vector<std::unique_ptr<aom::SequencerSwitch>> switches_;
    std::unique_ptr<aom::ConfigService> config_;
    std::vector<neobft::Config> shard_cfgs_;
    std::vector<std::unique_ptr<neobft::Replica>> replicas_;
    std::vector<std::unique_ptr<neobft::Client>> child_clients_;
    std::vector<std::unique_ptr<neobft::ShardClient>> shard_clients_;
};

}  // namespace

std::unique_ptr<Deployment> make_sharded_neobft(const ShardParams& p) {
    return std::make_unique<ShardedNeoDeployment>(p);
}

OpGen sharded_txn_ops(const ShardTxnWorkload& w, int n_clients) {
    NEO_ASSERT(w.n_shards >= 1);
    // A router over the same even range tiling the deployment uses: group
    // ids are irrelevant to shard_index, so the workload's copy routes
    // identically to the deployment's.
    std::vector<aom::GroupConfig> gs(static_cast<std::size_t>(w.n_shards));
    for (std::size_t s = 0; s < gs.size(); ++s) gs[s].group = static_cast<GroupId>(s);
    auto router =
        std::make_shared<neobft::ShardRouter>(neobft::ShardRouter::assign_ranges(std::move(gs)));

    // Per-client generator state: client c's stream is touched only from
    // its own partition (the closed loop reissues from c's completion
    // context), so no cross-thread sharing.
    auto gens = std::make_shared<std::vector<std::unique_ptr<app::YcsbWorkload>>>();
    for (int c = 0; c < n_clients; ++c) {
        gens->push_back(std::make_unique<app::YcsbWorkload>(
            w.dataset, w.seed * 1'000'003 + static_cast<std::uint64_t>(c)));
    }

    app::YcsbWorkload::TxnConfig tc{w.ops_per_txn, w.cross_shard_ratio};
    const auto n_shards = static_cast<std::size_t>(w.n_shards);
    return [router, gens, tc, n_shards](int client, std::uint64_t) {
        app::KvTxnOp txn = (*gens)[static_cast<std::size_t>(client)]->next_txn(
            tc, [&](BytesView key) { return router->shard_index(key); }, n_shards);
        return txn.serialize();
    };
}

}  // namespace neo::bench
