#include "harness/thread_pool.hpp"

#include "common/assert.hpp"

namespace neo::bench {

ThreadPool::ThreadPool(unsigned threads) {
    if (threads < 1) threads = 1;
    queues_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i) {
        workers_.emplace_back([this, i] { worker_loop(i); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lk(idle_m_);
        joining_ = true;
    }
    idle_cv_.notify_all();
    for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    NEO_ASSERT_MSG(task, "ThreadPool: empty task");
    std::size_t target;
    {
        std::lock_guard<std::mutex> lk(submit_m_);
        target = next_queue_;
        next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    {
        std::lock_guard<std::mutex> lk(queues_[target]->m);
        queues_[target]->q.push_back(std::move(task));
    }
    {
        // Submitting while the destructor drains is allowed — a running task
        // may enqueue follow-up work, and workers only exit once pending_
        // reaches zero, so nothing enqueued before the last task returns is
        // ever lost.
        std::lock_guard<std::mutex> lk(idle_m_);
        ++pending_;
    }
    idle_cv_.notify_one();
}

bool ThreadPool::try_pop_front(std::size_t i, std::function<void()>& out) {
    std::lock_guard<std::mutex> lk(queues_[i]->m);
    if (queues_[i]->q.empty()) return false;
    out = std::move(queues_[i]->q.front());
    queues_[i]->q.pop_front();
    return true;
}

bool ThreadPool::try_steal_back(std::size_t thief, std::function<void()>& out) {
    // Scan victims starting after the thief so steals spread out.
    for (std::size_t k = 1; k < queues_.size(); ++k) {
        std::size_t v = (thief + k) % queues_.size();
        std::lock_guard<std::mutex> lk(queues_[v]->m);
        if (queues_[v]->q.empty()) continue;
        out = std::move(queues_[v]->q.back());
        queues_[v]->q.pop_back();
        return true;
    }
    return false;
}

void ThreadPool::worker_loop(std::size_t i) {
    for (;;) {
        std::function<void()> task;
        if (try_pop_front(i, task) || try_steal_back(i, task)) {
            {
                std::lock_guard<std::mutex> lk(idle_m_);
                --pending_;
            }
            task();
            continue;
        }
        std::unique_lock<std::mutex> lk(idle_m_);
        if (pending_ == 0 && joining_) return;
        if (pending_ == 0) {
            idle_cv_.wait(lk, [this] { return pending_ > 0 || joining_; });
        }
        // pending_ > 0 here means some queue is non-empty: loop and fetch.
        // (A task popped by another worker between our failed scan and the
        // wait shows up as pending_ == 0 and we park again — no spin.)
    }
}

unsigned ThreadPool::default_jobs() {
    unsigned n = std::thread::hardware_concurrency();
    return n < 1 ? 1 : n;
}

}  // namespace neo::bench
