// Work-stealing thread pool for fanning independent (config, seed)
// simulation runs across cores.
//
// Each worker owns a deque: the owner pops from the front (FIFO keeps
// submission order roughly intact, which keeps cache-warm configs
// together), idle workers steal from the back of a victim's deque.
// Submissions round-robin across the worker deques, so a balanced fan-out
// never needs to steal at all; stealing only pays when run times are
// skewed (e.g. fig6's 64-receiver point next to its 4-receiver point).
//
// Semantics:
//  - submit() enqueues a task; async() wraps it in a std::packaged_task so
//    exceptions propagate through the returned future (the pool itself
//    never swallows or rethrows).
//  - The destructor drains: every task submitted before destruction runs
//    to completion before the workers join, and a running task may submit
//    follow-up work (also drained). External threads must not race submit()
//    against the destructor — the usual lifetime rule, not a pool rule.
//  - size() == 1 is valid and runs tasks on the single worker thread (not
//    inline), so sequential and parallel runs share one code path.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace neo::bench {

class ThreadPool {
  public:
    /// Spawns `threads` workers (values < 1 are clamped to 1).
    explicit ThreadPool(unsigned threads);

    /// Drains every submitted task, then joins the workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned size() const { return static_cast<unsigned>(workers_.size()); }

    /// Enqueues a fire-and-forget task.
    void submit(std::function<void()> task);

    /// Enqueues `fn` and returns a future for its result; an exception
    /// thrown by `fn` is rethrown by future::get().
    template <typename F>
    auto async(F fn) -> std::future<std::invoke_result_t<F>> {
        using R = std::invoke_result_t<F>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
        std::future<R> fut = task->get_future();
        submit([task] { (*task)(); });
        return fut;
    }

    /// Hardware concurrency with a floor of 1 (hardware_concurrency() may
    /// legally return 0).
    static unsigned default_jobs();

  private:
    struct WorkerQueue {
        std::mutex m;
        std::deque<std::function<void()>> q;
    };

    bool try_pop_front(std::size_t i, std::function<void()>& out);
    bool try_steal_back(std::size_t thief, std::function<void()>& out);
    void worker_loop(std::size_t i);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    // Idle workers park on one condition variable; `pending_` counts
    // queued-but-not-yet-popped tasks (the exit condition once `joining_`).
    std::mutex idle_m_;
    std::condition_variable idle_cv_;
    std::size_t pending_ = 0;
    bool joining_ = false;

    std::size_t next_queue_ = 0;  // round-robin submission cursor
    std::mutex submit_m_;
};

}  // namespace neo::bench
