// Crypto primitive micro-benchmarks (google-benchmark): the real-time cost
// of the from-scratch implementations backing the simulation's cost model.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "harness/runner.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/sha256.hpp"
#include "crypto/siphash.hpp"

using namespace neo;
using namespace neo::crypto;

namespace {

Bytes payload(std::size_t n) {
    Rng rng(7);
    return rng.bytes(n);
}

void BM_Sha256(benchmark::State& state) {
    Bytes data = payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(sha256(data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
    Bytes key = payload(32);
    Bytes data = payload(128);
    for (auto _ : state) {
        benchmark::DoNotOptimize(hmac_sha256(key, data));
    }
}
BENCHMARK(BM_HmacSha256);

void BM_SipHash24(benchmark::State& state) {
    SipKey key{1, 2};
    Bytes data = payload(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(siphash24(key, data));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_SipHash24)->Arg(52)->Arg(512);

void BM_HalfSipHash(benchmark::State& state) {
    HalfSipKey key{1, 2};
    Bytes data = payload(52);  // aom auth input size
    for (auto _ : state) {
        benchmark::DoNotOptimize(halfsiphash24(key, data));
    }
}
BENCHMARK(BM_HalfSipHash);

void BM_EcdsaSign(benchmark::State& state) {
    Rng rng(9);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(rng.bytes(32));
    Digest32 h = sha256("benchmark message");
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecdsa_sign(priv, h));
        h[0] ^= 1;  // vary the message
    }
}
BENCHMARK(BM_EcdsaSign);

void BM_EcdsaVerify(benchmark::State& state) {
    // Cycles over distinct signatures: verifying one fixed (h, sig) pair
    // repeatedly lets the branch predictor learn the data-dependent wNAF
    // walk and understates the real cost by ~20%.
    Rng rng(9);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(rng.bytes(32));
    EcdsaPublicKey pub = ecdsa_derive_public(priv);
    std::vector<Digest32> hs;
    std::vector<EcdsaSignature> sigs;
    for (int i = 0; i < 16; ++i) {
        hs.push_back(sha256("benchmark message " + std::to_string(i)));
        sigs.push_back(ecdsa_sign(priv, hs.back()));
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecdsa_verify(pub, hs[i], sigs[i]));
        i = (i + 1) % hs.size();
    }
}
BENCHMARK(BM_EcdsaVerify);

void BM_GeneratorMul(benchmark::State& state) {
    Rng rng(11);
    Scalar k = Scalar::from_be_bytes_reduce(rng.bytes(32));
    for (auto _ : state) {
        benchmark::DoNotOptimize(generator_mul(k));
        k = k.add(Scalar::one());
    }
}
BENCHMARK(BM_GeneratorMul);

// Batch verification with shared precomputation; range(0) = batch size.
// Per-item time should drop well below BM_EcdsaVerify as the per-batch
// table build and inversions amortise.
void BM_EcdsaVerifyBatch(benchmark::State& state) {
    Rng rng(13);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(rng.bytes(32));
    EcdsaPublicKey pub = ecdsa_derive_public(priv);
    std::vector<BatchVerifyItem> items;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
        BatchVerifyItem item;
        item.pub = &pub;
        item.digest = sha256("batch item " + std::to_string(i));
        item.sig = ecdsa_sign(priv, item.digest);
        items.push_back(item);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecdsa_verify_batch(items));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EcdsaVerifyBatch)->Arg(4)->Arg(16)->Arg(64);

// Same batch against a caller-cached signer table (the TrustRoot hot path:
// tables are built once at provision time).
void BM_EcdsaVerifyBatchCachedTable(benchmark::State& state) {
    Rng rng(13);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(rng.bytes(32));
    EcdsaPublicKey pub = ecdsa_derive_public(priv);
    QTable table(pub.q);
    std::vector<BatchVerifyItem> items;
    for (std::int64_t i = 0; i < state.range(0); ++i) {
        BatchVerifyItem item;
        item.pub = &pub;
        item.table = &table;
        item.digest = sha256("batch item " + std::to_string(i));
        item.sig = ecdsa_sign(priv, item.digest);
        items.push_back(item);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecdsa_verify_batch(items));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_EcdsaVerifyBatchCachedTable)->Arg(16);

// Four HalfSipHash lanes per call — the sequencer's per-subgroup MAC
// vector (kHmSubgroupSize == 4). Dispatches to the SIMD kernel when the
// host supports it; compare against 4x BM_HalfSipHash for the lane win.
void BM_HalfSipHashX4(benchmark::State& state) {
    HalfSipKey keys[4] = {{1, 2}, {3, 4}, {5, 6}, {7, 8}};
    Bytes data = payload(52);  // aom auth input size
    std::uint32_t out[4];
    for (auto _ : state) {
        halfsiphash24_x4(keys, data, out);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4);
}
BENCHMARK(BM_HalfSipHashX4);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): every bench binary accepts the
// uniform runner flags (--json/--seed/--seeds/--jobs/--quick on top of
// --trace/--metrics), but google-benchmark rejects flags it does not know,
// so consume them before handing argv over. These are wall-clock
// micro-benchmarks with no simulator: seeds and jobs do not apply (the
// measurements are hardware-bound, not model-bound), and --json maps onto
// google-benchmark's own JSON reporter so CI still gets a machine-readable
// artifact at the requested path.
int main(int argc, char** argv) {
    bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
    bench::ObsSession obs(argc, argv);
    (void)obs;

    std::vector<std::string> kept;
    kept.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        bool takes_value = a == "--trace" || a == "--metrics" || a == "--json" || a == "--seed" ||
                           a == "--seeds" || a == "--jobs";
        if (takes_value) {
            ++i;  // skip the flag's value too
            continue;
        }
        if (a == "--quick" || a.rfind("--trace=", 0) == 0 || a.rfind("--metrics=", 0) == 0 ||
            a.rfind("--json=", 0) == 0 || a.rfind("--seed=", 0) == 0 ||
            a.rfind("--seeds=", 0) == 0 || a.rfind("--jobs=", 0) == 0) {
            continue;
        }
        kept.push_back(a);
    }
    if (!opt.json_path.empty()) {
        kept.push_back("--benchmark_out=" + opt.json_path);
        kept.push_back("--benchmark_out_format=json");
    }
    if (opt.quick) {
        // Plain double: the packaged google-benchmark predates the
        // suffixed "0.05s" form and rejects it.
        kept.push_back("--benchmark_min_time=0.05");
    }

    std::vector<char*> args;
    args.reserve(kept.size());
    for (std::string& s : kept) args.push_back(s.data());
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
