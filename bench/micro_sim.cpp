// Simulator hot-path micro-benchmarks (google-benchmark): the real-time
// cost of the event loop, timer machinery and multicast packet path that
// every protocol run sits on. These track the zero-copy/allocation-free
// rework — simulated results are identical by construction (see the
// determinism tests); these measure how fast the host gets them.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "aom/keys.hpp"
#include "aom/sender.hpp"
#include "aom/sequencer.hpp"
#include "common/rng.hpp"
#include "crypto/identity.hpp"
#include "harness/runner.hpp"
#include "sim/network.hpp"
#include "sim/processing_node.hpp"

using namespace neo;
using namespace neo::sim;

namespace {

/// Terminal endpoint: counts deliveries, keeps no bytes.
class CountingSink : public Node {
  public:
    void on_packet(NodeId, const Packet&) override { ++delivered; }
    std::uint64_t delivered = 0;
};

/// ProcessingNode that does nothing per message (isolates queue/drain cost).
class NullHandler : public ProcessingNode {
  public:
    using ProcessingNode::cancel_timer;
    using ProcessingNode::set_timer;

  protected:
    void handle(NodeId, BytesView) override {}
};

// Event-queue throughput: schedule-then-fire cycles through the binary
// heap, with callbacks shaped like the packet-delivery closures (inline
// EventFn storage, no heap allocation per event).
void BM_EventQueueThroughput(benchmark::State& state) {
    const std::size_t events = static_cast<std::size_t>(state.range(0));
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Simulator sim;
        // Interleaved timestamps so sift_up/sift_down do real work.
        for (std::size_t i = 0; i < events; ++i) {
            sim.at(static_cast<Time>((i * 7919) % events), [&fired] { ++fired; });
        }
        sim.run();
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(events));
}
BENCHMARK(BM_EventQueueThroughput)->Arg(1 << 10)->Arg(1 << 16);

// Timer churn: arm/cancel/fire through ProcessingNode's timer queue, the
// pattern retry/gap/batch timers follow. Half the timers are cancelled
// before firing (cancelled timers still traverse the event queue).
void BM_TimerChurn(benchmark::State& state) {
    const int timers = static_cast<int>(state.range(0));
    for (auto _ : state) {
        Simulator sim;
        Network net(sim, /*seed=*/1);
        NullHandler node;
        net.add_node(node, 1);
        std::uint64_t fired = 0;
        for (int i = 0; i < timers; ++i) {
            auto tid = node.set_timer(static_cast<Time>(100 + i), [&fired] { ++fired; },
                                      "bench_timer");
            if (i % 2 == 0) node.cancel_timer(tid);
        }
        sim.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * timers);
}
BENCHMARK(BM_TimerChurn)->Arg(1 << 10)->Arg(1 << 14);

// N-way multicast fan-out: one serialisation shared across N deliveries.
// Items processed counts deliveries, so ns/item is the per-receiver cost —
// flat across N is the zero-copy win.
void BM_MulticastFanout(benchmark::State& state) {
    const int receivers = static_cast<int>(state.range(0));
    Rng rng(3);
    Bytes payload = rng.bytes(512);
    std::uint64_t delivered = 0;
    for (auto _ : state) {
        Simulator sim;
        Network net(sim, /*seed=*/1);
        LinkConfig link;
        link.jitter = 0;
        net.set_default_link(link);
        CountingSink source;
        net.add_node(source, 1);
        std::vector<CountingSink> sinks(static_cast<std::size_t>(receivers));
        for (int i = 0; i < receivers; ++i) {
            net.add_node(sinks[static_cast<std::size_t>(i)], static_cast<NodeId>(100 + i));
        }
        constexpr int kRounds = 64;
        for (int round = 0; round < kRounds; ++round) {
            Packet pkt{Bytes(payload)};  // one buffer per round...
            for (int i = 0; i < receivers; ++i) {
                net.send(1, static_cast<NodeId>(100 + i), pkt);  // ...shared N ways
            }
            sim.run();
        }
        for (const auto& s : sinks) delivered += s.delivered;
    }
    benchmark::DoNotOptimize(delivered);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64 * receivers);
}
BENCHMARK(BM_MulticastFanout)->Arg(4)->Arg(16)->Arg(64);

// Multi-group sequencing: one switch serving N groups, requests arriving
// round-robin across them. The per-packet group lookup is a dense array
// indexed by GroupId (bounds check + pointer load); ns/item staying flat
// from 1 to 16 groups is that table's win over hashed lookup. Items
// processed counts sequenced packets, so ns/item is the full per-packet
// sequencing cost (parse, lookup, MAC vector, 4-receiver fan-out).
void BM_MultiGroupSequence(benchmark::State& state) {
    const int n_groups = static_cast<int>(state.range(0));
    constexpr int kReceiversPerGroup = 4;
    constexpr int kRounds = 64;
    crypto::TrustRoot root(crypto::CryptoMode::kModeled, /*seed=*/7);
    aom::AomKeyService keys(/*seed=*/9);
    Rng rng(5);
    Bytes payload = rng.bytes(128);
    std::uint64_t sequenced = 0;
    for (auto _ : state) {
        Simulator sim;
        Network net(sim, /*seed=*/1);
        aom::SequencerSwitch sw(aom::SequencerConfig{}, root.provision(500), &keys);
        net.add_node(sw, 500);
        std::vector<CountingSink> sinks(
            static_cast<std::size_t>(n_groups * kReceiversPerGroup));
        std::vector<Bytes> requests;  // one pre-serialised request per group
        auto sender_crypto = root.provision(999);
        for (int g = 0; g < n_groups; ++g) {
            aom::GroupConfig gc;
            gc.group = static_cast<GroupId>(g);
            gc.variant = aom::AuthVariant::kHmacVector;
            gc.f = 1;
            for (int r = 0; r < kReceiversPerGroup; ++r) {
                NodeId rid = static_cast<NodeId>(100 + g * kReceiversPerGroup + r);
                net.add_node(sinks[static_cast<std::size_t>(g * kReceiversPerGroup + r)], rid);
                gc.receivers.push_back(rid);
            }
            sw.install_group(gc, /*epoch=*/1);
            aom::DataPacket pkt;
            pkt.group = gc.group;
            pkt.digest = sender_crypto->hash(payload);
            pkt.payload = payload;
            requests.push_back(pkt.serialize());
        }
        // Spaced beyond the pipeline service time so nothing tail-drops:
        // the measurement is the sequencing path, not queue policy.
        for (int i = 0; i < kRounds * n_groups; ++i) {
            sim.at(static_cast<Time>(i) * 2 * kMicrosecond, [&net, &requests, i, n_groups] {
                net.send(999, 500, Packet{Bytes(requests[static_cast<std::size_t>(i % n_groups)])});
            });
        }
        sim.run();
        sequenced += sw.packets_sequenced();
    }
    benchmark::DoNotOptimize(sequenced);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRounds * n_groups);
}
BENCHMARK(BM_MultiGroupSequence)->Arg(1)->Arg(4)->Arg(16);

// --------------------------------------------------------------------- PDES
// Parallel-engine micro-benchmarks. These isolate the three costs the
// conservative engine adds on top of the serial drain: the window barrier,
// the cross-partition mailboxes, and the window-size sensitivity to
// lookahead. All of them run the real engine (workers, epochs, parities).

// Window-barrier overhead vs partition count: one self-reposting event per
// partition, spaced exactly one lookahead apart, so every window executes
// one event per partition and the measurement is dominated by the
// dispatch/park cycle. ns/item is the per-window barrier cost.
void BM_WindowBarrier(benchmark::State& state) {
    const unsigned partitions = static_cast<unsigned>(state.range(0));
    constexpr Time kLookahead = 1'000;
    constexpr int kWindows = 512;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Simulator sim(partitions);
        sim.set_lookahead(kLookahead);
        for (unsigned n = 0; n < partitions; ++n) {
            auto self = std::make_shared<std::function<void()>>();
            NodeId id = static_cast<NodeId>(n);
            *self = [&sim, &fired, self, id] {
                ++fired;
                sim.at_node(sim.now() + kLookahead, id, [self] { (*self)(); });
            };
            sim.at_node(0, id, [self] { (*self)(); });
        }
        sim.run_until(kWindows * kLookahead);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kWindows);
}
BENCHMARK(BM_WindowBarrier)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Mailbox throughput: partition 0 pushes a batch of cross-partition events
// to partition 1 every window (double-buffered outbox write, merge on the
// consumer side). ns/item is the per-event mailbox cost.
void BM_MailboxThroughput(benchmark::State& state) {
    const std::size_t batch = static_cast<std::size_t>(state.range(0));
    constexpr Time kLookahead = 1'000;
    constexpr int kWindows = 128;
    std::uint64_t received = 0;
    for (auto _ : state) {
        Simulator sim(2);
        sim.set_lookahead(kLookahead);
        auto pump = std::make_shared<std::function<void()>>();
        *pump = [&sim, &received, pump, batch] {
            for (std::size_t i = 0; i < batch; ++i) {
                sim.at_node(sim.now() + kLookahead, 1, [&received] { ++received; });
            }
            sim.at_node(sim.now() + kLookahead, 0, [pump] { (*pump)(); });
        };
        sim.at_node(0, 0, [pump] { (*pump)(); });
        sim.run_until(kWindows * kLookahead);
    }
    benchmark::DoNotOptimize(received);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kWindows *
                            static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_MailboxThroughput)->Arg(1)->Arg(16)->Arg(256);

// Lookahead sensitivity: a fixed workload (4 partitions, events every
// 1000ns) under a shrinking lookahead. Work per run is constant; only the
// number of windows the engine must cut changes (1000/L windows per event
// period), so the slowdown from Arg(1000) to Arg(125) is pure conservative-
// synchronisation cost — the simulated results never change.
void BM_LookaheadSensitivity(benchmark::State& state) {
    const Time lookahead = static_cast<Time>(state.range(0));
    constexpr Time kPeriod = 1'000;  // event spacing, fixed across args
    constexpr int kRounds = 256;
    constexpr unsigned kParts = 4;
    std::uint64_t fired = 0;
    for (auto _ : state) {
        Simulator sim(kParts);
        sim.set_lookahead(lookahead);
        for (unsigned n = 0; n < kParts; ++n) {
            auto self = std::make_shared<std::function<void()>>();
            NodeId id = static_cast<NodeId>(n);
            *self = [&sim, &fired, self, id] {
                ++fired;
                sim.at_node(sim.now() + kPeriod, id, [self] { (*self)(); });
            };
            sim.at_node(0, id, [self] { (*self)(); });
        }
        sim.run_until(kRounds * kPeriod);
    }
    benchmark::DoNotOptimize(fired);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kRounds * kParts);
}
BENCHMARK(BM_LookaheadSensitivity)->Arg(1000)->Arg(500)->Arg(250)->Arg(125);

}  // namespace

// Custom main mirroring micro_crypto: accept the uniform runner flags
// (--json/--seed/--seeds/--jobs/--quick/--trace/--metrics) but hand only
// google-benchmark's own flags through, mapping --json onto its JSON
// reporter and --quick onto a short min-time.
int main(int argc, char** argv) {
    bench::BenchOptions opt = bench::BenchOptions::parse(argc, argv);
    bench::ObsSession obs(argc, argv);
    (void)obs;

    std::vector<std::string> kept;
    kept.push_back(argv[0]);
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        bool takes_value = a == "--trace" || a == "--metrics" || a == "--json" || a == "--seed" ||
                           a == "--seeds" || a == "--jobs" || a == "--sim-threads";
        if (takes_value) {
            ++i;
            continue;
        }
        if (a == "--quick" || a.rfind("--trace=", 0) == 0 || a.rfind("--metrics=", 0) == 0 ||
            a.rfind("--json=", 0) == 0 || a.rfind("--seed=", 0) == 0 ||
            a.rfind("--seeds=", 0) == 0 || a.rfind("--jobs=", 0) == 0 ||
            a.rfind("--sim-threads=", 0) == 0) {
            continue;
        }
        kept.push_back(a);
    }
    if (!opt.json_path.empty()) {
        kept.push_back("--benchmark_out=" + opt.json_path);
        kept.push_back("--benchmark_out_format=json");
    }
    if (opt.quick) {
        kept.push_back("--benchmark_min_time=0.05");
    }

    std::vector<char*> args;
    args.reserve(kept.size());
    for (std::string& s : kept) args.push_back(s.data());
    int filtered_argc = static_cast<int>(args.size());
    benchmark::Initialize(&filtered_argc, args.data());
    if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
