// Table 1: bottleneck message complexity and authenticator complexity,
// measured empirically per committed request while sweeping N, plus the
// analytic columns from the paper.
#include <cstdio>

#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

struct Counts {
    double bottleneck_msgs_per_req;  // messages at the busiest replica
    double authenticators_per_req;   // signs+verifies+MACs across replicas
};

Counts measure(Deployment& d, sim::Time warmup, sim::Time measure_t) {
    std::vector<NodeId> reps = d.replica_ids();
    // One continuous run; counters reset exactly when the window opens.
    Measured m = run_closed_loop(d, echo_ops(64), warmup, measure_t, [&d, &reps] {
        d.network().reset_counters();
        for (NodeId r : reps) {
            if (auto* meter = d.replica_meter(r)) meter->reset_counters();
        }
    });

    std::uint64_t max_msgs = 0;
    std::uint64_t auth_total = 0;
    for (NodeId r : reps) {
        max_msgs = std::max(max_msgs, d.network().delivered_to(r));
        if (auto* meter = d.replica_meter(r)) {
            auth_total += meter->signs + meter->verifies + meter->macs;
        }
    }
    Counts c;
    double reqs = std::max<double>(1, static_cast<double>(m.completed));
    c.bottleneck_msgs_per_req = static_cast<double>(max_msgs) / reqs;
    c.authenticators_per_req = static_cast<double>(auth_total) / reqs;
    return c;
}

}  // namespace

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Table 1: complexity comparison (measured per committed request) ===\n");
    std::printf("analytic columns (paper):\n");
    std::printf("  protocol   repl.factor  bottleneck  authenticators  delays\n");
    std::printf("  PBFT       3f+1         O(N)        O(N^2)          5\n");
    std::printf("  Zyzzyva    3f+1         O(N)        O(N)            3\n");
    std::printf("  SBFT       3f+1         O(N)        O(N)            6   (not measured)\n");
    std::printf("  HotStuff   3f+1         O(N)        O(N)            4\n");
    std::printf("  A2M-PBFT   2f+1         O(N)        O(N^2)          5   (not measured)\n");
    std::printf("  MinBFT     2f+1         O(N)        O(N^2)          4\n");
    std::printf("  NeoBFT     3f+1         O(1)        O(N)            2\n\n");

    constexpr sim::Time kWarm = 20 * sim::kMillisecond;
    constexpr sim::Time kMeasure = 100 * sim::kMillisecond;
    const int kClients = 16;

    for (int n : {4, 7, 10}) {
        std::printf("--- N = %d (f = %d) ---\n", n, (n - 1) / 3);
        TablePrinter table({"protocol", "bottleneck_msgs/req", "authenticators/req"});

        {
            NeoParams p;
            p.n_replicas = n;
            p.n_clients = kClients;
            auto d = make_neobft(p);
            obs.begin_run(*d, "n" + std::to_string(n) + ".neobft_hm", true);
            Counts c = measure(*d, kWarm, kMeasure);
            obs.end_run();
            table.row({"NeoBFT-HM", fmt_double(c.bottleneck_msgs_per_req, 2),
                       fmt_double(c.authenticators_per_req, 2)});
        }
        {
            NeoParams p;
            p.n_replicas = n;
            p.n_clients = kClients;
            p.variant = NeoVariant::kPk;
            auto d = make_neobft(p);
            obs.begin_run(*d, "n" + std::to_string(n) + ".neobft_pk", false);
            Counts c = measure(*d, kWarm, kMeasure);
            obs.end_run();
            // The O(1) bottleneck claim is group-size agnostic for aom-pk;
            // aom-hm replicas receive ceil(N/4) subgroup packets (§6.3).
            table.row({"NeoBFT-PK", fmt_double(c.bottleneck_msgs_per_req, 2),
                       fmt_double(c.authenticators_per_req, 2)});
        }
        {
            CommonParams p;
            p.n_replicas = n;
            p.n_clients = kClients;
            auto d = make_pbft(p);
            obs.begin_run(*d, "n" + std::to_string(n) + ".pbft", false);
            Counts c = measure(*d, kWarm, kMeasure);
            obs.end_run();
            table.row({"PBFT", fmt_double(c.bottleneck_msgs_per_req, 2),
                       fmt_double(c.authenticators_per_req, 2)});
        }
        {
            ZyzzyvaParams p;
            p.n_replicas = n;
            p.n_clients = kClients;
            auto d = make_zyzzyva(p);
            obs.begin_run(*d, "n" + std::to_string(n) + ".zyzzyva", false);
            Counts c = measure(*d, kWarm, kMeasure);
            obs.end_run();
            table.row({"Zyzzyva", fmt_double(c.bottleneck_msgs_per_req, 2),
                       fmt_double(c.authenticators_per_req, 2)});
        }
        {
            CommonParams p;
            p.n_replicas = n;
            p.n_clients = kClients;
            auto d = make_hotstuff(p);
            obs.begin_run(*d, "n" + std::to_string(n) + ".hotstuff", false);
            Counts c = measure(*d, kWarm, kMeasure);
            obs.end_run();
            table.row({"HotStuff", fmt_double(c.bottleneck_msgs_per_req, 2),
                       fmt_double(c.authenticators_per_req, 2)});
        }
        {
            CommonParams p;
            p.n_replicas = n;
            p.n_clients = kClients;
            auto d = make_minbft(p);
            obs.begin_run(*d, "n" + std::to_string(n) + ".minbft", false);
            Counts c = measure(*d, kWarm, kMeasure);
            obs.end_run();
            table.row({"MinBFT", fmt_double(c.bottleneck_msgs_per_req, 2),
                       fmt_double(c.authenticators_per_req, 2)});
        }
        std::printf("\n");
    }

    // Message-delay column: idle-system commit latency. Absolute values
    // include constant crypto latencies; the paper's delay counts predict
    // the ORDERING (NeoBFT 2 < Zyzzyva 3 < MinBFT/HotStuff 4 < PBFT 5, with
    // per-protocol crypto shifting the constants).
    std::printf("--- message delays (idle-system commit latency, N=4) ---\n");
    TablePrinter table({"protocol", "paper_delays", "latency_us"});
    auto one_shot = [&](const std::string& name, const std::string& delays,
                        std::unique_ptr<Deployment> d) {
        Measured m = run_closed_loop(*d, echo_ops(64), 0, 20 * sim::kMillisecond);
        table.row({name, delays, fmt_double(m.p50_us, 1)});
    };
    {
        NeoParams p;
        p.n_clients = 1;
        one_shot("NeoBFT-HM", "2", make_neobft(p));
    }
    {
        ZyzzyvaParams p;
        p.n_clients = 1;
        p.batch_delay = 10 * sim::kMicrosecond;
        one_shot("Zyzzyva", "3", make_zyzzyva(p));
    }
    {
        CommonParams p;
        p.n_clients = 1;
        p.batch_delay = 10 * sim::kMicrosecond;
        one_shot("PBFT", "5", make_pbft(p));
    }
    {
        CommonParams p;
        p.n_clients = 1;
        p.batch_delay = 10 * sim::kMicrosecond;
        one_shot("MinBFT", "4", make_minbft(p));
    }
    {
        CommonParams p;
        p.n_clients = 1;
        p.batch_delay = 10 * sim::kMicrosecond;
        one_shot("HotStuff", "4", make_hotstuff(p));
    }
    return 0;
}
