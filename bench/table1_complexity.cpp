// Table 1: bottleneck message complexity and authenticator complexity,
// measured empirically per committed request while sweeping N, plus the
// analytic columns from the paper.
#include <cstdio>
#include <memory>

#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

namespace {

// Counters are measured once the warmup window closes, so the per-request
// figures reflect steady state only.
std::map<std::string, double> measure(Deployment& d, sim::Time warmup, sim::Time measure_t) {
    std::vector<NodeId> reps = d.replica_ids();
    Measured m = run_closed_loop(d, echo_ops(64), warmup, measure_t, [&d, &reps] {
        d.network().reset_counters();
        for (NodeId r : reps) {
            if (auto* meter = d.replica_meter(r)) meter->reset_counters();
        }
    });

    std::uint64_t max_msgs = 0;
    std::uint64_t auth_total = 0;
    for (NodeId r : reps) {
        max_msgs = std::max(max_msgs, d.network().delivered_to(r));
        if (auto* meter = d.replica_meter(r)) {
            auth_total += meter->signs + meter->verifies + meter->macs;
        }
    }
    double reqs = std::max<double>(1, static_cast<double>(m.completed));
    return {
        {"bottleneck_msgs_per_req", static_cast<double>(max_msgs) / reqs},
        {"authenticators_per_req", static_cast<double>(auth_total) / reqs},
    };
}

struct Protocol {
    std::string name;   // table row
    std::string label;  // point-name component
    std::function<std::unique_ptr<Deployment>(int n, const RunCtx& ctx)> make;
    bool trace_candidate = false;
};

std::vector<Protocol> protocols() {
    constexpr int kClients = 16;
    return {
        {"NeoBFT-HM", "neobft_hm",
         [](int n, const RunCtx& ctx) {
             NeoParams p;
             p.n_replicas = n;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             return make_neobft(p);
         },
         true},
        {"NeoBFT-PK", "neobft_pk",
         [](int n, const RunCtx& ctx) {
             NeoParams p;
             p.n_replicas = n;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.variant = NeoVariant::kPk;
             // The O(1) bottleneck claim is group-size agnostic for aom-pk;
             // aom-hm replicas receive ceil(N/4) subgroup packets (§6.3).
             return make_neobft(p);
         }},
        {"PBFT", "pbft",
         [](int n, const RunCtx& ctx) {
             CommonParams p;
             p.n_replicas = n;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             return make_pbft(p);
         }},
        {"Zyzzyva", "zyzzyva",
         [](int n, const RunCtx& ctx) {
             ZyzzyvaParams p;
             p.n_replicas = n;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             return make_zyzzyva(p);
         }},
        {"HotStuff", "hotstuff",
         [](int n, const RunCtx& ctx) {
             CommonParams p;
             p.n_replicas = n;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             return make_hotstuff(p);
         }},
        {"MinBFT", "minbft",
         [](int n, const RunCtx& ctx) {
             CommonParams p;
             p.n_replicas = n;
             p.n_clients = kClients;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             return make_minbft(p);
         }},
    };
}

struct DelayRow {
    std::string name;
    std::string label;
    std::string paper_delays;
    std::function<std::unique_ptr<Deployment>(const RunCtx& ctx)> make;
};

std::vector<DelayRow> delay_rows() {
    return {
        {"NeoBFT-HM", "neobft_hm", "2",
         [](const RunCtx& ctx) {
             NeoParams p;
             p.n_clients = 1;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             return make_neobft(p);
         }},
        {"Zyzzyva", "zyzzyva", "3",
         [](const RunCtx& ctx) {
             ZyzzyvaParams p;
             p.n_clients = 1;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_delay = 10 * sim::kMicrosecond;
             return make_zyzzyva(p);
         }},
        {"PBFT", "pbft", "5",
         [](const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = 1;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_delay = 10 * sim::kMicrosecond;
             return make_pbft(p);
         }},
        {"MinBFT", "minbft", "4",
         [](const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = 1;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_delay = 10 * sim::kMicrosecond;
             return make_minbft(p);
         }},
        {"HotStuff", "hotstuff", "4",
         [](const RunCtx& ctx) {
             CommonParams p;
             p.n_clients = 1;
             p.seed = ctx.seed();
             p.sim_threads = ctx.sim_threads();
             p.batch_delay = 10 * sim::kMicrosecond;
             return make_hotstuff(p);
         }},
    };
}

}  // namespace

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "table1_complexity");
    std::printf("=== Table 1: complexity comparison (measured per committed request) ===\n");
    std::printf("analytic columns (paper):\n");
    std::printf("  protocol   repl.factor  bottleneck  authenticators  delays\n");
    std::printf("  PBFT       3f+1         O(N)        O(N^2)          5\n");
    std::printf("  Zyzzyva    3f+1         O(N)        O(N)            3\n");
    std::printf("  SBFT       3f+1         O(N)        O(N)            6   (not measured)\n");
    std::printf("  HotStuff   3f+1         O(N)        O(N)            4\n");
    std::printf("  A2M-PBFT   2f+1         O(N)        O(N^2)          5   (not measured)\n");
    std::printf("  MinBFT     2f+1         O(N)        O(N^2)          4\n");
    std::printf("  NeoBFT     3f+1         O(1)        O(N)            2\n\n");

    const sim::Time warm = bm.quick() ? 5 * sim::kMillisecond : 20 * sim::kMillisecond;
    const sim::Time meas = bm.quick() ? 30 * sim::kMillisecond : 100 * sim::kMillisecond;
    const std::vector<int> group_sizes = bm.quick() ? std::vector<int>{4} : std::vector<int>{4, 7, 10};

    const std::vector<Protocol> protos = protocols();
    std::vector<BenchPointSpec> points;
    for (int n : group_sizes) {
        for (const Protocol& proto : protos) {
            points.push_back({
                "n" + std::to_string(n) + "." + proto.label,
                {{"replicas", static_cast<double>(n)}},
                [&proto, n, warm, meas](RunCtx& ctx) {
                    auto d = proto.make(n, ctx);
                    auto obs = ctx.attach(*d);
                    return measure(*d, warm, meas);
                },
                proto.trace_candidate && n == 4,
            });
        }
    }

    // Message-delay column: idle-system commit latency. Absolute values
    // include constant crypto latencies; the paper's delay counts predict
    // the ORDERING (NeoBFT 2 < Zyzzyva 3 < MinBFT/HotStuff 4 < PBFT 5, with
    // per-protocol crypto shifting the constants).
    const std::vector<DelayRow> delays = delay_rows();
    const sim::Time delay_meas = bm.quick() ? 5 * sim::kMillisecond : 20 * sim::kMillisecond;
    for (const DelayRow& row : delays) {
        points.push_back({
            "delay." + row.label,
            {},
            [&row, delay_meas](RunCtx& ctx) {
                auto d = row.make(ctx);
                auto obs = ctx.attach(*d);
                Measured m = run_closed_loop(*d, echo_ops(64), 0, delay_meas);
                return std::map<std::string, double>{{"latency_us", m.p50_us}};
            },
            false,
        });
    }

    std::vector<PointResult> results = bm.run(points);

    std::size_t i = 0;
    for (int n : group_sizes) {
        std::printf("--- N = %d (f = %d) ---\n", n, (n - 1) / 3);
        TablePrinter table({"protocol", "bottleneck_msgs/req", "authenticators/req"});
        for (const Protocol& proto : protos) {
            const PointResult& r = results[i++];
            table.row({proto.name, fmt_double(r.mean("bottleneck_msgs_per_req"), 2),
                       fmt_double(r.mean("authenticators_per_req"), 2)});
        }
        std::printf("\n");
    }

    std::printf("--- message delays (idle-system commit latency, N=4) ---\n");
    TablePrinter table({"protocol", "paper_delays", "latency_us"});
    for (const DelayRow& row : delays) {
        const PointResult& r = results[i++];
        table.row({row.name, row.paper_delays, fmt_double(r.mean("latency_us"), 1)});
    }
    return 0;
}
