// Table 2: switch resource usage of the aom HMAC-vector design.
//
// The paper reports Tofino ASIC resources (stages, action data, hash bits,
// hash units, VLIW slots) for its P4 prototype. Those are hardware synthesis
// figures with no software equivalent, so — per the substitution policy in
// DESIGN.md §1 — this bench reports the cost-model quantities our emulated
// data plane derives from the same design: pipeline passes, parallel
// HalfSipHash instances, loopback lanes, and the resulting per-packet
// service time per group size. The cost model is arithmetic (no simulation),
// so every point is seed-independent; the suite still emits the standard
// JSON so CI can pin the derived costs.
#include <cstdio>

#include "aom/types.hpp"
#include "harness/runner.hpp"
#include "sim/costs.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "table2_switch_resources");
    std::printf("=== Table 2: aom-hm switch data-plane model ===\n\n");
    std::printf("paper (Tofino synthesis):\n");
    std::printf("  module  stages  action_data  hash_bit  hash_unit  VLIW\n");
    std::printf("  pipe 0  7       0.8%%         2.0%%      0%%         3.4%%\n");
    std::printf("  pipe 1  12      12.8%%        21.2%%     77.8%%      12.0%%\n\n");

    std::printf("emulated data-plane constants (this reproduction):\n");
    TablePrinter consts({"parameter", "value"});
    consts.row({"HMAC pipeline passes / vector", std::to_string(sim::kHmacPassesPerVector)});
    consts.row({"parallel HalfSipHash instances", std::to_string(sim::kHmacParallelInstances)});
    consts.row({"loopback ports (subgroup lanes)", std::to_string(sim::kHmacLoopbackPorts)});
    consts.row({"max HM receivers", std::to_string(aom::kHmMaxReceivers)});
    consts.row({"base forwarding latency", std::to_string(sim::kSwitchForwardNs) + " ns"});

    const std::vector<int> receiver_counts =
        bm.quick() ? std::vector<int>{4, 64} : std::vector<int>{4, 8, 16, 32, 48, 64};
    std::vector<BenchPointSpec> points;
    for (int r : receiver_counts) {
        points.push_back({
            "aom_hm.r" + std::to_string(r),
            {{"receivers", static_cast<double>(r)}},
            [r](RunCtx&) {
                int subgroups = aom::hm_subgroup_count(r);
                sim::Time service = sim::hm_service_ns(r);
                return std::map<std::string, double>{
                    {"subgroups", static_cast<double>(subgroups)},
                    {"service_ns_per_pkt", static_cast<double>(service)},
                    {"max_mpps", 1000.0 / static_cast<double>(service)},
                };
            },
            false,  // no simulation: nothing to trace
        });
    }
    std::vector<PointResult> results = bm.run(points);

    std::printf("\nper-group-size derived costs:\n");
    TablePrinter table({"receivers", "subgroups", "service_ns/pkt", "max_Mpps", "pkts/receiver"});
    for (std::size_t i = 0; i < receiver_counts.size(); ++i) {
        const PointResult& r = results[i];
        table.row({std::to_string(receiver_counts[i]), fmt_double(r.mean("subgroups"), 0),
                   fmt_double(r.mean("service_ns_per_pkt"), 0), fmt_double(r.mean("max_mpps"), 2),
                   fmt_double(r.mean("subgroups"), 0)});
    }
    std::printf("\n(hardware utilisation percentages are not reproducible in software;\n");
    std::printf(" see DESIGN.md §1 for the substitution rationale)\n");
    return 0;
}
