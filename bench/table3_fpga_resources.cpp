// Table 3: FPGA resource usage of the aom public-key coprocessor.
//
// The paper reports Alveo U50 LUT/register/BRAM/DSP utilisation. As with
// Table 2, synthesis figures have no software equivalent; this bench reports
// the coprocessor model's operational parameters and measures the
// signing-ratio controller's behaviour across offered loads (the dynamic
// quantity the hardware design exists to manage).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/runner.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    BenchMain bm(argc, argv, "table3_fpga_resources");
    std::printf("=== Table 3: aom-pk FPGA coprocessor model ===\n\n");
    std::printf("paper (Alveo U50 synthesis):\n");
    std::printf("  module    LUT     register  BRAM    DSP\n");
    std::printf("  pipeline  0.91%%   0.70%%     2.12%%   0.57%%\n");
    std::printf("  signer    21.0%%   19.4%%     10.71%%  28.52%%\n");
    std::printf("  total     34.69%%  29.22%%    28.76%%  29.16%%\n\n");

    sim::PkPrecomputeConfig pre;
    std::printf("coprocessor model constants (this reproduction):\n");
    TablePrinter consts({"parameter", "value"});
    consts.row({"signer service time", std::to_string(sim::kPkSignServiceNs) + " ns (1.1 Mpps)"});
    consts.row({"sign round-trip latency", std::to_string(sim::kPkSignLatencyNs) + " ns"});
    consts.row({"chain stamping service", std::to_string(sim::kPkChainServiceNs) + " ns"});
    consts.row({"precompute table capacity", std::to_string(pre.table_capacity)});
    consts.row({"low-water mark", std::to_string(pre.low_water_mark)});
    consts.row({"precompute refill rate", fmt_double(pre.refill_per_sec, 0) + " entries/s"});

    const std::vector<double> offered = bm.quick()
                                            ? std::vector<double>{0.5, 1.5}
                                            : std::vector<double>{0.25, 0.5, 1.0, 1.5, 2.5};
    const std::size_t packets = bm.quick() ? 20'000 : 200'000;
    std::vector<BenchPointSpec> points;
    for (double mpps : offered) {
        points.push_back({
            "aom_pk.offered" + fmt_double(mpps, 2),
            {{"offered_mpps", mpps}},
            [mpps, packets](RunCtx& ctx) {
                aom::SequencerConfig cfg;
                cfg.precompute.table_capacity = 2'048;
                cfg.precompute.low_water_mark = 256;
                cfg.precompute.refill_per_sec = 1'000'000.0;
                auto bench = std::make_unique<AomBench>(aom::AuthVariant::kPublicKey, 4,
                                                        ctx.seed(), cfg);
                std::string label = ctx.label();
                auto obs = ctx.attach(bench->simulator(),
                                      [&bench, label](obs::Registry& reg, obs::TraceSink* tr) {
                                          bench->register_obs(reg, label, tr);
                                      });
                auto gap = static_cast<sim::Time>(1000.0 / mpps);
                bench->run(packets, std::max<sim::Time>(1, gap));
                double signed_pct =
                    100.0 * static_cast<double>(bench->sequencer().signatures_generated()) /
                    static_cast<double>(bench->sequencer().packets_sequenced());
                return std::map<std::string, double>{
                    {"signed_pct", signed_pct},
                    {"stock_left", bench->sequencer().precompute_stock()},
                    {"tail_drops", static_cast<double>(bench->sequencer().tail_drops())},
                };
            },
        });
    }
    std::vector<PointResult> results = bm.run(points);

    std::printf("\nsigning-ratio controller behaviour vs offered load:\n");
    TablePrinter table({"offered_Mpps", "signed_pct", "stock_left", "tail_drops"});
    for (std::size_t i = 0; i < offered.size(); ++i) {
        const PointResult& r = results[i];
        table.row({fmt_double(offered[i], 2), fmt_double(r.mean("signed_pct"), 1),
                   fmt_double(r.mean("stock_left"), 0), fmt_double(r.mean("tail_drops"), 0)});
    }
    std::printf("\n(above the precompute refill rate the controller rides the hash chain;\n");
    std::printf(" hardware utilisation percentages are not reproducible in software)\n");
    return 0;
}
