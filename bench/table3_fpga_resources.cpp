// Table 3: FPGA resource usage of the aom public-key coprocessor.
//
// The paper reports Alveo U50 LUT/register/BRAM/DSP utilisation. As with
// Table 2, synthesis figures have no software equivalent; this bench reports
// the coprocessor model's operational parameters and measures the
// signing-ratio controller's behaviour across offered loads (the dynamic
// quantity the hardware design exists to manage).
#include <cstdio>

#include "harness/aom_bench.hpp"
#include "harness/harness.hpp"

using namespace neo;
using namespace neo::bench;

int main(int argc, char** argv) {
    ObsSession obs(argc, argv);
    std::printf("=== Table 3: aom-pk FPGA coprocessor model ===\n\n");
    std::printf("paper (Alveo U50 synthesis):\n");
    std::printf("  module    LUT     register  BRAM    DSP\n");
    std::printf("  pipeline  0.91%%   0.70%%     2.12%%   0.57%%\n");
    std::printf("  signer    21.0%%   19.4%%     10.71%%  28.52%%\n");
    std::printf("  total     34.69%%  29.22%%    28.76%%  29.16%%\n\n");

    sim::PkPrecomputeConfig pre;
    std::printf("coprocessor model constants (this reproduction):\n");
    TablePrinter consts({"parameter", "value"});
    consts.row({"signer service time", std::to_string(sim::kPkSignServiceNs) + " ns (1.1 Mpps)"});
    consts.row({"sign round-trip latency", std::to_string(sim::kPkSignLatencyNs) + " ns"});
    consts.row({"chain stamping service", std::to_string(sim::kPkChainServiceNs) + " ns"});
    consts.row({"precompute table capacity", std::to_string(pre.table_capacity)});
    consts.row({"low-water mark", std::to_string(pre.low_water_mark)});
    consts.row({"precompute refill rate", fmt_double(pre.refill_per_sec, 0) + " entries/s"});

    std::printf("\nsigning-ratio controller behaviour vs offered load:\n");
    TablePrinter table({"offered_Mpps", "signed_pct", "stock_left", "tail_drops"});
    for (double mpps : {0.25, 0.5, 1.0, 1.5, 2.5}) {
        aom::SequencerConfig cfg;
        cfg.precompute.table_capacity = 2'048;
        cfg.precompute.low_water_mark = 256;
        cfg.precompute.refill_per_sec = 1'000'000.0;
        AomBench bench(aom::AuthVariant::kPublicKey, 4, 17, cfg);
        auto gap = static_cast<sim::Time>(1000.0 / mpps);
        std::string label = "aom_pk.offered" + fmt_double(mpps, 2);
        obs.begin_run(bench.simulator(), label, true,
                      [&bench, &label](obs::Registry& reg, obs::TraceSink* tr) {
                          bench.register_obs(reg, label, tr);
                      });
        bench.run(200'000, std::max<sim::Time>(1, gap));
        obs.end_run();
        double signed_pct = 100.0 *
                            static_cast<double>(bench.sequencer().signatures_generated()) /
                            static_cast<double>(bench.sequencer().packets_sequenced());
        table.row({fmt_double(mpps, 2), fmt_double(signed_pct, 1),
                   fmt_double(bench.sequencer().precompute_stock(), 0),
                   std::to_string(bench.sequencer().tail_drops())});
    }
    std::printf("\n(above the precompute refill rate the controller rides the hash chain;\n");
    std::printf(" hardware utilisation percentages are not reproducible in software)\n");
    return 0;
}
