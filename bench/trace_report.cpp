// Offline critical-path analysis and schema lint for exported traces.
//
// Reads a trace written by --trace (JSONL when the path ends in ".jsonl",
// Chrome trace_event JSON otherwise), rebuilds the request-scoped span
// records and prints the same per-phase p50/p99 attribution table fig7
// computes in-process (obs::format_report) — the phase durations telescope,
// so their sum matches the end-to-end commit latency exactly.
//
//   trace_report <trace.json|trace.jsonl>          attribution report
//   trace_report <trace.json|trace.jsonl> --lint   schema validation only
//
// Lint checks (CI's trace-lint step): the document parses, every event
// carries the required fields with a known event kind, span events have a
// nonzero trace id, and no span closes without a matching open. Spans
// still open at the end of the capture are normal (requests in flight at
// the run deadline) and only reported as a count. Exit status: 0 clean,
// 1 findings, 2 usage/IO errors.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "harness/bench_json.hpp"
#include "obs/critical_path.hpp"
#include "obs/trace.hpp"

namespace {

using neo::bench::Json;
using neo::bench::JsonError;

struct Parsed {
    std::vector<neo::obs::SpanRecord> spans;
    std::size_t events = 0;
    std::size_t open_spans = 0;  // begins never closed (in flight at capture end)
    std::vector<std::string> errors;
};

constexpr std::size_t kMaxErrors = 20;

void add_error(Parsed& p, std::string msg) {
    if (p.errors.size() < kMaxErrors) p.errors.push_back(std::move(msg));
}

bool known_kind(const std::string& name) {
    using neo::obs::EventKind;
    for (unsigned k = 0; k < static_cast<unsigned>(EventKind::kCount_); ++k) {
        if (name == neo::obs::event_kind_name(static_cast<EventKind>(k))) return true;
    }
    return false;
}

/// Order-aware begin/end pairing per (node, span name, trace id): an end
/// with no open begin is a schema error; leftover begins are counted.
class SpanBalance {
  public:
    bool on_begin(const neo::obs::SpanRecord& s) {
        ++open_[key(s)];
        return true;
    }
    bool on_end(const neo::obs::SpanRecord& s) {
        auto it = open_.find(key(s));
        if (it == open_.end() || it->second == 0) return false;
        --it->second;
        return true;
    }
    std::size_t still_open() const {
        std::size_t n = 0;
        for (const auto& [k, v] : open_) n += static_cast<std::size_t>(v);
        return n;
    }

  private:
    using Key = std::tuple<neo::NodeId, std::string, std::uint64_t>;
    static Key key(const neo::obs::SpanRecord& s) { return {s.node, s.name, s.tid}; }
    std::map<Key, long> open_;
};

void take_span(Parsed& p, SpanBalance& bal, neo::obs::SpanRecord s, const std::string& where) {
    if (s.tid == 0) {
        add_error(p, where + ": span event with zero trace_id");
        return;
    }
    if (s.begin) {
        bal.on_begin(s);
    } else if (!bal.on_end(s)) {
        add_error(p, where + ": span_end \"" + s.name + "\" without a matching begin");
        return;
    }
    p.spans.push_back(std::move(s));
}

Parsed parse_jsonl(std::istream& in) {
    Parsed p;
    SpanBalance bal;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty()) continue;
        std::string where = "line " + std::to_string(lineno);
        Json e;
        try {
            e = Json::parse(line);
        } catch (const JsonError& err) {
            add_error(p, where + ": " + err.what());
            continue;
        }
        ++p.events;
        const Json* t = e.find("t");
        const Json* node = e.find("node");
        const Json* ev = e.find("ev");
        if (!t || !t->is_number() || !node || !node->is_number() || !ev || !ev->is_string()) {
            add_error(p, where + ": event without numeric t/node and string ev");
            continue;
        }
        if (!known_kind(ev->string())) {
            add_error(p, where + ": unknown event kind \"" + ev->string() + "\"");
            continue;
        }
        bool begin = ev->string() == "span_begin";
        if (!begin && ev->string() != "span_end") continue;
        const Json* label = e.find("label");
        const Json* tid = e.find("trace_id");
        const Json* peer = e.find("peer");
        if (!label || !label->is_string() || !tid || !tid->is_number() || !peer ||
            !peer->is_number()) {
            add_error(p, where + ": span event without label/trace_id/peer");
            continue;
        }
        neo::obs::SpanRecord s;
        s.t = static_cast<neo::sim::Time>(t->number());
        s.node = static_cast<neo::NodeId>(node->number());
        s.begin = begin;
        s.name = label->string();
        s.tid = static_cast<std::uint64_t>(tid->number());
        s.peer = static_cast<std::uint64_t>(peer->number());
        take_span(p, bal, std::move(s), where);
    }
    p.open_spans = bal.still_open();
    return p;
}

Parsed parse_chrome(const std::string& path) {
    Parsed p;
    SpanBalance bal;
    Json doc;
    try {
        doc = Json::parse_file(path);
    } catch (const JsonError& err) {
        add_error(p, std::string("parse: ") + err.what());
        return p;
    }
    const Json* evs = doc.find("traceEvents");
    if (!evs || !evs->is_array()) {
        add_error(p, "not a Chrome trace document (missing traceEvents array)");
        return p;
    }
    std::size_t idx = 0;
    for (const Json& e : evs->items()) {
        std::string where = "traceEvents[" + std::to_string(idx++) + "]";
        if (!e.is_object()) {
            add_error(p, where + ": not an object");
            continue;
        }
        ++p.events;
        const Json* ph = e.find("ph");
        const Json* name = e.find("name");
        const Json* tid = e.find("tid");
        if (!ph || !ph->is_string() || !name || !name->is_string() || !tid ||
            !tid->is_number()) {
            add_error(p, where + ": event without ph/name/tid");
            continue;
        }
        const std::string& phase = ph->string();
        if (phase == "M") continue;  // metadata rows carry no timestamp
        if (phase != "X" && phase != "i" && phase != "b" && phase != "e") {
            add_error(p, where + ": unexpected ph \"" + phase + "\"");
            continue;
        }
        const Json* ts = e.find("ts");
        if (!ts || !ts->is_number()) {
            add_error(p, where + ": event without numeric ts");
            continue;
        }
        if (phase != "b" && phase != "e") continue;
        const Json* id = e.find("id");
        const Json* args = e.find("args");
        const Json* peer = args ? args->find("peer") : nullptr;
        if (!id || !id->is_number() || !peer || !peer->is_number()) {
            add_error(p, where + ": span event without id/args.peer");
            continue;
        }
        neo::obs::SpanRecord s;
        s.t = static_cast<neo::sim::Time>(std::llround(ts->number() * 1000.0));  // us -> ns
        s.node = static_cast<neo::NodeId>(tid->number());
        s.begin = phase == "b";
        s.name = name->string();
        s.tid = static_cast<std::uint64_t>(id->number());
        s.peer = static_cast<std::uint64_t>(peer->number());
        take_span(p, bal, std::move(s), where);
    }
    p.open_spans = bal.still_open();
    return p;
}

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <trace.json|trace.jsonl> [--lint]\n"
                 "  Reads a --trace export (JSONL when the path ends in .jsonl, Chrome\n"
                 "  trace_event JSON otherwise) and prints the commit critical-path\n"
                 "  attribution; --lint validates the schema instead (exit 1 on findings).\n",
                 argv0);
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string path;
    bool lint = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--lint") == 0) {
            lint = true;
        } else if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
            return usage(argv[0]);
        } else if (path.empty()) {
            path = argv[i];
        } else {
            return usage(argv[0]);
        }
    }
    if (path.empty()) return usage(argv[0]);

    bool jsonl =
        path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
    Parsed p;
    if (jsonl) {
        std::ifstream in(path, std::ios::binary);
        if (!in) {
            std::fprintf(stderr, "trace_report: cannot open %s\n", path.c_str());
            return 2;
        }
        p = parse_jsonl(in);
    } else {
        p = parse_chrome(path);
    }

    for (const std::string& e : p.errors) {
        std::fprintf(stderr, "trace-lint: %s\n", e.c_str());
    }
    if (p.errors.size() >= kMaxErrors) {
        std::fprintf(stderr, "trace-lint: (further findings suppressed)\n");
    }
    if (lint) {
        std::printf("trace-lint: %s — %zu events, %zu span events, %zu spans in flight\n",
                    p.errors.empty() ? "OK" : "FAILED", p.events, p.spans.size(),
                    p.open_spans);
        return p.errors.empty() ? 0 : 1;
    }

    neo::obs::CriticalPathReport rep = neo::obs::analyze_spans(p.spans);
    std::printf("%s (%zu events, %zu span events, %zu spans in flight)\n", path.c_str(),
                p.events, p.spans.size(), p.open_spans);
    std::fputs(neo::obs::format_report(rep).c_str(), stdout);
    return p.errors.empty() ? 0 : 1;
}
