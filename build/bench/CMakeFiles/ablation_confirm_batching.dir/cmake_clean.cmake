file(REMOVE_RECURSE
  "CMakeFiles/ablation_confirm_batching.dir/ablation_confirm_batching.cpp.o"
  "CMakeFiles/ablation_confirm_batching.dir/ablation_confirm_batching.cpp.o.d"
  "ablation_confirm_batching"
  "ablation_confirm_batching.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_confirm_batching.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
