# Empty compiler generated dependencies file for ablation_confirm_batching.
# This may be replaced when dependencies are built.
