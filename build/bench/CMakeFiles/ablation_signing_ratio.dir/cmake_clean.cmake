file(REMOVE_RECURSE
  "CMakeFiles/ablation_signing_ratio.dir/ablation_signing_ratio.cpp.o"
  "CMakeFiles/ablation_signing_ratio.dir/ablation_signing_ratio.cpp.o.d"
  "ablation_signing_ratio"
  "ablation_signing_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_signing_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
