# Empty dependencies file for ablation_signing_ratio.
# This may be replaced when dependencies are built.
