# Empty compiler generated dependencies file for fig4_aom_hm_latency.
# This may be replaced when dependencies are built.
