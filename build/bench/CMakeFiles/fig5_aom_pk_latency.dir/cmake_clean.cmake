file(REMOVE_RECURSE
  "CMakeFiles/fig5_aom_pk_latency.dir/fig5_aom_pk_latency.cpp.o"
  "CMakeFiles/fig5_aom_pk_latency.dir/fig5_aom_pk_latency.cpp.o.d"
  "fig5_aom_pk_latency"
  "fig5_aom_pk_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_aom_pk_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
