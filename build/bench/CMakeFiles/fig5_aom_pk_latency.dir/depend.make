# Empty dependencies file for fig5_aom_pk_latency.
# This may be replaced when dependencies are built.
