file(REMOVE_RECURSE
  "CMakeFiles/fig6_aom_throughput.dir/fig6_aom_throughput.cpp.o"
  "CMakeFiles/fig6_aom_throughput.dir/fig6_aom_throughput.cpp.o.d"
  "fig6_aom_throughput"
  "fig6_aom_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aom_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
