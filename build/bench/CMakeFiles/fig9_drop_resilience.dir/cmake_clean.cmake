file(REMOVE_RECURSE
  "CMakeFiles/fig9_drop_resilience.dir/fig9_drop_resilience.cpp.o"
  "CMakeFiles/fig9_drop_resilience.dir/fig9_drop_resilience.cpp.o.d"
  "fig9_drop_resilience"
  "fig9_drop_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_drop_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
