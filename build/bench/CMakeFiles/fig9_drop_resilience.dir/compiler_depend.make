# Empty compiler generated dependencies file for fig9_drop_resilience.
# This may be replaced when dependencies are built.
