file(REMOVE_RECURSE
  "CMakeFiles/fig9b_failover.dir/fig9b_failover.cpp.o"
  "CMakeFiles/fig9b_failover.dir/fig9b_failover.cpp.o.d"
  "fig9b_failover"
  "fig9b_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
