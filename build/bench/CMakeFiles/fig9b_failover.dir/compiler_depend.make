# Empty compiler generated dependencies file for fig9b_failover.
# This may be replaced when dependencies are built.
