file(REMOVE_RECURSE
  "CMakeFiles/neo_bench_harness.dir/harness/harness.cpp.o"
  "CMakeFiles/neo_bench_harness.dir/harness/harness.cpp.o.d"
  "libneo_bench_harness.a"
  "libneo_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
