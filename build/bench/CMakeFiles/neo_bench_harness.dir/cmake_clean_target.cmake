file(REMOVE_RECURSE
  "libneo_bench_harness.a"
)
