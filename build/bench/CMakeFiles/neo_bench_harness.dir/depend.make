# Empty dependencies file for neo_bench_harness.
# This may be replaced when dependencies are built.
