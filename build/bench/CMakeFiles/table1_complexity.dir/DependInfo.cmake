
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_complexity.cpp" "bench/CMakeFiles/table1_complexity.dir/table1_complexity.cpp.o" "gcc" "bench/CMakeFiles/table1_complexity.dir/table1_complexity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/neo_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/neobft/CMakeFiles/neo_neobft.dir/DependInfo.cmake"
  "/root/repo/build/src/aom/CMakeFiles/neo_aom.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/neo_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/neo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/neo_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
