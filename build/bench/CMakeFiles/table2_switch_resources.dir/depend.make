# Empty dependencies file for table2_switch_resources.
# This may be replaced when dependencies are built.
