file(REMOVE_RECURSE
  "CMakeFiles/byzantine_network_demo.dir/byzantine_network_demo.cpp.o"
  "CMakeFiles/byzantine_network_demo.dir/byzantine_network_demo.cpp.o.d"
  "byzantine_network_demo"
  "byzantine_network_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_network_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
