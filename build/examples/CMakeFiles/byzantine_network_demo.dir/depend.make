# Empty dependencies file for byzantine_network_demo.
# This may be replaced when dependencies are built.
