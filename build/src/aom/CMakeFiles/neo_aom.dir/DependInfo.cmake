
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aom/cert.cpp" "src/aom/CMakeFiles/neo_aom.dir/cert.cpp.o" "gcc" "src/aom/CMakeFiles/neo_aom.dir/cert.cpp.o.d"
  "/root/repo/src/aom/config_service.cpp" "src/aom/CMakeFiles/neo_aom.dir/config_service.cpp.o" "gcc" "src/aom/CMakeFiles/neo_aom.dir/config_service.cpp.o.d"
  "/root/repo/src/aom/receiver.cpp" "src/aom/CMakeFiles/neo_aom.dir/receiver.cpp.o" "gcc" "src/aom/CMakeFiles/neo_aom.dir/receiver.cpp.o.d"
  "/root/repo/src/aom/sequencer.cpp" "src/aom/CMakeFiles/neo_aom.dir/sequencer.cpp.o" "gcc" "src/aom/CMakeFiles/neo_aom.dir/sequencer.cpp.o.d"
  "/root/repo/src/aom/wire.cpp" "src/aom/CMakeFiles/neo_aom.dir/wire.cpp.o" "gcc" "src/aom/CMakeFiles/neo_aom.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/neo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
