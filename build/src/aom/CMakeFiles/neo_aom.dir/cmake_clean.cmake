file(REMOVE_RECURSE
  "CMakeFiles/neo_aom.dir/cert.cpp.o"
  "CMakeFiles/neo_aom.dir/cert.cpp.o.d"
  "CMakeFiles/neo_aom.dir/config_service.cpp.o"
  "CMakeFiles/neo_aom.dir/config_service.cpp.o.d"
  "CMakeFiles/neo_aom.dir/receiver.cpp.o"
  "CMakeFiles/neo_aom.dir/receiver.cpp.o.d"
  "CMakeFiles/neo_aom.dir/sequencer.cpp.o"
  "CMakeFiles/neo_aom.dir/sequencer.cpp.o.d"
  "CMakeFiles/neo_aom.dir/wire.cpp.o"
  "CMakeFiles/neo_aom.dir/wire.cpp.o.d"
  "libneo_aom.a"
  "libneo_aom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_aom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
