file(REMOVE_RECURSE
  "libneo_aom.a"
)
