# Empty dependencies file for neo_aom.
# This may be replaced when dependencies are built.
