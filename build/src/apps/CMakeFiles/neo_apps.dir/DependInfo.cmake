
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/btree.cpp" "src/apps/CMakeFiles/neo_apps.dir/btree.cpp.o" "gcc" "src/apps/CMakeFiles/neo_apps.dir/btree.cpp.o.d"
  "/root/repo/src/apps/kvstore.cpp" "src/apps/CMakeFiles/neo_apps.dir/kvstore.cpp.o" "gcc" "src/apps/CMakeFiles/neo_apps.dir/kvstore.cpp.o.d"
  "/root/repo/src/apps/ycsb.cpp" "src/apps/CMakeFiles/neo_apps.dir/ycsb.cpp.o" "gcc" "src/apps/CMakeFiles/neo_apps.dir/ycsb.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
