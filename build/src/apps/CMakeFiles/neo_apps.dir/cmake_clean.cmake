file(REMOVE_RECURSE
  "CMakeFiles/neo_apps.dir/btree.cpp.o"
  "CMakeFiles/neo_apps.dir/btree.cpp.o.d"
  "CMakeFiles/neo_apps.dir/kvstore.cpp.o"
  "CMakeFiles/neo_apps.dir/kvstore.cpp.o.d"
  "CMakeFiles/neo_apps.dir/ycsb.cpp.o"
  "CMakeFiles/neo_apps.dir/ycsb.cpp.o.d"
  "libneo_apps.a"
  "libneo_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
