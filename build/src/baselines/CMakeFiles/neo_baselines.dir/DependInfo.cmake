
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/common.cpp" "src/baselines/CMakeFiles/neo_baselines.dir/common.cpp.o" "gcc" "src/baselines/CMakeFiles/neo_baselines.dir/common.cpp.o.d"
  "/root/repo/src/baselines/hotstuff.cpp" "src/baselines/CMakeFiles/neo_baselines.dir/hotstuff.cpp.o" "gcc" "src/baselines/CMakeFiles/neo_baselines.dir/hotstuff.cpp.o.d"
  "/root/repo/src/baselines/minbft.cpp" "src/baselines/CMakeFiles/neo_baselines.dir/minbft.cpp.o" "gcc" "src/baselines/CMakeFiles/neo_baselines.dir/minbft.cpp.o.d"
  "/root/repo/src/baselines/pbft.cpp" "src/baselines/CMakeFiles/neo_baselines.dir/pbft.cpp.o" "gcc" "src/baselines/CMakeFiles/neo_baselines.dir/pbft.cpp.o.d"
  "/root/repo/src/baselines/zyzzyva.cpp" "src/baselines/CMakeFiles/neo_baselines.dir/zyzzyva.cpp.o" "gcc" "src/baselines/CMakeFiles/neo_baselines.dir/zyzzyva.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/neo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
