file(REMOVE_RECURSE
  "CMakeFiles/neo_baselines.dir/common.cpp.o"
  "CMakeFiles/neo_baselines.dir/common.cpp.o.d"
  "CMakeFiles/neo_baselines.dir/hotstuff.cpp.o"
  "CMakeFiles/neo_baselines.dir/hotstuff.cpp.o.d"
  "CMakeFiles/neo_baselines.dir/minbft.cpp.o"
  "CMakeFiles/neo_baselines.dir/minbft.cpp.o.d"
  "CMakeFiles/neo_baselines.dir/pbft.cpp.o"
  "CMakeFiles/neo_baselines.dir/pbft.cpp.o.d"
  "CMakeFiles/neo_baselines.dir/zyzzyva.cpp.o"
  "CMakeFiles/neo_baselines.dir/zyzzyva.cpp.o.d"
  "libneo_baselines.a"
  "libneo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
