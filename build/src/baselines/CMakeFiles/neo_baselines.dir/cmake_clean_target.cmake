file(REMOVE_RECURSE
  "libneo_baselines.a"
)
