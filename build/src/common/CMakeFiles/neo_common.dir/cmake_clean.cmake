file(REMOVE_RECURSE
  "CMakeFiles/neo_common.dir/codec.cpp.o"
  "CMakeFiles/neo_common.dir/codec.cpp.o.d"
  "CMakeFiles/neo_common.dir/hex.cpp.o"
  "CMakeFiles/neo_common.dir/hex.cpp.o.d"
  "CMakeFiles/neo_common.dir/histogram.cpp.o"
  "CMakeFiles/neo_common.dir/histogram.cpp.o.d"
  "CMakeFiles/neo_common.dir/logging.cpp.o"
  "CMakeFiles/neo_common.dir/logging.cpp.o.d"
  "libneo_common.a"
  "libneo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
