
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/hmac_sha256.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/hmac_sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/hmac_sha256.cpp.o.d"
  "/root/repo/src/crypto/identity.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/identity.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/identity.cpp.o.d"
  "/root/repo/src/crypto/secp256k1_ecdsa.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/secp256k1_ecdsa.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/secp256k1_ecdsa.cpp.o.d"
  "/root/repo/src/crypto/secp256k1_field.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/secp256k1_field.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/secp256k1_field.cpp.o.d"
  "/root/repo/src/crypto/secp256k1_point.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/secp256k1_point.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/secp256k1_point.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/siphash.cpp" "src/crypto/CMakeFiles/neo_crypto.dir/siphash.cpp.o" "gcc" "src/crypto/CMakeFiles/neo_crypto.dir/siphash.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
