file(REMOVE_RECURSE
  "CMakeFiles/neo_crypto.dir/hmac_sha256.cpp.o"
  "CMakeFiles/neo_crypto.dir/hmac_sha256.cpp.o.d"
  "CMakeFiles/neo_crypto.dir/identity.cpp.o"
  "CMakeFiles/neo_crypto.dir/identity.cpp.o.d"
  "CMakeFiles/neo_crypto.dir/secp256k1_ecdsa.cpp.o"
  "CMakeFiles/neo_crypto.dir/secp256k1_ecdsa.cpp.o.d"
  "CMakeFiles/neo_crypto.dir/secp256k1_field.cpp.o"
  "CMakeFiles/neo_crypto.dir/secp256k1_field.cpp.o.d"
  "CMakeFiles/neo_crypto.dir/secp256k1_point.cpp.o"
  "CMakeFiles/neo_crypto.dir/secp256k1_point.cpp.o.d"
  "CMakeFiles/neo_crypto.dir/sha256.cpp.o"
  "CMakeFiles/neo_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/neo_crypto.dir/siphash.cpp.o"
  "CMakeFiles/neo_crypto.dir/siphash.cpp.o.d"
  "libneo_crypto.a"
  "libneo_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
