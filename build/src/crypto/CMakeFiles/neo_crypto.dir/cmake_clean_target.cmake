file(REMOVE_RECURSE
  "libneo_crypto.a"
)
