# Empty dependencies file for neo_crypto.
# This may be replaced when dependencies are built.
