
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neobft/client.cpp" "src/neobft/CMakeFiles/neo_neobft.dir/client.cpp.o" "gcc" "src/neobft/CMakeFiles/neo_neobft.dir/client.cpp.o.d"
  "/root/repo/src/neobft/log.cpp" "src/neobft/CMakeFiles/neo_neobft.dir/log.cpp.o" "gcc" "src/neobft/CMakeFiles/neo_neobft.dir/log.cpp.o.d"
  "/root/repo/src/neobft/messages.cpp" "src/neobft/CMakeFiles/neo_neobft.dir/messages.cpp.o" "gcc" "src/neobft/CMakeFiles/neo_neobft.dir/messages.cpp.o.d"
  "/root/repo/src/neobft/replica.cpp" "src/neobft/CMakeFiles/neo_neobft.dir/replica.cpp.o" "gcc" "src/neobft/CMakeFiles/neo_neobft.dir/replica.cpp.o.d"
  "/root/repo/src/neobft/replica_viewchange.cpp" "src/neobft/CMakeFiles/neo_neobft.dir/replica_viewchange.cpp.o" "gcc" "src/neobft/CMakeFiles/neo_neobft.dir/replica_viewchange.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/neo_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/neo_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/neo_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/aom/CMakeFiles/neo_aom.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
