file(REMOVE_RECURSE
  "CMakeFiles/neo_neobft.dir/client.cpp.o"
  "CMakeFiles/neo_neobft.dir/client.cpp.o.d"
  "CMakeFiles/neo_neobft.dir/log.cpp.o"
  "CMakeFiles/neo_neobft.dir/log.cpp.o.d"
  "CMakeFiles/neo_neobft.dir/messages.cpp.o"
  "CMakeFiles/neo_neobft.dir/messages.cpp.o.d"
  "CMakeFiles/neo_neobft.dir/replica.cpp.o"
  "CMakeFiles/neo_neobft.dir/replica.cpp.o.d"
  "CMakeFiles/neo_neobft.dir/replica_viewchange.cpp.o"
  "CMakeFiles/neo_neobft.dir/replica_viewchange.cpp.o.d"
  "libneo_neobft.a"
  "libneo_neobft.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_neobft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
