file(REMOVE_RECURSE
  "libneo_neobft.a"
)
