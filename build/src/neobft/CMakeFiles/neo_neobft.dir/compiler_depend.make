# Empty compiler generated dependencies file for neo_neobft.
# This may be replaced when dependencies are built.
