file(REMOVE_RECURSE
  "CMakeFiles/neo_sim.dir/network.cpp.o"
  "CMakeFiles/neo_sim.dir/network.cpp.o.d"
  "CMakeFiles/neo_sim.dir/processing_node.cpp.o"
  "CMakeFiles/neo_sim.dir/processing_node.cpp.o.d"
  "CMakeFiles/neo_sim.dir/simulator.cpp.o"
  "CMakeFiles/neo_sim.dir/simulator.cpp.o.d"
  "libneo_sim.a"
  "libneo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/neo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
