# Empty dependencies file for neo_sim.
# This may be replaced when dependencies are built.
