file(REMOVE_RECURSE
  "CMakeFiles/test_aom_byzantine.dir/aom/test_aom_byzantine.cpp.o"
  "CMakeFiles/test_aom_byzantine.dir/aom/test_aom_byzantine.cpp.o.d"
  "test_aom_byzantine"
  "test_aom_byzantine.pdb"
  "test_aom_byzantine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aom_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
