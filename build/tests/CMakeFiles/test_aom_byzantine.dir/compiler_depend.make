# Empty compiler generated dependencies file for test_aom_byzantine.
# This may be replaced when dependencies are built.
