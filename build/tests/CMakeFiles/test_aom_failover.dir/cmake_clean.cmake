file(REMOVE_RECURSE
  "CMakeFiles/test_aom_failover.dir/aom/test_aom_failover.cpp.o"
  "CMakeFiles/test_aom_failover.dir/aom/test_aom_failover.cpp.o.d"
  "test_aom_failover"
  "test_aom_failover.pdb"
  "test_aom_failover[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aom_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
