file(REMOVE_RECURSE
  "CMakeFiles/test_aom_fuzz.dir/aom/test_aom_fuzz.cpp.o"
  "CMakeFiles/test_aom_fuzz.dir/aom/test_aom_fuzz.cpp.o.d"
  "test_aom_fuzz"
  "test_aom_fuzz.pdb"
  "test_aom_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aom_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
