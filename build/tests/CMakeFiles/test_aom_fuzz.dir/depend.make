# Empty dependencies file for test_aom_fuzz.
# This may be replaced when dependencies are built.
