file(REMOVE_RECURSE
  "CMakeFiles/test_aom_hm.dir/aom/test_aom_hm.cpp.o"
  "CMakeFiles/test_aom_hm.dir/aom/test_aom_hm.cpp.o.d"
  "test_aom_hm"
  "test_aom_hm.pdb"
  "test_aom_hm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aom_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
