# Empty compiler generated dependencies file for test_aom_hm.
# This may be replaced when dependencies are built.
