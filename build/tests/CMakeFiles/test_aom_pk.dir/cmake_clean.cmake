file(REMOVE_RECURSE
  "CMakeFiles/test_aom_pk.dir/aom/test_aom_pk.cpp.o"
  "CMakeFiles/test_aom_pk.dir/aom/test_aom_pk.cpp.o.d"
  "test_aom_pk"
  "test_aom_pk.pdb"
  "test_aom_pk[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aom_pk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
