# Empty dependencies file for test_aom_pk.
# This may be replaced when dependencies are built.
