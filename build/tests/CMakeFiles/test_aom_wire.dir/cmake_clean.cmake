file(REMOVE_RECURSE
  "CMakeFiles/test_aom_wire.dir/aom/test_aom_wire.cpp.o"
  "CMakeFiles/test_aom_wire.dir/aom/test_aom_wire.cpp.o.d"
  "test_aom_wire"
  "test_aom_wire.pdb"
  "test_aom_wire[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_aom_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
