# Empty compiler generated dependencies file for test_aom_wire.
# This may be replaced when dependencies are built.
