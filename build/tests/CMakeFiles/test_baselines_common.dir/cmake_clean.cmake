file(REMOVE_RECURSE
  "CMakeFiles/test_baselines_common.dir/baselines/test_baselines_common.cpp.o"
  "CMakeFiles/test_baselines_common.dir/baselines/test_baselines_common.cpp.o.d"
  "test_baselines_common"
  "test_baselines_common.pdb"
  "test_baselines_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baselines_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
