# Empty compiler generated dependencies file for test_baselines_common.
# This may be replaced when dependencies are built.
