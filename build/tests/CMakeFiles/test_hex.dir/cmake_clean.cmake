file(REMOVE_RECURSE
  "CMakeFiles/test_hex.dir/common/test_hex.cpp.o"
  "CMakeFiles/test_hex.dir/common/test_hex.cpp.o.d"
  "test_hex"
  "test_hex.pdb"
  "test_hex[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
