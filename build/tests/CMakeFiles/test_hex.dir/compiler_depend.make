# Empty compiler generated dependencies file for test_hex.
# This may be replaced when dependencies are built.
