file(REMOVE_RECURSE
  "CMakeFiles/test_hotstuff.dir/baselines/test_hotstuff.cpp.o"
  "CMakeFiles/test_hotstuff.dir/baselines/test_hotstuff.cpp.o.d"
  "test_hotstuff"
  "test_hotstuff.pdb"
  "test_hotstuff[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hotstuff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
