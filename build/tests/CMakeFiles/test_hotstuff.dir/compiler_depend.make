# Empty compiler generated dependencies file for test_hotstuff.
# This may be replaced when dependencies are built.
