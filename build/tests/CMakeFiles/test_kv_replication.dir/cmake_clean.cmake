file(REMOVE_RECURSE
  "CMakeFiles/test_kv_replication.dir/integration/test_kv_replication.cpp.o"
  "CMakeFiles/test_kv_replication.dir/integration/test_kv_replication.cpp.o.d"
  "test_kv_replication"
  "test_kv_replication.pdb"
  "test_kv_replication[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kv_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
