# Empty dependencies file for test_kv_replication.
# This may be replaced when dependencies are built.
