file(REMOVE_RECURSE
  "CMakeFiles/test_kvstore.dir/apps/test_kvstore.cpp.o"
  "CMakeFiles/test_kvstore.dir/apps/test_kvstore.cpp.o.d"
  "test_kvstore"
  "test_kvstore.pdb"
  "test_kvstore[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kvstore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
