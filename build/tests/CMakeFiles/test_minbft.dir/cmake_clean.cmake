file(REMOVE_RECURSE
  "CMakeFiles/test_minbft.dir/baselines/test_minbft.cpp.o"
  "CMakeFiles/test_minbft.dir/baselines/test_minbft.cpp.o.d"
  "test_minbft"
  "test_minbft.pdb"
  "test_minbft[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_minbft.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
