# Empty dependencies file for test_minbft.
# This may be replaced when dependencies are built.
