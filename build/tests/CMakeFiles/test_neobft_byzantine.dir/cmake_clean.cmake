file(REMOVE_RECURSE
  "CMakeFiles/test_neobft_byzantine.dir/neobft/test_neobft_byzantine.cpp.o"
  "CMakeFiles/test_neobft_byzantine.dir/neobft/test_neobft_byzantine.cpp.o.d"
  "test_neobft_byzantine"
  "test_neobft_byzantine.pdb"
  "test_neobft_byzantine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neobft_byzantine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
