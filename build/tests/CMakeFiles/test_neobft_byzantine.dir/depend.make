# Empty dependencies file for test_neobft_byzantine.
# This may be replaced when dependencies are built.
