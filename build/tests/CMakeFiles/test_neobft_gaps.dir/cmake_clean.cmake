file(REMOVE_RECURSE
  "CMakeFiles/test_neobft_gaps.dir/neobft/test_neobft_gaps.cpp.o"
  "CMakeFiles/test_neobft_gaps.dir/neobft/test_neobft_gaps.cpp.o.d"
  "test_neobft_gaps"
  "test_neobft_gaps.pdb"
  "test_neobft_gaps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neobft_gaps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
