# Empty dependencies file for test_neobft_gaps.
# This may be replaced when dependencies are built.
