file(REMOVE_RECURSE
  "CMakeFiles/test_neobft_log.dir/neobft/test_neobft_log.cpp.o"
  "CMakeFiles/test_neobft_log.dir/neobft/test_neobft_log.cpp.o.d"
  "test_neobft_log"
  "test_neobft_log.pdb"
  "test_neobft_log[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neobft_log.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
