# Empty compiler generated dependencies file for test_neobft_log.
# This may be replaced when dependencies are built.
