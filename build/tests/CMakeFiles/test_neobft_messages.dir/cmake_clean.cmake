file(REMOVE_RECURSE
  "CMakeFiles/test_neobft_messages.dir/neobft/test_neobft_messages.cpp.o"
  "CMakeFiles/test_neobft_messages.dir/neobft/test_neobft_messages.cpp.o.d"
  "test_neobft_messages"
  "test_neobft_messages.pdb"
  "test_neobft_messages[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neobft_messages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
