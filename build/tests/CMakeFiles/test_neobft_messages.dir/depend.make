# Empty dependencies file for test_neobft_messages.
# This may be replaced when dependencies are built.
