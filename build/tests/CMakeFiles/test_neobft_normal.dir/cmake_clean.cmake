file(REMOVE_RECURSE
  "CMakeFiles/test_neobft_normal.dir/neobft/test_neobft_normal.cpp.o"
  "CMakeFiles/test_neobft_normal.dir/neobft/test_neobft_normal.cpp.o.d"
  "test_neobft_normal"
  "test_neobft_normal.pdb"
  "test_neobft_normal[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neobft_normal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
