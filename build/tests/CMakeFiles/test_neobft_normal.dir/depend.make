# Empty dependencies file for test_neobft_normal.
# This may be replaced when dependencies are built.
