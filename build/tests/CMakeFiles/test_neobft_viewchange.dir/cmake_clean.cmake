file(REMOVE_RECURSE
  "CMakeFiles/test_neobft_viewchange.dir/neobft/test_neobft_viewchange.cpp.o"
  "CMakeFiles/test_neobft_viewchange.dir/neobft/test_neobft_viewchange.cpp.o.d"
  "test_neobft_viewchange"
  "test_neobft_viewchange.pdb"
  "test_neobft_viewchange[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neobft_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
