# Empty dependencies file for test_neobft_viewchange.
# This may be replaced when dependencies are built.
