# Empty compiler generated dependencies file for test_pbft.
# This may be replaced when dependencies are built.
