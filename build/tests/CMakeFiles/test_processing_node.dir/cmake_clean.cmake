file(REMOVE_RECURSE
  "CMakeFiles/test_processing_node.dir/sim/test_processing_node.cpp.o"
  "CMakeFiles/test_processing_node.dir/sim/test_processing_node.cpp.o.d"
  "test_processing_node"
  "test_processing_node.pdb"
  "test_processing_node[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_processing_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
