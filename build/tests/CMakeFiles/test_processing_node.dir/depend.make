# Empty dependencies file for test_processing_node.
# This may be replaced when dependencies are built.
