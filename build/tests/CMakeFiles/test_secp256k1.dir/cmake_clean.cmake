file(REMOVE_RECURSE
  "CMakeFiles/test_secp256k1.dir/crypto/test_secp256k1.cpp.o"
  "CMakeFiles/test_secp256k1.dir/crypto/test_secp256k1.cpp.o.d"
  "test_secp256k1"
  "test_secp256k1.pdb"
  "test_secp256k1[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_secp256k1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
