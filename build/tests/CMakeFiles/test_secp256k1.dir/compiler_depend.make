# Empty compiler generated dependencies file for test_secp256k1.
# This may be replaced when dependencies are built.
