file(REMOVE_RECURSE
  "CMakeFiles/test_zyzzyva.dir/baselines/test_zyzzyva.cpp.o"
  "CMakeFiles/test_zyzzyva.dir/baselines/test_zyzzyva.cpp.o.d"
  "test_zyzzyva"
  "test_zyzzyva.pdb"
  "test_zyzzyva[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zyzzyva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
