# Empty compiler generated dependencies file for test_zyzzyva.
# This may be replaced when dependencies are built.
