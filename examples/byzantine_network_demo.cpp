// Byzantine-network mode demo (§3.1, §4.2): under the full Byzantine fault
// model, an equivocating sequencer cannot split correct replicas — the
// confirm-message quorum blocks divergent deliveries.
//
//   ./build/examples/byzantine_network_demo
#include <cstdio>

#include "aom/config_service.hpp"
#include "apps/state_machine.hpp"
#include "crypto/sha256.hpp"
#include "neobft/client.hpp"
#include "neobft/replica.hpp"

using namespace neo;

namespace {

// A malicious sequencer: sends replica 1 different content (with valid
// per-receiver MACs — the Byzantine switch holds all HM keys!) than the
// rest of the group.
class EquivocatingSwitch : public aom::SequencerSwitch {
  public:
    using aom::SequencerSwitch::SequencerSwitch;
    const aom::AomKeyService* keys = nullptr;
    std::vector<NodeId> receivers;
    bool equivocate = false;
    std::uint64_t forged = 0;

  protected:
    void emit(NodeId receiver, sim::Time depart, sim::Packet packet) override {
        BytesView data = packet.view();
        if (equivocate && receiver == 1 && !data.empty() &&
            data[0] == static_cast<std::uint8_t>(aom::Wire::kSeqHm)) {
            try {
                Reader r(data.subspan(1));
                aom::HmPacket pkt = aom::HmPacket::parse(r);
                pkt.payload = to_bytes("EQUIVOCATED CONTENT");
                pkt.digest = crypto::sha256(pkt.payload);
                Bytes input = aom::auth_input(pkt.group, pkt.epoch, pkt.seq, pkt.digest);
                int base = pkt.subgroup * aom::kHmSubgroupSize;
                for (std::size_t i = 0; i < pkt.macs.size(); ++i) {
                    NodeId rcv = receivers[static_cast<std::size_t>(base) + i];
                    pkt.macs[i] = crypto::halfsiphash24(keys->hm_key(id(), rcv), input);
                }
                ++forged;
                aom::SequencerSwitch::emit(receiver, depart, pkt.serialize());
                return;
            } catch (const CodecError&) {
            }
        }
        aom::SequencerSwitch::emit(receiver, depart, std::move(packet));
    }
};

}  // namespace

int main() {
    std::printf("Byzantine-network mode: equivocating sequencer vs confirm quorums\n\n");

    sim::Simulator sim;
    sim::Network net(sim, 1);
    net.set_default_link(sim::datacenter_link());
    crypto::TrustRoot root(crypto::CryptoMode::kReal, 2);
    aom::AomKeyService keys(3);

    neobft::Config cfg;
    cfg.replicas = {1, 2, 3, 4};
    cfg.f = 1;
    cfg.group = 7;
    cfg.config_service = 100;

    aom::GroupConfig group;
    group.group = 7;
    group.variant = aom::AuthVariant::kHmacVector;
    group.trust = aom::NetworkTrust::kByzantine;  // <- the full fault model
    group.f = 1;
    group.receivers = cfg.replicas;

    EquivocatingSwitch sequencer({}, root.provision(200), &keys);
    sequencer.keys = &keys;
    sequencer.receivers = group.receivers;
    net.add_node(sequencer, 200);
    aom::ConfigService config(&keys, {&sequencer});
    net.add_node(config, 100);
    config.register_group(group);

    std::vector<std::unique_ptr<neobft::Replica>> replicas;
    for (NodeId rid : cfg.replicas) {
        auto rep = std::make_unique<neobft::Replica>(cfg, root.provision(rid), &keys,
                                                     std::make_unique<app::EchoApp>());
        net.add_node(*rep, rid);
        rep->bootstrap(group, config.current_sequencer(7));
        replicas.push_back(std::move(rep));
    }

    neobft::Client client(cfg, root.provision(400), &config);
    net.add_node(client, 400);

    // Phase 1: honest switch. Requests commit with confirm quorums.
    int committed = 0;
    std::function<void()> issue = [&] {
        client.invoke(to_bytes("honest-" + std::to_string(committed)), [&](Bytes) {
            ++committed;
            if (committed < 3) issue();
        });
    };
    issue();
    sim.run_until(sim.now() + 2 * sim::kSecond);
    std::printf("phase 1 (honest switch): %d ops committed; every delivery carried a\n", committed);
    std::printf("2f+1 confirm quorum (ordering certificates include the confirms)\n\n");

    // Phase 2: the switch starts equivocating towards replica 1.
    sequencer.equivocate = true;
    bool done = false;
    client.invoke(to_bytes("under-attack"), [&](Bytes result) {
        done = true;
        std::printf("phase 2 (equivocating switch): \"under-attack\" still committed -> \"%s\"\n",
                    to_string(result).c_str());
    });
    sim.run_until(sim.now() + 2 * sim::kSecond);

    std::printf("  forged packets sent to replica 1: %llu\n",
                static_cast<unsigned long long>(sequencer.forged));
    std::printf("  replica 1 never delivered the forged content: its copy could not\n");
    std::printf("  gather 2f+1 matching confirms, so quorum intersection blocked it.\n\n");

    // Verify: no replica's log contains the equivocated digest.
    Digest32 evil = crypto::sha256(to_bytes("EQUIVOCATED CONTENT"));
    bool clean = true;
    for (auto& rep : replicas) {
        for (std::uint64_t s = 1; s <= rep->log().size(); ++s) {
            if (!rep->log().at(s).noop && rep->log().at(s).oc.digest == evil) clean = false;
        }
    }
    std::printf("forged content in any replica log: %s\n", clean ? "NO" : "YES (BUG!)");
    return (done && clean) ? 0 : 1;
}
