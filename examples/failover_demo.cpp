// Sequencer failover demo (§4.2, §5.5, §6.4): the sequencer switch dies
// mid-run; replicas detect it, run an epoch-changing view change, the
// configuration service installs the standby switch, and traffic resumes.
//
//   ./build/examples/failover_demo
#include <cstdio>

#include "aom/config_service.hpp"
#include "apps/state_machine.hpp"
#include "neobft/client.hpp"
#include "neobft/replica.hpp"

using namespace neo;

int main() {
    std::printf("NeoBFT sequencer failover demo\n\n");

    sim::Simulator sim;
    sim::Network net(sim, 1);
    net.set_default_link(sim::datacenter_link());
    crypto::TrustRoot root(crypto::CryptoMode::kReal, 2);
    aom::AomKeyService keys(3);

    neobft::Config cfg;
    cfg.replicas = {1, 2, 3, 4};
    cfg.f = 1;
    cfg.group = 7;
    cfg.config_service = 100;
    cfg.view_change_timeout = 5 * sim::kMillisecond;
    cfg.request_aom_timeout = 8 * sim::kMillisecond;

    aom::GroupConfig group;
    group.group = 7;
    group.variant = aom::AuthVariant::kHmacVector;
    group.f = 1;
    group.receivers = cfg.replicas;

    // Two switches: primary + standby.
    aom::SequencerSwitch primary({}, root.provision(200), &keys);
    aom::SequencerSwitch standby({}, root.provision(201), &keys);
    net.add_node(primary, 200);
    net.add_node(standby, 201);
    aom::ConfigService config(&keys, {&primary, &standby});
    net.add_node(config, 100);
    config.register_group(group);

    std::vector<std::unique_ptr<neobft::Replica>> replicas;
    for (NodeId rid : cfg.replicas) {
        auto rep = std::make_unique<neobft::Replica>(cfg, root.provision(rid), &keys,
                                                     std::make_unique<app::EchoApp>());
        net.add_node(*rep, rid);
        rep->bootstrap(group, config.current_sequencer(7));
        replicas.push_back(std::move(rep));
    }

    neobft::Client::Options copts;
    copts.retry_timeout = 4 * sim::kMillisecond;
    neobft::Client client(cfg, root.provision(400), &config, copts);
    net.add_node(client, 400);

    // Phase 1: normal traffic through the primary switch.
    int committed = 0;
    std::function<void()> issue = [&] {
        client.invoke(to_bytes("op-" + std::to_string(committed)), [&](Bytes) {
            ++committed;
            if (committed < 5) issue();
        });
    };
    issue();
    sim.run_until(sim.now() + 2 * sim::kSecond);
    std::printf("phase 1: %d ops committed via switch %u (epoch %llu)\n", committed,
                config.current_sequencer(7),
                static_cast<unsigned long long>(config.current_epoch(7)));

    // Phase 2: kill the primary. The next request stalls; the client's
    // unicast retry makes the replicas suspect the sequencer (§5.5), they
    // agree on the end of epoch 1, and ask the config service to fail over.
    primary.set_stall(true);
    std::printf("\nphase 2: primary switch killed at t=%.1f ms\n", sim::to_ms(sim.now()));

    sim::Time fail_time = sim.now();
    bool recovered = false;
    client.invoke(to_bytes("post-failure"), [&](Bytes) {
        recovered = true;
        std::printf("  \"post-failure\" committed %.1f ms after the failure\n",
                    sim::to_ms(sim.now() - fail_time));
    });
    sim.run_until(sim.now() + 2 * sim::kSecond);

    std::printf("\nphase 3: state after failover\n");
    std::printf("  failovers performed by config service: %llu\n",
                static_cast<unsigned long long>(config.failovers_performed()));
    std::printf("  group now routed to switch %u, epoch %llu\n", config.current_sequencer(7),
                static_cast<unsigned long long>(config.current_epoch(7)));
    for (auto& rep : replicas) {
        std::printf("  replica %u: epoch %llu, %llu log entries, %llu view changes\n", rep->id(),
                    static_cast<unsigned long long>(rep->view().epoch),
                    static_cast<unsigned long long>(rep->log().size()),
                    static_cast<unsigned long long>(rep->stats().view_changes_started));
    }
    std::printf("\n%s\n", recovered ? "failover succeeded: the system resumed without any "
                                      "committed operation lost"
                                    : "ERROR: system did not recover");
    return recovered ? 0 : 1;
}
