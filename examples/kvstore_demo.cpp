// Replicated key-value store demo (the paper's §6.5 application): a B-Tree
// KV store behind NeoBFT, loaded with a YCSB dataset and driven by a mixed
// read/update workload.
//
//   ./build/examples/kvstore_demo
#include <cstdio>

#include "aom/config_service.hpp"
#include "apps/kvstore.hpp"
#include "apps/ycsb.hpp"
#include "neobft/client.hpp"
#include "neobft/replica.hpp"

using namespace neo;

int main() {
    std::printf("NeoBFT replicated KV store: 10K records, YCSB-A style workload\n\n");

    sim::Simulator sim;
    sim::Network net(sim, 1);
    net.set_default_link(sim::datacenter_link());
    crypto::TrustRoot root(crypto::CryptoMode::kReal, 2);
    aom::AomKeyService keys(3);

    neobft::Config cfg;
    cfg.replicas = {1, 2, 3, 4};
    cfg.f = 1;
    cfg.group = 7;
    cfg.config_service = 100;

    aom::GroupConfig group;
    group.group = 7;
    group.variant = aom::AuthVariant::kPublicKey;  // signature-authenticated ordering
    group.f = 1;
    group.receivers = cfg.replicas;

    aom::SequencerSwitch sequencer({}, root.provision(200), &keys);
    net.add_node(sequencer, 200);
    aom::ConfigService config(&keys, {&sequencer});
    net.add_node(config, 100);
    config.register_group(group);

    app::YcsbConfig ycfg;
    ycfg.record_count = 10'000;
    ycfg.field_length = 64;
    app::YcsbWorkload dataset(ycfg, 11);

    std::vector<std::unique_ptr<neobft::Replica>> replicas;
    for (NodeId rid : cfg.replicas) {
        auto sm = std::make_unique<app::KvStateMachine>();
        dataset.load_into(*sm);
        auto rep = std::make_unique<neobft::Replica>(cfg, root.provision(rid), &keys,
                                                     std::move(sm));
        net.add_node(*rep, rid);
        rep->bootstrap(group, config.current_sequencer(7));
        replicas.push_back(std::move(rep));
    }

    neobft::Client client(cfg, root.provision(400), &config);
    net.add_node(client, 400);

    // Drive 200 YCSB ops, then read one key back explicitly.
    app::YcsbWorkload ops(ycfg, 12);
    int remaining = 200;
    int reads = 0, writes = 0;
    std::function<void()> issue = [&] {
        if (remaining-- <= 0) return;
        app::KvOp op = ops.next_op();
        (op.type == app::KvOpType::kGet ? reads : writes)++;
        client.invoke(op.serialize(), [&](Bytes) { issue(); });
    };
    issue();
    sim.run_until(sim.now() + 2 * sim::kSecond);
    std::printf("committed 200 ops (%d reads, %d updates) through the protocol\n", reads, writes);

    app::KvOp put;
    put.type = app::KvOpType::kPut;
    put.key = to_bytes("demo-key");
    put.value = to_bytes("replicated-value");
    client.invoke(put.serialize(), [&](Bytes) {
        app::KvOp get;
        get.type = app::KvOpType::kGet;
        get.key = to_bytes("demo-key");
        client.invoke(get.serialize(), [&](Bytes res) {
            auto r = app::KvResult::parse(res);
            std::printf("GET demo-key -> \"%s\"\n", to_string(r->value).c_str());
        });
    });
    sim.run_until(sim.now() + 2 * sim::kSecond);

    std::printf("\nreplica stores after the run:\n");
    for (auto& rep : replicas) {
        auto& sm = dynamic_cast<app::KvStateMachine&>(rep->app());
        std::printf("  replica %u: %zu records, B-Tree invariants %s\n", rep->id(),
                    sm.store().size(), sm.store().check_invariants() ? "OK" : "VIOLATED");
    }
    return 0;
}
