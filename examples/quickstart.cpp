// Quickstart: stand up a 4-replica NeoBFT group over a simulated data-center
// network, issue a few operations, and inspect the replicated log.
//
//   cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "aom/config_service.hpp"
#include "apps/state_machine.hpp"
#include "neobft/client.hpp"
#include "neobft/replica.hpp"

using namespace neo;

int main() {
    std::printf("NeoBFT quickstart: 4 replicas (f=1), HMAC-vector aom, echo app\n\n");

    // 1. The simulated data-center: event loop + network fabric.
    sim::Simulator sim;
    sim::Network net(sim, /*seed=*/1);
    net.set_default_link(sim::datacenter_link());

    // 2. Credentials: the trust root provisions signing keys and pairwise
    //    MACs; the aom key service provisions switch<->receiver HMAC keys.
    crypto::TrustRoot root(crypto::CryptoMode::kReal, /*seed=*/2);
    aom::AomKeyService keys(/*seed=*/3);

    // 3. Protocol + group configuration.
    neobft::Config cfg;
    cfg.replicas = {1, 2, 3, 4};
    cfg.f = 1;
    cfg.group = 7;
    cfg.config_service = 100;

    aom::GroupConfig group;
    group.group = 7;
    group.variant = aom::AuthVariant::kHmacVector;  // or kPublicKey
    group.trust = aom::NetworkTrust::kCrashOnly;    // or kByzantine
    group.f = 1;
    group.receivers = cfg.replicas;

    // 4. The in-network sequencer and its configuration service.
    aom::SequencerSwitch sequencer({}, root.provision(200), &keys);
    net.add_node(sequencer, 200);
    aom::ConfigService config(&keys, {&sequencer});
    net.add_node(config, 100);
    config.register_group(group);

    // 5. Replicas: each hosts the aom receiver library + the state machine.
    std::vector<std::unique_ptr<neobft::Replica>> replicas;
    for (NodeId rid : cfg.replicas) {
        auto rep = std::make_unique<neobft::Replica>(cfg, root.provision(rid), &keys,
                                                     std::make_unique<app::EchoApp>());
        net.add_node(*rep, rid);
        rep->bootstrap(group, config.current_sequencer(7));
        replicas.push_back(std::move(rep));
    }

    // 6. A client: multicasts signed requests through aom, collects 2f+1
    //    matching replies.
    neobft::Client client(cfg, root.provision(400), &config);
    net.add_node(client, 400);

    // 7. Issue three operations, closed-loop.
    std::vector<std::string> ops = {"hello", "byzantine", "world"};
    std::size_t next = 0;
    std::function<void()> issue = [&] {
        if (next >= ops.size()) return;
        std::string op = ops[next++];
        sim::Time start = sim.now();
        client.invoke(to_bytes(op), [&, op, start](Bytes result) {
            std::printf("  committed \"%s\" -> \"%s\"  (%.1f us, single round trip)\n",
                        op.c_str(), to_string(result).c_str(), sim::to_us(sim.now() - start));
            issue();
        });
    };
    issue();
    sim.run_until(sim.now() + 2 * sim::kSecond);

    // 8. Inspect the replicated state.
    std::printf("\nreplica logs:\n");
    for (auto& rep : replicas) {
        std::printf("  replica %u: %llu entries, view <%llu,%llu>, log hash %02x%02x...\n",
                    rep->id(), static_cast<unsigned long long>(rep->log().size()),
                    static_cast<unsigned long long>(rep->view().epoch),
                    static_cast<unsigned long long>(rep->view().leader),
                    rep->log().hash_at(rep->log().size())[0],
                    rep->log().hash_at(rep->log().size())[1]);
    }
    std::printf("\nno replica-to-replica messages were needed: ordering came from aom.\n");
    return 0;
}
