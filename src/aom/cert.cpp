#include "aom/cert.hpp"

#include <unordered_set>

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace neo::aom {

namespace {
constexpr std::size_t kMaxVectorEntries = 256;
constexpr std::size_t kMaxChainLinks = 4'096;
constexpr std::size_t kMaxConfirms = 512;
constexpr std::size_t kMaxPayload = 1u << 20;

void put_digest(Writer& w, const Digest32& d) { w.raw(BytesView(d.data(), d.size())); }
}  // namespace

Bytes OrderingCert::serialize() const {
    Writer w(192 + payload.size() + chain.size() * 72 + confirms.size() * 72);
    w.u8(static_cast<std::uint8_t>(variant));
    w.u32(group);
    w.u64(epoch);
    w.u64(seq);
    put_digest(w, digest);
    w.blob(payload);

    w.u32(static_cast<std::uint32_t>(macs.size()));
    for (std::uint32_t m : macs) w.u32(m);

    w.u32(static_cast<std::uint32_t>(chain.size()));
    for (const auto& link : chain) {
        w.u64(link.seq);
        put_digest(w, link.digest);
        put_digest(w, link.prev_chain);
    }
    w.blob(signature);

    w.u32(static_cast<std::uint32_t>(confirms.size()));
    for (const auto& c : confirms) {
        w.u32(c.node);
        w.blob(c.signature);
    }
    return std::move(w).take();
}

OrderingCert OrderingCert::parse(Reader& r) {
    OrderingCert c;
    std::uint8_t variant = r.u8();
    if (variant != static_cast<std::uint8_t>(AuthVariant::kHmacVector) &&
        variant != static_cast<std::uint8_t>(AuthVariant::kPublicKey)) {
        throw CodecError("bad auth variant");
    }
    c.variant = static_cast<AuthVariant>(variant);
    c.group = r.u32();
    c.epoch = r.u64();
    c.seq = r.u64();
    c.digest = r.digest32();
    c.payload = r.blob(kMaxPayload);

    std::uint32_t n_macs = r.u32();
    if (n_macs > kMaxVectorEntries) throw CodecError("oversized MAC vector");
    c.macs.reserve(n_macs);
    for (std::uint32_t i = 0; i < n_macs; ++i) c.macs.push_back(r.u32());

    std::uint32_t n_links = r.u32();
    if (n_links > kMaxChainLinks) throw CodecError("oversized chain");
    c.chain.reserve(n_links);
    for (std::uint32_t i = 0; i < n_links; ++i) {
        ChainLink link;
        link.seq = r.u64();
        link.digest = r.digest32();
        link.prev_chain = r.digest32();
        c.chain.push_back(link);
    }
    c.signature = r.blob(256);

    std::uint32_t n_confirms = r.u32();
    if (n_confirms > kMaxConfirms) throw CodecError("oversized confirm set");
    c.confirms.reserve(n_confirms);
    for (std::uint32_t i = 0; i < n_confirms; ++i) {
        ConfirmSig s;
        s.node = r.u32();
        s.signature = r.blob(256);
        c.confirms.push_back(std::move(s));
    }
    return c;
}

OrderingCert OrderingCert::parse_bytes(BytesView b) {
    Reader r(b);
    OrderingCert c = parse(r);
    r.expect_end();
    return c;
}

namespace {

bool verify_hm(const OrderingCert& cert, const VerifyContext& ctx, NodeId sequencer) {
    int idx = ctx.cfg->receiver_index(ctx.self);
    if (idx < 0) return false;
    if (cert.macs.size() != ctx.cfg->receivers.size()) return false;

    crypto::HalfSipKey key = ctx.keys->hm_key(sequencer, ctx.self);
    Bytes input = auth_input(cert.group, cert.epoch, cert.seq, cert.digest);
    ctx.crypto->meter().macs++;
    ctx.crypto->meter().charge(ctx.crypto->root().costs().mac_ns);
    std::uint32_t expect = crypto::halfsiphash24(key, input);
    return cert.macs[static_cast<std::size_t>(idx)] == expect;
}

bool verify_pk(const OrderingCert& cert, const VerifyContext& ctx, NodeId sequencer) {
    if (cert.chain.empty()) return false;
    if (cert.chain.front().seq != cert.seq) return false;
    if (cert.chain.front().digest != cert.digest) return false;
    for (std::size_t i = 1; i < cert.chain.size(); ++i) {
        if (cert.chain[i].seq != cert.chain[i - 1].seq + 1) return false;
    }

    // Signature covers the chain value of the LAST link.
    const auto& last = cert.chain.back();
    Digest32 c_last = chain_next(last.prev_chain, cert.group, cert.epoch, last.seq, last.digest);
    ctx.crypto->meter().hashes++;
    if (!ctx.crypto->verify(sequencer, BytesView(c_last.data(), c_last.size()), cert.signature)) {
        return false;
    }

    // Walk backwards: link i's chain value must equal link i+1's prev field.
    Digest32 expected_c = last.prev_chain;
    for (std::size_t i = cert.chain.size() - 1; i-- > 0;) {
        const auto& link = cert.chain[i];
        Digest32 c_i = chain_next(link.prev_chain, cert.group, cert.epoch, link.seq, link.digest);
        ctx.crypto->meter().hashes++;
        ctx.crypto->meter().charge(ctx.crypto->root().costs().hash_base_ns);
        if (c_i != expected_c) return false;
        expected_c = link.prev_chain;
    }
    return true;
}

bool verify_confirms(const OrderingCert& cert, const VerifyContext& ctx) {
    std::size_t quorum = static_cast<std::size_t>(2 * ctx.cfg->f + 1);
    if (cert.confirms.size() < quorum) return false;
    Bytes body = confirm_input(cert.group, cert.epoch, cert.seq, cert.digest);
    std::unordered_set<NodeId> seen;
    std::size_t valid = 0;
    for (const auto& c : cert.confirms) {
        if (ctx.cfg->receiver_index(c.node) < 0) continue;
        if (!seen.insert(c.node).second) continue;
        if (!ctx.crypto->verify(c.node, body, c.signature)) continue;
        ++valid;
        if (valid >= quorum) return true;
    }
    return false;
}

}  // namespace

bool verify_cert(const OrderingCert& cert, const VerifyContext& ctx) {
    NEO_ASSERT(ctx.cfg != nullptr && ctx.crypto != nullptr && ctx.keys != nullptr);
    if (cert.group != ctx.cfg->group) return false;
    if (cert.seq == 0) return false;

    // Payload integrity.
    if (ctx.crypto->hash(cert.payload) != cert.digest) return false;

    NodeId sequencer = ctx.sequencer_for_epoch ? ctx.sequencer_for_epoch(cert.epoch) : kInvalidNode;
    if (sequencer == kInvalidNode) return false;

    bool auth_ok = false;
    switch (cert.variant) {
        case AuthVariant::kHmacVector:
            auth_ok = verify_hm(cert, ctx, sequencer);
            break;
        case AuthVariant::kPublicKey:
            auth_ok = verify_pk(cert, ctx, sequencer);
            break;
    }
    if (!auth_ok) return false;

    if (ctx.cfg->trust == NetworkTrust::kByzantine) {
        return verify_confirms(cert, ctx);
    }
    return true;
}

}  // namespace neo::aom
