// Ordering certificates (§4.2): the publicly verifiable proof that an aom
// message was sequenced by the network.
//
//  - HM variant: the stamped header plus the complete HMAC vector. Any
//    receiver can verify its own vector entry (transferable authentication).
//  - PK variant: the stamped header plus the hash-chain links from this
//    message up to the nearest signed packet, whose signature covers the
//    whole suffix (reverse-order batch verification, §4.4).
//  - Byzantine network mode additionally attaches 2f+1 signed confirms.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "aom/keys.hpp"
#include "aom/types.hpp"
#include "aom/wire.hpp"
#include "crypto/identity.hpp"

namespace neo::aom {

struct ConfirmSig {
    NodeId node = 0;
    Bytes signature;
};

struct OrderingCert {
    AuthVariant variant = AuthVariant::kHmacVector;
    GroupId group = 0;
    EpochNum epoch = 0;
    SeqNum seq = 0;
    Digest32 digest{};
    Bytes payload;

    // HM: full MAC vector, one entry per receiver slot.
    std::vector<std::uint32_t> macs;

    // PK: chain links; chain[0] describes this message, the last link is the
    // signed packet. `signature` covers the last link's chain value.
    struct ChainLink {
        SeqNum seq = 0;
        Digest32 digest{};
        Digest32 prev_chain{};
    };
    std::vector<ChainLink> chain;
    Bytes signature;

    // Byzantine network mode: 2f+1 matching confirms.
    std::vector<ConfirmSig> confirms;

    Bytes serialize() const;
    static OrderingCert parse(Reader& r);  // throws CodecError
    static OrderingCert parse_bytes(BytesView b);
};

/// Everything a receiver needs to verify certificates, including ones from
/// earlier epochs (view changes transfer old-epoch certificates).
struct VerifyContext {
    const GroupConfig* cfg = nullptr;
    NodeId self = kInvalidNode;
    crypto::NodeCrypto* crypto = nullptr;
    const AomKeyService* keys = nullptr;
    /// Resolves the sequencer switch that owned `epoch` (kInvalidNode if
    /// unknown -> verification fails).
    std::function<NodeId(EpochNum)> sequencer_for_epoch;
};

/// Full verification: payload digest, variant authentication (own MAC entry
/// or chain + signature), and — when the group runs under a Byzantine
/// network model — the 2f+1 confirm quorum. Charges the context's crypto
/// meter like a real receiver would.
bool verify_cert(const OrderingCert& cert, const VerifyContext& ctx);

}  // namespace neo::aom
