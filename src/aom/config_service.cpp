#include "aom/config_service.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"

namespace neo::aom {

void ConfigService::register_group(const GroupConfig& group, std::size_t initial_switch) {
    NEO_ASSERT_MSG(!pool_.empty(), "config service needs at least one switch");
    NEO_ASSERT_MSG(!groups_.contains(group.group), "group already registered");
    NEO_ASSERT_MSG(initial_switch < pool_.size(), "initial switch outside the pool");
    GroupState gs;
    gs.cfg = group;
    gs.epoch = 1;
    gs.switch_index = initial_switch;
    pool_[initial_switch]->install_group(group, gs.epoch);
    groups_[group.group] = std::move(gs);
}

std::vector<GroupConfig> ConfigService::sharded_groups() const {
    std::vector<GroupConfig> out;
    for (const auto& [gid, gs] : groups_) {
        if (gs.cfg.key_lo != 0 || gs.cfg.key_hi != 0) out.push_back(gs.cfg);
    }
    return out;
}

NodeId ConfigService::current_sequencer(GroupId group) const {
    auto it = groups_.find(group);
    if (it == groups_.end()) return kInvalidNode;
    return pool_[it->second.switch_index]->id();
}

EpochNum ConfigService::current_epoch(GroupId group) const {
    auto it = groups_.find(group);
    return it != groups_.end() ? it->second.epoch : 0;
}

const GroupConfig& ConfigService::group_config(GroupId group) const {
    auto it = groups_.find(group);
    NEO_ASSERT_MSG(it != groups_.end(), "unknown group");
    return it->second.cfg;
}

void ConfigService::handle(NodeId from, BytesView data) {
    auto kind = peek_kind(data);
    if (!kind || *kind != static_cast<std::uint8_t>(Wire::kFailoverReq)) return;

    FailoverRequest req;
    try {
        Reader r(data.subspan(1));
        req = FailoverRequest::parse(r);
    } catch (const CodecError&) {
        return;
    }
    if (req.sender != from) return;  // spoofed sender field

    auto it = groups_.find(req.group);
    if (it == groups_.end()) return;
    GroupState& gs = it->second;
    if (req.next_epoch <= gs.epoch) return;  // stale
    if (gs.cfg.receiver_index(from) < 0) return;  // only group members may ask

    gs.failover_requests[req.next_epoch].insert(from);

    // f+1 distinct receivers guarantee at least one correct replica wants
    // the failover; Byzantine receivers alone cannot trigger churn.
    std::size_t threshold = static_cast<std::size_t>(gs.cfg.f + 1);
    if (!gs.reconfig_in_progress &&
        gs.failover_requests[req.next_epoch].size() >= threshold) {
        start_reconfig(gs, req.next_epoch);
    }
}

void ConfigService::force_failover(GroupId group) {
    auto it = groups_.find(group);
    NEO_ASSERT_MSG(it != groups_.end(), "unknown group");
    if (!it->second.reconfig_in_progress) {
        start_reconfig(it->second, it->second.epoch + 1);
    }
}

void ConfigService::start_reconfig(GroupState& gs, EpochNum next_epoch) {
    gs.reconfig_in_progress = true;
    GroupId group = gs.cfg.group;

    // The commit mutates cross-node shared state — switch group tables and
    // the directory entries clients read on every send — so it must run as
    // a GLOBAL event (between parallel windows, workers parked), not a
    // node-local timer. reconfig_delay_ (ms) dwarfs the lookahead (µs), so
    // the node-scheduled-global contract holds.
    sim().at_global(sim().now() + reconfig_delay_, [this, group, next_epoch] {
        auto it = groups_.find(group);
        if (it == groups_.end()) return;
        GroupState& gs2 = it->second;

        pool_[gs2.switch_index]->remove_group(group);
        gs2.switch_index = (gs2.switch_index + 1) % pool_.size();
        gs2.epoch = next_epoch;
        pool_[gs2.switch_index]->install_group(gs2.cfg, gs2.epoch);
        gs2.reconfig_in_progress = false;
        gs2.failover_requests.erase(gs2.failover_requests.begin(),
                                    gs2.failover_requests.upper_bound(next_epoch));
        ++failovers_performed_;

        NewEpochAnnouncement ann;
        ann.group = group;
        ann.epoch = next_epoch;
        ann.sequencer = pool_[gs2.switch_index]->id();
        sim::Packet wire(ann.serialize());
        for (NodeId r : gs2.cfg.receivers) send_to(r, wire);

        NEO_INFO("config-service: group " << group << " failed over to switch "
                                          << ann.sequencer << " epoch " << next_epoch);
    });
    NEO_INFO("config-service: reconfiguring group " << gs.cfg.group << " for epoch "
                                                    << next_epoch);
}

}  // namespace neo::aom
