// aom configuration service (§4.1, §4.2).
//
// Owns group membership, key provisioning and sequencer assignment. On
// receiving f+1 distinct failover requests for the next epoch it installs
// the group on the next switch in the pool (after a reconfiguration delay
// modelling the network-level routing updates the paper measured at the
// bulk of the ~100 ms failover, §6.4) and announces the new epoch to all
// receivers.
//
// Per §5.1 the service itself follows the standard trusted-infrastructure
// assumption: it is modelled as a correct, always-available node.
#pragma once

#include <map>
#include <set>
#include <vector>

#include "aom/keys.hpp"
#include "aom/sender.hpp"
#include "aom/sequencer.hpp"
#include "aom/types.hpp"
#include "sim/processing_node.hpp"

namespace neo::aom {

class ConfigService : public sim::ProcessingNode, public SequencerDirectory {
  public:
    ConfigService(AomKeyService* keys, std::vector<SequencerSwitch*> switch_pool,
                  sim::Time reconfig_delay = 50 * sim::kMillisecond)
        : keys_(keys), pool_(std::move(switch_pool)), reconfig_delay_(reconfig_delay) {}

    /// Registers a group and installs it on pool switch `initial_switch`
    /// at epoch 1. Sharded deployments spread their N groups across the
    /// pool (one sequencer per shard); the pool is still shared, so a
    /// failover moves a group to the next switch round-robin.
    void register_group(const GroupConfig& group, std::size_t initial_switch = 0);

    /// Every registered group that owns a keyspace range (key_lo/key_hi
    /// set), in GroupId order — the table a ShardRouter is built from.
    std::vector<GroupConfig> sharded_groups() const;

    // SequencerDirectory.
    NodeId current_sequencer(GroupId group) const override;
    EpochNum current_epoch(GroupId group) const override;

    const AomKeyService* key_service() const { return keys_; }
    const GroupConfig& group_config(GroupId group) const;

    /// Test/bench hook: forces an immediate failover without waiting for
    /// receiver quorum (e.g. operator-driven maintenance).
    void force_failover(GroupId group);

    std::uint64_t failovers_performed() const { return failovers_performed_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct GroupState {
        GroupConfig cfg;
        EpochNum epoch = 0;
        std::size_t switch_index = 0;
        bool reconfig_in_progress = false;
        /// next_epoch -> distinct requesting receivers.
        std::map<EpochNum, std::set<NodeId>> failover_requests;
    };

    void start_reconfig(GroupState& gs, EpochNum next_epoch);

    AomKeyService* keys_;
    std::vector<SequencerSwitch*> pool_;
    sim::Time reconfig_delay_;
    std::map<GroupId, GroupState> groups_;
    std::uint64_t failovers_performed_ = 0;
};

}  // namespace neo::aom
