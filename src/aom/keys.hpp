// Symmetric key provisioning for the aom-hm variant.
//
// The paper's receivers run a key-exchange protocol with the sequencer
// switch, facilitated by the configuration service (§4.3). Here the
// configuration service derives each (switch, receiver) key from a master
// secret and hands it to exactly those two parties; the derivation function
// is deterministic so failover to a new switch re-provisions keys without
// extra state.
#pragma once

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/siphash.hpp"

namespace neo::aom {

class AomKeyService {
  public:
    explicit AomKeyService(std::uint64_t seed) {
        Bytes s(8);
        for (int i = 0; i < 8; ++i) s[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(seed >> (8 * i));
        Digest32 d = crypto::hmac_sha256(to_bytes("aom-key-service"), s);
        master_.assign(d.begin(), d.end());
    }

    /// The HalfSipHash key shared by sequencer `switch_id` and `receiver`.
    crypto::HalfSipKey hm_key(NodeId switch_id, NodeId receiver) const {
        Writer w(24);
        w.str("aom-hm");
        w.u32(switch_id);
        w.u32(receiver);
        Digest32 d = crypto::hmac_sha256(master_, w.bytes());
        return crypto::HalfSipKey::from_bytes(BytesView(d.data(), 8));
    }

  private:
    Bytes master_;
};

}  // namespace neo::aom
