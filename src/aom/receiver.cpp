#include "aom/receiver.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace neo::aom {

AomReceiver::AomReceiver(GroupConfig group, NodeId self, crypto::NodeCrypto* crypto,
                         const AomKeyService* keys, ReceiverHost* host, ReceiverOptions opts)
    : group_(std::move(group)), self_(self), crypto_(crypto), keys_(keys), host_(host),
      opts_(opts), confirm_ctrl_(opts.confirm_policy()) {
    NEO_ASSERT_MSG(group_.receiver_index(self_) >= 0, "receiver must be a group member");
}

NodeId AomReceiver::sequencer_for_epoch(EpochNum e) const {
    auto it = epoch_sequencers_.find(e);
    return it != epoch_sequencers_.end() ? it->second : kInvalidNode;
}

std::optional<NodeId> AomReceiver::announced_sequencer(EpochNum e) const {
    auto it = announced_.find(e);
    if (it == announced_.end()) return std::nullopt;
    return it->second;
}

void AomReceiver::start_epoch(EpochNum epoch, NodeId sequencer) {
    NEO_ASSERT_MSG(epoch >= epoch_, "epochs only move forward");
    epoch_ = epoch;
    epoch_sequencers_[epoch] = sequencer;
    next_seq_ = 1;
    pending_.clear();
    auth_chain_.clear();
    auth_chain_sigs_.clear();
    confirm_outbox_.clear();
    if (gap_timer_armed_) {
        host_->aom_cancel_timer(gap_timer_id_);
        gap_timer_armed_ = false;
    }
}

void AomReceiver::resume_mid_epoch(EpochNum epoch, NodeId sequencer) {
    NEO_ASSERT_MSG(epoch >= epoch_, "epochs only move forward");
    epoch_ = epoch;
    if (sequencer != kInvalidNode) epoch_sequencers_[epoch] = sequencer;
    next_seq_ = 0;  // adopt-first sentinel (resolved in try_deliver)
    pending_.clear();
    auth_chain_.clear();
    auth_chain_sigs_.clear();
    confirm_outbox_.clear();
    // The host invalidated every timer at crash time; just drop the flags.
    confirm_timer_armed_ = false;
    gap_timer_armed_ = false;
}

VerifyContext AomReceiver::verify_context() const {
    VerifyContext ctx;
    ctx.cfg = &group_;
    ctx.self = self_;
    ctx.crypto = crypto_;
    ctx.keys = keys_;
    ctx.sequencer_for_epoch = [this](EpochNum e) {
        NodeId s = sequencer_for_epoch(e);
        if (s != kInvalidNode) return s;
        auto it = announced_.find(e);
        return it != announced_.end() ? it->second : kInvalidNode;
    };
    return ctx;
}

void AomReceiver::on_packet(NodeId from, BytesView data) {
    auto kind = peek_kind(data);
    if (!kind) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<Wire>(*kind)) {
            case Wire::kSeqHm:
                handle_hm(HmPacket::parse(r));
                break;
            case Wire::kSeqPk:
            case Wire::kCheckpoint:
                handle_pk(PkPacket::parse(r));
                break;
            case Wire::kConfirm:
                handle_confirm(from, ConfirmPacket::parse(r));
                break;
            case Wire::kNewEpoch: {
                NewEpochAnnouncement ann = NewEpochAnnouncement::parse(r);
                if (ann.group != group_.group) return;
                announced_[ann.epoch] = ann.sequencer;
                if (on_new_epoch_) on_new_epoch_(ann.epoch, ann.sequencer);
                break;
            }
            default:
                break;
        }
    } catch (const CodecError&) {
        ++rejected_packets_;
    }
}

// ---------- HM variant ----------

void AomReceiver::handle_hm(const HmPacket& pkt) {
    if (pkt.group != group_.group || pkt.epoch != epoch_) return;
    if (pkt.seq < next_seq_) return;  // already resolved

    int receivers = static_cast<int>(group_.receivers.size());
    int expect_subgroups = hm_subgroup_count(receivers);
    if (pkt.n_subgroups != expect_subgroups) {
        ++rejected_packets_;
        return;
    }
    int base_slot = static_cast<int>(pkt.subgroup) * kHmSubgroupSize;
    int expect_macs = std::min(receivers - base_slot, kHmSubgroupSize);
    if (static_cast<int>(pkt.macs.size()) != expect_macs) {
        ++rejected_packets_;
        return;
    }

    // The sequencer authenticates the digest, not the payload bytes; check
    // the binding before trusting the payload (end-to-end integrity).
    if (crypto_->hash(pkt.payload) != pkt.digest) {
        ++rejected_packets_;
        return;
    }

    int my_slot = group_.receiver_index(self_);

    // If this subgroup packet covers our slot, verify our MAC entry before
    // trusting anything in it.
    if (my_slot >= base_slot && my_slot < base_slot + expect_macs) {
        crypto::HalfSipKey key = keys_->hm_key(sequencer_for_epoch(pkt.epoch), self_);
        Bytes input = auth_input(pkt.group, pkt.epoch, pkt.seq, pkt.digest);
        crypto_->meter().macs++;
        crypto_->meter().charge(crypto_->root().costs().mac_ns);
        std::uint32_t expect = crypto::halfsiphash24(key, input);
        if (pkt.macs[static_cast<std::size_t>(my_slot - base_slot)] != expect) {
            ++rejected_packets_;
            return;
        }
    }

    Pending& p = pending_[pkt.seq];
    if (p.have_packet && p.digest != pkt.digest) {
        // Conflicting content for the same sequence number: keep the first
        // (§4.2 — receivers ignore subsequent messages with the same seq).
        ++rejected_packets_;
        return;
    }
    if (!p.have_packet) {
        p.digest = pkt.digest;
        p.payload = pkt.payload;
        p.macs.assign(group_.receivers.size(), 0);
        p.n_subgroups = pkt.n_subgroups;
        p.have_packet = true;
        p.first_seen = host_->aom_now();
    }
    for (std::size_t i = 0; i < pkt.macs.size(); ++i) {
        p.macs[static_cast<std::size_t>(base_slot) + i] = pkt.macs[i];
    }
    p.subgroups_seen |= (1u << pkt.subgroup);

    int my_subgroup = my_slot / kHmSubgroupSize;
    if (static_cast<int>(pkt.subgroup) == my_subgroup) p.own_mac_ok = true;

    std::uint32_t full_mask = (pkt.n_subgroups >= 32)
                                  ? 0xffffffffu
                                  : ((1u << pkt.n_subgroups) - 1);
    if (p.own_mac_ok && (p.subgroups_seen & full_mask) == full_mask && !p.authenticated) {
        p.authenticated = true;
        after_authenticated(pkt.seq);
    }
    try_deliver();
    arm_gap_timer();
}

// ---------- PK variant ----------

void AomReceiver::handle_pk(const PkPacket& pkt) {
    if (pkt.group != group_.group || pkt.epoch != epoch_) return;
    if (pkt.seq < next_seq_) return;

    // Digest/payload binding (checkpoints carry no payload).
    if (!pkt.checkpoint && crypto_->hash(pkt.payload) != pkt.digest) {
        ++rejected_packets_;
        return;
    }

    if (!pkt.signature.empty()) {
        // Verify the signature over the chain value computed from the
        // packet's own fields. A valid signature authenticates this packet
        // AND its prev_chain field (the anchor for reverse validation).
        Digest32 c = chain_next(pkt.prev_chain, pkt.group, pkt.epoch, pkt.seq, pkt.digest);
        crypto_->meter().hashes++;
        crypto_->meter().charge(crypto_->root().costs().hash_base_ns);
        if (!crypto_->verify(sequencer_for_epoch(pkt.epoch), BytesView(c.data(), c.size()),
                             pkt.signature)) {
            ++rejected_packets_;
            return;
        }
        auth_chain_[pkt.seq] = c;
        auth_chain_sigs_[pkt.seq] = pkt.signature;
        if (pkt.seq > 1) auth_chain_[pkt.seq - 1] = pkt.prev_chain;
    }

    if (!pkt.checkpoint) {
        Pending& p = pending_[pkt.seq];
        if (p.have_packet && p.digest != pkt.digest) {
            if (pkt.signature.empty()) {
                // Unsigned conflicting content: keep the first arrival.
                ++rejected_packets_;
                return;
            }
            // The incoming packet is signature-verified, so the previously
            // buffered content was forged — replace it.
            p = Pending{};
        }
        if (!p.have_packet) {
            p.digest = pkt.digest;
            p.payload = pkt.payload;
            p.prev_chain = pkt.prev_chain;
            p.signature = pkt.signature;
            p.have_packet = true;
            p.first_seen = host_->aom_now();
        } else if (p.signature.empty() && !pkt.signature.empty()) {
            p.signature = pkt.signature;
        }
    }

    pk_propagate_auth();
    try_deliver();
    arm_gap_timer();
}

void AomReceiver::pk_propagate_auth() {
    // Authentication flows strictly backwards from signed chain values:
    // if C_s is authenticated and we hold packet s whose fields hash to
    // C_s, then packet s is authentic and its prev field gives C_{s-1}.
    bool progress = true;
    while (progress) {
        progress = false;
        for (auto it = auth_chain_.rbegin(); it != auth_chain_.rend(); ++it) {
            SeqNum seq = it->first;
            if (seq < next_seq_) continue;
            auto pit = pending_.find(seq);
            if (pit == pending_.end() || !pit->second.have_packet || pit->second.authenticated) {
                continue;
            }
            Pending& p = pit->second;
            Digest32 c =
                chain_next(p.prev_chain, group_.group, epoch_, seq, p.digest);
            crypto_->meter().hashes++;
            crypto_->meter().charge(crypto_->root().costs().hash_base_ns);
            if (c != it->second) continue;  // mismatch: forged or conflicting
            p.authenticated = true;
            if (seq > 1 && !auth_chain_.contains(seq - 1)) {
                auth_chain_[seq - 1] = p.prev_chain;
                progress = true;
            }

            // Build the transferable certificate chain: either this packet
            // carries/earned its own signature, or it extends the suffix
            // certificate of seq+1.
            OrderingCert::ChainLink link{seq, p.digest, p.prev_chain};
            auto sit = auth_chain_sigs_.find(seq);
            if (sit != auth_chain_sigs_.end()) {
                p.cert_chain = {link};
                p.cert_signature = sit->second;
            } else {
                auto nit = pending_.find(seq + 1);
                if (nit != pending_.end() && nit->second.authenticated) {
                    p.cert_chain = {link};
                    p.cert_chain.insert(p.cert_chain.end(), nit->second.cert_chain.begin(),
                                        nit->second.cert_chain.end());
                    p.cert_signature = nit->second.cert_signature;
                } else {
                    // No certificate path (shouldn't happen: authentication
                    // came from somewhere); mark unauthenticated again.
                    p.authenticated = false;
                    continue;
                }
            }
            after_authenticated(seq);
            progress = true;
        }
    }
}

// ---------- Byzantine-network confirm protocol ----------

void AomReceiver::after_authenticated(SeqNum seq) {
    if (group_.trust != NetworkTrust::kByzantine) return;
    Pending& p = pending_[seq];
    if (p.confirm_sent) return;
    p.confirm_sent = true;
    queue_own_confirm(seq, p.digest);
}

void AomReceiver::queue_own_confirm(SeqNum seq, const Digest32& digest) {
    Bytes sig = crypto_->sign(confirm_input(group_.group, epoch_, seq, digest));

    // Record our own confirm locally (we count toward the quorum).
    Pending& p = pending_[seq];
    p.confirms[digest].insert(self_);
    p.confirm_sigs[self_] = sig;

    ConfirmPacket::Entry e;
    e.seq = seq;
    e.digest = digest;
    e.signature = std::move(sig);
    confirm_outbox_.push_back(std::move(e));

    if (confirm_outbox_.size() >= confirm_ctrl_.target()) {
        flush_confirms();
    } else if (!confirm_timer_armed_) {
        confirm_timer_armed_ = true;
        host_->aom_set_timer(confirm_ctrl_.flush_delay(), [this] {
            confirm_timer_armed_ = false;
            flush_confirms();
        }, "confirm_flush");
    }
}

void AomReceiver::flush_confirms() {
    if (confirm_outbox_.empty()) return;
    confirm_ctrl_.on_seal(confirm_outbox_.size(),
                          confirm_outbox_.size() >= confirm_ctrl_.target());
    crypto_->meter().charge(crypto_->root().costs().batch_seal_ns);
    if (obs::TraceSink* tr = host_->aom_trace()) {
        tr->batch(host_->aom_now(), self_, "confirm_batch", confirm_outbox_.size());
    }
    ConfirmPacket pkt;
    pkt.sender = self_;
    pkt.group = group_.group;
    pkt.epoch = epoch_;
    pkt.entries = std::move(confirm_outbox_);
    confirm_outbox_.clear();
    Bytes wire = pkt.serialize();
    for (NodeId r : group_.receivers) {
        if (r != self_) host_->aom_send(r, wire);
    }
}

void AomReceiver::handle_confirm(NodeId from, const ConfirmPacket& pkt) {
    if (group_.trust != NetworkTrust::kByzantine) return;
    if (pkt.group != group_.group || pkt.epoch != epoch_) return;
    if (pkt.sender != from || group_.receiver_index(from) < 0) return;

    // Verify the whole batch with one dispatch (worker cores absorb the
    // per-signature work; this is what keeps Neo-BN's throughput high,
    // §6.2 "batch processing confirm messages").
    constexpr SeqNum kMaxConfirmLookahead = 10'000;
    std::vector<crypto::NodeCrypto::BatchItem> batch;
    std::vector<const ConfirmPacket::Entry*> accepted;
    for (const auto& e : pkt.entries) {
        if (e.seq < next_seq_ || e.seq > next_seq_ + kMaxConfirmLookahead) continue;
        batch.push_back({from, confirm_input(group_.group, epoch_, e.seq, e.digest),
                         e.signature});
        accepted.push_back(&e);
    }
    std::vector<bool> valid = crypto_->verify_batch(batch);
    for (std::size_t i = 0; i < accepted.size(); ++i) {
        if (!valid[i]) {
            ++rejected_packets_;
            continue;
        }
        const auto& e = *accepted[i];
        Pending& p = pending_[e.seq];
        p.confirms[e.digest].insert(from);
        p.confirm_sigs[from] = e.signature;
    }
    try_deliver();
    arm_gap_timer();
}

// ---------- delivery ----------

bool AomReceiver::deliverable(const Pending& p) const {
    if (!p.authenticated) return false;
    if (group_.trust == NetworkTrust::kByzantine) {
        auto it = p.confirms.find(p.digest);
        std::size_t quorum = static_cast<std::size_t>(2 * group_.f + 1);
        if (it == p.confirms.end() || it->second.size() < quorum) return false;
    }
    return true;
}

OrderingCert AomReceiver::build_cert(SeqNum seq, const Pending& p) const {
    OrderingCert cert;
    cert.variant = group_.variant;
    cert.group = group_.group;
    cert.epoch = epoch_;
    cert.seq = seq;
    cert.digest = p.digest;
    cert.payload = p.payload;
    if (group_.variant == AuthVariant::kHmacVector) {
        cert.macs = p.macs;
    } else {
        cert.chain = p.cert_chain;
        cert.signature = p.cert_signature;
    }
    if (group_.trust == NetworkTrust::kByzantine) {
        auto it = p.confirms.find(p.digest);
        NEO_ASSERT(it != p.confirms.end());
        for (NodeId node : it->second) {
            auto sit = p.confirm_sigs.find(node);
            if (sit != p.confirm_sigs.end()) {
                cert.confirms.push_back(ConfirmSig{node, sit->second});
            }
        }
    }
    return cert;
}

void AomReceiver::try_deliver() {
    if (next_seq_ == 0) {
        // Mid-epoch resume: adopt the lowest deliverable sequence number as
        // the delivery frontier; everything below it is only reachable via
        // the protocol's state transfer.
        for (const auto& [seq, p] : pending_) {
            if (deliverable(p)) {
                next_seq_ = seq;
                break;
            }
        }
        if (next_seq_ == 0) return;
    }
    while (true) {
        auto it = pending_.find(next_seq_);
        if (it == pending_.end() || !deliverable(it->second)) break;

        Delivery d;
        d.kind = Delivery::Kind::kMessage;
        d.epoch = epoch_;
        d.seq = next_seq_;
        d.payload = it->second.payload;
        d.cert = build_cert(next_seq_, it->second);
        if (obs::TraceSink* tr = host_->aom_trace()) {
            // "deliver" span: first packet for this seq -> in-order delivery
            // to the application. Both events are recorded here (delivery
            // time) on this node, keeping begin/end balanced and partition-
            // local; the begin's t is the buffered first-arrival time.
            std::uint64_t tid = obs::trace_id(d.payload);
            sim::Time begin =
                it->second.first_seen >= 0 ? it->second.first_seen : host_->aom_now();
            tr->span_begin(begin, self_, "deliver", tid, next_seq_);
            tr->span_end(host_->aom_now(), self_, "deliver", tid, next_seq_);
        }
        pending_.erase(it);
        ++next_seq_;
        ++delivered_messages_;
        // Prune chain bookkeeping below the delivery frontier (keep one
        // entry of slack for prev-chain linkage).
        while (!auth_chain_.empty() && auth_chain_.begin()->first + 1 < next_seq_) {
            auth_chain_.erase(auth_chain_.begin());
        }
        while (!auth_chain_sigs_.empty() && auth_chain_sigs_.begin()->first + 1 < next_seq_) {
            auth_chain_sigs_.erase(auth_chain_sigs_.begin());
        }
        if (gap_timer_armed_) {
            host_->aom_cancel_timer(gap_timer_id_);
            gap_timer_armed_ = false;
        }
        if (deliver_) deliver_(std::move(d));
    }
    arm_gap_timer();
}

void AomReceiver::arm_gap_timer() {
    if (gap_timer_armed_) return;
    if (next_seq_ == 0) return;  // mid-epoch resume: no frontier yet
    // A gap exists if anything beyond next_seq_ is waiting (a pending
    // packet, an authenticated chain value, or a confirm-only entry).
    bool has_later = false;
    for (const auto& [seq, p] : pending_) {
        if (seq > next_seq_ || (seq == next_seq_ && !deliverable(p))) {
            has_later = true;
            break;
        }
    }
    if (!has_later && !auth_chain_.empty() && auth_chain_.rbegin()->first >= next_seq_) {
        has_later = true;
    }
    if (!has_later) return;

    gap_timer_armed_ = true;
    gap_timer_seq_ = next_seq_;
    gap_timer_id_ =
        host_->aom_set_timer(opts_.gap_timeout, [this] { fire_gap_timer(); }, "gap_timeout");
}

void AomReceiver::fire_gap_timer() {
    gap_timer_armed_ = false;
    if (next_seq_ == 0) return;  // resumed since arming: no frontier yet
    if (gap_timer_seq_ != next_seq_) {
        arm_gap_timer();
        return;
    }
    auto it = pending_.find(next_seq_);
    if (it != pending_.end() && deliverable(it->second)) {
        try_deliver();
        return;
    }

    // The hole persisted: hand the application a drop-notification so the
    // protocol can run its gap agreement (§5.4).
    if (obs::TraceSink* tr = host_->aom_trace()) {
        tr->phase(host_->aom_now(), self_, "aom_drop_notification", next_seq_);
    }
    Delivery d;
    d.kind = Delivery::Kind::kDropNotification;
    d.epoch = epoch_;
    d.seq = next_seq_;
    pending_.erase(next_seq_);
    ++next_seq_;
    ++delivered_drops_;
    if (deliver_) deliver_(std::move(d));
    try_deliver();
}

}  // namespace neo::aom
