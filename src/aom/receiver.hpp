// Receiver-side aom library (libAOM in Fig 1).
//
// Embedded in a host node (a NeoBFT replica, or any application endpoint).
// Responsibilities:
//  - authenticate sequencer packets (own HMAC-vector entry, or the PK hash
//    chain with reverse-order batch verification);
//  - assemble full HMAC vectors from subgroup packets so certificates are
//    transferable;
//  - deliver messages in sequence-number order, emitting drop-notification
//    for gaps that persist past a timeout;
//  - in Byzantine-network deployments, exchange signed confirm batches and
//    deliver only on a 2f+1 matching quorum (§4.2).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>

#include "aom/cert.hpp"
#include "aom/keys.hpp"
#include "aom/types.hpp"
#include "aom/wire.hpp"
#include "crypto/identity.hpp"
#include "sim/adaptive_batch.hpp"
#include "sim/time.hpp"

namespace neo::obs {
class TraceSink;
}

namespace neo::aom {

/// Host services the receiver library needs (sending confirm packets,
/// timers, current time). A ProcessingNode-based host implements these
/// trivially; the indirection keeps the library independent of the
/// simulator's node classes.
class ReceiverHost {
  public:
    virtual ~ReceiverHost() = default;
    virtual void aom_send(NodeId to, Bytes data) = 0;
    /// `label` names the timer in traces; static storage duration required.
    virtual std::uint64_t aom_set_timer(sim::Time delay, std::function<void()> fn,
                                        const char* label) = 0;
    virtual void aom_cancel_timer(std::uint64_t id) = 0;
    virtual sim::Time aom_now() const = 0;
    /// Trace sink for library-level events; nullptr disables tracing.
    virtual obs::TraceSink* aom_trace() { return nullptr; }
};

struct ReceiverOptions {
    /// How long a sequence-number hole may persist before the library
    /// delivers a drop-notification for it. Conservative relative to
    /// processing backlogs: a premature drop-notification forces the
    /// protocol into its (expensive) gap agreement.
    sim::Time gap_timeout = 1 * sim::kMillisecond;
    /// Confirm batching (Byzantine network mode). The paper sustains high
    /// Neo-BN throughput "by batch processing confirm messages" (§6.2) at
    /// the expense of latency. These are the adaptive controller's bounds:
    /// the flush interval is the latency budget (max wait of the oldest
    /// queued confirm), the max is the threshold cap the controller may
    /// grow to under load (see sim::AdaptiveBatchController).
    sim::Time confirm_flush_interval = 50 * sim::kMicrosecond;
    std::size_t confirm_batch_max = 256;

    sim::AdaptiveBatchPolicy confirm_policy() const {
        return sim::AdaptiveBatchPolicy{1, confirm_batch_max, confirm_flush_interval};
    }
};

/// What the library hands up to the application.
struct Delivery {
    enum class Kind { kMessage, kDropNotification };
    Kind kind = Kind::kMessage;
    EpochNum epoch = 0;
    SeqNum seq = 0;
    Bytes payload;       // empty for drop-notification
    OrderingCert cert;   // valid for kMessage; includes confirms when the
                         // network model is Byzantine
};

class AomReceiver {
  public:
    using DeliverFn = std::function<void(Delivery)>;

    AomReceiver(GroupConfig group, NodeId self, crypto::NodeCrypto* crypto,
                const AomKeyService* keys, ReceiverHost* host, ReceiverOptions opts = {});

    void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

    /// Routes an aom-layer packet (kSeqHm / kSeqPk / kCheckpoint /
    /// kConfirm / kNewEpoch). Malformed packets are dropped.
    void on_packet(NodeId from, BytesView data);

    /// Begins delivering from `sequencer` in `epoch` (sequence numbers
    /// restart at 1). Called at bootstrap and after the application-level
    /// protocol finishes its epoch-change agreement (§4.2 failover).
    void start_epoch(EpochNum epoch, NodeId sequencer);

    /// Rejoins `epoch` mid-stream after a crash: all buffered state is
    /// discarded and the delivery frontier is adopted from the first
    /// deliverable packet (the log below it comes via state transfer).
    /// Sequence numbers already confirmed by the peers before the resume
    /// are unreachable live and must be fetched the same way.
    void resume_mid_epoch(EpochNum epoch, NodeId sequencer);

    EpochNum epoch() const { return epoch_; }

    /// Adaptive confirm-batching controller (instrumentation).
    const sim::AdaptiveBatchController& confirm_controller() const { return confirm_ctrl_; }
    NodeId sequencer() const { return sequencer_for_epoch(epoch_); }
    NodeId sequencer_for_epoch(EpochNum e) const;
    SeqNum next_seq() const { return next_seq_; }
    const GroupConfig& group() const { return group_; }

    /// Epoch -> sequencer mappings learned from kNewEpoch announcements but
    /// not yet activated by start_epoch (the protocol decides when).
    std::optional<NodeId> announced_sequencer(EpochNum e) const;

    /// Hook invoked when a kNewEpoch announcement arrives (the protocol's
    /// cue that the configuration service completed a failover).
    void set_on_new_epoch(std::function<void(EpochNum, NodeId)> fn) {
        on_new_epoch_ = std::move(fn);
    }

    /// Verification context for certificates relayed by other receivers
    /// (QUERY-REPLY / gap messages in NeoBFT).
    VerifyContext verify_context() const;

    // Instrumentation.
    std::uint64_t delivered_messages() const { return delivered_messages_; }
    std::uint64_t delivered_drops() const { return delivered_drops_; }
    std::uint64_t rejected_packets() const { return rejected_packets_; }

  private:
    struct Pending {
        Digest32 digest{};
        Bytes payload;
        sim::Time first_seen = -1;  // arrival of the first packet for this seq
        // HM: subgroup assembly.
        std::vector<std::uint32_t> macs;        // full-vector slots (0 = missing)
        std::uint32_t subgroups_seen = 0;       // bitmask
        std::uint8_t n_subgroups = 0;
        bool own_mac_ok = false;
        // PK: chain fields.
        Digest32 prev_chain{};
        Bytes signature;                        // possibly empty
        bool have_packet = false;
        // Authentication result.
        bool authenticated = false;
        std::vector<OrderingCert::ChainLink> cert_chain;  // filled at auth (PK)
        Bytes cert_signature;
        // Byzantine mode.
        bool confirm_sent = false;
        std::map<Digest32, std::set<NodeId>> confirms;
        std::map<NodeId, Bytes> confirm_sigs;   // node -> signature over entry
    };

    void handle_hm(const HmPacket& pkt);
    void handle_pk(const PkPacket& pkt);
    void handle_confirm(NodeId from, const ConfirmPacket& pkt);
    void pk_propagate_auth();
    void after_authenticated(SeqNum seq);
    void try_deliver();
    void queue_own_confirm(SeqNum seq, const Digest32& digest);
    void flush_confirms();
    void arm_gap_timer();
    void fire_gap_timer();
    bool deliverable(const Pending& p) const;
    OrderingCert build_cert(SeqNum seq, const Pending& p) const;

    GroupConfig group_;
    NodeId self_;
    crypto::NodeCrypto* crypto_;
    const AomKeyService* keys_;
    ReceiverHost* host_;
    ReceiverOptions opts_;
    DeliverFn deliver_;
    std::function<void(EpochNum, NodeId)> on_new_epoch_;

    EpochNum epoch_ = 0;
    std::map<EpochNum, NodeId> epoch_sequencers_;   // activated epochs
    std::map<EpochNum, NodeId> announced_;          // learned, not yet active
    SeqNum next_seq_ = 1;

    std::map<SeqNum, Pending> pending_;
    std::map<SeqNum, Digest32> auth_chain_;      // seq -> authenticated C_seq (PK)
    std::map<SeqNum, Bytes> auth_chain_sigs_;    // seq -> signature over C_seq

    std::vector<ConfirmPacket::Entry> confirm_outbox_;
    sim::AdaptiveBatchController confirm_ctrl_;
    bool confirm_timer_armed_ = false;

    bool gap_timer_armed_ = false;
    std::uint64_t gap_timer_id_ = 0;
    SeqNum gap_timer_seq_ = 0;

    std::uint64_t delivered_messages_ = 0;
    std::uint64_t delivered_drops_ = 0;
    std::uint64_t rejected_packets_ = 0;
};

}  // namespace neo::aom
