// Sender-side aom library (§3.2): wraps an application payload into an aom
// data packet addressed to a group.
//
// Senders never know individual receivers — they address the group, and the
// network (modelled by the SequencerDirectory routing lookup, standing in
// for the BGP advertisement of the group address) carries the packet to the
// current sequencer switch.
#pragma once

#include "aom/wire.hpp"
#include "crypto/identity.hpp"

namespace neo::aom {

/// Routing view of the configuration service: which switch currently
/// advertises a group's address. Implemented by ConfigService.
class SequencerDirectory {
  public:
    virtual ~SequencerDirectory() = default;
    virtual NodeId current_sequencer(GroupId group) const = 0;
    virtual EpochNum current_epoch(GroupId group) const = 0;
};

class AomSender {
  public:
    AomSender(GroupId group, crypto::NodeCrypto* crypto, const SequencerDirectory* directory)
        : group_(group), crypto_(crypto), directory_(directory) {}

    /// Builds the wire packet for `payload` (computes the collision-
    /// resistant digest the switch will authenticate, §4.1).
    Bytes make_packet(BytesView payload) {
        DataPacket pkt;
        pkt.group = group_;
        pkt.digest = crypto_->hash(payload);
        pkt.payload = Bytes(payload.begin(), payload.end());
        return pkt.serialize();
    }

    /// Where the network currently routes this group's address.
    NodeId route() const { return directory_->current_sequencer(group_); }

    GroupId group() const { return group_; }

  private:
    GroupId group_;
    crypto::NodeCrypto* crypto_;
    const SequencerDirectory* directory_;
};

}  // namespace neo::aom
