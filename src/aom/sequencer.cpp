#include "aom/sequencer.hpp"

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace neo::aom {

SequencerConfig SequencerConfig::software_profile() {
    SequencerConfig cfg;
    cfg.enforce_hm_port_limit = false;  // software switch: no loopback budget
    cfg.forward_ns = 2'000;
    cfg.hm_auth_latency_ns = 4'000;  // software HMAC vector, no deep pipeline
    cfg.pk_chain_service_ns = 1'000;     // per-packet software processing
    cfg.pk_sign_service_ns = 18'000;     // CPU signing, no FPGA
    cfg.pk_sign_latency_ns = 18'000;
    cfg.precompute.refill_per_sec = 400'000.0;
    return cfg;
}

void SequencerSwitch::install_group(const GroupConfig& group, EpochNum epoch) {
    NEO_ASSERT_MSG(!cfg_.enforce_hm_port_limit ||
                       static_cast<int>(group.receivers.size()) <= kHmMaxReceivers ||
                       group.variant == AuthVariant::kPublicKey,
                   "HM variant supports at most 64 receivers (16 loopback ports)");
    NEO_ASSERT_MSG(group.group < kMaxGroupId,
                   "group address exceeds the dense routing-table bound");
    auto gs = std::make_unique<GroupState>();
    gs->cfg = group;
    gs->epoch = epoch;
    gs->next_seq = 1;
    gs->chain = chain_genesis(group.group, epoch);
    if (groups_.size() <= group.group) groups_.resize(group.group + 1);
    groups_[group.group] = std::move(gs);
}

void SequencerSwitch::remove_group(GroupId group) {
    if (group < groups_.size()) groups_[group].reset();
}

void SequencerSwitch::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".packets_sequenced", static_cast<double>(packets_sequenced_));
        r.set_value(prefix + ".signatures_generated",
                    static_cast<double>(signatures_generated_));
        r.set_value(prefix + ".signatures_skipped", static_cast<double>(signatures_skipped_));
        r.set_value(prefix + ".tail_drops", static_cast<double>(tail_drops_));
        r.set_value(prefix + ".precompute_stock", stock_);
    });
}

void SequencerSwitch::refill_stock() {
    if (!stock_initialized_) {
        stock_ = static_cast<double>(cfg_.precompute.table_capacity);
        last_refill_ = sim().now();
        stock_initialized_ = true;
        return;
    }
    sim::Time elapsed = sim().now() - last_refill_;
    last_refill_ = sim().now();
    stock_ += cfg_.precompute.refill_per_sec * sim::to_sec(elapsed);
    if (stock_ > static_cast<double>(cfg_.precompute.table_capacity)) {
        stock_ = static_cast<double>(cfg_.precompute.table_capacity);
    }
}

void SequencerSwitch::on_packet(NodeId from, const sim::Packet& wire) {
    (void)from;
    BytesView data = wire.view();
    auto kind = peek_kind(data);
    if (!kind || *kind != static_cast<std::uint8_t>(Wire::kData)) return;  // not for us

    DataPacket pkt;
    try {
        Reader r(data.subspan(1));
        pkt = DataPacket::parse(r);
    } catch (const CodecError&) {
        return;  // malformed; switches drop silently
    }

    GroupState* gsp = find_group(pkt.group);
    if (!gsp) return;  // no route for this group address
    GroupState& gs = *gsp;

    if (stalled_) return;  // faulty switch: blackholes traffic

    if (in_flight_ >= cfg_.max_queue_depth) {
        ++tail_drops_;
        if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "tail_drop");
        return;
    }

    // Pipeline occupancy (1/throughput) vs pipeline latency: the data plane
    // is deeply pipelined, so a packet occupies each stage only briefly
    // (service) but takes many passes end to end (latency). Sequence
    // numbers are assigned at ingress in arrival order.
    sim::Time service;
    sim::Time auth_latency;
    if (gs.cfg.variant == AuthVariant::kHmacVector) {
        service = sim::hm_service_ns(static_cast<int>(gs.cfg.receivers.size()));
        auth_latency = cfg_.hm_auth_latency_ns;
    } else {
        service = cfg_.pk_chain_service_ns;
        auth_latency = 0;  // chain stamping is in-line; signing latency added below
    }
    sim::Time start = std::max(sim().now(), pipe_busy_until_);
    sim::Time emit_time = start + cfg_.forward_ns + service + auth_latency;
    pipe_busy_until_ = start + service;
    ++in_flight_;
    ++packets_sequenced_;

    if (gs.cfg.variant == AuthVariant::kHmacVector) {
        process_hm(gs, pkt, emit_time);
    } else {
        process_pk(gs, pkt, emit_time);
    }
    sim().at(emit_time, [this] { --in_flight_; });
}

void SequencerSwitch::process_hm(GroupState& gs, const DataPacket& pkt, sim::Time emit_time) {
    SeqNum seq = gs.next_seq++;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->seq_stamp(sim().now(), id(), gs.cfg.group, seq, /*with_signature=*/false);
        // Request-scoped "sequence" span: ingress -> stamped emission. Both
        // boundaries are known here, so the end event (future t) is recorded
        // immediately — exports order by t, not record order.
        std::uint64_t tid = obs::trace_id(pkt.payload);
        tr->span_begin(sim().now(), id(), "sequence", tid, seq);
        tr->span_end(emit_time, id(), "sequence", tid, seq);
    }
    int receivers = static_cast<int>(gs.cfg.receivers.size());
    int subgroups = hm_subgroup_count(receivers);

    Bytes input = auth_input(gs.cfg.group, gs.epoch, seq, pkt.digest);

    // One packet per subgroup, each carrying that subgroup's MACs; all
    // packets go to all receivers so everyone can assemble the full vector
    // from the same shared buffers.
    std::vector<sim::Packet> wire_packets;
    wire_packets.reserve(static_cast<std::size_t>(subgroups));
    for (int sg = 0; sg < subgroups; ++sg) {
        HmPacket out;
        out.group = gs.cfg.group;
        out.epoch = gs.epoch;
        out.seq = seq;
        out.digest = pkt.digest;
        out.subgroup = static_cast<std::uint8_t>(sg);
        out.n_subgroups = static_cast<std::uint8_t>(subgroups);
        int lo = sg * kHmSubgroupSize;
        int hi = std::min(receivers, (sg + 1) * kHmSubgroupSize);
        if (hi - lo == kHmSubgroupSize) {
            // Full subgroup: same input, four keys — one 4-lane SipHash
            // dispatch (see crypto::halfsiphash24_x4) instead of four
            // scalar passes over the input.
            crypto::HalfSipKey keys[kHmSubgroupSize];
            std::uint32_t macs[kHmSubgroupSize];
            for (int slot = lo; slot < hi; ++slot) {
                keys[slot - lo] =
                    keys_->hm_key(id(), gs.cfg.receivers[static_cast<std::size_t>(slot)]);
            }
            crypto::halfsiphash24_x4(keys, input, macs);
            out.macs.insert(out.macs.end(), macs, macs + kHmSubgroupSize);
        } else {
            for (int slot = lo; slot < hi; ++slot) {
                crypto::HalfSipKey key =
                    keys_->hm_key(id(), gs.cfg.receivers[static_cast<std::size_t>(slot)]);
                out.macs.push_back(crypto::halfsiphash24(key, input));
            }
        }
        out.payload = pkt.payload;
        wire_packets.push_back(out.serialize());
    }

    for (NodeId receiver : gs.cfg.receivers) {
        for (const sim::Packet& wp : wire_packets) emit(receiver, emit_time, wp);
    }
}

void SequencerSwitch::process_pk(GroupState& gs, const DataPacket& pkt, sim::Time emit_time) {
    SeqNum seq = gs.next_seq++;
    Digest32 prev = gs.chain;
    Digest32 c_seq = chain_next(prev, gs.cfg.group, gs.epoch, seq, pkt.digest);
    gs.chain = c_seq;

    PkPacket out;
    out.group = gs.cfg.group;
    out.epoch = gs.epoch;
    out.seq = seq;
    out.digest = pkt.digest;
    out.prev_chain = prev;
    out.payload = pkt.payload;

    // Signing-ratio controller (§4.4): sign when the pre-computed stock is
    // above the low-water mark and the signer queue is not overloaded.
    refill_stock();
    bool signer_available = signer_busy_until_ <=
        emit_time + static_cast<sim::Time>(cfg_.pk_signer_queue) * cfg_.pk_sign_service_ns;
    // Below the low-water mark the controller rations signatures, but never
    // lets an unsigned run grow unboundedly (receivers buffer until the next
    // signature, so the run length bounds their memory and added latency).
    constexpr std::uint32_t kMaxUnsignedRun = 32;
    bool stock_ok = stock_ >= 1.0 &&
                    (stock_ >= static_cast<double>(cfg_.precompute.low_water_mark) ||
                     gs.unsigned_run >= kMaxUnsignedRun);
    sim::Time depart = emit_time;
    if (signer_available && stock_ok) {
        stock_ -= 1.0;
        signer_busy_until_ = std::max(signer_busy_until_, emit_time) + cfg_.pk_sign_service_ns;
        depart = signer_busy_until_ + cfg_.pk_sign_latency_ns;
        out.signature = crypto_->sign(BytesView(c_seq.data(), c_seq.size()));
        crypto_->meter().drain();  // switch hardware: cost modelled separately
        crypto_->meter().drain_async();
        ++signatures_generated_;
        gs.head_signed = true;
        gs.unsigned_run = 0;
    } else {
        ++signatures_skipped_;
        gs.head_signed = false;
        ++gs.unsigned_run;
    }
    gs.head_seq = seq;
    gs.head_prev = prev;
    gs.head_digest = pkt.digest;
    ++gs.checkpoint_generation;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->seq_stamp(sim().now(), id(), gs.cfg.group, seq, gs.head_signed);
        std::uint64_t tid = obs::trace_id(pkt.payload);
        tr->span_begin(sim().now(), id(), "sequence", tid, seq);
        tr->span_end(depart, id(), "sequence", tid, seq);
    }

    sim::Packet wire(out.serialize());
    for (NodeId receiver : gs.cfg.receivers) emit(receiver, depart, wire);

    if (!gs.head_signed) schedule_checkpoint(gs.cfg.group);
}

void SequencerSwitch::schedule_checkpoint(GroupId group) {
    GroupState* gsp = find_group(group);
    if (!gsp) return;
    std::uint64_t generation = gsp->checkpoint_generation;
    sim().after(cfg_.checkpoint_idle_ns, [this, group, generation] {
        GroupState* git = find_group(group);
        if (!git) return;
        GroupState& gs = *git;
        if (gs.checkpoint_generation != generation || gs.head_signed || stalled_) return;

        refill_stock();
        if (stock_ < 1.0) {
            schedule_checkpoint(group);  // try again next idle period
            return;
        }
        stock_ -= 1.0;
        Digest32 c_head =
            chain_next(gs.head_prev, gs.cfg.group, gs.epoch, gs.head_seq, gs.head_digest);
        PkPacket cp;
        cp.group = gs.cfg.group;
        cp.epoch = gs.epoch;
        cp.seq = gs.head_seq;
        cp.digest = gs.head_digest;
        cp.prev_chain = gs.head_prev;
        cp.checkpoint = true;
        cp.signature = crypto_->sign(BytesView(c_head.data(), c_head.size()));
        crypto_->meter().drain();
        crypto_->meter().drain_async();
        ++signatures_generated_;
        gs.head_signed = true;
        gs.unsigned_run = 0;
        if (obs::TraceSink* tr = sim().trace()) {
            tr->phase(sim().now(), id(), "checkpoint", gs.head_seq);
        }

        signer_busy_until_ = std::max(signer_busy_until_, sim().now()) + cfg_.pk_sign_service_ns;
        sim::Time depart = signer_busy_until_ + cfg_.pk_sign_latency_ns;
        sim::Packet wire(cp.serialize());
        for (NodeId receiver : gs.cfg.receivers) emit(receiver, depart, wire);
    });
}

}  // namespace neo::aom
