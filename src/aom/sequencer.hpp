// Emulated sequencer switch (§4.2–§4.4).
//
// Implements the Tofino data-plane algorithm exactly — per-group counters
// and epochs, HalfSipHash HMAC vectors with 4-wide subgroup packetisation,
// or secp256k1 signatures with the FPGA coprocessor's pre-compute stock,
// signing-ratio controller and SHA-256 hash chaining — while modelling the
// hardware's service times (pipeline passes, signer throughput, tail-drop
// queue) in virtual time. See DESIGN.md §1 for the substitution argument.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "aom/keys.hpp"
#include "aom/types.hpp"
#include "aom/wire.hpp"
#include "crypto/identity.hpp"
#include "sim/costs.hpp"
#include "sim/network.hpp"

namespace neo::obs {
class Registry;
}

namespace neo::aom {

struct SequencerConfig {
    /// Base parse/match-action forwarding latency.
    sim::Time forward_ns = sim::kSwitchForwardNs;
    /// Latency of the HMAC folded pipeline (occupancy is hm_service_ns;
    /// the pipeline is deep, so latency >> occupancy).
    sim::Time hm_auth_latency_ns = sim::kHmacAuthLatencyNs;
    /// PK pipeline line-rate service (hash-chain stamping).
    sim::Time pk_chain_service_ns = sim::kPkChainServiceNs;
    /// FPGA signer service time per signature (1/1.1 Mpps).
    sim::Time pk_sign_service_ns = sim::kPkSignServiceNs;
    /// Extra latency of the FPGA round trip on signed packets.
    sim::Time pk_sign_latency_ns = sim::kPkSignLatencyNs;
    /// Signer input queue bound; beyond it the controller skips signatures.
    std::size_t pk_signer_queue = 8;
    sim::PkPrecomputeConfig precompute{};
    /// Ingress tail-drop threshold (packets queued in the pipeline).
    std::size_t max_queue_depth = 4'096;
    /// Idle period after which an unsigned chain head is retro-signed with a
    /// checkpoint packet so receivers do not stall (§4.4 batch delivery).
    sim::Time checkpoint_idle_ns = 100 * sim::kMicrosecond;
    /// Tofino's 16 loopback ports cap HM groups at 64 receivers (§4.3);
    /// the Fig 8 software sequencer has no such port budget.
    bool enforce_hm_port_limit = true;

    /// Software sequencer profile used for the Fig 8 EC2-style scalability
    /// runs (the paper also substitutes a software switch there).
    static SequencerConfig software_profile();
};

class SequencerSwitch : public sim::Node {
  public:
    SequencerSwitch(SequencerConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                    const AomKeyService* keys)
        : cfg_(cfg), crypto_(std::move(crypto)), keys_(keys) {}

    /// Control plane (configuration service): makes this switch the
    /// sequencer for `group` starting at `epoch`. Resets counter and chain.
    void install_group(const GroupConfig& group, EpochNum epoch);
    void remove_group(GroupId group);
    bool serves_group(GroupId group) const {
        return group < groups_.size() && groups_[group] != nullptr;
    }

    /// Fault injection: a stalled switch accepts packets but emits nothing.
    void set_stall(bool stalled) { stalled_ = stalled; }

    void on_packet(NodeId from, const sim::Packet& pkt) override;

    // Instrumentation.
    std::uint64_t packets_sequenced() const { return packets_sequenced_; }
    std::uint64_t signatures_generated() const { return signatures_generated_; }
    std::uint64_t signatures_skipped() const { return signatures_skipped_; }
    std::uint64_t tail_drops() const { return tail_drops_; }
    double precompute_stock() const { return stock_; }

    /// Publishes sequencing/signing counters under `prefix` at every
    /// registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);

  protected:
    /// Emission hook; Byzantine-switch test doubles override this to
    /// equivocate or drop. Multicast fan-out passes the SAME Packet for
    /// every receiver — one serialisation, N refcount bumps.
    virtual void emit(NodeId receiver, sim::Time depart, sim::Packet packet) {
        net().send_at(depart, id(), receiver, std::move(packet));
    }

  private:
    struct GroupState {
        GroupConfig cfg;
        EpochNum epoch = 0;
        SeqNum next_seq = 1;
        Digest32 chain{};        // C_{next_seq - 1}
        // Chain-head bookkeeping for idle checkpoints.
        SeqNum head_seq = 0;
        bool head_signed = true;
        Digest32 head_prev{};
        Digest32 head_digest{};
        std::uint32_t unsigned_run = 0;
        std::uint64_t checkpoint_generation = 0;
    };

    void process_hm(GroupState& gs, const DataPacket& pkt, sim::Time emit_time);
    void process_pk(GroupState& gs, const DataPacket& pkt, sim::Time emit_time);
    void refill_stock();
    void schedule_checkpoint(GroupId group);

    /// Per-packet hot-path lookup: dense array indexed by GroupId (bounds
    /// check + pointer load, no hashing — measurable at 16 groups). Slots
    /// are null for group ids this switch does not serve. Group ids are
    /// small dense integers handed out by the configuration service;
    /// kMaxGroupId bounds the table so a corrupt id cannot balloon it.
    GroupState* find_group(GroupId group) {
        return group < groups_.size() ? groups_[group].get() : nullptr;
    }

    SequencerConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    const AomKeyService* keys_;
    std::vector<std::unique_ptr<GroupState>> groups_;

    sim::Time pipe_busy_until_ = 0;
    sim::Time signer_busy_until_ = 0;
    double stock_ = 0.0;
    sim::Time last_refill_ = 0;
    std::size_t in_flight_ = 0;
    bool stalled_ = false;
    bool stock_initialized_ = false;

    std::uint64_t packets_sequenced_ = 0;
    std::uint64_t signatures_generated_ = 0;
    std::uint64_t signatures_skipped_ = 0;
    std::uint64_t tail_drops_ = 0;
};

}  // namespace neo::aom
