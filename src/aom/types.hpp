// aom deployment configuration types (§3.1, §4.1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace neo::aom {

/// Which in-switch authentication design the sequencer runs (§4.3 / §4.4).
enum class AuthVariant : std::uint8_t {
    kHmacVector = 1,  // aom-hm: HalfSipHash MAC vector, folded pipeline
    kPublicKey = 2,   // aom-pk: secp256k1 via FPGA coprocessor + hash chain
};

/// Fault model assumed for the network infrastructure (§3.1).
enum class NetworkTrust : std::uint8_t {
    kCrashOnly = 1,   // hybrid model: direct delivery on authentication
    kByzantine = 2,   // confirm-message exchange tolerates equivocation
};

/// Static description of one aom group.
struct GroupConfig {
    GroupId group = 0;
    AuthVariant variant = AuthVariant::kHmacVector;
    NetworkTrust trust = NetworkTrust::kCrashOnly;
    /// Receiver node ids; a receiver's index in this vector is its "slot"
    /// in the HMAC vector and its identity in confirm quorums.
    std::vector<NodeId> receivers;
    /// Maximum number of Byzantine receivers tolerated (confirm quorum is
    /// 2f+1). Only meaningful under NetworkTrust::kByzantine.
    int f = 0;
    /// Keyspace shard this group owns in a sharded deployment: the group
    /// serves application keys whose 64-bit hash falls in [key_lo, key_hi]
    /// (inclusive). Both zero = unsharded (the group serves everything).
    std::uint64_t key_lo = 0;
    std::uint64_t key_hi = 0;

    int receiver_index(NodeId node) const {
        for (std::size_t i = 0; i < receivers.size(); ++i) {
            if (receivers[i] == node) return static_cast<int>(i);
        }
        return -1;
    }
};

/// Upper bound (exclusive) on group addresses. The sequencer's per-packet
/// routing table is a dense array indexed by GroupId, so addresses must be
/// small integers; the configuration service hands them out densely.
constexpr GroupId kMaxGroupId = 4096;

/// Maximum receivers per HMAC subgroup packet (4 parallel HalfSipHash
/// instances per pipeline pass, §4.3).
constexpr int kHmSubgroupSize = 4;

/// Receivers per group supported by the HM design (16 loopback ports x 4).
constexpr int kHmMaxReceivers = 64;

inline int hm_subgroup_count(int receivers) {
    return (receivers + kHmSubgroupSize - 1) / kHmSubgroupSize;
}

}  // namespace neo::aom
