#include "aom/wire.hpp"

#include "crypto/sha256.hpp"

namespace neo::aom {

namespace {
constexpr std::size_t kMaxPayload = 1u << 20;       // 1 MiB application payload cap
constexpr std::size_t kMaxConfirmEntries = 4'096;   // batched confirms cap

void put_digest(Writer& w, const Digest32& d) { w.raw(BytesView(d.data(), d.size())); }
}  // namespace

std::optional<std::uint8_t> peek_kind(BytesView packet) {
    if (packet.empty()) return std::nullopt;
    return packet[0];
}

bool is_aom_packet(BytesView packet) {
    auto k = peek_kind(packet);
    return k.has_value() && *k < static_cast<std::uint8_t>(Wire::kProtoBase);
}

const char* wire_kind_name(std::uint8_t kind) {
    switch (static_cast<Wire>(kind)) {
        case Wire::kData: return "aom_data";
        case Wire::kSeqHm: return "aom_seq_hm";
        case Wire::kSeqPk: return "aom_seq_pk";
        case Wire::kCheckpoint: return "aom_checkpoint";
        case Wire::kConfirm: return "aom_confirm";
        case Wire::kFailoverReq: return "aom_failover_req";
        case Wire::kNewEpoch: return "aom_new_epoch";
        default: return nullptr;
    }
}

// ---------- DataPacket ----------

Bytes DataPacket::serialize() const {
    Writer w(48 + payload.size());
    w.u8(static_cast<std::uint8_t>(Wire::kData));
    w.u32(group);
    put_digest(w, digest);
    w.blob(payload);
    return std::move(w).take();
}

DataPacket DataPacket::parse(Reader& r) {
    DataPacket p;
    p.group = r.u32();
    p.digest = r.digest32();
    p.payload = r.blob(kMaxPayload);
    r.expect_end();
    return p;
}

// ---------- HmPacket ----------

Bytes HmPacket::serialize() const {
    Writer w(64 + payload.size() + macs.size() * 4);
    w.u8(static_cast<std::uint8_t>(Wire::kSeqHm));
    w.u32(group);
    w.u64(epoch);
    w.u64(seq);
    put_digest(w, digest);
    w.u8(subgroup);
    w.u8(n_subgroups);
    w.u8(static_cast<std::uint8_t>(macs.size()));
    for (std::uint32_t m : macs) w.u32(m);
    w.blob(payload);
    return std::move(w).take();
}

HmPacket HmPacket::parse(Reader& r) {
    HmPacket p;
    p.group = r.u32();
    p.epoch = r.u64();
    p.seq = r.u64();
    p.digest = r.digest32();
    p.subgroup = r.u8();
    p.n_subgroups = r.u8();
    std::uint8_t n_macs = r.u8();
    if (n_macs > kHmSubgroupSize) throw CodecError("too many MACs in subgroup packet");
    if (p.n_subgroups == 0 || p.subgroup >= p.n_subgroups) throw CodecError("bad subgroup index");
    p.macs.reserve(n_macs);
    for (int i = 0; i < n_macs; ++i) p.macs.push_back(r.u32());
    p.payload = r.blob(kMaxPayload);
    r.expect_end();
    return p;
}

// ---------- PkPacket ----------

Bytes PkPacket::serialize() const {
    Writer w(128 + payload.size());
    w.u8(static_cast<std::uint8_t>(checkpoint ? Wire::kCheckpoint : Wire::kSeqPk));
    w.u32(group);
    w.u64(epoch);
    w.u64(seq);
    put_digest(w, digest);
    put_digest(w, prev_chain);
    w.blob(signature);
    if (!checkpoint) w.blob(payload);
    return std::move(w).take();
}

PkPacket PkPacket::parse(Reader& r) {
    // The caller has consumed the kind byte and sets `checkpoint` through
    // the parse entry points below; re-parse both shapes here based on a
    // flag passed via a second function would complicate call sites, so
    // this parse handles the payload-bearing form and parse_checkpoint the
    // header-only form.
    PkPacket p;
    p.group = r.u32();
    p.epoch = r.u64();
    p.seq = r.u64();
    p.digest = r.digest32();
    p.prev_chain = r.digest32();
    p.signature = r.blob(256);
    if (!p.signature.empty() && p.signature.size() != 64) throw CodecError("bad signature length");
    if (r.at_end()) {
        p.checkpoint = true;
        if (p.signature.empty()) throw CodecError("checkpoint must be signed");
    } else {
        p.payload = r.blob(kMaxPayload);
        r.expect_end();
    }
    return p;
}

// ---------- ConfirmPacket ----------

Bytes ConfirmPacket::serialize() const {
    Writer w(64 + entries.size() * 112);
    w.u8(static_cast<std::uint8_t>(Wire::kConfirm));
    w.u32(sender);
    w.u32(group);
    w.u64(epoch);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
        w.u64(e.seq);
        put_digest(w, e.digest);
        w.blob(e.signature);
    }
    return std::move(w).take();
}

ConfirmPacket ConfirmPacket::parse(Reader& r) {
    ConfirmPacket p;
    p.sender = r.u32();
    p.group = r.u32();
    p.epoch = r.u64();
    std::uint32_t n = r.u32();
    if (n > kMaxConfirmEntries) throw CodecError("too many confirm entries");
    p.entries.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        Entry e;
        e.seq = r.u64();
        e.digest = r.digest32();
        e.signature = r.blob(256);
        p.entries.push_back(std::move(e));
    }
    r.expect_end();
    return p;
}

// ---------- FailoverRequest ----------

Bytes FailoverRequest::serialize() const {
    Writer w(24);
    w.u8(static_cast<std::uint8_t>(Wire::kFailoverReq));
    w.u32(sender);
    w.u32(group);
    w.u64(next_epoch);
    return std::move(w).take();
}

FailoverRequest FailoverRequest::parse(Reader& r) {
    FailoverRequest p;
    p.sender = r.u32();
    p.group = r.u32();
    p.next_epoch = r.u64();
    r.expect_end();
    return p;
}

// ---------- NewEpochAnnouncement ----------

Bytes NewEpochAnnouncement::serialize() const {
    Writer w(24);
    w.u8(static_cast<std::uint8_t>(Wire::kNewEpoch));
    w.u32(group);
    w.u64(epoch);
    w.u32(sequencer);
    return std::move(w).take();
}

NewEpochAnnouncement NewEpochAnnouncement::parse(Reader& r) {
    NewEpochAnnouncement p;
    p.group = r.u32();
    p.epoch = r.u64();
    p.sequencer = r.u32();
    r.expect_end();
    return p;
}

// ---------- authenticated byte strings ----------

Bytes auth_input(GroupId group, EpochNum epoch, SeqNum seq, const Digest32& digest) {
    Writer w(56);
    w.u32(group);
    w.u64(epoch);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    return std::move(w).take();
}

Digest32 chain_genesis(GroupId group, EpochNum epoch) {
    Writer w(32);
    w.str("aom-chain-genesis");
    w.u32(group);
    w.u64(epoch);
    return crypto::sha256(w.bytes());
}

Digest32 chain_next(const Digest32& prev, GroupId group, EpochNum epoch, SeqNum seq,
                    const Digest32& digest) {
    return crypto::sha256_pair(BytesView(prev.data(), prev.size()),
                               auth_input(group, epoch, seq, digest));
}

Bytes confirm_input(GroupId group, EpochNum epoch, SeqNum seq, const Digest32& digest) {
    Writer w(64);
    w.str("aom-confirm-entry");
    w.raw(auth_input(group, epoch, seq, digest));
    return std::move(w).take();
}

}  // namespace neo::aom
