// aom wire formats (§4.1): the custom header that follows the UDP header,
// in the sender, HM (subgroup MAC vector) and PK (hash-chain) flavours.
//
// Every simulated packet starts with a one-byte channel/kind tag; values
// below kProtoBase belong to the aom layer, higher values to the
// replication protocol riding on top.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"
#include "aom/types.hpp"

namespace neo::aom {

enum class Wire : std::uint8_t {
    kData = 0x01,        // sender -> sequencer
    kSeqHm = 0x02,       // sequencer -> receivers (HMAC subgroup packet)
    kSeqPk = 0x03,       // sequencer -> receivers (hash-chain packet)
    kCheckpoint = 0x04,  // sequencer -> receivers (retro-signature, no payload)
    kConfirm = 0x05,     // receiver <-> receiver (Byzantine network mode)
    kFailoverReq = 0x06, // receiver -> config service
    kNewEpoch = 0x07,    // config service -> receivers
    kProtoBase = 0x20,   // first value owned by the replication protocol
};

/// Returns the tag byte, or nullopt for an empty packet.
std::optional<std::uint8_t> peek_kind(BytesView packet);

/// True if the packet belongs to the aom layer (kind < kProtoBase).
bool is_aom_packet(BytesView packet);

/// Stable name for an aom wire kind; nullptr for bytes the layer does not
/// own (protocol kinds >= kProtoBase). Suitable as a metrics key fragment.
const char* wire_kind_name(std::uint8_t kind);

/// Sender -> sequencer.
struct DataPacket {
    GroupId group = 0;
    Digest32 digest{};
    Bytes payload;

    Bytes serialize() const;
    static DataPacket parse(Reader& r);  // throws CodecError
};

/// Sequencer -> receivers, HM variant. One packet per subgroup; each
/// carries kHmSubgroupSize MACs so receivers can assemble the full vector.
struct HmPacket {
    GroupId group = 0;
    EpochNum epoch = 0;
    SeqNum seq = 0;
    Digest32 digest{};
    std::uint8_t subgroup = 0;
    std::uint8_t n_subgroups = 1;
    /// MACs for receiver slots [subgroup*4, subgroup*4 + macs.size()).
    std::vector<std::uint32_t> macs;
    Bytes payload;

    Bytes serialize() const;
    static HmPacket parse(Reader& r);
};

/// Sequencer -> receivers, PK variant. `signature` may be empty when the
/// signing-ratio controller skipped this packet (§4.4); `checkpoint` packets
/// retro-sign the chain head and carry no payload.
struct PkPacket {
    GroupId group = 0;
    EpochNum epoch = 0;
    SeqNum seq = 0;
    Digest32 digest{};
    Digest32 prev_chain{};
    Bytes signature;  // empty or 64 bytes over the chain value C_seq
    bool checkpoint = false;
    Bytes payload;

    Bytes serialize() const;
    static PkPacket parse(Reader& r);
};

/// Receiver -> receivers (Byzantine network mode). Entries are batched into
/// one packet (the paper batches confirm processing, §6.2) but each entry
/// carries its own signature over confirm_input() so the resulting ordering
/// certificates stay independently verifiable (transferable).
struct ConfirmPacket {
    NodeId sender = 0;
    GroupId group = 0;
    EpochNum epoch = 0;
    struct Entry {
        SeqNum seq = 0;
        Digest32 digest{};
        Bytes signature;
    };
    std::vector<Entry> entries;

    Bytes serialize() const;
    static ConfirmPacket parse(Reader& r);
};

/// Receiver -> config service: this group's sequencer looks faulty; please
/// install a new one for `next_epoch`.
struct FailoverRequest {
    NodeId sender = 0;
    GroupId group = 0;
    EpochNum next_epoch = 0;

    Bytes serialize() const;
    static FailoverRequest parse(Reader& r);
};

/// Config service -> receivers/senders: a new sequencer is live.
struct NewEpochAnnouncement {
    GroupId group = 0;
    EpochNum epoch = 0;
    NodeId sequencer = kInvalidNode;

    Bytes serialize() const;
    static NewEpochAnnouncement parse(Reader& r);
};

/// Canonical byte string authenticated by the sequencer for a message:
/// group || epoch || seq || digest (§4.1: "the concatenated message digest
/// and the sequence number").
Bytes auth_input(GroupId group, EpochNum epoch, SeqNum seq, const Digest32& digest);

/// Hash-chain values (PK variant): C_0 = H("genesis" || group || epoch),
/// C_s = H(C_{s-1} || auth_input(s)).
Digest32 chain_genesis(GroupId group, EpochNum epoch);
Digest32 chain_next(const Digest32& prev, GroupId group, EpochNum epoch, SeqNum seq,
                    const Digest32& digest);

/// Byte string covered by a receiver's confirm signature for one entry.
Bytes confirm_input(GroupId group, EpochNum epoch, SeqNum seq, const Digest32& digest);

}  // namespace neo::aom
