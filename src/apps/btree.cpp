#include "apps/btree.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace neo::app {

bool BTreeMap::key_less(BytesView a, BytesView b) {
    return std::lexicographical_compare(a.begin(), a.end(), b.begin(), b.end());
}

bool BTreeMap::key_eq(BytesView a, BytesView b) {
    return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

int BTreeMap::lower_bound(const Node& node, BytesView key) {
    int lo = 0;
    int hi = node.nkeys();
    while (lo < hi) {
        int mid = (lo + hi) / 2;
        if (key_less(node.keys[static_cast<std::size_t>(mid)], key)) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    return lo;
}

const Bytes* BTreeMap::get(BytesView key) const {
    const Node* node = root_.get();
    while (node != nullptr) {
        int i = lower_bound(*node, key);
        if (i < node->nkeys() && key_eq(node->keys[static_cast<std::size_t>(i)], key)) {
            return &node->values[static_cast<std::size_t>(i)];
        }
        if (node->leaf()) return nullptr;
        node = node->children[static_cast<std::size_t>(i)].get();
    }
    return nullptr;
}

void BTreeMap::split_child(Node& parent, int idx) {
    Node& full = *parent.children[static_cast<std::size_t>(idx)];
    NEO_ASSERT(full.nkeys() == kMaxKeys);
    auto right = std::make_unique<Node>();

    // Median moves up; upper half moves to the new right sibling.
    right->keys.assign(std::make_move_iterator(full.keys.begin() + kT),
                       std::make_move_iterator(full.keys.end()));
    right->values.assign(std::make_move_iterator(full.values.begin() + kT),
                         std::make_move_iterator(full.values.end()));
    Bytes mid_key = std::move(full.keys[kT - 1]);
    Bytes mid_val = std::move(full.values[kT - 1]);
    full.keys.resize(kT - 1);
    full.values.resize(kT - 1);
    if (!full.leaf()) {
        right->children.assign(std::make_move_iterator(full.children.begin() + kT),
                               std::make_move_iterator(full.children.end()));
        full.children.resize(kT);
    }

    parent.keys.insert(parent.keys.begin() + idx, std::move(mid_key));
    parent.values.insert(parent.values.begin() + idx, std::move(mid_val));
    parent.children.insert(parent.children.begin() + idx + 1, std::move(right));
}

bool BTreeMap::put(BytesView key, BytesView value) {
    if (!root_) root_ = std::make_unique<Node>();
    if (root_->nkeys() == kMaxKeys) {
        auto new_root = std::make_unique<Node>();
        new_root->children.push_back(std::move(root_));
        root_ = std::move(new_root);
        split_child(*root_, 0);
    }
    bool inserted = insert_nonfull(*root_, key, value);
    if (inserted) ++size_;
    return inserted;
}

bool BTreeMap::insert_nonfull(Node& node, BytesView key, BytesView value) {
    int i = lower_bound(node, key);
    if (i < node.nkeys() && key_eq(node.keys[static_cast<std::size_t>(i)], key)) {
        node.values[static_cast<std::size_t>(i)].assign(value.begin(), value.end());
        return false;
    }
    if (node.leaf()) {
        node.keys.insert(node.keys.begin() + i, Bytes(key.begin(), key.end()));
        node.values.insert(node.values.begin() + i, Bytes(value.begin(), value.end()));
        return true;
    }
    if (node.children[static_cast<std::size_t>(i)]->nkeys() == kMaxKeys) {
        split_child(node, i);
        if (key_less(node.keys[static_cast<std::size_t>(i)], key)) {
            ++i;
        } else if (key_eq(node.keys[static_cast<std::size_t>(i)], key)) {
            node.values[static_cast<std::size_t>(i)].assign(value.begin(), value.end());
            return false;
        }
    }
    return insert_nonfull(*node.children[static_cast<std::size_t>(i)], key, value);
}

bool BTreeMap::erase(BytesView key) {
    if (!root_) return false;
    bool erased = erase_from(*root_, key);
    if (erased) --size_;
    if (root_->nkeys() == 0 && !root_->leaf()) {
        root_ = std::move(root_->children[0]);  // shrink height
    }
    if (root_ && root_->nkeys() == 0 && root_->leaf()) {
        root_.reset();
    }
    return erased;
}

std::pair<Bytes, Bytes> BTreeMap::max_entry(Node& node) {
    Node* cur = &node;
    while (!cur->leaf()) cur = cur->children.back().get();
    return {cur->keys.back(), cur->values.back()};
}

std::pair<Bytes, Bytes> BTreeMap::min_entry(Node& node) {
    Node* cur = &node;
    while (!cur->leaf()) cur = cur->children.front().get();
    return {cur->keys.front(), cur->values.front()};
}

bool BTreeMap::erase_from(Node& node, BytesView key) {
    int i = lower_bound(node, key);
    bool found = i < node.nkeys() && key_eq(node.keys[static_cast<std::size_t>(i)], key);

    if (found && node.leaf()) {
        node.keys.erase(node.keys.begin() + i);
        node.values.erase(node.values.begin() + i);
        return true;
    }

    if (found) {
        // Internal node: replace with predecessor or successor, then delete
        // that entry from the child (ensuring the child has >= kT keys).
        Node& left = *node.children[static_cast<std::size_t>(i)];
        Node& right = *node.children[static_cast<std::size_t>(i + 1)];
        if (left.nkeys() >= kT) {
            auto [pk, pv] = max_entry(left);
            node.keys[static_cast<std::size_t>(i)] = pk;
            node.values[static_cast<std::size_t>(i)] = pv;
            return erase_from(left, pk);
        }
        if (right.nkeys() >= kT) {
            auto [sk, sv] = min_entry(right);
            node.keys[static_cast<std::size_t>(i)] = sk;
            node.values[static_cast<std::size_t>(i)] = sv;
            return erase_from(right, sk);
        }
        merge_children(node, i);
        return erase_from(*node.children[static_cast<std::size_t>(i)], key);
    }

    if (node.leaf()) return false;  // not present

    // Descend, topping up the child if it is at minimum occupancy.
    if (node.children[static_cast<std::size_t>(i)]->nkeys() < kT) {
        fill_child(node, i);
        // fill_child may merge and shift indices; recompute.
        i = lower_bound(node, key);
        if (i < node.nkeys() && key_eq(node.keys[static_cast<std::size_t>(i)], key)) {
            return erase_from(node, key);
        }
        if (i > node.nkeys()) i = node.nkeys();
    }
    return erase_from(*node.children[static_cast<std::size_t>(i)], key);
}

void BTreeMap::fill_child(Node& node, int idx) {
    Node& child = *node.children[static_cast<std::size_t>(idx)];

    // Borrow from the left sibling.
    if (idx > 0 && node.children[static_cast<std::size_t>(idx - 1)]->nkeys() >= kT) {
        Node& left = *node.children[static_cast<std::size_t>(idx - 1)];
        child.keys.insert(child.keys.begin(), std::move(node.keys[static_cast<std::size_t>(idx - 1)]));
        child.values.insert(child.values.begin(),
                            std::move(node.values[static_cast<std::size_t>(idx - 1)]));
        node.keys[static_cast<std::size_t>(idx - 1)] = std::move(left.keys.back());
        node.values[static_cast<std::size_t>(idx - 1)] = std::move(left.values.back());
        left.keys.pop_back();
        left.values.pop_back();
        if (!left.leaf()) {
            child.children.insert(child.children.begin(), std::move(left.children.back()));
            left.children.pop_back();
        }
        return;
    }

    // Borrow from the right sibling.
    if (idx < static_cast<int>(node.children.size()) - 1 &&
        node.children[static_cast<std::size_t>(idx + 1)]->nkeys() >= kT) {
        Node& right = *node.children[static_cast<std::size_t>(idx + 1)];
        child.keys.push_back(std::move(node.keys[static_cast<std::size_t>(idx)]));
        child.values.push_back(std::move(node.values[static_cast<std::size_t>(idx)]));
        node.keys[static_cast<std::size_t>(idx)] = std::move(right.keys.front());
        node.values[static_cast<std::size_t>(idx)] = std::move(right.values.front());
        right.keys.erase(right.keys.begin());
        right.values.erase(right.values.begin());
        if (!right.leaf()) {
            child.children.push_back(std::move(right.children.front()));
            right.children.erase(right.children.begin());
        }
        return;
    }

    // Merge with a sibling.
    if (idx < static_cast<int>(node.children.size()) - 1) {
        merge_children(node, idx);
    } else {
        merge_children(node, idx - 1);
    }
}

void BTreeMap::merge_children(Node& node, int idx) {
    Node& left = *node.children[static_cast<std::size_t>(idx)];
    std::unique_ptr<Node> right = std::move(node.children[static_cast<std::size_t>(idx + 1)]);

    left.keys.push_back(std::move(node.keys[static_cast<std::size_t>(idx)]));
    left.values.push_back(std::move(node.values[static_cast<std::size_t>(idx)]));
    node.keys.erase(node.keys.begin() + idx);
    node.values.erase(node.values.begin() + idx);
    node.children.erase(node.children.begin() + idx + 1);

    for (auto& k : right->keys) left.keys.push_back(std::move(k));
    for (auto& v : right->values) left.values.push_back(std::move(v));
    for (auto& c : right->children) left.children.push_back(std::move(c));
}

void BTreeMap::for_each(const std::function<void(const Bytes&, const Bytes&)>& fn) const {
    walk(root_.get(), fn);
}

void BTreeMap::walk(const Node* node,
                    const std::function<void(const Bytes&, const Bytes&)>& fn) const {
    if (node == nullptr) return;
    for (int i = 0; i < node->nkeys(); ++i) {
        if (!node->leaf()) walk(node->children[static_cast<std::size_t>(i)].get(), fn);
        fn(node->keys[static_cast<std::size_t>(i)], node->values[static_cast<std::size_t>(i)]);
    }
    if (!node->leaf()) walk(node->children.back().get(), fn);
}

bool BTreeMap::check_invariants() const {
    if (!root_) return true;
    int leaf_depth = -1;
    return check_node(root_.get(), nullptr, nullptr, 0, leaf_depth);
}

bool BTreeMap::check_node(const Node* node, const Bytes* lo, const Bytes* hi, int depth,
                          int& leaf_depth) const {
    if (node->nkeys() == 0) return false;
    if (node != root_.get() && node->nkeys() < kT - 1) return false;
    if (node->nkeys() > kMaxKeys) return false;
    if (node->values.size() != node->keys.size()) return false;

    for (int i = 0; i < node->nkeys(); ++i) {
        const Bytes& k = node->keys[static_cast<std::size_t>(i)];
        if (i > 0 && !key_less(node->keys[static_cast<std::size_t>(i - 1)], k)) return false;
        if (lo != nullptr && !key_less(*lo, k)) return false;
        if (hi != nullptr && !key_less(k, *hi)) return false;
    }

    if (node->leaf()) {
        if (leaf_depth == -1) leaf_depth = depth;
        return leaf_depth == depth;
    }
    if (node->children.size() != node->keys.size() + 1) return false;
    for (std::size_t i = 0; i < node->children.size(); ++i) {
        const Bytes* child_lo = (i == 0) ? lo : &node->keys[i - 1];
        const Bytes* child_hi = (i == node->keys.size()) ? hi : &node->keys[i];
        if (!check_node(node->children[i].get(), child_lo, child_hi, depth + 1, leaf_depth)) {
            return false;
        }
    }
    return true;
}

}  // namespace neo::app
