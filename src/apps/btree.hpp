// In-memory B-Tree map (the storage engine behind the paper's §6.5
// key-value store), implemented from scratch.
//
// Classic CLRS B-Tree with minimum degree T: every node holds between T-1
// and 2T-1 keys (root exempt below), inserts split preemptively on the way
// down, deletes rebalance by borrowing or merging.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/bytes.hpp"

namespace neo::app {

class BTreeMap {
  public:
    /// Inserts or updates. Returns true if the key was new.
    bool put(BytesView key, BytesView value);

    /// Returns the stored value or nullptr.
    const Bytes* get(BytesView key) const;

    /// Removes the key. Returns true if it existed.
    bool erase(BytesView key);

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// In-order traversal (validation / scans).
    void for_each(const std::function<void(const Bytes& key, const Bytes& value)>& fn) const;

    /// Structural invariant check (tests): returns true when every node
    /// respects occupancy bounds, keys are sorted, and all leaves share a
    /// depth.
    bool check_invariants() const;

  private:
    static constexpr int kT = 8;           // minimum degree
    static constexpr int kMaxKeys = 2 * kT - 1;

    struct Node {
        std::vector<Bytes> keys;
        std::vector<Bytes> values;
        std::vector<std::unique_ptr<Node>> children;  // empty for leaves

        bool leaf() const { return children.empty(); }
        int nkeys() const { return static_cast<int>(keys.size()); }
    };

    static int lower_bound(const Node& node, BytesView key);
    static bool key_less(BytesView a, BytesView b);
    static bool key_eq(BytesView a, BytesView b);

    void split_child(Node& parent, int idx);
    bool insert_nonfull(Node& node, BytesView key, BytesView value);
    bool erase_from(Node& node, BytesView key);
    void fill_child(Node& node, int idx);
    void merge_children(Node& node, int idx);
    static std::pair<Bytes, Bytes> max_entry(Node& node);
    static std::pair<Bytes, Bytes> min_entry(Node& node);

    void walk(const Node* node,
              const std::function<void(const Bytes&, const Bytes&)>& fn) const;
    bool check_node(const Node* node, const Bytes* lo, const Bytes* hi, int depth,
                    int& leaf_depth) const;

    std::unique_ptr<Node> root_;
    std::size_t size_ = 0;
};

}  // namespace neo::app
