#include "apps/kvstore.hpp"

#include "common/assert.hpp"

namespace neo::app {

namespace {
constexpr std::size_t kMaxKey = 1'024;
constexpr std::size_t kMaxValue = 64 * 1'024;
}  // namespace

Bytes KvOp::serialize() const {
    Writer w(16 + key.size() + value.size());
    w.u8(static_cast<std::uint8_t>(type));
    w.blob(key);
    if (type == KvOpType::kPut) w.blob(value);
    return std::move(w).take();
}

std::optional<KvOp> KvOp::parse(BytesView data) {
    try {
        Reader r(data);
        KvOp op;
        std::uint8_t t = r.u8();
        if (t < 1 || t > 3) return std::nullopt;
        op.type = static_cast<KvOpType>(t);
        op.key = r.blob(kMaxKey);
        if (op.type == KvOpType::kPut) op.value = r.blob(kMaxValue);
        r.expect_end();
        return op;
    } catch (const CodecError&) {
        return std::nullopt;
    }
}

Bytes KvResult::serialize() const {
    Writer w(8 + value.size());
    w.u8(static_cast<std::uint8_t>(status));
    w.blob(value);
    return std::move(w).take();
}

std::optional<KvResult> KvResult::parse(BytesView data) {
    try {
        Reader r(data);
        KvResult res;
        std::uint8_t s = r.u8();
        if (s > 2) return std::nullopt;
        res.status = static_cast<KvStatus>(s);
        res.value = r.blob(kMaxValue);
        r.expect_end();
        return res;
    } catch (const CodecError&) {
        return std::nullopt;
    }
}

Bytes KvStateMachine::execute(BytesView op_bytes) {
    ++executed_;
    auto op = KvOp::parse(op_bytes);
    UndoRecord undo;
    KvResult result;

    if (!op.has_value()) {
        // Malformed ops still consume a log position deterministically.
        undo.type = KvOpType::kGet;
        undo_log_.push_back(std::move(undo));
        result.status = KvStatus::kBadRequest;
        return result.serialize();
    }

    undo.type = op->type;
    undo.key = op->key;

    switch (op->type) {
        case KvOpType::kGet: {
            const Bytes* v = store_.get(op->key);
            if (v != nullptr) {
                result.status = KvStatus::kOk;
                result.value = *v;
            } else {
                result.status = KvStatus::kNotFound;
            }
            break;
        }
        case KvOpType::kPut: {
            const Bytes* old = store_.get(op->key);
            undo.existed = old != nullptr;
            if (old != nullptr) undo.old_value = *old;
            store_.put(op->key, op->value);
            result.status = KvStatus::kOk;
            break;
        }
        case KvOpType::kDelete: {
            const Bytes* old = store_.get(op->key);
            undo.existed = old != nullptr;
            if (old != nullptr) undo.old_value = *old;
            bool erased = store_.erase(op->key);
            result.status = erased ? KvStatus::kOk : KvStatus::kNotFound;
            break;
        }
    }
    undo_log_.push_back(std::move(undo));
    return result.serialize();
}

void KvStateMachine::undo_last() {
    NEO_ASSERT_MSG(!undo_log_.empty(), "undo without history");
    UndoRecord rec = std::move(undo_log_.back());
    undo_log_.pop_back();
    --executed_;

    switch (rec.type) {
        case KvOpType::kGet:
            break;  // reads mutate nothing
        case KvOpType::kPut:
            if (rec.existed) {
                store_.put(rec.key, rec.old_value);
            } else {
                store_.erase(rec.key);
            }
            break;
        case KvOpType::kDelete:
            if (rec.existed) store_.put(rec.key, rec.old_value);
            break;
    }
}

void KvStateMachine::commit_prefix(std::uint64_t n) {
    NEO_ASSERT(n >= committed_);
    std::uint64_t newly = n - committed_;
    committed_ = n;
    // Drop undo records for committed ops (oldest first).
    while (newly-- > 0 && !undo_log_.empty()) undo_log_.pop_front();
}

std::int64_t KvStateMachine::execute_cost_ns(BytesView op) const {
    // B-Tree traversal over ~100K records plus value copies: of the order
    // of a microsecond on the testbed CPUs; writes cost a bit more.
    if (!op.empty() && op[0] == static_cast<std::uint8_t>(KvOpType::kGet)) return 900;
    return 1'400;
}

}  // namespace neo::app
