#include "apps/kvstore.hpp"

#include "common/assert.hpp"

namespace neo::app {

namespace {
constexpr std::size_t kMaxKey = 1'024;
constexpr std::size_t kMaxValue = 64 * 1'024;
constexpr std::size_t kMaxTxnOps = 1'024;

/// Little-endian u32 at `off`, or 0 when the buffer is too short (cost
/// estimation only; real parsing goes through Reader).
std::uint32_t peek_u32(BytesView data, std::size_t off) {
    if (data.size() < off + 4) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[off + i]) << (8 * i);
    return v;
}
}  // namespace

Bytes KvOp::serialize() const {
    Writer w(16 + key.size() + value.size());
    w.u8(static_cast<std::uint8_t>(type));
    w.blob(key);
    if (type == KvOpType::kPut) w.blob(value);
    return std::move(w).take();
}

std::optional<KvOp> KvOp::parse(BytesView data) {
    try {
        Reader r(data);
        KvOp op;
        std::uint8_t t = r.u8();
        if (t < 1 || t > 3) return std::nullopt;
        op.type = static_cast<KvOpType>(t);
        op.key = r.blob(kMaxKey);
        if (op.type == KvOpType::kPut) op.value = r.blob(kMaxValue);
        r.expect_end();
        return op;
    } catch (const CodecError&) {
        return std::nullopt;
    }
}

Bytes KvTxnOp::serialize() const {
    Writer w(32);
    w.u8(static_cast<std::uint8_t>(type));
    if (type != KvOpType::kTxnLocal) w.u64(txn_id);
    if (type == KvOpType::kTxnLocal || type == KvOpType::kTxnPrepare) {
        w.u32(static_cast<std::uint32_t>(ops.size()));
        for (const KvOp& op : ops) w.blob(op.serialize());
    }
    return std::move(w).take();
}

std::optional<KvTxnOp> KvTxnOp::parse(BytesView data) {
    try {
        Reader r(data);
        KvTxnOp txn;
        std::uint8_t t = r.u8();
        if (t < 4 || t > 7) return std::nullopt;
        txn.type = static_cast<KvOpType>(t);
        if (txn.type != KvOpType::kTxnLocal) txn.txn_id = r.u64();
        if (txn.type == KvOpType::kTxnLocal || txn.type == KvOpType::kTxnPrepare) {
            std::uint32_t n = r.u32();
            if (n == 0 || n > kMaxTxnOps) return std::nullopt;
            txn.ops.reserve(n);
            for (std::uint32_t i = 0; i < n; ++i) {
                auto op = KvOp::parse(r.blob(8 + kMaxKey + kMaxValue));
                if (!op.has_value()) return std::nullopt;
                txn.ops.push_back(std::move(*op));
            }
        }
        r.expect_end();
        return txn;
    } catch (const CodecError&) {
        return std::nullopt;
    }
}

Bytes KvResult::serialize() const {
    Writer w(8 + value.size());
    w.u8(static_cast<std::uint8_t>(status));
    w.blob(value);
    return std::move(w).take();
}

std::optional<KvResult> KvResult::parse(BytesView data) {
    try {
        Reader r(data);
        KvResult res;
        std::uint8_t s = r.u8();
        if (s > 6) return std::nullopt;
        res.status = static_cast<KvStatus>(s);
        res.value = r.blob(kMaxValue);
        r.expect_end();
        return res;
    } catch (const CodecError&) {
        return std::nullopt;
    }
}

KvResult KvStateMachine::apply_single(const KvOp& op, UndoRecord& undo) {
    undo.type = op.type;
    undo.key = op.key;
    KvResult result;

    switch (op.type) {
        case KvOpType::kGet: {
            const Bytes* v = store_.get(op.key);
            if (v != nullptr) {
                result.status = KvStatus::kOk;
                result.value = *v;
            } else {
                result.status = KvStatus::kNotFound;
            }
            break;
        }
        case KvOpType::kPut: {
            const Bytes* old = store_.get(op.key);
            undo.existed = old != nullptr;
            if (old != nullptr) undo.old_value = *old;
            store_.put(op.key, op.value);
            result.status = KvStatus::kOk;
            break;
        }
        case KvOpType::kDelete: {
            const Bytes* old = store_.get(op.key);
            undo.existed = old != nullptr;
            if (old != nullptr) undo.old_value = *old;
            bool erased = store_.erase(op.key);
            result.status = erased ? KvStatus::kOk : KvStatus::kNotFound;
            break;
        }
        default:
            result.status = KvStatus::kBadRequest;
            break;
    }
    return result;
}

void KvStateMachine::undo_single(UndoRecord& rec) {
    switch (rec.type) {
        case KvOpType::kGet:
            break;  // reads mutate nothing
        case KvOpType::kPut:
            if (rec.existed) {
                store_.put(rec.key, rec.old_value);
            } else {
                store_.erase(rec.key);
            }
            break;
        case KvOpType::kDelete:
            if (rec.existed) store_.put(rec.key, rec.old_value);
            break;
        default:
            break;
    }
}

namespace {
/// Positional per-op results: u32 n, then n x blob(KvResult).
Bytes pack_results(const std::vector<KvResult>& results) {
    Writer w(8 + results.size() * 16);
    w.u32(static_cast<std::uint32_t>(results.size()));
    for (const KvResult& r : results) w.blob(r.serialize());
    return std::move(w).take();
}
}  // namespace

Bytes KvStateMachine::txn_local(const KvTxnOp& txn, UndoRecord& undo) {
    undo.type = KvOpType::kTxnLocal;
    // A one-shot transaction conflicts with any in-flight 2PC lock: its
    // keys could be part of a staged write-set, so touching them would
    // break prepared-transaction isolation.
    for (const KvOp& op : txn.ops) {
        if (locks_.contains(op.key)) {
            return KvResult{KvStatus::kTxnAborted, {}}.serialize();
        }
    }
    std::vector<KvResult> results;
    results.reserve(txn.ops.size());
    for (const KvOp& op : txn.ops) {
        UndoRecord sub;
        results.push_back(apply_single(op, sub));
        undo.multi.push_back(std::move(sub));
    }
    return KvResult{KvStatus::kOk, pack_results(results)}.serialize();
}

Bytes KvStateMachine::txn_prepare(const KvTxnOp& txn, UndoRecord& undo) {
    undo.type = KvOpType::kTxnPrepare;
    undo.txn_id = txn.txn_id;

    if (byz_prepare_) {
        // Equivocation: the reply claims PREPARED, but this replica records
        // an abort vote and holds no locks — a later commit finds nothing
        // staged (kTxnUnknown) while honest shards apply theirs.
        notify_txn(txn.txn_id, 0, false);
        return KvResult{KvStatus::kTxnPrepared, {}}.serialize();
    }

    if (auto sit = staged_.find(txn.txn_id); sit != staged_.end()) {
        // Duplicate prepare (coordinator retry after a lost vote): the
        // stage already holds this transaction's locks. Re-read under them
        // and refresh the stage age; no second undo stash is taken.
        sit->second.staged_at = executed_;
        std::vector<KvResult> results;
        results.reserve(txn.ops.size());
        for (const KvOp& op : txn.ops) {
            if (op.type == KvOpType::kGet) {
                UndoRecord scratch;
                results.push_back(apply_single(op, scratch));
            } else {
                results.push_back(KvResult{KvStatus::kOk, {}});
            }
        }
        return KvResult{KvStatus::kTxnPrepared, pack_results(results)}.serialize();
    }

    for (const KvOp& op : txn.ops) {
        auto it = locks_.find(op.key);
        if (it != locks_.end() && it->second != txn.txn_id) {
            if (wait_die_ && txn.txn_id < it->second) {
                // Wait-die: an OLDER transaction (smaller id) blocked by a
                // younger lock holder waits — no locks taken, no vote
                // recorded; the coordinator retries the same txn_id, so its
                // seniority is preserved and it cannot starve.
                return KvResult{KvStatus::kTxnWait, {}}.serialize();
            }
            // Younger (or no-wait mode): die. Restarting with the same id
            // keeps the transaction's age, so it eventually outranks.
            notify_txn(txn.txn_id, 0, false);
            return KvResult{KvStatus::kTxnAborted, {}}.serialize();
        }
    }

    StagedTxn staged;
    staged.staged_at = executed_;
    std::vector<KvResult> results;
    results.reserve(txn.ops.size());
    for (const KvOp& op : txn.ops) {
        if (!locks_.contains(op.key)) {
            locks_.emplace(op.key, txn.txn_id);
            staged.locked_keys.push_back(op.key);
        }
        if (op.type == KvOpType::kGet) {
            // Reads execute under the lock at prepare time (2PL): the
            // values returned are the ones the commit point serialises.
            UndoRecord scratch;
            results.push_back(apply_single(op, scratch));
        } else {
            staged.writes.push_back(op);
            results.push_back(KvResult{KvStatus::kOk, {}});
        }
    }
    staged_[txn.txn_id] = std::move(staged);
    undo.took_effect = true;
    notify_txn(txn.txn_id, 0, true);
    return KvResult{KvStatus::kTxnPrepared, pack_results(results)}.serialize();
}

Bytes KvStateMachine::txn_commit(const KvTxnOp& txn, UndoRecord& undo) {
    undo.type = KvOpType::kTxnCommit;
    undo.txn_id = txn.txn_id;

    auto it = staged_.find(txn.txn_id);
    if (it == staged_.end()) {
        notify_txn(txn.txn_id, 1, false);
        return KvResult{KvStatus::kTxnUnknown, {}}.serialize();
    }
    for (const KvOp& op : it->second.writes) {
        UndoRecord sub;
        apply_single(op, sub);
        undo.multi.push_back(std::move(sub));
    }
    for (const Bytes& key : it->second.locked_keys) locks_.erase(key);
    undo.took_effect = true;
    undo.staged = std::move(it->second);
    staged_.erase(it);
    notify_txn(txn.txn_id, 1, true);
    return KvResult{KvStatus::kOk, {}}.serialize();
}

Bytes KvStateMachine::txn_abort(const KvTxnOp& txn, UndoRecord& undo) {
    undo.type = KvOpType::kTxnAbort;
    undo.txn_id = txn.txn_id;

    auto it = staged_.find(txn.txn_id);
    if (it != staged_.end()) {
        for (const Bytes& key : it->second.locked_keys) locks_.erase(key);
        undo.took_effect = true;
        undo.staged = std::move(it->second);
        staged_.erase(it);
    }
    // Aborting an unknown transaction is the idempotent no-op the retry
    // path relies on; both cases count as the abort taking effect.
    notify_txn(txn.txn_id, 2, true);
    return KvResult{KvStatus::kOk, {}}.serialize();
}

void KvStateMachine::expire_stale_prepares(UndoRecord& undo) {
    if (abort_after_ops_ == 0) return;
    // std::map iteration = ascending txn_id: deterministic across replicas,
    // which is what lets every replica presume the same aborts at the same
    // log position without any coordination.
    for (auto it = staged_.begin(); it != staged_.end();) {
        if (executed_ - it->second.staged_at <= abort_after_ops_) {
            ++it;
            continue;
        }
        const std::uint64_t txn_id = it->first;
        for (const Bytes& key : it->second.locked_keys) locks_.erase(key);
        undo.expired.emplace_back(txn_id, std::move(it->second));
        it = staged_.erase(it);
        ++expired_txns_;
        // Presumed abort: recorded as an applied abort so the auditor's
        // orphan check sees every participant resolve the transaction.
        notify_txn(txn_id, 2, true);
    }
}

Bytes KvStateMachine::execute(BytesView op_bytes) {
    ++executed_;
    UndoRecord undo;
    Bytes result_wire;

    // Presumed-abort sweep runs BEFORE the op: a decision arriving for an
    // already-expired transaction is uniformly rejected on every replica.
    std::vector<std::pair<std::uint64_t, StagedTxn>> expired;
    {
        UndoRecord sweep;
        expire_stale_prepares(sweep);
        expired = std::move(sweep.expired);
    }

    std::uint8_t t = op_bytes.empty() ? 0 : op_bytes[0];
    if (t >= 1 && t <= 3) {
        auto op = KvOp::parse(op_bytes);
        if (op.has_value()) {
            result_wire = apply_single(*op, undo).serialize();
        }
    } else if (t >= 4 && t <= 7) {
        auto txn = KvTxnOp::parse(op_bytes);
        if (txn.has_value()) {
            switch (txn->type) {
                case KvOpType::kTxnLocal: result_wire = txn_local(*txn, undo); break;
                case KvOpType::kTxnPrepare: result_wire = txn_prepare(*txn, undo); break;
                case KvOpType::kTxnCommit: result_wire = txn_commit(*txn, undo); break;
                default: result_wire = txn_abort(*txn, undo); break;
            }
        }
    }
    if (result_wire.empty()) {
        // Malformed ops still consume a log position deterministically.
        undo = UndoRecord{};
        result_wire = KvResult{KvStatus::kBadRequest, {}}.serialize();
    }
    undo.expired = std::move(expired);
    undo_log_.push_back(std::move(undo));
    return result_wire;
}

void KvStateMachine::undo_last() {
    NEO_ASSERT_MSG(!undo_log_.empty(), "undo without history");
    UndoRecord rec = std::move(undo_log_.back());
    undo_log_.pop_back();
    --executed_;

    switch (rec.type) {
        case KvOpType::kTxnLocal:
            for (auto it = rec.multi.rbegin(); it != rec.multi.rend(); ++it) undo_single(*it);
            break;
        case KvOpType::kTxnPrepare:
            if (rec.took_effect) {
                auto it = staged_.find(rec.txn_id);
                NEO_ASSERT_MSG(it != staged_.end(), "prepare undo without stash");
                for (const Bytes& key : it->second.locked_keys) locks_.erase(key);
                staged_.erase(it);
            }
            break;
        case KvOpType::kTxnCommit:
            if (rec.took_effect) {
                for (auto it = rec.multi.rbegin(); it != rec.multi.rend(); ++it) {
                    undo_single(*it);
                }
                for (const Bytes& key : rec.staged.locked_keys) {
                    locks_.emplace(key, rec.txn_id);
                }
                staged_[rec.txn_id] = std::move(rec.staged);
            }
            break;
        case KvOpType::kTxnAbort:
            if (rec.took_effect) {
                for (const Bytes& key : rec.staged.locked_keys) {
                    locks_.emplace(key, rec.txn_id);
                }
                staged_[rec.txn_id] = std::move(rec.staged);
            }
            break;
        default:
            undo_single(rec);
            break;
    }

    // Reinstate prepares the op's presumed-abort sweep expired (the sweep
    // ran first in execute(), so it is reverted last).
    for (auto it = rec.expired.rbegin(); it != rec.expired.rend(); ++it) {
        for (const Bytes& key : it->second.locked_keys) locks_.emplace(key, it->first);
        staged_[it->first] = std::move(it->second);
        --expired_txns_;
    }
}

void KvStateMachine::commit_prefix(std::uint64_t n) {
    NEO_ASSERT(n >= committed_);
    std::uint64_t newly = n - committed_;
    committed_ = n;
    // Drop undo records for committed ops (oldest first).
    while (newly-- > 0 && !undo_log_.empty()) undo_log_.pop_front();
}

Bytes KvStateMachine::snapshot() const {
    // Deterministic image of everything execute() can observe: every replica
    // at the same log position serialises byte-identical state (BTreeMap
    // iterates in key order, std::map in txn_id order). Config knobs
    // (wait_die_, abort timeouts, Byzantine doubles) are NOT state.
    Writer w(64 + store_.size() * 32);
    w.u64(executed_);
    w.u64(expired_txns_);
    w.u64(static_cast<std::uint64_t>(store_.size()));
    store_.for_each([&w](const Bytes& key, const Bytes& value) {
        w.blob(key);
        w.blob(value);
    });
    w.u32(static_cast<std::uint32_t>(locks_.size()));
    for (const auto& [key, txn] : locks_) {
        w.blob(key);
        w.u64(txn);
    }
    w.u32(static_cast<std::uint32_t>(staged_.size()));
    for (const auto& [txn_id, staged] : staged_) {
        w.u64(txn_id);
        w.u64(staged.staged_at);
        w.u32(static_cast<std::uint32_t>(staged.writes.size()));
        for (const KvOp& op : staged.writes) w.blob(op.serialize());
        w.u32(static_cast<std::uint32_t>(staged.locked_keys.size()));
        for (const Bytes& key : staged.locked_keys) w.blob(key);
    }
    return std::move(w).take();
}

void KvStateMachine::restore(BytesView snap) {
    // The caller verified the image against a certified Merkle root, so a
    // parse failure here is a local bug, not Byzantine input.
    try {
        Reader r(snap);
        BTreeMap store;
        std::map<Bytes, std::uint64_t> locks;
        std::map<std::uint64_t, StagedTxn> staged;
        const std::uint64_t executed = r.u64();
        const std::uint64_t expired = r.u64();
        for (std::uint64_t i = 0, n = r.u64(); i < n; ++i) {
            Bytes key = r.blob(kMaxKey);
            store.put(key, r.blob(kMaxValue));
        }
        for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
            Bytes key = r.blob(kMaxKey);
            locks.emplace(std::move(key), r.u64());
        }
        for (std::uint32_t i = 0, n = r.u32(); i < n; ++i) {
            const std::uint64_t txn_id = r.u64();
            StagedTxn st;
            st.staged_at = r.u64();
            for (std::uint32_t j = 0, m = r.u32(); j < m; ++j) {
                auto op = KvOp::parse(r.blob(8 + kMaxKey + kMaxValue));
                NEO_ASSERT_MSG(op.has_value(), "kv restore: bad staged op");
                st.writes.push_back(std::move(*op));
            }
            for (std::uint32_t j = 0, m = r.u32(); j < m; ++j)
                st.locked_keys.push_back(r.blob(kMaxKey));
            staged.emplace(txn_id, std::move(st));
        }
        r.expect_end();

        store_ = std::move(store);
        locks_ = std::move(locks);
        staged_ = std::move(staged);
        executed_ = executed;
        expired_txns_ = expired;
        // Restored state is a committed checkpoint: no rollback across it.
        committed_ = executed;
        undo_log_.clear();
    } catch (const CodecError&) {
        NEO_ASSERT_MSG(false, "kv restore: malformed snapshot");
    }
}

std::int64_t KvStateMachine::execute_cost_ns(BytesView op) const {
    // B-Tree traversal over ~100K records plus value copies: of the order
    // of a microsecond on the testbed CPUs; writes cost a bit more, and
    // multi-key transactions pay per touched key.
    if (op.empty()) return 1'400;
    switch (op[0]) {
        case static_cast<std::uint8_t>(KvOpType::kGet):
            return 900;
        case static_cast<std::uint8_t>(KvOpType::kTxnLocal):
            return 600 + 1'400 * static_cast<std::int64_t>(peek_u32(op, 1));
        case static_cast<std::uint8_t>(KvOpType::kTxnPrepare):
            return 800 + 1'400 * static_cast<std::int64_t>(peek_u32(op, 9));
        case static_cast<std::uint8_t>(KvOpType::kTxnCommit):
            return 1'600;
        case static_cast<std::uint8_t>(KvOpType::kTxnAbort):
            return 600;
        default:
            return 1'400;
    }
}

}  // namespace neo::app
