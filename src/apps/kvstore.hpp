// Replicated key-value store (the paper's §6.5 application): a B-Tree
// backed state machine with GET/PUT/DELETE operations and the undo support
// speculative protocols need.
#pragma once

#include <deque>
#include <optional>

#include "apps/btree.hpp"
#include "apps/state_machine.hpp"
#include "common/codec.hpp"

namespace neo::app {

enum class KvOpType : std::uint8_t { kGet = 1, kPut = 2, kDelete = 3 };

struct KvOp {
    KvOpType type = KvOpType::kGet;
    Bytes key;
    Bytes value;  // kPut only

    Bytes serialize() const;
    /// Returns nullopt on malformed input (Byzantine clients).
    static std::optional<KvOp> parse(BytesView data);
};

/// Result encoding: status byte + optional value.
enum class KvStatus : std::uint8_t { kOk = 0, kNotFound = 1, kBadRequest = 2 };

struct KvResult {
    KvStatus status = KvStatus::kOk;
    Bytes value;

    Bytes serialize() const;
    static std::optional<KvResult> parse(BytesView data);
};

class KvStateMachine : public StateMachine {
  public:
    Bytes execute(BytesView op) override;
    void undo_last() override;
    void commit_prefix(std::uint64_t n) override;
    std::int64_t execute_cost_ns(BytesView op) const override;

    const BTreeMap& store() const { return store_; }
    BTreeMap& store() { return store_; }
    std::uint64_t executed() const { return executed_; }

  private:
    struct UndoRecord {
        KvOpType type;
        Bytes key;
        bool existed = false;
        Bytes old_value;
    };

    BTreeMap store_;
    std::deque<UndoRecord> undo_log_;
    std::uint64_t executed_ = 0;
    std::uint64_t committed_ = 0;
};

}  // namespace neo::app
