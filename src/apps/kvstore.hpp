// Replicated key-value store (the paper's §6.5 application): a B-Tree
// backed state machine with GET/PUT/DELETE operations, the undo support
// speculative protocols need, and multi-key transactions for sharded
// deployments — a one-shot local form plus the participant half of
// two-phase commit (prepare locks + stages, commit/abort resolves), all
// fully undo-capable so speculative rollback composes with 2PC.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "apps/btree.hpp"
#include "apps/state_machine.hpp"
#include "common/codec.hpp"

namespace neo::app {

enum class KvOpType : std::uint8_t {
    kGet = 1,
    kPut = 2,
    kDelete = 3,
    // Multi-key transactions (share the leading type-byte namespace).
    kTxnLocal = 4,    // all keys on one shard: applied atomically in one op
    kTxnPrepare = 5,  // 2PC phase 1: lock keys, read, stage writes, vote
    kTxnCommit = 6,   // 2PC phase 2: apply the staged write-set
    kTxnAbort = 7,    // 2PC phase 2: discard the staged write-set
};

struct KvOp {
    KvOpType type = KvOpType::kGet;
    Bytes key;
    Bytes value;  // kPut only

    Bytes serialize() const;
    /// Returns nullopt on malformed input (Byzantine clients). Parses the
    /// single-key forms only; transactions use KvTxnOp.
    static std::optional<KvOp> parse(BytesView data);
};

/// Transaction wire forms:
///   kTxnLocal:   type, u32 n, n x blob(KvOp)
///   kTxnPrepare: type, u64 txn_id, u32 n, n x blob(KvOp)
///   kTxnCommit / kTxnAbort: type, u64 txn_id
struct KvTxnOp {
    KvOpType type = KvOpType::kTxnLocal;
    std::uint64_t txn_id = 0;  // globally unique; 0 for kTxnLocal
    std::vector<KvOp> ops;     // the single-key ops (empty for commit/abort)

    Bytes serialize() const;
    static std::optional<KvTxnOp> parse(BytesView data);
};

/// Result encoding: status byte + optional value.
enum class KvStatus : std::uint8_t {
    kOk = 0,
    kNotFound = 1,
    kBadRequest = 2,
    kTxnPrepared = 3,  // prepare vote: locks held, write-set staged
    kTxnAborted = 4,   // prepare vote: lock conflict (or local-txn conflict)
    kTxnUnknown = 5,   // commit for a transaction this shard never prepared
    kTxnWait = 6,      // wait-die: older txn blocked by a younger lock holder;
                       // no locks were taken, the coordinator should retry
};

struct KvResult {
    KvStatus status = KvStatus::kOk;
    Bytes value;

    Bytes serialize() const;
    static std::optional<KvResult> parse(BytesView data);
};

class KvStateMachine : public StateMachine {
  public:
    Bytes execute(BytesView op) override;
    void undo_last() override;
    void commit_prefix(std::uint64_t n) override;
    std::int64_t execute_cost_ns(BytesView op) const override;
    void set_txn_observer(TxnObserver obs) override { txn_obs_ = std::move(obs); }
    Bytes snapshot() const override;
    void restore(BytesView snap) override;

    /// Byzantine test double: the prepare reply claims PREPARED while the
    /// replica internally records an abort vote and stages nothing — the
    /// forged-vote equivocation the auditor must catch.
    void set_byzantine_prepare_equivocation(bool v) { byz_prepare_ = v; }

    /// Wait-die deadlock avoidance (on by default): a prepare that hits a
    /// lock held by a YOUNGER transaction (larger txn_id) votes kTxnWait —
    /// no locks taken, coordinator retries the same txn_id — instead of
    /// aborting. A prepare blocked by an OLDER holder still dies
    /// (kTxnAborted). Combined with canonical-order lock acquisition in
    /// ShardClient this makes 2PC livelock-free under contention. Off =
    /// the original no-wait 2PL (any conflict aborts).
    void set_wait_die(bool v) { wait_die_ = v; }

    /// Presumed-abort timeout for orphaned prepares: a staged transaction
    /// whose decision has not arrived within `n` subsequent executed ops is
    /// deterministically aborted (locks released, abort recorded with the
    /// txn observer) — the coordinator-crash lock-leak fix. Deterministic
    /// across replicas because it is driven by the executed-op count, not
    /// time. 0 disables.
    void set_presumed_abort_after(std::uint64_t n) { abort_after_ops_ = n; }

    const BTreeMap& store() const { return store_; }
    BTreeMap& store() { return store_; }
    std::uint64_t executed() const { return executed_; }
    std::size_t locked_keys() const { return locks_.size(); }
    std::size_t staged_txns() const { return staged_.size(); }
    std::uint64_t expired_txns() const { return expired_txns_; }

  private:
    struct StagedTxn {
        std::vector<KvOp> writes;       // puts/deletes to apply at commit
        std::vector<Bytes> locked_keys; // every key the txn locked
        std::uint64_t staged_at = 0;    // executed_ when the prepare ran
    };

    struct UndoRecord {
        KvOpType type = KvOpType::kGet;
        // Single-key ops.
        Bytes key;
        bool existed = false;
        Bytes old_value;
        // Transactions.
        std::uint64_t txn_id = 0;
        std::vector<UndoRecord> multi;  // per-write undos, applied LIFO
        bool took_effect = false;       // prepare locked / commit-abort had a stash
        StagedTxn staged;               // stash to restore on commit/abort undo
        // Prepares presumed-aborted as a side effect of this op; restored
        // (re-locked, re-staged) when this op is undone.
        std::vector<std::pair<std::uint64_t, StagedTxn>> expired;
    };

    KvResult apply_single(const KvOp& op, UndoRecord& undo);
    void undo_single(UndoRecord& rec);
    void expire_stale_prepares(UndoRecord& undo);
    Bytes txn_local(const KvTxnOp& txn, UndoRecord& undo);
    Bytes txn_prepare(const KvTxnOp& txn, UndoRecord& undo);
    Bytes txn_commit(const KvTxnOp& txn, UndoRecord& undo);
    Bytes txn_abort(const KvTxnOp& txn, UndoRecord& undo);
    void notify_txn(std::uint64_t txn_id, int phase, bool applied) {
        if (txn_obs_) txn_obs_(txn_id, phase, applied);
    }

    BTreeMap store_;
    std::deque<UndoRecord> undo_log_;
    std::map<Bytes, std::uint64_t> locks_;    // key -> holding txn
    std::map<std::uint64_t, StagedTxn> staged_;
    TxnObserver txn_obs_;
    bool byz_prepare_ = false;
    bool wait_die_ = true;
    std::uint64_t abort_after_ops_ = 50'000;
    std::uint64_t expired_txns_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t committed_ = 0;
};

}  // namespace neo::app
