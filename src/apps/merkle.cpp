#include "apps/merkle.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace neo::app {

namespace {

Digest32 hash_pair(const Digest32& a, const Digest32& b) {
    return crypto::sha256_pair(BytesView(a.data(), a.size()), BytesView(b.data(), b.size()));
}

}  // namespace

Digest32 merkle_leaf_hash(std::uint32_t index, BytesView chunk) {
    Bytes buf;
    buf.reserve(4 + chunk.size());
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(index >> (8 * i)));
    buf.insert(buf.end(), chunk.begin(), chunk.end());
    return crypto::sha256(BytesView(buf.data(), buf.size()));
}

MerkleTree::MerkleTree(BytesView data, std::size_t chunk_size)
    : data_(data.begin(), data.end()), chunk_size_(chunk_size) {
    NEO_ASSERT_MSG(chunk_size_ > 0, "merkle: chunk_size must be positive");
    const std::size_t n =
        data_.empty() ? 1 : (data_.size() + chunk_size_ - 1) / chunk_size_;
    std::vector<Digest32> leaves;
    leaves.reserve(n);
    // Slice directly: chunk() is unusable here — its bounds assert reads
    // n_chunks(), which dereferences levels_.front() before any level
    // exists.
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t off = i * chunk_size_;
        const std::size_t len =
            off >= data_.size() ? 0 : std::min(chunk_size_, data_.size() - off);
        leaves.push_back(merkle_leaf_hash(static_cast<std::uint32_t>(i),
                                          BytesView(data_.data() + off, len)));
    }
    levels_.push_back(std::move(leaves));
    while (levels_.back().size() > 1) {
        const std::vector<Digest32>& below = levels_.back();
        std::vector<Digest32> above;
        above.reserve((below.size() + 1) / 2);
        for (std::size_t i = 0; i + 1 < below.size(); i += 2)
            above.push_back(hash_pair(below[i], below[i + 1]));
        if (below.size() % 2 != 0) above.push_back(below.back());  // promote unpaired
        levels_.push_back(std::move(above));
    }
}

BytesView MerkleTree::chunk(std::uint32_t index) const {
    NEO_ASSERT_MSG(index < n_chunks(), "merkle: chunk index out of range");
    const std::size_t off = static_cast<std::size_t>(index) * chunk_size_;
    const std::size_t len = off >= data_.size() ? 0 : std::min(chunk_size_, data_.size() - off);
    return BytesView(data_.data() + off, len);
}

MerkleProof MerkleTree::prove(std::uint32_t index) const {
    NEO_ASSERT_MSG(index < n_chunks(), "merkle: proof index out of range");
    MerkleProof proof;
    proof.index = index;
    proof.n_leaves = n_chunks();
    std::size_t pos = index;
    for (std::size_t level = 0; level + 1 < levels_.size(); ++level) {
        const std::vector<Digest32>& nodes = levels_[level];
        const std::size_t sibling = pos ^ 1;
        if (sibling < nodes.size()) proof.siblings.push_back(nodes[sibling]);
        // Unpaired nodes are promoted verbatim: no sibling at this level.
        pos /= 2;
    }
    return proof;
}

bool merkle_verify(const Digest32& root, BytesView chunk, const MerkleProof& proof) {
    if (proof.n_leaves == 0 || proof.index >= proof.n_leaves) return false;
    Digest32 acc = merkle_leaf_hash(proof.index, chunk);
    std::size_t pos = proof.index;
    std::size_t width = proof.n_leaves;  // node count on the current level
    std::size_t used = 0;
    while (width > 1) {
        const std::size_t sibling = pos ^ 1;
        if (sibling < width) {
            if (used >= proof.siblings.size()) return false;
            const Digest32& sib = proof.siblings[used++];
            acc = (pos % 2 == 0) ? hash_pair(acc, sib) : hash_pair(sib, acc);
        }
        pos /= 2;
        width = (width + 1) / 2;
    }
    return used == proof.siblings.size() && acc == root;
}

}  // namespace neo::app
