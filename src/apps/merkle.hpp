// Chunked Merkle tree over an application snapshot.
//
// Checkpoint state transfer (DESIGN.md §6) ships a snapshot() image in
// fixed-size chunks so a lagging replica can fetch them from untrusted
// peers: the checkpoint certificate binds only the 32-byte root, and each
// chunk carries an inclusion proof the receiver verifies against that root
// before accepting a single byte. Trees are deterministic functions of the
// snapshot bytes — every replica at the same checkpoint builds the same
// root.
//
// Shape: leaves are sha256(chunk index || chunk bytes) — binding the index
// defeats chunk-reordering — and interior nodes are sha256(left || right).
// An odd node on any level is promoted unpaired (Bitcoin-style duplication
// would let a malicious peer serve the duplicated chunk twice).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"

namespace neo::app {

/// Chunk size used by checkpoint state transfer. Small enough that one
/// chunk fits comfortably in a simulated UDP-sized packet budget.
inline constexpr std::size_t kMerkleChunkBytes = 1024;

struct MerkleProof {
    std::uint32_t index = 0;              // leaf (chunk) index
    std::uint32_t n_leaves = 0;           // total leaf count in the tree
    std::vector<Digest32> siblings;       // bottom-up sibling hashes
};

class MerkleTree {
  public:
    /// Builds the tree over `data` split into `chunk_size`-byte chunks.
    /// Empty data still yields one (empty) leaf so the root commits to
    /// "snapshot of zero bytes" rather than being undefined.
    explicit MerkleTree(BytesView data, std::size_t chunk_size = kMerkleChunkBytes);

    const Digest32& root() const { return levels_.back().front(); }
    std::uint32_t n_chunks() const { return static_cast<std::uint32_t>(levels_.front().size()); }
    std::size_t chunk_size() const { return chunk_size_; }

    /// Bytes of chunk `index` (the last chunk may be short).
    BytesView chunk(std::uint32_t index) const;

    /// Inclusion proof for chunk `index`.
    MerkleProof prove(std::uint32_t index) const;

  private:
    Bytes data_;
    std::size_t chunk_size_;
    // levels_[0] = leaf hashes, levels_.back() = {root}.
    std::vector<std::vector<Digest32>> levels_;
};

/// Leaf hash for chunk `index` with content `chunk` (exposed for tests).
Digest32 merkle_leaf_hash(std::uint32_t index, BytesView chunk);

/// Verifies that `chunk` is leaf `proof.index` of the tree with the given
/// root. Rejects out-of-range indices and wrong-length sibling paths.
bool merkle_verify(const Digest32& root, BytesView chunk, const MerkleProof& proof);

}  // namespace neo::app
