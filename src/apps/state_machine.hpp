// Replicated application interface.
//
// All protocols in this repository (NeoBFT and the four baselines) drive
// deterministic state machines through this interface. Speculative
// protocols (NeoBFT, Zyzzyva) additionally need rollback: execute() must
// record enough undo information for undo_last(), and commit_prefix() tells
// the application that the first `n` executed operations are durable and
// their undo records may be discarded.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/bytes.hpp"

namespace neo::app {

class StateMachine {
  public:
    virtual ~StateMachine() = default;

    /// Cross-shard transaction observation: fired from inside execute()
    /// whenever a 2PC phase op is applied. `phase` is 0 = prepare,
    /// 1 = commit, 2 = abort (matching obs::Auditor::TxnPhase); `applied`
    /// = the phase took effect (prepare voted PREPARED / staged writes
    /// applied / discarded), false = the phase was rejected (prepare lock
    /// conflict, or commit for a transaction this shard never prepared).
    /// Applications without transactions ignore the hook.
    using TxnObserver = std::function<void(std::uint64_t txn_id, int phase, bool applied)>;
    virtual void set_txn_observer(TxnObserver obs) { (void)obs; }

    /// Applies `op` deterministically and returns its result. Must record
    /// undo information until the operation is committed.
    virtual Bytes execute(BytesView op) = 0;

    /// Reverts the most recent uncommitted execute(). Called in LIFO order
    /// during speculative rollback.
    virtual void undo_last() = 0;

    /// The first `n` operations ever executed (and not undone) are durable;
    /// undo records for them may be dropped.
    virtual void commit_prefix(std::uint64_t n) = 0;

    /// Virtual CPU nanoseconds one execution of `op` costs the hosting
    /// replica (the simulator charges it; see sim/processing_node.hpp).
    virtual std::int64_t execute_cost_ns(BytesView op) const {
        (void)op;
        return 300;
    }

    /// Serializes the full application state (checkpointing / Merkle state
    /// transfer). Must be a deterministic function of the executed op
    /// sequence: every replica at the same log position produces identical
    /// bytes. The default (empty) suits stateless applications.
    virtual Bytes snapshot() const { return {}; }

    /// Replaces the application state with a snapshot() image. The restored
    /// state counts as fully committed: undo history is discarded and
    /// undo_last() must not be asked to cross the restore point.
    virtual void restore(BytesView snap) { (void)snap; }
};

/// Trivial echo application used by the paper's protocol-level benchmarks
/// (§6.2): the result is the operation itself. Stateless, so undo is free.
class EchoApp : public StateMachine {
  public:
    Bytes execute(BytesView op) override {
        ++executed_;
        return Bytes(op.begin(), op.end());
    }
    void undo_last() override { --executed_; }
    void commit_prefix(std::uint64_t n) override { committed_ = n; }

    Bytes snapshot() const override {
        Bytes b(8);
        for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(executed_ >> (8 * i));
        return b;
    }
    void restore(BytesView snap) override {
        std::uint64_t n = 0;
        for (std::size_t i = 0; i < 8 && i < snap.size(); ++i)
            n |= static_cast<std::uint64_t>(snap[i]) << (8 * i);
        executed_ = committed_ = n;
    }

    std::uint64_t executed() const { return executed_; }
    std::uint64_t committed() const { return committed_; }

  private:
    std::uint64_t executed_ = 0;
    std::uint64_t committed_ = 0;
};

}  // namespace neo::app
