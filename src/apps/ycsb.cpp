#include "apps/ycsb.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace neo::app {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    NEO_ASSERT(n > 0);
    zetan_ = zeta(n, theta);
    zeta2theta_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
    double u = rng.real();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto v = static_cast<std::uint64_t>(static_cast<double>(n_) *
                                        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

YcsbWorkload::YcsbWorkload(YcsbConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), zipf_(cfg.record_count, cfg.zipf_theta) {}

Bytes YcsbWorkload::key_of(std::uint64_t i) const {
    // YCSB-style keys: "user" + zero-padded index keeps ordering uniform.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(i));
    return to_bytes(buf);
}

Bytes YcsbWorkload::value_of(std::uint64_t i) const {
    Bytes v(cfg_.field_length);
    std::uint64_t x = i * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
    for (std::size_t j = 0; j < v.size(); ++j) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v[j] = static_cast<std::uint8_t>('a' + (x % 26));
    }
    return v;
}

void YcsbWorkload::load_into(KvStateMachine& sm) const {
    for (std::uint64_t i = 0; i < cfg_.record_count; ++i) {
        sm.store().put(key_of(i), value_of(i));
    }
}

KvOp YcsbWorkload::next_op() {
    std::uint64_t record = zipf_.next(rng_);
    KvOp op;
    op.key = key_of(record);
    if (rng_.real() < cfg_.read_proportion) {
        op.type = KvOpType::kGet;
    } else {
        op.type = KvOpType::kPut;
        op.value = value_of(rng_.next());
    }
    return op;
}

}  // namespace neo::app
