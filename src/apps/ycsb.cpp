#include "apps/ycsb.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace neo::app {

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta) : n_(n), theta_(theta) {
    NEO_ASSERT(n > 0);
    zetan_ = zeta(n, theta);
    zeta2theta_ = zeta(2, theta);
    alpha_ = 1.0 / (1.0 - theta);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
           (1.0 - zeta2theta_ / zetan_);
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
    double sum = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
    return sum;
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
    double u = rng.real();
    double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    auto v = static_cast<std::uint64_t>(static_cast<double>(n_) *
                                        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return v >= n_ ? n_ - 1 : v;
}

YcsbWorkload::YcsbWorkload(YcsbConfig cfg, std::uint64_t seed)
    : cfg_(cfg), rng_(seed), zipf_(cfg.record_count, cfg.zipf_theta) {}

Bytes YcsbWorkload::key_of(std::uint64_t i) const {
    // YCSB-style keys: "user" + zero-padded index keeps ordering uniform.
    char buf[32];
    std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(i));
    return to_bytes(buf);
}

Bytes YcsbWorkload::value_of(std::uint64_t i) const {
    Bytes v(cfg_.field_length);
    std::uint64_t x = i * 0x9e3779b97f4a7c15ull + 0x2545f4914f6cdd1dull;
    for (std::size_t j = 0; j < v.size(); ++j) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        v[j] = static_cast<std::uint8_t>('a' + (x % 26));
    }
    return v;
}

void YcsbWorkload::load_into(KvStateMachine& sm) const {
    for (std::uint64_t i = 0; i < cfg_.record_count; ++i) {
        sm.store().put(key_of(i), value_of(i));
    }
}

KvTxnOp YcsbWorkload::next_txn(const TxnConfig& tcfg,
                               const std::function<std::size_t(BytesView)>& shard_of,
                               std::size_t n_shards) {
    NEO_ASSERT(tcfg.ops_per_txn > 0 && n_shards > 0);
    const bool want_cross = n_shards > 1 && tcfg.ops_per_txn > 1 &&
                            rng_.real() < tcfg.cross_shard_ratio;

    KvTxnOp txn;
    txn.type = KvOpType::kTxnLocal;
    txn.ops.push_back(next_op());
    const std::size_t home = shard_of(BytesView(txn.ops.front().key));

    while (txn.ops.size() < tcfg.ops_per_txn) {
        KvOp op = next_op();
        if (!want_cross && n_shards > 1) {
            // Keys hash uniformly across shards, so redrawing onto the home
            // shard converges in ~n_shards tries; the fallback (reuse the
            // first key) keeps the op count exact either way.
            for (int tries = 0; tries < 256 && shard_of(BytesView(op.key)) != home; ++tries) {
                op = next_op();
            }
            if (shard_of(BytesView(op.key)) != home) op.key = txn.ops.front().key;
        }
        txn.ops.push_back(std::move(op));
    }

    if (want_cross) {
        bool cross = false;
        for (const KvOp& op : txn.ops) {
            if (shard_of(BytesView(op.key)) != home) { cross = true; break; }
        }
        for (int tries = 0; !cross && tries < 4096; ++tries) {
            KvOp op = next_op();
            if (shard_of(BytesView(op.key)) != home) {
                txn.ops.back() = std::move(op);
                cross = true;
            }
        }
    }
    return txn;
}

KvOp YcsbWorkload::next_op() {
    std::uint64_t record = zipf_.next(rng_);
    KvOp op;
    op.key = key_of(record);
    if (rng_.real() < cfg_.read_proportion) {
        op.type = KvOpType::kGet;
    } else {
        op.type = KvOpType::kPut;
        op.value = value_of(rng_.next());
    }
    return op;
}

}  // namespace neo::app
