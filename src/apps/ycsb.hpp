// YCSB workload generation (Cooper et al., SoCC '10) for the §6.5
// evaluation: workload A = 50% reads / 50% updates over a zipfian key
// popularity distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "apps/kvstore.hpp"
#include "common/rng.hpp"

namespace neo::app {

/// Zipfian generator over [0, n) with parameter theta (YCSB uses 0.99),
/// following the Gray et al. "Quickly generating billion-record synthetic
/// databases" rejection-free algorithm YCSB adopted.
class ZipfianGenerator {
  public:
    ZipfianGenerator(std::uint64_t n, double theta = 0.99);

    std::uint64_t next(Rng& rng);
    std::uint64_t n() const { return n_; }

  private:
    static double zeta(std::uint64_t n, double theta);

    std::uint64_t n_;
    double theta_;
    double alpha_;
    double zetan_;
    double eta_;
    double zeta2theta_;
};

struct YcsbConfig {
    std::uint64_t record_count = 100'000;  // paper: 100K records
    std::size_t field_length = 128;        // paper: 128-byte fields
    double read_proportion = 0.5;          // workload A
    double zipf_theta = 0.99;
};

/// Generates load and transaction operations for the replicated KV store.
class YcsbWorkload {
  public:
    YcsbWorkload(YcsbConfig cfg, std::uint64_t seed);

    /// The i-th record's key (deterministic).
    Bytes key_of(std::uint64_t i) const;
    /// Deterministic initial value of the i-th record.
    Bytes value_of(std::uint64_t i) const;

    /// Pre-loads the dataset directly into a state machine (all replicas
    /// start from identical state, off the measured path).
    void load_into(KvStateMachine& sm) const;

    /// The next transaction op (read or update per the workload mix).
    KvOp next_op();

    /// Multi-key transaction shape for sharded deployments.
    struct TxnConfig {
        std::size_t ops_per_txn = 4;
        /// Fraction of transactions forced to touch at least two shards
        /// (the rest are redrawn onto their first key's shard).
        double cross_shard_ratio = 0.0;
    };

    /// The next multi-key transaction in kTxnLocal form — the coordinator
    /// decides whether 2PC is needed. `shard_of` maps a key to its shard
    /// index (neobft::ShardRouter::shard_index); with one shard every
    /// transaction is trivially single-shard.
    KvTxnOp next_txn(const TxnConfig& tcfg,
                     const std::function<std::size_t(BytesView)>& shard_of,
                     std::size_t n_shards);

    const YcsbConfig& config() const { return cfg_; }

  private:
    YcsbConfig cfg_;
    Rng rng_;
    ZipfianGenerator zipf_;
};

}  // namespace neo::app
