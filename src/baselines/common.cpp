#include "baselines/common.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"
#include "obs/auditor.hpp"
#include "obs/trace.hpp"

namespace neo::baselines {

namespace {
constexpr std::size_t kMaxOp = 1u << 20;
constexpr std::size_t kMaxBatch = 4'096;
}  // namespace

const char* kind_name(std::uint8_t kind) {
    switch (static_cast<Kind>(kind)) {
        case Kind::kRequest: return "request";
        case Kind::kReply: return "reply";
        case Kind::kPrePrepare: return "preprepare";
        case Kind::kPrepare: return "prepare";
        case Kind::kCommit: return "commit";
        case Kind::kCheckpoint: return "checkpoint";
        case Kind::kOrderReq: return "order_req";
        case Kind::kSpecResponse: return "spec_response";
        case Kind::kCommitCert: return "commit_cert";
        case Kind::kLocalCommit: return "local_commit";
        case Kind::kHsProposal: return "hs_proposal";
        case Kind::kHsVote: return "hs_vote";
        case Kind::kMbPrepare: return "mb_prepare";
        case Kind::kMbCommit: return "mb_commit";
        case Kind::kUnrepRequest: return "unrep_request";
        case Kind::kUnrepReply: return "unrep_reply";
        default: return nullptr;
    }
}

void put_signer_sigs(Writer& w, const std::vector<SignerSig>& sigs) {
    w.u32(static_cast<std::uint32_t>(sigs.size()));
    for (const auto& s : sigs) {
        w.u32(s.replica);
        w.blob(s.signature);
    }
}

std::vector<SignerSig> get_signer_sigs(Reader& r) {
    std::uint32_t n = r.u32();
    if (n > 512) throw CodecError("oversized quorum");
    std::vector<SignerSig> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        SignerSig s;
        s.replica = r.u32();
        s.signature = r.blob(256);
        out.push_back(std::move(s));
    }
    return out;
}

// ---------------- Request ----------------

Bytes Request::mac_body() const {
    Writer w(32 + op.size());
    w.str("bft-request");
    w.u32(client);
    w.u64(request_id);
    w.blob(op);
    return std::move(w).take();
}

Bytes Request::serialize() const {
    Writer w(48 + op.size());
    w.u8(static_cast<std::uint8_t>(Kind::kRequest));
    w.u32(client);
    w.u64(request_id);
    w.blob(op);
    w.blob(mac);
    return std::move(w).take();
}

Request Request::parse(Reader& r) {
    Request m;
    m.client = r.u32();
    m.request_id = r.u64();
    m.op = r.blob(kMaxOp);
    m.mac = r.blob(64);
    r.expect_end();
    return m;
}

Digest32 Request::digest() const { return crypto::sha256(mac_body()); }

// ---------------- Reply ----------------

Bytes Reply::mac_body() const {
    Writer w(48 + result.size());
    w.str("bft-reply");
    w.u64(view);
    w.u32(replica);
    w.u64(request_id);
    w.blob(result);
    return std::move(w).take();
}

Bytes Reply::serialize() const {
    Writer w(64 + result.size());
    w.u8(static_cast<std::uint8_t>(Kind::kReply));
    w.u64(view);
    w.u32(replica);
    w.u64(request_id);
    w.blob(result);
    w.blob(mac);
    return std::move(w).take();
}

Reply Reply::parse(Reader& r) {
    Reply m;
    m.view = r.u64();
    m.replica = r.u32();
    m.request_id = r.u64();
    m.result = r.blob(kMaxOp);
    m.mac = r.blob(64);
    r.expect_end();
    return m;
}

// ---------------- Batch helpers ----------------

void put_batch(Writer& w, const std::vector<Request>& batch) {
    w.u32(static_cast<std::uint32_t>(batch.size()));
    for (const auto& req : batch) w.blob(req.serialize());
}

std::vector<Request> get_batch(Reader& r) {
    std::uint32_t n = r.u32();
    if (n > kMaxBatch) throw CodecError("oversized batch");
    std::vector<Request> out;
    out.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        Bytes b = r.blob();
        Reader br(b);
        if (br.u8() != static_cast<std::uint8_t>(Kind::kRequest)) {
            throw CodecError("expected request in batch");
        }
        out.push_back(Request::parse(br));
    }
    return out;
}

Digest32 batch_digest(const std::vector<Request>& batch) {
    crypto::Sha256 ctx;
    ctx.update("bft-batch");
    for (const auto& req : batch) {
        Digest32 d = req.digest();
        ctx.update(BytesView(d.data(), d.size()));
    }
    return ctx.finish();
}

// ---------------- ExecProbe ----------------

void ExecProbe::on_execute(sim::ProcessingNode& node, const Request& req) {
    if (node.sim().trace() == nullptr && auditor_ == nullptr) {
        ++next_slot_;
        return;
    }
    on_execute_wire(node, req.serialize());
}

void ExecProbe::on_execute_wire(sim::ProcessingNode& node, BytesView wire) {
    std::uint64_t slot = ++next_slot_;
    obs::TraceSink* tr = node.sim().trace();
    if (tr == nullptr && auditor_ == nullptr) return;
    std::uint64_t tid = obs::trace_id(wire);
    if (auditor_) {
        std::uint64_t audited = equivocate_ ? (tid ^ 0x6571756976ull) : tid;
        auditor_->on_execute(node.sim().current_shard(), node.sim().now(), node.id(), slot,
                             audited, /*noop=*/false);
    }
    if (tr) {
        tr->span_begin(node.sim().now(), node.id(), "execute", tid, slot);
        tr->span_end(node.sim().now(), node.id(), "execute", tid, slot);
    }
}

void trace_batch_add(sim::ProcessingNode& node, const Request& req) {
    if (obs::TraceSink* tr = node.sim().trace()) {
        tr->span_begin(node.sim().now(), node.id(), "batch", obs::trace_id(req.serialize()));
    }
}

void trace_batch_seal(sim::ProcessingNode& node, const std::vector<Request>& batch) {
    obs::TraceSink* tr = node.sim().trace();
    if (tr == nullptr) return;
    for (const Request& req : batch) {
        tr->span_end(node.sim().now(), node.id(), "batch", obs::trace_id(req.serialize()));
    }
}

void charge_batch_seal(crypto::NodeCrypto& crypto) {
    crypto.meter().charge(crypto.root().costs().batch_seal_ns);
}

// ---------------- QuorumClient ----------------

QuorumClient::QuorumClient(BaseConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                           std::size_t required_matches, sim::Time retry_timeout)
    : cfg_(std::move(cfg)), crypto_(std::move(crypto)), required_(required_matches),
      retry_timeout_(retry_timeout) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void QuorumClient::invoke(Bytes op, Callback cb) {
    NEO_ASSERT_MSG(!outstanding_.has_value(), "one outstanding request per client");
    Request req;
    req.client = id();
    req.request_id = next_request_id_++;
    req.op = std::move(op);
    req.mac = crypto_->mac_for(cfg_.primary(0), req.mac_body());

    Outstanding out;
    out.request_id = req.request_id;
    out.wire = sim::Packet(req.serialize());
    out.cb = std::move(cb);
    outstanding_ = std::move(out);
    if (obs::TraceSink* tr = sim().trace()) {
        outstanding_->trace_id = obs::trace_id(outstanding_->wire.view());
        tr->span_begin(sim().now(), id(), "request", outstanding_->trace_id);
    }
    send_request(/*broadcast=*/false);
}

void QuorumClient::send_request(bool broadcast) {
    if (!outstanding_.has_value()) return;
    if (broadcast) {
        for (NodeId r : cfg_.replicas) send_to(r, outstanding_->wire);
    } else {
        send_to(cfg_.primary(0), outstanding_->wire);
    }
    outstanding_->retry_timer =
        set_timer(retry_timeout_, [this] { send_request(true); }, "request_retry");
}

void QuorumClient::handle(NodeId from, BytesView data) {
    if (data.empty() || data[0] != static_cast<std::uint8_t>(Kind::kReply)) return;
    try {
        Reader r(data.subspan(1));
        Reply reply = Reply::parse(r);
        if (!outstanding_.has_value() || reply.request_id != outstanding_->request_id) return;
        if (reply.replica != from || !cfg_.is_replica(from)) return;
        if (!crypto_->check_mac_from(from, reply.mac_body(), reply.mac)) return;

        auto& votes = outstanding_->votes[reply.result];
        votes.insert(from);
        if (obs::TraceSink* tr = sim().trace();
            tr != nullptr && !outstanding_->quorum_span_open) {
            outstanding_->quorum_span_open = true;
            tr->span_begin(sim().now(), id(), "quorum", outstanding_->trace_id, from);
        }
        if (votes.size() >= required_) {
            Bytes result = reply.result;
            Callback cb = std::move(outstanding_->cb);
            if (obs::TraceSink* tr = sim().trace()) {
                // peer = the replica whose reply completed the quorum.
                tr->span_end(sim().now(), id(), "quorum", outstanding_->trace_id, from);
                tr->span_end(sim().now(), id(), "request", outstanding_->trace_id, from);
            }
            cancel_timer(outstanding_->retry_timer);
            outstanding_.reset();
            ++completed_;
            cb(std::move(result));
        }
    } catch (const CodecError&) {
    }
}

// ---------------- Unreplicated ----------------

UnreplicatedServer::UnreplicatedServer(std::unique_ptr<crypto::NodeCrypto> crypto)
    : crypto_(std::move(crypto)) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void UnreplicatedServer::handle(NodeId from, BytesView data) {
    if (data.empty() || data[0] != static_cast<std::uint8_t>(Kind::kUnrepRequest)) return;
    try {
        Reader r(data.subspan(1));
        std::uint64_t request_id = r.u64();
        Bytes op = r.blob();
        Bytes mac = r.blob(64);
        r.expect_end();
        if (!crypto_->check_mac_from(from, op, mac)) return;
        ++handled_;
        probe_.on_execute_wire(*this, data);

        Writer w(32 + op.size());
        w.u8(static_cast<std::uint8_t>(Kind::kUnrepReply));
        w.u64(request_id);
        w.blob(op);  // echo
        w.blob(crypto_->mac_for(from, op));
        send_to(from, std::move(w).take());
    } catch (const CodecError&) {
    }
}

UnreplicatedClient::UnreplicatedClient(NodeId server, std::unique_ptr<crypto::NodeCrypto> crypto)
    : server_(server), crypto_(std::move(crypto)) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void UnreplicatedClient::invoke(Bytes op, Callback cb) {
    NEO_ASSERT(!outstanding_.has_value());
    std::uint64_t rid = next_request_id_++;
    outstanding_ = {rid, std::move(cb)};
    Writer w(32 + op.size());
    w.u8(static_cast<std::uint8_t>(Kind::kUnrepRequest));
    w.u64(rid);
    w.blob(op);
    w.blob(crypto_->mac_for(server_, op));
    Bytes wire = std::move(w).take();
    if (obs::TraceSink* tr = sim().trace()) {
        trace_id_ = obs::trace_id(wire);
        tr->span_begin(sim().now(), id(), "request", trace_id_);
    }
    send_to(server_, std::move(wire));
}

void UnreplicatedClient::handle(NodeId from, BytesView data) {
    if (from != server_ || data.empty() ||
        data[0] != static_cast<std::uint8_t>(Kind::kUnrepReply)) {
        return;
    }
    try {
        Reader r(data.subspan(1));
        std::uint64_t rid = r.u64();
        Bytes result = r.blob();
        Bytes mac = r.blob(64);
        r.expect_end();
        if (!outstanding_.has_value() || outstanding_->first != rid) return;
        if (!crypto_->check_mac_from(from, result, mac)) return;
        Callback cb = std::move(outstanding_->second);
        if (obs::TraceSink* tr = sim().trace()) {
            tr->span_end(sim().now(), id(), "request", trace_id_, from);
        }
        outstanding_.reset();
        ++completed_;
        cb(std::move(result));
    } catch (const CodecError&) {
    }
}

}  // namespace neo::baselines
