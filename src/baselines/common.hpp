// Shared infrastructure for the four comparison protocols (PBFT, Zyzzyva,
// HotStuff, MinBFT): request/reply wire formats, batching, a generic
// leader-directed client, and the unreplicated echo server baseline.
//
// All protocols follow the paper's evaluation methodology (§6): the same
// framework, request batching "following the batching techniques proposed
// in their original work", MAC-authenticated client requests/replies, and
// signed replica-to-replica protocol messages.
//
// Scope note (see DESIGN.md §6): baseline view-change protocols are not
// exercised by any figure in the paper (only NeoBFT's leader/sequencer is
// ever killed), so the baselines implement their normal-case protocols
// faithfully (message pattern, quorums, authenticator counts) plus
// checkpointing where it affects steady-state cost.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/codec.hpp"
#include "common/types.hpp"
#include "crypto/identity.hpp"
#include "sim/adaptive_batch.hpp"
#include "sim/costs.hpp"
#include "sim/processing_node.hpp"

namespace neo::obs {
class Auditor;
}

namespace neo::baselines {

enum class Kind : std::uint8_t {
    kRequest = 0x40,
    kReply = 0x41,
    // PBFT
    kPrePrepare = 0x42,
    kPrepare = 0x43,
    kCommit = 0x44,
    kCheckpoint = 0x45,
    // Zyzzyva
    kOrderReq = 0x48,
    kSpecResponse = 0x49,
    kCommitCert = 0x4a,
    kLocalCommit = 0x4b,
    // HotStuff
    kHsProposal = 0x50,
    kHsVote = 0x51,
    // MinBFT
    kMbPrepare = 0x58,
    kMbCommit = 0x59,
    // Unreplicated
    kUnrepRequest = 0x5e,
    kUnrepReply = 0x5f,
};

/// Stable name for a baseline wire kind; nullptr for unknown bytes.
/// Suitable as a metrics key fragment.
const char* kind_name(std::uint8_t kind);

struct BaseConfig {
    std::vector<NodeId> replicas;
    int f = 1;
    /// Adaptive-batching bounds: `batch_max` caps the seal threshold the
    /// controller may grow to, `batch_delay` is the latency budget the
    /// oldest queued request can wait before a forced flush. The threshold
    /// itself tracks load (see sim::AdaptiveBatchController).
    std::size_t batch_max = 16;
    sim::Time batch_delay = 100 * sim::kMicrosecond;

    sim::AdaptiveBatchPolicy batch_policy() const {
        return sim::AdaptiveBatchPolicy{1, batch_max, batch_delay};
    }

    int n() const { return static_cast<int>(replicas.size()); }
    bool is_replica(NodeId node) const {
        for (NodeId r : replicas) {
            if (r == node) return true;
        }
        return false;
    }
    NodeId primary(std::uint64_t view) const {
        return replicas[static_cast<std::size_t>(view % replicas.size())];
    }
    std::vector<NodeId> others(NodeId self) const {
        std::vector<NodeId> out;
        for (NodeId r : replicas) {
            if (r != self) out.push_back(r);
        }
        return out;
    }
};

/// Signed quorum element used by quorum certificates (HotStuff QCs).
struct SignerSig {
    NodeId replica = 0;
    Bytes signature;
};

void put_signer_sigs(Writer& w, const std::vector<SignerSig>& sigs);
std::vector<SignerSig> get_signer_sigs(Reader& r);

// ---------------- Request / Reply ----------------

struct Request {
    NodeId client = 0;
    std::uint64_t request_id = 0;
    Bytes op;
    Bytes mac;  // pairwise MAC to the primary (verified and re-MACed on forward)

    Bytes mac_body() const;
    Bytes serialize() const;
    static Request parse(Reader& r);
    /// Digest identifying the request inside batches.
    Digest32 digest() const;
};

struct Reply {
    std::uint64_t view = 0;
    NodeId replica = 0;
    std::uint64_t request_id = 0;
    Bytes result;
    Bytes mac;

    Bytes mac_body() const;
    Bytes serialize() const;
    static Reply parse(Reader& r);
};

/// Serialization helpers for request batches.
void put_batch(Writer& w, const std::vector<Request>& batch);
std::vector<Request> get_batch(Reader& r);
Digest32 batch_digest(const std::vector<Request>& batch);

// ---------------- Batcher ----------------

/// Accumulates client requests at the leader; seals a batch when the
/// adaptive threshold is reached or the latency budget elapsed since the
/// first one. The threshold grows with queue depth and decays when the
/// timer flushes underfull batches (sim::AdaptiveBatchController), so low
/// load pays no batching latency and saturation amortises per-batch
/// protocol cost over up to `policy.max_batch` requests.
class Batcher {
  public:
    using SealFn = std::function<void(std::vector<Request>)>;

    explicit Batcher(sim::AdaptiveBatchPolicy policy) : ctrl_(policy) {}

    void add(Request req) { pending_.push_back(std::move(req)); }
    bool should_seal_by_size() const { return pending_.size() >= ctrl_.target(); }
    bool empty() const { return pending_.empty(); }
    std::size_t size() const { return pending_.size(); }
    sim::Time delay() const { return ctrl_.flush_delay(); }
    const sim::AdaptiveBatchController& controller() const { return ctrl_; }

    /// Seals the pending batch and feeds the controller. A queue at or
    /// above the threshold counts as a size seal even when the flush timer
    /// won the race to call this.
    std::vector<Request> seal() {
        ctrl_.on_seal(pending_.size(), pending_.size() >= ctrl_.target());
        std::vector<Request> out = std::move(pending_);
        pending_.clear();
        return out;
    }

  private:
    sim::AdaptiveBatchController ctrl_;
    std::vector<Request> pending_;
};

/// Request-scoped "batch" spans: begin when the leader queues a request,
/// end (for every request in the batch) at the seal. The critical-path
/// analyzer reports the interval as the phase_batch wait. No-ops when
/// tracing is off.
void trace_batch_add(sim::ProcessingNode& node, const Request& req);
void trace_batch_seal(sim::ProcessingNode& node, const std::vector<Request>& batch);

/// Virtual cost of a seal decision, charged to the sealing node's meter.
void charge_batch_seal(crypto::NodeCrypto& crypto);

// ---------------- Execution probe ----------------

/// Shared execute-side instrumentation for the baseline replicas: assigns a
/// per-node execution index (the audited "slot"), reports each executed
/// request to the deployment's safety Auditor, and emits a request-scoped
/// "execute" span keyed by obs::trace_id over the request's canonical wire
/// bytes (the same id the client derives, so spans correlate end to end).
///
/// All baselines execute requests in commit order, so the execution index is
/// directly comparable across replicas: index k must carry the same request
/// digest everywhere, or the run diverged.
class ExecProbe {
  public:
    void set_auditor(obs::Auditor* a) { auditor_ = a; }

    /// Byzantine strategy hook (scenario engine): report a poisoned digest
    /// for every executed request so the audited execution stream diverges
    /// from the honest replicas'. Request-scoped spans keep the honest id —
    /// only the safety claim lies.
    void set_equivocate(bool on) { equivocate_ = on; }

    /// Call from inside the executing node's event, once per applied
    /// request. Zero-duration execute spans still carry the phase cut the
    /// critical-path analyzer keys on.
    void on_execute(sim::ProcessingNode& node, const Request& req);
    /// Variant for servers that never parse a Request (unreplicated echo):
    /// `wire` is the request's full wire image, kind byte included.
    void on_execute_wire(sim::ProcessingNode& node, BytesView wire);

  private:
    obs::Auditor* auditor_ = nullptr;
    std::uint64_t next_slot_ = 0;
    bool equivocate_ = false;
};

// ---------------- Generic client ----------------

/// Closed-loop client for leader-directed protocols: sends the request to
/// the primary and accepts the result after `required_matches` distinct
/// replicas return matching MAC-authenticated replies.
class QuorumClient : public sim::ProcessingNode {
  public:
    using Callback = std::function<void(Bytes result)>;

    QuorumClient(BaseConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                 std::size_t required_matches,
                 sim::Time retry_timeout = 20 * sim::kMillisecond);

    void invoke(Bytes op, Callback cb);
    bool busy() const { return outstanding_.has_value(); }
    std::uint64_t completed() const { return completed_; }
    crypto::NodeCrypto& node_crypto() { return *crypto_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct Outstanding {
        std::uint64_t request_id;
        sim::Packet wire;  // serialized signed Request (shared on broadcast retry)
        std::uint64_t trace_id = 0;      // obs::trace_id(wire); 0 = untraced
        bool quorum_span_open = false;   // first matching reply seen
        Callback cb;
        std::map<Bytes, std::set<NodeId>> votes;  // result -> replicas
        TimerId retry_timer = 0;
    };

    void send_request(bool broadcast);

    BaseConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    std::size_t required_;
    sim::Time retry_timeout_;
    std::uint64_t next_request_id_ = 1;
    std::optional<Outstanding> outstanding_;
    std::uint64_t completed_ = 0;
};

// ---------------- Unreplicated baseline ----------------

/// Plain echo-RPC server: the "Unreplicated" line in Fig 7.
class UnreplicatedServer : public sim::ProcessingNode {
  public:
    explicit UnreplicatedServer(std::unique_ptr<crypto::NodeCrypto> crypto);
    std::uint64_t handled() const { return handled_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  public:
    void set_auditor(obs::Auditor* a) { probe_.set_auditor(a); }

  private:
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    std::uint64_t handled_ = 0;
    ExecProbe probe_;
};

class UnreplicatedClient : public sim::ProcessingNode {
  public:
    using Callback = std::function<void(Bytes result)>;

    UnreplicatedClient(NodeId server, std::unique_ptr<crypto::NodeCrypto> crypto);
    void invoke(Bytes op, Callback cb);
    std::uint64_t completed() const { return completed_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    NodeId server_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    std::uint64_t next_request_id_ = 1;
    std::optional<std::pair<std::uint64_t, Callback>> outstanding_;
    std::uint64_t trace_id_ = 0;  // current request's span id (0 = untraced)
    std::uint64_t completed_ = 0;
};

}  // namespace neo::baselines
