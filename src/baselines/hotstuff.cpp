#include "baselines/hotstuff.hpp"

#include "obs/metrics.hpp"

#include "common/assert.hpp"

namespace neo::baselines {

HotStuffReplica::HotStuffReplica(HotStuffConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto)
    : cfg_(cfg), crypto_(std::move(crypto)), batcher_(cfg.batch_policy()) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void HotStuffReplica::handle(NodeId from, BytesView data) {
    if (data.empty()) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<Kind>(data[0])) {
            case Kind::kRequest: on_request(from, r); break;
            case Kind::kHsProposal: on_proposal(from, r); break;
            case Kind::kHsVote: on_vote(from, r); break;
            default: break;
        }
    } catch (const CodecError&) {
    }
}

void HotStuffReplica::on_request(NodeId from, Reader& r) {
    Request req = Request::parse(r);
    if (req.client != from) return;
    auto it = clients_.find(req.client);
    if (it != clients_.end() && req.request_id <= it->second.first) {
        if (req.request_id == it->second.first && !it->second.second.empty()) {
            send_to(req.client, it->second.second);
        }
        return;
    }
    if (!is_leader()) return;
    if (!crypto_->check_mac_from(req.client, req.mac_body(), req.mac)) return;

    trace_batch_add(*this, req);
    batcher_.add(std::move(req));
    if (batcher_.should_seal_by_size()) {
        seal_batch();
    } else if (!batch_timer_armed_) {
        batch_timer_armed_ = true;
        set_timer(batcher_.delay(), [this] {
            batch_timer_armed_ = false;
            if (!batcher_.empty()) seal_batch();
        }, "batch_flush");
    }
}

Bytes HotStuffReplica::vote_body(int phase, std::uint64_t seq, const Digest32& digest,
                                 NodeId replica) const {
    Writer w(64);
    w.str("hotstuff-vote");
    w.u8(static_cast<std::uint8_t>(phase));
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    w.u32(replica);
    return std::move(w).take();
}

Bytes HotStuffReplica::proposal_body(int phase, std::uint64_t seq, const Digest32& digest) const {
    Writer w(64);
    w.str("hotstuff-proposal");
    w.u8(static_cast<std::uint8_t>(phase));
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    return std::move(w).take();
}

bool HotStuffReplica::verify_qc(int phase, std::uint64_t seq, const Digest32& digest,
                                const std::vector<SignerSig>& qc) {
    std::set<NodeId> seen;
    std::size_t valid = 0;
    for (const auto& s : qc) {
        if (!cfg_.is_replica(s.replica) || !seen.insert(s.replica).second) continue;
        if (!crypto_->verify(s.replica, vote_body(phase, seq, digest, s.replica), s.signature)) {
            continue;
        }
        ++valid;
    }
    return valid >= static_cast<std::size_t>(2 * cfg_.f + 1);
}

void HotStuffReplica::seal_batch() {
    std::vector<Request> batch = batcher_.seal();
    if (obs::TraceSink* tr = sim().trace()) tr->batch(sim().now(), id(), "seal_batch", batch.size());
    trace_batch_seal(*this, batch);
    charge_batch_seal(*crypto_);
    std::uint64_t seq = next_seq_++;
    Digest32 digest = batch_digest(batch);

    Instance& inst = instances_[seq];
    inst.batch = batch;
    inst.digest = digest;

    // PREPARE proposal carries the batch; later phases carry QCs only.
    Writer w(256);
    w.u8(static_cast<std::uint8_t>(Kind::kHsProposal));
    w.u8(0);  // phase
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    put_batch(w, batch);
    put_signer_sigs(w, {});  // no justify QC for the prepare phase
    w.blob(crypto_->sign(proposal_body(0, seq, digest)));
    broadcast(cfg_.others(id()), std::move(w).take());

    // Leader votes for its own proposal.
    inst.votes[0][id()] = crypto_->sign(vote_body(0, seq, digest, id()));
    inst.phase = 0;
    leader_try_advance(seq);
}

void HotStuffReplica::on_proposal(NodeId from, Reader& r) {
    int phase = r.u8();
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 digest = r.digest32();
    std::vector<Request> batch;
    if (phase == 0) batch = get_batch(r);
    std::vector<SignerSig> qc = get_signer_sigs(r);
    Bytes sig = r.blob(256);
    r.expect_end();

    if (view != view_ || from != cfg_.primary(view_)) return;
    if (phase < 0 || phase > 3) return;
    if (seq <= stable_checkpoint_) return;  // pre-checkpoint: instance GC'd
    if (!crypto_->verify(from, proposal_body(phase, seq, digest), sig)) return;

    Instance& inst = instances_[seq];
    if (phase == 0) {
        if (batch_digest(batch) != digest) return;
        if (!inst.batch.empty() && inst.digest != digest) return;
        inst.batch = std::move(batch);
        inst.digest = digest;
        send_vote(seq, 0, digest);
        return;
    }
    if (inst.digest != digest || inst.batch.empty()) return;
    // Phases 1..3 justify with the previous phase's QC.
    if (!verify_qc(phase - 1, seq, digest, qc)) return;

    if (phase < 3) {
        send_vote(seq, phase, digest);
    } else {
        inst.decided = true;
        try_execute();
    }
}

void HotStuffReplica::send_vote(std::uint64_t seq, int phase, const Digest32& digest) {
    Writer w(128);
    w.u8(static_cast<std::uint8_t>(Kind::kHsVote));
    w.u8(static_cast<std::uint8_t>(phase));
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    w.u32(id());
    w.blob(crypto_->sign(vote_body(phase, seq, digest, id())));
    send_to(cfg_.primary(view_), std::move(w).take());
    instances_[seq].phase = phase;
}

void HotStuffReplica::on_vote(NodeId from, Reader& r) {
    int phase = r.u8();
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 digest = r.digest32();
    NodeId replica = r.u32();
    Bytes sig = r.blob(256);
    r.expect_end();

    if (view != view_ || !is_leader()) return;
    if (replica != from || !cfg_.is_replica(from)) return;
    if (phase < 0 || phase > 2) return;
    if (seq <= stable_checkpoint_) return;  // stale vote for a GC'd instance
    Instance& inst = instances_[seq];
    if (inst.digest != digest) return;
    if (!crypto_->verify(from, vote_body(phase, seq, digest, replica), sig)) return;
    inst.votes[phase][from] = std::move(sig);
    leader_try_advance(seq);
}

void HotStuffReplica::leader_try_advance(std::uint64_t seq) {
    Instance& inst = instances_[seq];
    for (int phase = 0; phase <= 2; ++phase) {
        if (inst.qc_sent[phase]) continue;
        if (inst.votes[phase].size() < static_cast<std::size_t>(2 * cfg_.f + 1)) return;
        inst.qc_sent[phase] = true;

        std::vector<SignerSig> qc;
        for (const auto& [node, sig] : inst.votes[phase]) {
            qc.push_back({node, sig});
            if (qc.size() == static_cast<std::size_t>(2 * cfg_.f + 1)) break;
        }

        int next_phase = phase + 1;
        Writer w(512);
        w.u8(static_cast<std::uint8_t>(Kind::kHsProposal));
        w.u8(static_cast<std::uint8_t>(next_phase));
        w.u64(view_);
        w.u64(seq);
        w.raw(BytesView(inst.digest.data(), inst.digest.size()));
        put_signer_sigs(w, qc);
        w.blob(crypto_->sign(proposal_body(next_phase, seq, inst.digest)));
        broadcast(cfg_.others(id()), std::move(w).take());

        if (next_phase < 3) {
            // Leader's own vote for the next phase.
            inst.votes[next_phase][id()] =
                crypto_->sign(vote_body(next_phase, seq, inst.digest, id()));
        } else {
            inst.decided = true;
            try_execute();
        }
    }
}

void HotStuffReplica::try_execute() {
    while (true) {
        auto it = instances_.find(last_executed_ + 1);
        if (it == instances_.end() || it->second.executed || it->second.batch.empty()) break;
        Instance& inst = it->second;
        if (!inst.decided) break;

        for (const Request& req : inst.batch) {
            auto cit = clients_.find(req.client);
            if (cit != clients_.end() && req.request_id <= cit->second.first) continue;
            charge(sim::kPerBatchedRequestNs);
            // Client authenticator (MAC-vector entry) verification: PBFT-
            // lineage protocols verify one entry per request per replica.
            crypto_->meter().macs++;
            crypto_->meter().charge(crypto_->root().costs().mac_ns);
            Bytes result = app_ ? app_(req.op) : req.op;
            charge(300);
            ++stats_.requests_executed;
            probe_.on_execute(*this, req);

            Reply reply;
            reply.view = view_;
            reply.replica = id();
            reply.request_id = req.request_id;
            reply.result = std::move(result);
            reply.mac = crypto_->mac_for(req.client, reply.mac_body());
            sim::Packet wire(reply.serialize());
            clients_[req.client] = {req.request_id, wire};
            send_to(req.client, std::move(wire));
        }
        inst.executed = true;
        ++last_executed_;
        ++stats_.batches_decided;
        if (obs::TraceSink* tr = sim().trace()) {
            tr->phase(sim().now(), id(), "decide_batch", last_executed_);
        }
        // Garbage-collect decided instances.
        instances_.erase(instances_.begin(), instances_.find(last_executed_));
    }
    maybe_checkpoint();
}

void HotStuffReplica::maybe_checkpoint() {
    if (cfg_.checkpoint_interval == 0) return;
    std::uint64_t target =
        (last_executed_ / cfg_.checkpoint_interval) * cfg_.checkpoint_interval;
    if (target == 0 || target <= stable_checkpoint_) return;
    stable_checkpoint_ = target;
    ++stats_.checkpoints;
    instances_.erase(instances_.begin(), instances_.upper_bound(target));
}


void HotStuffReplica::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".batches_decided", static_cast<double>(stats_.batches_decided));
        r.set_value(prefix + ".requests_executed", static_cast<double>(stats_.requests_executed));
        r.set_value(prefix + ".checkpoints", static_cast<double>(stats_.checkpoints));
        r.set_value(prefix + ".executed_seq", static_cast<double>(last_executed_));
    });
    register_rx_metrics(reg, prefix, &kind_name);
}

}  // namespace neo::baselines
