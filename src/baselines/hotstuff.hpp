// HotStuff (Yin et al., PODC '19), basic (non-chained) variant: leader-based
// three-phase BFT with linear authenticator complexity. Each phase collects
// a quorum certificate of 2f+1 votes; the decide broadcast releases
// execution. Batching amortises the phases, at the cost of the extra
// message delays the paper's Fig 7 latency numbers show.
//
// Quorum certificates are signature vectors (the paper's SBFT/HotStuff
// deployments use threshold signatures; a vector has the same
// message-pattern and per-signer costs, see DESIGN.md §6).
#pragma once

#include "baselines/common.hpp"

namespace neo::baselines {

struct HotStuffConfig : BaseConfig {
    /// Checkpoint cadence (sequence numbers): crossing a boundary advances
    /// the stable floor, GCs instances below it and rejects stale
    /// proposals/votes (which would otherwise recreate erased instances).
    /// 0 disables.
    std::uint64_t checkpoint_interval = 128;
};

class HotStuffReplica : public sim::ProcessingNode {
  public:
    HotStuffReplica(HotStuffConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto);

    using AppFn = std::function<Bytes(BytesView)>;
    void set_app(AppFn app) { app_ = std::move(app); }

    struct Stats {
        std::uint64_t batches_decided = 0;
        std::uint64_t requests_executed = 0;
        std::uint64_t checkpoints = 0;
    };
    const Stats& stats() const { return stats_; }
    /// Publishes protocol counters (and per-kind rx counts) under `prefix`
    /// at every registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);
    crypto::NodeCrypto& node_crypto() { return *crypto_; }
    /// Report executed requests to the deployment's safety Auditor.
    void set_auditor(obs::Auditor* a) { probe_.set_auditor(a); }
    /// Byzantine strategy hook: audited execution digests diverge from the
    /// honest replicas' (the auditor must flag divergent_commit).
    void set_equivocate(bool on) { probe_.set_equivocate(on); }
    std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    // Phases: 0 = prepare, 1 = pre-commit, 2 = commit, 3 = decide.
    struct Instance {
        std::vector<Request> batch;
        Digest32 digest{};
        int phase = 0;                     // highest phase we voted in
        std::map<NodeId, Bytes> votes[3];  // leader: votes per phase
        bool qc_sent[3] = {false, false, false};
        bool decided = false;
        bool executed = false;
    };

    bool is_leader() const { return cfg_.primary(view_) == id(); }
    void on_request(NodeId from, Reader& r);
    void seal_batch();
    void on_proposal(NodeId from, Reader& r);
    void on_vote(NodeId from, Reader& r);
    void send_vote(std::uint64_t seq, int phase, const Digest32& digest);
    void leader_try_advance(std::uint64_t seq);
    void try_execute();
    void maybe_checkpoint();

    Bytes vote_body(int phase, std::uint64_t seq, const Digest32& digest, NodeId replica) const;
    Bytes proposal_body(int phase, std::uint64_t seq, const Digest32& digest) const;
    bool verify_qc(int phase, std::uint64_t seq, const Digest32& digest,
                   const std::vector<SignerSig>& qc);

    HotStuffConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    AppFn app_;
    std::uint64_t view_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint64_t last_executed_ = 0;
    std::map<std::uint64_t, Instance> instances_;
    std::uint64_t stable_checkpoint_ = 0;
    Batcher batcher_;
    bool batch_timer_armed_ = false;
    std::map<NodeId, std::pair<std::uint64_t, sim::Packet>> clients_;
    Stats stats_;
    ExecProbe probe_;
};

}  // namespace neo::baselines
