#include "baselines/minbft.hpp"

#include "obs/metrics.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace neo::baselines {

MinbftReplica::MinbftReplica(MinbftConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                             std::uint64_t usig_seed)
    : cfg_(cfg), crypto_(std::move(crypto)), usig_(usig_seed, 0),
      batcher_(cfg.batch_policy()) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void MinbftReplica::handle(NodeId from, BytesView data) {
    if (data.empty()) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<Kind>(data[0])) {
            case Kind::kRequest: on_request(from, r); break;
            case Kind::kMbPrepare: on_prepare(from, r); break;
            case Kind::kMbCommit: on_commit(from, r); break;
            default: break;
        }
    } catch (const CodecError&) {
    }
}

Usig::UI MinbftReplica::metered_create(const Digest32& digest) {
    usig_.set_owner(id());
    charge(cfg_.usig_call_ns);
    ++stats_.usig_calls;
    return usig_.create(digest);
}

bool MinbftReplica::metered_verify(NodeId owner, const Digest32& digest, const Usig::UI& ui) {
    charge(cfg_.usig_call_ns);
    ++stats_.usig_calls;
    return usig_.verify(owner, digest, ui);
}

Digest32 MinbftReplica::prepare_digest(std::uint64_t view, std::uint64_t seq,
                                       const Digest32& batch_d) const {
    Writer w(56);
    w.str("minbft-prepare");
    w.u64(view);
    w.u64(seq);
    w.raw(BytesView(batch_d.data(), batch_d.size()));
    return crypto::sha256(w.bytes());
}

void MinbftReplica::on_request(NodeId from, Reader& r) {
    Request req = Request::parse(r);
    if (req.client != from) return;
    auto it = clients_.find(req.client);
    if (it != clients_.end() && req.request_id <= it->second.first) {
        if (req.request_id == it->second.first && !it->second.second.empty()) {
            send_to(req.client, it->second.second);
        }
        return;
    }
    if (!is_primary()) return;
    if (!crypto_->check_mac_from(req.client, req.mac_body(), req.mac)) return;

    trace_batch_add(*this, req);
    batcher_.add(std::move(req));
    if (batcher_.should_seal_by_size()) {
        seal_batch();
    } else if (!batch_timer_armed_) {
        batch_timer_armed_ = true;
        set_timer(batcher_.delay(), [this] {
            batch_timer_armed_ = false;
            if (!batcher_.empty()) seal_batch();
        }, "batch_flush");
    }
}

void MinbftReplica::seal_batch() {
    std::vector<Request> batch = batcher_.seal();
    if (obs::TraceSink* tr = sim().trace()) tr->batch(sim().now(), id(), "seal_batch", batch.size());
    trace_batch_seal(*this, batch);
    charge_batch_seal(*crypto_);
    Digest32 bd = batch_digest(batch);
    std::uint64_t seq = next_seq_++;
    Usig::UI ui = metered_create(prepare_digest(view_, seq, bd));

    Writer w(256);
    w.u8(static_cast<std::uint8_t>(Kind::kMbPrepare));
    w.u64(view_);
    w.u64(seq);
    put_batch(w, batch);
    ui.put(w);
    broadcast(cfg_.others(id()), std::move(w).take());

    Slot& slot = slots_[seq];
    slot.batch = std::move(batch);
    slot.digest = bd;
    slot.have_prepare = true;

    // Primary's own commit.
    Usig::UI commit_ui = metered_create(slot.digest);
    Writer cw(128);
    cw.u8(static_cast<std::uint8_t>(Kind::kMbCommit));
    cw.u64(view_);
    cw.u64(seq);
    cw.raw(BytesView(slot.digest.data(), slot.digest.size()));
    cw.u32(id());
    commit_ui.put(cw);
    broadcast(cfg_.others(id()), std::move(cw).take());
    slot.commits.insert(id());
    slot.commit_sent = true;
    try_execute();
}

void MinbftReplica::on_prepare(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    std::vector<Request> batch = get_batch(r);
    Usig::UI ui = Usig::UI::get(r);
    r.expect_end();

    if (view != view_ || from != cfg_.primary(view_)) return;
    if (seq <= stable_checkpoint_) return;  // pre-checkpoint: slot GC'd
    Digest32 bd = batch_digest(batch);
    if (!metered_verify(from, prepare_digest(view, seq, bd), ui)) return;
    // Sequentiality: the trusted counter must strictly advance, so the
    // primary cannot equivocate or replay prepares.
    std::uint64_t& last = peer_counters_[from];
    if (ui.counter <= last) return;
    last = ui.counter;

    Slot& slot = slots_[seq];
    slot.batch = std::move(batch);
    slot.digest = bd;
    slot.have_prepare = true;

    if (!slot.commit_sent) {
        slot.commit_sent = true;
        Usig::UI commit_ui = metered_create(slot.digest);
        Writer w(128);
        w.u8(static_cast<std::uint8_t>(Kind::kMbCommit));
        w.u64(view_);
        w.u64(seq);
        w.raw(BytesView(slot.digest.data(), slot.digest.size()));
        w.u32(id());
        commit_ui.put(w);
        broadcast(cfg_.others(id()), std::move(w).take());
        slot.commits.insert(id());
    }
    try_execute();
}

void MinbftReplica::on_commit(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 digest = r.digest32();
    NodeId replica = r.u32();
    Usig::UI ui = Usig::UI::get(r);
    r.expect_end();

    if (view != view_ || replica != from || !cfg_.is_replica(from)) return;
    if (seq <= stable_checkpoint_) return;  // stale commit for a GC'd slot
    if (!metered_verify(from, digest, ui)) return;

    Slot& slot = slots_[seq];
    if (slot.have_prepare && slot.digest != digest) return;
    slot.commits.insert(from);
    try_execute();
}

void MinbftReplica::try_execute() {
    while (true) {
        auto it = slots_.find(last_executed_ + 1);
        if (it == slots_.end()) break;
        Slot& slot = it->second;
        // MinBFT commits with f+1 matching commits (2f+1 replicas total).
        if (!slot.have_prepare || slot.executed ||
            slot.commits.size() < static_cast<std::size_t>(cfg_.f + 1)) {
            break;
        }

        for (const Request& req : slot.batch) {
            auto cit = clients_.find(req.client);
            if (cit != clients_.end() && req.request_id <= cit->second.first) continue;
            charge(sim::kPerBatchedRequestNs);
            // Client authenticator (MAC-vector entry) verification: PBFT-
            // lineage protocols verify one entry per request per replica.
            crypto_->meter().macs++;
            crypto_->meter().charge(crypto_->root().costs().mac_ns);
            Bytes result = app_ ? app_(req.op) : req.op;
            charge(300);
            ++stats_.requests_executed;
            probe_.on_execute(*this, req);

            Reply reply;
            reply.view = view_;
            reply.replica = id();
            reply.request_id = req.request_id;
            reply.result = std::move(result);
            reply.mac = crypto_->mac_for(req.client, reply.mac_body());
            sim::Packet wire(reply.serialize());
            clients_[req.client] = {req.request_id, wire};
            send_to(req.client, std::move(wire));
        }
        slot.executed = true;
        ++last_executed_;
        ++stats_.batches_committed;
        if (obs::TraceSink* tr = sim().trace()) {
            tr->phase(sim().now(), id(), "commit_batch", last_executed_);
        }
        slots_.erase(slots_.begin(), slots_.find(last_executed_));
    }
    maybe_checkpoint();
}

void MinbftReplica::maybe_checkpoint() {
    if (cfg_.checkpoint_interval == 0) return;
    std::uint64_t target =
        (last_executed_ / cfg_.checkpoint_interval) * cfg_.checkpoint_interval;
    if (target == 0 || target <= stable_checkpoint_) return;
    stable_checkpoint_ = target;
    ++stats_.checkpoints;
    slots_.erase(slots_.begin(), slots_.upper_bound(target));
}


void MinbftReplica::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".batches_committed", static_cast<double>(stats_.batches_committed));
        r.set_value(prefix + ".requests_executed", static_cast<double>(stats_.requests_executed));
        r.set_value(prefix + ".usig_calls", static_cast<double>(stats_.usig_calls));
        r.set_value(prefix + ".checkpoints", static_cast<double>(stats_.checkpoints));
        r.set_value(prefix + ".executed_seq", static_cast<double>(last_executed_));
    });
    register_rx_metrics(reg, prefix, &kind_name);
}

}  // namespace neo::baselines
