// MinBFT (Veronese et al., IEEE TC '13): BFT with 2f+1 replicas using the
// USIG (Unique Sequential Identifier Generator) trusted component.
//
// The USIG lives in trusted hardware (the paper's evaluation runs it in
// Intel SGX). Here the trust boundary is structural: the Usig class holds
// the attestation key; replica logic can only call create()/verify(), and
// the monotonic counter cannot be rolled back. Every call costs an
// enclave-transition worth of virtual time — the dominant cost that keeps
// MinBFT's throughput 4.1x below NeoBFT's in Fig 7.
#pragma once

#include "baselines/common.hpp"
#include "crypto/hmac_sha256.hpp"

namespace neo::baselines {

/// Trusted monotonic counter + attestation (TPM/SGX stand-in).
class Usig {
  public:
    struct UI {
        std::uint64_t counter = 0;
        Bytes tag;  // HMAC over (owner, counter, message digest)

        void put(Writer& w) const {
            w.u64(counter);
            w.blob(tag);
        }
        static UI get(Reader& r) {
            UI ui;
            ui.counter = r.u64();
            ui.tag = r.blob(64);
            return ui;
        }
    };

    /// All USIGs of a deployment share `seed` (models the attestation keys
    /// provisioned into the trusted hardware at setup).
    Usig(std::uint64_t seed, NodeId owner) : owner_(owner) {
        Writer w(16);
        w.str("usig-master");
        w.u64(seed);
        Digest32 d = crypto::hmac_sha256(to_bytes("minbft"), w.bytes());
        master_.assign(d.begin(), d.end());
    }

    /// Assigns the next identifier to `digest`. Monotonic and gap-free.
    UI create(const Digest32& digest) {
        UI ui;
        ui.counter = ++counter_;
        ui.tag = tag_for(owner_, ui.counter, digest);
        return ui;
    }

    /// Verifies another replica's identifier (runs inside the trusted
    /// component, which knows the shared attestation secret).
    bool verify(NodeId claimed_owner, const Digest32& digest, const UI& ui) const {
        return ct_equal(tag_for(claimed_owner, ui.counter, digest), ui.tag);
    }

    std::uint64_t counter() const { return counter_; }
    /// The owning replica learns its node id when attached to the network.
    void set_owner(NodeId owner) { owner_ = owner; }

  private:
    Bytes tag_for(NodeId owner, std::uint64_t counter, const Digest32& digest) const {
        Writer w(56);
        w.u32(owner);
        w.u64(counter);
        w.raw(BytesView(digest.data(), digest.size()));
        Digest32 t = crypto::hmac_sha256(master_, w.bytes());
        return Bytes(t.begin(), t.end());
    }

    NodeId owner_;
    Bytes master_;
    std::uint64_t counter_ = 0;
};

struct MinbftConfig : BaseConfig {
    /// Virtual cost of one USIG call (enclave transition + in-enclave HMAC;
    /// tens of microseconds on SGX-class hardware).
    sim::Time usig_call_ns = 18'000;
    /// Checkpoint cadence (sequence numbers): crossing a boundary advances
    /// the stable floor, GCs slots below it and rejects stale
    /// prepares/commits. 0 disables.
    std::uint64_t checkpoint_interval = 128;

    MinbftConfig() {
        // MinBFT tolerates f faults with 2f+1 replicas.
    }
};

class MinbftReplica : public sim::ProcessingNode {
  public:
    MinbftReplica(MinbftConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                  std::uint64_t usig_seed);

    using AppFn = std::function<Bytes(BytesView)>;
    void set_app(AppFn app) { app_ = std::move(app); }

    struct Stats {
        std::uint64_t batches_committed = 0;
        std::uint64_t requests_executed = 0;
        std::uint64_t usig_calls = 0;
        std::uint64_t checkpoints = 0;
    };
    const Stats& stats() const { return stats_; }
    /// Publishes protocol counters (and per-kind rx counts) under `prefix`
    /// at every registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);
    crypto::NodeCrypto& node_crypto() { return *crypto_; }
    /// Report executed requests to the deployment's safety Auditor.
    void set_auditor(obs::Auditor* a) { probe_.set_auditor(a); }
    /// Byzantine strategy hook: audited execution digests diverge from the
    /// honest replicas' (the auditor must flag divergent_commit).
    void set_equivocate(bool on) { probe_.set_equivocate(on); }
    std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct Slot {
        std::vector<Request> batch;
        Digest32 digest{};
        bool have_prepare = false;
        std::set<NodeId> commits;
        bool commit_sent = false;
        bool executed = false;
    };

    bool is_primary() const { return cfg_.primary(view_) == id(); }
    void on_request(NodeId from, Reader& r);
    void seal_batch();
    void on_prepare(NodeId from, Reader& r);
    void on_commit(NodeId from, Reader& r);
    void try_execute();
    void maybe_checkpoint();
    Usig::UI metered_create(const Digest32& digest);
    bool metered_verify(NodeId owner, const Digest32& digest, const Usig::UI& ui);
    Digest32 prepare_digest(std::uint64_t view, std::uint64_t seq, const Digest32& batch_d) const;

    MinbftConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    Usig usig_;
    AppFn app_;
    std::uint64_t view_ = 0;
    std::uint64_t next_seq_ = 1;       // primary's batch sequence
    std::uint64_t last_executed_ = 0;
    std::map<std::uint64_t, Slot> slots_;  // keyed by batch sequence
    std::uint64_t stable_checkpoint_ = 0;
    std::map<NodeId, std::uint64_t> peer_counters_;  // sequentiality enforcement
    Batcher batcher_;
    bool batch_timer_armed_ = false;
    std::map<NodeId, std::pair<std::uint64_t, sim::Packet>> clients_;
    Stats stats_;
    ExecProbe probe_;
};

}  // namespace neo::baselines
