#include "baselines/pbft.hpp"

#include "obs/metrics.hpp"

#include "common/assert.hpp"

namespace neo::baselines {

PbftReplica::PbftReplica(PbftConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto)
    : cfg_(cfg), crypto_(std::move(crypto)), batcher_(cfg.batch_policy()) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void PbftReplica::handle(NodeId from, BytesView data) {
    if (data.empty()) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<Kind>(data[0])) {
            case Kind::kRequest: on_request(from, r); break;
            case Kind::kPrePrepare: on_preprepare(from, r); break;
            case Kind::kPrepare: on_prepare(from, r); break;
            case Kind::kCommit: on_commit(from, r); break;
            case Kind::kCheckpoint: on_checkpoint(from, r); break;
            default: break;
        }
    } catch (const CodecError&) {
    }
}

void PbftReplica::on_request(NodeId from, Reader& r) {
    Request req = Request::parse(r);
    if (req.client != from) return;

    auto it = clients_.find(req.client);
    if (it != clients_.end() && req.request_id <= it->second.first) {
        if (req.request_id == it->second.first && !it->second.second.empty()) {
            send_to(req.client, it->second.second);
        }
        return;
    }
    if (!is_primary()) return;  // backups rely on the client retry/broadcast
    if (!crypto_->check_mac_from(req.client, req.mac_body(), req.mac)) return;

    trace_batch_add(*this, req);
    batcher_.add(std::move(req));
    if (batcher_.should_seal_by_size()) {
        seal_batch();
    } else if (!batch_timer_armed_) {
        batch_timer_armed_ = true;
        set_timer(batcher_.delay(), [this] {
            batch_timer_armed_ = false;
            if (!batcher_.empty()) seal_batch();
        }, "batch_flush");
    }
}

Bytes PbftReplica::preprepare_body(std::uint64_t seq, const Digest32& digest) const {
    Writer w(64);
    w.str("pbft-preprepare");
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    return std::move(w).take();
}

Bytes PbftReplica::phase_body(std::string_view tag, std::uint64_t seq, const Digest32& digest,
                              NodeId replica) const {
    Writer w(64);
    w.str(tag);
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    w.u32(replica);
    return std::move(w).take();
}

void PbftReplica::seal_batch() {
    std::vector<Request> batch = batcher_.seal();
    if (obs::TraceSink* tr = sim().trace()) tr->batch(sim().now(), id(), "seal_batch", batch.size());
    trace_batch_seal(*this, batch);
    charge_batch_seal(*crypto_);
    std::uint64_t seq = next_seq_++;
    Digest32 digest = batch_digest(batch);

    Writer w(256);
    w.u8(static_cast<std::uint8_t>(Kind::kPrePrepare));
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(digest.data(), digest.size()));
    put_batch(w, batch);
    w.blob(crypto_->sign(preprepare_body(seq, digest)));
    broadcast(cfg_.others(id()), std::move(w).take());

    Slot& slot = slots_[seq];
    slot.batch = std::move(batch);
    slot.digest = digest;
    slot.have_preprepare = true;
    try_progress(seq);
}

void PbftReplica::on_preprepare(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 digest = r.digest32();
    std::vector<Request> batch = get_batch(r);
    Bytes sig = r.blob(256);
    r.expect_end();

    if (view != view_ || from != cfg_.primary(view_)) return;
    if (seq <= last_executed_) return;
    if (batch_digest(batch) != digest) return;
    if (!crypto_->verify(from, preprepare_body(seq, digest), sig)) return;

    Slot& slot = slots_[seq];
    if (slot.have_preprepare && slot.digest != digest) return;  // equivocation: ignore
    slot.batch = std::move(batch);
    slot.digest = digest;
    slot.have_preprepare = true;
    try_progress(seq);
}

void PbftReplica::on_prepare(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 digest = r.digest32();
    NodeId replica = r.u32();
    Bytes sig = r.blob(256);
    r.expect_end();

    if (view != view_ || replica != from || !cfg_.is_replica(from)) return;
    if (!crypto_->verify(from, phase_body("pbft-prepare", seq, digest, replica), sig)) return;
    Slot& slot = slots_[seq];
    if (slot.have_preprepare && slot.digest != digest) return;
    slot.prepares.insert(from);
    try_progress(seq);
}

void PbftReplica::on_commit(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 digest = r.digest32();
    NodeId replica = r.u32();
    Bytes sig = r.blob(256);
    r.expect_end();

    if (view != view_ || replica != from || !cfg_.is_replica(from)) return;
    if (!crypto_->verify(from, phase_body("pbft-commit", seq, digest, replica), sig)) return;
    Slot& slot = slots_[seq];
    if (slot.have_preprepare && slot.digest != digest) return;
    slot.commits.insert(from);
    try_progress(seq);
}

void PbftReplica::try_progress(std::uint64_t seq) {
    Slot& slot = slots_[seq];
    if (!slot.have_preprepare) return;

    // The primary's pre-prepare stands in for its prepare.
    slot.prepares.insert(cfg_.primary(view_));

    if (!slot.prepare_sent) {
        slot.prepare_sent = true;
        if (!is_primary()) {
            Writer w(128);
            w.u8(static_cast<std::uint8_t>(Kind::kPrepare));
            w.u64(view_);
            w.u64(seq);
            w.raw(BytesView(slot.digest.data(), slot.digest.size()));
            w.u32(id());
            w.blob(crypto_->sign(phase_body("pbft-prepare", seq, slot.digest, id())));
            broadcast(cfg_.others(id()), std::move(w).take());
        }
        slot.prepares.insert(id());
    }

    // Prepared: pre-prepare + 2f prepares (2f+1 counting the primary).
    if (!slot.commit_sent && slot.prepares.size() >= static_cast<std::size_t>(2 * cfg_.f + 1)) {
        slot.commit_sent = true;
        Writer w(128);
        w.u8(static_cast<std::uint8_t>(Kind::kCommit));
        w.u64(view_);
        w.u64(seq);
        w.raw(BytesView(slot.digest.data(), slot.digest.size()));
        w.u32(id());
        w.blob(crypto_->sign(phase_body("pbft-commit", seq, slot.digest, id())));
        broadcast(cfg_.others(id()), std::move(w).take());
        slot.commits.insert(id());
    }

    if (!slot.executed && slot.commits.size() >= static_cast<std::size_t>(2 * cfg_.f + 1)) {
        try_execute();
    }
}

void PbftReplica::try_execute() {
    while (true) {
        auto it = slots_.find(last_executed_ + 1);
        if (it == slots_.end() || it->second.executed || !it->second.have_preprepare ||
            it->second.commits.size() < static_cast<std::size_t>(2 * cfg_.f + 1)) {
            break;
        }
        execute_batch(it->second);
        it->second.executed = true;
        ++last_executed_;
        ++stats_.batches_committed;
        if (obs::TraceSink* tr = sim().trace()) {
            tr->phase(sim().now(), id(), "commit_batch", last_executed_);
        }
    }
    maybe_checkpoint();
}

void PbftReplica::execute_batch(Slot& slot) {
    for (const Request& req : slot.batch) {
        auto cit = clients_.find(req.client);
        if (cit != clients_.end() && req.request_id <= cit->second.first) continue;

        charge(sim::kPerBatchedRequestNs);
        // Client authenticator (MAC-vector entry) verification: PBFT-
        // lineage protocols verify one entry per request per replica.
        crypto_->meter().macs++;
        crypto_->meter().charge(crypto_->root().costs().mac_ns);
        // Echo semantics (the Fig 7 workload); the bench harness swaps in
        // richer state machines through PbftApp below when needed.
        Bytes result = app_ ? app_(req.op) : req.op;
        charge(300);
        ++stats_.requests_executed;
        probe_.on_execute(*this, req);

        Reply reply;
        reply.view = view_;
        reply.replica = id();
        reply.request_id = req.request_id;
        reply.result = std::move(result);
        reply.mac = crypto_->mac_for(req.client, reply.mac_body());
        sim::Packet wire(reply.serialize());
        clients_[req.client] = {req.request_id, wire};
        send_to(req.client, std::move(wire));
    }
}

void PbftReplica::maybe_checkpoint() {
    std::uint64_t target = (last_executed_ / cfg_.checkpoint_interval) * cfg_.checkpoint_interval;
    if (target == 0 || target <= stable_checkpoint_) return;
    if (checkpoint_votes_[target].contains(id())) return;

    Writer w(64);
    w.u8(static_cast<std::uint8_t>(Kind::kCheckpoint));
    w.u64(target);
    w.u32(id());
    Writer body(32);
    body.str("pbft-checkpoint");
    body.u64(target);
    w.blob(crypto_->sign(body.bytes()));
    broadcast(cfg_.others(id()), std::move(w).take());
    checkpoint_votes_[target].insert(id());
    on_checkpoint_quorum(target);
}

void PbftReplica::on_checkpoint(NodeId from, Reader& r) {
    std::uint64_t seq = r.u64();
    NodeId replica = r.u32();
    Bytes sig = r.blob(256);
    r.expect_end();
    if (replica != from || !cfg_.is_replica(from)) return;
    Writer body(32);
    body.str("pbft-checkpoint");
    body.u64(seq);
    if (!crypto_->verify(from, body.bytes(), sig)) return;
    checkpoint_votes_[seq].insert(from);
    on_checkpoint_quorum(seq);
}

void PbftReplica::on_checkpoint_quorum(std::uint64_t seq) {
    if (seq <= stable_checkpoint_) return;
    if (checkpoint_votes_[seq].size() < static_cast<std::size_t>(2 * cfg_.f + 1)) return;
    stable_checkpoint_ = seq;
    ++stats_.checkpoints;
    // Garbage-collect slots and votes at or below the stable checkpoint.
    slots_.erase(slots_.begin(), slots_.upper_bound(seq));
    checkpoint_votes_.erase(checkpoint_votes_.begin(), checkpoint_votes_.upper_bound(seq));
}


void PbftReplica::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".batches_committed", static_cast<double>(stats_.batches_committed));
        r.set_value(prefix + ".requests_executed", static_cast<double>(stats_.requests_executed));
        r.set_value(prefix + ".checkpoints", static_cast<double>(stats_.checkpoints));
        r.set_value(prefix + ".executed_seq", static_cast<double>(last_executed_));
    });
    register_rx_metrics(reg, prefix, &kind_name);
}

}  // namespace neo::baselines
