// PBFT (Castro & Liskov, OSDI '99): three-phase leader-based BFT with
// 3f+1 replicas. Five message delays; O(N) bottleneck messages; O(N²)
// authenticators (all-to-all prepare/commit).
//
// Per the paper's evaluation framework: batched, signed replica-to-replica
// messages, MAC-authenticated client traffic, periodic checkpoints.
#pragma once

#include "baselines/common.hpp"

namespace neo::baselines {

struct PbftConfig : BaseConfig {
    std::uint64_t checkpoint_interval = 128;  // in sequence numbers
};

class PbftReplica : public sim::ProcessingNode {
  public:
    PbftReplica(PbftConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto);

    struct Stats {
        std::uint64_t batches_committed = 0;
        std::uint64_t requests_executed = 0;
        std::uint64_t checkpoints = 0;
    };
    const Stats& stats() const { return stats_; }
    /// Publishes protocol counters (and per-kind rx counts) under `prefix`
    /// at every registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);

    /// Pluggable deterministic application (defaults to echo).
    using AppFn = std::function<Bytes(BytesView)>;
    void set_app(AppFn app) { app_ = std::move(app); }
    std::uint64_t executed_seq() const { return last_executed_; }
    crypto::NodeCrypto& node_crypto() { return *crypto_; }
    /// Report executed requests to the deployment's safety Auditor.
    void set_auditor(obs::Auditor* a) { probe_.set_auditor(a); }
    /// Byzantine strategy hook: audited execution digests diverge from the
    /// honest replicas' (the auditor must flag divergent_commit).
    void set_equivocate(bool on) { probe_.set_equivocate(on); }
    std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct Slot {
        std::vector<Request> batch;
        Digest32 digest{};
        bool have_preprepare = false;
        std::set<NodeId> prepares;
        std::set<NodeId> commits;
        bool prepare_sent = false;
        bool commit_sent = false;
        bool executed = false;
    };

    bool is_primary() const { return cfg_.primary(view_) == id(); }
    void on_request(NodeId from, Reader& r);
    void seal_batch();
    void on_preprepare(NodeId from, Reader& r);
    void on_prepare(NodeId from, Reader& r);
    void on_commit(NodeId from, Reader& r);
    void on_checkpoint(NodeId from, Reader& r);
    void on_checkpoint_quorum(std::uint64_t seq);
    void try_progress(std::uint64_t seq);
    void try_execute();
    void execute_batch(Slot& slot);
    void maybe_checkpoint();

    Bytes preprepare_body(std::uint64_t seq, const Digest32& digest) const;
    Bytes phase_body(std::string_view tag, std::uint64_t seq, const Digest32& digest,
                     NodeId replica) const;

    PbftConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    std::uint64_t view_ = 0;
    std::uint64_t next_seq_ = 1;       // primary's sequence counter
    std::uint64_t last_executed_ = 0;  // highest contiguously executed seq
    std::map<std::uint64_t, Slot> slots_;
    Batcher batcher_;
    bool batch_timer_armed_ = false;

    std::map<NodeId, std::pair<std::uint64_t, sim::Packet>> clients_;  // dedup + cached reply
    std::map<std::uint64_t, std::set<NodeId>> checkpoint_votes_;
    std::uint64_t stable_checkpoint_ = 0;
    Stats stats_;
    AppFn app_;
    ExecProbe probe_;
};

}  // namespace neo::baselines
