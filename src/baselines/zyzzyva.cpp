#include "baselines/zyzzyva.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace neo::baselines {

// ---------------------------------------------------------------- Replica

ZyzzyvaReplica::ZyzzyvaReplica(ZyzzyvaConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto)
    : cfg_(cfg), crypto_(std::move(crypto)), batcher_(cfg.batch_policy()) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void ZyzzyvaReplica::handle(NodeId from, BytesView data) {
    if (silent_ || data.empty()) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<Kind>(data[0])) {
            case Kind::kRequest: on_request(from, r); break;
            case Kind::kOrderReq: on_order_req(from, r); break;
            case Kind::kCommitCert: on_commit_cert(from, r); break;
            default: break;
        }
    } catch (const CodecError&) {
    }
}

void ZyzzyvaReplica::on_request(NodeId from, Reader& r) {
    Request req = Request::parse(r);
    if (req.client != from) return;

    auto it = clients_.find(req.client);
    if (it != clients_.end() && req.request_id <= it->second.first) {
        if (req.request_id == it->second.first && !it->second.second.empty()) {
            send_to(req.client, it->second.second);
        }
        return;
    }
    if (!is_primary()) return;
    if (!crypto_->check_mac_from(req.client, req.mac_body(), req.mac)) return;

    trace_batch_add(*this, req);
    batcher_.add(std::move(req));
    if (batcher_.should_seal_by_size()) {
        seal_batch();
    } else if (!batch_timer_armed_) {
        batch_timer_armed_ = true;
        set_timer(batcher_.delay(), [this] {
            batch_timer_armed_ = false;
            if (!batcher_.empty()) seal_batch();
        }, "batch_flush");
    }
}

Bytes ZyzzyvaReplica::order_body(std::uint64_t seq, const Digest32& history,
                                 const Digest32& digest) const {
    Writer w(96);
    w.str("zyzzyva-order");
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(history.data(), history.size()));
    w.raw(BytesView(digest.data(), digest.size()));
    return std::move(w).take();
}

void ZyzzyvaReplica::seal_batch() {
    std::vector<Request> batch = batcher_.seal();
    if (obs::TraceSink* tr = sim().trace()) tr->batch(sim().now(), id(), "seal_batch", batch.size());
    trace_batch_seal(*this, batch);
    charge_batch_seal(*crypto_);
    std::uint64_t seq = next_seq_++;
    Digest32 digest = batch_digest(batch);
    Digest32 new_history =
        crypto::sha256_pair(BytesView(history_.data(), history_.size()),
                            BytesView(digest.data(), digest.size()));

    Writer w(256);
    w.u8(static_cast<std::uint8_t>(Kind::kOrderReq));
    w.u64(view_);
    w.u64(seq);
    w.raw(BytesView(new_history.data(), new_history.size()));
    w.raw(BytesView(digest.data(), digest.size()));
    put_batch(w, batch);
    w.blob(crypto_->sign(order_body(seq, new_history, digest)));
    broadcast(cfg_.others(id()), std::move(w).take());

    ++stats_.batches_ordered;
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "order_batch", seq);
    execute_ordered(seq, std::move(batch));
}

void ZyzzyvaReplica::on_order_req(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 history = r.digest32();
    Digest32 digest = r.digest32();
    std::vector<Request> batch = get_batch(r);
    Bytes sig = r.blob(256);
    r.expect_end();

    if (view != view_ || from != cfg_.primary(view_)) return;
    if (seq <= max_executed_ || seq <= stable_checkpoint_) return;
    if (batch_digest(batch) != digest) return;
    if (!crypto_->verify(from, order_body(seq, history, digest), sig)) return;

    pending_[seq] = {digest, std::move(batch)};
    // Execute contiguously in order (speculation requires gap-free history).
    while (true) {
        auto it = pending_.find(max_executed_ + 1);
        if (it == pending_.end()) break;
        // Verify the primary's history chain.
        Digest32 expect = crypto::sha256_pair(BytesView(history_.data(), history_.size()),
                                              BytesView(it->second.first.data(), 32));
        if (max_executed_ + 1 == seq && expect != history) {
            pending_.erase(it);
            return;  // primary equivocated on history; drop
        }
        std::vector<Request> b = std::move(it->second.second);
        pending_.erase(it);
        execute_ordered(max_executed_ + 1, std::move(b));
    }
}

void ZyzzyvaReplica::execute_ordered(std::uint64_t seq, std::vector<Request> batch) {
    NEO_ASSERT(seq == max_executed_ + 1);
    Digest32 digest = batch_digest(batch);
    history_ = crypto::sha256_pair(BytesView(history_.data(), history_.size()),
                                   BytesView(digest.data(), digest.size()));
    history_at_[seq] = history_;
    max_executed_ = seq;

    for (const Request& req : batch) {
        auto cit = clients_.find(req.client);
        if (cit != clients_.end() && req.request_id <= cit->second.first) continue;
        charge(sim::kPerBatchedRequestNs);
        // Client authenticator (MAC-vector entry) verification: PBFT-
        // lineage protocols verify one entry per request per replica.
        crypto_->meter().macs++;
        crypto_->meter().charge(crypto_->root().costs().mac_ns);
        Bytes result = app_ ? app_(req.op) : req.op;
        charge(300);
        ++stats_.requests_executed;
        probe_.on_execute(*this, req);

        // Speculative response: carries (view, seq, history) so the client
        // can detect divergence; MAC-authenticated to the client.
        Writer w(160 + result.size());
        w.u8(static_cast<std::uint8_t>(Kind::kSpecResponse));
        w.u64(view_);
        w.u64(seq);
        w.raw(BytesView(history_.data(), history_.size()));
        w.u32(id());
        w.u64(req.request_id);
        w.blob(result);
        Writer body(96 + result.size());
        body.str("zyzzyva-spec");
        body.u64(view_);
        body.u64(seq);
        body.raw(BytesView(history_.data(), history_.size()));
        body.u64(req.request_id);
        body.blob(result);
        w.blob(crypto_->mac_for(req.client, body.bytes()));
        sim::Packet wire(std::move(w).take());
        clients_[req.client] = {req.request_id, wire};
        send_to(req.client, std::move(wire));
    }

    maybe_checkpoint();
    // Backstop when checkpointing is disabled: bound the history anchors.
    while (history_at_.size() > 8'192) history_at_.erase(history_at_.begin());
}

void ZyzzyvaReplica::maybe_checkpoint() {
    if (cfg_.checkpoint_interval == 0) return;
    std::uint64_t target =
        (max_executed_ / cfg_.checkpoint_interval) * cfg_.checkpoint_interval;
    if (target == 0 || target <= stable_checkpoint_) return;
    stable_checkpoint_ = target;
    ++stats_.checkpoints;
    // Keep one interval of history anchors below the floor so slow-path
    // commit certificates for just-checkpointed seqs still resolve.
    std::uint64_t keep_above =
        target > cfg_.checkpoint_interval ? target - cfg_.checkpoint_interval : 0;
    history_at_.erase(history_at_.begin(), history_at_.upper_bound(keep_above));
    pending_.erase(pending_.begin(), pending_.upper_bound(target));
}

void ZyzzyvaReplica::on_commit_cert(NodeId from, Reader& r) {
    // ⟨commit, client, cert⟩: cert identifies (view, seq, history) with
    // 2f+1 matching speculative responses. Replicas that have executed up
    // to seq with that history acknowledge with local-commit.
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 history = r.digest32();
    std::uint64_t request_id = r.u64();
    r.expect_end();

    if (view != view_) return;
    auto it = history_at_.find(seq);
    if (it == history_at_.end() || it->second != history) return;

    Writer w(96);
    w.u8(static_cast<std::uint8_t>(Kind::kLocalCommit));
    w.u64(view_);
    w.u64(seq);
    w.u32(id());
    w.u64(request_id);
    Writer body(64);
    body.str("zyzzyva-local-commit");
    body.u64(view_);
    body.u64(seq);
    body.u64(request_id);
    w.blob(crypto_->mac_for(from, body.bytes()));
    send_to(from, std::move(w).take());
    ++stats_.local_commits;
}

// ---------------------------------------------------------------- Client

ZyzzyvaClient::ZyzzyvaClient(ZyzzyvaConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                             Options opts)
    : cfg_(cfg), crypto_(std::move(crypto)), opts_(opts) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void ZyzzyvaClient::invoke(Bytes op, Callback cb) {
    NEO_ASSERT(!outstanding_.has_value());
    Request req;
    req.client = id();
    req.request_id = next_request_id_++;
    req.op = std::move(op);
    req.mac = crypto_->mac_for(cfg_.primary(0), req.mac_body());

    Outstanding out;
    out.request_id = req.request_id;
    out.wire = sim::Packet(req.serialize());
    out.cb = std::move(cb);
    outstanding_ = std::move(out);
    if (obs::TraceSink* tr = sim().trace()) {
        outstanding_->trace_id = obs::trace_id(outstanding_->wire.view());
        tr->span_begin(sim().now(), id(), "request", outstanding_->trace_id);
    }
    send_to(cfg_.primary(0), outstanding_->wire);

    outstanding_->fast_timer = set_timer(opts_.fast_path_timeout, [this] {
        if (outstanding_.has_value() && !outstanding_->slow_path) start_slow_path();
    }, "fast_path");
    outstanding_->retry_timer = set_timer(opts_.retry_timeout, [this] {
        if (!outstanding_.has_value()) return;
        for (NodeId r : cfg_.replicas) send_to(r, outstanding_->wire);
    }, "request_retry");
}

void ZyzzyvaClient::handle(NodeId from, BytesView data) {
    if (data.empty()) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<Kind>(data[0])) {
            case Kind::kSpecResponse: on_spec_response(from, r); break;
            case Kind::kLocalCommit: on_local_commit(from, r); break;
            case Kind::kReply: break;  // not used by zyzzyva
            default: break;
        }
    } catch (const CodecError&) {
    }
}

void ZyzzyvaClient::on_spec_response(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    Digest32 history = r.digest32();
    NodeId replica = r.u32();
    std::uint64_t request_id = r.u64();
    Bytes result = r.blob();
    Bytes mac = r.blob(64);
    r.expect_end();

    if (!outstanding_.has_value() || request_id != outstanding_->request_id) return;
    if (replica != from || !cfg_.is_replica(from)) return;
    Writer body(96 + result.size());
    body.str("zyzzyva-spec");
    body.u64(view);
    body.u64(seq);
    body.raw(BytesView(history.data(), history.size()));
    body.u64(request_id);
    body.blob(result);
    if (!crypto_->check_mac_from(from, body.bytes(), mac)) return;

    Writer key(96);
    key.u64(view);
    key.u64(seq);
    key.raw(BytesView(history.data(), history.size()));
    Digest32 rd = crypto::sha256(result);
    key.raw(BytesView(rd.data(), rd.size()));

    SpecVote& vote = outstanding_->votes[key.bytes()];
    vote.replicas.insert(from);
    vote.result = std::move(result);
    if (obs::TraceSink* tr = sim().trace();
        tr != nullptr && !outstanding_->quorum_span_open) {
        outstanding_->quorum_span_open = true;
        tr->span_begin(sim().now(), id(), "quorum", outstanding_->trace_id, from);
    }
    try_fast_commit(from);
}

void ZyzzyvaClient::try_fast_commit(NodeId from) {
    if (!outstanding_.has_value()) return;
    std::size_t all = static_cast<std::size_t>(3 * cfg_.f + 1);
    for (auto& [key, vote] : outstanding_->votes) {
        if (vote.replicas.size() >= all) {
            ++fast_commits_;
            complete(vote.result, from);
            return;
        }
    }
    // Already on the slow path: a late 2f+1 match triggers the certificate.
    if (outstanding_->slow_path && outstanding_->slow_key.empty()) start_slow_path();
}

void ZyzzyvaClient::start_slow_path() {
    if (!outstanding_.has_value()) return;
    outstanding_->slow_path = true;
    // Find a 2f+1 matching set.
    std::size_t need = static_cast<std::size_t>(2 * cfg_.f + 1);
    for (auto& [key, vote] : outstanding_->votes) {
        if (vote.replicas.size() >= need) {
            outstanding_->slow_key = key;
            // Reconstruct (view, seq, history) from the key and broadcast a
            // commit certificate.
            Reader kr(key);
            std::uint64_t view = kr.u64();
            std::uint64_t seq = kr.u64();
            Digest32 history = kr.digest32();

            Writer w(96);
            w.u8(static_cast<std::uint8_t>(Kind::kCommitCert));
            w.u64(view);
            w.u64(seq);
            w.raw(BytesView(history.data(), history.size()));
            w.u64(outstanding_->request_id);
            sim::Packet wire(std::move(w).take());
            for (NodeId r : cfg_.replicas) send_to(r, wire);
            return;
        }
    }
    // Not enough matching responses yet: re-check as more arrive.
    outstanding_->fast_timer = set_timer(opts_.fast_path_timeout, [this] {
        if (outstanding_.has_value() && outstanding_->slow_key.empty()) start_slow_path();
    }, "fast_path");
}

void ZyzzyvaClient::on_local_commit(NodeId from, Reader& r) {
    std::uint64_t view = r.u64();
    std::uint64_t seq = r.u64();
    NodeId replica = r.u32();
    std::uint64_t request_id = r.u64();
    Bytes mac = r.blob(64);
    r.expect_end();

    if (!outstanding_.has_value() || request_id != outstanding_->request_id) return;
    if (replica != from || !cfg_.is_replica(from)) return;
    if (outstanding_->slow_key.empty()) return;
    Writer body(64);
    body.str("zyzzyva-local-commit");
    body.u64(view);
    body.u64(seq);
    body.u64(request_id);
    if (!crypto_->check_mac_from(from, body.bytes(), mac)) return;

    outstanding_->local_commits.insert(from);
    if (outstanding_->local_commits.size() >= static_cast<std::size_t>(2 * cfg_.f + 1)) {
        ++slow_commits_;
        complete(outstanding_->votes[outstanding_->slow_key].result, from);
    }
}

void ZyzzyvaClient::complete(Bytes result, NodeId peer) {
    Callback cb = std::move(outstanding_->cb);
    if (obs::TraceSink* tr = sim().trace()) {
        // peer = the replica whose response completed the commit (fast or
        // slow path alike).
        if (outstanding_->quorum_span_open) {
            tr->span_end(sim().now(), id(), "quorum", outstanding_->trace_id, peer);
        }
        tr->span_end(sim().now(), id(), "request", outstanding_->trace_id, peer);
    }
    cancel_timer(outstanding_->fast_timer);
    cancel_timer(outstanding_->retry_timer);
    outstanding_.reset();
    ++completed_;
    cb(std::move(result));
}


void ZyzzyvaReplica::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".batches_ordered", static_cast<double>(stats_.batches_ordered));
        r.set_value(prefix + ".requests_executed", static_cast<double>(stats_.requests_executed));
        r.set_value(prefix + ".local_commits", static_cast<double>(stats_.local_commits));
        r.set_value(prefix + ".checkpoints", static_cast<double>(stats_.checkpoints));
        r.set_value(prefix + ".executed_seq", static_cast<double>(max_executed_));
    });
    register_rx_metrics(reg, prefix, &kind_name);
}

}  // namespace neo::baselines
