// Zyzzyva (Kotla et al., SOSP '07): speculative BFT.
//
// Fast path (3 message delays): the primary orders requests, replicas
// execute speculatively and respond directly to the client, who commits on
// 3f+1 matching speculative responses. Slow path: with only 2f+1 matching
// responses the client assembles a commit certificate, broadcasts it, and
// waits for 2f+1 local-commits. A single non-responsive replica therefore
// pushes every request onto the slow path — the Zyzzyva-F configuration of
// Fig 7.
#pragma once

#include "baselines/common.hpp"

namespace neo::baselines {

struct ZyzzyvaConfig : BaseConfig {
    /// Checkpoint cadence (sequence numbers): crossing a boundary advances
    /// the stable floor, GCs history anchors / pending batches below it and
    /// rejects stale ordering messages. 0 disables.
    std::uint64_t checkpoint_interval = 128;
};

class ZyzzyvaReplica : public sim::ProcessingNode {
  public:
    ZyzzyvaReplica(ZyzzyvaConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto);

    using AppFn = std::function<Bytes(BytesView)>;
    void set_app(AppFn app) { app_ = std::move(app); }

    struct Stats {
        std::uint64_t batches_ordered = 0;
        std::uint64_t requests_executed = 0;
        std::uint64_t local_commits = 0;
        std::uint64_t checkpoints = 0;
    };
    const Stats& stats() const { return stats_; }
    /// Publishes protocol counters (and per-kind rx counts) under `prefix`
    /// at every registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);
    crypto::NodeCrypto& node_crypto() { return *crypto_; }
    /// Report executed requests to the deployment's safety Auditor.
    void set_auditor(obs::Auditor* a) { probe_.set_auditor(a); }
    /// Byzantine strategy hook: audited execution digests diverge from the
    /// honest replicas' (the auditor must flag divergent_commit).
    void set_equivocate(bool on) { probe_.set_equivocate(on); }
    std::uint64_t stable_checkpoint() const { return stable_checkpoint_; }

    /// Zyzzyva-F: the replica stops responding (but the protocol's safety
    /// must be unaffected).
    void set_silent(bool silent) { silent_ = silent; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    bool is_primary() const { return cfg_.primary(view_) == id(); }
    void on_request(NodeId from, Reader& r);
    void seal_batch();
    void on_order_req(NodeId from, Reader& r);
    void execute_ordered(std::uint64_t seq, std::vector<Request> batch);
    void on_commit_cert(NodeId from, Reader& r);
    void maybe_checkpoint();

    Bytes order_body(std::uint64_t seq, const Digest32& history, const Digest32& digest) const;

    ZyzzyvaConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    AppFn app_;
    std::uint64_t view_ = 0;
    std::uint64_t next_seq_ = 1;       // primary
    std::uint64_t max_executed_ = 0;   // highest executed seq (contiguous)
    Digest32 history_{};               // hash chain over ordered batches
    Batcher batcher_;
    bool batch_timer_armed_ = false;
    bool silent_ = false;

    std::map<std::uint64_t, std::pair<Digest32, std::vector<Request>>> pending_;  // ooo batches
    std::map<NodeId, std::pair<std::uint64_t, sim::Packet>> clients_;
    std::map<std::uint64_t, Digest32> history_at_;  // seq -> history hash after seq
    std::uint64_t stable_checkpoint_ = 0;
    Stats stats_;
    ExecProbe probe_;
};

struct ZyzzyvaClientOptions {
    /// How long to wait for 3f+1 matching speculative responses before
    /// falling back to the commit-certificate slow path.
    sim::Time fast_path_timeout = 400 * sim::kMicrosecond;
    sim::Time retry_timeout = 20 * sim::kMillisecond;
};

/// Zyzzyva's client: drives the fast/slow path decision.
class ZyzzyvaClient : public sim::ProcessingNode {
  public:
    using Callback = std::function<void(Bytes result)>;
    using Options = ZyzzyvaClientOptions;

    ZyzzyvaClient(ZyzzyvaConfig cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                  Options opts = {});

    void invoke(Bytes op, Callback cb);
    std::uint64_t completed() const { return completed_; }
    std::uint64_t fast_commits() const { return fast_commits_; }
    std::uint64_t slow_commits() const { return slow_commits_; }
    crypto::NodeCrypto& node_crypto() { return *crypto_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct SpecVote {
        std::set<NodeId> replicas;
        Bytes result;
    };
    struct Outstanding {
        std::uint64_t request_id;
        sim::Packet wire;  // serialized signed Request (shared on broadcast retry)
        std::uint64_t trace_id = 0;     // obs::trace_id(wire); 0 = untraced
        bool quorum_span_open = false;  // first spec response seen
        Callback cb;
        // (seq, history, result digest) -> votes
        std::map<Bytes, SpecVote> votes;
        std::set<NodeId> local_commits;
        bool slow_path = false;
        Bytes slow_key;
        TimerId fast_timer = 0;
        TimerId retry_timer = 0;
    };

    void on_spec_response(NodeId from, Reader& r);
    void on_local_commit(NodeId from, Reader& r);
    void try_fast_commit(NodeId from);
    void start_slow_path();
    void complete(Bytes result, NodeId peer);

    ZyzzyvaConfig cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    Options opts_;
    std::uint64_t next_request_id_ = 1;
    std::optional<Outstanding> outstanding_;
    std::uint64_t completed_ = 0;
    std::uint64_t fast_commits_ = 0;
    std::uint64_t slow_commits_ = 0;
};

}  // namespace neo::baselines
