// Always-on invariant checks. Protocol invariants must hold in Release
// builds too — a violated invariant in a BFT protocol is a safety bug, not a
// debugging aid.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace neo::detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line, const char* msg) {
    std::fprintf(stderr, "NEO_ASSERT failed: %s (%s:%d) %s\n", expr, file, line, msg ? msg : "");
    std::abort();
}
}  // namespace neo::detail

#define NEO_ASSERT(cond)                                                        \
    do {                                                                        \
        if (!(cond)) ::neo::detail::assert_fail(#cond, __FILE__, __LINE__, nullptr); \
    } while (0)

#define NEO_ASSERT_MSG(cond, msg)                                            \
    do {                                                                     \
        if (!(cond)) ::neo::detail::assert_fail(#cond, __FILE__, __LINE__, msg); \
    } while (0)
