// Basic byte-buffer aliases and helpers shared by every module.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace neo {

/// Owned byte buffer used for wire messages and crypto inputs/outputs.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// 32-byte digest (SHA-256 output, secp256k1 field/scalar encoding, etc.).
using Digest32 = std::array<std::uint8_t, 32>;

inline Bytes to_bytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

inline std::string to_string(BytesView b) {
    return std::string(b.begin(), b.end());
}

inline void append(Bytes& dst, BytesView src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

inline Bytes concat(BytesView a, BytesView b) {
    Bytes out;
    out.reserve(a.size() + b.size());
    append(out, a);
    append(out, b);
    return out;
}

/// Constant-time byte comparison; use for MAC/signature tags so a Byzantine
/// sender cannot learn tag prefixes through timing (the simulation does not
/// model timing side channels, but the library API should still be safe).
inline bool ct_equal(BytesView a, BytesView b) {
    if (a.size() != b.size()) return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

}  // namespace neo
