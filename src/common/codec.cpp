#include "common/codec.hpp"

namespace neo {

void Writer::u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::blob(BytesView b) {
    if (b.size() > std::numeric_limits<std::uint32_t>::max()) throw CodecError("blob too large");
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
}

void Reader::need(std::size_t n) {
    if (data_.size() - pos_ < n) throw CodecError("truncated message");
}

std::uint8_t Reader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint16_t Reader::u16() {
    need(2);
    std::uint16_t v = static_cast<std::uint16_t>(data_[pos_] | (data_[pos_ + 1] << 8));
    pos_ += 2;
    return v;
}

std::uint32_t Reader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
}

std::uint64_t Reader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    pos_ += 8;
    return v;
}

bool Reader::boolean() {
    std::uint8_t v = u8();
    if (v > 1) throw CodecError("invalid boolean");
    return v == 1;
}

Bytes Reader::raw(std::size_t n) {
    need(n);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
}

Digest32 Reader::digest32() {
    need(32);
    Digest32 d;
    std::memcpy(d.data(), data_.data() + pos_, 32);
    pos_ += 32;
    return d;
}

Bytes Reader::blob(std::size_t max) {
    std::uint32_t n = u32();
    if (n > max) throw CodecError("blob length exceeds cap");
    return raw(n);
}

std::string Reader::str(std::size_t max) {
    Bytes b = blob(max);
    return std::string(b.begin(), b.end());
}

void Reader::expect_end() {
    if (!at_end()) throw CodecError("trailing bytes in message");
}

}  // namespace neo
