// Bounds-checked little-endian wire codec.
//
// Every protocol message in this repository is serialised through Writer and
// parsed through Reader. Reader throws CodecError on any out-of-bounds or
// malformed input; message dispatch layers catch it and treat the packet as
// Byzantine garbage, which is what makes the tamper-injection tests
// meaningful.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"

namespace neo {

/// Thrown by Reader on truncated or malformed input.
class CodecError : public std::runtime_error {
  public:
    explicit CodecError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends little-endian primitives and length-prefixed blobs to a buffer.
class Writer {
  public:
    Writer() = default;
    explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void boolean(bool v) { u8(v ? 1 : 0); }

    /// Raw bytes, no length prefix (fixed-size fields like digests).
    void raw(BytesView b) { append(buf_, b); }

    /// u32 length prefix followed by the bytes.
    void blob(BytesView b);
    void str(std::string_view s) { blob(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size())); }

    const Bytes& bytes() const& { return buf_; }
    Bytes take() && { return std::move(buf_); }
    std::size_t size() const { return buf_.size(); }

  private:
    Bytes buf_;
};

/// Reads little-endian primitives with bounds checks.
class Reader {
  public:
    explicit Reader(BytesView b) : data_(b) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    bool boolean();

    /// Fixed-size raw field.
    Bytes raw(std::size_t n);
    Digest32 digest32();

    /// u32 length-prefixed blob. `max` caps the declared length so a hostile
    /// packet cannot trigger a huge allocation.
    Bytes blob(std::size_t max = kDefaultMaxBlob);
    std::string str(std::size_t max = kDefaultMaxBlob);

    std::size_t remaining() const { return data_.size() - pos_; }
    bool at_end() const { return pos_ == data_.size(); }

    /// Declares the message fully parsed; trailing garbage is an error.
    void expect_end();

    static constexpr std::size_t kDefaultMaxBlob = 16u << 20;  // 16 MiB

  private:
    void need(std::size_t n);

    BytesView data_;
    std::size_t pos_ = 0;
};

}  // namespace neo
