// Hex encoding/decoding for digests, keys, and log output.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace neo {

/// Lower-case hex encoding of a byte string.
std::string to_hex(BytesView bytes);

/// Decodes a hex string (upper or lower case). Returns nullopt on invalid
/// characters or odd length.
std::optional<Bytes> from_hex(std::string_view hex);

/// Decodes a hex string that is known-valid at the call site (test vectors,
/// embedded constants). Throws std::invalid_argument otherwise.
Bytes from_hex_strict(std::string_view hex);

}  // namespace neo
