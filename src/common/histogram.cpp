#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace neo {

void Histogram::sort() {
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double Histogram::min() {
    NEO_ASSERT(!samples_.empty());
    sort();
    return samples_.front();
}

double Histogram::max() {
    NEO_ASSERT(!samples_.empty());
    sort();
    return samples_.back();
}

double Histogram::mean() const {
    NEO_ASSERT(!samples_.empty());
    double sum = 0;
    for (double v : samples_) sum += v;
    return sum / static_cast<double>(samples_.size());
}

double Histogram::percentile(double p) {
    NEO_ASSERT(!samples_.empty());
    NEO_ASSERT(p >= 0.0 && p <= 100.0);
    sort();
    if (samples_.size() == 1) return samples_[0];
    double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(rank));
    std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

std::vector<std::pair<double, double>> Histogram::cdf(std::size_t points) {
    NEO_ASSERT(points >= 2);
    sort();
    std::vector<std::pair<double, double>> out;
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        double frac = static_cast<double>(i) / static_cast<double>(points - 1);
        std::size_t idx = static_cast<std::size_t>(frac * static_cast<double>(samples_.size() - 1));
        out.emplace_back(samples_[idx], frac);
    }
    return out;
}

}  // namespace neo
