// Latency statistics used by the bench harness.
#pragma once

#include <cstdint>
#include <vector>

namespace neo {

/// Sample-retaining histogram; exact percentiles. The evaluation windows in
/// this repo collect at most a few million samples, so storing them is fine
/// and keeps percentile math exact (the paper reports 99.9th percentiles).
class Histogram {
  public:
    void add(double v) { samples_.push_back(v); sorted_ = false; }

    /// Appends another histogram's samples (in its recording order) —
    /// merging per-client histograms after a run in a deterministic,
    /// client-major order.
    void merge(const Histogram& o) {
        samples_.insert(samples_.end(), o.samples_.begin(), o.samples_.end());
        sorted_ = false;
    }

    std::size_t count() const { return samples_.size(); }
    bool empty() const { return samples_.empty(); }

    double min();
    double max();
    double mean() const;
    /// p in [0, 100].
    double percentile(double p);

    /// CDF as (value, cumulative fraction) pairs at `points` evenly spaced
    /// quantiles — used to print the Fig 4 / Fig 5 latency CDFs.
    std::vector<std::pair<double, double>> cdf(std::size_t points);

    void clear() { samples_.clear(); sorted_ = false; }
    const std::vector<double>& samples() const { return samples_; }

  private:
    void sort();
    std::vector<double> samples_;
    bool sorted_ = false;
};

}  // namespace neo
