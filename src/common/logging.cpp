#include "common/logging.hpp"

#include <atomic>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace neo {

namespace {

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

LogLevel startup_level() {
    const char* e = std::getenv("NEO_LOG_LEVEL");
    return e ? parse_log_level(e) : LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{startup_level()};
// Thread-local: the bench runner executes one simulation per worker
// thread, and each installs the source for its own virtual clock. A
// process-wide source would be a data race (and would read another
// thread's simulator mid-run).
thread_local std::function<std::int64_t()> g_time_source;

}  // namespace

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel parse_log_level(const std::string& name, LogLevel fallback) {
    std::string s;
    for (char c : name) s += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (s == "trace") return LogLevel::kTrace;
    if (s == "debug") return LogLevel::kDebug;
    if (s == "info") return LogLevel::kInfo;
    if (s == "warn" || s == "warning") return LogLevel::kWarn;
    if (s == "error") return LogLevel::kError;
    if (s == "off" || s == "none") return LogLevel::kOff;
    return fallback;
}

void set_log_time_source(std::function<std::int64_t()> fn) { g_time_source = std::move(fn); }
void clear_log_time_source() { g_time_source = nullptr; }

namespace detail {
void log_emit(LogLevel level, const std::string& msg) {
    if (g_time_source) {
        std::int64_t ns = g_time_source();
        std::fprintf(stderr, "[%" PRId64 ".%03dus] [%s] %s\n", ns / 1000,
                     static_cast<int>(ns % 1000), level_name(level), msg.c_str());
    } else {
        std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
    }
}
}  // namespace detail

}  // namespace neo
