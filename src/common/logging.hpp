// Minimal leveled logger. Off by default so benches are quiet; tests and
// examples can raise the level per-run.
#pragma once

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>

namespace neo {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Process-wide minimum level. Defaults to kWarn, or to the NEO_LOG_LEVEL
/// environment variable when set at startup (trace|debug|info|warn|error|off,
/// case-insensitive).
LogLevel log_level();
void set_log_level(LogLevel level);

/// Parses a level name ("debug", "WARN", ...); returns `fallback` on
/// anything unrecognised.
LogLevel parse_log_level(const std::string& name, LogLevel fallback = LogLevel::kWarn);

/// Optional timestamp prefix: when a source is installed, every log line
/// emitted BY THE SAME THREAD is prefixed with the virtual time it returns
/// (nanoseconds, printed as microseconds). The source is thread-local so
/// the parallel bench runner can run one traced simulation per worker
/// without racing; callers must clear it (on the installing thread) before
/// the clock owner is destroyed.
void set_log_time_source(std::function<std::int64_t()> fn);
void clear_log_time_source();

namespace detail {
void log_emit(LogLevel level, const std::string& msg);
}

#define NEO_LOG(level, expr)                                              \
    do {                                                                  \
        if (static_cast<int>(level) >= static_cast<int>(::neo::log_level())) { \
            std::ostringstream neo_log_os_;                               \
            neo_log_os_ << expr;                                          \
            ::neo::detail::log_emit(level, neo_log_os_.str());            \
        }                                                                 \
    } while (0)

#define NEO_TRACE(expr) NEO_LOG(::neo::LogLevel::kTrace, expr)
#define NEO_DEBUG(expr) NEO_LOG(::neo::LogLevel::kDebug, expr)
#define NEO_INFO(expr) NEO_LOG(::neo::LogLevel::kInfo, expr)
#define NEO_WARN(expr) NEO_LOG(::neo::LogLevel::kWarn, expr)
#define NEO_ERROR(expr) NEO_LOG(::neo::LogLevel::kError, expr)

}  // namespace neo
