// Deterministic PRNGs used everywhere randomness is needed (jitter, drops,
// workload generation, key generation in tests). A single seed makes every
// simulation run reproducible.
//
// Two generators share one helper surface (RngOps):
//  - Rng: sequential xoshiro256** — fast bulk stream for single-owner use.
//  - StreamRng: counter-based splitmix64 stream keyed by (seed, stream id).
//    Draw i is a pure function of (key, i), so per-node streams derived from
//    (simulation seed, node id) are identical no matter which thread or
//    partition owns the node — the property the parallel simulator's
//    byte-identical-trace guarantee rests on.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace neo {

/// splitmix64: used to expand a seed into xoshiro state.
inline std::uint64_t splitmix64(std::uint64_t& state) {
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Distribution helpers layered over Derived::next() (CRTP, zero overhead).
template <typename Derived>
class RngOps {
  public:
    /// Uniform in [0, bound). bound must be > 0.
    std::uint64_t uniform(std::uint64_t bound) {
        // Rejection sampling to avoid modulo bias.
        std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = self().next();
            if (r >= threshold) return r % bound;
        }
    }

    /// Uniform in [lo, hi] inclusive.
    std::int64_t range(std::int64_t lo, std::int64_t hi) {
        return lo + static_cast<std::int64_t>(uniform(static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /// Uniform double in [0, 1).
    double real() { return static_cast<double>(self().next() >> 11) * 0x1.0p-53; }

    /// Bernoulli trial.
    bool chance(double p) { return real() < p; }

    /// Fills a buffer with random bytes (test key generation).
    void fill(Bytes& out) {
        for (auto& b : out) b = static_cast<std::uint8_t>(self().next());
    }

    Bytes bytes(std::size_t n) {
        Bytes out(n);
        fill(out);
        return out;
    }

  private:
    Derived& self() { return static_cast<Derived&>(*this); }
};

/// xoshiro256** — fast, high-quality, deterministic across platforms.
class Rng : public RngOps<Rng> {
  public:
    explicit Rng(std::uint64_t seed) {
        std::uint64_t sm = seed;
        for (auto& s : s_) s = splitmix64(sm);
    }

    std::uint64_t next() {
        std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
        std::uint64_t t = s_[1] << 17;
        s_[2] ^= s_[0];
        s_[3] ^= s_[1];
        s_[1] ^= s_[2];
        s_[0] ^= s_[3];
        s_[2] ^= t;
        s_[3] = rotl(s_[3], 45);
        return result;
    }

    /// Derives an independent stream (per node, per link...) from this one.
    Rng fork() { return Rng(next() ^ 0xa5a5a5a55a5a5a5aull); }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
    std::uint64_t s_[4];
};

/// Counter-based stream: output i = finalize(key + i * golden). The state is
/// one key plus one counter, the key mixes (seed, stream id) through two
/// splitmix64 expansions, and consecutive outputs pass through the full
/// splitmix64 finalizer — the same construction the Rng seeder trusts for
/// decorrelating adjacent seeds.
class StreamRng : public RngOps<StreamRng> {
  public:
    StreamRng() = default;
    StreamRng(std::uint64_t seed, std::uint64_t stream) {
        std::uint64_t a = seed;
        std::uint64_t b = stream ^ 0xd2b74407b1ce6e93ull;
        key_ = splitmix64(a) ^ (splitmix64(b) + 0x9e3779b97f4a7c15ull);
    }

    std::uint64_t next() {
        std::uint64_t z = key_ + 0x9e3779b97f4a7c15ull * ++ctr_;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Draws consumed so far — stream position, useful for regression tests.
    std::uint64_t position() const { return ctr_; }

  private:
    std::uint64_t key_ = 0;
    std::uint64_t ctr_ = 0;
};

}  // namespace neo
