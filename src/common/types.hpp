// Shared identifier types.
#pragma once

#include <cstdint>

namespace neo {

/// Identifies any endpoint in the simulated network (replica, client,
/// sequencer switch, config service).
using NodeId = std::uint32_t;

constexpr NodeId kInvalidNode = 0xffffffffu;

/// aom multicast group address.
using GroupId = std::uint32_t;

/// aom epoch (increments on sequencer failover).
using EpochNum = std::uint64_t;

/// aom per-group sequence number (resets per epoch).
using SeqNum = std::uint64_t;

/// Replication-protocol view number component (leader index within an epoch).
using LeaderNum = std::uint64_t;

}  // namespace neo
