#include "crypto/batch_verify.hpp"

#include <memory>

#include "common/assert.hpp"

namespace neo::crypto {

namespace {

// Recursive range descent over the per-item residual verdicts. A range
// whose items all passed is accepted as-is; a failing range is split until
// the failing singletons are isolated, and each of those is re-verified
// with the independent one-shot path (Byzantine safety: the two
// implementations must agree).
void bisect(const std::vector<BatchVerifyItem>& items, const std::vector<const QTable*>& tables,
            std::vector<bool>& verdicts, std::size_t lo, std::size_t hi,
            BatchVerifyStats* stats) {
    bool all_ok = true;
    for (std::size_t i = lo; i < hi; ++i) all_ok = all_ok && verdicts[i];
    if (all_ok) return;

    if (hi - lo == 1) {
        const BatchVerifyItem& item = items[lo];
        // Degenerate items (no key, zero r/s) are rejected outright — there
        // is nothing to recheck.
        if (item.pub == nullptr || item.pub->q.infinity || item.sig.r.is_zero() ||
            item.sig.s.is_zero()) {
            return;
        }
        if (stats) stats->leaf_rechecks++;
        // Independent recomputation: constant-time scalar inversion and the
        // affine x-comparison, none of the batch's shared state.
        Scalar z = Scalar::from_be_bytes_reduce(
            BytesView(item.digest.data(), item.digest.size()));
        Scalar w = item.sig.s.inverse();
        AffinePoint p = double_mul(z.mul(w), item.pub->q, item.sig.r.mul(w));
        bool ok = false;
        if (!p.infinity) {
            Digest32 px = p.x.to_be_bytes();
            ok = Scalar::from_be_bytes_reduce(BytesView(px.data(), px.size())) == item.sig.r;
        }
        NEO_ASSERT_MSG(ok == verdicts[lo],
                       "batch-verify residual disagrees with one-shot ecdsa_verify");
        verdicts[lo] = ok;
        return;
    }

    if (stats) stats->bisect_steps++;
    std::size_t mid = lo + (hi - lo) / 2;
    bisect(items, tables, verdicts, lo, mid, stats);
    bisect(items, tables, verdicts, mid, hi, stats);
}

}  // namespace

std::vector<bool> ecdsa_verify_batch(const std::vector<BatchVerifyItem>& items,
                                     BatchVerifyStats* stats) {
    std::vector<bool> out(items.size(), false);
    if (items.empty()) return out;
    if (stats) {
        stats->batches++;
        stats->items += items.size();
    }

    // Shared precomputation 1: all s inverted for the cost of one inversion.
    std::vector<Scalar> w(items.size());
    std::vector<bool> skip(items.size(), false);
    for (std::size_t i = 0; i < items.size(); ++i) {
        const BatchVerifyItem& item = items[i];
        if (item.pub == nullptr || item.pub->q.infinity || item.sig.r.is_zero() ||
            item.sig.s.is_zero()) {
            skip[i] = true;
            w[i] = Scalar::one();  // placeholder; batch inversion needs non-zero
        } else {
            w[i] = item.sig.s;
        }
    }
    scalar_batch_inverse(w.data(), w.size());

    // Shared precomputation 2: one wNAF table per distinct signer. Items
    // with a caller-cached table use it directly; the rest share tables
    // built once per distinct public key in this batch.
    std::vector<const QTable*> tables(items.size(), nullptr);
    std::vector<std::unique_ptr<QTable>> built;
    std::vector<const EcdsaPublicKey*> built_for;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (skip[i]) continue;
        if (items[i].table != nullptr) {
            tables[i] = items[i].table;
            continue;
        }
        const EcdsaPublicKey* pub = items[i].pub;
        for (std::size_t j = 0; j < built_for.size(); ++j) {
            if (built_for[j] == pub ||
                (built_for[j]->q.x == pub->q.x && built_for[j]->q.y == pub->q.y)) {
                tables[i] = built[j].get();
                break;
            }
        }
        if (tables[i] == nullptr) {
            built.push_back(std::make_unique<QTable>(pub->q));
            built_for.push_back(pub);
            tables[i] = built.back().get();
            if (stats) stats->tables_built++;
        }
    }

    // Per-item residual: u1·G + u2·Q == x-coordinate r (projective compare,
    // no inversions). Each check is individually sound — the batch only
    // shares precomputation, never mixes equations.
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (skip[i]) continue;
        const BatchVerifyItem& item = items[i];
        Scalar z = Scalar::from_be_bytes_reduce(
            BytesView(item.digest.data(), item.digest.size()));
        out[i] = tables[i]->double_mul_check_r(z.mul(w[i]), item.sig.r.mul(w[i]), item.sig.r);
    }

    bool all_ok = true;
    for (std::size_t i = 0; i < items.size(); ++i) all_ok = all_ok && out[i];
    if (all_ok) {
        if (stats) stats->fast_path_batches++;
        return out;
    }

    if (stats) stats->bisect_batches++;
    bisect(items, tables, out, 0, items.size(), stats);
    return out;
}

}  // namespace neo::crypto
