// Batch ECDSA verification with shared precomputation and a bisecting
// fallback that isolates forged signatures.
//
// The paper's FPGA amortises SIGNING cost by hash-chaining aom messages
// (§4.4); this is the receive-side mirror for commodity hosts: when a
// window of signed messages arrives together (a confirm batch, a quorum
// certificate, a chained aom-PK window), the verifier shares work across
// the batch instead of verifying one signature at a time.
//
// True aggregate verification (random linear combination of the
// verification equations) is impossible for wire-format ECDSA: (r, s)
// determines the commitment point R only up to the sign of its
// y-coordinate, so an aggregate check would have to try all 2^N sign
// assignments. What CAN be shared, and is:
//   - one scalar inversion for all s_i (Montgomery's trick,
//     scalar_batch_inverse) instead of one per signature;
//   - one wNAF table per distinct signer (the caller may pass cached
//     tables; otherwise they are built once per batch, not per item);
//   - a projective x-comparison per item — zero field inversions on the
//     whole batch path.
// Each item's residual check is still individually sound, so a forged
// signature can be pinpointed, not just detected.
//
// Byzantine safety: on any failure the verifier bisects the batch, and
// every failing SINGLETON is re-verified independently with the plain
// one-shot ecdsa_verify (separate inversion path, separate point
// arithmetic). The two verdicts must agree — asserted — so a bug in the
// shared-precomputation path can never let a forged signature through
// quietly, and an attacker who slips one bad signature into a batch only
// costs the verifier O(log n) extra range checks plus one recheck per bad
// item (tested under the Byzantine tamper hook).
//
// Host-time only: callers charge virtual CostMeter time per item exactly
// as for one-at-a-time verification, so simulated results are
// byte-identical whether batching is on or off (see HostCryptoTuning).
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "crypto/secp256k1.hpp"

namespace neo::crypto {

/// One signature to verify: the signer's public key (and optionally a
/// prebuilt, cached QTable for it), the 32-byte message digest, and the
/// parsed signature.
struct BatchVerifyItem {
    const EcdsaPublicKey* pub = nullptr;
    /// Optional: caller-cached table for `pub`. When null, tables are built
    /// per distinct `pub` within the batch.
    const QTable* table = nullptr;
    Digest32 digest{};
    EcdsaSignature sig{};
};

/// Counters for tests and the micro benchmarks.
struct BatchVerifyStats {
    std::uint64_t batches = 0;          // ecdsa_verify_batch calls with >= 1 item
    std::uint64_t items = 0;            // total signatures checked
    std::uint64_t fast_path_batches = 0;  // batches where every item verified
    std::uint64_t bisect_batches = 0;   // batches that entered the fallback
    std::uint64_t bisect_steps = 0;     // range splits performed
    std::uint64_t leaf_rechecks = 0;    // failing singletons re-verified one-shot
    std::uint64_t tables_built = 0;     // QTables built (0 when all cached)
};

/// Verifies every item; returns per-item validity in input order. Invalid
/// signatures are isolated via bisection and independently re-verified —
/// a batch with forged items returns false exactly for those items.
std::vector<bool> ecdsa_verify_batch(const std::vector<BatchVerifyItem>& items,
                                     BatchVerifyStats* stats = nullptr);

}  // namespace neo::crypto
