// Virtual-time cost accounting for cryptographic operations.
//
// The simulator charges each node CPU time for the crypto it performs; that
// is what makes authenticator complexity (Table 1) show up as throughput
// differences (Fig 7). Costs are split into a *sync* part (consumes the
// node's serial processing capacity — dispatch, MAC computation, enclave
// calls) and an *async* part (runs on the replica's crypto worker cores —
// the testbed machines have 32 cores — and therefore adds end-to-end
// latency but does not serialise the protocol thread).
//
// Calibration values live in sim/costs.hpp and are derived from the paper's
// reported numbers; see EXPERIMENTS.md.
#pragma once

#include <algorithm>
#include <cstdint>

namespace neo::crypto {

/// Nanoseconds of (virtual) CPU time per operation.
struct CryptoCosts {
    // Public-key sign/verify: small sync dispatch + async bulk work.
    std::int64_t ecdsa_dispatch_ns = 300;
    std::int64_t ecdsa_sign_ns = 18'000;
    std::int64_t ecdsa_verify_ns = 22'000;
    // Keyed-hash tag generate or verify: fully synchronous (sub-µs).
    std::int64_t mac_ns = 300;
    // SHA-256: fully synchronous.
    std::int64_t hash_base_ns = 150;
    std::int64_t hash_per_byte_ns = 2;
    // Sealing a message batch (leader request batches, confirm batches):
    // assembling the batched message and handing it to the send path. Paid
    // once per seal decision, so adaptive batching's fewer-but-larger
    // batches show up as less virtual dispatch work under load.
    std::int64_t batch_seal_ns = 250;
};

/// Per-node accumulator. Protocol handlers run, crypto ops tick the meter,
/// and the simulation drains it into the node's busy time (sync) and the
/// message's completion latency (async) afterwards.
class CostMeter {
  public:
    void charge(std::int64_t ns) { pending_sync_ns_ += ns; }
    void charge_async(std::int64_t ns) {
        pending_async_ns_ += ns;
        pending_async_max_ns_ = std::max(pending_async_max_ns_, ns);
    }

    /// Returns accumulated synchronous nanoseconds and resets.
    std::int64_t drain() {
        std::int64_t v = pending_sync_ns_;
        pending_sync_ns_ = 0;
        return v;
    }

    /// Drains the async pool and returns the latency a worker pool of
    /// `parallelism` cores needs for the batched operations: the longest
    /// single op runs in full, the rest overlap across workers.
    std::int64_t drain_async(int parallelism = 1) {
        std::int64_t sum = pending_async_ns_;
        std::int64_t mx = pending_async_max_ns_;
        pending_async_ns_ = 0;
        pending_async_max_ns_ = 0;
        if (parallelism <= 1 || sum == 0) return sum;
        return mx + (sum - mx) / parallelism;
    }

    // Op counters, used by the Table 1 reproduction to count authenticator
    // operations per committed request.
    std::uint64_t signs = 0;
    std::uint64_t verifies = 0;
    std::uint64_t macs = 0;
    std::uint64_t hashes = 0;

    void reset_counters() { signs = verifies = macs = hashes = 0; }

  private:
    std::int64_t pending_sync_ns_ = 0;
    std::int64_t pending_async_ns_ = 0;
    std::int64_t pending_async_max_ns_ = 0;
};

}  // namespace neo::crypto
