#include "crypto/hmac_sha256.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace neo::crypto {

Digest32 hmac_sha256(BytesView key, BytesView data) {
    std::uint8_t k0[64];
    std::memset(k0, 0, sizeof(k0));
    if (key.size() > 64) {
        Digest32 kd = sha256(key);
        std::memcpy(k0, kd.data(), kd.size());
    } else {
        std::memcpy(k0, key.data(), key.size());
    }

    std::uint8_t ipad[64], opad[64];
    for (int i = 0; i < 64; ++i) {
        ipad[i] = k0[i] ^ 0x36;
        opad[i] = k0[i] ^ 0x5c;
    }

    Sha256 inner;
    inner.update(BytesView(ipad, 64));
    inner.update(data);
    Digest32 inner_digest = inner.finish();

    Sha256 outer;
    outer.update(BytesView(opad, 64));
    outer.update(BytesView(inner_digest.data(), inner_digest.size()));
    return outer.finish();
}

Bytes hmac_sha256_tag(BytesView key, BytesView data, std::size_t tag_len) {
    NEO_ASSERT(tag_len >= 4 && tag_len <= 32);
    Digest32 full = hmac_sha256(key, data);
    return Bytes(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(tag_len));
}

}  // namespace neo::crypto
