#include "crypto/hmac_sha256.hpp"

#include <cstring>

#include "common/assert.hpp"

namespace neo::crypto {

HmacSha256Key::HmacSha256Key(BytesView key) {
    std::uint8_t k0[64];
    std::memset(k0, 0, sizeof(k0));
    if (key.size() > 64) {
        Digest32 kd = sha256(key);
        std::memcpy(k0, kd.data(), kd.size());
    } else {
        std::memcpy(k0, key.data(), key.size());
    }

    std::uint8_t pad[64];
    for (int i = 0; i < 64; ++i) pad[i] = k0[i] ^ 0x36;
    inner_.update(BytesView(pad, 64));
    for (int i = 0; i < 64; ++i) pad[i] = k0[i] ^ 0x5c;
    outer_.update(BytesView(pad, 64));
}

Digest32 HmacSha256Key::mac(BytesView data) const {
    Sha256 inner = inner_;  // resume from the padded-key midstate
    inner.update(data);
    Digest32 inner_digest = inner.finish();

    Sha256 outer = outer_;
    outer.update(BytesView(inner_digest.data(), inner_digest.size()));
    return outer.finish();
}

Digest32 hmac_sha256(BytesView key, BytesView data) { return HmacSha256Key(key).mac(data); }

Bytes hmac_sha256_tag(BytesView key, BytesView data, std::size_t tag_len) {
    NEO_ASSERT(tag_len >= 4 && tag_len <= 32);
    Digest32 full = hmac_sha256(key, data);
    return Bytes(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(tag_len));
}

}  // namespace neo::crypto
