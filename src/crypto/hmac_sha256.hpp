// HMAC-SHA256 (RFC 2104). Used for deterministic ECDSA nonces, USIG
// attestations (MinBFT), and end-host message authentication.
#pragma once

#include "common/bytes.hpp"
#include "crypto/sha256.hpp"

namespace neo::crypto {

Digest32 hmac_sha256(BytesView key, BytesView data);

/// Truncated tag, convenient for wire formats that carry short MACs.
Bytes hmac_sha256_tag(BytesView key, BytesView data, std::size_t tag_len);

/// Precomputed HMAC key: absorbing the padded key block costs 2 of the
/// ~4 SHA-256 compressions a short-message HMAC pays, and is a pure
/// function of the key. Holders that MAC many messages under one key
/// (e.g. the TrustRoot's modeled-signature oracle) construct this once
/// and pay only for the message bytes per call. Identical output to
/// hmac_sha256() by construction.
class HmacSha256Key {
  public:
    explicit HmacSha256Key(BytesView key);

    Digest32 mac(BytesView data) const;

  private:
    Sha256 inner_;  // midstate after key ^ ipad
    Sha256 outer_;  // midstate after key ^ opad
};

}  // namespace neo::crypto
