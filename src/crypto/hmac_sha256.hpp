// HMAC-SHA256 (RFC 2104). Used for deterministic ECDSA nonces, USIG
// attestations (MinBFT), and end-host message authentication.
#pragma once

#include "common/bytes.hpp"

namespace neo::crypto {

Digest32 hmac_sha256(BytesView key, BytesView data);

/// Truncated tag, convenient for wire formats that carry short MACs.
Bytes hmac_sha256_tag(BytesView key, BytesView data, std::size_t tag_len);

}  // namespace neo::crypto
