#include "crypto/identity.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/sha256.hpp"

namespace neo::crypto {

namespace {

Bytes master_secret_from_seed(std::uint64_t seed) {
    Writer w(16);
    w.u64(seed);
    w.str("neo-trust-root");
    Digest32 d = sha256(w.bytes());
    return Bytes(d.begin(), d.end());
}

}  // namespace

HostCryptoTuning& host_crypto_tuning() {
    static HostCryptoTuning tuning;
    return tuning;
}

TrustRoot::TrustRoot(CryptoMode mode, std::uint64_t seed, CryptoCosts costs)
    : mode_(mode),
      costs_(costs),
      master_secret_(master_secret_from_seed(seed)),
      master_key_(master_secret_) {}

Bytes TrustRoot::derive(std::string_view label, std::uint64_t a, std::uint64_t b) const {
    Writer w(32);
    w.str(label);
    w.u64(a);
    w.u64(b);
    Digest32 d = master_key_.mac(w.bytes());
    return Bytes(d.begin(), d.end());
}

std::unique_ptr<NodeCrypto> TrustRoot::provision(NodeId node) {
    Bytes seed = derive("node-signing-key", node, 0);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(seed);
    if (mode_ == CryptoMode::kReal && !public_keys_.contains(node)) {
        auto it = public_keys_.emplace(node, ecdsa_derive_public(priv)).first;
        // Built eagerly so the table map is const once simulation starts —
        // verifiers on any partition read it without locks.
        signer_tables_.emplace(node, std::make_unique<QTable>(it->second.q));
    }
    provisioned_[node] = true;
    return std::unique_ptr<NodeCrypto>(new NodeCrypto(this, node, priv));
}

const QTable* TrustRoot::signer_table(NodeId node) const {
    auto it = signer_tables_.find(node);
    return it == signer_tables_.end() ? nullptr : it->second.get();
}

std::uint64_t TrustRoot::shared_memo_hits() const {
    std::uint64_t total = 0;
    for (const MemoShard& shard : shared_memo_) {
        std::lock_guard<std::mutex> lock(shard.m);
        total += shard.memo.hits();
    }
    return total;
}

bool TrustRoot::shared_find(NodeId signer, const Digest32& digest, BytesView sig,
                            bool* valid) const {
    MemoShard& shard = shared_memo_[digest[0] % kMemoShards];
    std::lock_guard<std::mutex> lock(shard.m);
    const bool* verdict = shard.memo.find(signer, digest, sig);
    if (verdict == nullptr) return false;
    *valid = *verdict;
    return true;
}

void TrustRoot::shared_insert(NodeId signer, const Digest32& digest, BytesView sig,
                              bool valid) const {
    MemoShard& shard = shared_memo_[digest[0] % kMemoShards];
    std::lock_guard<std::mutex> lock(shard.m);
    shard.memo.insert(signer, digest, sig, valid);
}

const EcdsaPublicKey& TrustRoot::public_key(NodeId node) const {
    auto it = public_keys_.find(node);
    NEO_ASSERT_MSG(it != public_keys_.end(), "public key requested for unprovisioned node");
    return it->second;
}

SipKey TrustRoot::pair_key(NodeId a, NodeId b) const {
    // Pure function of (lo, hi) — no caching here, so concurrent calls from
    // parallel partitions are safe; per-node caching lives in NodeCrypto.
    NodeId lo = std::min(a, b);
    NodeId hi = std::max(a, b);
    Bytes d = derive("pairwise-mac-key", lo, hi);
    return SipKey::from_bytes(BytesView(d.data(), 16));
}

Bytes TrustRoot::modeled_sign(NodeId signer, BytesView msg) const {
    // Oracle tag: HMAC(master, signer || msg), padded to signature size so
    // modeled and real wire formats are byte-compatible.
    Writer w(msg.size() + 8);
    w.u32(signer);
    w.raw(msg);
    Digest32 tag = master_key_.mac(w.bytes());
    Bytes out(kSignatureSize, 0);
    std::copy(tag.begin(), tag.end(), out.begin());
    return out;
}

bool TrustRoot::verify_unmetered(NodeId signer, BytesView msg, BytesView sig) const {
    if (sig.size() != kSignatureSize) return false;
    if (mode_ == CryptoMode::kModeled) {
        return ct_equal(modeled_sign(signer, msg), sig);
    }
    auto it = public_keys_.find(signer);
    if (it == public_keys_.end()) return false;
    auto parsed = EcdsaSignature::parse(sig);
    if (!parsed) return false;
    Digest32 digest = sha256(msg);
    if (const bool* memoed = memo_.find(signer, digest, sig)) return *memoed;
    bool ok = ecdsa_verify(it->second, digest, *parsed);
    memo_.insert(signer, digest, sig, ok);
    return ok;
}

NodeCrypto::NodeCrypto(const TrustRoot* root, NodeId self, EcdsaPrivateKey priv)
    : root_(root), self_(self), priv_(priv) {}

Bytes NodeCrypto::sign(BytesView msg) {
    meter_.signs++;
    meter_.charge(root_->costs().ecdsa_dispatch_ns);
    meter_.charge_async(root_->costs().ecdsa_sign_ns);
    if (root_->mode_ == CryptoMode::kModeled) {
        return root_->modeled_sign(self_, msg);
    }
    EcdsaSignature sig = ecdsa_sign(priv_, sha256(msg));
    return sig.serialize();
}

bool NodeCrypto::verify_cached(NodeId signer, BytesView msg, BytesView sig) {
    // Same logic as TrustRoot::verify_unmetered, but memoised in this
    // node's private table so the fast path never takes a lock. On a
    // private miss the cross-node shared memo is consulted (one short
    // critical section) before paying for EC math: in a simulated
    // deployment every replica verifies the same broadcast bytes, so all
    // but the first verifier hit the shared table.
    if (sig.size() != kSignatureSize) return false;
    if (root_->mode_ == CryptoMode::kModeled) {
        return ct_equal(root_->modeled_sign(signer, msg), sig);
    }
    auto it = root_->public_keys_.find(signer);
    if (it == root_->public_keys_.end()) return false;
    auto parsed = EcdsaSignature::parse(sig);
    if (!parsed) return false;
    Digest32 digest = sha256(msg);
    if (const bool* memoed = memo_.find(signer, digest, sig)) return *memoed;
    const bool use_shared = host_crypto_tuning().shared_memo.load(std::memory_order_relaxed);
    if (use_shared) {
        bool shared_ok = false;
        if (root_->shared_find(signer, digest, sig, &shared_ok)) {
            memo_.insert(signer, digest, sig, shared_ok);
            return shared_ok;
        }
    }
    const QTable* table = use_shared ? root_->signer_table(signer) : nullptr;
    bool ok = table != nullptr ? ecdsa_verify_with(*table, digest, *parsed)
                               : ecdsa_verify(it->second, digest, *parsed);
    memo_.insert(signer, digest, sig, ok);
    if (use_shared) root_->shared_insert(signer, digest, sig, ok);
    return ok;
}

const SipKey& NodeCrypto::peer_key(NodeId peer) {
    auto it = peer_keys_.find(peer);
    if (it == peer_keys_.end()) {
        it = peer_keys_.emplace(peer, root_->pair_key(self_, peer)).first;
    }
    return it->second;
}

bool NodeCrypto::verify(NodeId signer, BytesView msg, BytesView sig) {
    meter_.verifies++;
    meter_.charge(root_->costs().ecdsa_dispatch_ns);
    meter_.charge_async(root_->costs().ecdsa_verify_ns);
    return verify_cached(signer, msg, sig);
}

std::vector<bool> NodeCrypto::verify_batch(const std::vector<BatchItem>& items) {
    // Virtual cost first, identically on every host-side path: one dispatch
    // for the batch, full per-element verify cost. Whether the host then
    // verifies one-at-a-time, hits a memo, or runs the shared-precomputation
    // batch, the simulated timeline cannot tell the difference.
    meter_.charge(root_->costs().ecdsa_dispatch_ns);  // one dispatch for all
    for (std::size_t i = 0; i < items.size(); ++i) {
        meter_.verifies++;
        meter_.charge_async(root_->costs().ecdsa_verify_ns);
    }

    const bool batch = root_->mode_ == CryptoMode::kReal && items.size() > 1 &&
                       host_crypto_tuning().batch_verify.load(std::memory_order_relaxed);
    if (!batch) {
        std::vector<bool> out;
        out.reserve(items.size());
        for (const auto& item : items) out.push_back(verify_cached(item.signer, item.msg, item.sig));
        return out;
    }

    // Resolve each item: structural rejects and memo hits settle now; the
    // remainder becomes one shared-precomputation batch with the signers'
    // provision-time wNAF tables.
    const bool use_shared = host_crypto_tuning().shared_memo.load(std::memory_order_relaxed);
    std::vector<bool> out(items.size(), false);
    std::vector<BatchVerifyItem> pending;
    std::vector<std::size_t> pending_idx;
    std::vector<NodeId> pending_signer;
    for (std::size_t i = 0; i < items.size(); ++i) {
        const BatchItem& item = items[i];
        if (item.sig.size() != kSignatureSize) continue;
        auto it = root_->public_keys_.find(item.signer);
        if (it == root_->public_keys_.end()) continue;
        auto parsed = EcdsaSignature::parse(item.sig);
        if (!parsed) continue;
        Digest32 digest = sha256(item.msg);
        if (const bool* memoed = memo_.find(item.signer, digest, item.sig)) {
            out[i] = *memoed;
            continue;
        }
        if (use_shared) {
            bool shared_ok = false;
            if (root_->shared_find(item.signer, digest, item.sig, &shared_ok)) {
                memo_.insert(item.signer, digest, item.sig, shared_ok);
                out[i] = shared_ok;
                continue;
            }
        }
        pending.push_back(BatchVerifyItem{&it->second, root_->signer_table(item.signer), digest,
                                          *parsed});
        pending_idx.push_back(i);
        pending_signer.push_back(item.signer);
    }

    if (!pending.empty()) {
        std::vector<bool> verdicts = ecdsa_verify_batch(pending, &batch_stats_);
        for (std::size_t j = 0; j < pending.size(); ++j) {
            std::size_t i = pending_idx[j];
            out[i] = verdicts[j];
            memo_.insert(pending_signer[j], pending[j].digest, items[i].sig, verdicts[j]);
            if (use_shared) {
                root_->shared_insert(pending_signer[j], pending[j].digest, items[i].sig,
                                     verdicts[j]);
            }
        }
    }
    return out;
}

Bytes NodeCrypto::mac_for(NodeId peer, BytesView msg) {
    meter_.macs++;
    meter_.charge(root_->costs().mac_ns);
    const SipKey& key = peer_key(peer);
    std::uint64_t tag = siphash24(key, msg);
    Bytes out(kMacSize);
    for (std::size_t i = 0; i < kMacSize; ++i) out[i] = static_cast<std::uint8_t>(tag >> (8 * i));
    return out;
}

bool NodeCrypto::check_mac_from(NodeId peer, BytesView msg, BytesView tag) {
    meter_.macs++;
    meter_.charge(root_->costs().mac_ns);
    if (tag.size() != kMacSize) return false;
    const SipKey& key = peer_key(peer);
    std::uint64_t expect = siphash24(key, msg);
    Bytes eb(kMacSize);
    for (std::size_t i = 0; i < kMacSize; ++i) eb[i] = static_cast<std::uint8_t>(expect >> (8 * i));
    return ct_equal(eb, tag);
}

Digest32 NodeCrypto::hash(BytesView msg) {
    meter_.hashes++;
    meter_.charge(root_->costs().hash_base_ns +
                  root_->costs().hash_per_byte_ns * static_cast<std::int64_t>(msg.size()));
    return sha256(msg);
}

}  // namespace neo::crypto
