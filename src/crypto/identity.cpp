#include "crypto/identity.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/codec.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/sha256.hpp"

namespace neo::crypto {

namespace {

Bytes master_secret_from_seed(std::uint64_t seed) {
    Writer w(16);
    w.u64(seed);
    w.str("neo-trust-root");
    Digest32 d = sha256(w.bytes());
    return Bytes(d.begin(), d.end());
}

}  // namespace

TrustRoot::TrustRoot(CryptoMode mode, std::uint64_t seed, CryptoCosts costs)
    : mode_(mode),
      costs_(costs),
      master_secret_(master_secret_from_seed(seed)),
      master_key_(master_secret_) {}

Bytes TrustRoot::derive(std::string_view label, std::uint64_t a, std::uint64_t b) const {
    Writer w(32);
    w.str(label);
    w.u64(a);
    w.u64(b);
    Digest32 d = master_key_.mac(w.bytes());
    return Bytes(d.begin(), d.end());
}

std::unique_ptr<NodeCrypto> TrustRoot::provision(NodeId node) {
    Bytes seed = derive("node-signing-key", node, 0);
    EcdsaPrivateKey priv = EcdsaPrivateKey::from_seed(seed);
    if (mode_ == CryptoMode::kReal && !public_keys_.contains(node)) {
        public_keys_.emplace(node, ecdsa_derive_public(priv));
    }
    provisioned_[node] = true;
    return std::unique_ptr<NodeCrypto>(new NodeCrypto(this, node, priv));
}

const EcdsaPublicKey& TrustRoot::public_key(NodeId node) const {
    auto it = public_keys_.find(node);
    NEO_ASSERT_MSG(it != public_keys_.end(), "public key requested for unprovisioned node");
    return it->second;
}

SipKey TrustRoot::pair_key(NodeId a, NodeId b) const {
    // Pure function of (lo, hi) — no caching here, so concurrent calls from
    // parallel partitions are safe; per-node caching lives in NodeCrypto.
    NodeId lo = std::min(a, b);
    NodeId hi = std::max(a, b);
    Bytes d = derive("pairwise-mac-key", lo, hi);
    return SipKey::from_bytes(BytesView(d.data(), 16));
}

Bytes TrustRoot::modeled_sign(NodeId signer, BytesView msg) const {
    // Oracle tag: HMAC(master, signer || msg), padded to signature size so
    // modeled and real wire formats are byte-compatible.
    Writer w(msg.size() + 8);
    w.u32(signer);
    w.raw(msg);
    Digest32 tag = master_key_.mac(w.bytes());
    Bytes out(kSignatureSize, 0);
    std::copy(tag.begin(), tag.end(), out.begin());
    return out;
}

bool TrustRoot::verify_unmetered(NodeId signer, BytesView msg, BytesView sig) const {
    if (sig.size() != kSignatureSize) return false;
    if (mode_ == CryptoMode::kModeled) {
        return ct_equal(modeled_sign(signer, msg), sig);
    }
    auto it = public_keys_.find(signer);
    if (it == public_keys_.end()) return false;
    auto parsed = EcdsaSignature::parse(sig);
    if (!parsed) return false;
    Digest32 digest = sha256(msg);
    if (const bool* memoed = memo_.find(signer, digest, sig)) return *memoed;
    bool ok = ecdsa_verify(it->second, digest, *parsed);
    memo_.insert(signer, digest, sig, ok);
    return ok;
}

NodeCrypto::NodeCrypto(const TrustRoot* root, NodeId self, EcdsaPrivateKey priv)
    : root_(root), self_(self), priv_(priv) {}

Bytes NodeCrypto::sign(BytesView msg) {
    meter_.signs++;
    meter_.charge(root_->costs().ecdsa_dispatch_ns);
    meter_.charge_async(root_->costs().ecdsa_sign_ns);
    if (root_->mode_ == CryptoMode::kModeled) {
        return root_->modeled_sign(self_, msg);
    }
    EcdsaSignature sig = ecdsa_sign(priv_, sha256(msg));
    return sig.serialize();
}

bool NodeCrypto::verify_cached(NodeId signer, BytesView msg, BytesView sig) {
    // Same logic as TrustRoot::verify_unmetered, but memoised in this
    // node's private table so partitions never share mutable state.
    if (sig.size() != kSignatureSize) return false;
    if (root_->mode_ == CryptoMode::kModeled) {
        return ct_equal(root_->modeled_sign(signer, msg), sig);
    }
    auto it = root_->public_keys_.find(signer);
    if (it == root_->public_keys_.end()) return false;
    auto parsed = EcdsaSignature::parse(sig);
    if (!parsed) return false;
    Digest32 digest = sha256(msg);
    if (const bool* memoed = memo_.find(signer, digest, sig)) return *memoed;
    bool ok = ecdsa_verify(it->second, digest, *parsed);
    memo_.insert(signer, digest, sig, ok);
    return ok;
}

const SipKey& NodeCrypto::peer_key(NodeId peer) {
    auto it = peer_keys_.find(peer);
    if (it == peer_keys_.end()) {
        it = peer_keys_.emplace(peer, root_->pair_key(self_, peer)).first;
    }
    return it->second;
}

bool NodeCrypto::verify(NodeId signer, BytesView msg, BytesView sig) {
    meter_.verifies++;
    meter_.charge(root_->costs().ecdsa_dispatch_ns);
    meter_.charge_async(root_->costs().ecdsa_verify_ns);
    return verify_cached(signer, msg, sig);
}

std::vector<bool> NodeCrypto::verify_batch(const std::vector<BatchItem>& items) {
    meter_.charge(root_->costs().ecdsa_dispatch_ns);  // one dispatch for all
    std::vector<bool> out;
    out.reserve(items.size());
    for (const auto& item : items) {
        meter_.verifies++;
        meter_.charge_async(root_->costs().ecdsa_verify_ns);
        out.push_back(verify_cached(item.signer, item.msg, item.sig));
    }
    return out;
}

Bytes NodeCrypto::mac_for(NodeId peer, BytesView msg) {
    meter_.macs++;
    meter_.charge(root_->costs().mac_ns);
    const SipKey& key = peer_key(peer);
    std::uint64_t tag = siphash24(key, msg);
    Bytes out(kMacSize);
    for (std::size_t i = 0; i < kMacSize; ++i) out[i] = static_cast<std::uint8_t>(tag >> (8 * i));
    return out;
}

bool NodeCrypto::check_mac_from(NodeId peer, BytesView msg, BytesView tag) {
    meter_.macs++;
    meter_.charge(root_->costs().mac_ns);
    if (tag.size() != kMacSize) return false;
    const SipKey& key = peer_key(peer);
    std::uint64_t expect = siphash24(key, msg);
    Bytes eb(kMacSize);
    for (std::size_t i = 0; i < kMacSize; ++i) eb[i] = static_cast<std::uint8_t>(expect >> (8 * i));
    return ct_equal(eb, tag);
}

Digest32 NodeCrypto::hash(BytesView msg) {
    meter_.hashes++;
    meter_.charge(root_->costs().hash_base_ns +
                  root_->costs().hash_per_byte_ns * static_cast<std::int64_t>(msg.size()));
    return sha256(msg);
}

}  // namespace neo::crypto
