// Node identities, key provisioning, and per-node signing/verification.
//
// TrustRoot plays the role the paper assigns to the configuration service's
// credential setup (§4.1, §5.1): it provisions each node's signing keypair
// and the pairwise symmetric keys used for MAC authenticators, and
// distributes public keys. Protocol code never touches another node's
// private key — a Byzantine node subclass only holds its own NodeCrypto, so
// forging requires breaking the underlying primitive.
//
// Two modes:
//  - kReal:    secp256k1 ECDSA signatures, SipHash pairwise MACs. Used by
//              tests and examples; tampering is cryptographically detected.
//  - kModeled: SipHash-based tags standing in for signatures, with the SAME
//              virtual-time cost charged as ECDSA. Used by large bench
//              sweeps so millions of simulated messages stay cheap in real
//              time. Not adversarially sound (a shared oracle key exists
//              inside the process) — documented in DESIGN.md.
#pragma once

#include <array>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/cost.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/siphash.hpp"
#include "crypto/tuning.hpp"
#include "crypto/verify_memo.hpp"

namespace neo::crypto {

enum class CryptoMode { kReal, kModeled };

/// Byte size of a signature in both modes (modeled tags are padded so wire
/// sizes — and therefore bandwidth costs — match).
constexpr std::size_t kSignatureSize = 64;
/// Byte size of a pairwise MAC tag.
constexpr std::size_t kMacSize = 8;

class NodeCrypto;

/// System-wide key directory. Create once per simulation, share between all
/// nodes. Const after setup: every mutating call (provision, key
/// registration) happens before the simulation runs, so concurrent reads
/// from parallel simulator workers are safe. Host-side caching of verify
/// verdicts and pairwise keys lives in each NodeCrypto — node-private state
/// that stays on the node's partition — except verify_unmetered's memo,
/// which serves single-threaded external checkers only.
class TrustRoot {
  public:
    TrustRoot(CryptoMode mode, std::uint64_t seed, CryptoCosts costs = {});

    CryptoMode mode() const { return mode_; }
    const CryptoCosts& costs() const { return costs_; }

    /// Creates (or returns) the crypto context for a node. Each node keeps
    /// its own; the TrustRoot retains only public material.
    std::unique_ptr<NodeCrypto> provision(NodeId node);

    /// Public key lookup (real mode). Asserts the node was provisioned.
    const EcdsaPublicKey& public_key(NodeId node) const;

    /// Derives the symmetric key shared by a pair of nodes.
    SipKey pair_key(NodeId a, NodeId b) const;

    /// Verifies a signature without a NodeCrypto context (e.g. external
    /// checkers in tests). Does not charge any cost meter. Single-threaded
    /// callers only (its memo is shared process state); simulated nodes
    /// verify through their own NodeCrypto.
    bool verify_unmetered(NodeId signer, BytesView msg, BytesView sig) const;

    /// Host-time memo of (signer, digest, sig) verdicts used by
    /// verify_unmetered. Exposed for instrumentation.
    const VerifyMemo& verify_memo() const { return memo_; }

    /// Cached wNAF table for a provisioned signer's public key (kReal
    /// only; built once at provision time, immutable afterwards — safe to
    /// read from any partition without locks). Null when unknown.
    const QTable* signer_table(NodeId node) const;

    /// Total hits on the cross-node shared verdict memo (host-side
    /// instrumentation; see NodeCrypto::verify).
    std::uint64_t shared_memo_hits() const;

  private:
    friend class NodeCrypto;

    Bytes derive(std::string_view label, std::uint64_t a, std::uint64_t b) const;
    Bytes modeled_sign(NodeId signer, BytesView msg) const;

    /// Cross-node shared verdict memo. Verification is a pure function of
    /// (public key, digest, signature), and in a simulated deployment every
    /// replica verifies the SAME broadcast bytes — node-private memos pay
    /// the EC math once per node, this shard pays it once per process.
    /// Mutex-sharded because parallel partitions hit it concurrently; a
    /// miss costs one short critical section. Host-time only: each node
    /// still charges full virtual cost, so simulated results are identical
    /// with the shared memo on or off (HostCryptoTuning::shared_memo).
    /// Returns true and fills *valid on a hit. The verdict is copied out
    /// under the shard lock — never a pointer into the shard, which a
    /// concurrent insert could recycle.
    bool shared_find(NodeId signer, const Digest32& digest, BytesView sig, bool* valid) const;
    void shared_insert(NodeId signer, const Digest32& digest, BytesView sig, bool valid) const;

    CryptoMode mode_;
    CryptoCosts costs_;
    Bytes master_secret_;
    // Padded-key SHA-256 midstates for master_secret_: every derive() and
    // modeled_sign() HMACs under this one key, so the key-block absorb is
    // paid once per TrustRoot instead of per message.
    HmacSha256Key master_key_;
    std::unordered_map<NodeId, EcdsaPublicKey> public_keys_;
    std::unordered_map<NodeId, std::unique_ptr<QTable>> signer_tables_;
    std::unordered_map<NodeId, bool> provisioned_;
    // mutable: verify_unmetered is logically const (pure function of the
    // key material); the memo is a host-side cache of its results. Only
    // external single-threaded checkers touch it — node verification goes
    // through NodeCrypto's private memo.
    mutable VerifyMemo memo_;
    struct MemoShard {
        mutable std::mutex m;
        mutable VerifyMemo memo{2048};
    };
    static constexpr std::size_t kMemoShards = 8;
    mutable std::array<MemoShard, kMemoShards> shared_memo_;
};

/// Per-node crypto context. All operations charge the node's CostMeter.
class NodeCrypto {
  public:
    NodeId self() const { return self_; }
    CostMeter& meter() { return meter_; }
    const TrustRoot& root() const { return *root_; }

    /// Signs with this node's key. Output is kSignatureSize bytes.
    Bytes sign(BytesView msg);

    /// Verifies `signer`'s signature over msg.
    bool verify(NodeId signer, BytesView msg, BytesView sig);

    /// Batch verification: one dispatch for the whole batch (how real
    /// deployments feed signature batches to worker cores), async cost per
    /// element. Returns per-element validity.
    struct BatchItem {
        NodeId signer;
        Bytes msg;
        BytesView sig;
    };
    std::vector<bool> verify_batch(const std::vector<BatchItem>& items);

    /// Pairwise MAC tag for messages to `peer` (kMacSize bytes).
    Bytes mac_for(NodeId peer, BytesView msg);
    bool check_mac_from(NodeId peer, BytesView msg, BytesView tag);

    /// SHA-256 with cost charging.
    Digest32 hash(BytesView msg);

    /// This node's host-time memo of (signer, digest, sig) verdicts used by
    /// the kReal verify path. Node-private — never shared across threads.
    /// Exposed for instrumentation; callers still charge virtual cost.
    const VerifyMemo& verify_memo() const { return memo_; }

    /// Host-side counters of this node's batch-verification activity
    /// (fast-path batches, bisect descents, forged-leaf rechecks).
    const BatchVerifyStats& batch_stats() const { return batch_stats_; }

  private:
    friend class TrustRoot;
    NodeCrypto(const TrustRoot* root, NodeId self, EcdsaPrivateKey priv);

    bool verify_cached(NodeId signer, BytesView msg, BytesView sig);
    const SipKey& peer_key(NodeId peer);

    const TrustRoot* root_;
    NodeId self_;
    EcdsaPrivateKey priv_;
    CostMeter meter_;
    // Host-side caches, node-private so parallel partitions never contend:
    // verification verdicts and the pairwise MAC keys this node talks with.
    VerifyMemo memo_;
    BatchVerifyStats batch_stats_;
    std::unordered_map<NodeId, SipKey> peer_keys_;
};

}  // namespace neo::crypto
