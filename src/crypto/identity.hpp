// Node identities, key provisioning, and per-node signing/verification.
//
// TrustRoot plays the role the paper assigns to the configuration service's
// credential setup (§4.1, §5.1): it provisions each node's signing keypair
// and the pairwise symmetric keys used for MAC authenticators, and
// distributes public keys. Protocol code never touches another node's
// private key — a Byzantine node subclass only holds its own NodeCrypto, so
// forging requires breaking the underlying primitive.
//
// Two modes:
//  - kReal:    secp256k1 ECDSA signatures, SipHash pairwise MACs. Used by
//              tests and examples; tampering is cryptographically detected.
//  - kModeled: SipHash-based tags standing in for signatures, with the SAME
//              virtual-time cost charged as ECDSA. Used by large bench
//              sweeps so millions of simulated messages stay cheap in real
//              time. Not adversarially sound (a shared oracle key exists
//              inside the process) — documented in DESIGN.md.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "crypto/cost.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/secp256k1.hpp"
#include "crypto/siphash.hpp"
#include "crypto/verify_memo.hpp"

namespace neo::crypto {

enum class CryptoMode { kReal, kModeled };

/// Byte size of a signature in both modes (modeled tags are padded so wire
/// sizes — and therefore bandwidth costs — match).
constexpr std::size_t kSignatureSize = 64;
/// Byte size of a pairwise MAC tag.
constexpr std::size_t kMacSize = 8;

class NodeCrypto;

/// System-wide key directory. Create once per simulation, share between all
/// nodes. Const after setup: every mutating call (provision, key
/// registration) happens before the simulation runs, so concurrent reads
/// from parallel simulator workers are safe. Host-side caching of verify
/// verdicts and pairwise keys lives in each NodeCrypto — node-private state
/// that stays on the node's partition — except verify_unmetered's memo,
/// which serves single-threaded external checkers only.
class TrustRoot {
  public:
    TrustRoot(CryptoMode mode, std::uint64_t seed, CryptoCosts costs = {});

    CryptoMode mode() const { return mode_; }
    const CryptoCosts& costs() const { return costs_; }

    /// Creates (or returns) the crypto context for a node. Each node keeps
    /// its own; the TrustRoot retains only public material.
    std::unique_ptr<NodeCrypto> provision(NodeId node);

    /// Public key lookup (real mode). Asserts the node was provisioned.
    const EcdsaPublicKey& public_key(NodeId node) const;

    /// Derives the symmetric key shared by a pair of nodes.
    SipKey pair_key(NodeId a, NodeId b) const;

    /// Verifies a signature without a NodeCrypto context (e.g. external
    /// checkers in tests). Does not charge any cost meter. Single-threaded
    /// callers only (its memo is shared process state); simulated nodes
    /// verify through their own NodeCrypto.
    bool verify_unmetered(NodeId signer, BytesView msg, BytesView sig) const;

    /// Host-time memo of (signer, digest, sig) verdicts used by
    /// verify_unmetered. Exposed for instrumentation.
    const VerifyMemo& verify_memo() const { return memo_; }

  private:
    friend class NodeCrypto;

    Bytes derive(std::string_view label, std::uint64_t a, std::uint64_t b) const;
    Bytes modeled_sign(NodeId signer, BytesView msg) const;

    CryptoMode mode_;
    CryptoCosts costs_;
    Bytes master_secret_;
    // Padded-key SHA-256 midstates for master_secret_: every derive() and
    // modeled_sign() HMACs under this one key, so the key-block absorb is
    // paid once per TrustRoot instead of per message.
    HmacSha256Key master_key_;
    std::unordered_map<NodeId, EcdsaPublicKey> public_keys_;
    std::unordered_map<NodeId, bool> provisioned_;
    // mutable: verify_unmetered is logically const (pure function of the
    // key material); the memo is a host-side cache of its results. Only
    // external single-threaded checkers touch it — node verification goes
    // through NodeCrypto's private memo.
    mutable VerifyMemo memo_;
};

/// Per-node crypto context. All operations charge the node's CostMeter.
class NodeCrypto {
  public:
    NodeId self() const { return self_; }
    CostMeter& meter() { return meter_; }
    const TrustRoot& root() const { return *root_; }

    /// Signs with this node's key. Output is kSignatureSize bytes.
    Bytes sign(BytesView msg);

    /// Verifies `signer`'s signature over msg.
    bool verify(NodeId signer, BytesView msg, BytesView sig);

    /// Batch verification: one dispatch for the whole batch (how real
    /// deployments feed signature batches to worker cores), async cost per
    /// element. Returns per-element validity.
    struct BatchItem {
        NodeId signer;
        Bytes msg;
        BytesView sig;
    };
    std::vector<bool> verify_batch(const std::vector<BatchItem>& items);

    /// Pairwise MAC tag for messages to `peer` (kMacSize bytes).
    Bytes mac_for(NodeId peer, BytesView msg);
    bool check_mac_from(NodeId peer, BytesView msg, BytesView tag);

    /// SHA-256 with cost charging.
    Digest32 hash(BytesView msg);

    /// This node's host-time memo of (signer, digest, sig) verdicts used by
    /// the kReal verify path. Node-private — never shared across threads.
    /// Exposed for instrumentation; callers still charge virtual cost.
    const VerifyMemo& verify_memo() const { return memo_; }

  private:
    friend class TrustRoot;
    NodeCrypto(const TrustRoot* root, NodeId self, EcdsaPrivateKey priv);

    bool verify_cached(NodeId signer, BytesView msg, BytesView sig);
    const SipKey& peer_key(NodeId peer);

    const TrustRoot* root_;
    NodeId self_;
    EcdsaPrivateKey priv_;
    CostMeter meter_;
    // Host-side caches, node-private so parallel partitions never contend:
    // verification verdicts and the pairwise MAC keys this node talks with.
    VerifyMemo memo_;
    std::unordered_map<NodeId, SipKey> peer_keys_;
};

}  // namespace neo::crypto
