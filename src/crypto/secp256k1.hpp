// secp256k1 elliptic-curve arithmetic and ECDSA, implemented from scratch.
//
// This is the signature algorithm the paper's FPGA coprocessor implements for
// the aom-pk variant (§4.4). The generator precompute table below mirrors the
// coprocessor's "pre-computed table in fast block RAM": multiples of the
// generator point are tabulated so a signing operation needs only table
// lookups and point additions, no doublings.
//
// Curve: y² = x³ + 7 over F_p,
//   p = 2²⁵⁶ − 2³² − 977
//   n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace neo::crypto {

/// 256-bit unsigned integer, four little-endian 64-bit limbs.
struct U256 {
    std::array<std::uint64_t, 4> v{0, 0, 0, 0};

    static U256 from_be_bytes(BytesView b32);
    Digest32 to_be_bytes() const;

    bool is_zero() const { return (v[0] | v[1] | v[2] | v[3]) == 0; }
    bool bit(int i) const { return (v[i / 64] >> (i % 64)) & 1; }

    friend bool operator==(const U256&, const U256&) = default;
};

/// -1, 0, +1 three-way compare.
int u256_cmp(const U256& a, const U256& b);

/// out = a + b; returns the carry out of bit 255 (1 = overflowed 2^256).
std::uint64_t u256_add(const U256& a, const U256& b, U256* out);

/// The field prime p (2^256 - 2^32 - 977).
const U256& field_prime_u256();
/// The group order n.
const U256& scalar_order_u256();

/// Field element mod p, always fully reduced.
class Fe {
  public:
    Fe() = default;
    static Fe zero() { return Fe(); }
    static Fe one();
    static Fe from_u64(std::uint64_t x);
    /// Reduces an arbitrary 256-bit value mod p.
    static Fe from_u256(const U256& x);
    /// Parses 32 big-endian bytes; rejects values >= p.
    static std::optional<Fe> from_be_bytes_checked(BytesView b32);

    const U256& raw() const { return n_; }
    Digest32 to_be_bytes() const { return n_.to_be_bytes(); }
    bool is_zero() const { return n_.is_zero(); }

    Fe add(const Fe& o) const;
    Fe sub(const Fe& o) const;
    Fe mul(const Fe& o) const;
    /// Dedicated squaring (reuses the symmetric cross products; ~25% cheaper
    /// than mul(*this), and point doublings are squaring-heavy).
    Fe sqr() const;
    Fe negate() const;
    /// Multiplicative inverse via Fermat (x^(p-2)). Requires non-zero input.
    /// Timing depends only on the fixed exponent, so it stays safe for
    /// values derived from secrets (to_affine on the signing path).
    Fe inverse() const;
    /// Variable-time inverse (binary extended GCD), several times faster
    /// than Fermat. VERIFICATION-SIDE ONLY: the running time depends on the
    /// value, so never call it on secret-derived data.
    Fe inverse_vartime() const;
    Fe pow(const U256& e) const;

    friend bool operator==(const Fe&, const Fe&) = default;

  private:
    U256 n_;
};

/// Batch inversion (Montgomery's trick): one inversion plus 3(count-1)
/// multiplications; every element must be non-zero. The single inversion is
/// variable-time — batch callers (table normalisation, verification) only
/// ever invert public values.
void fe_batch_inverse(Fe* elems, std::size_t count);

/// Scalar mod the group order n, always fully reduced.
class Scalar {
  public:
    Scalar() = default;
    static Scalar zero() { return Scalar(); }
    static Scalar one();
    static Scalar from_u64(std::uint64_t x);
    /// Reduces an arbitrary 256-bit value mod n (used for hashes -> z).
    static Scalar from_u256_reduce(const U256& x);
    static Scalar from_be_bytes_reduce(BytesView b32) {
        return from_u256_reduce(U256::from_be_bytes(b32));
    }
    /// Strict parse: rejects values >= n (signature components).
    static std::optional<Scalar> from_be_bytes_checked(BytesView b32);

    const U256& raw() const { return n_; }
    Digest32 to_be_bytes() const { return n_.to_be_bytes(); }
    bool is_zero() const { return n_.is_zero(); }

    Scalar add(const Scalar& o) const;
    Scalar mul(const Scalar& o) const;
    /// Dedicated squaring (see Fe::sqr).
    Scalar sqr() const;
    Scalar negate() const;
    /// Constant-exponent Fermat inverse — the signing path (nonce inverse)
    /// uses this so its timing never depends on the secret value.
    Scalar inverse() const;
    /// Variable-time inverse (binary extended GCD). VERIFICATION-SIDE ONLY:
    /// s and r are public once a signature is on the wire.
    Scalar inverse_vartime() const;

    friend bool operator==(const Scalar&, const Scalar&) = default;

  private:
    U256 n_;
};

/// Batch scalar inversion (Montgomery's trick, variable-time single
/// inversion): the shared-precomputation step of batch ECDSA verification —
/// all s_i inverted for the cost of one inversion. Every element must be
/// non-zero; verification-side only (signature components are public).
void scalar_batch_inverse(Scalar* elems, std::size_t count);

/// Affine curve point; `infinity` is the group identity.
struct AffinePoint {
    Fe x;
    Fe y;
    bool infinity = true;

    static AffinePoint generator();
    bool on_curve() const;

    /// 64-byte uncompressed x||y (big-endian). Identity is not serialisable.
    Bytes serialize() const;
    /// Parses and validates (on-curve, coordinates < p).
    static std::optional<AffinePoint> parse(BytesView b64);

    friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// k*G via the generator precompute table (the FPGA fast path).
AffinePoint generator_mul(const Scalar& k);
/// k*P via double-and-add.
AffinePoint point_mul(const AffinePoint& p, const Scalar& k);
/// P + Q.
AffinePoint point_add(const AffinePoint& p, const AffinePoint& q);
/// u1*G + u2*Q — the ECDSA verification combination, shares one
/// Jacobian accumulation.
AffinePoint double_mul(const Scalar& u1, const AffinePoint& q, const Scalar& u2);

/// Precomputed width-5 wNAF odd multiples {1,3,...,15}·Q of one public
/// point, batch-normalised to affine. Building one costs a point doubling,
/// seven additions and a batch inversion; reusing it makes every subsequent
/// u1·G + u2·Q drop from ~128 data-dependent additions to ~37 sparse mixed
/// additions. TrustRoot keeps one per provisioned signer (public keys are
/// immutable after setup), and batch verification shares one per signer per
/// batch. Immutable after construction — safe to read concurrently.
class QTable {
  public:
    explicit QTable(const AffinePoint& q);

    const AffinePoint& base() const { return base_; }

    /// u1·G + u2·base() in affine coordinates (one field inversion).
    AffinePoint double_mul(const Scalar& u1, const Scalar& u2) const;

    /// ECDSA residual check without ANY field inversion: computes
    /// P = u1·G + u2·base() in Jacobian coordinates and tests
    /// x(P) ≡ r (mod n) projectively — X == r̃·Z² for r̃ ∈ {r, r+n if < p}.
    /// Equivalent to (!P.infinity && x(P) mod n == r), i.e. exactly the
    /// ecdsa_verify acceptance predicate.
    bool double_mul_check_r(const Scalar& u1, const Scalar& u2, const Scalar& r) const;

  private:
    AffinePoint base_;
    // odd_[i] = (2i+1)·Q.
    std::array<AffinePoint, 8> odd_;
};

struct EcdsaSignature {
    Scalar r;
    Scalar s;

    /// 64-byte r||s (big-endian).
    Bytes serialize() const;
    /// Strict parse: r, s in [1, n-1].
    static std::optional<EcdsaSignature> parse(BytesView b64);

    friend bool operator==(const EcdsaSignature&, const EcdsaSignature&) = default;
};

struct EcdsaPrivateKey {
    Scalar d;
    /// Derives a valid private key from 32 seed bytes (reduced mod n, never zero).
    static EcdsaPrivateKey from_seed(BytesView seed32);
};

struct EcdsaPublicKey {
    AffinePoint q;
    Bytes serialize() const { return q.serialize(); }
    static std::optional<EcdsaPublicKey> parse(BytesView b64);
};

EcdsaPublicKey ecdsa_derive_public(const EcdsaPrivateKey& priv);

/// Deterministic ECDSA signing (RFC-6979-style HMAC-SHA256 nonce derivation).
EcdsaSignature ecdsa_sign(const EcdsaPrivateKey& priv, const Digest32& msg_hash);

bool ecdsa_verify(const EcdsaPublicKey& pub, const Digest32& msg_hash, const EcdsaSignature& sig);

/// Verification against a prebuilt table for the signer's public key —
/// the amortised hot path (identical verdict to ecdsa_verify).
bool ecdsa_verify_with(const QTable& table, const Digest32& msg_hash, const EcdsaSignature& sig);

}  // namespace neo::crypto
