// secp256k1 elliptic-curve arithmetic and ECDSA, implemented from scratch.
//
// This is the signature algorithm the paper's FPGA coprocessor implements for
// the aom-pk variant (§4.4). The generator precompute table below mirrors the
// coprocessor's "pre-computed table in fast block RAM": multiples of the
// generator point are tabulated so a signing operation needs only table
// lookups and point additions, no doublings.
//
// Curve: y² = x³ + 7 over F_p,
//   p = 2²⁵⁶ − 2³² − 977
//   n = FFFFFFFF FFFFFFFF FFFFFFFF FFFFFFFE BAAEDCE6 AF48A03B BFD25E8C D0364141
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"

namespace neo::crypto {

/// 256-bit unsigned integer, four little-endian 64-bit limbs.
struct U256 {
    std::array<std::uint64_t, 4> v{0, 0, 0, 0};

    static U256 from_be_bytes(BytesView b32);
    Digest32 to_be_bytes() const;

    bool is_zero() const { return (v[0] | v[1] | v[2] | v[3]) == 0; }
    bool bit(int i) const { return (v[i / 64] >> (i % 64)) & 1; }

    friend bool operator==(const U256&, const U256&) = default;
};

/// -1, 0, +1 three-way compare.
int u256_cmp(const U256& a, const U256& b);

/// Field element mod p, always fully reduced.
class Fe {
  public:
    Fe() = default;
    static Fe zero() { return Fe(); }
    static Fe one();
    static Fe from_u64(std::uint64_t x);
    /// Reduces an arbitrary 256-bit value mod p.
    static Fe from_u256(const U256& x);
    /// Parses 32 big-endian bytes; rejects values >= p.
    static std::optional<Fe> from_be_bytes_checked(BytesView b32);

    const U256& raw() const { return n_; }
    Digest32 to_be_bytes() const { return n_.to_be_bytes(); }
    bool is_zero() const { return n_.is_zero(); }

    Fe add(const Fe& o) const;
    Fe sub(const Fe& o) const;
    Fe mul(const Fe& o) const;
    Fe sqr() const { return mul(*this); }
    Fe negate() const;
    /// Multiplicative inverse via Fermat (x^(p-2)). Requires non-zero input.
    Fe inverse() const;
    Fe pow(const U256& e) const;

    friend bool operator==(const Fe&, const Fe&) = default;

  private:
    U256 n_;
};

/// Batch inversion (Montgomery's trick); every element must be non-zero.
void fe_batch_inverse(Fe* elems, std::size_t count);

/// Scalar mod the group order n, always fully reduced.
class Scalar {
  public:
    Scalar() = default;
    static Scalar zero() { return Scalar(); }
    static Scalar one();
    static Scalar from_u64(std::uint64_t x);
    /// Reduces an arbitrary 256-bit value mod n (used for hashes -> z).
    static Scalar from_u256_reduce(const U256& x);
    static Scalar from_be_bytes_reduce(BytesView b32) {
        return from_u256_reduce(U256::from_be_bytes(b32));
    }
    /// Strict parse: rejects values >= n (signature components).
    static std::optional<Scalar> from_be_bytes_checked(BytesView b32);

    const U256& raw() const { return n_; }
    Digest32 to_be_bytes() const { return n_.to_be_bytes(); }
    bool is_zero() const { return n_.is_zero(); }

    Scalar add(const Scalar& o) const;
    Scalar mul(const Scalar& o) const;
    Scalar negate() const;
    Scalar inverse() const;

    friend bool operator==(const Scalar&, const Scalar&) = default;

  private:
    U256 n_;
};

/// Affine curve point; `infinity` is the group identity.
struct AffinePoint {
    Fe x;
    Fe y;
    bool infinity = true;

    static AffinePoint generator();
    bool on_curve() const;

    /// 64-byte uncompressed x||y (big-endian). Identity is not serialisable.
    Bytes serialize() const;
    /// Parses and validates (on-curve, coordinates < p).
    static std::optional<AffinePoint> parse(BytesView b64);

    friend bool operator==(const AffinePoint&, const AffinePoint&) = default;
};

/// k*G via the generator precompute table (the FPGA fast path).
AffinePoint generator_mul(const Scalar& k);
/// k*P via double-and-add.
AffinePoint point_mul(const AffinePoint& p, const Scalar& k);
/// P + Q.
AffinePoint point_add(const AffinePoint& p, const AffinePoint& q);
/// u1*G + u2*Q — the ECDSA verification combination, shares one
/// Jacobian accumulation.
AffinePoint double_mul(const Scalar& u1, const AffinePoint& q, const Scalar& u2);

struct EcdsaSignature {
    Scalar r;
    Scalar s;

    /// 64-byte r||s (big-endian).
    Bytes serialize() const;
    /// Strict parse: r, s in [1, n-1].
    static std::optional<EcdsaSignature> parse(BytesView b64);

    friend bool operator==(const EcdsaSignature&, const EcdsaSignature&) = default;
};

struct EcdsaPrivateKey {
    Scalar d;
    /// Derives a valid private key from 32 seed bytes (reduced mod n, never zero).
    static EcdsaPrivateKey from_seed(BytesView seed32);
};

struct EcdsaPublicKey {
    AffinePoint q;
    Bytes serialize() const { return q.serialize(); }
    static std::optional<EcdsaPublicKey> parse(BytesView b64);
};

EcdsaPublicKey ecdsa_derive_public(const EcdsaPrivateKey& priv);

/// Deterministic ECDSA signing (RFC-6979-style HMAC-SHA256 nonce derivation).
EcdsaSignature ecdsa_sign(const EcdsaPrivateKey& priv, const Digest32& msg_hash);

bool ecdsa_verify(const EcdsaPublicKey& pub, const Digest32& msg_hash, const EcdsaSignature& sig);

}  // namespace neo::crypto
