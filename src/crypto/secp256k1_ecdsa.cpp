// ECDSA signing and verification over secp256k1 with deterministic
// (RFC-6979-style) nonce derivation.
#include "common/assert.hpp"
#include "common/codec.hpp"
#include "crypto/hmac_sha256.hpp"
#include "crypto/secp256k1.hpp"

namespace neo::crypto {

namespace {

// Deterministic nonce: HMAC-SHA256(d, msg_hash || counter) reduced mod n.
// Simpler than full RFC 6979 but shares its key properties: deterministic,
// unique per (key, message), and never reveals the key. Documented as a
// deviation in DESIGN.md.
Scalar derive_nonce(const EcdsaPrivateKey& priv, const Digest32& msg_hash, std::uint32_t counter) {
    Digest32 d_bytes = priv.d.to_be_bytes();
    Writer w(40);
    w.raw(BytesView(msg_hash.data(), msg_hash.size()));
    w.u32(counter);
    Digest32 mac = hmac_sha256(BytesView(d_bytes.data(), d_bytes.size()), w.bytes());
    return Scalar::from_be_bytes_reduce(BytesView(mac.data(), mac.size()));
}

Scalar hash_to_scalar(const Digest32& msg_hash) {
    return Scalar::from_be_bytes_reduce(BytesView(msg_hash.data(), msg_hash.size()));
}

}  // namespace

Bytes EcdsaSignature::serialize() const {
    Digest32 rb = r.to_be_bytes();
    Digest32 sb = s.to_be_bytes();
    Bytes out;
    out.reserve(64);
    out.insert(out.end(), rb.begin(), rb.end());
    out.insert(out.end(), sb.begin(), sb.end());
    return out;
}

std::optional<EcdsaSignature> EcdsaSignature::parse(BytesView b64) {
    if (b64.size() != 64) return std::nullopt;
    auto r = Scalar::from_be_bytes_checked(b64.subspan(0, 32));
    auto s = Scalar::from_be_bytes_checked(b64.subspan(32, 32));
    if (!r || !s || r->is_zero() || s->is_zero()) return std::nullopt;
    return EcdsaSignature{*r, *s};
}

EcdsaPrivateKey EcdsaPrivateKey::from_seed(BytesView seed32) {
    NEO_ASSERT(seed32.size() == 32);
    Scalar d = Scalar::from_be_bytes_reduce(seed32);
    if (d.is_zero()) d = Scalar::one();
    return EcdsaPrivateKey{d};
}

std::optional<EcdsaPublicKey> EcdsaPublicKey::parse(BytesView b64) {
    auto p = AffinePoint::parse(b64);
    if (!p) return std::nullopt;
    return EcdsaPublicKey{*p};
}

EcdsaPublicKey ecdsa_derive_public(const EcdsaPrivateKey& priv) {
    NEO_ASSERT(!priv.d.is_zero());
    return EcdsaPublicKey{generator_mul(priv.d)};
}

EcdsaSignature ecdsa_sign(const EcdsaPrivateKey& priv, const Digest32& msg_hash) {
    Scalar z = hash_to_scalar(msg_hash);
    for (std::uint32_t counter = 0;; ++counter) {
        Scalar k = derive_nonce(priv, msg_hash, counter);
        if (k.is_zero()) continue;
        AffinePoint rp = generator_mul(k);
        if (rp.infinity) continue;
        Digest32 rx = rp.x.to_be_bytes();
        Scalar r = Scalar::from_be_bytes_reduce(BytesView(rx.data(), rx.size()));
        if (r.is_zero()) continue;
        Scalar s = k.inverse().mul(z.add(r.mul(priv.d)));
        if (s.is_zero()) continue;
        return EcdsaSignature{r, s};
    }
}

bool ecdsa_verify(const EcdsaPublicKey& pub, const Digest32& msg_hash, const EcdsaSignature& sig) {
    if (pub.q.infinity || !pub.q.on_curve()) return false;
    return ecdsa_verify_with(QTable(pub.q), msg_hash, sig);
}

bool ecdsa_verify_with(const QTable& table, const Digest32& msg_hash, const EcdsaSignature& sig) {
    if (sig.r.is_zero() || sig.s.is_zero()) return false;
    if (table.base().infinity) return false;

    // All inputs are public: variable-time inversion and the projective
    // x-comparison (no inversion at all) are safe here.
    Scalar z = hash_to_scalar(msg_hash);
    Scalar w = sig.s.inverse_vartime();
    Scalar u1 = z.mul(w);
    Scalar u2 = sig.r.mul(w);
    return table.double_mul_check_r(u1, u2, sig.r);
}

}  // namespace neo::crypto
