// U256, field (mod p) and scalar (mod n) arithmetic for secp256k1.
#include <cstring>
#include <vector>

#include "common/assert.hpp"
#include "crypto/secp256k1.hpp"

namespace neo::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// p = 2^256 - kFieldC, little-endian limbs.
constexpr U256 kP{{0xFFFFFFFEFFFFFC2Full, 0xFFFFFFFFFFFFFFFFull,
                   0xFFFFFFFFFFFFFFFFull, 0xFFFFFFFFFFFFFFFFull}};
constexpr u64 kFieldC = 0x1000003D1ull;  // 2^32 + 977

// Group order n and K = 2^256 - n (129 bits, 3 limbs).
constexpr U256 kN{{0xBFD25E8CD0364141ull, 0xBAAEDCE6AF48A03Bull,
                   0xFFFFFFFFFFFFFFFEull, 0xFFFFFFFFFFFFFFFFull}};
constexpr u64 kNK[3] = {0x402DA1732FC9BEBFull, 0x4551231950B75FC4ull, 0x1ull};

// out = a + b over 4 limbs, returns carry.
u64 add4(const u64 a[4], const u64 b[4], u64 out[4]) {
    u128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        u128 cur = (u128)a[i] + b[i] + carry;
        out[i] = (u64)cur;
        carry = cur >> 64;
    }
    return (u64)carry;
}

// out = a - b over 4 limbs, returns borrow (1 if a < b).
u64 sub4(const u64 a[4], const u64 b[4], u64 out[4]) {
    u64 borrow = 0;
    for (int i = 0; i < 4; ++i) {
        u64 bi = b[i];
        u64 t = a[i] - bi;
        u64 borrow_out = (a[i] < bi) ? 1 : 0;
        u64 t2 = t - borrow;
        if (t < borrow) borrow_out = 1;
        out[i] = t2;
        borrow = borrow_out;
    }
    return borrow;
}

// Dedicated 4-limb squaring: the off-diagonal products are symmetric, so
// compute each once and double. ~25% fewer 64x64 multiplies than mul4x4
// with itself — and point doubling (the scalar-mul hot loop) is mostly
// squarings.
void sqr4(const u64 a[4], u64 t[8]) {
    // Off-diagonal sum: sum_{i<j} a[i]*a[j] shifted into place.
    u64 od[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i) {
        u64 carry = 0;
        for (int j = i + 1; j < 4; ++j) {
            u128 cur = (u128)a[i] * a[j] + od[i + j] + carry;
            od[i + j] = (u64)cur;
            carry = (u64)(cur >> 64);
        }
        od[i + 4] = carry;
    }
    // t = 2*od.
    u64 carry = 0;
    for (int i = 0; i < 8; ++i) {
        u64 hi = od[i] >> 63;
        t[i] = (od[i] << 1) | carry;
        carry = hi;
    }
    // t += diagonal squares.
    u128 c = 0;
    for (int i = 0; i < 4; ++i) {
        u128 sq = (u128)a[i] * a[i];
        u128 lo = (u128)t[2 * i] + (u64)sq + (u64)c;
        t[2 * i] = (u64)lo;
        u128 hi = (u128)t[2 * i + 1] + (u64)(sq >> 64) + (u64)(lo >> 64);
        t[2 * i + 1] = (u64)hi;
        c = hi >> 64;
    }
    NEO_ASSERT(c == 0);  // a < 2^256 so a^2 < 2^512: no carry out of t[7]
}

// Schoolbook 4x4 -> 8 limb multiply.
void mul4x4(const u64 a[4], const u64 b[4], u64 t[8]) {
    std::memset(t, 0, 8 * sizeof(u64));
    for (int i = 0; i < 4; ++i) {
        u64 carry = 0;
        for (int j = 0; j < 4; ++j) {
            u128 cur = (u128)a[i] * b[j] + t[i + j] + carry;
            t[i + j] = (u64)cur;
            carry = (u64)(cur >> 64);
        }
        t[i + 4] = carry;
    }
}

// Generic multiprecision multiply: a (na limbs) * b (nb limbs) -> out (na+nb).
void mp_mul(const u64* a, int na, const u64* b, int nb, u64* out) {
    std::memset(out, 0, static_cast<std::size_t>(na + nb) * sizeof(u64));
    for (int i = 0; i < na; ++i) {
        u64 carry = 0;
        for (int j = 0; j < nb; ++j) {
            u128 cur = (u128)a[i] * b[j] + out[i + j] + carry;
            out[i + j] = (u64)cur;
            carry = (u64)(cur >> 64);
        }
        out[i + nb] = carry;
    }
}

// a += b where a has na limbs, b has nb limbs (nb <= na). Returns carry.
u64 mp_add_into(u64* a, int na, const u64* b, int nb) {
    u128 carry = 0;
    for (int i = 0; i < na; ++i) {
        u128 cur = (u128)a[i] + (i < nb ? b[i] : 0) + carry;
        a[i] = (u64)cur;
        carry = cur >> 64;
    }
    return (u64)carry;
}

// x >>= 1 over 4 limbs, shifting `top` into bit 255.
void shr1(u64 x[4], u64 top) {
    for (int i = 0; i < 3; ++i) x[i] = (x[i] >> 1) | (x[i + 1] << 63);
    x[3] = (x[3] >> 1) | (top << 63);
}

// Variable-time modular inverse (binary extended GCD) for an ODD modulus m;
// requires gcd(x, m) == 1 and 0 < x < m. Several times faster than the
// Fermat ladder but with value-dependent timing — verification-side only.
U256 mod_inverse_vartime(const U256& x, const U256& m) {
    u64 u[4], v[4], x1[4] = {1, 0, 0, 0}, x2[4] = {0, 0, 0, 0};
    std::memcpy(u, x.v.data(), sizeof(u));
    std::memcpy(v, m.v.data(), sizeof(v));

    auto is_one = [](const u64 a[4]) { return a[0] == 1 && (a[1] | a[2] | a[3]) == 0; };
    auto cmp = [](const u64 a[4], const u64 b[4]) {
        for (int i = 3; i >= 0; --i) {
            if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
        }
        return 0;
    };
    // a = (a is even ? a : a + m) / 2  (mod-preserving halving; m is odd so
    // exactly one of a, a+m is even).
    auto half_mod = [&m](u64 a[4]) {
        u64 top = 0;
        if (a[0] & 1) top = add4(a, m.v.data(), a);
        shr1(a, top);
    };
    // a = a - b mod m (a, b < m).
    auto sub_mod = [&m](u64 a[4], const u64 b[4]) {
        if (sub4(a, b, a)) add4(a, m.v.data(), a);
    };

    while (!is_one(u) && !is_one(v)) {
        while ((u[0] & 1) == 0) {
            shr1(u, 0);
            half_mod(x1);
        }
        while ((v[0] & 1) == 0) {
            shr1(v, 0);
            half_mod(x2);
        }
        if (cmp(u, v) >= 0) {
            sub4(u, v, u);
            sub_mod(x1, x2);
        } else {
            sub4(v, u, v);
            sub_mod(x2, x1);
        }
    }

    U256 out;
    std::memcpy(out.v.data(), is_one(u) ? x1 : x2, sizeof(x1));
    return out;
}

// Reduce a 256-bit value that may be >= p (but < 2*p after ops) by
// conditional subtraction.
void field_normalize(U256& x) {
    while (u256_cmp(x, kP) >= 0) {
        u64 out[4];
        sub4(x.v.data(), kP.v.data(), out);
        std::memcpy(x.v.data(), out, sizeof(out));
    }
}

// Reduce an 8-limb product mod p using 2^256 ≡ kFieldC.
U256 field_reduce_wide(const u64 t[8]) {
    // r = lo + hi * C   (5 limbs)
    u64 r[5];
    std::memcpy(r, t, 4 * sizeof(u64));
    r[4] = 0;
    u64 carry = 0;
    for (int i = 0; i < 4; ++i) {
        u128 cur = (u128)t[4 + i] * kFieldC + r[i] + carry;
        r[i] = (u64)cur;
        carry = (u64)(cur >> 64);
    }
    r[4] = carry;

    // Fold r[4] (<= ~2^33): r' = r[0..3] + r[4] * C.
    u128 cur = (u128)r[4] * kFieldC + r[0];
    r[0] = (u64)cur;
    carry = (u64)(cur >> 64);
    for (int i = 1; i < 4; ++i) {
        u128 c2 = (u128)r[i] + carry;
        r[i] = (u64)c2;
        carry = (u64)(c2 >> 64);
    }
    // A final carry means the value wrapped 2^256 once more; 2^256 ≡ C.
    while (carry) {
        u128 c3 = (u128)r[0] + kFieldC;
        r[0] = (u64)c3;
        carry = (u64)(c3 >> 64);
        for (int i = 1; i < 4 && carry; ++i) {
            u128 c4 = (u128)r[i] + carry;
            r[i] = (u64)c4;
            carry = (u64)(c4 >> 64);
        }
    }

    U256 out;
    std::memcpy(out.v.data(), r, 4 * sizeof(u64));
    field_normalize(out);
    return out;
}

void scalar_normalize(U256& x) {
    while (u256_cmp(x, kN) >= 0) {
        u64 out[4];
        sub4(x.v.data(), kN.v.data(), out);
        std::memcpy(x.v.data(), out, sizeof(out));
    }
}

// Reduce an 8-limb value mod n using 2^256 ≡ K (3 limbs).
U256 scalar_reduce_wide(const u64 t_in[8]) {
    u64 t[12];
    std::memcpy(t, t_in, 8 * sizeof(u64));
    std::memset(t + 8, 0, 4 * sizeof(u64));

    // Repeatedly fold the limbs above 4 down: value = lo + hi * K. Each fold
    // shrinks the value by ~127 bits; 6 rounds always suffice for a 512-bit
    // input (the last possible round handles a single wrap past 2^256).
    for (int round = 0; round < 6; ++round) {
        bool high_nonzero = false;
        for (int i = 4; i < 12; ++i) high_nonzero = high_nonzero || (t[i] != 0);
        if (!high_nonzero) break;
        NEO_ASSERT_MSG(round < 5, "scalar wide reduction did not converge");

        u64 hi[8];
        std::memcpy(hi, t + 4, 8 * sizeof(u64));
        u64 prod[11];  // 8 + 3 limbs
        mp_mul(hi, 8, kNK, 3, prod);

        u64 next[12];
        std::memcpy(next, t, 4 * sizeof(u64));
        std::memset(next + 4, 0, 8 * sizeof(u64));
        u64 carry = mp_add_into(next, 12, prod, 11);
        NEO_ASSERT(carry == 0);
        std::memcpy(t, next, sizeof(next));
    }

    U256 out;
    std::memcpy(out.v.data(), t, 4 * sizeof(u64));
    scalar_normalize(out);
    return out;
}

}  // namespace

// ---------- U256 ----------

U256 U256::from_be_bytes(BytesView b32) {
    NEO_ASSERT(b32.size() == 32);
    U256 out;
    for (int limb = 0; limb < 4; ++limb) {
        u64 v = 0;
        for (int i = 0; i < 8; ++i) {
            v = (v << 8) | b32[static_cast<std::size_t>((3 - limb) * 8 + i)];
        }
        out.v[static_cast<std::size_t>(limb)] = v;
    }
    return out;
}

Digest32 U256::to_be_bytes() const {
    Digest32 out;
    for (int limb = 0; limb < 4; ++limb) {
        u64 val = v[static_cast<std::size_t>(limb)];
        for (int i = 0; i < 8; ++i) {
            out[static_cast<std::size_t>((3 - limb) * 8 + (7 - i))] =
                static_cast<std::uint8_t>(val >> (8 * i));
        }
    }
    return out;
}

std::uint64_t u256_add(const U256& a, const U256& b, U256* out) {
    return add4(a.v.data(), b.v.data(), out->v.data());
}

const U256& field_prime_u256() { return kP; }
const U256& scalar_order_u256() { return kN; }

int u256_cmp(const U256& a, const U256& b) {
    for (int i = 3; i >= 0; --i) {
        if (a.v[static_cast<std::size_t>(i)] < b.v[static_cast<std::size_t>(i)]) return -1;
        if (a.v[static_cast<std::size_t>(i)] > b.v[static_cast<std::size_t>(i)]) return 1;
    }
    return 0;
}

// ---------- Fe ----------

Fe Fe::one() { return from_u64(1); }

Fe Fe::from_u64(std::uint64_t x) {
    Fe f;
    f.n_.v[0] = x;
    return f;
}

Fe Fe::from_u256(const U256& x) {
    Fe f;
    f.n_ = x;
    field_normalize(f.n_);
    return f;
}

std::optional<Fe> Fe::from_be_bytes_checked(BytesView b32) {
    if (b32.size() != 32) return std::nullopt;
    U256 x = U256::from_be_bytes(b32);
    if (u256_cmp(x, kP) >= 0) return std::nullopt;
    Fe f;
    f.n_ = x;
    return f;
}

Fe Fe::add(const Fe& o) const {
    Fe out;
    u64 carry = add4(n_.v.data(), o.n_.v.data(), out.n_.v.data());
    if (carry) {
        // value = 2^256 + r ≡ r + C (mod p)
        u64 c[4] = {kFieldC, 0, 0, 0};
        u64 carry2 = add4(out.n_.v.data(), c, out.n_.v.data());
        NEO_ASSERT(carry2 == 0);
    }
    field_normalize(out.n_);
    return out;
}

Fe Fe::sub(const Fe& o) const {
    Fe out;
    u64 borrow = sub4(n_.v.data(), o.n_.v.data(), out.n_.v.data());
    if (borrow) {
        u64 carry = add4(out.n_.v.data(), kP.v.data(), out.n_.v.data());
        (void)carry;  // wraps back into range
    }
    return out;
}

Fe Fe::mul(const Fe& o) const {
    u64 t[8];
    mul4x4(n_.v.data(), o.n_.v.data(), t);
    Fe out;
    out.n_ = field_reduce_wide(t);
    return out;
}

Fe Fe::sqr() const {
    u64 t[8];
    sqr4(n_.v.data(), t);
    Fe out;
    out.n_ = field_reduce_wide(t);
    return out;
}

Fe Fe::negate() const {
    if (is_zero()) return *this;
    Fe out;
    u64 borrow = sub4(kP.v.data(), n_.v.data(), out.n_.v.data());
    NEO_ASSERT(borrow == 0);
    return out;
}

Fe Fe::pow(const U256& e) const {
    Fe result = Fe::one();
    for (int i = 255; i >= 0; --i) {
        result = result.sqr();
        if (e.bit(i)) result = result.mul(*this);
    }
    return result;
}

Fe Fe::inverse() const {
    NEO_ASSERT_MSG(!is_zero(), "field inverse of zero");
    // p - 2
    U256 e = kP;
    e.v[0] -= 2;  // p's low limb is odd and > 2; no borrow
    return pow(e);
}

Fe Fe::inverse_vartime() const {
    NEO_ASSERT_MSG(!is_zero(), "field inverse of zero");
    Fe out;
    out.n_ = mod_inverse_vartime(n_, kP);
    return out;
}

void fe_batch_inverse(Fe* elems, std::size_t count) {
    if (count == 0) return;
    // Montgomery's trick: one inversion + 3(count-1) multiplications.
    std::vector<Fe> prefix(count);
    prefix[0] = elems[0];
    for (std::size_t i = 1; i < count; ++i) prefix[i] = prefix[i - 1].mul(elems[i]);

    Fe inv = prefix[count - 1].inverse_vartime();
    for (std::size_t i = count; i-- > 1;) {
        Fe orig = elems[i];
        elems[i] = inv.mul(prefix[i - 1]);
        inv = inv.mul(orig);
    }
    elems[0] = inv;
}

// ---------- Scalar ----------

Scalar Scalar::one() { return from_u64(1); }

Scalar Scalar::from_u64(std::uint64_t x) {
    Scalar s;
    s.n_.v[0] = x;
    return s;
}

Scalar Scalar::from_u256_reduce(const U256& x) {
    Scalar s;
    s.n_ = x;
    scalar_normalize(s.n_);
    return s;
}

std::optional<Scalar> Scalar::from_be_bytes_checked(BytesView b32) {
    if (b32.size() != 32) return std::nullopt;
    U256 x = U256::from_be_bytes(b32);
    if (u256_cmp(x, kN) >= 0) return std::nullopt;
    Scalar s;
    s.n_ = x;
    return s;
}

Scalar Scalar::add(const Scalar& o) const {
    Scalar out;
    u64 carry = add4(n_.v.data(), o.n_.v.data(), out.n_.v.data());
    if (carry) {
        // value = 2^256 + r ≡ r + K (mod n)
        u64 k4[4] = {kNK[0], kNK[1], kNK[2], 0};
        u64 carry2 = add4(out.n_.v.data(), k4, out.n_.v.data());
        NEO_ASSERT(carry2 == 0);
    }
    scalar_normalize(out.n_);
    return out;
}

Scalar Scalar::mul(const Scalar& o) const {
    u64 t[8];
    mul4x4(n_.v.data(), o.n_.v.data(), t);
    Scalar out;
    out.n_ = scalar_reduce_wide(t);
    return out;
}

Scalar Scalar::sqr() const {
    u64 t[8];
    sqr4(n_.v.data(), t);
    Scalar out;
    out.n_ = scalar_reduce_wide(t);
    return out;
}

Scalar Scalar::negate() const {
    if (is_zero()) return *this;
    Scalar out;
    u64 borrow = sub4(kN.v.data(), n_.v.data(), out.n_.v.data());
    NEO_ASSERT(borrow == 0);
    return out;
}

Scalar Scalar::inverse() const {
    NEO_ASSERT_MSG(!is_zero(), "scalar inverse of zero");
    // Fermat: x^(n-2) mod n.
    U256 e = kN;
    e.v[0] -= 2;
    Scalar result = Scalar::one();
    for (int i = 255; i >= 0; --i) {
        result = result.sqr();
        if (e.bit(i)) result = result.mul(*this);
    }
    return result;
}

Scalar Scalar::inverse_vartime() const {
    NEO_ASSERT_MSG(!is_zero(), "scalar inverse of zero");
    Scalar out;
    out.n_ = mod_inverse_vartime(n_, kN);
    return out;
}

void scalar_batch_inverse(Scalar* elems, std::size_t count) {
    if (count == 0) return;
    std::vector<Scalar> prefix(count);
    prefix[0] = elems[0];
    for (std::size_t i = 1; i < count; ++i) prefix[i] = prefix[i - 1].mul(elems[i]);

    Scalar inv = prefix[count - 1].inverse_vartime();
    for (std::size_t i = count; i-- > 1;) {
        Scalar orig = elems[i];
        elems[i] = inv.mul(prefix[i - 1]);
        inv = inv.mul(orig);
    }
    elems[0] = inv;
}

}  // namespace neo::crypto
