// secp256k1 group arithmetic: Jacobian point operations, the generator
// precompute table (mirroring the paper's FPGA coprocessor design, §4.4),
// and scalar multiplication.
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "common/hex.hpp"
#include "crypto/secp256k1.hpp"

namespace neo::crypto {

namespace {

// Jacobian coordinates (X, Y, Z): affine = (X/Z², Y/Z³); Z == 0 is identity.
struct Jac {
    Fe x;
    Fe y;
    Fe z;  // zero => infinity

    bool infinity() const { return z.is_zero(); }
    static Jac identity() { return Jac{Fe::zero(), Fe::one(), Fe::zero()}; }
};

Jac to_jac(const AffinePoint& p) {
    if (p.infinity) return Jac::identity();
    return Jac{p.x, p.y, Fe::one()};
}

// dbl-2007-bl for a = 0.
Jac jac_double(const Jac& p) {
    if (p.infinity() || p.y.is_zero()) return Jac::identity();
    Fe a = p.x.sqr();
    Fe b = p.y.sqr();
    Fe c = b.sqr();
    Fe xb = p.x.add(b);
    Fe d = xb.sqr().sub(a).sub(c);
    d = d.add(d);  // 2*((x+b)^2 - a - c)
    Fe e = a.add(a).add(a);
    Fe f = e.sqr();
    Fe x3 = f.sub(d).sub(d);
    Fe c8 = c.add(c);
    c8 = c8.add(c8);
    c8 = c8.add(c8);
    Fe y3 = e.mul(d.sub(x3)).sub(c8);
    Fe z3 = p.y.mul(p.z);
    z3 = z3.add(z3);
    return Jac{x3, y3, z3};
}

// Textbook general Jacobian addition.
Jac jac_add(const Jac& p, const Jac& q) {
    if (p.infinity()) return q;
    if (q.infinity()) return p;

    Fe z1z1 = p.z.sqr();
    Fe z2z2 = q.z.sqr();
    Fe u1 = p.x.mul(z2z2);
    Fe u2 = q.x.mul(z1z1);
    Fe s1 = p.y.mul(q.z).mul(z2z2);
    Fe s2 = q.y.mul(p.z).mul(z1z1);

    if (u1 == u2) {
        if (s1 == s2) return jac_double(p);
        return Jac::identity();  // P + (-P)
    }

    Fe h = u2.sub(u1);
    Fe r = s2.sub(s1);
    Fe h2 = h.sqr();
    Fe h3 = h.mul(h2);
    Fe u1h2 = u1.mul(h2);
    Fe x3 = r.sqr().sub(h3).sub(u1h2).sub(u1h2);
    Fe y3 = r.mul(u1h2.sub(x3)).sub(s1.mul(h3));
    Fe z3 = p.z.mul(q.z).mul(h);
    return Jac{x3, y3, z3};
}

// Mixed addition with an affine point (Z2 = 1) — the table fast path.
Jac jac_add_affine(const Jac& p, const AffinePoint& q) {
    if (q.infinity) return p;
    if (p.infinity()) return to_jac(q);

    Fe z1z1 = p.z.sqr();
    Fe u2 = q.x.mul(z1z1);
    Fe s2 = q.y.mul(p.z).mul(z1z1);

    if (p.x == u2) {
        if (p.y == s2) return jac_double(p);
        return Jac::identity();
    }

    Fe h = u2.sub(p.x);
    Fe r = s2.sub(p.y);
    Fe h2 = h.sqr();
    Fe h3 = h.mul(h2);
    Fe u1h2 = p.x.mul(h2);
    Fe x3 = r.sqr().sub(h3).sub(u1h2).sub(u1h2);
    Fe y3 = r.mul(u1h2.sub(x3)).sub(p.y.mul(h3));
    Fe z3 = p.z.mul(h);
    return Jac{x3, y3, z3};
}

AffinePoint to_affine(const Jac& p) {
    if (p.infinity()) return AffinePoint{};
    Fe zinv = p.z.inverse();
    Fe zinv2 = zinv.sqr();
    AffinePoint out;
    out.x = p.x.mul(zinv2);
    out.y = p.y.mul(zinv2).mul(zinv);
    out.infinity = false;
    return out;
}

// Generator precompute table: kTable[w][d-1] = d * 16^w * G in affine, for
// w in [0, 64), d in [1, 16). A scalar multiplication of G is then the sum
// of at most 64 table entries — additions only, no doublings. This is the
// software twin of the FPGA "pre-computed stock" of generator multiples.
struct GenTable {
    AffinePoint entries[64][15];
};

const GenTable& gen_table() {
    static const GenTable* table = [] {
        auto* t = new GenTable();
        std::vector<Jac> jac_entries;
        jac_entries.reserve(64 * 15);

        Jac window_base = to_jac(AffinePoint::generator());
        for (int w = 0; w < 64; ++w) {
            Jac cur = window_base;
            for (int d = 1; d <= 15; ++d) {
                jac_entries.push_back(cur);
                if (d < 15) cur = jac_add(cur, window_base);
            }
            // Advance to 16^(w+1) * G = cur + base (cur is 15*16^w*G).
            window_base = jac_add(cur, window_base);
        }

        // Batch-convert to affine with a single field inversion.
        std::vector<Fe> zs(jac_entries.size());
        for (std::size_t i = 0; i < jac_entries.size(); ++i) zs[i] = jac_entries[i].z;
        fe_batch_inverse(zs.data(), zs.size());
        for (std::size_t i = 0; i < jac_entries.size(); ++i) {
            Fe zinv2 = zs[i].sqr();
            AffinePoint a;
            a.x = jac_entries[i].x.mul(zinv2);
            a.y = jac_entries[i].y.mul(zinv2).mul(zs[i]);
            a.infinity = false;
            t->entries[i / 15][i % 15] = a;
        }
        return t;
    }();
    return *table;
}

Jac gen_mul_jac(const Scalar& k) {
    const GenTable& table = gen_table();
    Jac acc = Jac::identity();
    for (int w = 0; w < 64; ++w) {
        unsigned digit = static_cast<unsigned>(
            (k.raw().v[static_cast<std::size_t>(w / 16)] >> (4 * (w % 16))) & 0xf);
        if (digit != 0) acc = jac_add_affine(acc, table.entries[w][digit - 1]);
    }
    return acc;
}

Jac point_mul_jac(const AffinePoint& p, const Scalar& k) {
    Jac acc = Jac::identity();
    for (int i = 255; i >= 0; --i) {
        acc = jac_double(acc);
        if (k.raw().bit(i)) acc = jac_add_affine(acc, p);
    }
    return acc;
}

}  // namespace

AffinePoint AffinePoint::generator() {
    static const AffinePoint g = [] {
        AffinePoint p;
        p.x = *Fe::from_be_bytes_checked(
            from_hex_strict("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"));
        p.y = *Fe::from_be_bytes_checked(
            from_hex_strict("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"));
        p.infinity = false;
        return p;
    }();
    return g;
}

bool AffinePoint::on_curve() const {
    if (infinity) return true;
    Fe lhs = y.sqr();
    Fe rhs = x.sqr().mul(x).add(Fe::from_u64(7));
    return lhs == rhs;
}

Bytes AffinePoint::serialize() const {
    NEO_ASSERT_MSG(!infinity, "cannot serialize the identity point");
    Digest32 xb = x.to_be_bytes();
    Digest32 yb = y.to_be_bytes();
    Bytes out;
    out.reserve(64);
    out.insert(out.end(), xb.begin(), xb.end());
    out.insert(out.end(), yb.begin(), yb.end());
    return out;
}

std::optional<AffinePoint> AffinePoint::parse(BytesView b64) {
    if (b64.size() != 64) return std::nullopt;
    auto x = Fe::from_be_bytes_checked(b64.subspan(0, 32));
    auto y = Fe::from_be_bytes_checked(b64.subspan(32, 32));
    if (!x || !y) return std::nullopt;
    AffinePoint p{*x, *y, false};
    if (!p.on_curve()) return std::nullopt;
    return p;
}

AffinePoint generator_mul(const Scalar& k) { return to_affine(gen_mul_jac(k)); }

AffinePoint point_mul(const AffinePoint& p, const Scalar& k) {
    return to_affine(point_mul_jac(p, k));
}

AffinePoint point_add(const AffinePoint& p, const AffinePoint& q) {
    return to_affine(jac_add(to_jac(p), to_jac(q)));
}

AffinePoint double_mul(const Scalar& u1, const AffinePoint& q, const Scalar& u2) {
    Jac acc = gen_mul_jac(u1);
    acc = jac_add(acc, point_mul_jac(q, u2));
    return to_affine(acc);
}

}  // namespace neo::crypto
