// secp256k1 group arithmetic: Jacobian point operations, the generator
// precompute table (mirroring the paper's FPGA coprocessor design, §4.4),
// and scalar multiplication.
#include <mutex>
#include <vector>

#include "common/assert.hpp"
#include "common/hex.hpp"
#include "crypto/secp256k1.hpp"

namespace neo::crypto {

namespace {

// Jacobian coordinates (X, Y, Z): affine = (X/Z², Y/Z³); Z == 0 is identity.
struct Jac {
    Fe x;
    Fe y;
    Fe z;  // zero => infinity

    bool infinity() const { return z.is_zero(); }
    static Jac identity() { return Jac{Fe::zero(), Fe::one(), Fe::zero()}; }
};

Jac to_jac(const AffinePoint& p) {
    if (p.infinity) return Jac::identity();
    return Jac{p.x, p.y, Fe::one()};
}

// dbl-2007-bl for a = 0.
Jac jac_double(const Jac& p) {
    if (p.infinity() || p.y.is_zero()) return Jac::identity();
    Fe a = p.x.sqr();
    Fe b = p.y.sqr();
    Fe c = b.sqr();
    Fe xb = p.x.add(b);
    Fe d = xb.sqr().sub(a).sub(c);
    d = d.add(d);  // 2*((x+b)^2 - a - c)
    Fe e = a.add(a).add(a);
    Fe f = e.sqr();
    Fe x3 = f.sub(d).sub(d);
    Fe c8 = c.add(c);
    c8 = c8.add(c8);
    c8 = c8.add(c8);
    Fe y3 = e.mul(d.sub(x3)).sub(c8);
    Fe z3 = p.y.mul(p.z);
    z3 = z3.add(z3);
    return Jac{x3, y3, z3};
}

// Textbook general Jacobian addition.
Jac jac_add(const Jac& p, const Jac& q) {
    if (p.infinity()) return q;
    if (q.infinity()) return p;

    Fe z1z1 = p.z.sqr();
    Fe z2z2 = q.z.sqr();
    Fe u1 = p.x.mul(z2z2);
    Fe u2 = q.x.mul(z1z1);
    Fe s1 = p.y.mul(q.z).mul(z2z2);
    Fe s2 = q.y.mul(p.z).mul(z1z1);

    if (u1 == u2) {
        if (s1 == s2) return jac_double(p);
        return Jac::identity();  // P + (-P)
    }

    Fe h = u2.sub(u1);
    Fe r = s2.sub(s1);
    Fe h2 = h.sqr();
    Fe h3 = h.mul(h2);
    Fe u1h2 = u1.mul(h2);
    Fe x3 = r.sqr().sub(h3).sub(u1h2).sub(u1h2);
    Fe y3 = r.mul(u1h2.sub(x3)).sub(s1.mul(h3));
    Fe z3 = p.z.mul(q.z).mul(h);
    return Jac{x3, y3, z3};
}

// Mixed addition with an affine point (Z2 = 1) — the table fast path.
Jac jac_add_affine(const Jac& p, const AffinePoint& q) {
    if (q.infinity) return p;
    if (p.infinity()) return to_jac(q);

    Fe z1z1 = p.z.sqr();
    Fe u2 = q.x.mul(z1z1);
    Fe s2 = q.y.mul(p.z).mul(z1z1);

    if (p.x == u2) {
        if (p.y == s2) return jac_double(p);
        return Jac::identity();
    }

    Fe h = u2.sub(p.x);
    Fe r = s2.sub(p.y);
    Fe h2 = h.sqr();
    Fe h3 = h.mul(h2);
    Fe u1h2 = p.x.mul(h2);
    Fe x3 = r.sqr().sub(h3).sub(u1h2).sub(u1h2);
    Fe y3 = r.mul(u1h2.sub(x3)).sub(p.y.mul(h3));
    Fe z3 = p.z.mul(h);
    return Jac{x3, y3, z3};
}

AffinePoint to_affine(const Jac& p) {
    if (p.infinity()) return AffinePoint{};
    Fe zinv = p.z.inverse();
    Fe zinv2 = zinv.sqr();
    AffinePoint out;
    out.x = p.x.mul(zinv2);
    out.y = p.y.mul(zinv2).mul(zinv);
    out.infinity = false;
    return out;
}

// Generator precompute table: kTable[w][d-1] = d * 256^w * G in affine, for
// w in [0, 32), d in [1, 256). A scalar multiplication of G is then the sum
// of at most 32 table entries — additions only, no doublings. This is the
// software twin of the FPGA "pre-computed stock" of generator multiples
// (8-bit windows, ~590 KB: half the additions of the earlier 4-bit comb for
// a table that still fits comfortably in memory).
struct GenTable {
    AffinePoint entries[32][255];
};

const GenTable& gen_table() {
    static const GenTable* table = [] {
        auto* t = new GenTable();
        std::vector<Jac> jac_entries;
        jac_entries.reserve(32 * 255);

        Jac window_base = to_jac(AffinePoint::generator());
        for (int w = 0; w < 32; ++w) {
            Jac cur = window_base;
            for (int d = 1; d <= 255; ++d) {
                jac_entries.push_back(cur);
                if (d < 255) cur = jac_add(cur, window_base);
            }
            // Advance to 256^(w+1) * G = cur + base (cur is 255*256^w*G).
            window_base = jac_add(cur, window_base);
        }

        // Batch-convert to affine with a single field inversion.
        std::vector<Fe> zs(jac_entries.size());
        for (std::size_t i = 0; i < jac_entries.size(); ++i) zs[i] = jac_entries[i].z;
        fe_batch_inverse(zs.data(), zs.size());
        for (std::size_t i = 0; i < jac_entries.size(); ++i) {
            Fe zinv2 = zs[i].sqr();
            AffinePoint a;
            a.x = jac_entries[i].x.mul(zinv2);
            a.y = jac_entries[i].y.mul(zinv2).mul(zs[i]);
            a.infinity = false;
            t->entries[i / 255][i % 255] = a;
        }
        return t;
    }();
    return *table;
}

Jac gen_mul_jac(const Scalar& k) {
    const GenTable& table = gen_table();
    Jac acc = Jac::identity();
    for (int w = 0; w < 32; ++w) {
        unsigned digit = static_cast<unsigned>(
            (k.raw().v[static_cast<std::size_t>(w / 8)] >> (8 * (w % 8))) & 0xff);
        if (digit != 0) acc = jac_add_affine(acc, table.entries[w][digit - 1]);
    }
    return acc;
}

Jac point_mul_jac(const AffinePoint& p, const Scalar& k) {
    Jac acc = Jac::identity();
    for (int i = 255; i >= 0; --i) {
        acc = jac_double(acc);
        if (k.raw().bit(i)) acc = jac_add_affine(acc, p);
    }
    return acc;
}

// Width-5 wNAF recoding: digits are 0 or odd in [-15, 15]; at most one
// nonzero digit in any 5 consecutive positions (average density 1/6).
// Returns the digit count (<= 257).
int wnaf5(const Scalar& s, std::int8_t digits[257]) {
    // 5 limbs: the "k -= d" step with d < 0 adds up to 15, which can carry
    // past 2^256 for scalars near the top of the range.
    std::uint64_t k[5] = {s.raw().v[0], s.raw().v[1], s.raw().v[2], s.raw().v[3], 0};
    auto is_zero = [&] { return (k[0] | k[1] | k[2] | k[3] | k[4]) == 0; };
    auto shr1_5 = [&] {
        for (int i = 0; i < 4; ++i) k[i] = (k[i] >> 1) | (k[i + 1] << 63);
        k[4] >>= 1;
    };
    int len = 0;
    while (!is_zero()) {
        std::int8_t d = 0;
        if (k[0] & 1) {
            int m = static_cast<int>(k[0] & 31);  // k mod 32
            d = static_cast<std::int8_t>(m > 16 ? m - 32 : m);
            if (d >= 0) {
                k[0] -= static_cast<std::uint64_t>(d);  // k odd, d <= k: no borrow past limb 0?
                // d <= 15 and k odd >= 1; if k < d the scalar would already
                // have fit in 5 bits and m == k, so d == k. Borrow-free.
            } else {
                std::uint64_t add = static_cast<std::uint64_t>(-d);
                std::uint64_t carry = __builtin_add_overflow(k[0], add, &k[0]) ? 1u : 0u;
                for (int i = 1; i < 5 && carry; ++i) {
                    carry = __builtin_add_overflow(k[i], carry, &k[i]) ? 1u : 0u;
                }
            }
        }
        digits[len++] = d;
        shr1_5();
    }
    return len;
}

AffinePoint affine_negate(const AffinePoint& p) {
    if (p.infinity) return p;
    return AffinePoint{p.x, p.y.negate(), false};
}

}  // namespace

AffinePoint AffinePoint::generator() {
    static const AffinePoint g = [] {
        AffinePoint p;
        p.x = *Fe::from_be_bytes_checked(
            from_hex_strict("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"));
        p.y = *Fe::from_be_bytes_checked(
            from_hex_strict("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8"));
        p.infinity = false;
        return p;
    }();
    return g;
}

bool AffinePoint::on_curve() const {
    if (infinity) return true;
    Fe lhs = y.sqr();
    Fe rhs = x.sqr().mul(x).add(Fe::from_u64(7));
    return lhs == rhs;
}

Bytes AffinePoint::serialize() const {
    NEO_ASSERT_MSG(!infinity, "cannot serialize the identity point");
    Digest32 xb = x.to_be_bytes();
    Digest32 yb = y.to_be_bytes();
    Bytes out;
    out.reserve(64);
    out.insert(out.end(), xb.begin(), xb.end());
    out.insert(out.end(), yb.begin(), yb.end());
    return out;
}

std::optional<AffinePoint> AffinePoint::parse(BytesView b64) {
    if (b64.size() != 64) return std::nullopt;
    auto x = Fe::from_be_bytes_checked(b64.subspan(0, 32));
    auto y = Fe::from_be_bytes_checked(b64.subspan(32, 32));
    if (!x || !y) return std::nullopt;
    AffinePoint p{*x, *y, false};
    if (!p.on_curve()) return std::nullopt;
    return p;
}

AffinePoint generator_mul(const Scalar& k) { return to_affine(gen_mul_jac(k)); }

AffinePoint point_mul(const AffinePoint& p, const Scalar& k) {
    return to_affine(point_mul_jac(p, k));
}

AffinePoint point_add(const AffinePoint& p, const AffinePoint& q) {
    return to_affine(jac_add(to_jac(p), to_jac(q)));
}

AffinePoint double_mul(const Scalar& u1, const AffinePoint& q, const Scalar& u2) {
    Jac acc = gen_mul_jac(u1);
    acc = jac_add(acc, point_mul_jac(q, u2));
    return to_affine(acc);
}

// ----------------------------------------------------------------- QTable

QTable::QTable(const AffinePoint& q) : base_(q) {
    if (q.infinity) {
        for (auto& e : odd_) e = AffinePoint{};  // all identity; adds skip
        return;
    }
    // odd_[i] = (2i+1)·Q via repeated addition of 2Q, then one batch
    // normalisation. n is prime and > 15, so no odd multiple of a
    // non-identity point can be the identity.
    Jac q2 = jac_double(to_jac(q));
    std::array<Jac, 8> jacs;
    jacs[0] = to_jac(q);
    for (std::size_t i = 1; i < jacs.size(); ++i) jacs[i] = jac_add(jacs[i - 1], q2);

    std::array<Fe, 8> zs;
    for (std::size_t i = 0; i < jacs.size(); ++i) zs[i] = jacs[i].z;
    fe_batch_inverse(zs.data(), zs.size());
    for (std::size_t i = 0; i < jacs.size(); ++i) {
        Fe zinv2 = zs[i].sqr();
        odd_[i].x = jacs[i].x.mul(zinv2);
        odd_[i].y = jacs[i].y.mul(zinv2).mul(zs[i]);
        odd_[i].infinity = false;
    }
}

namespace {

// Shared accumulation for QTable's two entry points: u1·G + u2·Q in
// Jacobian coordinates, Q-side via wNAF-5 over the precomputed odd
// multiples, G-side via the window comb (additions only, appended after the
// doubling loop so doublings are paid once for the 256-bit length).
Jac qtable_double_mul_jac(const std::array<AffinePoint, 8>& odd, const Scalar& u1,
                          const Scalar& u2) {
    std::int8_t digits[257];
    int len = wnaf5(u2, digits);
    Jac acc = Jac::identity();
    for (int i = len - 1; i >= 0; --i) {
        acc = jac_double(acc);
        std::int8_t d = digits[i];
        if (d > 0) {
            acc = jac_add_affine(acc, odd[static_cast<std::size_t>((d - 1) / 2)]);
        } else if (d < 0) {
            acc = jac_add_affine(acc, affine_negate(odd[static_cast<std::size_t>((-d - 1) / 2)]));
        }
    }
    return jac_add(acc, gen_mul_jac(u1));
}

}  // namespace

AffinePoint QTable::double_mul(const Scalar& u1, const Scalar& u2) const {
    return to_affine(qtable_double_mul_jac(odd_, u1, u2));
}

bool QTable::double_mul_check_r(const Scalar& u1, const Scalar& u2, const Scalar& r) const {
    Jac p = qtable_double_mul_jac(odd_, u1, u2);
    if (p.infinity()) return false;
    // x(P) mod n == r  ⟺  x(P) == r̃ for r̃ in {r, r+n if r+n < p}
    // (x < p < 2n, so at most one wrap). Projectively, x(P) == r̃ is
    // X == r̃·Z² — no field inversion needed.
    Fe z2 = p.z.sqr();
    if (Fe::from_u256(r.raw()).mul(z2) == p.x) return true;
    U256 rn;
    if (u256_add(r.raw(), scalar_order_u256(), &rn) == 0 &&
        u256_cmp(rn, field_prime_u256()) < 0) {
        if (Fe::from_u256(rn).mul(z2) == p.x) return true;
    }
    return false;
}

}  // namespace neo::crypto
