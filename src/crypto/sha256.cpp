#include "crypto/sha256.hpp"

#include <cstring>

#include "crypto/sha256_compress.hpp"

namespace neo::crypto {

namespace {

constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline std::uint32_t rotr(std::uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }
inline std::uint32_t big_sigma0(std::uint32_t x) { return rotr(x, 2) ^ rotr(x, 13) ^ rotr(x, 22); }
inline std::uint32_t big_sigma1(std::uint32_t x) { return rotr(x, 6) ^ rotr(x, 11) ^ rotr(x, 25); }
inline std::uint32_t small_sigma0(std::uint32_t x) { return rotr(x, 7) ^ rotr(x, 18) ^ (x >> 3); }
inline std::uint32_t small_sigma1(std::uint32_t x) { return rotr(x, 17) ^ rotr(x, 19) ^ (x >> 10); }
inline std::uint32_t ch(std::uint32_t x, std::uint32_t y, std::uint32_t z) { return (x & y) ^ (~x & z); }
inline std::uint32_t maj(std::uint32_t x, std::uint32_t y, std::uint32_t z) {
    return (x & y) ^ (x & z) ^ (y & z);
}

}  // namespace

namespace detail {

void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t block[64]) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
        w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
               (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
               (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
               static_cast<std::uint32_t>(block[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
        w[i] = small_sigma1(w[i - 2]) + w[i - 7] + small_sigma0(w[i - 15]) + w[i - 16];
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
        std::uint32_t t1 = h + big_sigma1(e) + ch(e, f, g) + kK[i] + w[i];
        std::uint32_t t2 = big_sigma0(a) + maj(a, b, c);
        h = g; g = f; f = e; e = d + t1;
        d = c; c = b; b = a; a = t1 + t2;
    }
    state[0] += a; state[1] += b; state[2] += c; state[3] += d;
    state[4] += e; state[5] += f; state[6] += g; state[7] += h;
}

Sha256CompressFn sha256_compress_fn() {
    // Resolved once; both backends are bit-identical (cross-checked in
    // tests/crypto), so the choice is invisible to everything simulated.
    static const Sha256CompressFn fn =
        sha256_shani_available() ? &sha256_compress_shani : &sha256_compress_scalar;
    return fn;
}

}  // namespace detail

void Sha256::reset() {
    static constexpr std::uint32_t kInit[8] = {
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
        0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
    };
    std::memcpy(state_, kInit, sizeof(state_));
    total_len_ = 0;
    buf_len_ = 0;
}

void Sha256::compress(const std::uint8_t block[64]) {
    static const detail::Sha256CompressFn fn = detail::sha256_compress_fn();
    fn(state_, block);
}

Sha256& Sha256::update(BytesView data) {
    total_len_ += data.size();
    std::size_t off = 0;
    if (buf_len_ > 0) {
        std::size_t take = std::min<std::size_t>(64 - buf_len_, data.size());
        std::memcpy(buf_ + buf_len_, data.data(), take);
        buf_len_ += take;
        off += take;
        if (buf_len_ == 64) {
            compress(buf_);
            buf_len_ = 0;
        }
    }
    while (data.size() - off >= 64) {
        compress(data.data() + off);
        off += 64;
    }
    if (off < data.size()) {
        std::memcpy(buf_, data.data() + off, data.size() - off);
        buf_len_ = data.size() - off;
    }
    return *this;
}

Digest32 Sha256::finish() {
    std::uint64_t bit_len = total_len_ * 8;
    std::uint8_t pad[72];
    std::size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
    pad[0] = 0x80;
    std::memset(pad + 1, 0, pad_len - 1);
    for (int i = 0; i < 8; ++i) pad[pad_len + i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
    update(BytesView(pad, pad_len + 8));

    Digest32 out;
    for (int i = 0; i < 8; ++i) {
        out[4 * i] = static_cast<std::uint8_t>(state_[i] >> 24);
        out[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
        out[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
        out[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
    }
    return out;
}

Digest32 sha256(BytesView data) {
    Sha256 ctx;
    ctx.update(data);
    return ctx.finish();
}

Digest32 sha256(std::string_view data) {
    Sha256 ctx;
    ctx.update(data);
    return ctx.finish();
}

Digest32 sha256_pair(BytesView a, BytesView b) {
    Sha256 ctx;
    ctx.update(a);
    ctx.update(b);
    return ctx.finish();
}

}  // namespace neo::crypto
