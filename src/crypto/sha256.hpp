// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used for aom message digests, the aom-pk hash chain, NeoBFT log hash
// chaining, and as the basis of HMAC-SHA256.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace neo::crypto {

/// Incremental SHA-256 context.
class Sha256 {
  public:
    Sha256() { reset(); }

    void reset();
    Sha256& update(BytesView data);
    Sha256& update(std::string_view s) {
        return update(BytesView(reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
    }
    /// Finalises and returns the digest. The context must be reset() before reuse.
    Digest32 finish();

  private:
    void compress(const std::uint8_t block[64]);

    std::uint32_t state_[8];
    std::uint64_t total_len_ = 0;
    std::uint8_t buf_[64];
    std::size_t buf_len_ = 0;
};

/// One-shot convenience.
Digest32 sha256(BytesView data);
Digest32 sha256(std::string_view data);

/// sha256(a || b) — common pattern for chained hashes.
Digest32 sha256_pair(BytesView a, BytesView b);

}  // namespace neo::crypto
