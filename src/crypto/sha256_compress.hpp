// Internal: SHA-256 compression-function backends and their dispatch.
//
// Two interchangeable implementations of the FIPS 180-4 compression
// function: the portable scalar one (sha256.cpp) and an x86 SHA-NI one
// (sha256_shani.cpp, compiled with -msha only where the compiler supports
// it). The backend is picked once per process from CPUID; both produce
// bit-identical digests, so nothing simulated can depend on which ran —
// only host wall-clock changes. tests/crypto cross-checks the two.
#pragma once

#include <cstdint>

namespace neo::crypto::detail {

/// Portable reference backend (always available).
void sha256_compress_scalar(std::uint32_t state[8], const std::uint8_t block[64]);

/// True iff the running CPU has the SHA extensions the hardware backend
/// needs (SHA-NI + SSSE3 + SSE4.1). Always false on non-x86 builds.
bool sha256_shani_available();

/// Hardware backend. Only callable when sha256_shani_available().
void sha256_compress_shani(std::uint32_t state[8], const std::uint8_t block[64]);

using Sha256CompressFn = void (*)(std::uint32_t state[8], const std::uint8_t block[64]);

/// The backend the process resolved at startup.
Sha256CompressFn sha256_compress_fn();

}  // namespace neo::crypto::detail
