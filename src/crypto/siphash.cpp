#include "crypto/siphash.hpp"

#include "common/assert.hpp"
#include "crypto/tuning.hpp"

namespace neo::crypto {

namespace {

inline std::uint64_t rotl64(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }
inline std::uint32_t rotl32(std::uint32_t x, int b) { return (x << b) | (x >> (32 - b)); }

inline void sipround(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2, std::uint64_t& v3) {
    v0 += v1; v1 = rotl64(v1, 13); v1 ^= v0; v0 = rotl64(v0, 32);
    v2 += v3; v3 = rotl64(v3, 16); v3 ^= v2;
    v0 += v3; v3 = rotl64(v3, 21); v3 ^= v0;
    v2 += v1; v1 = rotl64(v1, 17); v1 ^= v2; v2 = rotl64(v2, 32);
}

inline void halfsipround(std::uint32_t& v0, std::uint32_t& v1, std::uint32_t& v2, std::uint32_t& v3) {
    v0 += v1; v1 = rotl32(v1, 5); v1 ^= v0; v0 = rotl32(v0, 16);
    v2 += v3; v3 = rotl32(v3, 8); v3 ^= v2;
    v0 += v3; v3 = rotl32(v3, 7); v3 ^= v0;
    v2 += v1; v1 = rotl32(v1, 13); v1 ^= v2; v2 = rotl32(v2, 16);
}

inline std::uint64_t load_u64_le(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

inline std::uint32_t load_u32_le(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

}  // namespace

SipKey SipKey::from_bytes(BytesView b) {
    NEO_ASSERT(b.size() == 16);
    return SipKey{load_u64_le(b.data()), load_u64_le(b.data() + 8)};
}

Bytes SipKey::to_bytes() const {
    Bytes out(16);
    for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(k0 >> (8 * i));
    for (int i = 0; i < 8; ++i) out[8 + i] = static_cast<std::uint8_t>(k1 >> (8 * i));
    return out;
}

HalfSipKey HalfSipKey::from_bytes(BytesView b) {
    NEO_ASSERT(b.size() == 8);
    return HalfSipKey{load_u32_le(b.data()), load_u32_le(b.data() + 4)};
}

Bytes HalfSipKey::to_bytes() const {
    Bytes out(8);
    for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(k0 >> (8 * i));
    for (int i = 0; i < 4; ++i) out[4 + i] = static_cast<std::uint8_t>(k1 >> (8 * i));
    return out;
}

std::uint64_t siphash24(const SipKey& key, BytesView data) {
    std::uint64_t v0 = 0x736f6d6570736575ull ^ key.k0;
    std::uint64_t v1 = 0x646f72616e646f6dull ^ key.k1;
    std::uint64_t v2 = 0x6c7967656e657261ull ^ key.k0;
    std::uint64_t v3 = 0x7465646279746573ull ^ key.k1;

    const std::size_t n = data.size();
    const std::size_t end = n - (n % 8);
    for (std::size_t i = 0; i < end; i += 8) {
        std::uint64_t m = load_u64_le(data.data() + i);
        v3 ^= m;
        sipround(v0, v1, v2, v3);
        sipround(v0, v1, v2, v3);
        v0 ^= m;
    }

    std::uint64_t b = static_cast<std::uint64_t>(n & 0xff) << 56;
    for (std::size_t i = end; i < n; ++i) b |= static_cast<std::uint64_t>(data[i]) << (8 * (i - end));

    v3 ^= b;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    v0 ^= b;

    v2 ^= 0xff;
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    sipround(v0, v1, v2, v3);
    return v0 ^ v1 ^ v2 ^ v3;
}

namespace {

// Shared core for the 32/64-bit output variants of HalfSipHash-2-4.
void halfsiphash_core(const HalfSipKey& key, BytesView data, bool wide,
                      std::uint32_t& out_lo, std::uint32_t& out_hi) {
    std::uint32_t v0 = key.k0;
    std::uint32_t v1 = key.k1;
    std::uint32_t v2 = 0x6c796765u ^ key.k0;
    std::uint32_t v3 = 0x74656462u ^ key.k1;
    if (wide) v1 ^= 0xee;

    const std::size_t n = data.size();
    const std::size_t end = n - (n % 4);
    for (std::size_t i = 0; i < end; i += 4) {
        std::uint32_t m = load_u32_le(data.data() + i);
        v3 ^= m;
        halfsipround(v0, v1, v2, v3);
        halfsipround(v0, v1, v2, v3);
        v0 ^= m;
    }

    std::uint32_t b = static_cast<std::uint32_t>(n & 0xff) << 24;
    for (std::size_t i = end; i < n; ++i) b |= static_cast<std::uint32_t>(data[i]) << (8 * (i - end));

    v3 ^= b;
    halfsipround(v0, v1, v2, v3);
    halfsipround(v0, v1, v2, v3);
    v0 ^= b;

    v2 ^= wide ? 0xee : 0xff;
    halfsipround(v0, v1, v2, v3);
    halfsipround(v0, v1, v2, v3);
    halfsipround(v0, v1, v2, v3);
    halfsipround(v0, v1, v2, v3);
    out_lo = v1 ^ v3;

    if (wide) {
        v1 ^= 0xdd;
        halfsipround(v0, v1, v2, v3);
        halfsipround(v0, v1, v2, v3);
        halfsipround(v0, v1, v2, v3);
        halfsipround(v0, v1, v2, v3);
        out_hi = v1 ^ v3;
    } else {
        out_hi = 0;
    }
}

}  // namespace

std::uint32_t halfsiphash24(const HalfSipKey& key, BytesView data) {
    std::uint32_t lo, hi;
    halfsiphash_core(key, data, /*wide=*/false, lo, hi);
    return lo;
}

std::uint64_t halfsiphash24_64(const HalfSipKey& key, BytesView data) {
    std::uint32_t lo, hi;
    halfsiphash_core(key, data, /*wide=*/true, lo, hi);
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

void halfsiphash24_x4(const HalfSipKey keys[4], BytesView data, std::uint32_t out[4]) {
    static const bool simd = detail::halfsiphash_x4_simd_available();
    if (simd && host_crypto_tuning().simd_siphash.load(std::memory_order_relaxed)) {
        detail::halfsiphash24_x4_simd(keys, data, out);
        return;
    }
    for (int i = 0; i < 4; ++i) out[i] = halfsiphash24(keys[i], data);
}

}  // namespace neo::crypto
