// SipHash-2-4 (Aumasson & Bernstein) and HalfSipHash-2-4 (Yoo & Chen,
// "Secure keyed hashing on programmable switches") — the keyed hash the
// paper's aom-hm switch pipeline computes for its per-receiver HMAC vector.
//
// SipHash-2-4 operates on 64-bit words with a 128-bit key; HalfSipHash-2-4
// operates on 32-bit words with a 64-bit key and is what fits in a Tofino
// pipeline (the reference implementation uses 12 stages; the paper unrolls
// it across pipeline passes — see src/aom/sequencer_cost.hpp for the pass
// model).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"

namespace neo::crypto {

/// 128-bit SipHash key (k0 little-endian low, k1 high).
struct SipKey {
    std::uint64_t k0 = 0;
    std::uint64_t k1 = 0;

    /// Loads a key from 16 little-endian bytes.
    static SipKey from_bytes(BytesView b);
    Bytes to_bytes() const;
};

/// 64-bit HalfSipHash key.
struct HalfSipKey {
    std::uint32_t k0 = 0;
    std::uint32_t k1 = 0;

    /// Loads a key from 8 little-endian bytes.
    static HalfSipKey from_bytes(BytesView b);
    Bytes to_bytes() const;
};

/// SipHash-2-4 with 64-bit output.
std::uint64_t siphash24(const SipKey& key, BytesView data);

/// HalfSipHash-2-4 with 32-bit output (the aom-hm per-receiver MAC).
std::uint32_t halfsiphash24(const HalfSipKey& key, BytesView data);

/// HalfSipHash-2-4 with 64-bit output (two finalisation words).
std::uint64_t halfsiphash24_64(const HalfSipKey& key, BytesView data);

/// Four HalfSipHash-2-4 MACs over the SAME input under four DIFFERENT keys
/// — the shape of the sequencer's per-subgroup MAC vector (kHmSubgroupSize
/// is 4). Dispatches at runtime to a 4-lane SSE2 kernel when the host
/// supports it and HostCryptoTuning::simd_siphash is on; falls back to four
/// scalar calls. Output is bit-identical to four halfsiphash24 calls on
/// every path (asserted by tests/crypto/test_siphash.cpp).
void halfsiphash24_x4(const HalfSipKey keys[4], BytesView data, std::uint32_t out[4]);

namespace detail {
/// True when the SSE2 4-lane kernel is compiled in and usable on this host.
bool halfsiphash_x4_simd_available();
/// The SSE2 kernel itself (siphash_simd.cpp). Call only when available.
void halfsiphash24_x4_simd(const HalfSipKey keys[4], BytesView data, std::uint32_t out[4]);
}  // namespace detail

}  // namespace neo::crypto
