// SSE2 4-lane HalfSipHash-2-4 kernel.
//
// The sequencer's aom-hm data plane computes one 32-bit MAC per receiver
// slot over the SAME authenticated input with a DIFFERENT pairwise key per
// slot (see SequencerSwitch::process_hm). HalfSipHash state is four 32-bit
// words, so four independent keys pack exactly into one xmm register per
// state word: lane i carries slot i's (v0..v3). Message words are shared
// across lanes and broadcast with set1.
//
// Mirrors the sha256_shani.cpp structure: this TU holds the only SIMD code,
// the portable dispatcher in siphash.cpp selects it at runtime, and a
// non-x86 build compiles the stub at the bottom instead.
#include "crypto/siphash.hpp"

#if defined(__SSE2__) && (defined(__x86_64__) || defined(_M_X64))

#include <emmintrin.h>

namespace neo::crypto::detail {

namespace {

inline __m128i rotl32x4(__m128i x, int b) {
    return _mm_or_si128(_mm_slli_epi32(x, b), _mm_srli_epi32(x, 32 - b));
}

inline void halfsipround_x4(__m128i& v0, __m128i& v1, __m128i& v2, __m128i& v3) {
    v0 = _mm_add_epi32(v0, v1);
    v1 = rotl32x4(v1, 5);
    v1 = _mm_xor_si128(v1, v0);
    v0 = rotl32x4(v0, 16);
    v2 = _mm_add_epi32(v2, v3);
    v3 = rotl32x4(v3, 8);
    v3 = _mm_xor_si128(v3, v2);
    v0 = _mm_add_epi32(v0, v3);
    v3 = rotl32x4(v3, 7);
    v3 = _mm_xor_si128(v3, v0);
    v2 = _mm_add_epi32(v2, v1);
    v1 = rotl32x4(v1, 13);
    v1 = _mm_xor_si128(v1, v2);
    v2 = rotl32x4(v2, 16);
}

inline std::uint32_t load_u32_le(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

}  // namespace

bool halfsiphash_x4_simd_available() { return true; }

void halfsiphash24_x4_simd(const HalfSipKey keys[4], BytesView data, std::uint32_t out[4]) {
    __m128i v0 = _mm_set_epi32(static_cast<int>(keys[3].k0), static_cast<int>(keys[2].k0),
                               static_cast<int>(keys[1].k0), static_cast<int>(keys[0].k0));
    __m128i v1 = _mm_set_epi32(static_cast<int>(keys[3].k1), static_cast<int>(keys[2].k1),
                               static_cast<int>(keys[1].k1), static_cast<int>(keys[0].k1));
    __m128i v2 = _mm_xor_si128(_mm_set1_epi32(0x6c796765), v0);
    __m128i v3 = _mm_xor_si128(_mm_set1_epi32(0x74656462), v1);

    const std::size_t n = data.size();
    const std::size_t end = n - (n % 4);
    for (std::size_t i = 0; i < end; i += 4) {
        __m128i m = _mm_set1_epi32(static_cast<int>(load_u32_le(data.data() + i)));
        v3 = _mm_xor_si128(v3, m);
        halfsipround_x4(v0, v1, v2, v3);
        halfsipround_x4(v0, v1, v2, v3);
        v0 = _mm_xor_si128(v0, m);
    }

    std::uint32_t b = static_cast<std::uint32_t>(n & 0xff) << 24;
    for (std::size_t i = end; i < n; ++i) {
        b |= static_cast<std::uint32_t>(data[i]) << (8 * (i - end));
    }
    __m128i bm = _mm_set1_epi32(static_cast<int>(b));
    v3 = _mm_xor_si128(v3, bm);
    halfsipround_x4(v0, v1, v2, v3);
    halfsipround_x4(v0, v1, v2, v3);
    v0 = _mm_xor_si128(v0, bm);

    v2 = _mm_xor_si128(v2, _mm_set1_epi32(0xff));
    halfsipround_x4(v0, v1, v2, v3);
    halfsipround_x4(v0, v1, v2, v3);
    halfsipround_x4(v0, v1, v2, v3);
    halfsipround_x4(v0, v1, v2, v3);

    _mm_storeu_si128(reinterpret_cast<__m128i*>(out), _mm_xor_si128(v1, v3));
}

}  // namespace neo::crypto::detail

#else  // portable stub — the dispatcher never calls the kernel here

namespace neo::crypto::detail {

bool halfsiphash_x4_simd_available() { return false; }

void halfsiphash24_x4_simd(const HalfSipKey keys[4], BytesView data, std::uint32_t out[4]) {
    for (int i = 0; i < 4; ++i) out[i] = halfsiphash24(keys[i], data);
}

}  // namespace neo::crypto::detail

#endif
