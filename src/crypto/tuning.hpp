// Process-wide switches for host-side crypto optimisations.
//
// Everything controlled here changes HOST wall-clock only. Verdicts, wire
// bytes and virtual CostMeter charges are identical in every combination —
// the determinism tests run full deployments with each switch flipped and
// byte-compare the traces (tests/crypto/test_crypto_determinism.cpp).
//
// These are test/bench hooks, not tunables: production code leaves all of
// them on. Reads are relaxed atomics on hot paths; flip them only while no
// simulation is running.
#pragma once

#include <atomic>

namespace neo::crypto {

struct HostCryptoTuning {
    /// Shared-precomputation batch ECDSA verification in
    /// NodeCrypto::verify_batch (off = verify one at a time).
    std::atomic<bool> batch_verify{true};
    /// Cross-node host-side verdict memo + per-signer wNAF tables in
    /// TrustRoot (off = each node recomputes everything privately).
    std::atomic<bool> shared_memo{true};
    /// SIMD 4-wide HalfSipHash in the sequencer data-plane model
    /// (off = scalar lanes).
    std::atomic<bool> simd_siphash{true};
};

HostCryptoTuning& host_crypto_tuning();

}  // namespace neo::crypto
