#include "crypto/verify_memo.hpp"

#include <algorithm>

namespace neo::crypto {

namespace {

std::size_t round_up_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

}  // namespace

VerifyMemo::VerifyMemo(std::size_t slots) : slots_(round_up_pow2(std::max<std::size_t>(slots, 2))) {}

std::size_t VerifyMemo::index_of(NodeId signer, const Digest32& digest, BytesView sig) const {
    // FNV-1a over the full tuple: cheap, and collisions only cost an
    // eviction (find() compares the full key before reporting a hit).
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint8_t b) {
        h ^= b;
        h *= 1099511628211ull;
    };
    for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(signer >> (8 * i)));
    for (std::uint8_t b : digest) mix(b);
    for (std::uint8_t b : sig) mix(b);
    return static_cast<std::size_t>(h) & (slots_.size() - 1);
}

const bool* VerifyMemo::find(NodeId signer, const Digest32& digest, BytesView sig) {
    if (sig.size() != kSigBytes) return nullptr;
    const Slot& slot = slots_[index_of(signer, digest, sig)];
    if (slot.occupied && slot.signer == signer && slot.digest == digest &&
        std::equal(sig.begin(), sig.end(), slot.sig.begin())) {
        ++hits_;
        return &slot.valid;
    }
    ++misses_;
    return nullptr;
}

void VerifyMemo::insert(NodeId signer, const Digest32& digest, BytesView sig, bool valid) {
    if (sig.size() != kSigBytes) return;
    Slot& slot = slots_[index_of(signer, digest, sig)];
    slot.occupied = true;
    slot.valid = valid;
    slot.signer = signer;
    slot.digest = digest;
    std::copy(sig.begin(), sig.end(), slot.sig.begin());
}

}  // namespace neo::crypto
