// Host-side memo of ECDSA verification outcomes.
//
// Signature verification is a pure function of (public key, message digest,
// signature); BFT protocols re-verify the same tuple often (client retries,
// cached replies, quorum certificates carried in several messages). The
// memo skips the EC math on repeats — a HOST-time optimisation only. The
// caller still charges the full virtual-time cost through CostMeter, so
// simulated results are byte-identical with the memo on or off.
//
// The table is keyed by (signer, digest, signature). Within one TrustRoot
// the signer -> public-key binding is immutable (keys are derived once from
// the master secret), so this is equivalent to keying by (pubkey, digest,
// signature). Hits require an exact match of all three fields — a collision
// can only evict, never alias — and both valid and invalid verdicts are
// cached (an attacker replaying a bad signature should not force repeated
// EC math either). Fixed-size open-addressing table, overwrite on
// collision: bounded memory, no rehashing on the hot path.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"

namespace neo::crypto {

class VerifyMemo {
  public:
    /// Signature width this memo caches (matches kSignatureSize).
    static constexpr std::size_t kSigBytes = 64;

    /// `slots` is rounded up to a power of two; default ~4096 entries.
    explicit VerifyMemo(std::size_t slots = 4096);

    /// Memoised verdict for the tuple, or nullptr on miss. Counts a hit or
    /// a miss; the caller performs (and inserts) the real verification on
    /// miss.
    const bool* find(NodeId signer, const Digest32& digest, BytesView sig);

    void insert(NodeId signer, const Digest32& digest, BytesView sig, bool valid);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::size_t capacity() const { return slots_.size(); }

  private:
    struct Slot {
        bool occupied = false;
        bool valid = false;
        NodeId signer = 0;
        Digest32 digest{};
        std::array<std::uint8_t, kSigBytes> sig{};
    };

    std::size_t index_of(NodeId signer, const Digest32& digest, BytesView sig) const;

    std::vector<Slot> slots_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

}  // namespace neo::crypto
