#include "neobft/client.hpp"

#include "common/assert.hpp"
#include "sim/costs.hpp"

namespace neo::neobft {

Client::Client(Config cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
               const aom::SequencerDirectory* directory, Options opts)
    : cfg_(std::move(cfg)), crypto_(std::move(crypto)),
      sender_(cfg_.group, crypto_.get(), directory), opts_(opts) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
}

void Client::invoke(Bytes op, Callback cb) {
    NEO_ASSERT_MSG(!outstanding_.has_value(), "one outstanding request per client");

    Request req;
    req.client = id();
    req.request_id = next_request_id_++;
    req.op = std::move(op);
    req.signature = crypto_->sign(req.signed_body());

    Outstanding out;
    out.request_id = req.request_id;
    out.request_wire = sim::Packet(req.serialize());
    out.aom_packet = sim::Packet(sender_.make_packet(out.request_wire.view()));
    out.cb = std::move(cb);
    outstanding_ = std::move(out);

    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "request_invoke", outstanding_->request_id);
        outstanding_->trace_id = obs::trace_id(outstanding_->request_wire.view());
        tr->span_begin(sim().now(), id(), "request", outstanding_->trace_id);
    }
    send_request();
}

void Client::send_request() {
    NEO_ASSERT(outstanding_.has_value());
    send_to(sender_.route(), outstanding_->aom_packet);

    outstanding_->retry_timer = set_timer(opts_.retry_timeout, [this] {
        if (!outstanding_.has_value()) return;
        ++retries_;
        // §5.3: keep re-sending through aom and additionally unicast the
        // request to every replica so a faulty sequencer is detected.
        for (NodeId r : cfg_.replicas) send_to(r, outstanding_->request_wire);
        // Re-wrap: the route may have changed after a failover.
        outstanding_->aom_packet = sim::Packet(sender_.make_packet(outstanding_->request_wire.view()));
        send_request();
    }, "request_retry");
}

void Client::abandon() {
    if (!outstanding_.has_value()) return;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "request_abandon", outstanding_->request_id);
        if (outstanding_->quorum_span_open)
            tr->span_end(sim().now(), id(), "quorum", outstanding_->trace_id);
        tr->span_end(sim().now(), id(), "request", outstanding_->trace_id);
    }
    cancel_timer(outstanding_->retry_timer);
    outstanding_.reset();
}

void Client::handle(NodeId from, BytesView data) {
    auto kind = aom::peek_kind(data);
    if (!kind || *kind != static_cast<std::uint8_t>(MsgKind::kReply)) return;
    try {
        Reader r(data.subspan(1));
        on_reply(from, r);
    } catch (const CodecError&) {
    }
}

void Client::on_reply(NodeId from, Reader& r) {
    Reply reply = Reply::parse(r);
    if (!outstanding_.has_value()) return;
    if (reply.request_id != outstanding_->request_id) return;
    if (reply.replica != from || !cfg_.is_replica(from)) return;
    if (!crypto_->check_mac_from(from, reply.mac_body(), reply.mac)) return;

    // Group matching replies by (view, slot, log hash, result).
    Writer key(80 + reply.result.size());
    put_view(key, reply.view);
    key.u64(reply.slot);
    key.raw(BytesView(reply.log_hash.data(), reply.log_hash.size()));
    key.blob(reply.result);

    auto& vote = outstanding_->votes[key.bytes()];
    vote.replicas.insert(from);
    vote.result = reply.result;

    if (obs::TraceSink* tr = sim().trace();
        tr != nullptr && !outstanding_->quorum_span_open) {
        outstanding_->quorum_span_open = true;
        tr->span_begin(sim().now(), id(), "quorum", outstanding_->trace_id, from);
    }

    if (vote.replicas.size() >= cfg_.quorum()) {
        Bytes result = vote.result;
        Callback cb = std::move(outstanding_->cb);
        if (obs::TraceSink* tr = sim().trace()) {
            tr->phase(sim().now(), id(), "request_complete", outstanding_->request_id);
            // peer = the replica whose reply completed the quorum: the
            // critical-path analyzer reads phase boundaries off its spans.
            tr->span_end(sim().now(), id(), "quorum", outstanding_->trace_id, from);
            tr->span_end(sim().now(), id(), "request", outstanding_->trace_id, from);
        }
        cancel_timer(outstanding_->retry_timer);
        outstanding_.reset();
        ++completed_;
        cb(std::move(result));
    }
}

}  // namespace neo::neobft
