// NeoBFT client library (§5.3): multicasts signed requests through aom,
// falls back to unicast on timeout, and accepts a result once 2f+1 replicas
// reply with matching view, slot, log hash and result.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "aom/sender.hpp"
#include "neobft/log.hpp"
#include "sim/processing_node.hpp"

namespace neo::neobft {

struct ClientOptions {
    sim::Time retry_timeout = 10 * sim::kMillisecond;
};

class Client : public sim::ProcessingNode {
  public:
    using Callback = std::function<void(Bytes result)>;
    using Options = ClientOptions;

    Client(Config cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
           const aom::SequencerDirectory* directory, Options opts = {});

    /// Issues one operation; `cb` fires when 2f+1 matching replies arrive.
    /// One outstanding operation at a time (closed loop).
    void invoke(Bytes op, Callback cb);

    /// Abandons the outstanding operation without firing its callback:
    /// stops the retry timer and frees the in-flight slot. Late replies for
    /// the abandoned request id are ignored. Used by ShardClient to model a
    /// coordinator crash mid-2PC, and by the crash-recover lifecycle.
    void abandon();

    /// Schedules `fn` on this client's node after `delay` (a public wrapper
    /// over the protected ProcessingNode timer, for coordinators that own
    /// this client and share its simulator partition). Returns a timer id
    /// for cancel_after().
    TimerId run_after(sim::Time delay, std::function<void()> fn) {
        return set_timer(delay, std::move(fn), "client-run-after");
    }
    void cancel_after(TimerId id) { cancel_timer(id); }

    bool busy() const { return outstanding_.has_value(); }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t retries() const { return retries_; }
    crypto::NodeCrypto& node_crypto() { return *crypto_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct Outstanding {
        std::uint64_t request_id;
        sim::Packet request_wire;  // serialized signed Request (shared on resends)
        sim::Packet aom_packet;    // aom-wrapped copy
        std::uint64_t trace_id = 0;      // obs::trace_id(request_wire); 0 = untraced
        bool quorum_span_open = false;   // first matching reply seen
        Callback cb;
        // Match key -> replicas that voted for it.
        struct Vote {
            std::set<NodeId> replicas;
            Bytes result;
        };
        std::map<Bytes, Vote> votes;  // key = serialized (view, slot, hash, result digest)
        TimerId retry_timer = 0;
    };

    void send_request();
    void on_reply(NodeId from, Reader& r);

    Config cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    aom::AomSender sender_;
    Options opts_;
    std::uint64_t next_request_id_ = 1;
    std::optional<Outstanding> outstanding_;
    std::uint64_t completed_ = 0;
    std::uint64_t retries_ = 0;
};

}  // namespace neo::neobft
