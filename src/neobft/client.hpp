// NeoBFT client library (§5.3): multicasts signed requests through aom,
// falls back to unicast on timeout, and accepts a result once 2f+1 replicas
// reply with matching view, slot, log hash and result.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "aom/sender.hpp"
#include "neobft/log.hpp"
#include "sim/processing_node.hpp"

namespace neo::neobft {

struct ClientOptions {
    sim::Time retry_timeout = 10 * sim::kMillisecond;
};

class Client : public sim::ProcessingNode {
  public:
    using Callback = std::function<void(Bytes result)>;
    using Options = ClientOptions;

    Client(Config cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
           const aom::SequencerDirectory* directory, Options opts = {});

    /// Issues one operation; `cb` fires when 2f+1 matching replies arrive.
    /// One outstanding operation at a time (closed loop).
    void invoke(Bytes op, Callback cb);

    bool busy() const { return outstanding_.has_value(); }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t retries() const { return retries_; }
    crypto::NodeCrypto& node_crypto() { return *crypto_; }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    struct Outstanding {
        std::uint64_t request_id;
        sim::Packet request_wire;  // serialized signed Request (shared on resends)
        sim::Packet aom_packet;    // aom-wrapped copy
        std::uint64_t trace_id = 0;      // obs::trace_id(request_wire); 0 = untraced
        bool quorum_span_open = false;   // first matching reply seen
        Callback cb;
        // Match key -> replicas that voted for it.
        struct Vote {
            std::set<NodeId> replicas;
            Bytes result;
        };
        std::map<Bytes, Vote> votes;  // key = serialized (view, slot, hash, result digest)
        TimerId retry_timer = 0;
    };

    void send_request();
    void on_reply(NodeId from, Reader& r);

    Config cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    aom::AomSender sender_;
    Options opts_;
    std::uint64_t next_request_id_ = 1;
    std::optional<Outstanding> outstanding_;
    std::uint64_t completed_ = 0;
    std::uint64_t retries_ = 0;
};

}  // namespace neo::neobft
