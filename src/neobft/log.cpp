#include "neobft/log.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"
#include "crypto/sha256.hpp"

namespace neo::neobft {

const LogEntry& Log::at(std::uint64_t slot) const {
    NEO_ASSERT_MSG(has(slot), "log slot out of range");
    return entries_[slot - base_ - 1];
}

LogEntry& Log::at(std::uint64_t slot) {
    NEO_ASSERT_MSG(has(slot), "log slot out of range");
    return entries_[slot - base_ - 1];
}

Digest32 Log::entry_digest(const LogEntry& e, std::uint64_t slot) {
    if (e.noop) {
        Writer w(24);
        w.str("neobft-noop");
        w.u64(slot);
        return crypto::sha256(w.bytes());
    }
    return e.oc.digest;
}

void Log::append(LogEntry entry) {
    std::uint64_t slot = size() + 1;
    Digest32 prev = hash_at(slot - 1);
    Digest32 d = entry_digest(entry, slot);
    entry.cum_hash = crypto::sha256_pair(BytesView(prev.data(), prev.size()),
                                         BytesView(d.data(), d.size()));
    entries_.push_back(std::move(entry));
}

void Log::replace(std::uint64_t slot, LogEntry entry) {
    NEO_ASSERT(has(slot));
    entries_[slot - base_ - 1] = std::move(entry);
    rechain_from(slot);
}

void Log::rechain_from(std::uint64_t slot) {
    for (std::uint64_t s = std::max(slot, base_ + 1); s <= size(); ++s) {
        Digest32 prev = hash_at(s - 1);
        Digest32 d = entry_digest(entries_[s - base_ - 1], s);
        entries_[s - base_ - 1].cum_hash = crypto::sha256_pair(
            BytesView(prev.data(), prev.size()), BytesView(d.data(), d.size()));
    }
}

Digest32 Log::hash_at(std::uint64_t slot) const {
    if (slot == 0) return Digest32{};
    if (slot == base_) return base_hash_;
    NEO_ASSERT(has(slot));
    return entries_[slot - base_ - 1].cum_hash;
}

void Log::truncate_to(std::uint64_t slot) {
    NEO_ASSERT(slot <= size());
    NEO_ASSERT_MSG(slot >= base_, "truncate below stable checkpoint");
    entries_.resize(slot - base_);
}

void Log::gc_prefix(std::uint64_t slot) {
    if (slot <= base_) return;
    NEO_ASSERT_MSG(slot <= size(), "gc past log end");
    base_hash_ = hash_at(slot);
    entries_.erase(entries_.begin(),
                   entries_.begin() + static_cast<std::ptrdiff_t>(slot - base_));
    base_ = slot;
}

void Log::reset_base(std::uint64_t slot, const Digest32& hash) {
    entries_.clear();
    base_ = slot;
    base_hash_ = hash;
}

WireLogEntry Log::wire_entry(std::uint64_t slot) const {
    const LogEntry& e = at(slot);
    WireLogEntry w;
    w.noop = e.noop;
    if (e.noop) {
        w.gap_cert = e.gap_cert;
    } else {
        w.oc = e.oc;
    }
    return w;
}

namespace {

/// Counts distinct in-group signers whose signature over `body(replica)`
/// verifies; returns true once `need` are found.
template <typename BodyFn>
bool quorum_valid(const std::vector<SignerSig>& sigs, std::size_t need, const Config& cfg,
                  crypto::NodeCrypto& crypto, BodyFn body) {
    std::unordered_set<NodeId> seen;
    std::size_t valid = 0;
    for (const auto& s : sigs) {
        if (!cfg.is_replica(s.replica)) continue;
        if (!seen.insert(s.replica).second) continue;
        if (!crypto.verify(s.replica, body(s.replica), s.signature)) continue;
        if (++valid >= need) return true;
    }
    return false;
}

}  // namespace

bool verify_gap_certificate(const GapCertificate& cert, const Config& cfg,
                            crypto::NodeCrypto& crypto) {
    return quorum_valid(cert.commits, cfg.quorum(), cfg, crypto, [&](NodeId replica) {
        GapCommit c;
        c.view = cert.view;
        c.replica = replica;
        c.slot = cert.slot;
        c.recv = cert.recv;
        return c.signed_body();
    });
}

bool verify_epoch_certificate(const EpochCertificate& cert, const Config& cfg,
                              crypto::NodeCrypto& crypto) {
    return quorum_valid(cert.sigs, cfg.quorum(), cfg, crypto, [&](NodeId replica) {
        EpochStart e;
        e.epoch = cert.epoch;
        e.replica = replica;
        e.slot = cert.slot;
        return e.signed_body();
    });
}

bool verify_sync_certificate(const SyncCertificate& cert, const Config& cfg,
                             crypto::NodeCrypto& crypto) {
    return quorum_valid(cert.sigs, cfg.quorum(), cfg, crypto, [&](NodeId replica) {
        SyncMsg m;
        m.view = cert.view;
        m.replica = replica;
        m.slot = cert.slot;
        m.log_hash = cert.log_hash;
        // The signed body covers the app-state root too; leaving it out
        // rejects every certificate taken with checkpointing enabled.
        m.app_hash = cert.app_hash;
        return m.signed_body();
    });
}

}  // namespace neo::neobft
