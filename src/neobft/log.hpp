// Replica log with O(1) hash chaining (§5.3) and the replica/group
// configuration shared by the protocol's components.
#pragma once

#include <optional>
#include <vector>

#include "aom/cert.hpp"
#include "common/types.hpp"
#include "neobft/messages.hpp"
#include "sim/time.hpp"

namespace neo::neobft {

/// Static protocol configuration for one replication group.
struct Config {
    std::vector<NodeId> replicas;
    int f = 1;
    GroupId group = 1;
    NodeId config_service = kInvalidNode;

    // Timeouts.
    sim::Time query_retry = 1 * sim::kMillisecond;
    sim::Time view_change_timeout = 20 * sim::kMillisecond;
    sim::Time view_change_rebroadcast = 10 * sim::kMillisecond;
    sim::Time request_aom_timeout = 20 * sim::kMillisecond;

    /// State-sync period in log entries (§B.2's configurable N).
    std::uint64_t sync_interval = 128;

    /// Checkpoint period in log entries; 0 disables checkpointing (the
    /// protocol-level benchmarks run without it so the perf baselines are
    /// undisturbed). When enabled it must be a multiple of sync_interval:
    /// a checkpoint becomes stable when a sync certificate covering its
    /// slot binds the application-state Merkle root, after which the log
    /// prefix is garbage-collected and lagging replicas fetch the snapshot
    /// via Merkle-verified chunks instead of replaying from slot 1.
    std::uint64_t checkpoint_interval = 0;

    int n() const { return static_cast<int>(replicas.size()); }
    std::size_t quorum() const { return static_cast<std::size_t>(2 * f + 1); }

    bool is_replica(NodeId node) const {
        for (NodeId r : replicas) {
            if (r == node) return true;
        }
        return false;
    }

    NodeId leader_of(const ViewId& v) const {
        return replicas[static_cast<std::size_t>(v.leader % static_cast<LeaderNum>(replicas.size()))];
    }

    std::vector<NodeId> others(NodeId self) const {
        std::vector<NodeId> out;
        for (NodeId r : replicas) {
            if (r != self) out.push_back(r);
        }
        return out;
    }
};

/// One log position: a client request backed by an ordering certificate, or
/// a committed no-op backed by a gap certificate.
struct LogEntry {
    bool noop = false;
    aom::OrderingCert oc;          // when !noop
    GapCertificate gap_cert;       // when noop
    Digest32 cum_hash{};           // hash chain up to and including this slot

    // Execution bookkeeping (not part of the durable entry).
    bool executed = false;
    bool applied = false;  // app_->execute() actually ran (vs no-op/dup/invalid)
    Bytes result;
    bool valid_request = false;    // request parsed + client signature ok
    NodeId client = 0;
    std::uint64_t request_id = 0;
};

/// 1-indexed append-only log (slot 0 is the empty prefix). Checkpointing
/// garbage-collects a stable prefix: slots (0, base] are gone, only the
/// cumulative hash at `base` survives, and slot numbers stay absolute.
class Log {
  public:
    std::uint64_t size() const { return base_ + entries_.size(); }
    /// First retained slot minus one; 0 until gc_prefix/reset_base.
    std::uint64_t base() const { return base_; }
    bool has(std::uint64_t slot) const { return slot > base_ && slot <= size(); }

    const LogEntry& at(std::uint64_t slot) const;
    LogEntry& at(std::uint64_t slot);

    /// Appends at slot size()+1 and extends the hash chain.
    void append(LogEntry entry);

    /// Replaces `slot` and recomputes the hash chain from there on.
    void replace(std::uint64_t slot, LogEntry entry);

    /// Hash of the chain up to `slot` (slot 0 -> zero digest). Valid for
    /// retained slots and for the GC base itself.
    Digest32 hash_at(std::uint64_t slot) const;

    /// Truncates everything after `slot` (view-change merges). `slot` must
    /// not be below the GC base — a stable checkpoint is never rolled back.
    void truncate_to(std::uint64_t slot);

    /// Drops entries up to and including `slot` (stable-checkpoint GC);
    /// records the cumulative hash at `slot` as the new chain anchor.
    void gc_prefix(std::uint64_t slot);

    /// Discards everything and restarts the chain at `slot` with the given
    /// cumulative hash (installing a fetched checkpoint).
    void reset_base(std::uint64_t slot, const Digest32& hash);

    WireLogEntry wire_entry(std::uint64_t slot) const;

  private:
    void rechain_from(std::uint64_t slot);
    static Digest32 entry_digest(const LogEntry& e, std::uint64_t slot);

    std::uint64_t base_ = 0;
    Digest32 base_hash_{};  // cumulative hash at base_ (zero when base_ == 0)
    std::vector<LogEntry> entries_;
};

// ---- Quorum-certificate validation (shared by replica + tests) ----

bool verify_gap_certificate(const GapCertificate& cert, const Config& cfg,
                            crypto::NodeCrypto& crypto);
bool verify_epoch_certificate(const EpochCertificate& cert, const Config& cfg,
                              crypto::NodeCrypto& crypto);
bool verify_sync_certificate(const SyncCertificate& cert, const Config& cfg,
                             crypto::NodeCrypto& crypto);

}  // namespace neo::neobft
