// Replica log with O(1) hash chaining (§5.3) and the replica/group
// configuration shared by the protocol's components.
#pragma once

#include <optional>
#include <vector>

#include "aom/cert.hpp"
#include "common/types.hpp"
#include "neobft/messages.hpp"
#include "sim/time.hpp"

namespace neo::neobft {

/// Static protocol configuration for one replication group.
struct Config {
    std::vector<NodeId> replicas;
    int f = 1;
    GroupId group = 1;
    NodeId config_service = kInvalidNode;

    // Timeouts.
    sim::Time query_retry = 1 * sim::kMillisecond;
    sim::Time view_change_timeout = 20 * sim::kMillisecond;
    sim::Time view_change_rebroadcast = 10 * sim::kMillisecond;
    sim::Time request_aom_timeout = 20 * sim::kMillisecond;

    /// State-sync period in log entries (§B.2's configurable N).
    std::uint64_t sync_interval = 128;

    int n() const { return static_cast<int>(replicas.size()); }
    std::size_t quorum() const { return static_cast<std::size_t>(2 * f + 1); }

    bool is_replica(NodeId node) const {
        for (NodeId r : replicas) {
            if (r == node) return true;
        }
        return false;
    }

    NodeId leader_of(const ViewId& v) const {
        return replicas[static_cast<std::size_t>(v.leader % static_cast<LeaderNum>(replicas.size()))];
    }

    std::vector<NodeId> others(NodeId self) const {
        std::vector<NodeId> out;
        for (NodeId r : replicas) {
            if (r != self) out.push_back(r);
        }
        return out;
    }
};

/// One log position: a client request backed by an ordering certificate, or
/// a committed no-op backed by a gap certificate.
struct LogEntry {
    bool noop = false;
    aom::OrderingCert oc;          // when !noop
    GapCertificate gap_cert;       // when noop
    Digest32 cum_hash{};           // hash chain up to and including this slot

    // Execution bookkeeping (not part of the durable entry).
    bool executed = false;
    bool applied = false;  // app_->execute() actually ran (vs no-op/dup/invalid)
    Bytes result;
    bool valid_request = false;    // request parsed + client signature ok
    NodeId client = 0;
    std::uint64_t request_id = 0;
};

/// 1-indexed append-only log (slot 0 is the empty prefix).
class Log {
  public:
    std::uint64_t size() const { return entries_.size(); }
    bool has(std::uint64_t slot) const { return slot >= 1 && slot <= size(); }

    const LogEntry& at(std::uint64_t slot) const;
    LogEntry& at(std::uint64_t slot);

    /// Appends at slot size()+1 and extends the hash chain.
    void append(LogEntry entry);

    /// Replaces `slot` and recomputes the hash chain from there on.
    void replace(std::uint64_t slot, LogEntry entry);

    /// Hash of the chain up to `slot` (slot 0 -> zero digest).
    Digest32 hash_at(std::uint64_t slot) const;

    /// Truncates everything after `slot` (view-change merges).
    void truncate_to(std::uint64_t slot);

    WireLogEntry wire_entry(std::uint64_t slot) const;

  private:
    void rechain_from(std::uint64_t slot);
    static Digest32 entry_digest(const LogEntry& e, std::uint64_t slot);

    std::vector<LogEntry> entries_;
};

// ---- Quorum-certificate validation (shared by replica + tests) ----

bool verify_gap_certificate(const GapCertificate& cert, const Config& cfg,
                            crypto::NodeCrypto& crypto);
bool verify_epoch_certificate(const EpochCertificate& cert, const Config& cfg,
                              crypto::NodeCrypto& crypto);
bool verify_sync_certificate(const SyncCertificate& cert, const Config& cfg,
                             crypto::NodeCrypto& crypto);

}  // namespace neo::neobft
