#include "neobft/messages.hpp"

#include "aom/wire.hpp"

namespace neo::neobft {

const char* msg_kind_name(std::uint8_t kind) {
    switch (static_cast<MsgKind>(kind)) {
        case MsgKind::kRequest: return "request";
        case MsgKind::kReply: return "reply";
        case MsgKind::kQuery: return "query";
        case MsgKind::kQueryReply: return "query_reply";
        case MsgKind::kGapFind: return "gap_find";
        case MsgKind::kGapRecv: return "gap_recv";
        case MsgKind::kGapDrop: return "gap_drop";
        case MsgKind::kGapDecision: return "gap_decision";
        case MsgKind::kGapPrepare: return "gap_prepare";
        case MsgKind::kGapCommit: return "gap_commit";
        case MsgKind::kViewChange: return "view_change";
        case MsgKind::kViewStart: return "view_start";
        case MsgKind::kEpochStart: return "epoch_start";
        case MsgKind::kSync: return "sync";
        case MsgKind::kStateReq: return "state_req";
        case MsgKind::kStateReply: return "state_reply";
        case MsgKind::kPing: return "ping";
        case MsgKind::kPong: return "pong";
        case MsgKind::kGapCertReply: return "gap_cert_reply";
        case MsgKind::kCkptReq: return "ckpt_req";
        case MsgKind::kCkptMeta: return "ckpt_meta";
        case MsgKind::kCkptChunkReq: return "ckpt_chunk_req";
        case MsgKind::kCkptChunk: return "ckpt_chunk";
        default: return aom::wire_kind_name(kind);
    }
}

namespace {
constexpr std::size_t kMaxOp = 1u << 20;
constexpr std::size_t kMaxQuorum = 512;
constexpr std::size_t kMaxSuffix = 1u << 16;

void put_digest(Writer& w, const Digest32& d) { w.raw(BytesView(d.data(), d.size())); }

void put_oc(Writer& w, const aom::OrderingCert& oc) { w.blob(oc.serialize()); }

aom::OrderingCert get_oc(Reader& r) {
    Bytes b = r.blob();
    return aom::OrderingCert::parse_bytes(b);
}
}  // namespace

void put_view(Writer& w, const ViewId& v) {
    w.u64(v.epoch);
    w.u64(v.leader);
}

ViewId get_view(Reader& r) {
    ViewId v;
    v.epoch = r.u64();
    v.leader = r.u64();
    return v;
}

void put_signer_sigs(Writer& w, const std::vector<SignerSig>& sigs) {
    w.u32(static_cast<std::uint32_t>(sigs.size()));
    for (const auto& s : sigs) {
        w.u32(s.replica);
        w.blob(s.signature);
    }
}

std::vector<SignerSig> get_signer_sigs(Reader& r) {
    std::uint32_t n = r.u32();
    if (n > kMaxQuorum) throw CodecError("oversized quorum");
    std::vector<SignerSig> sigs;
    sigs.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        SignerSig s;
        s.replica = r.u32();
        s.signature = r.blob(256);
        sigs.push_back(std::move(s));
    }
    return sigs;
}

// ---------------- Request ----------------

Bytes Request::signed_body() const {
    Writer w(32 + op.size());
    w.str("neobft-request");
    w.u32(client);
    w.u64(request_id);
    w.blob(op);
    return std::move(w).take();
}

Bytes Request::serialize() const {
    Writer w(48 + op.size());
    w.u8(static_cast<std::uint8_t>(MsgKind::kRequest));
    w.u32(client);
    w.u64(request_id);
    w.blob(op);
    w.blob(signature);
    return std::move(w).take();
}

Request Request::parse(Reader& r) {
    Request m;
    m.client = r.u32();
    m.request_id = r.u64();
    m.op = r.blob(kMaxOp);
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

std::optional<Request> Request::parse_payload(BytesView payload) {
    if (payload.empty() || payload[0] != static_cast<std::uint8_t>(MsgKind::kRequest)) {
        return std::nullopt;
    }
    try {
        Reader r(payload.subspan(1));
        return parse(r);
    } catch (const CodecError&) {
        return std::nullopt;
    }
}

// ---------------- Reply ----------------

Bytes Reply::mac_body() const {
    Writer w(96 + result.size());
    w.str("neobft-reply");
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    put_digest(w, log_hash);
    w.u64(request_id);
    w.blob(result);
    return std::move(w).take();
}

Bytes Reply::serialize() const {
    Writer w(112 + result.size());
    w.u8(static_cast<std::uint8_t>(MsgKind::kReply));
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    put_digest(w, log_hash);
    w.u64(request_id);
    w.blob(result);
    w.blob(mac);
    return std::move(w).take();
}

Reply Reply::parse(Reader& r) {
    Reply m;
    m.view = get_view(r);
    m.replica = r.u32();
    m.slot = r.u64();
    m.log_hash = r.digest32();
    m.request_id = r.u64();
    m.result = r.blob(kMaxOp);
    m.mac = r.blob(64);
    r.expect_end();
    return m;
}

// ---------------- Query / QueryReply ----------------

Bytes Query::serialize() const {
    Writer w(32);
    w.u8(static_cast<std::uint8_t>(MsgKind::kQuery));
    put_view(w, view);
    w.u64(slot);
    return std::move(w).take();
}

Query Query::parse(Reader& r) {
    Query m;
    m.view = get_view(r);
    m.slot = r.u64();
    r.expect_end();
    return m;
}

Bytes QueryReply::serialize() const {
    Writer w(64);
    w.u8(static_cast<std::uint8_t>(MsgKind::kQueryReply));
    put_view(w, view);
    w.u64(slot);
    put_oc(w, oc);
    return std::move(w).take();
}

QueryReply QueryReply::parse(Reader& r) {
    QueryReply m;
    m.view = get_view(r);
    m.slot = r.u64();
    m.oc = get_oc(r);
    r.expect_end();
    return m;
}

// ---------------- Gap agreement ----------------

Bytes GapFind::signed_body() const {
    Writer w(40);
    w.str("neobft-gap-find");
    put_view(w, view);
    w.u64(slot);
    return std::move(w).take();
}

Bytes GapFind::serialize() const {
    Writer w(48);
    w.u8(static_cast<std::uint8_t>(MsgKind::kGapFind));
    put_view(w, view);
    w.u64(slot);
    w.blob(signature);
    return std::move(w).take();
}

GapFind GapFind::parse(Reader& r) {
    GapFind m;
    m.view = get_view(r);
    m.slot = r.u64();
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

Bytes GapRecv::serialize() const {
    Writer w(64);
    w.u8(static_cast<std::uint8_t>(MsgKind::kGapRecv));
    put_view(w, view);
    w.u64(slot);
    put_oc(w, oc);
    return std::move(w).take();
}

GapRecv GapRecv::parse(Reader& r) {
    GapRecv m;
    m.view = get_view(r);
    m.slot = r.u64();
    m.oc = get_oc(r);
    r.expect_end();
    return m;
}

Bytes GapDrop::signed_body() const {
    Writer w(48);
    w.str("neobft-gap-drop");
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    return std::move(w).take();
}

Bytes GapDrop::serialize() const {
    Writer w(56);
    w.u8(static_cast<std::uint8_t>(MsgKind::kGapDrop));
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    w.blob(signature);
    return std::move(w).take();
}

GapDrop GapDrop::parse(Reader& r) {
    GapDrop m;
    m.view = get_view(r);
    m.replica = r.u32();
    m.slot = r.u64();
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

Bytes GapDecision::signed_body() const {
    Writer w(64);
    w.str("neobft-gap-decision");
    put_view(w, view);
    w.u64(slot);
    w.boolean(recv);
    // The decision's evidence is self-certifying; the signature binds the
    // leader to the (view, slot, outcome) triple.
    return std::move(w).take();
}

Bytes GapDecision::serialize() const {
    Writer w(128);
    w.u8(static_cast<std::uint8_t>(MsgKind::kGapDecision));
    put_view(w, view);
    w.u64(slot);
    w.boolean(recv);
    if (recv) {
        put_oc(w, *oc);
    } else {
        w.u32(static_cast<std::uint32_t>(drops.size()));
        for (const auto& d : drops) {
            Bytes b = d.serialize();
            w.blob(b);
        }
    }
    w.blob(signature);
    return std::move(w).take();
}

GapDecision GapDecision::parse(Reader& r) {
    GapDecision m;
    m.view = get_view(r);
    m.slot = r.u64();
    m.recv = r.boolean();
    if (m.recv) {
        m.oc = get_oc(r);
    } else {
        std::uint32_t n = r.u32();
        if (n > kMaxQuorum) throw CodecError("oversized drop set");
        for (std::uint32_t i = 0; i < n; ++i) {
            Bytes b = r.blob();
            Reader dr(b);
            if (dr.u8() != static_cast<std::uint8_t>(MsgKind::kGapDrop)) {
                throw CodecError("expected gap-drop");
            }
            m.drops.push_back(GapDrop::parse(dr));
        }
    }
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

namespace {
Bytes gap_vote_body(std::string_view tag, const ViewId& view, NodeId replica, std::uint64_t slot,
                    bool recv) {
    Writer w(56);
    w.str(tag);
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    w.boolean(recv);
    return std::move(w).take();
}

template <typename T>
Bytes gap_vote_serialize(MsgKind kind, const T& m) {
    Writer w(64);
    w.u8(static_cast<std::uint8_t>(kind));
    put_view(w, m.view);
    w.u32(m.replica);
    w.u64(m.slot);
    w.boolean(m.recv);
    w.blob(m.signature);
    return std::move(w).take();
}

template <typename T>
T gap_vote_parse(Reader& r) {
    T m;
    m.view = get_view(r);
    m.replica = r.u32();
    m.slot = r.u64();
    m.recv = r.boolean();
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}
}  // namespace

Bytes GapPrepare::signed_body() const {
    return gap_vote_body("neobft-gap-prepare", view, replica, slot, recv);
}
Bytes GapPrepare::serialize() const { return gap_vote_serialize(MsgKind::kGapPrepare, *this); }
GapPrepare GapPrepare::parse(Reader& r) { return gap_vote_parse<GapPrepare>(r); }

Bytes GapCommit::signed_body() const {
    return gap_vote_body("neobft-gap-commit", view, replica, slot, recv);
}
Bytes GapCommit::serialize() const { return gap_vote_serialize(MsgKind::kGapCommit, *this); }
GapCommit GapCommit::parse(Reader& r) { return gap_vote_parse<GapCommit>(r); }

void GapCertificate::put(Writer& w) const {
    put_view(w, view);
    w.u64(slot);
    w.boolean(recv);
    put_signer_sigs(w, commits);
}

GapCertificate GapCertificate::get(Reader& r) {
    GapCertificate c;
    c.view = get_view(r);
    c.slot = r.u64();
    c.recv = r.boolean();
    c.commits = get_signer_sigs(r);
    return c;
}

Bytes GapCertReply::serialize() const {
    Writer w(256);
    w.u8(static_cast<std::uint8_t>(MsgKind::kGapCertReply));
    put_view(w, view);
    w.u64(slot);
    cert.put(w);
    w.boolean(oc.has_value());
    if (oc.has_value()) put_oc(w, *oc);
    return std::move(w).take();
}

GapCertReply GapCertReply::parse(Reader& r) {
    GapCertReply m;
    m.view = get_view(r);
    m.slot = r.u64();
    m.cert = GapCertificate::get(r);
    if (r.boolean()) m.oc = get_oc(r);
    r.expect_end();
    return m;
}

// ---------------- Sync ----------------

Bytes SyncMsg::signed_body() const {
    Writer w(120);
    w.str("neobft-sync");
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    put_digest(w, log_hash);
    put_digest(w, app_hash);
    return std::move(w).take();
}

Bytes SyncMsg::serialize() const {
    Writer w(192);
    w.u8(static_cast<std::uint8_t>(MsgKind::kSync));
    put_view(w, view);
    w.u32(replica);
    w.u64(slot);
    put_digest(w, log_hash);
    put_digest(w, app_hash);
    w.u32(static_cast<std::uint32_t>(drops.size()));
    for (const auto& d : drops) d.put(w);
    w.blob(signature);
    return std::move(w).take();
}

SyncMsg SyncMsg::parse(Reader& r) {
    SyncMsg m;
    m.view = get_view(r);
    m.replica = r.u32();
    m.slot = r.u64();
    m.log_hash = r.digest32();
    m.app_hash = r.digest32();
    std::uint32_t n = r.u32();
    if (n > kMaxQuorum) throw CodecError("oversized drop list");
    for (std::uint32_t i = 0; i < n; ++i) m.drops.push_back(GapCertificate::get(r));
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

void SyncCertificate::put(Writer& w) const {
    put_view(w, view);
    w.u64(slot);
    put_digest(w, log_hash);
    put_digest(w, app_hash);
    put_signer_sigs(w, sigs);
}

SyncCertificate SyncCertificate::get(Reader& r) {
    SyncCertificate c;
    c.view = get_view(r);
    c.slot = r.u64();
    c.log_hash = r.digest32();
    c.app_hash = r.digest32();
    c.sigs = get_signer_sigs(r);
    return c;
}

// ---------------- Epoch / view change ----------------

Bytes EpochStart::signed_body() const {
    Writer w(48);
    w.str("neobft-epoch-start");
    w.u64(epoch);
    w.u32(replica);
    w.u64(slot);
    return std::move(w).take();
}

Bytes EpochStart::serialize() const {
    Writer w(56);
    w.u8(static_cast<std::uint8_t>(MsgKind::kEpochStart));
    w.u64(epoch);
    w.u32(replica);
    w.u64(slot);
    w.blob(signature);
    return std::move(w).take();
}

EpochStart EpochStart::parse(Reader& r) {
    EpochStart m;
    m.epoch = r.u64();
    m.replica = r.u32();
    m.slot = r.u64();
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

void EpochCertificate::put(Writer& w) const {
    w.u64(epoch);
    w.u64(slot);
    put_signer_sigs(w, sigs);
}

EpochCertificate EpochCertificate::get(Reader& r) {
    EpochCertificate c;
    c.epoch = r.u64();
    c.slot = r.u64();
    c.sigs = get_signer_sigs(r);
    return c;
}

void WireLogEntry::put(Writer& w) const {
    w.boolean(noop);
    if (noop) {
        gap_cert.put(w);
    } else {
        put_oc(w, oc);
    }
}

WireLogEntry WireLogEntry::get(Reader& r) {
    WireLogEntry e;
    e.noop = r.boolean();
    if (e.noop) {
        e.gap_cert = GapCertificate::get(r);
    } else {
        e.oc = get_oc(r);
    }
    return e;
}

Bytes ViewChange::signed_body() const {
    // Sign a digest-friendly rendering of the whole message (minus the
    // signature itself).
    Writer w(256);
    w.str("neobft-view-change");
    put_view(w, new_view);
    w.u32(replica);
    sync_cert.put(w);
    w.u32(static_cast<std::uint32_t>(epochs.size()));
    for (const auto& e : epochs) {
        w.u64(e.epoch);
        w.u64(e.start_slot);
        e.cert.put(w);
    }
    w.u64(suffix_base);
    w.u32(static_cast<std::uint32_t>(suffix.size()));
    for (const auto& e : suffix) e.put(w);
    return std::move(w).take();
}

Bytes ViewChange::serialize() const {
    Writer w(512);
    w.u8(static_cast<std::uint8_t>(MsgKind::kViewChange));
    put_view(w, new_view);
    w.u32(replica);
    sync_cert.put(w);
    w.u32(static_cast<std::uint32_t>(epochs.size()));
    for (const auto& e : epochs) {
        w.u64(e.epoch);
        w.u64(e.start_slot);
        e.cert.put(w);
    }
    w.u64(suffix_base);
    w.u32(static_cast<std::uint32_t>(suffix.size()));
    for (const auto& e : suffix) e.put(w);
    w.blob(signature);
    return std::move(w).take();
}

ViewChange ViewChange::parse(Reader& r) {
    ViewChange m;
    m.new_view = get_view(r);
    m.replica = r.u32();
    m.sync_cert = SyncCertificate::get(r);
    std::uint32_t ne = r.u32();
    if (ne > kMaxQuorum) throw CodecError("oversized epoch list");
    for (std::uint32_t i = 0; i < ne; ++i) {
        EpochStartInfo info;
        info.epoch = r.u64();
        info.start_slot = r.u64();
        info.cert = EpochCertificate::get(r);
        m.epochs.push_back(std::move(info));
    }
    m.suffix_base = r.u64();
    std::uint32_t ns = r.u32();
    if (ns > kMaxSuffix) throw CodecError("oversized log suffix");
    for (std::uint32_t i = 0; i < ns; ++i) m.suffix.push_back(WireLogEntry::get(r));
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

Bytes ViewStart::signed_body() const {
    Writer w(64);
    w.str("neobft-view-start");
    put_view(w, new_view);
    w.u32(static_cast<std::uint32_t>(msgs.size()));
    for (const auto& m : msgs) w.blob(m.serialize());
    return std::move(w).take();
}

Bytes ViewStart::serialize() const {
    Writer w(1024);
    w.u8(static_cast<std::uint8_t>(MsgKind::kViewStart));
    put_view(w, new_view);
    w.u32(static_cast<std::uint32_t>(msgs.size()));
    for (const auto& m : msgs) w.blob(m.serialize());
    w.blob(signature);
    return std::move(w).take();
}

ViewStart ViewStart::parse(Reader& r) {
    ViewStart m;
    m.new_view = get_view(r);
    std::uint32_t n = r.u32();
    if (n > kMaxQuorum) throw CodecError("oversized view-change set");
    for (std::uint32_t i = 0; i < n; ++i) {
        Bytes b = r.blob();
        Reader vr(b);
        if (vr.u8() != static_cast<std::uint8_t>(MsgKind::kViewChange)) {
            throw CodecError("expected view-change");
        }
        m.msgs.push_back(ViewChange::parse(vr));
    }
    m.signature = r.blob(256);
    r.expect_end();
    return m;
}

// ---------------- Leader probing ----------------

Bytes Ping::serialize() const {
    Writer w(32);
    w.u8(static_cast<std::uint8_t>(MsgKind::kPing));
    put_view(w, view);
    w.u64(nonce);
    return std::move(w).take();
}

Ping Ping::parse(Reader& r) {
    Ping m;
    m.view = get_view(r);
    m.nonce = r.u64();
    r.expect_end();
    return m;
}

Bytes Pong::serialize() const {
    Writer w(32);
    w.u8(static_cast<std::uint8_t>(MsgKind::kPong));
    put_view(w, view);
    w.u64(nonce);
    return std::move(w).take();
}

Pong Pong::parse(Reader& r) {
    Pong m;
    m.view = get_view(r);
    m.nonce = r.u64();
    r.expect_end();
    return m;
}

// ---------------- State transfer ----------------

Bytes StateReq::serialize() const {
    Writer w(24);
    w.u8(static_cast<std::uint8_t>(MsgKind::kStateReq));
    w.u64(from_slot);
    w.u64(to_slot);
    return std::move(w).take();
}

StateReq StateReq::parse(Reader& r) {
    StateReq m;
    m.from_slot = r.u64();
    m.to_slot = r.u64();
    r.expect_end();
    return m;
}

Bytes StateReply::serialize() const {
    Writer w(64);
    w.u8(static_cast<std::uint8_t>(MsgKind::kStateReply));
    w.u64(base_slot);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) e.put(w);
    return std::move(w).take();
}

StateReply StateReply::parse(Reader& r) {
    StateReply m;
    m.base_slot = r.u64();
    std::uint32_t n = r.u32();
    if (n > kMaxSuffix) throw CodecError("oversized state reply");
    for (std::uint32_t i = 0; i < n; ++i) m.entries.push_back(WireLogEntry::get(r));
    r.expect_end();
    return m;
}

// ---------------- Checkpoint transfer ----------------

namespace {
// 1 MiB chunks would already be generous; bound the count so a Byzantine
// meta cannot make the requester allocate an absurd chunk table.
constexpr std::uint32_t kMaxCkptChunks = 1u << 20;
constexpr std::size_t kMaxMerklePath = 64;
}  // namespace

Bytes CkptReq::serialize() const {
    Writer w(16);
    w.u8(static_cast<std::uint8_t>(MsgKind::kCkptReq));
    w.u64(min_slot);
    return std::move(w).take();
}

CkptReq CkptReq::parse(Reader& r) {
    CkptReq m;
    m.min_slot = r.u64();
    r.expect_end();
    return m;
}

Bytes CkptMeta::serialize() const {
    Writer w(256);
    w.u8(static_cast<std::uint8_t>(MsgKind::kCkptMeta));
    w.u64(slot);
    w.u32(n_chunks);
    w.u32(chunk_size);
    cert.put(w);
    return std::move(w).take();
}

CkptMeta CkptMeta::parse(Reader& r) {
    CkptMeta m;
    m.slot = r.u64();
    m.n_chunks = r.u32();
    m.chunk_size = r.u32();
    if (m.n_chunks > kMaxCkptChunks) throw CodecError("oversized chunk count");
    m.cert = SyncCertificate::get(r);
    r.expect_end();
    return m;
}

Bytes CkptChunkReq::serialize() const {
    Writer w(16);
    w.u8(static_cast<std::uint8_t>(MsgKind::kCkptChunkReq));
    w.u64(slot);
    w.u32(index);
    return std::move(w).take();
}

CkptChunkReq CkptChunkReq::parse(Reader& r) {
    CkptChunkReq m;
    m.slot = r.u64();
    m.index = r.u32();
    r.expect_end();
    return m;
}

Bytes CkptChunk::serialize() const {
    Writer w(64 + chunk.size() + 32 * siblings.size());
    w.u8(static_cast<std::uint8_t>(MsgKind::kCkptChunk));
    w.u64(slot);
    w.u32(index);
    w.u32(n_chunks);
    w.blob(chunk);
    w.u32(static_cast<std::uint32_t>(siblings.size()));
    for (const auto& d : siblings) put_digest(w, d);
    return std::move(w).take();
}

CkptChunk CkptChunk::parse(Reader& r) {
    CkptChunk m;
    m.slot = r.u64();
    m.index = r.u32();
    m.n_chunks = r.u32();
    if (m.n_chunks > kMaxCkptChunks) throw CodecError("oversized chunk count");
    m.chunk = r.blob(kMaxOp);
    std::uint32_t n = r.u32();
    if (n > kMaxMerklePath) throw CodecError("oversized merkle path");
    for (std::uint32_t i = 0; i < n; ++i) m.siblings.push_back(r.digest32());
    r.expect_end();
    return m;
}

}  // namespace neo::neobft
