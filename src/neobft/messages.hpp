// NeoBFT protocol messages (§5.3–§5.5, §B.1–§B.2).
//
// Wire kinds start at aom::Wire::kProtoBase. Every parse is bounds-checked;
// dispatchers treat CodecError as Byzantine garbage.
#pragma once

#include <optional>
#include <vector>

#include "aom/cert.hpp"
#include "common/codec.hpp"
#include "common/types.hpp"

namespace neo::neobft {

enum class MsgKind : std::uint8_t {
    kRequest = 0x20,
    kReply = 0x21,
    kQuery = 0x22,
    kQueryReply = 0x23,
    kGapFind = 0x24,
    kGapRecv = 0x25,
    kGapDrop = 0x26,
    kGapDecision = 0x27,
    kGapPrepare = 0x28,
    kGapCommit = 0x29,
    kViewChange = 0x2a,
    kViewStart = 0x2b,
    kEpochStart = 0x2c,
    kSync = 0x2d,
    kStateReq = 0x2e,
    kStateReply = 0x2f,
    kPing = 0x30,
    kPong = 0x31,
    kGapCertReply = 0x32,
    kCkptReq = 0x33,
    kCkptMeta = 0x34,
    kCkptChunkReq = 0x35,
    kCkptChunk = 0x36,
};

/// Stable name for a NeoBFT wire kind (falls through to the aom layer's
/// names for kinds below kProtoBase); nullptr for unknown bytes. Suitable
/// as a metrics key fragment.
const char* msg_kind_name(std::uint8_t kind);

/// View number: ⟨epoch-num, leader-num⟩ (§5.2).
struct ViewId {
    EpochNum epoch = 1;
    LeaderNum leader = 0;

    friend bool operator==(const ViewId&, const ViewId&) = default;
    friend auto operator<=>(const ViewId& a, const ViewId& b) {
        if (auto c = a.epoch <=> b.epoch; c != 0) return c;
        return a.leader <=> b.leader;
    }
};

void put_view(Writer& w, const ViewId& v);
ViewId get_view(Reader& r);

/// Signed quorum element: (replica, signature).
struct SignerSig {
    NodeId replica = 0;
    Bytes signature;

    friend bool operator==(const SignerSig&, const SignerSig&) = default;
};

void put_signer_sigs(Writer& w, const std::vector<SignerSig>& sigs);
std::vector<SignerSig> get_signer_sigs(Reader& r);

// ---------------------------------------------------------------- Request

/// Client request, carried as the aom payload (and re-sent by unicast on
/// timeout). Signed by the client.
struct Request {
    NodeId client = 0;
    std::uint64_t request_id = 0;
    Bytes op;
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static Request parse(Reader& r);
    static std::optional<Request> parse_payload(BytesView payload);
};

// ------------------------------------------------------------------ Reply

/// Replica -> client. Authenticated with the pairwise client MAC (all
/// protocols in this repo authenticate client replies the same way so the
/// comparison stays apples-to-apples; see DESIGN.md §6).
struct Reply {
    ViewId view;
    NodeId replica = 0;
    std::uint64_t slot = 0;
    Digest32 log_hash{};
    std::uint64_t request_id = 0;
    Bytes result;
    Bytes mac;

    Bytes mac_body() const;
    Bytes serialize() const;
    static Reply parse(Reader& r);
};

// ---------------------------------------------------- Gap handling (§5.4)

struct Query {
    ViewId view;
    std::uint64_t slot = 0;

    Bytes serialize() const;
    static Query parse(Reader& r);
};

struct QueryReply {
    ViewId view;
    std::uint64_t slot = 0;
    aom::OrderingCert oc;

    Bytes serialize() const;
    static QueryReply parse(Reader& r);
};

struct GapFind {
    ViewId view;
    std::uint64_t slot = 0;
    Bytes signature;  // leader's

    Bytes signed_body() const;
    Bytes serialize() const;
    static GapFind parse(Reader& r);
};

struct GapRecv {
    ViewId view;
    std::uint64_t slot = 0;
    aom::OrderingCert oc;

    Bytes serialize() const;
    static GapRecv parse(Reader& r);
};

struct GapDrop {
    ViewId view;
    NodeId replica = 0;
    std::uint64_t slot = 0;
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static GapDrop parse(Reader& r);
};

struct GapDecision {
    ViewId view;
    std::uint64_t slot = 0;
    bool recv = false;
    std::optional<aom::OrderingCert> oc;  // when recv
    std::vector<GapDrop> drops;           // 2f+1 when !recv
    Bytes signature;                      // leader's

    Bytes signed_body() const;
    Bytes serialize() const;
    static GapDecision parse(Reader& r);
};

struct GapPrepare {
    ViewId view;
    NodeId replica = 0;
    std::uint64_t slot = 0;
    bool recv = false;
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static GapPrepare parse(Reader& r);
};

struct GapCommit {
    ViewId view;
    NodeId replica = 0;
    std::uint64_t slot = 0;
    bool recv = false;
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static GapCommit parse(Reader& r);
};

/// 2f+1 gap-commits: proof that `slot` committed as recv/drop (§5.4).
struct GapCertificate {
    ViewId view;
    std::uint64_t slot = 0;
    bool recv = false;
    std::vector<SignerSig> commits;

    void put(Writer& w) const;
    static GapCertificate get(Reader& r);

    friend bool operator==(const GapCertificate&, const GapCertificate&) = default;
};

/// Answer to a QUERY for a slot whose gap agreement already concluded:
/// the stored certificate (2f+1 gap-commits) plus, for a recv outcome, the
/// ordering certificate. Self-certifying — no signature needed.
struct GapCertReply {
    ViewId view;
    std::uint64_t slot = 0;
    GapCertificate cert;
    std::optional<aom::OrderingCert> oc;  // present when cert.recv

    Bytes serialize() const;
    static GapCertReply parse(Reader& r);
};

// --------------------------------------------------- State sync (§B.2)

/// Signature covers (view, replica, slot, log_hash, app_hash) so 2f+1
/// syncs form a transferable commitment certificate; the attached gap
/// certificates are self-certifying. `app_hash` is the Merkle root of the
/// replica's checkpoint payload when `slot` is a checkpoint boundary, zero
/// otherwise (checkpointing disabled, or a non-checkpoint sync).
struct SyncMsg {
    ViewId view;
    NodeId replica = 0;
    std::uint64_t slot = 0;
    Digest32 log_hash{};
    Digest32 app_hash{};
    std::vector<GapCertificate> drops;
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static SyncMsg parse(Reader& r);
};

/// 2f+1 matching sync signatures: proof that the log prefix up to `slot`
/// (with hash `log_hash`) is committed, and — when app_hash is nonzero —
/// that `app_hash` is the agreed application-state root at `slot`.
struct SyncCertificate {
    ViewId view;
    std::uint64_t slot = 0;
    Digest32 log_hash{};
    Digest32 app_hash{};
    std::vector<SignerSig> sigs;

    void put(Writer& w) const;
    static SyncCertificate get(Reader& r);
    bool empty() const { return sigs.empty(); }
};

// -------------------------------------------- Epoch & view change (§B.1)

struct EpochStart {
    EpochNum epoch = 0;
    NodeId replica = 0;
    std::uint64_t slot = 0;  // last log index after merging
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static EpochStart parse(Reader& r);
};

/// 2f+1 epoch-starts: the agreed starting log position of an epoch.
struct EpochCertificate {
    EpochNum epoch = 0;
    std::uint64_t slot = 0;  // last slot of the previous epoch
    std::vector<SignerSig> sigs;

    void put(Writer& w) const;
    static EpochCertificate get(Reader& r);

    friend bool operator==(const EpochCertificate&, const EpochCertificate&) = default;
};

/// Log entry as transferred in view changes and state transfer. Either a
/// request backed by an ordering certificate or a no-op backed by a gap
/// certificate.
struct WireLogEntry {
    bool noop = false;
    aom::OrderingCert oc;      // when !noop
    GapCertificate gap_cert;   // when noop

    void put(Writer& w) const;
    static WireLogEntry get(Reader& r);
};

struct ViewChange {
    ViewId new_view;
    NodeId replica = 0;
    /// Commitment baseline: everything <= sync_cert.slot is committed and
    /// identical at all correct replicas. May be empty (no sync yet).
    SyncCertificate sync_cert;
    /// Epoch certificates for every epoch this log started after the
    /// baseline: (epoch, first slot of the epoch, certificate).
    struct EpochStartInfo {
        EpochNum epoch = 0;
        std::uint64_t start_slot = 0;
        EpochCertificate cert;
    };
    std::vector<EpochStartInfo> epochs;
    /// Log entries after the baseline, starting at suffix_base + 1.
    std::uint64_t suffix_base = 0;
    std::vector<WireLogEntry> suffix;
    Bytes signature;

    Bytes signed_body() const;
    Bytes serialize() const;
    static ViewChange parse(Reader& r);
};

struct ViewStart {
    ViewId new_view;
    std::vector<ViewChange> msgs;  // 2f+1
    Bytes signature;               // new leader's

    Bytes signed_body() const;
    Bytes serialize() const;
    static ViewStart parse(Reader& r);
};

// ------------------------------------------------------ Leader probing
//
// The paper's liveness argument (§C.2) assumes non-faulty replicas
// "correctly suspect" faulty leaders. This implements that failure
// detector: a replica that hears a VIEW-CHANGE for a higher view probes the
// current leader and joins the view change if the leader stays silent.

struct Ping {
    ViewId view;
    std::uint64_t nonce = 0;

    Bytes serialize() const;
    static Ping parse(Reader& r);
};

struct Pong {
    ViewId view;
    std::uint64_t nonce = 0;

    Bytes serialize() const;
    static Pong parse(Reader& r);
};

// ----------------------------------------------------- State transfer

struct StateReq {
    std::uint64_t from_slot = 0;
    std::uint64_t to_slot = 0;

    Bytes serialize() const;
    static StateReq parse(Reader& r);
};

struct StateReply {
    std::uint64_t base_slot = 0;  // entries start at base_slot + 1
    std::vector<WireLogEntry> entries;

    Bytes serialize() const;
    static StateReply parse(Reader& r);
};

// ------------------------------------------- Checkpoint transfer (§B.2)
//
// A replica whose log starts above the slot a peer needs (stable-checkpoint
// GC) answers with checkpoint metadata instead of log entries. The payload
// travels as Merkle-verified chunks: the sync certificate binds the root
// (app_hash), so each chunk is independently checkable and a Byzantine
// server cannot substitute state.

/// "Send me a checkpoint at or above `min_slot`."
struct CkptReq {
    std::uint64_t min_slot = 0;

    Bytes serialize() const;
    static CkptReq parse(Reader& r);
};

/// Checkpoint offer: the certificate proves (slot, log_hash, app_hash);
/// chunking parameters let the requester schedule kCkptChunkReq pulls.
struct CkptMeta {
    std::uint64_t slot = 0;
    std::uint32_t n_chunks = 0;
    std::uint32_t chunk_size = 0;
    SyncCertificate cert;

    Bytes serialize() const;
    static CkptMeta parse(Reader& r);
};

struct CkptChunkReq {
    std::uint64_t slot = 0;
    std::uint32_t index = 0;

    Bytes serialize() const;
    static CkptChunkReq parse(Reader& r);
};

/// One payload chunk plus its Merkle authentication path (sibling hashes
/// bottom-up; verified against the certificate's app_hash).
struct CkptChunk {
    std::uint64_t slot = 0;
    std::uint32_t index = 0;
    std::uint32_t n_chunks = 0;
    Bytes chunk;
    std::vector<Digest32> siblings;

    Bytes serialize() const;
    static CkptChunk parse(Reader& r);
};

}  // namespace neo::neobft
