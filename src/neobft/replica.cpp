// NeoBFT replica: dispatch, normal operation (§5.3), gap agreement (§5.4),
// state sync (§B.2), client unicast fallback. View changes live in
// replica_viewchange.cpp.
#include "neobft/replica.hpp"

#include <algorithm>
#include <tuple>

#include "common/assert.hpp"
#include "sim/costs.hpp"
#include "common/logging.hpp"
#include "obs/auditor.hpp"
#include "obs/metrics.hpp"

namespace neo::neobft {

Replica::Replica(Config cfg, std::unique_ptr<crypto::NodeCrypto> crypto,
                 const aom::AomKeyService* keys, std::unique_ptr<app::StateMachine> app,
                 aom::ReceiverOptions recv_opts)
    : cfg_(std::move(cfg)), crypto_(std::move(crypto)), keys_(keys), app_(std::move(app)),
      recv_opts_(recv_opts) {
    set_meter(&crypto_->meter());
    set_processing_config(sim::host_processing());
    epoch_start_slot_[1] = 1;
    genesis_snapshot_ = app_->snapshot();
    NEO_ASSERT_MSG(cfg_.checkpoint_interval == 0 ||
                       (cfg_.sync_interval != 0 &&
                        cfg_.checkpoint_interval % cfg_.sync_interval == 0),
                   "checkpoint_interval must be a multiple of sync_interval");
}

void Replica::set_auditor(obs::Auditor* a) {
    auditor_ = a;
    if (a != nullptr) {
        // 2PC phases execute inside app_->execute(), i.e. inside this
        // replica's event, so current_shard()/now() and the replay flag all
        // describe the executing slot.
        app_->set_txn_observer([this](std::uint64_t txn_id, int phase, bool applied) {
            auditor_->on_txn(sim().current_shard(), sim().now(), id(), cfg_.group, txn_id,
                             static_cast<obs::Auditor::TxnPhase>(phase), applied,
                             audit_replay_);
        });
    } else {
        app_->set_txn_observer({});
    }
}

void Replica::bootstrap(aom::GroupConfig group, NodeId sequencer) {
    NEO_ASSERT_MSG(attached(), "attach the replica to the network before bootstrap()");
    group_ = std::move(group);
    receiver_ = std::make_unique<aom::AomReceiver>(group_, id(), crypto_.get(), keys_, this,
                                                   recv_opts_);
    receiver_->set_deliver([this](aom::Delivery d) { on_delivery(std::move(d)); });
    receiver_->set_on_new_epoch([this](EpochNum, NodeId) { maybe_enter_epoch(); });
    sequencer_ = sequencer;
    receiver_->start_epoch(1, sequencer);
    arm_progress_timer();
}

void Replica::handle(NodeId from, BytesView data) {
    if (silent_) return;
    if (aom::is_aom_packet(data)) {
        receiver_->on_packet(from, data);
        return;
    }
    auto kind = aom::peek_kind(data);
    if (!kind) return;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<MsgKind>(*kind)) {
            case MsgKind::kRequest: on_request_unicast(from, r); break;
            case MsgKind::kQuery: on_query(from, r); break;
            case MsgKind::kQueryReply: on_query_reply(from, r); break;
            case MsgKind::kGapCertReply: on_gap_cert_reply(from, r); break;
            case MsgKind::kGapFind: on_gap_find(from, r); break;
            case MsgKind::kGapRecv: on_gap_recv(from, r); break;
            case MsgKind::kGapDrop: on_gap_drop(from, r); break;
            case MsgKind::kGapDecision: on_gap_decision(from, r); break;
            case MsgKind::kGapPrepare: on_gap_prepare(from, r); break;
            case MsgKind::kGapCommit: on_gap_commit(from, r); break;
            case MsgKind::kSync: on_sync(from, r); break;
            case MsgKind::kViewChange: on_view_change(from, r); break;
            case MsgKind::kViewStart: on_view_start(from, r); break;
            case MsgKind::kEpochStart: on_epoch_start(from, r); break;
            case MsgKind::kStateReq: on_state_req(from, r); break;
            case MsgKind::kStateReply: on_state_reply(from, r); break;
            case MsgKind::kCkptReq: on_ckpt_req(from, r); break;
            case MsgKind::kCkptMeta: on_ckpt_meta(from, r); break;
            case MsgKind::kCkptChunkReq: on_ckpt_chunk_req(from, r); break;
            case MsgKind::kCkptChunk: on_ckpt_chunk(from, r); break;
            case MsgKind::kPing: on_ping(from, r); break;
            case MsgKind::kPong: on_pong(from, r); break;
            default: break;
        }
    } catch (const CodecError&) {
        // Byzantine garbage: drop.
    }
}

// --------------------------------------------------------------- normal op

std::uint64_t Replica::slot_for(EpochNum epoch, SeqNum seq) const {
    auto it = epoch_start_slot_.find(epoch);
    NEO_ASSERT_MSG(it != epoch_start_slot_.end(), "delivery for unstarted epoch");
    return it->second + seq - 1;
}

void Replica::on_delivery(aom::Delivery d) {
    // Raw aom delivery order, before any queueing: drop-notifications
    // consume a sequence number too, so reporting both kinds keeps the
    // per-(node, epoch) sequence contiguous for the auditor.
    if (auditor_) {
        auditor_->on_aom_deliver(sim().current_shard(), sim().now(), id(), d.epoch, d.seq);
    }
    // FIFO discipline: while anything is queued, new deliveries join the
    // queue (they must not overtake items parked during a block or view
    // change). The drain call is a no-op while blocked / mid-view-change.
    if (blocked_slot_.has_value() || status_ != Status::kNormal || !backlog_.empty()) {
        backlog_.push_back(std::move(d));
        drain_backlog();
        return;
    }
    process_delivery(d);
}

void Replica::process_delivery(aom::Delivery& d) {
    if (d.epoch != view_.epoch) return;  // stale epoch traffic
    if (!epoch_start_slot_.contains(d.epoch)) return;  // epoch not started here
    std::uint64_t slot = slot_for(d.epoch, d.seq);
    if (slot <= log_.size()) return;  // already resolved (e.g. via gap agreement)
    if (slot > log_.size() + 1) {
        // A recovered replica that rejoined the aom stream mid-epoch can see
        // the live sequence numbers run ahead of its rebuilt log. Park the
        // delivery and catch up via checkpoint / state transfer instead of
        // asserting contiguity.
        backlog_.push_front(std::move(d));
        if (!recovering_) {
            recovering_ = true;
            status_ = Status::kStateTransfer;
            CkptReq req;
            req.min_slot = log_.size() + 1;
            broadcast(cfg_.others(id()), req.serialize());
            continue_recovery();
        }
        return;
    }

    if (d.kind == aom::Delivery::Kind::kMessage) {
        append_request(std::move(d.cert));
        // The append may unblock gap agreements that concluded for slots
        // just ahead of us.
        apply_gap_outcomes();
    } else {
        on_drop_notification(slot);
    }
}

void Replica::drain_backlog() {
    while (!backlog_.empty() && !blocked_slot_.has_value() && status_ == Status::kNormal) {
        aom::Delivery d = std::move(backlog_.front());
        backlog_.pop_front();
        process_delivery(d);
    }
}

void Replica::append_request(aom::OrderingCert oc) {
    LogEntry entry;
    entry.noop = false;

    // Parse + authenticate the client request carried in the payload. All
    // correct replicas see the same bytes and reach the same verdict, so an
    // invalid request deterministically becomes a non-executed slot.
    auto req = Request::parse_payload(oc.payload);
    if (req.has_value() && crypto_->verify(req->client, req->signed_body(), req->signature)) {
        entry.valid_request = true;
        entry.client = req->client;
        entry.request_id = req->request_id;
    }
    entry.oc = std::move(oc);
    log_.append(std::move(entry));
    crypto_->meter().charge(crypto_->root().costs().hash_base_ns);  // hash chain step

    std::uint64_t slot = log_.size();
    execute_slot(slot);
    maybe_take_checkpoint(slot);
    maybe_start_sync();
}

void Replica::execute_slot(std::uint64_t slot) {
    LogEntry& entry = log_.at(slot);
    NEO_ASSERT(!entry.executed);
    entry.executed = true;
    if (auditor_) {
        auditor_->on_execute(sim().current_shard(), sim().now(), id(), slot,
                             audit_digest(entry), entry.noop, audit_replay_, cfg_.group);
    }
    if (entry.noop || !entry.valid_request) {
        executed_ = slot;
        return;
    }

    auto req = Request::parse_payload(entry.oc.payload);
    NEO_ASSERT(req.has_value());

    // At-most-once: duplicates (client retries that got sequenced twice)
    // re-send the cached reply instead of re-executing.
    ClientRecord& rec = clients_[entry.client];
    if (entry.request_id <= rec.last_request_id) {
        executed_ = slot;
        if (entry.request_id == rec.last_request_id && !rec.cached_reply.empty()) {
            send_to(entry.client, rec.cached_reply);
        }
        return;
    }

    obs::TraceSink* tr = sim().trace();
    std::uint64_t tid = tr ? obs::trace_id(entry.oc.payload) : 0;
    if (tr) tr->span_begin(sim().now(), id(), "execute", tid, slot);
    charge(app_->execute_cost_ns(req->op));
    entry.result = app_->execute(req->op);
    entry.applied = true;
    executed_ = slot;
    ++stats_.requests_executed;
    if (tr) {
        tr->phase(sim().now(), id(), "execute", slot);
        tr->span_end(sim().now(), id(), "execute", tid, slot);
    }
    pending_client_requests_.erase(entry.client);
    send_reply(slot);
}

void Replica::send_reply(std::uint64_t slot) {
    LogEntry& entry = log_.at(slot);
    Reply reply;
    reply.view = view_;
    reply.replica = id();
    reply.slot = slot;
    reply.log_hash = log_.hash_at(slot);
    reply.request_id = entry.request_id;
    reply.result = entry.result;
    // Equivocation fault injection: this replica's replies diverge from the
    // honest ones (a poison byte, properly MAC'd). Clients still commit off
    // the honest 2f+1 matching replies.
    if (equivocate_) reply.result.push_back(0xEB);
    reply.mac = crypto_->mac_for(entry.client, reply.mac_body());
    sim::Packet wire(reply.serialize());

    ClientRecord& rec = clients_[entry.client];
    rec.last_request_id = entry.request_id;
    rec.last_result = entry.result;
    rec.cached_reply = wire;
    send_to(entry.client, std::move(wire));
    ++stats_.replies_sent;
}

// ------------------------------------------------- client unicast fallback

void Replica::on_request_unicast(NodeId from, Reader& r) {
    Request req = Request::parse(r);
    if (req.client != from) return;

    auto it = clients_.find(req.client);
    if (it != clients_.end() && req.request_id <= it->second.last_request_id) {
        if (req.request_id == it->second.last_request_id && !it->second.cached_reply.empty()) {
            send_to(req.client, it->second.cached_reply);
        }
        return;
    }
    if (!crypto_->verify(req.client, req.signed_body(), req.signature)) return;

    // The client claims it multicast this via aom and got no reply. If it
    // stays undelivered past the timeout the sequencer is suspect (§5.5).
    auto pit = pending_client_requests_.find(req.client);
    if (pit == pending_client_requests_.end() || pit->second.request_id < req.request_id) {
        pending_client_requests_[req.client] = {req.request_id, sim().now()};
    }
}

// ----------------------------------------------------------- gap agreement

void Replica::on_drop_notification(std::uint64_t slot) {
    NEO_ASSERT(slot == log_.size() + 1);
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "gap_start", slot);
    blocked_slot_ = slot;
    blocked_since_ = sim().now();
    GapRound& round = gaps_[slot];
    if (cfg_.leader_of(view_) == id()) {
        leader_start_gap_agreement(slot);
    } else {
        start_query(slot);
        // If the leader's GAP-FIND raced ahead of our drop-notification,
        // answer it now.
        if (round.find_received && !round.sent_gap_drop) {
            GapDrop drop;
            drop.view = view_;
            drop.replica = id();
            drop.slot = slot;
            drop.signature = crypto_->sign(drop.signed_body());
            round.sent_gap_drop = true;
            send_to(cfg_.leader_of(view_), drop.serialize());
        }
    }
}

void Replica::start_query(std::uint64_t slot) {
    GapRound& round = gaps_[slot];
    if (round.resolved) return;
    Query q;
    q.view = view_;
    q.slot = slot;
    send_to(cfg_.leader_of(view_), q.serialize());
    ++stats_.queries_sent;

    round.query_timer_armed = true;
    round.query_timer = set_timer(cfg_.query_retry, [this, slot] {
        auto it = gaps_.find(slot);
        if (it == gaps_.end() || it->second.resolved || status_ != Status::kNormal) return;
        // Even after voting drop we keep querying: peers whose agreement
        // already concluded answer with the gap certificate (the decision
        // itself), which we may act on — only bare ordering certificates
        // are off-limits after a drop vote (§5.4).
        start_query(slot);
    }, "query_retry");
}

void Replica::on_query(NodeId from, Reader& r) {
    Query q = Query::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (q.view != view_) return;
    if (log_.has(q.slot) && !log_.at(q.slot).noop) {
        QueryReply qr;
        qr.view = view_;
        qr.slot = q.slot;
        qr.oc = log_.at(q.slot).oc;
        send_to(from, qr.serialize());
    } else if (log_.has(q.slot)) {
        // Committed no-op: hand over the agreement's certificate so a
        // replica that voted drop (and must ignore plain query-replies,
        // §5.4) can still conclude when everyone else already resolved.
        GapCertReply gr;
        gr.view = view_;
        gr.slot = q.slot;
        gr.cert = log_.at(q.slot).gap_cert;
        send_to(from, gr.serialize());
    } else {
        pending_queries_[q.slot].insert(from);
    }
}

void Replica::on_gap_cert_reply(NodeId from, Reader& r) {
    GapCertReply m = GapCertReply::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (!blocked_slot_.has_value() || *blocked_slot_ != m.slot) return;
    if (m.cert.slot != m.slot) return;
    if (m.cert.recv && !m.oc.has_value()) return;
    if (!verify_gap_certificate(m.cert, cfg_, *crypto_)) return;
    if (m.cert.recv && !verify_oc_for_slot(*m.oc, m.slot)) return;

    GapRound& round = gaps_[m.slot];
    if (round.resolved && round.applied) return;
    finalize_gap(m.slot, m.cert.recv, m.oc, m.cert);
}

void Replica::on_query_reply(NodeId from, Reader& r) {
    QueryReply qr = QueryReply::parse(r);
    (void)from;
    if (qr.view != view_) return;
    if (!blocked_slot_.has_value() || *blocked_slot_ != qr.slot) return;
    GapRound& round = gaps_[qr.slot];
    if (round.sent_gap_drop) return;  // §5.4: ignore query-replies once we voted drop
    if (!verify_oc_for_slot(qr.oc, qr.slot)) return;
    fill_slot_with_oc(qr.slot, qr.oc);
    round.resolved = true;
    round.applied = true;
    round.outcome_recv = true;
    unblock(qr.slot);
    apply_gap_outcomes();
}

bool Replica::verify_oc_for_slot(const aom::OrderingCert& oc, std::uint64_t slot) {
    auto it = epoch_start_slot_.find(oc.epoch);
    if (it == epoch_start_slot_.end()) return false;
    if (it->second + oc.seq - 1 != slot) return false;
    return aom::verify_cert(oc, receiver_->verify_context());
}

void Replica::leader_start_gap_agreement(std::uint64_t slot) {
    GapRound& round = gaps_[slot];
    if (round.find_sent || round.resolved) return;
    round.find_sent = true;
    ++stats_.gap_agreements_started;

    // The leader's own drop-notification counts as its gap-drop-message.
    GapDrop own;
    own.view = view_;
    own.replica = id();
    own.slot = slot;
    own.signature = crypto_->sign(own.signed_body());
    round.drops[id()] = own;

    GapFind find;
    find.view = view_;
    find.slot = slot;
    find.signature = crypto_->sign(find.signed_body());
    broadcast(cfg_.others(id()), find.serialize());
    leader_try_decide(slot);
    arm_gap_retry(slot);
}

// Gap-round messages need retransmission under loss: a single dropped
// GAP-FIND or GAP-DECISION would otherwise stall the slot until a view
// change. Each unresolved round periodically re-sends whatever this
// replica last contributed.
void Replica::arm_gap_retry(std::uint64_t slot) {
    GapRound& round = gaps_[slot];
    if (round.retry_armed || round.resolved) return;
    round.retry_armed = true;
    set_timer(cfg_.query_retry, [this, slot] {
        auto it = gaps_.find(slot);
        if (it == gaps_.end()) return;
        GapRound& r = it->second;
        r.retry_armed = false;
        if (r.resolved || status_ != Status::kNormal) return;

        bool leader = cfg_.leader_of(view_) == id();
        if (leader && r.find_sent && !r.decision.has_value()) {
            GapFind find;
            find.view = view_;
            find.slot = slot;
            find.signature = crypto_->sign(find.signed_body());
            broadcast(cfg_.others(id()), find.serialize());
        }
        if (leader && r.decision.has_value()) {
            broadcast(cfg_.others(id()), r.decision->serialize());
        }
        if (!leader && r.sent_gap_drop && !r.decision.has_value()) {
            GapDrop drop;
            drop.view = view_;
            drop.replica = id();
            drop.slot = slot;
            drop.signature = crypto_->sign(drop.signed_body());
            send_to(cfg_.leader_of(view_), drop.serialize());
        }
        if (r.prepare_sent) {
            auto pit = r.prepares.find(id());
            if (pit != r.prepares.end()) broadcast(cfg_.others(id()), pit->second.serialize());
        }
        if (r.commit_sent) {
            auto cit = r.commits.find(id());
            if (cit != r.commits.end()) broadcast(cfg_.others(id()), cit->second.serialize());
        }
        arm_gap_retry(slot);
    }, "gap_retry");
}

void Replica::on_gap_find(NodeId from, Reader& r) {
    GapFind m = GapFind::parse(r);
    if (m.view != view_ || from != cfg_.leader_of(view_)) return;
    if (!crypto_->verify(from, m.signed_body(), m.signature)) return;

    GapRound& round = gaps_[m.slot];
    round.find_received = true;

    if (log_.has(m.slot) && !log_.at(m.slot).noop) {
        GapRecv recv;
        recv.view = view_;
        recv.slot = m.slot;
        recv.oc = log_.at(m.slot).oc;
        send_to(from, recv.serialize());
    } else if (blocked_slot_.has_value() && *blocked_slot_ == m.slot && !round.sent_gap_drop) {
        GapDrop drop;
        drop.view = view_;
        drop.replica = id();
        drop.slot = m.slot;
        drop.signature = crypto_->sign(drop.signed_body());
        round.sent_gap_drop = true;
        send_to(from, drop.serialize());
    }
    // Otherwise: we have not reached this slot yet; we will answer when the
    // delivery or drop-notification arrives (find_received_ is recorded).
}

void Replica::on_gap_recv(NodeId from, Reader& r) {
    GapRecv m = GapRecv::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (m.view != view_ || cfg_.leader_of(view_) != id()) return;
    GapRound& round = gaps_[m.slot];
    if (round.decision.has_value() || round.resolved) return;
    if (!verify_oc_for_slot(m.oc, m.slot)) return;

    GapDecision d;
    d.view = view_;
    d.slot = m.slot;
    d.recv = true;
    d.oc = m.oc;
    d.signature = crypto_->sign(d.signed_body());
    broadcast_decision(m.slot, std::move(d));
}

void Replica::on_gap_drop(NodeId from, Reader& r) {
    GapDrop m = GapDrop::parse(r);
    if (!cfg_.is_replica(from) || m.replica != from) return;
    if (m.view != view_ || cfg_.leader_of(view_) != id()) return;
    if (!crypto_->verify(from, m.signed_body(), m.signature)) return;
    GapRound& round = gaps_[m.slot];
    if (round.decision.has_value() || round.resolved) return;
    round.drops[from] = std::move(m);
    leader_try_decide(m.slot);
}

void Replica::leader_try_decide(std::uint64_t slot) {
    GapRound& round = gaps_[slot];
    if (round.decision.has_value() || round.resolved) return;

    // One valid oc decides recv immediately; this leader path is handled in
    // on_gap_recv. Here: 2f+1 distinct drops decide drop.
    if (round.drops.size() >= cfg_.quorum()) {
        GapDecision d;
        d.view = view_;
        d.slot = slot;
        d.recv = false;
        for (const auto& [node, drop] : round.drops) {
            d.drops.push_back(drop);
            if (d.drops.size() == cfg_.quorum()) break;
        }
        d.signature = crypto_->sign(d.signed_body());
        broadcast_decision(slot, std::move(d));
    }
}

void Replica::broadcast_decision(std::uint64_t slot, GapDecision decision) {
    GapRound& round = gaps_[slot];
    broadcast(cfg_.others(id()), decision.serialize());
    round.decision = std::move(decision);
    try_gap_progress(slot);
}

bool Replica::validate_decision(const GapDecision& d) {
    if (d.recv) {
        return d.oc.has_value() && verify_oc_for_slot(*d.oc, d.slot);
    }
    // 2f+1 distinct valid gap-drops for this (view, slot).
    std::set<NodeId> seen;
    std::size_t valid = 0;
    for (const auto& drop : d.drops) {
        if (!cfg_.is_replica(drop.replica)) continue;
        if (drop.view != d.view || drop.slot != d.slot) continue;
        if (!seen.insert(drop.replica).second) continue;
        if (!crypto_->verify(drop.replica, drop.signed_body(), drop.signature)) continue;
        ++valid;
    }
    return valid >= cfg_.quorum();
}

void Replica::on_gap_decision(NodeId from, Reader& r) {
    GapDecision m = GapDecision::parse(r);
    if (m.view != view_ || from != cfg_.leader_of(view_)) return;
    if (from == id()) return;
    GapRound& round = gaps_[m.slot];
    if (round.decision.has_value() || round.resolved) return;
    if (!crypto_->verify(from, m.signed_body(), m.signature)) return;
    if (!validate_decision(m)) return;
    std::uint64_t slot = m.slot;
    round.decision = std::move(m);
    try_gap_progress(slot);
}

void Replica::on_gap_prepare(NodeId from, Reader& r) {
    GapPrepare m = GapPrepare::parse(r);
    if (!cfg_.is_replica(from) || m.replica != from || m.view != view_) return;
    if (!crypto_->verify(from, m.signed_body(), m.signature)) return;
    std::uint64_t slot = m.slot;
    GapRound& round = gaps_[slot];
    round.prepares[from] = std::move(m);
    try_gap_progress(slot);
}

void Replica::on_gap_commit(NodeId from, Reader& r) {
    GapCommit m = GapCommit::parse(r);
    if (!cfg_.is_replica(from) || m.replica != from || m.view != view_) return;
    if (!crypto_->verify(from, m.signed_body(), m.signature)) return;
    std::uint64_t slot = m.slot;
    GapRound& round = gaps_[slot];
    round.commits[from] = std::move(m);
    try_gap_progress(slot);
}

void Replica::try_gap_progress(std::uint64_t slot) {
    GapRound& round = gaps_[slot];
    if (round.resolved) return;

    // Decision validated -> broadcast our prepare (once).
    if (round.decision.has_value() && !round.prepare_sent) {
        round.prepare_sent = true;
        arm_gap_retry(slot);
        GapPrepare p;
        p.view = view_;
        p.replica = id();
        p.slot = slot;
        p.recv = round.decision->recv;
        p.signature = crypto_->sign(p.signed_body());
        round.prepares[id()] = p;
        broadcast(cfg_.others(id()), p.serialize());
    }

    // 2f matching prepares + validated decision -> broadcast commit (once).
    if (round.decision.has_value() && !round.commit_sent) {
        std::size_t matching = 0;
        for (const auto& [node, p] : round.prepares) {
            if (p.recv == round.decision->recv) ++matching;
        }
        if (matching >= static_cast<std::size_t>(2 * cfg_.f)) {
            round.commit_sent = true;
            arm_gap_retry(slot);
            GapCommit c;
            c.view = view_;
            c.replica = id();
            c.slot = slot;
            c.recv = round.decision->recv;
            c.signature = crypto_->sign(c.signed_body());
            round.commits[id()] = c;
            broadcast(cfg_.others(id()), c.serialize());
        }
    }

    // 2f+1 commits with the same outcome -> commit the slot.
    for (bool recv : {false, true}) {
        std::vector<SignerSig> sigs;
        for (const auto& [node, c] : round.commits) {
            if (c.recv == recv) sigs.push_back(SignerSig{node, c.signature});
        }
        if (sigs.size() >= cfg_.quorum()) {
            sigs.resize(cfg_.quorum());
            GapCertificate cert;
            cert.view = view_;
            cert.slot = slot;
            cert.recv = recv;
            cert.commits = std::move(sigs);
            std::optional<aom::OrderingCert> oc;
            if (round.decision.has_value() && round.decision->recv && round.decision->oc) {
                oc = round.decision->oc;
            }
            finalize_gap(slot, recv, oc, std::move(cert));
            return;
        }
    }
}

void Replica::finalize_gap(std::uint64_t slot, bool recv,
                           const std::optional<aom::OrderingCert>& oc, GapCertificate cert) {
    GapRound& round = gaps_[slot];
    if (round.resolved) return;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "gap_resolve", slot, recv ? 1 : 0);
    }
    round.resolved = true;
    round.outcome_recv = recv;
    round.outcome_oc = oc;
    round.outcome_cert = std::move(cert);
    apply_gap_outcomes();
}

void Replica::apply_gap_outcomes() {
    // Outcomes apply strictly in log order: an agreement for a slot ahead of
    // our log waits until the intermediate slots are filled.
    bool progressed = true;
    while (progressed) {
        progressed = false;
        for (auto& [slot, round] : gaps_) {
            if (!round.resolved || round.applied) continue;
            if (slot > log_.size() + 1) break;  // ordered map: nothing earlier left

            if (round.outcome_recv) {
                if (!log_.has(slot)) {
                    if (round.outcome_oc.has_value()) {
                        fill_slot_with_oc(slot, *round.outcome_oc);
                    } else {
                        // Committed as recv but we lack the certificate:
                        // fetch it from the leader; stay blocked meanwhile.
                        round.resolved = false;
                        start_query(slot);
                        return;
                    }
                }
            } else {
                commit_noop(slot, round.outcome_cert);
            }
            round.applied = true;
            progressed = true;
            unblock(slot);
            break;  // map may have been mutated (unblock -> drain); restart
        }
    }
}

void Replica::fill_slot_with_oc(std::uint64_t slot, const aom::OrderingCert& oc) {
    if (log_.has(slot)) return;  // already present (request can't overwrite no-op)
    NEO_ASSERT(slot == log_.size() + 1);
    append_request(oc);
    // Serve replicas whose queries we had parked. Reply from the argument,
    // not log_.at(slot): append_request may have executed the slot and
    // taken a checkpoint that GC'd it out of the log already.
    auto it = pending_queries_.find(slot);
    if (it != pending_queries_.end()) {
        QueryReply qr;
        qr.view = view_;
        qr.slot = slot;
        qr.oc = oc;
        sim::Packet wire(qr.serialize());
        for (NodeId peer : it->second) send_to(peer, wire);
        pending_queries_.erase(it);
    }
}

void Replica::commit_noop(std::uint64_t slot, GapCertificate cert) {
    ++stats_.gap_noops_committed;
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "gap_noop", slot);
    view_noop_certs_.push_back(cert);
    if (!log_.has(slot)) {
        NEO_ASSERT(slot == log_.size() + 1);
        LogEntry entry;
        entry.noop = true;
        entry.gap_cert = std::move(cert);
        log_.append(std::move(entry));
        log_.at(slot).executed = true;
        executed_ = slot;
        if (auditor_) {
            auditor_->on_execute(sim().current_shard(), sim().now(), id(), slot, 0, true,
                                 audit_replay_, cfg_.group);
        }
        maybe_take_checkpoint(slot);
        maybe_start_sync();
        return;
    }
    if (log_.at(slot).noop) return;

    // Speculatively executed request superseded by a committed no-op: roll
    // back and re-execute the tail (§5.4 last paragraph).
    LogEntry entry;
    entry.noop = true;
    entry.gap_cert = std::move(cert);
    entry.executed = true;
    rollback_and_reexecute_replace(slot, std::move(entry));
}

void Replica::unblock(std::uint64_t slot) {
    if (blocked_slot_.has_value() && *blocked_slot_ == slot) {
        blocked_slot_.reset();
        drain_backlog();
    }
}

// ----------------------------------------------------- execution / rollback

void Replica::rollback_and_reexecute_replace(std::uint64_t slot, LogEntry replacement) {
    ++stats_.rollbacks;
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "rollback", slot);
    // An eager snapshot covering the rolled-back suffix is void.
    if (pending_ckpt_.has_value() && pending_ckpt_->slot >= slot) pending_ckpt_.reset();
    // Undo every applied application op at slots >= `slot` (LIFO).
    for (std::uint64_t s = log_.size(); s >= slot; --s) {
        LogEntry& e = log_.at(s);
        if (e.applied) {
            app_->undo_last();
            e.applied = false;
        }
        if (s == slot) break;
    }
    log_.replace(slot, std::move(replacement));

    // Re-execute the tail; replies are re-sent with the new log hashes.
    // These slots were all reported to the auditor once already, so the
    // repeat records carry replay=true (frontier-check exempt). The frontier
    // tracks the replay so checkpoint boundaries inside the tail snapshot
    // the exact re-executed state.
    executed_ = slot - 1;
    for (std::uint64_t s = slot; s <= log_.size(); ++s) {
        LogEntry& e = log_.at(s);
        if (auditor_) {
            auditor_->on_execute(sim().current_shard(), sim().now(), id(), s, audit_digest(e),
                                 e.noop, true, cfg_.group);
        }
        if (e.noop || !e.valid_request) {
            e.executed = true;
            executed_ = s;
            maybe_take_checkpoint(s);
            continue;
        }
        auto req = Request::parse_payload(e.oc.payload);
        NEO_ASSERT(req.has_value());
        charge(app_->execute_cost_ns(req->op));
        e.result = app_->execute(req->op);
        e.executed = true;
        e.applied = true;
        executed_ = s;
        send_reply(s);
        maybe_take_checkpoint(s);
    }
    executed_ = log_.size();
}

// ----------------------------------------------------------- state sync

void Replica::maybe_start_sync() {
    if (status_ != Status::kNormal) return;
    std::uint64_t target = (log_.size() / cfg_.sync_interval) * cfg_.sync_interval;
    if (target == 0 || target <= last_sync_broadcast_slot_) return;
    last_sync_broadcast_slot_ = target;

    SyncMsg m;
    m.view = view_;
    m.replica = id();
    m.slot = target;
    m.log_hash = log_.hash_at(target);
    // Bind the application-state root when this boundary carries an eager
    // snapshot: 2f+1 matching (log_hash, app_hash) pairs make the
    // checkpoint stable and transferable.
    if (pending_ckpt_.has_value() && pending_ckpt_->slot == target) {
        m.app_hash = pending_ckpt_->tree->root();
    }
    // Ship gap certificates for no-ops committed this view above the sync
    // point so lagging replicas overwrite divergent speculation (§B.2).
    for (const auto& cert : view_noop_certs_) {
        if (cert.slot <= target) m.drops.push_back(cert);
    }
    m.signature = crypto_->sign(m.signed_body());
    pending_syncs_[target][id()] = m;
    broadcast(cfg_.others(id()), m.serialize());
    try_complete_sync(target);
}

void Replica::on_sync(NodeId from, Reader& r) {
    SyncMsg m = SyncMsg::parse(r);
    if (!cfg_.is_replica(from) || m.replica != from) return;
    if (m.view != view_) return;
    if (m.slot <= sync_point_) return;
    if (!crypto_->verify(from, m.signed_body(), m.signature)) return;
    std::uint64_t slot = m.slot;
    pending_syncs_[slot][from] = std::move(m);
    try_complete_sync(slot);
}

void Replica::try_complete_sync(std::uint64_t slot) {
    if (slot <= sync_point_ || !log_.has(slot)) return;
    auto it = pending_syncs_.find(slot);
    if (it == pending_syncs_.end() || it->second.size() < cfg_.quorum()) return;

    // First apply committed no-ops we may have missed.
    for (auto& [node, msg] : it->second) {
        for (const auto& cert : msg.drops) {
            if (!cert.recv && log_.has(cert.slot) && !log_.at(cert.slot).noop) {
                if (verify_gap_certificate(cert, cfg_, *crypto_)) {
                    LogEntry entry;
                    entry.noop = true;
                    entry.gap_cert = cert;
                    entry.executed = true;
                    rollback_and_reexecute_replace(cert.slot, std::move(entry));
                }
            }
        }
    }

    // Then count signatures matching BOTH our log hash and our app-state
    // root at this boundary (zero when no eager snapshot is held — e.g. a
    // replica whose frontier jumped over the boundary during a merge; it
    // skips this certificate and catches up at the next one).
    Digest32 my_hash = log_.hash_at(slot);
    Digest32 my_app{};
    if (pending_ckpt_.has_value() && pending_ckpt_->slot == slot) {
        my_app = pending_ckpt_->tree->root();
    }
    std::vector<SignerSig> sigs;
    for (const auto& [node, msg] : it->second) {
        if (msg.log_hash == my_hash && msg.app_hash == my_app) {
            sigs.push_back(SignerSig{node, msg.signature});
        }
    }
    if (sigs.size() < cfg_.quorum()) return;
    sigs.resize(cfg_.quorum());

    sync_point_ = slot;
    sync_cert_.view = view_;
    sync_cert_.slot = slot;
    sync_cert_.log_hash = my_hash;
    sync_cert_.app_hash = my_app;
    sync_cert_.sigs = std::move(sigs);
    ++stats_.syncs_completed;
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "sync_complete", slot);

    // Tell the app its prefix is durable (count applied ops up to slot,
    // extending the running counter from the previous sync point).
    for (std::uint64_t s = committed_ops_slot_ + 1; s <= slot; ++s) {
        if (log_.at(s).applied) ++committed_ops_;
    }
    committed_ops_slot_ = slot;
    app_->commit_prefix(committed_ops_);

    // Prune bookkeeping below the new sync point.
    pending_syncs_.erase(pending_syncs_.begin(), pending_syncs_.upper_bound(slot));
    std::erase_if(view_noop_certs_, [slot](const GapCertificate& c) { return c.slot <= slot; });
    std::erase_if(gaps_, [slot](const auto& kv) { return kv.first <= slot && kv.second.resolved; });

    // Checkpoint promotion: the certificate binds our snapshot's root, so
    // the eager snapshot becomes the stable checkpoint and the log prefix
    // it covers is garbage-collected.
    if (pending_ckpt_.has_value() && pending_ckpt_->slot == slot && my_app != Digest32{}) {
        pending_ckpt_->log_hash = my_hash;
        pending_ckpt_->cert = sync_cert_;
        stable_ckpt_ = std::move(pending_ckpt_);
        pending_ckpt_.reset();
        log_.gc_prefix(slot);
        ++stats_.checkpoints_stable;
        if (obs::TraceSink* tr = sim().trace()) {
            tr->phase(sim().now(), id(), "ckpt_stable", slot);
        }
    }
}

// --------------------------------------- checkpointing + crash recovery

std::uint64_t Replica::audit_digest(const LogEntry& e) const {
    if (e.noop) return 0;
    std::uint64_t d = obs::trace_id(e.oc.payload);
    // Equivocation fault injection: report a corrupted execution digest so
    // this replica disagrees with the honest ones at the same slot.
    return equivocate_ ? (d ^ 0x6571756976ULL) : d;
}

void Replica::maybe_take_checkpoint(std::uint64_t slot) {
    if (cfg_.checkpoint_interval == 0) return;
    if (slot == 0 || slot % cfg_.checkpoint_interval != 0) return;
    if (executed_ != slot) return;  // snapshot only at the exact frontier
    if (slot < committed_ops_slot_) return;
    if (stable_ckpt_.has_value() && slot <= stable_ckpt_->slot) return;
    if (pending_ckpt_.has_value() && pending_ckpt_->slot >= slot) return;

    Checkpoint ck;
    ck.slot = slot;
    ck.applied_ops = committed_ops_;
    for (std::uint64_t s = committed_ops_slot_ + 1; s <= slot; ++s) {
        if (log_.at(s).applied) ++ck.applied_ops;
    }
    ck.payload = build_checkpoint_payload(slot, ck.applied_ops);
    ck.tree = std::make_unique<app::MerkleTree>(
        BytesView(ck.payload.data(), ck.payload.size()));
    ck.log_hash = log_.hash_at(slot);
    // Snapshot + tree construction cost: one hash per chunk for the leaves
    // plus roughly as many again for the interior levels.
    crypto_->meter().charge(static_cast<std::int64_t>(2 * ck.tree->n_chunks()) *
                            crypto_->root().costs().hash_base_ns);
    pending_ckpt_ = std::move(ck);
    ++stats_.checkpoints_taken;
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "ckpt_take", slot);
}

Bytes Replica::build_checkpoint_payload(std::uint64_t slot, std::uint64_t applied_ops) const {
    Writer w(256);
    w.u64(slot);
    w.u64(applied_ops);
    w.blob(app_->snapshot());
    w.u32(static_cast<std::uint32_t>(clients_.size()));
    for (const auto& [client, rec] : clients_) {
        w.u32(client);
        w.u64(rec.last_request_id);
        w.blob(rec.last_result);
    }
    // Only epochs that started at or before the boundary: later entries may
    // exist on a subset of the replicas, and the payload must be a
    // deterministic function of the committed prefix.
    std::uint32_t n_epochs = 0;
    for (const auto& [epoch, start] : epoch_start_slot_) {
        if (start <= slot) ++n_epochs;
    }
    w.u32(n_epochs);
    for (const auto& [epoch, start] : epoch_start_slot_) {
        if (start <= slot) {
            w.u64(epoch);
            w.u64(start);
        }
    }
    return std::move(w).take();
}

void Replica::install_checkpoint(std::uint64_t slot, const Digest32& log_hash,
                                 const SyncCertificate& cert, const Bytes& payload,
                                 bool adopt_as_stable) {
    // Parse everything first (CodecError propagates to the dispatcher and
    // the packet is dropped without touching replica state).
    Reader r(BytesView(payload.data(), payload.size()));
    std::uint64_t pslot = r.u64();
    std::uint64_t applied_ops = r.u64();
    Bytes snap = r.blob();
    std::uint32_t n_clients = r.u32();
    std::vector<std::tuple<NodeId, std::uint64_t, Bytes>> client_rows;
    client_rows.reserve(n_clients);
    for (std::uint32_t i = 0; i < n_clients; ++i) {
        NodeId client = r.u32();
        std::uint64_t last = r.u64();
        client_rows.emplace_back(client, last, r.blob());
    }
    std::uint32_t n_epochs = r.u32();
    std::vector<std::pair<EpochNum, std::uint64_t>> epoch_rows;
    epoch_rows.reserve(n_epochs);
    for (std::uint32_t i = 0; i < n_epochs; ++i) {
        EpochNum epoch = r.u64();
        std::uint64_t start = r.u64();
        epoch_rows.emplace_back(epoch, start);
    }
    r.expect_end();
    if (pslot != slot) throw CodecError("checkpoint payload/slot mismatch");

    app_->restore(BytesView(snap.data(), snap.size()));
    log_.reset_base(slot, log_hash);
    executed_ = slot;
    sync_point_ = slot;
    committed_ops_ = applied_ops;
    committed_ops_slot_ = slot;
    app_->commit_prefix(committed_ops_);
    sync_cert_ = cert;
    last_sync_broadcast_slot_ = std::max(last_sync_broadcast_slot_, slot);

    clients_.clear();
    for (auto& [client, last, result] : client_rows) {
        ClientRecord rec;
        rec.last_request_id = last;
        rec.last_result = std::move(result);
        // cached_reply stays empty: replies carry per-replica MACs and are
        // not transferable; duplicate re-sends are answered by peers.
        clients_[client] = std::move(rec);
    }
    for (const auto& [epoch, start] : epoch_rows) {
        epoch_start_slot_.insert({epoch, start});  // merge; never overwrite
    }

    gaps_.clear();
    blocked_slot_.reset();
    pending_queries_.clear();
    pending_syncs_.erase(pending_syncs_.begin(), pending_syncs_.upper_bound(slot));
    std::erase_if(view_noop_certs_, [slot](const GapCertificate& c) { return c.slot <= slot; });
    if (pending_ckpt_.has_value() && pending_ckpt_->slot <= slot) pending_ckpt_.reset();

    if (adopt_as_stable && (!stable_ckpt_.has_value() || stable_ckpt_->slot < slot)) {
        Checkpoint ck;
        ck.slot = slot;
        ck.applied_ops = applied_ops;
        ck.payload = payload;
        ck.tree = std::make_unique<app::MerkleTree>(
            BytesView(ck.payload.data(), ck.payload.size()));
        ck.log_hash = log_hash;
        ck.cert = cert;
        stable_ckpt_ = std::move(ck);
    }
    ++stats_.ckpt_installs;
    if (auditor_) {
        // Restore marker: a replay no-op record at the new frontier resets
        // the auditor's per-replica execution frontier so the recovering
        // replica's next live slot is not flagged as a regression.
        auditor_->on_execute(sim().current_shard(), sim().now(), id(), slot, 0, true, true,
                             cfg_.group);
    }
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "ckpt_install", slot);
}

void Replica::send_ckpt_meta(NodeId to) {
    if (!stable_ckpt_.has_value()) return;
    CkptMeta m;
    m.slot = stable_ckpt_->slot;
    m.n_chunks = stable_ckpt_->tree->n_chunks();
    m.chunk_size = static_cast<std::uint32_t>(stable_ckpt_->tree->chunk_size());
    m.cert = stable_ckpt_->cert;
    send_to(to, m.serialize());
}

void Replica::on_ckpt_req(NodeId from, Reader& r) {
    CkptReq req = CkptReq::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (!stable_ckpt_.has_value() || stable_ckpt_->slot < req.min_slot) return;
    send_ckpt_meta(from);
}

void Replica::on_ckpt_meta(NodeId from, Reader& r) {
    CkptMeta m = CkptMeta::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (cfg_.checkpoint_interval == 0) return;
    if (m.slot <= log_.size() || m.slot <= sync_point_) return;  // nothing to gain
    if (ckpt_fetch_.has_value() && ckpt_fetch_->slot >= m.slot) return;
    if (m.n_chunks == 0 || m.chunk_size == 0) return;
    if (m.cert.slot != m.slot || m.cert.app_hash == Digest32{}) return;
    if (!verify_sync_certificate(m.cert, cfg_, *crypto_)) return;

    CkptFetch f;
    f.slot = m.slot;
    f.cert = m.cert;
    f.n_chunks = m.n_chunks;
    f.chunks.resize(m.n_chunks);
    f.have.assign(m.n_chunks, false);
    f.source = from;
    ckpt_fetch_ = std::move(f);
    for (std::uint32_t i = 0; i < m.n_chunks; ++i) {
        CkptChunkReq cr;
        cr.slot = m.slot;
        cr.index = i;
        send_to(from, cr.serialize());
    }
}

void Replica::on_ckpt_chunk_req(NodeId from, Reader& r) {
    CkptChunkReq req = CkptChunkReq::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (!stable_ckpt_.has_value() || stable_ckpt_->slot != req.slot) return;
    if (req.index >= stable_ckpt_->tree->n_chunks()) return;
    CkptChunk c;
    c.slot = req.slot;
    c.index = req.index;
    c.n_chunks = stable_ckpt_->tree->n_chunks();
    BytesView chunk = stable_ckpt_->tree->chunk(req.index);
    c.chunk.assign(chunk.data(), chunk.data() + chunk.size());
    c.siblings = stable_ckpt_->tree->prove(req.index).siblings;
    send_to(from, c.serialize());
}

void Replica::on_ckpt_chunk(NodeId from, Reader& r) {
    CkptChunk c = CkptChunk::parse(r);
    (void)from;
    if (!ckpt_fetch_.has_value()) return;
    CkptFetch& f = *ckpt_fetch_;
    if (c.slot != f.slot || c.n_chunks != f.n_chunks) return;
    if (c.index >= f.n_chunks || f.have[c.index]) return;

    app::MerkleProof proof;
    proof.index = c.index;
    proof.n_leaves = f.n_chunks;
    proof.siblings = c.siblings;
    crypto_->meter().charge(static_cast<std::int64_t>(proof.siblings.size() + 1) *
                            crypto_->root().costs().hash_base_ns);
    if (!app::merkle_verify(f.cert.app_hash, BytesView(c.chunk.data(), c.chunk.size()),
                            proof)) {
        return;  // Byzantine server: chunk does not belong to the root
    }
    f.chunks[c.index] = std::move(c.chunk);
    f.have[c.index] = true;
    if (++f.n_have < f.n_chunks) return;

    Bytes payload;
    for (const auto& ch : f.chunks) payload.insert(payload.end(), ch.begin(), ch.end());
    std::uint64_t slot = f.slot;
    SyncCertificate cert = f.cert;
    ckpt_fetch_.reset();
    install_checkpoint(slot, cert.log_hash, cert, payload, /*adopt_as_stable=*/true);

    if (recovering_) {
        continue_recovery();
    } else if (pending_view_start_.has_value()) {
        // The view-change state transfer was answered with a checkpoint:
        // retry the deferred VIEW-START against the restored log.
        ViewStart vs = *pending_view_start_;
        pending_view_start_.reset();
        status_ = Status::kViewChange;
        state_transfer_active_ = false;
        adopt_view_start(vs);
    } else {
        state_transfer_active_ = false;
    }
}

void Replica::crash() {
    if (crashed_) return;
    crashed_ = true;
    ++stats_.crashes;
    if (obs::TraceSink* tr = sim().trace()) tr->phase(sim().now(), id(), "crash", log_.size());
    net().set_node_down(id(), true);
    invalidate_timers();

    // Volatile state is lost. Durable across the crash: crypto keys, the
    // view/epoch bookkeeping (view_, target_view_, epoch_start_slot_,
    // epoch_certs_, sequencer_) and the latest stable checkpoint.
    log_ = Log{};
    executed_ = 0;
    sync_point_ = 0;
    committed_ops_ = 0;
    committed_ops_slot_ = 0;
    sync_cert_ = SyncCertificate{};
    last_sync_broadcast_slot_ = 0;
    pending_syncs_.clear();
    view_noop_certs_.clear();
    gaps_.clear();
    blocked_slot_.reset();
    backlog_.clear();
    pending_queries_.clear();
    clients_.clear();
    pending_client_requests_.clear();
    view_changes_.clear();
    pending_view_start_.reset();
    vc_rebroadcast_armed_ = false;
    progress_timer_armed_ = false;
    epoch_starts_.clear();
    waiting_epoch_.reset();
    probe_join_view_.reset();
    state_transfer_active_ = false;
    pending_ckpt_.reset();
    ckpt_fetch_.reset();
    recovering_ = false;
    status_ = Status::kNormal;
    app_->restore(BytesView(genesis_snapshot_.data(), genesis_snapshot_.size()));
}

void Replica::recover() {
    if (!crashed_) return;
    crashed_ = false;
    ++stats_.recoveries;
    net().set_node_down(id(), false);
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "recover", stable_checkpoint_slot());
    }

    if (stable_ckpt_.has_value()) {
        Bytes payload = stable_ckpt_->payload;
        install_checkpoint(stable_ckpt_->slot, stable_ckpt_->log_hash, stable_ckpt_->cert,
                           payload, /*adopt_as_stable=*/false);
    } else if (auditor_) {
        // No durable checkpoint: the frontier resets to genesis.
        auditor_->on_execute(sim().current_shard(), sim().now(), id(), 0, 0, true, true,
                             cfg_.group);
    }
    // Rejoin the aom stream mid-epoch: the receiver adopts the live sequence
    // number from the first authenticated packet (HMAC mode; a PK hash
    // chain cannot be rejoined mid-epoch — see docs/SCENARIOS.md).
    receiver_->resume_mid_epoch(view_.epoch, sequencer_);
    if (auditor_) {
        auditor_->on_aom_resume(sim().current_shard(), sim().now(), id());
    }
    recovering_ = true;
    status_ = Status::kStateTransfer;
    recovery_last_size_ = log_.size();
    recovery_idle_polls_ = 0;
    recovery_poll_round_ = 0;
    CkptReq req;
    req.min_slot = log_.size() + 1;
    broadcast(cfg_.others(id()), req.serialize());
    continue_recovery();
    arm_progress_timer();
}

void Replica::continue_recovery() {
    if (!recovering_ || crashed_) return;

    // Finished when the parked live stream is contiguous with the log tip
    // (drain_backlog then carries us forward), or the cluster looks idle
    // and peers have nothing beyond our tip.
    if (!backlog_.empty()) {
        const aom::Delivery& d = backlog_.front();
        auto it = epoch_start_slot_.find(d.epoch);
        if (d.epoch == view_.epoch && it != epoch_start_slot_.end() &&
            it->second + d.seq - 1 <= log_.size() + 1) {
            finish_recovery();
            return;
        }
    } else if (log_.size() == recovery_last_size_) {
        if (++recovery_idle_polls_ >= 3) {
            finish_recovery();
            return;
        }
    }
    if (log_.size() != recovery_last_size_) {
        recovery_last_size_ = log_.size();
        recovery_idle_polls_ = 0;
    }

    if (ckpt_fetch_.has_value()) {
        // Re-request chunks still missing (loss on the fetch path).
        for (std::uint32_t i = 0; i < ckpt_fetch_->n_chunks; ++i) {
            if (ckpt_fetch_->have[i]) continue;
            CkptChunkReq cr;
            cr.slot = ckpt_fetch_->slot;
            cr.index = i;
            send_to(ckpt_fetch_->source, cr.serialize());
        }
    } else {
        // Pull log entries above our tip from a rotating peer; also re-ask
        // for a checkpoint in case peers GC'd past our tip meanwhile.
        std::vector<NodeId> peers = cfg_.others(id());
        NodeId target = peers[recovery_poll_round_ % peers.size()];
        ++recovery_poll_round_;
        request_state(target, log_.size(), log_.size() + 4'096);
        CkptReq req;
        req.min_slot = log_.size() + 1;
        send_to(target, req.serialize());
    }
    set_timer(cfg_.query_retry, [this] { continue_recovery(); }, "recovery_poll");
}

void Replica::finish_recovery() {
    recovering_ = false;
    status_ = Status::kNormal;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "recover_done", log_.size());
    }
    drain_backlog();
    maybe_start_sync();
}

// ------------------------------------------------------------------ metrics

void Replica::register_metrics(obs::Registry& reg, const std::string& prefix) {
    reg.add_collector([this, prefix](obs::Registry& r) {
        r.set_value(prefix + ".requests_executed",
                    static_cast<double>(stats_.requests_executed));
        r.set_value(prefix + ".replies_sent", static_cast<double>(stats_.replies_sent));
        r.set_value(prefix + ".rollbacks", static_cast<double>(stats_.rollbacks));
        r.set_value(prefix + ".gap_agreements_started",
                    static_cast<double>(stats_.gap_agreements_started));
        r.set_value(prefix + ".gap_noops_committed",
                    static_cast<double>(stats_.gap_noops_committed));
        r.set_value(prefix + ".queries_sent", static_cast<double>(stats_.queries_sent));
        r.set_value(prefix + ".view_changes_started",
                    static_cast<double>(stats_.view_changes_started));
        r.set_value(prefix + ".views_entered", static_cast<double>(stats_.views_entered));
        r.set_value(prefix + ".syncs_completed", static_cast<double>(stats_.syncs_completed));
        r.set_value(prefix + ".checkpoints_taken",
                    static_cast<double>(stats_.checkpoints_taken));
        r.set_value(prefix + ".checkpoints_stable",
                    static_cast<double>(stats_.checkpoints_stable));
        r.set_value(prefix + ".ckpt_installs", static_cast<double>(stats_.ckpt_installs));
        r.set_value(prefix + ".crashes", static_cast<double>(stats_.crashes));
        r.set_value(prefix + ".recoveries", static_cast<double>(stats_.recoveries));
        r.set_value(prefix + ".stable_ckpt_slot",
                    static_cast<double>(stable_checkpoint_slot()));
        r.set_value(prefix + ".log_base", static_cast<double>(log_.base()));
        r.set_value(prefix + ".executed_frontier", static_cast<double>(executed_));
        r.set_value(prefix + ".sync_point", static_cast<double>(sync_point_));
        if (receiver_) {
            r.set_value(prefix + ".aom.delivered_messages",
                        static_cast<double>(receiver_->delivered_messages()));
            r.set_value(prefix + ".aom.delivered_drops",
                        static_cast<double>(receiver_->delivered_drops()));
            r.set_value(prefix + ".aom.rejected_packets",
                        static_cast<double>(receiver_->rejected_packets()));
            // Adaptive confirm batching: how often the controller sealed by
            // reaching its load-tracked threshold vs the latency budget.
            const sim::AdaptiveBatchController& cc = receiver_->confirm_controller();
            r.set_value(prefix + ".aom.confirm_seals", static_cast<double>(cc.seals()));
            r.set_value(prefix + ".aom.confirm_size_seals",
                        static_cast<double>(cc.size_seals()));
            r.set_value(prefix + ".aom.confirm_batch_target",
                        static_cast<double>(cc.target()));
        }
    });
    register_rx_metrics(reg, prefix, &msg_kind_name);
}

}  // namespace neo::neobft
