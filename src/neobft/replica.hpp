// NeoBFT replica (§5).
//
// Normal operation (§5.3): aom delivers ordering certificates; the replica
// appends, speculatively executes, and replies — no cross-replica messages.
// Drop-notifications trigger the gap agreement (§5.4); faulty leaders and
// sequencers trigger view changes with epoch certificates (§5.5, §B.1);
// periodic state sync finalises speculative execution (§B.2).
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>

#include "aom/receiver.hpp"
#include "apps/merkle.hpp"
#include "apps/state_machine.hpp"
#include "neobft/log.hpp"
#include "sim/processing_node.hpp"

namespace neo::obs {
class Auditor;
}

namespace neo::neobft {

class Replica : public sim::ProcessingNode, public aom::ReceiverHost {
  public:
    enum class Status {
        kNormal,
        kViewChange,      // collecting/waiting for VIEW-START
        kEpochWait,       // VIEW-START done; waiting for epoch cert + new sequencer
        kStateTransfer,   // fetching a committed prefix before entering a view
    };

    struct Stats {
        std::uint64_t requests_executed = 0;
        std::uint64_t replies_sent = 0;
        std::uint64_t rollbacks = 0;
        std::uint64_t gap_agreements_started = 0;
        std::uint64_t gap_noops_committed = 0;
        std::uint64_t queries_sent = 0;
        std::uint64_t view_changes_started = 0;
        std::uint64_t views_entered = 0;
        std::uint64_t syncs_completed = 0;
        std::uint64_t checkpoints_taken = 0;   // eager snapshots at boundaries
        std::uint64_t checkpoints_stable = 0;  // certified + log prefix GC'd
        std::uint64_t ckpt_installs = 0;       // snapshots restored (own or fetched)
        std::uint64_t crashes = 0;
        std::uint64_t recoveries = 0;
    };

    Replica(Config cfg, std::unique_ptr<crypto::NodeCrypto> crypto, const aom::AomKeyService* keys,
            std::unique_ptr<app::StateMachine> app,
            aom::ReceiverOptions recv_opts = {});

    /// Call after the node is attached to the network: builds the aom
    /// receiver and starts epoch 1 on `sequencer`.
    void bootstrap(aom::GroupConfig group, NodeId sequencer);

    const Stats& stats() const { return stats_; }
    const Log& log() const { return log_; }
    Status status() const { return status_; }
    ViewId view() const { return view_; }
    std::uint64_t sync_point() const { return sync_point_; }
    crypto::NodeCrypto& node_crypto() { return *crypto_; }
    aom::AomReceiver& receiver() { return *receiver_; }
    app::StateMachine& app() { return *app_; }

    /// Fault injection for tests: a silent replica handles nothing.
    void set_silent(bool silent) { silent_ = silent; }

    /// Byzantine fault injection: an equivocating replica reports corrupted
    /// execution digests to the auditor and appends a poison byte to every
    /// client reply result. Honest 2f+1 quorums still commit (liveness
    /// holds); the auditor flags the divergent digests.
    void set_equivocate(bool b) { equivocate_ = b; }

    /// Crash-recover lifecycle (scenario engine; call from at_global
    /// events only — these mutate network node-down state). crash() takes
    /// the node down and wipes all volatile state; durable state survives:
    /// crypto keys, view/epoch bookkeeping, and the latest stable
    /// checkpoint. recover() brings the node back up, restores from the
    /// stable checkpoint (or genesis), resumes the aom stream mid-epoch and
    /// catches up via checkpoint + state transfer.
    void crash();
    void recover();
    bool crashed() const { return crashed_; }
    bool recovering() const { return recovering_; }
    /// Slot of the latest stable (certified, GC'd) checkpoint; 0 = none.
    std::uint64_t stable_checkpoint_slot() const {
        return stable_ckpt_.has_value() ? stable_ckpt_->slot : 0;
    }

    /// Online safety monitor (nullptr disables reporting). The replica
    /// reports every executed slot, aom delivery, view decision and
    /// cross-shard transaction phase (via the application's txn observer);
    /// the deployment finalizes the auditor after the run.
    void set_auditor(obs::Auditor* a);

    /// Publishes protocol counters (Stats, receiver stats, per-kind rx
    /// counts) under `prefix` at every registry dump.
    void register_metrics(obs::Registry& reg, const std::string& prefix);

    // ReceiverHost.
    void aom_send(NodeId to, Bytes data) override { send_to(to, std::move(data)); }
    std::uint64_t aom_set_timer(sim::Time delay, std::function<void()> fn,
                                const char* label) override {
        return set_timer(delay, std::move(fn), label);
    }
    void aom_cancel_timer(std::uint64_t id) override { cancel_timer(id); }
    sim::Time aom_now() const override { return const_cast<Replica*>(this)->sim().now(); }
    obs::TraceSink* aom_trace() override { return sim().trace(); }

  protected:
    void handle(NodeId from, BytesView data) override;

  private:
    // ---- normal operation ----
    void on_delivery(aom::Delivery d);
    void process_delivery(aom::Delivery& d);
    std::uint64_t slot_for(EpochNum epoch, SeqNum seq) const;
    void append_request(aom::OrderingCert oc);
    void execute_slot(std::uint64_t slot);
    void send_reply(std::uint64_t slot);
    void drain_backlog();

    // ---- client unicast fallback ----
    void on_request_unicast(NodeId from, Reader& r);

    // ---- gap agreement (§5.4) ----
    struct GapRound {
        std::map<NodeId, GapDrop> drops;
        std::optional<GapDecision> decision;  // validated
        std::map<NodeId, GapPrepare> prepares;
        std::map<NodeId, GapCommit> commits;
        bool find_sent = false;
        bool prepare_sent = false;
        bool commit_sent = false;
        bool resolved = false;
        bool applied = false;         // outcome written into the log
        bool outcome_recv = false;
        std::optional<aom::OrderingCert> outcome_oc;
        GapCertificate outcome_cert;
        bool sent_gap_drop = false;   // we answered GAP-FIND with a drop -> block on decision
        bool find_received = false;   // leader asked before we reached the slot
        std::uint64_t query_timer = 0;
        bool query_timer_armed = false;
        bool retry_armed = false;     // retransmission of gap-round messages
    };

    void on_drop_notification(std::uint64_t slot);
    void start_query(std::uint64_t slot);
    void on_query(NodeId from, Reader& r);
    void on_query_reply(NodeId from, Reader& r);
    void on_gap_cert_reply(NodeId from, Reader& r);
    void leader_start_gap_agreement(std::uint64_t slot);
    void on_gap_find(NodeId from, Reader& r);
    void on_gap_recv(NodeId from, Reader& r);
    void on_gap_drop(NodeId from, Reader& r);
    void leader_try_decide(std::uint64_t slot);
    void broadcast_decision(std::uint64_t slot, GapDecision decision);
    void on_gap_decision(NodeId from, Reader& r);
    void on_gap_prepare(NodeId from, Reader& r);
    void on_gap_commit(NodeId from, Reader& r);
    void try_gap_progress(std::uint64_t slot);
    void arm_gap_retry(std::uint64_t slot);
    void finalize_gap(std::uint64_t slot, bool recv, const std::optional<aom::OrderingCert>& oc,
                      GapCertificate cert);
    void apply_gap_outcomes();
    bool validate_decision(const GapDecision& d);
    void fill_slot_with_oc(std::uint64_t slot, const aom::OrderingCert& oc);
    void commit_noop(std::uint64_t slot, GapCertificate cert);
    void unblock(std::uint64_t slot);
    bool verify_oc_for_slot(const aom::OrderingCert& oc, std::uint64_t slot);

    // ---- execution / rollback ----
    void rollback_and_reexecute_replace(std::uint64_t slot, LogEntry replacement);

    // ---- state sync (§B.2) ----
    void maybe_start_sync();
    void on_sync(NodeId from, Reader& r);
    void try_complete_sync(std::uint64_t slot);

    // ---- checkpointing + crash recovery ----
    struct Checkpoint {
        std::uint64_t slot = 0;
        std::uint64_t applied_ops = 0;  // applied app ops in slots 1..slot
        Bytes payload;                  // serialized checkpoint image
        std::unique_ptr<app::MerkleTree> tree;  // over payload; root = app_hash
        Digest32 log_hash{};
        SyncCertificate cert;           // empty until stable
    };
    std::uint64_t audit_digest(const LogEntry& e) const;
    void maybe_take_checkpoint(std::uint64_t slot);
    Bytes build_checkpoint_payload(std::uint64_t slot, std::uint64_t applied_ops) const;
    void install_checkpoint(std::uint64_t slot, const Digest32& log_hash,
                            const SyncCertificate& cert, const Bytes& payload,
                            bool adopt_as_stable);
    void send_ckpt_meta(NodeId to);
    void on_ckpt_req(NodeId from, Reader& r);
    void on_ckpt_meta(NodeId from, Reader& r);
    void on_ckpt_chunk_req(NodeId from, Reader& r);
    void on_ckpt_chunk(NodeId from, Reader& r);
    void continue_recovery();
    void finish_recovery();

    // ---- view change (§5.5, §B.1) ----
    void arm_progress_timer();
    void on_progress_timeout();
    void suspect(ViewId next_view);
    void broadcast_view_change();
    void on_view_change(NodeId from, Reader& r);
    void on_view_start(NodeId from, Reader& r);
    void on_epoch_start(NodeId from, Reader& r);
    ViewChange make_view_change() const;
    bool validate_view_change_msg(const ViewChange& vc);
    void leader_try_start_view();
    void adopt_view_start(const ViewStart& vs);
    void apply_merged_log(const std::vector<ViewChange>& msgs, bool epoch_change);
    void enter_view(ViewId v);
    void begin_epoch_wait();
    void maybe_enter_epoch();

    // ---- state transfer ----
    void on_state_req(NodeId from, Reader& r);
    void on_state_reply(NodeId from, Reader& r);
    void request_state(NodeId target, std::uint64_t from_slot, std::uint64_t to_slot);

    Config cfg_;
    std::unique_ptr<crypto::NodeCrypto> crypto_;
    const aom::AomKeyService* keys_;
    std::unique_ptr<app::StateMachine> app_;
    aom::ReceiverOptions recv_opts_;
    std::unique_ptr<aom::AomReceiver> receiver_;
    aom::GroupConfig group_;

    Status status_ = Status::kNormal;
    ViewId view_{1, 0};
    Log log_;
    Stats stats_;
    bool silent_ = false;
    obs::Auditor* auditor_ = nullptr;
    /// True while re-executing slots already reported once (rollback, view
    /// merge, state transfer): auditor records carry replay=true so the
    /// frontier checks exempt them.
    bool audit_replay_ = false;

    /// First slot of each epoch we have started.
    std::map<EpochNum, std::uint64_t> epoch_start_slot_;
    /// Certificates for epochs we started via the view-change path.
    std::map<EpochNum, EpochCertificate> epoch_certs_;

    /// Execution frontier: slots (1..executed_) have been applied.
    std::uint64_t executed_ = 0;
    /// Committed prefix (sync protocol).
    std::uint64_t sync_point_ = 0;
    std::uint64_t committed_ops_ = 0;       // applied ops at slots <= committed_ops_slot_
    std::uint64_t committed_ops_slot_ = 0;
    SyncCertificate sync_cert_;
    std::uint64_t last_sync_broadcast_slot_ = 0;
    std::map<std::uint64_t, std::map<NodeId, SyncMsg>> pending_syncs_;  // slot -> msgs

    /// Gap certificates for no-ops committed in the current view (shipped
    /// with sync messages).
    std::vector<GapCertificate> view_noop_certs_;

    /// Gap agreement state per slot.
    std::map<std::uint64_t, GapRound> gaps_;
    /// Lowest unresolved slot we are blocked on (nullopt = not blocked).
    std::optional<std::uint64_t> blocked_slot_;
    sim::Time blocked_since_ = 0;
    /// Deliveries queued behind the blocked slot.
    std::deque<aom::Delivery> backlog_;
    /// Queries from other replicas we could not answer yet.
    std::map<std::uint64_t, std::set<NodeId>> pending_queries_;

    /// Client table: last executed request + cached reply per client.
    struct ClientRecord {
        std::uint64_t last_request_id = 0;
        sim::Packet cached_reply;  // serialized Reply (shared buffer on re-sends)
        /// Raw result bytes of the last reply. Checkpointed (cached_reply
        /// carries a per-replica MAC and cannot be transferred); a restored
        /// replica keeps at-most-once semantics but leaves duplicate
        /// re-sends to peers that still hold the MAC'd reply.
        Bytes last_result;
    };
    std::map<NodeId, ClientRecord> clients_;
    /// Requests seen by unicast but not yet via aom (sequencer suspicion).
    struct PendingClientRequest {
        std::uint64_t request_id;
        sim::Time first_seen;
    };
    std::map<NodeId, PendingClientRequest> pending_client_requests_;

    // View change state.
    ViewId target_view_{1, 0};  // highest view we voted for
    std::map<ViewId, std::map<NodeId, ViewChange>> view_changes_;
    std::optional<ViewStart> pending_view_start_;  // waiting on state transfer
    std::uint64_t vc_rebroadcast_timer_ = 0;
    bool vc_rebroadcast_armed_ = false;
    std::uint64_t progress_timer_ = 0;
    bool progress_timer_armed_ = false;

    // Epoch-wait state.
    std::map<EpochNum, std::map<NodeId, EpochStart>> epoch_starts_;
    std::optional<EpochNum> waiting_epoch_;
    std::uint64_t epoch_wait_slot_ = 0;

    // Leader probe (failure detector backing the view-change join rule).
    void on_ping(NodeId from, Reader& r);
    void on_pong(NodeId from, Reader& r);
    void probe_leader(ViewId join_view);
    std::optional<ViewId> probe_join_view_;
    std::uint64_t probe_nonce_ = 0;

    // State transfer.
    bool state_transfer_active_ = false;

    // Checkpointing.
    std::optional<Checkpoint> pending_ckpt_;  // taken at a boundary, awaiting cert
    std::optional<Checkpoint> stable_ckpt_;   // certified; log prefix GC'd (durable)
    /// In-flight checkpoint fetch (Merkle-verified chunk pulls).
    struct CkptFetch {
        std::uint64_t slot = 0;
        SyncCertificate cert;
        std::uint32_t n_chunks = 0;
        std::vector<Bytes> chunks;
        std::vector<bool> have;
        std::uint32_t n_have = 0;
        NodeId source = kInvalidNode;
    };
    std::optional<CkptFetch> ckpt_fetch_;

    // Crash-recover lifecycle.
    bool crashed_ = false;
    bool recovering_ = false;
    bool equivocate_ = false;
    Bytes genesis_snapshot_;          // app snapshot at construction
    NodeId sequencer_ = kInvalidNode; // last sequencer handed to the receiver
    std::uint64_t recovery_last_size_ = 0;
    int recovery_idle_polls_ = 0;
    std::uint64_t recovery_poll_round_ = 0;
};

}  // namespace neo::neobft
