// NeoBFT view changes, epoch switches and state transfer (§5.5, §B.1).
#include <algorithm>

#include "common/assert.hpp"
#include "common/logging.hpp"
#include "neobft/replica.hpp"
#include "obs/auditor.hpp"

namespace neo::neobft {

// ------------------------------------------------------------- suspicion

void Replica::arm_progress_timer() {
    if (progress_timer_armed_) return;
    progress_timer_armed_ = true;
    progress_timer_ = set_timer(cfg_.view_change_timeout, [this] {
        progress_timer_armed_ = false;
        on_progress_timeout();
        arm_progress_timer();
    }, "progress");
}

void Replica::on_progress_timeout() {
    if (silent_) return;
    sim::Time now = sim().now();

    if (status_ == Status::kNormal) {
        // Stuck gap agreement -> the leader is not driving it: change
        // leader. Only a slot that has been blocked for a full timeout
        // counts — transient gaps resolve via QUERY within microseconds.
        if (blocked_slot_.has_value() && now - blocked_since_ >= cfg_.view_change_timeout) {
            auto it = gaps_.find(*blocked_slot_);
            if (it != gaps_.end() && !it->second.resolved) {
                suspect(ViewId{view_.epoch, view_.leader + 1});
                return;
            }
        }
        // Client requests seen by unicast but never delivered by aom: the
        // sequencer is suspect -> switch epochs (§5.5).
        for (const auto& [client, pending] : pending_client_requests_) {
            if (now - pending.first_seen >= cfg_.request_aom_timeout) {
                suspect(ViewId{view_.epoch + 1, view_.leader});
                return;
            }
        }
        return;
    }

    if (status_ == Status::kViewChange) {
        // The view change itself stalled (faulty new leader): bump again.
        suspect(ViewId{target_view_.epoch, target_view_.leader + 1});
    }
    // kEpochWait / kStateTransfer progress by their own message flow; if the
    // peers are alive these complete, otherwise the next timeout will bump.
}

void Replica::suspect(ViewId next_view) {
    if (next_view <= target_view_ && status_ != Status::kNormal) return;
    if (next_view <= view_) return;
    target_view_ = next_view;
    status_ = Status::kViewChange;
    ++stats_.view_changes_started;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "view_suspect", next_view.epoch, next_view.leader);
    }
    NEO_DEBUG("replica " << id() << " suspects; moving to view <" << next_view.epoch << ","
                         << next_view.leader << ">");
    broadcast_view_change();
}

ViewChange Replica::make_view_change() const {
    ViewChange vc;
    vc.new_view = target_view_;
    vc.replica = id();
    vc.sync_cert = sync_cert_;
    for (const auto& [epoch, start_slot] : epoch_start_slot_) {
        if (epoch == 1) continue;  // epoch 1 starts at slot 1 by construction
        if (start_slot <= sync_point_) continue;
        auto cit = epoch_certs_.find(epoch);
        if (cit == epoch_certs_.end()) continue;
        ViewChange::EpochStartInfo info;
        info.epoch = epoch;
        info.start_slot = start_slot;
        info.cert = cit->second;
        vc.epochs.push_back(std::move(info));
    }
    vc.suffix_base = sync_point_;
    for (std::uint64_t s = sync_point_ + 1; s <= log_.size(); ++s) {
        vc.suffix.push_back(log_.wire_entry(s));
    }
    return vc;
}

void Replica::broadcast_view_change() {
    ViewChange vc = make_view_change();
    vc.signature = crypto_->sign(vc.signed_body());
    view_changes_[target_view_][id()] = vc;
    broadcast(cfg_.others(id()), vc.serialize());

    if (!vc_rebroadcast_armed_) {
        vc_rebroadcast_armed_ = true;
        vc_rebroadcast_timer_ = set_timer(cfg_.view_change_rebroadcast, [this] {
            vc_rebroadcast_armed_ = false;
            if (status_ == Status::kViewChange) broadcast_view_change();
        }, "vc_rebroadcast");
    }
    leader_try_start_view();
}

// -------------------------------------------------------------- validation

bool Replica::validate_view_change_msg(const ViewChange& vc) {
    if (!cfg_.is_replica(vc.replica)) return false;
    if (!crypto_->verify(vc.replica, vc.signed_body(), vc.signature)) return false;

    if (!vc.sync_cert.empty()) {
        if (!verify_sync_certificate(vc.sync_cert, cfg_, *crypto_)) return false;
        if (vc.suffix_base != vc.sync_cert.slot) return false;
    } else if (vc.suffix_base != 0) {
        return false;
    }

    EpochNum prev_epoch = 0;
    for (const auto& info : vc.epochs) {
        if (info.epoch <= prev_epoch) return false;  // strictly ascending
        prev_epoch = info.epoch;
        if (info.cert.epoch != info.epoch) return false;
        if (info.start_slot != info.cert.slot + 1) return false;
        if (!verify_epoch_certificate(info.cert, cfg_, *crypto_)) return false;
    }

    // Validity of the log suffix (§5.5): each slot holds a valid oc or a
    // gap-certified no-op, and in-epoch sequence numbers are consecutive.
    std::optional<SeqNum> prev_seq;
    std::optional<EpochNum> prev_entry_epoch;
    for (std::size_t i = 0; i < vc.suffix.size(); ++i) {
        std::uint64_t slot = vc.suffix_base + i + 1;
        const WireLogEntry& e = vc.suffix[i];
        if (e.noop) {
            if (e.gap_cert.recv || e.gap_cert.slot != slot) return false;
            if (!verify_gap_certificate(e.gap_cert, cfg_, *crypto_)) return false;
            if (prev_seq.has_value()) ++*prev_seq;  // no-op consumes a sequence slot
        } else {
            if (crypto_->hash(e.oc.payload) != e.oc.digest) return false;
            if (!aom::verify_cert(e.oc, receiver_->verify_context())) return false;
            if (prev_entry_epoch == e.oc.epoch && prev_seq.has_value() &&
                e.oc.seq != *prev_seq + 1) {
                return false;
            }
            // Epoch boundary inside the suffix must match a declared start.
            if (prev_entry_epoch.has_value() && e.oc.epoch != *prev_entry_epoch) {
                bool declared = false;
                for (const auto& info : vc.epochs) {
                    if (info.epoch == e.oc.epoch && info.start_slot == slot) declared = true;
                }
                if (!declared || e.oc.seq != 1) return false;
            }
            prev_seq = e.oc.seq;
            prev_entry_epoch = e.oc.epoch;
        }
    }
    return true;
}

// ---------------------------------------------------------- collect / start

void Replica::on_view_change(NodeId from, Reader& r) {
    ViewChange vc = ViewChange::parse(r);
    if (vc.replica != from || !cfg_.is_replica(from)) return;
    if (vc.new_view <= view_) return;

    // Store first, validate lazily when used (validation is expensive).
    ViewId v = vc.new_view;
    view_changes_[v][from] = std::move(vc);

    // Join rule: f+1 distinct replicas moving past us proves at least one
    // correct replica suspects -> join the smallest such view.
    if (status_ == Status::kNormal || v > target_view_) {
        std::map<ViewId, std::set<NodeId>> supporters;
        for (const auto& [view, msgs] : view_changes_) {
            if (view <= view_ || view <= target_view_) continue;
            for (const auto& [node, msg] : msgs) supporters[view].insert(node);
        }
        bool joined = false;
        for (const auto& [view, nodes] : supporters) {
            if (nodes.size() >= static_cast<std::size_t>(cfg_.f + 1)) {
                suspect(view);
                joined = true;
                break;
            }
        }
        // A single replica suspecting is not proof (it may be Byzantine),
        // but it is reason to check on the leader ourselves (§C.2's
        // "correctly suspect" failure detector). Same-epoch changes only —
        // sequencer health is judged by our own aom traffic.
        if (!joined && status_ == Status::kNormal && v.epoch == view_.epoch) {
            probe_leader(v);
        }
    }
    leader_try_start_view();
}

void Replica::probe_leader(ViewId join_view) {
    if (probe_join_view_.has_value() && *probe_join_view_ >= join_view) return;
    probe_join_view_ = join_view;
    std::uint64_t nonce = ++probe_nonce_;
    Ping ping;
    ping.view = view_;
    ping.nonce = nonce;
    send_to(cfg_.leader_of(view_), ping.serialize());
    set_timer(cfg_.view_change_timeout, [this, nonce] {
        if (probe_nonce_ != nonce || !probe_join_view_.has_value()) return;
        ViewId join = *probe_join_view_;
        probe_join_view_.reset();
        if (join > view_ && status_ == Status::kNormal) suspect(join);
    }, "probe");
}

void Replica::on_ping(NodeId from, Reader& r) {
    Ping ping = Ping::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (ping.view != view_ || cfg_.leader_of(view_) != id()) return;
    Pong pong;
    pong.view = ping.view;
    pong.nonce = ping.nonce;
    send_to(from, pong.serialize());
}

void Replica::on_pong(NodeId from, Reader& r) {
    Pong pong = Pong::parse(r);
    if (from != cfg_.leader_of(view_)) return;
    if (pong.nonce != probe_nonce_) return;
    // Leader is alive: abandon the probe.
    probe_join_view_.reset();
}

void Replica::leader_try_start_view() {
    if (status_ != Status::kViewChange) return;
    if (cfg_.leader_of(target_view_) != id()) return;
    auto it = view_changes_.find(target_view_);
    if (it == view_changes_.end()) return;
    if (!it->second.contains(id())) return;

    // Gather 2f+1 valid view-changes (deterministic order: by replica id).
    std::vector<ViewChange> chosen;
    for (const auto& [node, vc] : it->second) {
        if (node == id() || validate_view_change_msg(vc)) {
            chosen.push_back(vc);
            if (chosen.size() == cfg_.quorum()) break;
        }
    }
    if (chosen.size() < cfg_.quorum()) return;

    ViewStart vs;
    vs.new_view = target_view_;
    vs.msgs = std::move(chosen);
    vs.signature = crypto_->sign(vs.signed_body());
    broadcast(cfg_.others(id()), vs.serialize());
    adopt_view_start(vs);
}

void Replica::on_view_start(NodeId from, Reader& r) {
    ViewStart vs = ViewStart::parse(r);
    if (vs.new_view <= view_) return;
    if (from != cfg_.leader_of(vs.new_view)) return;
    if (!crypto_->verify(from, vs.signed_body(), vs.signature)) return;

    if (vs.msgs.size() < cfg_.quorum()) return;
    std::set<NodeId> senders;
    for (const auto& vc : vs.msgs) {
        if (vc.new_view != vs.new_view) return;
        if (!senders.insert(vc.replica).second) return;
        if (!validate_view_change_msg(vc)) return;
    }
    adopt_view_start(vs);
}

// ------------------------------------------------------------------- merge

namespace {
/// Digest used to compare a wire entry against a local log entry.
bool entries_equal(const WireLogEntry& w, const LogEntry& e) {
    if (w.noop != e.noop) return false;
    if (w.noop) return true;  // no-ops at the same slot are identical
    return w.oc.epoch == e.oc.epoch && w.oc.seq == e.oc.seq && w.oc.digest == e.oc.digest;
}
}  // namespace

void Replica::adopt_view_start(const ViewStart& vs) {
    // Determine the committed baseline: the maximum valid sync certificate.
    std::uint64_t base_slot = 0;
    Digest32 base_hash{};
    NodeId base_holder = kInvalidNode;
    for (const auto& vc : vs.msgs) {
        if (!vc.sync_cert.empty() && vc.sync_cert.slot > base_slot) {
            base_slot = vc.sync_cert.slot;
            base_hash = vc.sync_cert.log_hash;
            base_holder = vc.replica;
        }
    }

    // A baseline below our GC base is already covered by our stable
    // checkpoint's certificate — nothing to fetch or compare there.
    if (base_slot > log_.base() &&
        (log_.size() < base_slot || log_.hash_at(base_slot) != base_hash)) {
        // Our committed prefix is behind/divergent: fetch it, then retry.
        pending_view_start_ = vs;
        status_ = Status::kStateTransfer;
        std::uint64_t from_slot = std::min(sync_point_, base_slot);
        request_state(base_holder, from_slot, base_slot);
        return;
    }

    audit_replay_ = true;  // merge may re-append slots already reported
    apply_merged_log(vs.msgs, /*epoch_change=*/vs.new_view.epoch > view_.epoch);
    audit_replay_ = false;
    if (auditor_) {
        // Frontier reset: an epoch-change merge may truncate the log below
        // the previously reported frontier without re-appending anything.
        auditor_->on_execute(sim().current_shard(), sim().now(), id(), log_.size(), 0, true,
                             /*replay=*/true, cfg_.group);
        // The adopted log is a pure function of the VIEW-START message, so
        // its canonical bytes stand in for the decision: two replicas
        // reporting different digests at the same view means the leader
        // equivocated.
        auditor_->on_view_decision(
            sim().current_shard(), sim().now(), id(),
            (vs.new_view.epoch << 32) | (vs.new_view.leader & 0xffffffffu),
            obs::trace_id(vs.signed_body()), cfg_.group);
    }
    enter_view(vs.new_view);
}

void Replica::apply_merged_log(const std::vector<ViewChange>& msgs, bool epoch_change) {
    std::uint64_t base_slot = 0;
    for (const auto& vc : msgs) {
        base_slot = std::max(base_slot, vc.sync_cert.empty() ? 0 : vc.sync_cert.slot);
    }
    // Never merge below our stable-checkpoint GC base: those slots are
    // certified committed and no longer held as entries.
    base_slot = std::max(base_slot, log_.base());

    // Step 1 (§B.1): the largest epoch with a valid certificate.
    EpochNum max_epoch = 0;
    std::uint64_t max_epoch_start = 0;
    EpochCertificate max_epoch_cert;
    for (const auto& vc : msgs) {
        for (const auto& info : vc.epochs) {
            if (info.epoch > max_epoch) {
                max_epoch = info.epoch;
                max_epoch_start = info.start_slot;
                max_epoch_cert = info.cert;
            }
        }
    }

    // Which view-change messages "started" the max epoch (their suffix
    // reaches into it / they declared it)?
    auto started_max = [&](const ViewChange& vc) {
        if (max_epoch == 0) return true;  // no boundary: every log qualifies
        for (const auto& info : vc.epochs) {
            if (info.epoch == max_epoch) return true;
        }
        return false;
    };

    // Assemble the merged suffix into a slot-indexed map.
    std::map<std::uint64_t, WireLogEntry> merged;

    // Step 2: everything before the max epoch's start, from a valid log that
    // started it (deterministic pick: lowest replica id).
    if (max_epoch != 0) {
        const ViewChange* donor = nullptr;
        for (const auto& vc : msgs) {
            if (started_max(vc) && (!donor || vc.replica < donor->replica)) donor = &vc;
        }
        NEO_ASSERT(donor != nullptr);
        for (std::size_t i = 0; i < donor->suffix.size(); ++i) {
            std::uint64_t slot = donor->suffix_base + i + 1;
            if (slot > base_slot && slot < max_epoch_start) merged[slot] = donor->suffix[i];
        }
    }

    // Step 3: within the (max) epoch, the longest qualifying log wins.
    std::uint64_t in_epoch_from = (max_epoch != 0) ? max_epoch_start : base_slot + 1;
    {
        const ViewChange* longest = nullptr;
        std::uint64_t longest_end = 0;
        for (const auto& vc : msgs) {
            if (!started_max(vc)) continue;
            std::uint64_t end = vc.suffix_base + vc.suffix.size();
            if (end > longest_end || (end == longest_end && longest && vc.replica < longest->replica)) {
                longest = &vc;
                longest_end = end;
            }
        }
        if (longest != nullptr) {
            for (std::size_t i = 0; i < longest->suffix.size(); ++i) {
                std::uint64_t slot = longest->suffix_base + i + 1;
                if (slot >= in_epoch_from) merged[slot] = longest->suffix[i];
            }
        }
    }

    // Step 4: no-ops (gap-certified) from ANY qualifying log overwrite.
    for (const auto& vc : msgs) {
        if (!started_max(vc)) continue;
        for (std::size_t i = 0; i < vc.suffix.size(); ++i) {
            std::uint64_t slot = vc.suffix_base + i + 1;
            if (slot >= in_epoch_from && vc.suffix[i].noop && merged.contains(slot)) {
                merged[slot] = vc.suffix[i];
            }
        }
    }

    // Write into our log: find the first divergence, roll back, rebuild.
    std::uint64_t merged_end = merged.empty() ? base_slot : merged.rbegin()->first;
    std::uint64_t first_div = 0;
    for (std::uint64_t s = base_slot + 1; s <= merged_end; ++s) {
        auto it = merged.find(s);
        NEO_ASSERT_MSG(it != merged.end(), "merged log has a hole");
        if (!log_.has(s) || !entries_equal(it->second, log_.at(s))) {
            first_div = s;
            break;
        }
    }
    if (first_div == 0 && log_.size() > merged_end) {
        // Our log extends past the merge result with entries the chosen
        // view-change set never saw. Within the same epoch these are valid
        // ordering certificates from aom and may stay (tails legitimately
        // differ in length, like normal speculation); across an epoch
        // boundary every replica must agree on the exact end of the old
        // epoch, so the tail is cut.
        // Requests carry their ordering certificates; no-ops carry their
        // gap certificates (committed: Lemma 5 says they persist anyway).
        if (epoch_change) first_div = merged_end + 1;  // truncate tail
    }
    if (first_div == 0) {
        // Log already matches the merge result.
        if (max_epoch != 0) {
            epoch_start_slot_[max_epoch] = max_epoch_start;
            epoch_certs_[max_epoch] = max_epoch_cert;
        }
        return;
    }

    // Entries we hold beyond the merge result are still valid ordering
    // certificates (slot<->seq is 1:1 within an epoch, so replacing an
    // earlier slot does not shift them). Preserve them through the rebuild
    // unless the epoch is ending — the aom receiver has already consumed
    // their sequence numbers, so dropping them would desynchronise it.
    std::vector<WireLogEntry> spare_tail;
    if (!epoch_change) {
        for (std::uint64_t s = std::max(first_div, merged_end + 1); s <= log_.size(); ++s) {
            spare_tail.push_back(log_.wire_entry(s));  // request oc or gap-certified no-op
        }
    }

    // Undo application ops from the top down to the divergence point.
    if (pending_ckpt_.has_value() && pending_ckpt_->slot >= first_div) pending_ckpt_.reset();
    for (std::uint64_t s = log_.size(); s >= first_div && s >= 1; --s) {
        if (!log_.has(s)) break;
        LogEntry& e = log_.at(s);
        if (e.applied) {
            app_->undo_last();
            e.applied = false;
        }
        if (s == first_div) break;
    }
    if (first_div <= log_.size()) log_.truncate_to(first_div - 1);
    executed_ = log_.size();

    // Append and execute the merged entries, then our preserved tail.
    for (std::uint64_t s = first_div; s <= merged_end; ++s) {
        const WireLogEntry& w = merged.at(s);
        if (w.noop) {
            LogEntry entry;
            entry.noop = true;
            entry.gap_cert = w.gap_cert;
            log_.append(std::move(entry));
            log_.at(s).executed = true;
            executed_ = s;
        } else {
            append_request(w.oc);
        }
    }
    for (const auto& w : spare_tail) {
        if (w.noop) {
            LogEntry entry;
            entry.noop = true;
            entry.gap_cert = w.gap_cert;
            log_.append(std::move(entry));
            log_.at(log_.size()).executed = true;
            executed_ = log_.size();
        } else {
            append_request(w.oc);
        }
    }

    if (max_epoch != 0) {
        epoch_start_slot_[max_epoch] = max_epoch_start;
        epoch_certs_[max_epoch] = max_epoch_cert;
    }
}

// ------------------------------------------------------------- enter view

void Replica::enter_view(ViewId v) {
    NEO_ASSERT(v > view_ || (v == view_ && status_ != Status::kNormal));
    bool epoch_change = v.epoch > receiver_->epoch();

    // If we were blocked on a hole whose drop-notification was already
    // consumed (the aom receiver moved past it), and the merge did not fill
    // it, the gap agreement must restart under the new leader — nothing
    // else will ever re-report that sequence number.
    std::optional<std::uint64_t> still_missing;
    if (!epoch_change && blocked_slot_.has_value() && *blocked_slot_ == log_.size() + 1) {
        still_missing = blocked_slot_;
    }

    view_ = v;
    target_view_ = v;
    ++stats_.views_entered;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "view_enter", v.epoch, v.leader);
    }
    gaps_.clear();
    blocked_slot_.reset();
    pending_queries_.clear();
    view_changes_.erase(view_changes_.begin(), view_changes_.upper_bound(v));
    pending_view_start_.reset();
    // Give the new configuration a fresh grace period for pending requests.
    for (auto& [client, pending] : pending_client_requests_) pending.first_seen = sim().now();

    if (epoch_change) {
        begin_epoch_wait();
        return;
    }
    status_ = Status::kNormal;
    NEO_DEBUG("replica " << id() << " entered view <" << v.epoch << "," << v.leader << ">");
    if (still_missing.has_value()) on_drop_notification(*still_missing);
    drain_backlog();
}

void Replica::begin_epoch_wait() {
    status_ = Status::kEpochWait;
    waiting_epoch_ = view_.epoch;
    epoch_wait_slot_ = log_.size();
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "epoch_wait", view_.epoch, epoch_wait_slot_);
    }

    EpochStart es;
    es.epoch = view_.epoch;
    es.replica = id();
    es.slot = epoch_wait_slot_;
    es.signature = crypto_->sign(es.signed_body());
    epoch_starts_[view_.epoch][id()] = es;
    broadcast(cfg_.others(id()), es.serialize());

    // Ask the configuration service for a new sequencer (§4.2: after the
    // agreement, receivers request the failover).
    aom::FailoverRequest req;
    req.sender = id();
    req.group = cfg_.group;
    req.next_epoch = view_.epoch;
    send_to(cfg_.config_service, req.serialize());

    maybe_enter_epoch();
}

void Replica::on_epoch_start(NodeId from, Reader& r) {
    EpochStart es = EpochStart::parse(r);
    if (!cfg_.is_replica(from) || es.replica != from) return;
    if (!crypto_->verify(from, es.signed_body(), es.signature)) return;
    epoch_starts_[es.epoch][from] = std::move(es);
    maybe_enter_epoch();
}

void Replica::maybe_enter_epoch() {
    if (status_ != Status::kEpochWait || !waiting_epoch_.has_value()) return;
    EpochNum e = *waiting_epoch_;

    auto it = epoch_starts_.find(e);
    if (it == epoch_starts_.end()) return;
    std::vector<SignerSig> sigs;
    for (const auto& [node, es] : it->second) {
        if (es.slot == epoch_wait_slot_) sigs.push_back(SignerSig{node, es.signature});
    }
    if (sigs.size() < cfg_.quorum()) return;
    sigs.resize(cfg_.quorum());

    auto sequencer = receiver_->announced_sequencer(e);
    if (!sequencer.has_value()) return;  // config service still reconfiguring
    sequencer_ = *sequencer;

    EpochCertificate cert;
    cert.epoch = e;
    cert.slot = epoch_wait_slot_;
    cert.sigs = std::move(sigs);
    epoch_certs_[e] = std::move(cert);
    epoch_start_slot_[e] = epoch_wait_slot_ + 1;

    receiver_->start_epoch(e, *sequencer);
    waiting_epoch_.reset();
    status_ = Status::kNormal;
    if (obs::TraceSink* tr = sim().trace()) {
        tr->phase(sim().now(), id(), "epoch_enter", e, epoch_wait_slot_ + 1);
    }
    backlog_.clear();  // deliveries from the dead epoch are void
    // Restart the sequencer-suspicion grace period: the new sequencer only
    // begins carrying traffic now, not when the view change started.
    for (auto& [client, pending] : pending_client_requests_) pending.first_seen = sim().now();
    NEO_DEBUG("replica " << id() << " entered epoch " << e << " at slot "
                         << epoch_wait_slot_ + 1);
    drain_backlog();
}

// --------------------------------------------------------- state transfer

void Replica::request_state(NodeId target, std::uint64_t from_slot, std::uint64_t to_slot) {
    state_transfer_active_ = true;
    StateReq req;
    req.from_slot = from_slot;
    req.to_slot = to_slot;
    send_to(target, req.serialize());
}

void Replica::on_state_req(NodeId from, Reader& r) {
    StateReq req = StateReq::parse(r);
    if (!cfg_.is_replica(from)) return;
    if (req.to_slot <= req.from_slot) return;
    if (req.from_slot < log_.base()) {
        // The requested prefix was garbage-collected: offer the stable
        // checkpoint instead (Merkle-verified chunk transfer).
        send_ckpt_meta(from);
        return;
    }
    std::uint64_t to = std::min<std::uint64_t>(req.to_slot, log_.size());
    if (to <= req.from_slot) return;
    constexpr std::uint64_t kMaxBatch = 4'096;
    to = std::min(to, req.from_slot + kMaxBatch);

    StateReply reply;
    reply.base_slot = req.from_slot;
    for (std::uint64_t s = req.from_slot + 1; s <= to; ++s) {
        reply.entries.push_back(log_.wire_entry(s));
    }
    send_to(from, reply.serialize());
}

void Replica::on_state_reply(NodeId from, Reader& r) {
    (void)from;
    StateReply reply = StateReply::parse(r);
    if (!state_transfer_active_) return;
    if (reply.base_slot > log_.size()) return;  // non-contiguous: useless

    // Validate and apply entries extending or overwriting our suffix.
    std::uint64_t first_div = 0;
    for (std::size_t i = 0; i < reply.entries.size(); ++i) {
        std::uint64_t slot = reply.base_slot + i + 1;
        const WireLogEntry& e = reply.entries[i];
        if (e.noop) {
            if (e.gap_cert.recv || e.gap_cert.slot != slot) return;
            if (!verify_gap_certificate(e.gap_cert, cfg_, *crypto_)) return;
        } else {
            if (crypto_->hash(e.oc.payload) != e.oc.digest) return;
            if (!aom::verify_cert(e.oc, receiver_->verify_context())) return;
        }
        if (first_div == 0 && (!log_.has(slot) || !entries_equal(e, log_.at(slot)))) {
            first_div = slot;
        }
    }
    if (first_div != 0 && first_div <= log_.base()) return;  // stable prefix never rolls back
    if (first_div != 0) {
        audit_replay_ = true;  // state transfer rebuilds already-reported slots
        if (pending_ckpt_.has_value() && pending_ckpt_->slot >= first_div) pending_ckpt_.reset();
        for (std::uint64_t s = log_.size(); s >= first_div && log_.has(s); --s) {
            LogEntry& e = log_.at(s);
            if (e.applied) {
                app_->undo_last();
                e.applied = false;
            }
            if (s == first_div) break;
        }
        if (first_div <= log_.size()) log_.truncate_to(first_div - 1);
        executed_ = log_.size();
        for (std::size_t i = 0; i < reply.entries.size(); ++i) {
            std::uint64_t slot = reply.base_slot + i + 1;
            if (slot < first_div) continue;
            const WireLogEntry& e = reply.entries[i];
            if (e.noop) {
                LogEntry entry;
                entry.noop = true;
                entry.gap_cert = e.gap_cert;
                log_.append(std::move(entry));
                log_.at(slot).executed = true;
                executed_ = slot;
            } else {
                append_request(e.oc);
            }
        }
        audit_replay_ = false;
        if (auditor_) {
            auditor_->on_execute(sim().current_shard(), sim().now(), id(), log_.size(), 0,
                                 true, /*replay=*/true, cfg_.group);
        }
    }
    state_transfer_active_ = false;

    // Retry the deferred view start, if any.
    if (pending_view_start_.has_value()) {
        ViewStart vs = *pending_view_start_;
        pending_view_start_.reset();
        status_ = Status::kViewChange;
        adopt_view_start(vs);
    }
}

}  // namespace neo::neobft
