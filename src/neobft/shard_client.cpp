#include "neobft/shard_client.hpp"

#include <map>

#include "common/assert.hpp"

namespace neo::neobft {

namespace {

app::KvStatus parse_status(BytesView reply) {
    auto res = app::KvResult::parse(reply);
    // A malformed reply can only come from our own replica quorum, so it
    // indicates a harness bug rather than a Byzantine peer.
    NEO_ASSERT_MSG(res.has_value(), "unparseable KvResult from replica quorum");
    return res->status;
}

}  // namespace

ShardClient::ShardClient(const ShardRouter* router, std::vector<Client*> children,
                         std::uint32_t coordinator_tag)
    : router_(router), children_(std::move(children)), coordinator_tag_(coordinator_tag) {
    NEO_ASSERT(router_ != nullptr);
    NEO_ASSERT_MSG(children_.size() == router_->shards(),
                   "one child client per router shard");
}

void ShardClient::invoke(Bytes txn_op, Callback cb) {
    NEO_ASSERT_MSG(!pending_.has_value(), "one outstanding transaction per client");

    auto txn = app::KvTxnOp::parse(txn_op);
    NEO_ASSERT_MSG(txn.has_value() && txn->type == app::KvOpType::kTxnLocal,
                   "ShardClient expects a kTxnLocal transaction");
    ++stats_.txns_started;

    // Partition the ops by shard, preserving per-shard op order.
    std::map<std::size_t, std::vector<app::KvOp>> by_shard;
    for (app::KvOp& op : txn->ops) {
        by_shard[router_->shard_index(BytesView(op.key))].push_back(std::move(op));
    }
    const std::size_t n_ops = txn->ops.size();

    if (by_shard.size() == 1) {
        // Fast path: one shard holds every key — a single ordered op is
        // already atomic, no 2PC needed.
        auto& [shard, ops] = *by_shard.begin();
        app::KvTxnOp local;
        local.type = app::KvOpType::kTxnLocal;
        local.ops = std::move(ops);
        Pending p;
        p.n_ops = n_ops;
        p.cb = std::move(cb);
        pending_ = std::move(p);
        children_[shard]->invoke(local.serialize(), [this](Bytes reply) {
            finish(parse_status(reply) == app::KvStatus::kOk);
        });
        return;
    }

    ++stats_.cross_shard_txns;
    Pending p;
    p.txn_id = (coordinator_tag_ << 32) | next_txn_++;
    p.n_ops = n_ops;
    p.wait_retries_left = max_wait_retries_;
    p.cb = std::move(cb);
    // by_shard is a std::map: participants come out in ascending shard
    // index — the canonical lock-acquisition order every coordinator
    // shares, so concurrent transactions collide on a common prefix
    // instead of deadlocking on disjoint ones.
    for (auto& [shard, ops] : by_shard) {
        app::KvTxnOp prep;
        prep.type = app::KvOpType::kTxnPrepare;
        prep.txn_id = p.txn_id;
        prep.ops = std::move(ops);
        p.participants.push_back(shard);
        p.prepare_wires.push_back(prep.serialize());
    }
    pending_ = std::move(p);

    // Phase 1: PREPARE each participant in canonical order, one at a time.
    send_next_prepare();
}

void ShardClient::send_next_prepare() {
    NEO_ASSERT(pending_.has_value());
    pending_->backoff_timer = 0;
    pending_->backoff_child = nullptr;
    const std::size_t i = pending_->next_prepare;
    // Retries resend the same wire, so keep it (copy, don't move).
    children_[pending_->participants[i]]->invoke(
        pending_->prepare_wires[i],
        [this](Bytes reply) { on_prepare_vote(parse_status(reply)); });
}

void ShardClient::on_prepare_vote(app::KvStatus vote) {
    NEO_ASSERT(pending_.has_value());
    if (vote == app::KvStatus::kTxnPrepared) {
        if (++pending_->next_prepare == pending_->participants.size()) {
            start_phase2();
        } else {
            send_next_prepare();
        }
        return;
    }
    if (vote == app::KvStatus::kTxnWait && pending_->wait_retries_left-- > 0) {
        // Wait-die: we are older than the lock holder; retry the same shard
        // with the same txn_id after a backoff. Seniority is preserved, so
        // the wait is bounded by the holder's 2PC round.
        ++stats_.wait_retries;
        Client* child = children_[pending_->participants[pending_->next_prepare]];
        pending_->backoff_child = child;
        pending_->backoff_timer =
            child->run_after(wait_backoff_, [this] { send_next_prepare(); });
        return;
    }
    // Abort vote (lock conflict with an older holder, bad request, or the
    // wait-retry budget ran out).
    pending_->any_abort = true;
    start_phase2();
}

void ShardClient::start_phase2() {
    // Phase 2: the decision is commit iff every shard voted PREPARED.
    // ABORT also goes to shards that voted abort themselves — it is
    // idempotent on a shard with nothing staged, and the explicit op keeps
    // every participant's decision in the ordered log for the auditor.
    pending_->waiting = pending_->participants.size();
    app::KvTxnOp decide;
    decide.type = pending_->any_abort ? app::KvOpType::kTxnAbort : app::KvOpType::kTxnCommit;
    decide.txn_id = pending_->txn_id;
    Bytes wire = decide.serialize();
    for (std::size_t shard : pending_->participants) {
        children_[shard]->invoke(wire, [this](Bytes) { on_phase2_done(); });
    }
}

void ShardClient::on_phase2_done() {
    NEO_ASSERT(pending_.has_value() && pending_->waiting > 0);
    if (--pending_->waiting == 0) finish(!pending_->any_abort);
}

void ShardClient::abandon() {
    if (!pending_.has_value()) return;
    if (pending_->backoff_timer != 0 && pending_->backoff_child != nullptr) {
        pending_->backoff_child->cancel_after(pending_->backoff_timer);
    }
    for (Client* c : children_) c->abandon();
    ++stats_.abandoned_txns;
    pending_.reset();
}

void ShardClient::finish(bool committed) {
    if (committed) {
        ++stats_.committed_txns;
        stats_.committed_ops += pending_->n_ops;
    } else {
        ++stats_.aborted_txns;
    }
    Callback cb = std::move(pending_->cb);
    pending_.reset();
    cb(app::KvResult{committed ? app::KvStatus::kOk : app::KvStatus::kTxnAborted, {}}
           .serialize());
}

}  // namespace neo::neobft
