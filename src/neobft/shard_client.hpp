// Cross-shard transaction coordinator for multi-group deployments.
//
// A ShardClient fronts one logical client over N sharded NeoBFT groups. It
// owns one child `Client` per shard (each a real network node with its own
// aom sender / retry machinery) and drives client-side two-phase commit:
// every phase is an ordered state-machine operation on the participant
// shard, so the auditor's safety invariants extend across shards.
//
//   - Transactions whose keys all route to one shard take the fast path: a
//     single kTxnLocal op, atomic within that shard's log.
//   - Cross-shard transactions run PREPARE on every participant (locks +
//     staged writes, §2PC phase 1), then COMMIT iff every shard voted
//     PREPARED, else ABORT. The coordinator is the client; the decision is
//     durable because each phase is itself replicated via NeoBFT.
//
// Deadlock/livelock freedom: prepares are issued SEQUENTIALLY in ascending
// shard-index order (a canonical order derived from the key hash tiling),
// so two transactions can only collide on their common first shard instead
// of locking disjoint prefixes and aborting each other forever. On a
// kTxnWait vote (wait-die: this txn is older than the lock holder) the
// coordinator retries the same shard with the same txn_id after a fixed
// backoff — seniority is preserved, so the oldest transaction always
// eventually runs. abandon() models a coordinator crash between prepare
// and decision; participants then rely on the state machine's
// presumed-abort timeout to release the orphaned locks.
//
// Concurrency contract: all child clients of one ShardClient MUST be placed
// on the same simulator partition (the deployment's placement policy does
// this) — phase callbacks fire inside child-node events and mutate the
// shared coordinator state without locks.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "apps/kvstore.hpp"
#include "neobft/client.hpp"
#include "neobft/shard_router.hpp"

namespace neo::neobft {

class ShardClient {
  public:
    using Callback = std::function<void(Bytes result)>;

    struct Stats {
        std::uint64_t txns_started = 0;
        std::uint64_t committed_txns = 0;
        std::uint64_t aborted_txns = 0;
        /// Single-key ops inside committed transactions (the aggregate
        /// committed-throughput numerator for fig_shard_scaling).
        std::uint64_t committed_ops = 0;
        std::uint64_t cross_shard_txns = 0;
        std::uint64_t wait_retries = 0;    // kTxnWait votes that were retried
        std::uint64_t abandoned_txns = 0;  // dropped by abandon() mid-flight
    };

    /// `children[s]` serves shard s (router order); `coordinator_tag` must
    /// be unique per ShardClient — it is the high half of every txn id.
    ShardClient(const ShardRouter* router, std::vector<Client*> children,
                std::uint32_t coordinator_tag);

    /// Issues one multi-key transaction (a serialized kTxnLocal KvTxnOp;
    /// the router decides which shards actually participate). `cb` fires
    /// with a KvResult: kOk = committed, kTxnAborted = aborted. One
    /// outstanding transaction at a time (closed loop).
    void invoke(Bytes txn_op, Callback cb);

    /// Drops the in-flight transaction without firing its callback or
    /// sending a decision — a coordinator crash between prepare and
    /// decision. Child clients abandon their outstanding ops; any locks
    /// already taken on participants are released by the state machine's
    /// presumed-abort timeout.
    void abandon();

    /// Wait-die retry knobs (defaults suit the simulated latency profile).
    void set_wait_backoff(sim::Time t) { wait_backoff_ = t; }
    void set_max_wait_retries(int n) { max_wait_retries_ = n; }

    bool busy() const { return pending_.has_value(); }
    const Stats& stats() const { return stats_; }
    std::size_t n_shards() const { return children_.size(); }
    Client& child(std::size_t s) { return *children_[s]; }

  private:
    struct Pending {
        std::uint64_t txn_id = 0;
        std::vector<std::size_t> participants;          // dense shard indices
        std::vector<Bytes> prepare_wires;               // per participant
        std::size_t next_prepare = 0;  // phase-1 cursor (canonical order)
        std::size_t waiting = 0;       // phase-2 decisions outstanding
        bool any_abort = false;
        int wait_retries_left = 0;
        sim::ProcessingNode::TimerId backoff_timer = 0;  // pending wait-die retry
        Client* backoff_child = nullptr;
        std::size_t n_ops = 0;
        Callback cb;
    };

    void send_next_prepare();
    void on_prepare_vote(app::KvStatus vote);
    void start_phase2();
    void on_phase2_done();
    void finish(bool committed);

    const ShardRouter* router_;
    std::vector<Client*> children_;
    std::uint64_t coordinator_tag_;
    std::uint64_t next_txn_ = 1;
    sim::Time wait_backoff_ = 300 * sim::kMicrosecond;
    int max_wait_retries_ = 32;
    std::optional<Pending> pending_;
    Stats stats_;
};

}  // namespace neo::neobft
