#include "neobft/shard_router.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace neo::neobft {

std::uint64_t ShardRouter::key_hash(BytesView key) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint8_t b : key) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    // FNV-1a avalanches the low bits poorly, and range routing slices on
    // the HIGH bits — structured keys ("user000...NNN") would pile onto a
    // few shards. A splitmix64-style finalizer spreads them uniformly.
    h ^= h >> 30;
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= h >> 27;
    h *= 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

std::vector<aom::GroupConfig> ShardRouter::assign_ranges(std::vector<aom::GroupConfig> groups) {
    NEO_ASSERT_MSG(!groups.empty(), "cannot shard across zero groups");
    auto n = static_cast<unsigned __int128>(groups.size());
    constexpr auto kSpace = static_cast<unsigned __int128>(1) << 64;
    for (std::size_t i = 0; i < groups.size(); ++i) {
        groups[i].key_lo = static_cast<std::uint64_t>(kSpace * i / n);
        std::uint64_t next = static_cast<std::uint64_t>(kSpace * (i + 1) / n);
        groups[i].key_hi = i + 1 == groups.size() ? ~0ull : next - 1;
    }
    return groups;
}

ShardRouter::ShardRouter(const std::vector<aom::GroupConfig>& groups) {
    ranges_.reserve(groups.size());
    for (const aom::GroupConfig& g : groups) {
        NEO_ASSERT_MSG(g.key_lo <= g.key_hi, "inverted key range");
        ranges_.push_back({g.key_lo, g.key_hi, g.group});
    }
    std::sort(ranges_.begin(), ranges_.end(),
              [](const Range& a, const Range& b) { return a.lo < b.lo; });
    // Disjoint, gap-free, full cover: any hole would orphan keys and any
    // overlap would let two groups claim one key — both are configuration
    // bugs, not runtime conditions.
    NEO_ASSERT_MSG(!ranges_.empty(), "router needs at least one group");
    NEO_ASSERT_MSG(ranges_.front().lo == 0, "hash space not covered from 0");
    for (std::size_t i = 1; i < ranges_.size(); ++i) {
        NEO_ASSERT_MSG(ranges_[i - 1].hi + 1 == ranges_[i].lo,
                       "group key ranges must tile the hash space");
    }
    NEO_ASSERT_MSG(ranges_.back().hi == ~0ull, "hash space not covered to 2^64-1");
}

std::size_t ShardRouter::index_of_hash(std::uint64_t h) const {
    NEO_ASSERT_MSG(!ranges_.empty(), "routing with an empty table");
    // Last range whose lo <= h; ranges tile the space, so it contains h.
    auto it = std::upper_bound(ranges_.begin(), ranges_.end(), h,
                               [](std::uint64_t v, const Range& r) { return v < r.lo; });
    return static_cast<std::size_t>(it - ranges_.begin()) - 1;
}

}  // namespace neo::neobft
