// Key -> replica-group routing for sharded deployments.
//
// A sharded deployment runs N independent NeoBFT replica groups, each
// sequenced by its own aom group, and partitions the application keyspace
// across them: a key belongs to the group whose [key_lo, key_hi] range
// (see aom::GroupConfig) contains the key's 64-bit hash. The router is the
// client-side view of that table — a sorted, disjoint, gap-free cover of
// the full 2^64 hash space, so every key routes to exactly one group (no
// orphan keys) and routing is a pure function of the key bytes (stable
// across clients, runs and thread counts).
#pragma once

#include <cstdint>
#include <vector>

#include "aom/types.hpp"
#include "common/bytes.hpp"

namespace neo::neobft {

class ShardRouter {
  public:
    /// 64-bit FNV-1a over the key bytes. The hash — not the raw key —
    /// is what group ranges partition, so arbitrary-length keys spread
    /// uniformly over the shards.
    static std::uint64_t key_hash(BytesView key);

    /// Splits the hash space evenly into `groups.size()` contiguous ranges,
    /// one per group, in the given order. Range i is
    /// [floor(i * 2^64 / N), floor((i+1) * 2^64 / N) - 1].
    static std::vector<aom::GroupConfig> assign_ranges(std::vector<aom::GroupConfig> groups);

    ShardRouter() = default;
    /// Builds the routing table from the groups' key ranges; asserts the
    /// ranges are disjoint and cover the full hash space.
    explicit ShardRouter(const std::vector<aom::GroupConfig>& groups);

    std::size_t shards() const { return ranges_.size(); }
    bool empty() const { return ranges_.empty(); }

    /// The group owning `key`, and its dense index in [0, shards()).
    GroupId route(BytesView key) const { return ranges_[index_of_hash(key_hash(key))].group; }
    std::size_t shard_index(BytesView key) const { return index_of_hash(key_hash(key)); }
    std::size_t index_of_hash(std::uint64_t h) const;

    GroupId group_at(std::size_t index) const { return ranges_[index].group; }

  private:
    struct Range {
        std::uint64_t lo = 0;
        std::uint64_t hi = 0;
        GroupId group = 0;
    };
    std::vector<Range> ranges_;  // sorted by lo; disjoint; covers [0, 2^64)
};

}  // namespace neo::neobft
