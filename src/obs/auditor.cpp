#include "obs/auditor.hpp"

#include <algorithm>
#include <map>

namespace neo::obs {

std::string Auditor::Violation::to_string() const {
    std::string out = invariant;
    out += " slot=" + std::to_string(slot);
    out += " node=" + std::to_string(node_a);
    if (node_b != 0) out += " vs node=" + std::to_string(node_b);
    if (digest_a != 0 || digest_b != 0) {
        out += " digest=" + std::to_string(digest_a) + " vs " + std::to_string(digest_b);
    }
    out += " t=" + std::to_string(t);
    return out;
}

void Auditor::configure(std::size_t shards) {
    shards_.assign(shards, {});
    violations_.clear();
    finalized_ = false;
}

std::size_t Auditor::records() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.size();
    return n;
}

void Auditor::finalize() {
    violations_.clear();
    finalized_ = true;

    // Deterministic global order: shard buffers are append-only and each
    // record's fields are pure functions of simulation data, so sorting by
    // (t, node, stream, slot, digest) yields the same sequence whichever
    // partition recorded it.
    std::vector<Record> all;
    all.reserve(records());
    for (const auto& s : shards_) all.insert(all.end(), s.begin(), s.end());
    std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
        if (a.t != b.t) return a.t < b.t;
        if (a.node != b.node) return a.node < b.node;
        if (a.stream != b.stream) return a.stream < b.stream;
        if (a.slot != b.slot) return a.slot < b.slot;
        return a.digest < b.digest;
    });

    struct SlotState {
        std::uint64_t digest = 0;  // first non-noop digest
        NodeId node = 0;
        bool have_request = false;
        bool flagged = false;
    };
    std::map<std::uint64_t, SlotState> slots;           // execute stream
    std::map<NodeId, std::uint64_t> exec_frontier;      // per-node last slot
    std::map<std::uint64_t, std::uint64_t> aom_next;    // (node<<32|epoch) -> next seq
    struct ViewState {
        std::uint64_t digest = 0;
        NodeId node = 0;
        bool have = false;
        bool flagged = false;
    };
    std::map<std::uint64_t, ViewState> views;

    for (const Record& r : all) {
        switch (r.stream) {
            case Stream::kExecute: {
                if (!r.noop) {
                    SlotState& st = slots[r.slot];
                    if (!st.have_request) {
                        st.have_request = true;
                        st.digest = r.digest;
                        st.node = r.node;
                    } else if (st.digest != r.digest && !st.flagged) {
                        st.flagged = true;
                        violations_.push_back({"divergent_commit", r.slot, st.node, r.node,
                                               st.digest, r.digest, r.t});
                    }
                }
                auto [it, fresh] = exec_frontier.try_emplace(r.node, r.slot);
                if (!fresh) {
                    std::uint64_t last = it->second;
                    if (r.replay) {
                        // Rollback / view-merge / state-transfer re-execution
                        // legitimately revisits committed slots — and may
                        // leave the log SHORTER than before (epoch-change
                        // truncation), so a replay record resets the frontier
                        // rather than merely advancing it.
                        it->second = r.slot;
                    } else if (r.slot <= last) {
                        violations_.push_back(
                            {"seq_regression", r.slot, r.node, 0, r.slot, last, r.t});
                    } else if (r.slot != last + 1) {
                        violations_.push_back(
                            {"seq_gap", r.slot, r.node, 0, r.slot, last, r.t});
                        it->second = r.slot;
                    } else {
                        it->second = r.slot;
                    }
                }
                break;
            }
            case Stream::kAomDeliver: {
                std::uint64_t epoch = r.slot >> 32;
                std::uint64_t seq = r.digest;
                std::uint64_t key = (static_cast<std::uint64_t>(r.node) << 32) | epoch;
                auto [it, fresh] = aom_next.try_emplace(key, seq + 1);
                if (!fresh) {
                    if (seq < it->second) {
                        violations_.push_back(
                            {"seq_regression", r.slot, r.node, 0, seq, it->second - 1, r.t});
                    } else if (seq != it->second) {
                        violations_.push_back(
                            {"seq_gap", r.slot, r.node, 0, seq, it->second - 1, r.t});
                        it->second = seq + 1;
                    } else {
                        it->second = seq + 1;
                    }
                }
                break;
            }
            case Stream::kView: {
                ViewState& st = views[r.slot];
                if (!st.have) {
                    st.have = true;
                    st.digest = r.digest;
                    st.node = r.node;
                } else if (st.digest != r.digest && !st.flagged) {
                    st.flagged = true;
                    violations_.push_back({"view_conflict", r.slot, st.node, r.node, st.digest,
                                           r.digest, r.t});
                }
                break;
            }
        }
    }
}

void Auditor::report(TraceSink* tr) const {
    if (tr == nullptr) return;
    for (const Violation& v : violations_) {
        tr->violation(v.t, v.node_a, v.invariant, v.slot, v.node_b);
    }
}

}  // namespace neo::obs
