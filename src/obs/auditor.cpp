#include "obs/auditor.hpp"

#include <algorithm>
#include <map>
#include <tuple>
#include <utility>

namespace neo::obs {

std::string Auditor::Violation::to_string() const {
    std::string out = invariant;
    out += " slot=" + std::to_string(slot);
    out += " node=" + std::to_string(node_a);
    if (node_b != 0) out += " vs node=" + std::to_string(node_b);
    if (digest_a != 0 || digest_b != 0) {
        out += " digest=" + std::to_string(digest_a) + " vs " + std::to_string(digest_b);
    }
    out += " t=" + std::to_string(t);
    return out;
}

void Auditor::configure(std::size_t shards) {
    shards_.assign(shards, {});
    violations_.clear();
    finalized_ = false;
}

std::size_t Auditor::records() const {
    std::size_t n = 0;
    for (const auto& s : shards_) n += s.size();
    return n;
}

void Auditor::finalize() {
    violations_.clear();
    finalized_ = true;

    // Deterministic global order: shard buffers are append-only and each
    // record's fields are pure functions of simulation data, so sorting by
    // (t, node, stream, slot, digest) yields the same sequence whichever
    // partition recorded it.
    std::vector<Record> all;
    all.reserve(records());
    for (const auto& s : shards_) all.insert(all.end(), s.begin(), s.end());
    std::sort(all.begin(), all.end(), [](const Record& a, const Record& b) {
        if (a.t != b.t) return a.t < b.t;
        if (a.group != b.group) return a.group < b.group;
        if (a.node != b.node) return a.node < b.node;
        if (a.stream != b.stream) return a.stream < b.stream;
        if (a.slot != b.slot) return a.slot < b.slot;
        return a.digest < b.digest;
    });

    struct SlotState {
        std::uint64_t digest = 0;  // first non-noop digest
        NodeId node = 0;
        bool have_request = false;
        bool flagged = false;
    };
    // Sharded deployments run one independent log per replica group, so the
    // slot and view spaces are scoped by group: shard 0's slot 5 and shard
    // 1's slot 5 hold unrelated requests and must never cross-flag.
    using GroupSlot = std::pair<GroupId, std::uint64_t>;
    std::map<GroupSlot, SlotState> slots;               // execute stream
    std::map<NodeId, std::uint64_t> exec_frontier;      // per-node last slot
    std::map<std::uint64_t, std::uint64_t> aom_next;    // (node<<32|epoch) -> next seq
    struct ViewState {
        std::uint64_t digest = 0;
        NodeId node = 0;
        bool have = false;
        bool flagged = false;
    };
    std::map<GroupSlot, ViewState> views;

    // Cross-shard 2PC: the FINAL (latest, replay-aware) decision each node
    // reported per transaction phase. Keyed (txn, group, node).
    struct TxnNodeState {
        bool have_vote = false;
        bool vote_prepared = false;   // final kPrepare decision
        sim::Time vote_t = 0;
        // Final phase-2 outcome: 0 = none yet, 1 = commit applied,
        // 2 = commit rejected (txn never prepared here), 3 = abort applied.
        int outcome = 0;
        sim::Time outcome_t = 0;
    };
    std::map<std::tuple<std::uint64_t, GroupId, NodeId>, TxnNodeState> txns;

    for (const Record& r : all) {
        switch (r.stream) {
            case Stream::kExecute: {
                if (!r.noop) {
                    SlotState& st = slots[{r.group, r.slot}];
                    if (!st.have_request) {
                        st.have_request = true;
                        st.digest = r.digest;
                        st.node = r.node;
                    } else if (st.digest != r.digest && !st.flagged) {
                        st.flagged = true;
                        violations_.push_back({"divergent_commit", r.slot, st.node, r.node,
                                               st.digest, r.digest, r.t});
                    }
                }
                auto [it, fresh] = exec_frontier.try_emplace(r.node, r.slot);
                if (!fresh) {
                    std::uint64_t last = it->second;
                    if (r.replay) {
                        // Rollback / view-merge / state-transfer re-execution
                        // legitimately revisits committed slots — and may
                        // leave the log SHORTER than before (epoch-change
                        // truncation), so a replay record resets the frontier
                        // rather than merely advancing it.
                        it->second = r.slot;
                    } else if (r.slot <= last) {
                        violations_.push_back(
                            {"seq_regression", r.slot, r.node, 0, r.slot, last, r.t});
                    } else if (r.slot != last + 1) {
                        violations_.push_back(
                            {"seq_gap", r.slot, r.node, 0, r.slot, last, r.t});
                        it->second = r.slot;
                    } else {
                        it->second = r.slot;
                    }
                }
                break;
            }
            case Stream::kAomDeliver: {
                std::uint64_t epoch = r.slot >> 32;
                std::uint64_t seq = r.digest;
                std::uint64_t key = (static_cast<std::uint64_t>(r.node) << 32) | epoch;
                auto [it, fresh] = aom_next.try_emplace(key, seq + 1);
                if (!fresh) {
                    if (seq < it->second) {
                        violations_.push_back(
                            {"seq_regression", r.slot, r.node, 0, seq, it->second - 1, r.t});
                    } else if (seq != it->second) {
                        violations_.push_back(
                            {"seq_gap", r.slot, r.node, 0, seq, it->second - 1, r.t});
                        it->second = seq + 1;
                    } else {
                        it->second = seq + 1;
                    }
                }
                break;
            }
            case Stream::kAomResume: {
                // The recovered receiver re-adopts the delivery frontier from
                // the live stream (resume_mid_epoch): drop its contiguity
                // state for every epoch so the first post-resume delivery
                // re-seeds instead of flagging a false seq_gap. The exec
                // stream needs no equivalent — recovery emits a replay-marked
                // restore record there.
                std::uint64_t lo = static_cast<std::uint64_t>(r.node) << 32;
                aom_next.erase(aom_next.lower_bound(lo),
                               aom_next.lower_bound(lo + (1ull << 32)));
                break;
            }
            case Stream::kView: {
                ViewState& st = views[{r.group, r.slot}];
                if (!st.have) {
                    st.have = true;
                    st.digest = r.digest;
                    st.node = r.node;
                } else if (st.digest != r.digest && !st.flagged) {
                    st.flagged = true;
                    violations_.push_back({"view_conflict", r.slot, st.node, r.node, st.digest,
                                           r.digest, r.t});
                }
                break;
            }
            case Stream::kTxn: {
                auto phase = static_cast<TxnPhase>(r.digest >> 1);
                bool applied = (r.digest & 1) != 0;
                TxnNodeState& st = txns[{r.slot, r.group, r.node}];
                // Records arrive time-sorted, so assignment keeps the final
                // decision: speculative rollback legitimately flips a vote
                // before the log stabilises, and only the stable value is a
                // safety claim.
                if (phase == TxnPhase::kPrepare) {
                    st.have_vote = true;
                    st.vote_prepared = applied;
                    st.vote_t = r.t;
                } else if (phase == TxnPhase::kCommit) {
                    st.outcome = applied ? 1 : 2;
                    st.outcome_t = r.t;
                } else {
                    if (applied) {
                        st.outcome = 3;
                        st.outcome_t = r.t;
                    }
                }
                break;
            }
        }
    }

    // Cross-shard 2PC invariants over the final per-node decisions.
    //
    //  - txn_vote_conflict: two replicas of the SAME group ended with
    //    different prepare votes for one transaction. Honest groups execute
    //    the ordered prepare op through a deterministic state machine, so
    //    their final votes must agree.
    //  - txn_divergent_decision: atomicity across groups — some group
    //    applied the commit while another group's final outcome was an
    //    abort or a commit-reject (the participant never held the prepared
    //    write-set: the forged-vote signature).
    {
        struct GroupAgg {
            bool have_vote = false;
            bool vote_prepared = false;
            NodeId vote_node = 0;
            bool vote_flagged = false;
            sim::Time vote_t = 0;
        };
        std::map<std::pair<std::uint64_t, GroupId>, GroupAgg> by_group;
        struct TxnAgg {
            NodeId commit_node = 0;
            sim::Time commit_t = 0;
            bool committed = false;
            NodeId reject_node = 0;
            sim::Time reject_t = 0;
            int reject_outcome = 0;
            bool flagged = false;
        };
        std::map<std::uint64_t, TxnAgg> by_txn;
        for (const auto& [key, st] : txns) {
            auto [txn, group, node] = key;
            if (st.have_vote) {
                GroupAgg& g = by_group[{txn, group}];
                if (!g.have_vote) {
                    g.have_vote = true;
                    g.vote_prepared = st.vote_prepared;
                    g.vote_node = node;
                    g.vote_t = st.vote_t;
                } else if (g.vote_prepared != st.vote_prepared && !g.vote_flagged) {
                    g.vote_flagged = true;
                    violations_.push_back({"txn_vote_conflict", txn, g.vote_node, node,
                                           g.vote_prepared ? 1u : 0u, st.vote_prepared ? 1u : 0u,
                                           std::max(g.vote_t, st.vote_t)});
                }
            }
            if (st.outcome == 1) {
                TxnAgg& a = by_txn[txn];
                if (!a.committed || st.outcome_t < a.commit_t) {
                    a.committed = true;
                    a.commit_node = node;
                    a.commit_t = st.outcome_t;
                }
            } else if (st.outcome == 2 || st.outcome == 3) {
                TxnAgg& a = by_txn[txn];
                if (a.reject_outcome == 0 || st.outcome_t < a.reject_t) {
                    a.reject_node = node;
                    a.reject_t = st.outcome_t;
                    a.reject_outcome = st.outcome;
                }
            }
        }
        for (auto& [txn, a] : by_txn) {
            if (a.committed && a.reject_outcome != 0 && !a.flagged) {
                a.flagged = true;
                violations_.push_back({"txn_divergent_decision", txn, a.commit_node,
                                       a.reject_node, 1u,
                                       static_cast<std::uint64_t>(a.reject_outcome),
                                       std::max(a.commit_t, a.reject_t)});
            }
        }
    }

    // txn_orphan_prepare (liveness): a participant whose final vote was
    // PREPARED holds its write locks until a phase-2 verdict lands. The
    // presumed-abort sweep guarantees an eventual local abort even when the
    // coordinator died mid-protocol, so a prepared vote with no outcome
    // past the grace window is a leaked lock.
    if (txn_orphan_grace_ != 0) {
        for (const auto& [key, st] : txns) {
            auto [txn, group, node] = key;
            if (!st.have_vote || !st.vote_prepared || st.outcome != 0) continue;
            if (st.vote_t + txn_orphan_grace_ > end_time_) continue;
            violations_.push_back({"txn_orphan_prepare", txn, node, 0,
                                   static_cast<std::uint64_t>(group), 0, st.vote_t});
        }
    }
}

void Auditor::report(TraceSink* tr) const {
    if (tr == nullptr) return;
    for (const Violation& v : violations_) {
        tr->violation(v.t, v.node_a, v.invariant, v.slot, v.node_b);
    }
}

}  // namespace neo::obs
