// Online safety-invariant monitor (ROADMAP item 3: "no divergent commits",
// asserted continuously rather than only in figure checks).
//
// Every replica — NeoBFT and all baselines — reports its commit/execute,
// aom-delivery and view-decision events into an Auditor owned by the
// deployment. The Auditor cross-checks them against the protocol safety
// invariants:
//
//  - divergent_commit: two replicas committed *different requests* at the
//    same slot (request-vs-request digest conflict). A noop alongside a
//    request is NOT a violation — NeoBFT's gap agreement legitimately
//    commits a noop that a later ordering certificate supersedes (the
//    rollback path only ever replaces noop<->request, never
//    request->different-request).
//  - seq_gap / seq_regression: a replica's execution frontier skipped a
//    slot or moved backwards (rollback re-execution reports replay=true
//    and is exempt), and aom delivery within an epoch was not contiguous.
//  - view_conflict: two replicas entered the same view having adopted
//    different merged logs.
//
// PDES-safety: reports append to per-shard buffers (shard =
// Simulator::current_shard(), sized partitions+1 exactly like the
// Network's sharded counters), so node events never contend on shared
// state. All checking happens in finalize(), called from global context
// (after run()/run_until()); it merge-sorts the shard buffers into one
// deterministic record order, so the violation list is byte-identical
// across --sim-threads values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace neo::obs {

class Auditor {
  public:
    enum class Stream : std::uint8_t {
        kExecute = 0,   // replica committed/executed a slot
        kAomDeliver,    // aom receiver delivered (epoch, seq)
        kView,          // replica entered a view with an adopted log
        kTxn,           // cross-shard transaction phase decision
        kAomResume,     // receiver rejoined the stream mid-epoch (crash recovery)
    };

    /// kTxn phases (the 2PC verbs a participant shard applies in log order).
    enum class TxnPhase : std::uint8_t { kPrepare = 0, kCommit = 1, kAbort = 2 };

    struct Record {
        sim::Time t = 0;
        NodeId node = 0;
        Stream stream = Stream::kExecute;
        std::uint64_t slot = 0;    // log slot | epoch<<32|seq | encoded view | txn id
        std::uint64_t digest = 0;  // request/log content digest (0 = noop) | phase<<1|applied
        bool noop = false;
        bool replay = false;       // rollback re-execution: exempt from ordering
        /// Replica group the reporting node belongs to. Sharded deployments
        /// run N independent logs, so slot/view spaces are per-group: group
        /// scopes the divergent_commit and view_conflict keys (0 for the
        /// single-group protocols and all baselines).
        GroupId group = 0;
    };

    struct Violation {
        const char* invariant = "";  // static storage (trace label discipline)
        std::uint64_t slot = 0;
        NodeId node_a = 0;
        NodeId node_b = 0;
        std::uint64_t digest_a = 0;
        std::uint64_t digest_b = 0;
        sim::Time t = 0;  // virtual time of the offending record

        std::string to_string() const;
    };

    /// Size the per-shard buffers; `shards` must be partitions + 1 (the
    /// last shard takes reports from global context). Discards prior state.
    void configure(std::size_t shards);
    bool configured() const { return !shards_.empty(); }

    // ---- reporting (from inside node events; shard = current_shard()) ----

    void on_execute(std::size_t shard, sim::Time t, NodeId node, std::uint64_t slot,
                    std::uint64_t digest, bool noop, bool replay = false, GroupId group = 0) {
        shards_[shard].push_back(
            {t, node, Stream::kExecute, slot, digest, noop, replay, group});
    }
    void on_aom_deliver(std::size_t shard, sim::Time t, NodeId node, std::uint64_t epoch,
                        std::uint64_t seq) {
        shards_[shard].push_back(
            {t, node, Stream::kAomDeliver, (epoch << 32) | (seq & 0xffffffffu), seq, false,
             false, 0});
    }
    /// A crash-recovered receiver rejoined the aom stream mid-epoch: its
    /// delivery sequence restarts from whatever the live stream carries
    /// next, so the per-(node, epoch) contiguity tracking resets here
    /// instead of flagging a false seq_gap.
    void on_aom_resume(std::size_t shard, sim::Time t, NodeId node) {
        shards_[shard].push_back({t, node, Stream::kAomResume, 0, 0, false, true, 0});
    }
    void on_view_decision(std::size_t shard, sim::Time t, NodeId node, std::uint64_t view,
                          std::uint64_t log_digest, GroupId group = 0) {
        shards_[shard].push_back(
            {t, node, Stream::kView, view, log_digest, false, false, group});
    }
    /// A replica applied (or rejected) a cross-shard 2PC phase for `txn_id`
    /// in its group's log order. `applied` for kPrepare means "voted
    /// PREPARED (locked)"; for kCommit/kAbort it means the staged write-set
    /// was applied / discarded, false meaning the phase arrived for a txn
    /// this shard never prepared (the forged-vote signature). Speculative
    /// rollback re-reports with replay=true; only the FINAL report per
    /// (txn, group, node, phase) is judged.
    void on_txn(std::size_t shard, sim::Time t, NodeId node, GroupId group,
                std::uint64_t txn_id, TxnPhase phase, bool applied, bool replay = false) {
        std::uint64_t digest =
            (static_cast<std::uint64_t>(phase) << 1) | (applied ? 1u : 0u);
        shards_[shard].push_back(
            {t, node, Stream::kTxn, txn_id, digest, false, replay, group});
    }

    /// Enables the txn_orphan_prepare check: any participant whose FINAL
    /// prepare vote was PREPARED must also record a phase-2 outcome
    /// (commit or abort — the presumed-abort sweep guarantees one) unless
    /// the vote landed within `grace` of `end_time` (still legitimately in
    /// flight when the run stopped). grace = 0 disables the check.
    void set_txn_orphan_grace(sim::Time grace, sim::Time end_time) {
        txn_orphan_grace_ = grace;
        end_time_ = end_time;
    }

    // ---- checking (global context only) ----

    /// Merge-sorts every shard buffer into one deterministic order and
    /// replays all invariants from scratch. Idempotent.
    void finalize();
    bool finalized() const { return finalized_; }
    /// True iff finalize() ran and found nothing.
    bool ok() const { return finalized_ && violations_.empty(); }
    const std::vector<Violation>& violations() const { return violations_; }
    std::size_t records() const;

    /// One structured kViolation trace event per violation; null-safe.
    void report(TraceSink* tr) const;

    /// Liveness assertion hook (scenario engine; call AFTER finalize()):
    /// records a violation when an honest client ended the run with fewer
    /// committed requests than the scenario requires.
    void expect_client_commits(NodeId client, std::uint64_t completed,
                               std::uint64_t required, sim::Time t) {
        if (completed >= required) return;
        violations_.push_back({"liveness", required, client, 0, completed, required, t});
    }

  private:
    std::vector<std::vector<Record>> shards_;
    std::vector<Violation> violations_;
    bool finalized_ = false;
    sim::Time txn_orphan_grace_ = 0;
    sim::Time end_time_ = 0;
};

}  // namespace neo::obs
