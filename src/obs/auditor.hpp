// Online safety-invariant monitor (ROADMAP item 3: "no divergent commits",
// asserted continuously rather than only in figure checks).
//
// Every replica — NeoBFT and all baselines — reports its commit/execute,
// aom-delivery and view-decision events into an Auditor owned by the
// deployment. The Auditor cross-checks them against the protocol safety
// invariants:
//
//  - divergent_commit: two replicas committed *different requests* at the
//    same slot (request-vs-request digest conflict). A noop alongside a
//    request is NOT a violation — NeoBFT's gap agreement legitimately
//    commits a noop that a later ordering certificate supersedes (the
//    rollback path only ever replaces noop<->request, never
//    request->different-request).
//  - seq_gap / seq_regression: a replica's execution frontier skipped a
//    slot or moved backwards (rollback re-execution reports replay=true
//    and is exempt), and aom delivery within an epoch was not contiguous.
//  - view_conflict: two replicas entered the same view having adopted
//    different merged logs.
//
// PDES-safety: reports append to per-shard buffers (shard =
// Simulator::current_shard(), sized partitions+1 exactly like the
// Network's sharded counters), so node events never contend on shared
// state. All checking happens in finalize(), called from global context
// (after run()/run_until()); it merge-sorts the shard buffers into one
// deterministic record order, so the violation list is byte-identical
// across --sim-threads values.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace neo::obs {

class Auditor {
  public:
    enum class Stream : std::uint8_t {
        kExecute = 0,   // replica committed/executed a slot
        kAomDeliver,    // aom receiver delivered (epoch, seq)
        kView,          // replica entered a view with an adopted log
    };

    struct Record {
        sim::Time t = 0;
        NodeId node = 0;
        Stream stream = Stream::kExecute;
        std::uint64_t slot = 0;    // log slot | epoch<<32|seq | encoded view
        std::uint64_t digest = 0;  // request/log content digest (0 = noop)
        bool noop = false;
        bool replay = false;       // rollback re-execution: exempt from ordering
    };

    struct Violation {
        const char* invariant = "";  // static storage (trace label discipline)
        std::uint64_t slot = 0;
        NodeId node_a = 0;
        NodeId node_b = 0;
        std::uint64_t digest_a = 0;
        std::uint64_t digest_b = 0;
        sim::Time t = 0;  // virtual time of the offending record

        std::string to_string() const;
    };

    /// Size the per-shard buffers; `shards` must be partitions + 1 (the
    /// last shard takes reports from global context). Discards prior state.
    void configure(std::size_t shards);
    bool configured() const { return !shards_.empty(); }

    // ---- reporting (from inside node events; shard = current_shard()) ----

    void on_execute(std::size_t shard, sim::Time t, NodeId node, std::uint64_t slot,
                    std::uint64_t digest, bool noop, bool replay = false) {
        shards_[shard].push_back({t, node, Stream::kExecute, slot, digest, noop, replay});
    }
    void on_aom_deliver(std::size_t shard, sim::Time t, NodeId node, std::uint64_t epoch,
                        std::uint64_t seq) {
        shards_[shard].push_back(
            {t, node, Stream::kAomDeliver, (epoch << 32) | (seq & 0xffffffffu), seq, false,
             false});
    }
    void on_view_decision(std::size_t shard, sim::Time t, NodeId node, std::uint64_t view,
                          std::uint64_t log_digest) {
        shards_[shard].push_back({t, node, Stream::kView, view, log_digest, false, false});
    }

    // ---- checking (global context only) ----

    /// Merge-sorts every shard buffer into one deterministic order and
    /// replays all invariants from scratch. Idempotent.
    void finalize();
    bool finalized() const { return finalized_; }
    /// True iff finalize() ran and found nothing.
    bool ok() const { return finalized_ && violations_.empty(); }
    const std::vector<Violation>& violations() const { return violations_; }
    std::size_t records() const;

    /// One structured kViolation trace event per violation; null-safe.
    void report(TraceSink* tr) const;

  private:
    std::vector<std::vector<Record>> shards_;
    std::vector<Violation> violations_;
    bool finalized_ = false;
};

}  // namespace neo::obs
