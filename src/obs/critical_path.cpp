#include "obs/critical_path.hpp"

#include <cstdio>
#include <map>

#include "common/histogram.hpp"

namespace neo::obs {

const char* const kPhaseOrder[] = {
    "client_submit",  // client invoke -> sequencer ingress (NeoBFT) or
                      // arrival in the leader's batcher (baselines)
    "batch",          // wait in the leader's adaptive batcher until seal
                      // (baselines only; NeoBFT has no leader batching)
    "sequence",       // sequencer ingress -> stamped emission
    "net_fanout",     // emission -> first aom packet at the completing replica
    "aom_deliver",    // aom authentication/confirm -> delivery to the replica
    "ordering",       // delivery -> execution start (baselines: the whole
                      // ordering protocol, since they have no aom spans)
    "execute",        // app execution on the completing replica
    "reply_net",      // execution done -> first matching reply at the client
    "reply_quorum",   // first matching reply -> 2f+1 quorum completion
};
const std::size_t kPhaseOrderCount = sizeof(kPhaseOrder) / sizeof(kPhaseOrder[0]);

namespace {

constexpr sim::Time kUnset = -1;

struct PerTid {
    sim::Time req_b = kUnset, req_e = kUnset;
    NodeId completing = 0;
    sim::Time quorum_b = kUnset;
    sim::Time batch_b = kUnset, batch_e = kUnset;
    sim::Time seq_b = kUnset, seq_e = kUnset;
    std::map<NodeId, sim::Time> deliver_b, deliver_e;
    std::map<NodeId, sim::Time> exec_b, exec_e;
};

sim::Time lookup(const std::map<NodeId, sim::Time>& m, NodeId node) {
    auto it = m.find(node);
    return it == m.end() ? kUnset : it->second;
}

void set_once(sim::Time& slot, sim::Time t) {
    if (slot == kUnset) slot = t;
}

}  // namespace

CriticalPathReport analyze_spans(const std::vector<SpanRecord>& spans) {
    std::map<std::uint64_t, PerTid> reqs;
    for (const SpanRecord& s : spans) {
        PerTid& r = reqs[s.tid];
        if (s.name == "request") {
            if (s.begin) {
                set_once(r.req_b, s.t);
            } else if (r.req_e == kUnset) {
                r.req_e = s.t;
                r.completing = static_cast<NodeId>(s.peer);
            }
        } else if (s.name == "quorum") {
            if (s.begin) set_once(r.quorum_b, s.t);
        } else if (s.name == "batch") {
            if (s.begin) set_once(r.batch_b, s.t);
            else set_once(r.batch_e, s.t);
        } else if (s.name == "sequence") {
            if (s.begin) set_once(r.seq_b, s.t);
            else set_once(r.seq_e, s.t);
        } else if (s.name == "deliver") {
            auto& m = s.begin ? r.deliver_b : r.deliver_e;
            m.try_emplace(s.node, s.t);
        } else if (s.name == "execute") {
            auto& m = s.begin ? r.exec_b : r.exec_e;
            m.try_emplace(s.node, s.t);
        }
    }

    CriticalPathReport rep;
    std::map<std::string, Histogram> phase_hist;
    std::map<std::string, std::size_t> dominant;
    Histogram e2e;
    double phase_sum_total = 0;
    double e2e_sum_total = 0;

    for (auto& [tid, r] : reqs) {
        if (r.req_b == kUnset || r.req_e == kUnset) continue;  // not committed
        ++rep.requests;

        struct Cut {
            const char* phase;
            sim::Time t;
        };
        const Cut cuts[] = {
            // client_submit ends where the pipeline first takes custody of
            // the request: the sequencer ingress (NeoBFT) or the leader's
            // batcher (baselines, which have no sequence spans).
            {"client_submit", r.batch_b != kUnset ? r.batch_b : r.seq_b},
            {"batch", r.batch_e},
            {"sequence", r.seq_e},
            {"net_fanout", lookup(r.deliver_b, r.completing)},
            {"aom_deliver", lookup(r.deliver_e, r.completing)},
            {"ordering", lookup(r.exec_b, r.completing)},
            {"execute", lookup(r.exec_e, r.completing)},
            {"reply_net", r.quorum_b},
        };

        // Walk the pipeline; each observed, monotonic cut closes one phase.
        // Skipped cuts fold their interval into the next observed phase, so
        // the phase durations always sum to exactly req_e - req_b.
        sim::Time prev = r.req_b;
        const char* longest = "reply_quorum";
        sim::Time longest_dur = -1;
        double phase_sum = 0;
        auto close = [&](const char* phase, sim::Time t) {
            sim::Time dur = t - prev;
            prev = t;
            double us = static_cast<double>(dur) / 1000.0;
            phase_hist[phase].add(us);
            phase_sum += us;
            if (dur > longest_dur) {
                longest_dur = dur;
                longest = phase;
            }
        };
        for (const Cut& c : cuts) {
            if (c.t == kUnset || c.t < prev || c.t > r.req_e) continue;
            close(c.phase, c.t);
        }
        close("reply_quorum", r.req_e);

        double e2e_us = static_cast<double>(r.req_e - r.req_b) / 1000.0;
        e2e.add(e2e_us);
        ++dominant[longest];
        phase_sum_total += phase_sum;
        e2e_sum_total += e2e_us;
    }

    if (!e2e.empty()) {
        rep.e2e_mean_us = e2e.mean();
        rep.e2e_p50_us = e2e.percentile(50);
        rep.e2e_p99_us = e2e.percentile(99);
    }
    rep.residual_us = phase_sum_total - e2e_sum_total;

    auto emit = [&](const std::string& name) {
        auto it = phase_hist.find(name);
        if (it == phase_hist.end()) return;
        Histogram& h = it->second;
        PhaseStat st;
        st.phase = name;
        st.count = h.count();
        st.mean_us = h.mean();
        st.p50_us = h.percentile(50);
        st.p99_us = h.percentile(99);
        st.max_us = h.max();
        st.share_pct =
            e2e_sum_total > 0 ? 100.0 * h.mean() * h.count() / e2e_sum_total : 0;
        auto dit = dominant.find(name);
        st.dominant = dit == dominant.end() ? 0 : dit->second;
        rep.phases.push_back(std::move(st));
        phase_hist.erase(it);
    };
    for (std::size_t i = 0; i < kPhaseOrderCount; ++i) emit(kPhaseOrder[i]);
    while (!phase_hist.empty()) emit(phase_hist.begin()->first);  // unknown names
    return rep;
}

CriticalPathReport analyze_trace(const TraceSink& sink) {
    std::vector<SpanRecord> spans;
    for (const TraceEvent& e : sink.events()) {
        if (e.kind != EventKind::kSpanBegin && e.kind != EventKind::kSpanEnd) continue;
        spans.push_back({e.t, e.node, e.kind == EventKind::kSpanBegin, e.label, e.a, e.b});
    }
    return analyze_spans(spans);
}

std::string format_report(const CriticalPathReport& r) {
    char buf[256];
    std::string out;
    std::snprintf(buf, sizeof(buf),
                  "critical path over %zu committed requests: e2e mean %.3f us, "
                  "p50 %.3f us, p99 %.3f us\n",
                  r.requests, r.e2e_mean_us, r.e2e_p50_us, r.e2e_p99_us);
    out += buf;
    std::snprintf(buf, sizeof(buf), "%-14s %8s %10s %10s %10s %10s %7s %9s\n", "phase", "count",
                  "mean_us", "p50_us", "p99_us", "max_us", "share%", "dominant%");
    out += buf;
    for (const PhaseStat& p : r.phases) {
        double dom_pct = r.requests > 0 ? 100.0 * static_cast<double>(p.dominant) /
                                              static_cast<double>(r.requests)
                                        : 0;
        std::snprintf(buf, sizeof(buf), "%-14s %8zu %10.3f %10.3f %10.3f %10.3f %7.2f %9.2f\n",
                      p.phase.c_str(), p.count, p.mean_us, p.p50_us, p.p99_us, p.max_us,
                      p.share_pct, dom_pct);
        out += buf;
    }
    std::snprintf(buf, sizeof(buf), "phase-sum residual vs end-to-end: %.6f us\n", r.residual_us);
    out += buf;
    return out;
}

}  // namespace neo::obs
