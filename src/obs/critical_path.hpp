// Commit critical-path analysis over request-scoped spans.
//
// Every committed request leaves a small span set in the trace, all keyed
// by one trace id (obs::trace_id over the serialized signed request):
//
//   client   "request"   submit -> quorum completion (peer on the end
//                        event = the replica whose reply completed the
//                        2f+1 quorum)
//   client   "quorum"    first matching reply -> quorum completion
//   leader   "batch"     request queued in the leader's adaptive batcher
//                        -> batch sealed (baselines only)
//   switch   "sequence"  sequencer ingress -> stamped emission
//   replica  "deliver"   first aom packet for the seq -> app delivery
//   replica  "execute"   delivery handler -> app execution done
//
// The analyzer cuts each request's end-to-end interval at the boundaries
// observed on the quorum-completing replica, so the per-phase durations
// telescope: their sum equals the end-to-end commit latency *exactly*.
// Missing spans (baselines have no sequence/deliver) merge into the next
// observed phase; out-of-order cuts (a first reply arriving before the
// completing replica finished) are skipped the same way.
//
// Consumed both in-process (TraceSink::events() after a bench run, for the
// phase_* suite metrics) and offline (bench/trace_report parses exported
// JSONL/Chrome files back into SpanRecords).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/trace.hpp"
#include "sim/time.hpp"

namespace neo::obs {

/// Format-independent span event (one kSpanBegin/kSpanEnd record).
struct SpanRecord {
    sim::Time t = 0;
    NodeId node = 0;
    bool begin = false;
    std::string name;
    std::uint64_t tid = 0;
    std::uint64_t peer = 0;
};

/// Per-phase attribution across all committed requests.
struct PhaseStat {
    std::string phase;
    std::size_t count = 0;      // requests where the phase was observed
    double mean_us = 0;
    double p50_us = 0;
    double p99_us = 0;
    double max_us = 0;
    double share_pct = 0;       // of summed end-to-end time
    std::size_t dominant = 0;   // requests where this phase was the longest
};

struct CriticalPathReport {
    std::size_t requests = 0;   // committed requests analyzed
    double e2e_mean_us = 0;
    double e2e_p50_us = 0;
    double e2e_p99_us = 0;
    /// Pipeline order (client_submit, sequence, ..., reply_quorum); only
    /// phases observed at least once appear.
    std::vector<PhaseStat> phases;
    /// Sum over requests of (sum of phases - end_to_end); exactly 0 by
    /// construction, kept as a self-check the report prints.
    double residual_us = 0;
};

/// Canonical phase order; unknown phases sort last.
extern const char* const kPhaseOrder[];
extern const std::size_t kPhaseOrderCount;

CriticalPathReport analyze_spans(const std::vector<SpanRecord>& spans);

/// Pulls kSpanBegin/kSpanEnd events out of a sink and analyzes them.
CriticalPathReport analyze_trace(const TraceSink& sink);

/// The p50/p99 phase-attribution table + dominant-phase (critical path)
/// distribution, as printed by fig7 --phases and bench/trace_report.
std::string format_report(const CriticalPathReport& r);

}  // namespace neo::obs
