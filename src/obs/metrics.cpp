#include "obs/metrics.hpp"

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace neo::obs {

Counter& Registry::counter(const std::string& name) {
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(name, std::make_unique<Counter>()).first;
    }
    return *it->second;
}

void Registry::set_value(const std::string& name, double v) { values_[name] = v; }

void Registry::add_collector(std::function<void(Registry&)> fn) {
    collectors_.push_back(std::move(fn));
}

void Registry::run_collectors() {
    if (collecting_) return;  // a collector dumping the registry re-enters
    collecting_ = true;
    for (auto& fn : collectors_) fn(*this);
    collecting_ = false;
}

namespace {

// Deterministic number formatting: integers print without a fraction, other
// values with up to 6 significant decimals (trailing zeros trimmed).
std::string fmt_number(double v) {
    if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
        return buf;
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6f", v);
    std::string s = buf;
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
    return s;
}

}  // namespace

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void Registry::write_json(std::ostream& os) {
    run_collectors();
    os << "{\n  \"counters\": {";
    bool first = true;
    for (const auto& [name, c] : counters_) {
        os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": " << c->value();
        first = false;
    }
    os << (first ? "},\n" : "\n  },\n");
    os << "  \"values\": {";
    first = true;
    for (const auto& [name, v] : values_) {
        os << (first ? "\n" : ",\n") << "    \"" << json_escape(name) << "\": " << fmt_number(v);
        first = false;
    }
    os << (first ? "}\n" : "\n  }\n") << "}\n";
}

bool Registry::write_json_file(const std::string& path) {
    std::ofstream os(path, std::ios::binary);
    if (!os) return false;
    write_json(os);
    return static_cast<bool>(os);
}

std::map<std::string, double> Registry::snapshot() {
    run_collectors();
    std::map<std::string, double> out = values_;
    for (const auto& [name, c] : counters_) out[name] = static_cast<double>(c->value());
    return out;
}

}  // namespace neo::obs
