// Metrics registry: counters, gauges and dump-time collectors.
//
// Hot paths keep their counters as plain member integers (or obs::Counter
// handles pre-registered before the run); the registry pulls everything
// together at dump time via collectors, so instrumentation costs nothing
// while the simulation runs. Output is JSON with keys sorted by name, which
// makes dumps from same-seed runs byte-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

namespace neo::obs {

/// Monotonic counter with a stable address: registry handles stay valid for
/// the registry's lifetime, so nodes can hold `Counter&` and increment it
/// from hot paths without any lookup.
class Counter {
  public:
    void inc(std::uint64_t d = 1) { v_ += d; }
    void set(std::uint64_t v) { v_ = v; }
    std::uint64_t value() const { return v_; }

  private:
    std::uint64_t v_ = 0;
};

class Registry {
  public:
    /// Returns the counter registered under `name`, creating it on first
    /// use. The returned reference is stable.
    Counter& counter(const std::string& name);

    /// Sets a point-in-time value (collectors use this to publish node
    /// statistics at dump time; calling it again overwrites).
    void set_value(const std::string& name, double v);

    /// Registers a dump-time callback. Collectors run (in registration
    /// order) at the start of every write_json / values snapshot, and
    /// typically publish a node's internal counters via set_value().
    void add_collector(std::function<void(Registry&)> fn);

    /// Runs collectors, then writes `{"counters":{...},"values":{...}}`
    /// with keys sorted lexicographically.
    void write_json(std::ostream& os);
    /// write_json to a file; returns false if the file cannot be opened.
    bool write_json_file(const std::string& path);

    /// Runs collectors and returns a merged name -> value snapshot
    /// (counters and values; counters win on name collision).
    std::map<std::string, double> snapshot();

  private:
    void run_collectors();

    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, double> values_;
    std::vector<std::function<void(Registry&)>> collectors_;
    bool collecting_ = false;
};

/// JSON string escaping shared by the metrics and trace writers.
std::string json_escape(const std::string& s);

}  // namespace neo::obs
