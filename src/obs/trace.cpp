#include "obs/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "obs/metrics.hpp"  // json_escape

namespace neo::obs {

const char* drop_reason_name(DropReason r) {
    switch (r) {
        case DropReason::kSenderDown: return "sender_down";
        case DropReason::kPartitioned: return "partitioned";
        case DropReason::kLinkLoss: return "link_loss";
        case DropReason::kTampered: return "tampered";
        case DropReason::kReceiverDown: return "receiver_down";
        case DropReason::kNoRoute: return "no_route";
        case DropReason::kCount_: break;
    }
    return "?";
}

const char* event_kind_name(EventKind k) {
    switch (k) {
        case EventKind::kPacketSend: return "packet_send";
        case EventKind::kPacketDeliver: return "packet_deliver";
        case EventKind::kPacketDrop: return "packet_drop";
        case EventKind::kSeqStamp: return "seq_stamp";
        case EventKind::kPhase: return "phase";
        case EventKind::kTimerArm: return "timer_arm";
        case EventKind::kTimerFire: return "timer_fire";
        case EventKind::kTimerCancel: return "timer_cancel";
        case EventKind::kBatch: return "batch";
        case EventKind::kCrypto: return "crypto";
        case EventKind::kCpuSpan: return "cpu_span";
        case EventKind::kSpanBegin: return "span_begin";
        case EventKind::kSpanEnd: return "span_end";
        case EventKind::kTamper: return "tamper";
        case EventKind::kViolation: return "violation";
        case EventKind::kCount_: break;
    }
    return "?";
}

namespace {

// Virtual-time nanoseconds -> Chrome's microsecond timestamps, formatted
// from integers (never through a double) so output is byte-stable.
void append_ts_us(std::string& out, sim::Time t_ns) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03d", t_ns / 1000,
                  static_cast<int>(t_ns % 1000));
    out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRId64, v);
    out += buf;
}

// Kind-specific argument payload, shared between the JSONL writer and the
// Chrome "args" object so both formats name fields identically.
void append_args(std::string& out, const TraceEvent& e) {
    auto field = [&out](const char* k, std::uint64_t v, bool first = false) {
        if (!first) out += ",";
        out += "\"";
        out += k;
        out += "\":";
        append_u64(out, v);
    };
    switch (e.kind) {
        case EventKind::kPacketSend:
        case EventKind::kPacketDrop:
            field("to", e.a, true);
            field("bytes", e.b);
            if (e.kind == EventKind::kPacketDrop) {
                out += ",\"reason\":\"";
                out += e.label;
                out += "\"";
            }
            break;
        case EventKind::kPacketDeliver:
            field("from", e.a, true);
            field("bytes", e.b);
            break;
        case EventKind::kSeqStamp:
            field("seq", e.a, true);
            field("signed", e.b);
            field("group", e.c);
            break;
        case EventKind::kPhase:
            field("a", e.a, true);
            field("b", e.b);
            break;
        case EventKind::kTimerArm:
            field("timer", e.a, true);
            field("delay_ns", e.b);
            break;
        case EventKind::kTimerFire:
        case EventKind::kTimerCancel:
            field("timer", e.a, true);
            break;
        case EventKind::kBatch:
            field("size", e.a, true);
            break;
        case EventKind::kCrypto:
            field("cost_ns", e.a, true);
            break;
        case EventKind::kCpuSpan:
            out += "\"dur_ns\":";
            append_i64(out, e.dur);
            break;
        case EventKind::kSpanBegin:
        case EventKind::kSpanEnd:
            field("trace_id", e.a, true);
            field("peer", e.b);
            break;
        case EventKind::kTamper:
            field("to", e.a, true);
            field("bytes", e.b);
            break;
        case EventKind::kViolation:
            field("a", e.a, true);
            field("b", e.b);
            break;
        case EventKind::kCount_:
            break;
    }
}

}  // namespace

void TraceSink::write_jsonl(std::ostream& os) const {
    std::string line;
    for (const TraceEvent& e : events_) {
        line.clear();
        line += "{\"t\":";
        append_i64(line, e.t);
        line += ",\"node\":";
        append_u64(line, e.node);
        line += ",\"ev\":\"";
        line += event_kind_name(e.kind);
        line += "\"";
        if (e.label[0] != '\0' && e.kind != EventKind::kPacketDrop) {
            line += ",\"label\":\"";
            line += e.label;
            line += "\"";
        }
        line += ",";
        append_args(line, e);
        line += "}\n";
        os << line;
    }
}

void TraceSink::write_chrome_trace(std::ostream& os) const {
    // Stable sort by timestamp: almost everything is recorded in virtual-time
    // order already, but sends scheduled with a future departure may be
    // recorded early. Stability keeps same-timestamp order == record order.
    std::vector<const TraceEvent*> sorted;
    sorted.reserve(events_.size());
    for (const TraceEvent& e : events_) sorted.push_back(&e);
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const TraceEvent* a, const TraceEvent* b) { return a->t < b->t; });

    os << "{\"traceEvents\":[\n";
    std::string line;
    line += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,"
            "\"args\":{\"name\":\"neobft-sim\"}}";
    os << line;

    // One named track per node (nodes without a registered name still get a
    // track; Chrome labels it with the tid).
    for (const auto& [node, name] : node_names_) {
        line.clear();
        line += ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":";
        append_u64(line, node);
        line += ",\"args\":{\"name\":\"";
        line += json_escape(name);
        line += "\"}}";
        os << line;
    }

    for (const TraceEvent* ep : sorted) {
        const TraceEvent& e = *ep;
        bool span = e.kind == EventKind::kSpanBegin || e.kind == EventKind::kSpanEnd;
        line.clear();
        line += ",\n{\"name\":\"";
        line += (e.label[0] != '\0' && e.kind != EventKind::kPacketDrop)
                    ? e.label
                    : event_kind_name(e.kind);
        line += "\",\"cat\":\"";
        // Begin/end halves of one async span must share a category — Chrome
        // pairs async events by (cat, id, name).
        line += span ? "span" : event_kind_name(e.kind);
        line += "\",\"ph\":\"";
        if (e.kind == EventKind::kCpuSpan) {
            line += "X";
        } else if (e.kind == EventKind::kSpanBegin) {
            line += "b";
        } else if (e.kind == EventKind::kSpanEnd) {
            line += "e";
        } else {
            line += "i";
        }
        line += "\",\"pid\":0,\"tid\":";
        append_u64(line, e.node);
        if (span) {
            line += ",\"id\":";
            append_u64(line, e.a);
        }
        line += ",\"ts\":";
        append_ts_us(line, e.t);
        if (e.kind == EventKind::kCpuSpan) {
            line += ",\"dur\":";
            append_ts_us(line, e.dur);
        } else if (!span) {
            line += ",\"s\":\"t\"";
        }
        line += ",\"args\":{";
        append_args(line, e);
        line += "}}";
        os << line;
    }
    os << "\n],\"displayTimeUnit\":\"ns\"}\n";
}

bool TraceSink::write_jsonl_file(const std::string& path) const {
    std::ofstream os(path, std::ios::binary);
    if (!os) return false;
    write_jsonl(os);
    return static_cast<bool>(os);
}

bool TraceSink::write_chrome_trace_file(const std::string& path) const {
    std::ofstream os(path, std::ios::binary);
    if (!os) return false;
    write_chrome_trace(os);
    return static_cast<bool>(os);
}

}  // namespace neo::obs
