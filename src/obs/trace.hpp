// Structured trace sink for simulation runs.
//
// Records typed events keyed by (virtual time, node, event kind): packet
// send/deliver/drop with a drop reason, sequencer stamps, replica phase
// transitions, timeout arm/fire/cancel, batch seals and modelled crypto
// cost. Event content derives solely from the simulator's virtual clock and
// protocol sequence numbers — never wall time — so two runs with the same
// seed emit byte-identical traces (a cheap, powerful regression check).
//
// Exports:
//  - JSONL: one event object per line, in recording order;
//  - Chrome trace_event JSON: one track (tid) per node, loadable in
//    chrome://tracing or https://ui.perfetto.dev.
//
// Cost discipline: a disabled sink is a null pointer at the owning
// Simulator, so every call site guards with a single branch and builds no
// event arguments when tracing is off.
#pragma once

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/types.hpp"
#include "sim/time.hpp"

namespace neo::obs {

/// Why the simulated network dropped a packet.
enum class DropReason : std::uint8_t {
    kSenderDown = 0,   // crash model: a down node sends nothing
    kPartitioned,      // directional block (partition)
    kLinkLoss,         // random per-link / global loss
    kTampered,         // Byzantine tamper hook returned kDrop
    kReceiverDown,     // destination down at arrival time
    kNoRoute,          // destination id not attached
    kCount_,
};
const char* drop_reason_name(DropReason r);

enum class EventKind : std::uint8_t {
    kPacketSend = 0,
    kPacketDeliver,
    kPacketDrop,
    kSeqStamp,       // sequencer assigned a sequence number
    kPhase,          // protocol phase transition (label names the phase)
    kTimerArm,
    kTimerFire,
    kTimerCancel,
    kBatch,          // batch sealed (label names the batch kind)
    kCrypto,         // modelled crypto cost charged to a task
    kCpuSpan,        // ProcessingNode task execution (duration event)
    kSpanBegin,      // request-scoped causal span opened (label names it)
    kSpanEnd,        // request-scoped causal span closed
    kTamper,         // Byzantine tamper hook mutated a packet in flight
    kViolation,      // safety-invariant violation (obs::Auditor)
    kCount_,
};
const char* event_kind_name(EventKind k);

/// Bit for `EventKind` in a TraceSink kind mask.
constexpr std::uint32_t kind_bit(EventKind k) {
    return 1u << static_cast<unsigned>(k);
}
/// Mask recording only request-scoped spans — what the critical-path
/// analyzer needs when a run is not otherwise traced.
constexpr std::uint32_t kSpanKindMask =
    kind_bit(EventKind::kSpanBegin) | kind_bit(EventKind::kSpanEnd);
/// Default mask: record everything.
constexpr std::uint32_t kAllKindsMask = ~0u;

/// Request-scoped trace id: FNV-1a over the serialized signed request
/// bytes. Every protocol layer that holds those bytes (client submit, aom
/// sequencer ingress, receiver delivery, replica execution) derives the
/// same id without any wire-format change; the id is never zero so 0 can
/// mean "no trace id". Pure function of simulation data — PDES-safe.
constexpr std::uint64_t trace_id(BytesView bytes) {
    std::uint64_t h = 14695981039346656037ull;
    for (std::uint8_t byte : bytes) {
        h ^= byte;
        h *= 1099511628211ull;
    }
    return h == 0 ? 1 : h;
}

/// One recorded event. `label` must point to a string with static storage
/// duration (phase names, timer purposes) — the sink stores the pointer.
/// The meaning of a/b/c depends on the kind; see the recording helpers.
struct TraceEvent {
    sim::Time t = 0;
    sim::Time dur = 0;  // kCpuSpan only
    NodeId node = 0;    // track the event is drawn on
    EventKind kind = EventKind::kPhase;
    const char* label = "";
    std::uint64_t a = 0;
    std::uint64_t b = 0;
    std::uint64_t c = 0;
};

class TraceSink {
  public:
    // ---- recording (call sites guard on a null sink; these never check) ----

    /// a=to, b=bytes. Recorded on the sender's track at departure time.
    void packet_send(sim::Time t, NodeId from, NodeId to, std::size_t bytes) {
        push({t, 0, from, EventKind::kPacketSend, "", to, bytes, 0});
    }
    /// a=from, b=bytes. Recorded on the receiver's track at arrival time.
    void packet_deliver(sim::Time t, NodeId from, NodeId to, std::size_t bytes) {
        push({t, 0, to, EventKind::kPacketDeliver, "", from, bytes, 0});
    }
    /// a=to, b=bytes. Recorded on the sender's track; label = reason.
    void packet_drop(sim::Time t, NodeId from, NodeId to, std::size_t bytes, DropReason reason) {
        push({t, 0, from, EventKind::kPacketDrop, drop_reason_name(reason), to, bytes,
              static_cast<std::uint64_t>(reason)});
    }
    /// a=seq, b=signed(0/1), c=group.
    void seq_stamp(sim::Time t, NodeId sequencer, std::uint64_t group, std::uint64_t seq,
                   bool with_signature) {
        push({t, 0, sequencer, EventKind::kSeqStamp, "", seq, with_signature ? 1u : 0u, group});
    }
    /// Protocol phase transition; a/b are phase-specific (slot, view, ...).
    void phase(sim::Time t, NodeId node, const char* name, std::uint64_t a = 0,
               std::uint64_t b = 0) {
        push({t, 0, node, EventKind::kPhase, name, a, b, 0});
    }
    /// a=timer id, b=delay ns; label = what the timer protects.
    void timer_arm(sim::Time t, NodeId node, std::uint64_t id, const char* what, sim::Time delay) {
        push({t, 0, node, EventKind::kTimerArm, what, id, static_cast<std::uint64_t>(delay), 0});
    }
    void timer_fire(sim::Time t, NodeId node, std::uint64_t id, const char* what) {
        push({t, 0, node, EventKind::kTimerFire, what, id, 0, 0});
    }
    void timer_cancel(sim::Time t, NodeId node, std::uint64_t id) {
        push({t, 0, node, EventKind::kTimerCancel, "", id, 0, 0});
    }
    /// a=batch size.
    void batch(sim::Time t, NodeId node, const char* what, std::size_t size) {
        push({t, 0, node, EventKind::kBatch, what, size, 0, 0});
    }
    /// a=modelled cost ns; label = "sync" (serialises the node) or "async"
    /// (overlapped on worker cores).
    void crypto_cost(sim::Time t, NodeId node, const char* mode, sim::Time cost_ns) {
        push({t, 0, node, EventKind::kCrypto, mode, static_cast<std::uint64_t>(cost_ns), 0, 0});
    }
    /// Duration event: the node's CPU was busy [t, t+dur) running `what`.
    void cpu_span(sim::Time t, NodeId node, const char* what, sim::Time dur) {
        push({t, dur, node, EventKind::kCpuSpan, what, 0, 0, 0});
    }
    /// Request-scoped span open on `node`'s track; a=tid, b=peer node (or
    /// phase-specific detail), label names the span ("request", "sequence",
    /// "deliver", "execute", ...). Begin/end pair on the SAME node so
    /// begin/end streams stay balanced per track.
    void span_begin(sim::Time t, NodeId node, const char* name, std::uint64_t tid,
                    std::uint64_t peer = 0) {
        push({t, 0, node, EventKind::kSpanBegin, name, tid, peer, 0});
    }
    /// Span close; tid must match the open. b=peer carries the completing
    /// peer where meaningful (e.g. the quorum-completing replica on the
    /// client's "request" span).
    void span_end(sim::Time t, NodeId node, const char* name, std::uint64_t tid,
                  std::uint64_t peer = 0) {
        push({t, 0, node, EventKind::kSpanEnd, name, tid, peer, 0});
    }
    /// Byzantine tamper hook rewrote a packet in flight (it still travels,
    /// unlike the kTampered drop). a=to, b=bytes after mutation. Recorded on
    /// the sender's track at send time, mirroring packet_send.
    void tamper_mutate(sim::Time t, NodeId from, NodeId to, std::size_t bytes) {
        push({t, 0, from, EventKind::kTamper, "mutate", to, bytes, 0});
    }
    /// Safety-invariant violation (obs::Auditor); label names the invariant,
    /// a/b are invariant-specific (slot, conflicting node, ...).
    void violation(sim::Time t, NodeId node, const char* invariant, std::uint64_t a,
                   std::uint64_t b) {
        push({t, 0, node, EventKind::kViolation, invariant, a, b, 0});
    }

    // ---- configuration ----

    /// Human-readable track name for a node ("replica 1", "sequencer 910");
    /// exported as Chrome thread_name metadata.
    void set_node_name(NodeId node, std::string name) { node_names_[node] = std::move(name); }

    /// Restricts recording to the masked kinds (bit i = EventKind i; see
    /// kind_bit / kSpanKindMask). Filtering happens at push time, so a
    /// spans-only sink costs one branch per suppressed event. Partition-local
    /// buffers inherit the master sink's mask (sim::Simulator), keeping
    /// serial and PDES recordings identical.
    void set_kind_mask(std::uint32_t mask) { mask_ = mask; }
    std::uint32_t kind_mask() const { return mask_; }

    // ---- access / export ----

    const std::vector<TraceEvent>& events() const { return events_; }
    std::size_t size() const { return events_.size(); }
    void clear() { events_.clear(); }

    /// Appends an already-built record — the parallel simulator's
    /// window-boundary merge copying per-partition buffers into the master
    /// sink in event-key order.
    void append(const TraceEvent& e) { events_.push_back(e); }

    /// One JSON object per line, recording order.
    void write_jsonl(std::ostream& os) const;
    /// Chrome trace_event JSON (object format). Events are stably sorted by
    /// timestamp; metadata rows name one track per node.
    void write_chrome_trace(std::ostream& os) const;

    bool write_jsonl_file(const std::string& path) const;
    bool write_chrome_trace_file(const std::string& path) const;

  private:
    void push(TraceEvent e) {
        if (!(mask_ & kind_bit(e.kind))) return;
        events_.push_back(e);
    }

    std::vector<TraceEvent> events_;
    std::map<NodeId, std::string> node_names_;
    std::uint32_t mask_ = kAllKindsMask;
};

}  // namespace neo::obs
