#include "scenario/byz_sequencer.hpp"

namespace neo::scenario {

namespace {

/// Sequence number of an emitted sequencer packet, or 0 for packets the
/// attacks do not target (data forwards, epoch control traffic).
SeqNum emitted_seq(BytesView data) {
    if (data.empty()) return 0;
    try {
        Reader r(data.subspan(1));
        switch (static_cast<aom::Wire>(data[0])) {
            case aom::Wire::kSeqHm: return aom::HmPacket::parse(r).seq;
            case aom::Wire::kSeqPk:
            case aom::Wire::kCheckpoint: return aom::PkPacket::parse(r).seq;
            default: return 0;
        }
    } catch (const CodecError&) {
        return 0;
    }
}

}  // namespace

sim::Packet ByzSequencer::corrupted_copy(const sim::Packet& packet) {
    BytesView v = packet.view();
    Bytes copy(v.begin(), v.end());
    copy.back() ^= 0xA5;  // trailing payload/MAC byte: auth check must fail
    return sim::Packet(std::move(copy));
}

void ByzSequencer::emit(NodeId receiver, sim::Time depart, sim::Packet packet) {
    SeqNum seq = emitted_seq(packet.view());
    if (seq == 0) {
        SequencerSwitch::emit(receiver, depart, std::move(packet));
        return;
    }

    if (hits(faults_.drop_mod, seq)) {
        ++stats_.dropped;
        return;
    }

    if (hits(faults_.strip_sig_mod, seq)) {
        BytesView v = packet.view();
        if (static_cast<aom::Wire>(v[0]) == aom::Wire::kSeqPk ||
            static_cast<aom::Wire>(v[0]) == aom::Wire::kCheckpoint) {
            try {
                Reader r(v.subspan(1));
                aom::PkPacket pk = aom::PkPacket::parse(r);
                if (!pk.signature.empty()) {
                    pk.signature.clear();
                    packet = sim::Packet(pk.serialize());
                    ++stats_.stripped;
                }
            } catch (const CodecError&) {
            }
        }
    }

    bool corrupt = hits(faults_.corrupt_mod, seq) ||
                   (hits(faults_.equivocate_mod, seq) && (receiver & 1) != 0);
    if (corrupt) {
        packet = corrupted_copy(packet);
        ++stats_.corrupted;
    }

    if (hits(faults_.dup_mod, seq)) {
        ++stats_.duplicated;
        SequencerSwitch::emit(receiver, depart, packet);
    }
    SequencerSwitch::emit(receiver, depart, std::move(packet));
}

}  // namespace neo::scenario
