// Malicious sequencer switch for Byzantine scenarios.
//
// NeoBFT's safety argument (§5) says a compromised switch can at worst
// deny service: receivers verify the per-message authentication (MAC
// vector or signature/hash chain) end-to-end, so a switch that drops,
// duplicates, corrupts, signature-strips or equivocates sequenced packets
// must never cause a divergent commit — only slower progress until
// failover. This subclass makes those attacks injectable so the scenario
// matrix can check exactly that.
//
// Faults key off the sequence number stamped into the emitted packet
// (`seq % mod == 0`), so a fault hits the SAME sequenced message for every
// receiver — the adversarial shape (an inconsistent switch) rather than
// independent random loss (sim::Network already models that).
//
// Emitted packets are refcounted and shared across the multicast fan-out;
// every mutation here re-serialises into a fresh buffer and never touches
// the shared bytes.
#pragma once

#include <cstdint>

#include "aom/sequencer.hpp"
#include "aom/wire.hpp"

namespace neo::scenario {

class ByzSequencer : public aom::SequencerSwitch {
  public:
    using aom::SequencerSwitch::SequencerSwitch;

    /// Active attacks; each applies when `seq % mod == 0` (0 = off).
    struct Faults {
        std::uint32_t drop_mod = 0;        // skipped seqnums
        std::uint32_t dup_mod = 0;         // duplicated emission
        std::uint32_t corrupt_mod = 0;     // flipped payload byte (auth must fail)
        std::uint32_t strip_sig_mod = 0;   // PK variant: signature cleared
        std::uint32_t equivocate_mod = 0;  // corrupt for odd-id receivers only
    };
    void set_faults(const Faults& f) { faults_ = f; }
    const Faults& faults() const { return faults_; }

    struct Stats {
        std::uint64_t dropped = 0;
        std::uint64_t duplicated = 0;
        std::uint64_t corrupted = 0;
        std::uint64_t stripped = 0;
    };
    const Stats& byz_stats() const { return stats_; }

  protected:
    void emit(NodeId receiver, sim::Time depart, sim::Packet packet) override;

  private:
    static bool hits(std::uint32_t mod, SeqNum seq) {
        return mod != 0 && seq % mod == 0;
    }
    sim::Packet corrupted_copy(const sim::Packet& packet);

    Faults faults_;
    Stats stats_;
};

}  // namespace neo::scenario
