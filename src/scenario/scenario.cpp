#include "scenario/scenario.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "common/rng.hpp"

namespace neo::scenario {

const char* fault_kind_name(FaultKind k) {
    switch (k) {
        case FaultKind::kCrash: return "crash";
        case FaultKind::kRecover: return "recover";
        case FaultKind::kEquivocate: return "equivocate";
        case FaultKind::kHonest: return "honest";
        case FaultKind::kSilence: return "silence";
        case FaultKind::kUnsilence: return "unsilence";
        case FaultKind::kPartition: return "partition";
        case FaultKind::kHeal: return "heal";
        case FaultKind::kGrayLink: return "gray_link";
        case FaultKind::kClearLink: return "clear_link";
        case FaultKind::kLossBurst: return "loss_burst";
        case FaultKind::kSeqStall: return "seq_stall";
        case FaultKind::kSeqResume: return "seq_resume";
        case FaultKind::kSeqDrop: return "seq_drop";
        case FaultKind::kSeqDuplicate: return "seq_duplicate";
        case FaultKind::kSeqCorrupt: return "seq_corrupt";
        case FaultKind::kSeqStripSig: return "seq_strip_sig";
        case FaultKind::kSeqEquivocate: return "seq_equivocate";
    }
    return "?";
}

namespace {

bool contains(const std::vector<NodeId>& v, NodeId n) {
    return std::find(v.begin(), v.end(), n) != v.end();
}

void run_event(const FaultEvent& ev, Adapter& ad, const std::vector<NodeId>& replicas,
               double base_drop_rate) {
    sim::Network& net = ad.network();
    std::vector<NodeId> targets = ev.targets;
    if (targets.empty() && !replicas.empty()) targets = {replicas.back()};

    switch (ev.kind) {
        case FaultKind::kCrash:
            for (NodeId n : targets) {
                if (!ad.crash(n)) net.set_node_down(n, true);  // fail-silent fallback
            }
            break;
        case FaultKind::kRecover:
            for (NodeId n : targets) {
                if (!ad.recover(n)) net.set_node_down(n, false);
            }
            break;
        case FaultKind::kEquivocate:
            for (NodeId n : targets) ad.set_equivocate(n, true);
            break;
        case FaultKind::kHonest:
            for (NodeId n : targets) ad.set_equivocate(n, false);
            break;
        case FaultKind::kSilence:
            // Directional: the silent replica stops talking to its peers but
            // still receives (and still serves clients) — the Byzantine
            // flavour a crash cannot model.
            for (NodeId t : targets) {
                for (NodeId r : replicas) {
                    if (r != t) net.block(t, r);
                }
            }
            break;
        case FaultKind::kUnsilence:
            for (NodeId t : targets) {
                for (NodeId r : replicas) {
                    if (r != t) net.unblock(t, r);
                }
            }
            break;
        case FaultKind::kPartition:
            for (NodeId a : targets) {
                for (NodeId b : replicas) {
                    if (contains(targets, b)) continue;
                    net.block(a, b);
                    net.block(b, a);
                }
            }
            break;
        case FaultKind::kHeal:
            for (NodeId a : replicas) {
                for (NodeId b : replicas) {
                    if (a != b) net.unblock(a, b);
                }
            }
            break;
        case FaultKind::kGrayLink: {
            // Asymmetric loss on every link FROM the target (receives stay
            // clean): the classic gray-failure shape detectors miss.
            sim::LinkConfig cfg = net.default_link();
            cfg.drop_rate = ev.rate;
            for (NodeId t : targets) {
                for (NodeId r : replicas) {
                    if (r != t) net.set_link(t, r, cfg);
                }
            }
            break;
        }
        case FaultKind::kClearLink:
            for (NodeId t : targets) {
                for (NodeId r : replicas) {
                    if (r != t) net.set_link(t, r, net.default_link());
                }
            }
            break;
        case FaultKind::kLossBurst: {
            net.set_global_drop_rate(ev.rate);
            sim::Time window = std::max<sim::Time>(ev.duration, 1);
            ad.simulator().at_global(ad.simulator().now() + window,
                                     [&net, base_drop_rate] {
                                         net.set_global_drop_rate(base_drop_rate);
                                     });
            break;
        }
        case FaultKind::kSeqStall:
            ad.sequencer_fault({FaultKind::kSeqStall, 0, true});
            break;
        case FaultKind::kSeqResume:
            ad.sequencer_fault({FaultKind::kSeqStall, 0, false});
            break;
        case FaultKind::kSeqDrop:
        case FaultKind::kSeqDuplicate:
        case FaultKind::kSeqCorrupt:
        case FaultKind::kSeqStripSig:
        case FaultKind::kSeqEquivocate:
            ad.sequencer_fault({ev.kind, ev.mod, true});
            break;
    }
}

}  // namespace

void apply(const Scenario& sc, Adapter& ad) {
    // Membership and the pre-fault drop rate are fixed at apply time; the
    // closures below carry plain values so the schedule is a pure function
    // of (scenario, deployment shape) — no event-order dependence.
    std::vector<NodeId> replicas = ad.replica_ids();
    double base_drop_rate = ad.network().global_drop_rate();
    for (const FaultEvent& ev : sc.events) {
        ad.simulator().at_global(ev.at, [ev, &ad, replicas, base_drop_rate] {
            run_event(ev, ad, replicas, base_drop_rate);
        });
    }
}

// ------------------------------------------------------- scenario library

namespace {
sim::Time midpoint(sim::Time t0, sim::Time horizon) { return t0 + (horizon - t0) / 2; }
}  // namespace

Scenario crash_recover(const std::vector<NodeId>& replicas, sim::Time t0, sim::Time horizon) {
    NEO_ASSERT(!replicas.empty());
    NodeId victim = replicas.back();
    Scenario sc;
    sc.name = "crash_recover";
    sc.events.push_back({t0, FaultKind::kCrash, {victim}, 0, 0.0, 0});
    sc.events.push_back({midpoint(t0, horizon), FaultKind::kRecover, {victim}, 0, 0.0, 0});
    return sc;
}

Scenario equivocating_replica(const std::vector<NodeId>& replicas, sim::Time t0) {
    NEO_ASSERT(!replicas.empty());
    Scenario sc;
    sc.name = "equivocating_replica";
    sc.events.push_back({t0, FaultKind::kEquivocate, {replicas.back()}, 0, 0.0, 0});
    sc.expect_violations = {"divergent_commit"};
    return sc;
}

Scenario silent_replica(const std::vector<NodeId>& replicas, sim::Time t0, sim::Time horizon) {
    NEO_ASSERT(!replicas.empty());
    NodeId victim = replicas.back();
    Scenario sc;
    sc.name = "silent_replica";
    sc.events.push_back({t0, FaultKind::kSilence, {victim}, 0, 0.0, 0});
    sc.events.push_back({midpoint(t0, horizon), FaultKind::kUnsilence, {victim}, 0, 0.0, 0});
    return sc;
}

Scenario minority_partition(const std::vector<NodeId>& replicas, sim::Time t0,
                            sim::Time horizon) {
    NEO_ASSERT(!replicas.empty());
    // Cut off a largest-minority island: floor((n-1)/3) replicas = f.
    std::size_t f = (replicas.size() - 1) / 3;
    std::vector<NodeId> island(replicas.end() - static_cast<std::ptrdiff_t>(std::max<std::size_t>(f, 1)),
                               replicas.end());
    Scenario sc;
    sc.name = "minority_partition";
    sc.events.push_back({t0, FaultKind::kPartition, island, 0, 0.0, 0});
    sc.events.push_back({midpoint(t0, horizon), FaultKind::kHeal, {}, 0, 0.0, 0});
    return sc;
}

Scenario gray_link(const std::vector<NodeId>& replicas, sim::Time t0, sim::Time horizon,
                   double rate) {
    NEO_ASSERT(!replicas.empty());
    NodeId victim = replicas.back();
    Scenario sc;
    sc.name = "gray_link";
    sc.events.push_back({t0, FaultKind::kGrayLink, {victim}, 0, rate, 0});
    sc.events.push_back({midpoint(t0, horizon), FaultKind::kClearLink, {victim}, 0, 0.0, 0});
    return sc;
}

Scenario loss_bursts(sim::Time t0, sim::Time period, sim::Time burst_len, double rate,
                     int bursts) {
    Scenario sc;
    sc.name = "loss_bursts";
    for (int i = 0; i < bursts; ++i) {
        sc.events.push_back({t0 + static_cast<sim::Time>(i) * period, FaultKind::kLossBurst,
                             {}, burst_len, rate, 0});
    }
    return sc;
}

Scenario seq_skips(sim::Time t0, std::uint32_t mod) {
    Scenario sc;
    sc.name = "seq_skips";
    sc.events.push_back({t0, FaultKind::kSeqDrop, {}, 0, 0.0, mod});
    return sc;
}

Scenario seq_unsigned(sim::Time t0, std::uint32_t mod) {
    Scenario sc;
    sc.name = "seq_unsigned";
    sc.events.push_back({t0, FaultKind::kSeqStripSig, {}, 0, 0.0, mod});
    return sc;
}

Scenario seq_equivocate(sim::Time t0, std::uint32_t mod) {
    Scenario sc;
    sc.name = "seq_equivocate";
    sc.events.push_back({t0, FaultKind::kSeqEquivocate, {}, 0, 0.0, mod});
    return sc;
}

std::vector<Scenario> standard_suite(const std::vector<NodeId>& replicas, sim::Time horizon) {
    sim::Time t0 = horizon / 4;
    return {
        crash_recover(replicas, t0, horizon),
        equivocating_replica(replicas, t0),
        silent_replica(replicas, t0, horizon),
        minority_partition(replicas, t0, horizon),
        gray_link(replicas, t0, horizon, 0.3),
        loss_bursts(t0, (horizon - t0) / 4, (horizon - t0) / 16, 0.6, 3),
        seq_skips(t0, 64),
        seq_unsigned(t0, 2),
        seq_equivocate(t0, 32),
    };
}

Scenario fuzz(std::uint64_t seed, const std::vector<NodeId>& replicas, sim::Time horizon) {
    NEO_ASSERT(!replicas.empty());
    // Counter-based stream: every draw is a pure function of (seed, i), so
    // the scenario is reproducible from its seed alone (logged by the
    // fuzzer driver).
    StreamRng rng(0x5ce7a410u, seed);
    Scenario sc;
    sc.name = "fuzz_" + std::to_string(seed);
    sc.violations_required = false;
    const sim::Time t0 = horizon / 4;
    const sim::Time span = horizon - t0;
    const std::size_t f = std::max<std::size_t>((replicas.size() - 1) / 3, 1);

    // At most f concurrently-faulty replicas: draw a fixed victim pool of
    // size <= f and aim every node fault at it.
    std::vector<NodeId> pool;
    for (std::size_t i = 0; i < f; ++i) {
        NodeId v = replicas[rng.uniform(replicas.size())];
        if (std::find(pool.begin(), pool.end(), v) == pool.end()) pool.push_back(v);
    }

    int n_faults = 1 + static_cast<int>(rng.uniform(4));
    for (int i = 0; i < n_faults; ++i) {
        sim::Time at = t0 + static_cast<sim::Time>(rng.uniform(static_cast<std::uint64_t>(span / 2)));
        sim::Time heal_at = at + span / 4;
        NodeId victim = pool[rng.uniform(pool.size())];
        switch (rng.uniform(6)) {
            case 0:  // crash + recover
                sc.events.push_back({at, FaultKind::kCrash, {victim}, 0, 0.0, 0});
                sc.events.push_back({heal_at, FaultKind::kRecover, {victim}, 0, 0.0, 0});
                break;
            case 1:  // equivocation (auditor must catch it)
                sc.events.push_back({at, FaultKind::kEquivocate, {victim}, 0, 0.0, 0});
                sc.expect_violations = {"divergent_commit"};
                break;
            case 2:  // silence window
                sc.events.push_back({at, FaultKind::kSilence, {victim}, 0, 0.0, 0});
                sc.events.push_back({heal_at, FaultKind::kUnsilence, {victim}, 0, 0.0, 0});
                break;
            case 3: {  // gray link
                double rate = 0.1 + 0.4 * rng.real();
                sc.events.push_back({at, FaultKind::kGrayLink, {victim}, 0, rate, 0});
                sc.events.push_back({heal_at, FaultKind::kClearLink, {victim}, 0, 0.0, 0});
                break;
            }
            case 4: {  // loss burst
                double rate = 0.2 + 0.5 * rng.real();
                sc.events.push_back({at, FaultKind::kLossBurst, {}, span / 16, rate, 0});
                break;
            }
            case 5: {  // sequencer misbehaviour (no-op for sequencer-less protocols)
                FaultKind kinds[] = {FaultKind::kSeqDrop, FaultKind::kSeqDuplicate,
                                     FaultKind::kSeqEquivocate, FaultKind::kSeqStripSig};
                std::uint32_t mod = 16u << rng.uniform(4);  // 16..128
                sc.events.push_back({at, kinds[rng.uniform(4)], {}, 0, 0.0, mod});
                break;
            }
        }
    }
    std::sort(sc.events.begin(), sc.events.end(),
              [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
    return sc;
}

}  // namespace neo::scenario
