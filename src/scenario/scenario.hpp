// Composable Byzantine scenario engine.
//
// A Scenario is a declarative fault schedule — (fault kind x virtual-time
// point x target set) triples — applied to any running deployment through
// the Adapter interface. The engine schedules every fault as a GLOBAL
// simulator event (Simulator::at_global), the only context allowed to
// mutate cross-node shared state (network blocks, node-down flags) under
// the conservative PDES engine, so same-seed scenario runs are
// byte-identical across --sim-threads values.
//
// Three fault families (docs/SCENARIOS.md):
//  - Byzantine processes: equivocating replicas (divergent audited commit
//    digests + poisoned client replies), selectively-silent replicas
//    (directional network blocks toward other replicas), and a malicious
//    sequencer (scenario::ByzSequencer — drops/duplicates/corrupts/
//    signature-strips sequenced packets).
//  - Network pathologies: symmetric partitions, asymmetric gray links
//    (per-direction loss), correlated loss bursts (windowed global drop
//    rate).
//  - Recovery lifecycle: full crash (volatile-state wipe) and recover
//    (checkpoint install + state transfer) where the protocol supports it
//    (NeoBFT); protocols without a recovery path get a fail-silent window
//    instead (the engine downgrades automatically).
//
// Expectations ride on the scenario: `expect_violations` names the safety
// invariants the deployment's obs::Auditor MUST flag (an equivocation run
// that produces no divergent_commit is a detector bug), every other
// violation is a protocol bug; `min_commits_per_client` is the liveness
// floor every honest client must reach by the end of the run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "sim/time.hpp"

namespace neo::scenario {

enum class FaultKind : std::uint8_t {
    // Node lifecycle / Byzantine execution.
    kCrash = 0,      // full crash (state wipe); fallback: fail-silent (node down)
    kRecover,        // recovery protocol; fallback: node back up
    kEquivocate,     // targets report divergent commit digests from here on
    kHonest,         // stop equivocating
    kSilence,        // targets stop sending to other REPLICAS (clients still served)
    kUnsilence,
    // Network pathologies.
    kPartition,      // targets <-> rest-of-replicas cut, both directions
    kHeal,           // remove every replica<->replica block
    kGrayLink,       // asymmetric loss: packets FROM each target drop at `rate`
    kClearLink,      // restore default links on the target rows
    kLossBurst,      // global drop `rate` for [at, at+duration)
    // Malicious sequencer (no-op where the protocol has no sequencer).
    kSeqStall,       // sequencer accepts but emits nothing
    kSeqResume,
    kSeqDrop,        // drop sequenced packets with seq % mod == 0 (skipped seqnums)
    kSeqDuplicate,   // emit those packets twice
    kSeqCorrupt,     // flip a byte in those packets (receivers must reject)
    kSeqStripSig,    // clear the PK signature on those packets (unsigned stream)
    kSeqEquivocate,  // corrupt those packets for half the receivers only
};

const char* fault_kind_name(FaultKind k);

/// One scheduled fault. `targets` empty = the engine picks a default
/// (first replica for node faults; the non-empty set is required for
/// partitions). `duration`/`rate`/`mod` are fault-family parameters.
struct FaultEvent {
    sim::Time at = 0;
    FaultKind kind = FaultKind::kCrash;
    std::vector<NodeId> targets;
    sim::Time duration = 0;   // kLossBurst window
    double rate = 0.0;        // kGrayLink / kLossBurst drop probability
    std::uint32_t mod = 0;    // sequencer faults: apply when seq % mod == 0
};

struct Scenario {
    std::string name;
    std::vector<FaultEvent> events;
    /// Safety invariants the auditor MUST flag (exact names, e.g.
    /// "divergent_commit"). Violations outside this set fail the run.
    std::vector<std::string> expect_violations;
    /// When false (fuzzer mode), expect_violations are merely ALLOWED —
    /// still not required — because a randomly-composed fault (e.g. an
    /// equivocator crashed an instant later) may legitimately never trip
    /// its detector. Curated scenarios keep the strict detector check.
    bool violations_required = true;
    /// Liveness floor: every client must commit at least this many
    /// requests by the end of the run.
    std::uint64_t min_commits_per_client = 1;
};

/// What a deployment exposes to the engine. Network-level faults need only
/// simulator()/network()/replica_ids(); the lifecycle and Byzantine hooks
/// default to "unsupported" and the engine degrades (crash -> fail-silent
/// window, sequencer faults -> no-op).
class Adapter {
  public:
    virtual ~Adapter() = default;
    virtual sim::Simulator& simulator() = 0;
    virtual sim::Network& network() = 0;
    virtual std::vector<NodeId> replica_ids() const = 0;

    /// Full crash-recover lifecycle (state wipe / checkpoint install).
    virtual bool crash(NodeId) { return false; }
    virtual bool recover(NodeId) { return false; }
    /// Byzantine execution digests (and poisoned replies where supported).
    virtual bool set_equivocate(NodeId, bool) { return false; }

    struct SeqFault {
        FaultKind kind = FaultKind::kSeqStall;
        std::uint32_t mod = 0;
        bool on = true;
    };
    virtual bool sequencer_fault(const SeqFault&) { return false; }
};

/// Schedules every event of `sc` onto `ad.simulator()` as global events.
/// Call from setup (before run); the Adapter must outlive the run.
void apply(const Scenario& sc, Adapter& ad);

// ------------------------------------------------------- scenario library

/// Canonical scenarios parameterised by the replica set. `t0` staggers the
/// first fault; faults are spaced so recovery has room inside `horizon`.
Scenario crash_recover(const std::vector<NodeId>& replicas, sim::Time t0, sim::Time horizon);
Scenario equivocating_replica(const std::vector<NodeId>& replicas, sim::Time t0);
Scenario silent_replica(const std::vector<NodeId>& replicas, sim::Time t0, sim::Time horizon);
Scenario minority_partition(const std::vector<NodeId>& replicas, sim::Time t0,
                            sim::Time horizon);
Scenario gray_link(const std::vector<NodeId>& replicas, sim::Time t0, sim::Time horizon,
                   double rate);
Scenario loss_bursts(sim::Time t0, sim::Time period, sim::Time burst_len, double rate,
                     int bursts);
Scenario seq_skips(sim::Time t0, std::uint32_t mod);
Scenario seq_unsigned(sim::Time t0, std::uint32_t mod);
Scenario seq_equivocate(sim::Time t0, std::uint32_t mod);

/// All canonical scenarios for a deployment shape (used by the matrix
/// sweep and the tsan matrix test).
std::vector<Scenario> standard_suite(const std::vector<NodeId>& replicas, sim::Time horizon);

/// Seed-randomised scenario for the fuzzer: composes 1-4 faults (kinds,
/// times, targets, rates all drawn from a counter-based stream on `seed`),
/// always bounded so at most f replicas are faulty at once and every
/// windowed fault heals before the horizon. Deterministic per seed.
Scenario fuzz(std::uint64_t seed, const std::vector<NodeId>& replicas, sim::Time horizon);

}  // namespace neo::scenario
