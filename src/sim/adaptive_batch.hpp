// Load-proportional batch sizing shared by the leader-side request
// batchers (baselines) and the aom receiver's confirm batching.
//
// The fixed batch knobs the ablations used to sweep (batch_max,
// batch_delay) pick one point on the §6.2 throughput/latency trade for the
// whole run. Real systems sit on a moving load curve: a fixed small batch
// wastes per-batch overhead at saturation, a fixed large one adds queueing
// latency at low load. The controller here tracks queue pressure and grows
// the seal threshold only while arrivals actually fill batches before the
// latency budget expires:
//
//   - a batch sealed FULL (by size) means demand outpaced the threshold —
//     double it, up to the configured cap;
//   - a batch flushed by the TIMER at under half the threshold means the
//     threshold overshot the offered load — halve it, down to the floor.
//
// Multiplicative in both directions, so the threshold settles within
// log2(cap) seals of any load shift and oscillates at most one doubling
// around the steady-state batch the offered load can fill.
//
// Determinism: the controller is a pure function of the seal sequence it
// observes, which is itself a pure function of simulated arrival order —
// never of host time or thread interleaving. Runs are byte-identical
// across --sim-threads settings (asserted by the PDES determinism tests).
//
// The first item's wait is bounded by `latency_budget` no matter what the
// threshold says: callers arm a flush timer for the budget when the first
// item queues, exactly as the fixed-knob code did.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/assert.hpp"
#include "sim/time.hpp"

namespace neo::sim {

/// Bounds for an adaptive batcher. The old fixed knobs map onto this as
/// {min_batch = 1, max_batch = batch_max, latency_budget = batch_delay}.
struct AdaptiveBatchPolicy {
    std::size_t min_batch = 1;
    std::size_t max_batch = 256;
    /// Upper bound on how long the oldest queued item may wait before a
    /// forced flush, regardless of the current threshold.
    Time latency_budget = 100 * kMicrosecond;
};

/// Deterministic multiplicative-increase/multiplicative-decrease
/// controller over the seal threshold. One instance per batching site
/// (node-private state, PDES-safe).
class AdaptiveBatchController {
  public:
    explicit AdaptiveBatchController(AdaptiveBatchPolicy policy) : policy_(policy) {
        NEO_ASSERT(policy_.min_batch >= 1);
        NEO_ASSERT(policy_.max_batch >= policy_.min_batch);
        target_ = policy_.min_batch;
    }

    const AdaptiveBatchPolicy& policy() const { return policy_; }

    /// Current seal-by-size threshold.
    std::size_t target() const { return target_; }

    /// Flush-timer delay for the first queued item.
    Time flush_delay() const { return policy_.latency_budget; }

    /// Records a sealed batch. `by_size` is true when the queue reached the
    /// threshold (size seal), false when the latency-budget timer forced
    /// the flush.
    void on_seal(std::size_t sealed, bool by_size) {
        ++seals_;
        if (by_size) {
            ++size_seals_;
            if (target_ < policy_.max_batch) {
                target_ = target_ * 2 < policy_.max_batch ? target_ * 2 : policy_.max_batch;
            }
        } else {
            ++timer_seals_;
            if (sealed * 2 < target_ && target_ > policy_.min_batch) {
                target_ = target_ / 2 > policy_.min_batch ? target_ / 2 : policy_.min_batch;
            }
        }
    }

    // Instrumentation for tests and trace reports.
    std::uint64_t seals() const { return seals_; }
    std::uint64_t size_seals() const { return size_seals_; }
    std::uint64_t timer_seals() const { return timer_seals_; }

  private:
    AdaptiveBatchPolicy policy_;
    std::size_t target_ = 1;
    std::uint64_t seals_ = 0;
    std::uint64_t size_seals_ = 0;
    std::uint64_t timer_seals_ = 0;
};

}  // namespace neo::sim
