// Calibration constants for the simulated testbed.
//
// Derived from the paper's §6 testbed (Tofino switch fabric, 100 Gbps NICs,
// 32-core Xeon replicas) and its reported medians: aom-hm switch latency
// ≈ 9 µs at 12 pipeline passes, aom-pk ≈ 3 µs, aom-hm 77 Mpps at group
// size 4 decaying to 5.7 Mpps at 64, aom-pk signing 1.1 Mpps, unreplicated
// echo-RPC ≈ 400 K ops/s. Absolute client latencies will not match a real
// testbed exactly; EXPERIMENTS.md records paper-vs-measured for every
// figure.
#pragma once

#include "crypto/cost.hpp"
#include "sim/network.hpp"
#include "sim/processing_node.hpp"

namespace neo::sim {

/// Datacenter link: short intra-rack cable through one switch hop.
inline LinkConfig datacenter_link() {
    LinkConfig cfg;
    cfg.latency = 2 * kMicrosecond;
    cfg.jitter = 500;  // 0.5 us
    cfg.drop_rate = 0.0;
    cfg.ns_per_byte = 0.08;  // 100 Gbps
    return cfg;
}

/// Host endpoint (replica or client) CPU model.
inline ProcessingConfig host_processing() {
    ProcessingConfig cfg;
    cfg.recv_overhead_ns = 1'200;
    cfg.send_overhead_ns = 700;
    cfg.timer_overhead_ns = 300;
    return cfg;
}

/// Crypto cost table for the testbed-class Xeon (see crypto/cost.hpp for
/// the sync/async split semantics).
inline crypto::CryptoCosts host_crypto_costs() {
    return crypto::CryptoCosts{};
}

/// Per-request processing inside a batched protocol message (parse, copy,
/// log append, bookkeeping) at a replica. NeoBFT does not pay this: each
/// request arrives pre-sequenced as its own aom packet whose per-message
/// costs are the recv overhead.
constexpr Time kPerBatchedRequestNs = 1'200;

// ---- aom sequencer switch (Tofino data plane) ----

/// Base forwarding latency of the switch (parse + match-action + queuing
/// headroom), without authentication work.
constexpr Time kSwitchForwardNs = 800;

/// One full traversal of the dedicated HMAC pipeline (the folded-pipeline
/// design runs 12 passes; the reference HalfSipHash needs 6 at twice the
/// per-pass resource cost — §4.3).
constexpr Time kHmacPipelinePassNs = 650;
constexpr int kHmacPassesPerVector = 12;
/// HalfSipHash instances running in parallel per pipeline pass.
constexpr int kHmacParallelInstances = 4;
/// Loopback ports available for subgroup fan-out (§4.3: 16 ports -> 64
/// receivers max).
constexpr int kHmacLoopbackPorts = 16;

/// Per-packet service time of the HM pipeline at a given group size: each
/// subgroup of 4 receivers occupies one loopback "lane"; lanes beyond the
/// port budget are rejected at configuration time. Throughput scales as
/// 1/subgroups (Fig 6: 77 Mpps at 4 receivers -> ~4.8 Mpps at 64).
constexpr Time hm_service_ns(int receivers) {
    int subgroups = (receivers + 3) / 4;
    return static_cast<Time>(13 * subgroups);  // 13 ns == 77 Mpps at 1 subgroup
}

/// Latency of one full traversal of the HMAC authentication path: the
/// folded-pipeline design needs kHmacPassesPerVector passes regardless of
/// group size (subgroups run in parallel lanes). 12 x 650ns + forwarding
/// reproduces the paper's ~9 us aom-hm median.
constexpr Time kHmacAuthLatencyNs =
    static_cast<Time>(kHmacPassesPerVector) * kHmacPipelinePassNs;

/// FPGA coprocessor: secp256k1 signing throughput 1.1 Mpps -> ~900 ns per
/// signature of service time.
constexpr Time kPkSignServiceNs = 900;
/// Added latency of the FPGA round trip for a signed packet (QSFP hop +
/// merge); with the signer service this puts the aom-pk median near the
/// paper's ~3 us.
constexpr Time kPkSignLatencyNs = 1'300;
/// Line-rate service for unsigned (hash-chained) packets.
constexpr Time kPkChainServiceNs = 13;

/// Pre-compute table model (§4.4): entries are produced at a fixed rate and
/// each signature consumes one. When the stock dips below the low-water
/// mark the signing-ratio controller starts skipping signatures.
struct PkPrecomputeConfig {
    std::uint32_t table_capacity = 4'096;
    std::uint32_t low_water_mark = 512;
    /// Entries generated per second by the pre-compute module. The paper's
    /// coprocessor sustains its 1.1 Mpps signer, so the default refill
    /// slightly outpaces it; benches exploring the signing-ratio controller
    /// lower this to force hash-chain batches.
    double refill_per_sec = 1'200'000.0;
};

}  // namespace neo::sim
